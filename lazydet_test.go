package lazydet_test

import (
	"fmt"
	"strings"
	"testing"

	"lazydet"
)

// counter builds a one-lock counter workload through the public API.
func counter(iters int64) *lazydet.Workload {
	return &lazydet.Workload{
		Name:      "api-counter",
		HeapWords: 8,
		Locks:     1,
		Programs: func(threads int) []*lazydet.Program {
			b := lazydet.NewProgram("counter")
			i, v := b.Reg(), b.Reg()
			b.ForN(i, iters, func() {
				b.Lock(lazydet.Const(0))
				b.Load(v, lazydet.Const(0))
				b.Store(lazydet.Const(0), func(t *lazydet.Thread) int64 { return t.R(v) + 1 })
				b.Unlock(lazydet.Const(0))
			})
			p := b.Build()
			progs := make([]*lazydet.Program, threads)
			for t := range progs {
				progs[t] = p
			}
			return progs
		},
		Validate: func(read func(int64) int64, threads int) error {
			if got, want := read(0), int64(threads)*iters; got != want {
				return fmt.Errorf("counter = %d, want %d", got, want)
			}
			return nil
		},
	}
}

func TestPublicAPIRunAllEngines(t *testing.T) {
	w := counter(100)
	for _, eng := range []lazydet.EngineKind{
		lazydet.Pthreads, lazydet.Consequence, lazydet.TotalOrderWeak,
		lazydet.TotalOrderWeakNondet, lazydet.LazyDet,
	} {
		res, err := lazydet.Run(w, lazydet.Options{Engine: eng, Threads: 4})
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if res.Wall <= 0 {
			t.Fatalf("%s: no wall time measured", eng)
		}
	}
}

func TestPublicAPIVerify(t *testing.T) {
	w := counter(150)
	for _, eng := range []lazydet.EngineKind{lazydet.Consequence, lazydet.LazyDet} {
		if err := lazydet.Verify(w, lazydet.Options{Engine: eng, Threads: 4}); err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
	}
}

func TestPublicAPISpecConfig(t *testing.T) {
	sc := lazydet.DefaultSpecConfig()
	if !sc.Coarsening || !sc.Irrevocable || !sc.PerLockStats {
		t.Fatalf("default speculation config lost the paper's features: %+v", sc)
	}
	if sc.ThresholdPermille != 850 || sc.RetryEvery != 20 {
		t.Fatalf("default thresholds are not the paper's 85%%/20: %+v", sc)
	}
	sc.Coarsening = false
	w := counter(100)
	res, err := lazydet.Run(w, lazydet.Options{Engine: lazydet.LazyDet, Threads: 2, Spec: sc, CollectSpec: true})
	if err != nil {
		t.Fatal(err)
	}
	if m := res.Spec.MeanRunCS(); m > 1.01 {
		t.Fatalf("NoCoarsening via public API not applied: %.2f CS/run", m)
	}
}

func TestPublicAPIEngineNames(t *testing.T) {
	names := []string{
		lazydet.Pthreads.String(), lazydet.Consequence.String(),
		lazydet.TotalOrderWeak.String(), lazydet.TotalOrderWeakNondet.String(),
		lazydet.LazyDet.String(),
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"pthreads", "Consequence", "TotalOrder-Weak", "LazyDet"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("engine names %q missing %q", joined, want)
		}
	}
}

func TestPublicAPISyscallAndAtomic(t *testing.T) {
	ran := 0
	w := &lazydet.Workload{
		Name: "api-sys", HeapWords: 8, Locks: 1,
		Programs: func(threads int) []*lazydet.Program {
			progs := make([]*lazydet.Program, threads)
			for tid := 0; tid < threads; tid++ {
				b := lazydet.NewProgram("sys")
				r := b.Reg()
				b.Lock(lazydet.Const(0))
				b.Syscall(&lazydet.Syscall{Name: "probe", Work: 5, Effect: func(*lazydet.Thread) { ran++ }})
				b.Unlock(lazydet.Const(0))
				b.AtomicAdd(r, lazydet.Const(1), lazydet.Const(1))
				progs[tid] = b.Build()
			}
			return progs
		},
		Validate: func(read func(int64) int64, threads int) error {
			if got := read(1); got != int64(threads) {
				return fmt.Errorf("atomic counter = %d, want %d", got, threads)
			}
			return nil
		},
	}
	res, err := lazydet.Run(w, lazydet.Options{Engine: lazydet.LazyDet, Threads: 3, CollectSpec: true})
	if err != nil {
		t.Fatal(err)
	}
	if ran != 3 {
		t.Fatalf("syscall effects ran %d times, want 3", ran)
	}
	if res.Spec.Upgrades.Load() == 0 {
		t.Fatal("syscalls under locks should upgrade speculation runs")
	}
}
