package lazydet_test

import (
	"fmt"
	"strings"
	"testing"

	"lazydet"
)

// counter builds a one-lock counter workload through the public API.
func counter(iters int64) *lazydet.Workload {
	return &lazydet.Workload{
		Name:      "api-counter",
		HeapWords: 8,
		Locks:     1,
		Programs: func(threads int) []*lazydet.Program {
			b := lazydet.NewProgram("counter")
			i, v := b.Reg(), b.Reg()
			b.ForN(i, iters, func() {
				b.Lock(lazydet.Const(0))
				b.Load(v, lazydet.Const(0))
				b.Store(lazydet.Const(0), lazydet.Dyn(func(t *lazydet.Thread) int64 { return t.R(v) + 1 }))
				b.Unlock(lazydet.Const(0))
			})
			p := b.Build()
			progs := make([]*lazydet.Program, threads)
			for t := range progs {
				progs[t] = p
			}
			return progs
		},
		Validate: func(read func(int64) int64, threads int) error {
			if got, want := read(0), int64(threads)*iters; got != want {
				return fmt.Errorf("counter = %d, want %d", got, want)
			}
			return nil
		},
	}
}

func TestPublicAPIRunAllEngines(t *testing.T) {
	w := counter(100)
	for _, eng := range []lazydet.EngineKind{
		lazydet.Pthreads, lazydet.Consequence, lazydet.TotalOrderWeak,
		lazydet.TotalOrderWeakNondet, lazydet.LazyDet,
	} {
		res, err := lazydet.Run(w, lazydet.Options{Engine: eng, Threads: 4})
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
		if res.Wall <= 0 {
			t.Fatalf("%s: no wall time measured", eng)
		}
	}
}

func TestPublicAPIVerify(t *testing.T) {
	w := counter(150)
	for _, eng := range []lazydet.EngineKind{lazydet.Consequence, lazydet.LazyDet} {
		if err := lazydet.Verify(w, lazydet.Options{Engine: eng, Threads: 4}); err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
	}
}

// flaky builds a workload whose Programs closure changes between calls —
// the run1 thread locks lock 0 and writes cell 0, the run2 thread locks
// lock 1 and writes cell 1 — so Verify's two runs must diverge in sync order.
func flaky() *lazydet.Workload {
	calls := 0
	return &lazydet.Workload{
		Name: "api-flaky", HeapWords: 8, Locks: 2,
		Programs: func(threads int) []*lazydet.Program {
			calls++
			lock := int64(0)
			if calls > 1 {
				lock = 1
			}
			progs := make([]*lazydet.Program, threads)
			for tid := range progs {
				b := lazydet.NewProgram("flaky")
				b.Lock(lazydet.Const(lock))
				b.Store(lazydet.Const(lock), lazydet.Const(7))
				b.Unlock(lazydet.Const(lock))
				progs[tid] = b.Build()
			}
			return progs
		},
	}
}

// TestPublicAPIVerifyNamesDivergence: when the two runs disagree, Verify's
// error names the first diverging synchronization event — thread, event
// index and the mismatched operations — not just hash values.
func TestPublicAPIVerifyNamesDivergence(t *testing.T) {
	err := lazydet.Verify(flaky(), lazydet.Options{Engine: lazydet.Consequence, Threads: 2})
	if err == nil {
		t.Fatal("Verify accepted a workload whose runs diverge")
	}
	for _, want := range []string{"not deterministic", "first divergence", "thread 0, event 0", "acquire(0)", "acquire(1)"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("Verify error %q does not contain %q", err, want)
		}
	}
}

// TestPublicAPIVerifyValueDivergence: when only the written values differ —
// identical sync streams — Verify reports a memory divergence and says the
// sync streams matched, pointing at a value rather than an order bug.
func TestPublicAPIVerifyValueDivergence(t *testing.T) {
	calls := 0
	w := &lazydet.Workload{
		Name: "api-value-flaky", HeapWords: 8, Locks: 1,
		Programs: func(threads int) []*lazydet.Program {
			calls++
			val := int64(calls) // differs between Verify's two runs
			progs := make([]*lazydet.Program, threads)
			for tid := range progs {
				b := lazydet.NewProgram("value-flaky")
				b.Lock(lazydet.Const(0))
				b.Store(lazydet.Const(0), lazydet.Const(val))
				b.Unlock(lazydet.Const(0))
				progs[tid] = b.Build()
			}
			return progs
		},
	}
	err := lazydet.Verify(w, lazydet.Options{Engine: lazydet.Consequence, Threads: 2})
	if err == nil {
		t.Fatal("Verify accepted a workload whose final memory diverges")
	}
	for _, want := range []string{"final memory", "sync streams identical"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("Verify error %q does not contain %q", err, want)
		}
	}
}

// TestPublicAPIInvariantOptions: the invariant audit layer is reachable
// through the public Options, and a clean run reports nothing.
func TestPublicAPIInvariantOptions(t *testing.T) {
	var got []*lazydet.InvariantViolation
	w := counter(100)
	for _, eng := range []lazydet.EngineKind{lazydet.Consequence, lazydet.LazyDet} {
		_, err := lazydet.Run(w, lazydet.Options{
			Engine: eng, Threads: 4,
			CheckInvariants: true,
			OnViolation:     func(v *lazydet.InvariantViolation) { got = append(got, v) },
		})
		if err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
	}
	if len(got) != 0 {
		t.Fatalf("clean runs reported %d invariant violations, first: %v", len(got), got[0])
	}
}

func TestPublicAPISpecConfig(t *testing.T) {
	sc := lazydet.DefaultSpecConfig()
	if !sc.Coarsening || !sc.Irrevocable || !sc.PerLockStats {
		t.Fatalf("default speculation config lost the paper's features: %+v", sc)
	}
	if sc.ThresholdPermille != 850 || sc.RetryEvery != 20 {
		t.Fatalf("default thresholds are not the paper's 85%%/20: %+v", sc)
	}
	sc.Coarsening = false
	w := counter(100)
	res, err := lazydet.Run(w, lazydet.Options{Engine: lazydet.LazyDet, Threads: 2, Spec: sc, CollectSpec: true})
	if err != nil {
		t.Fatal(err)
	}
	if m := res.Spec.MeanRunCS(); m > 1.01 {
		t.Fatalf("NoCoarsening via public API not applied: %.2f CS/run", m)
	}
}

func TestPublicAPIEngineNames(t *testing.T) {
	names := []string{
		lazydet.Pthreads.String(), lazydet.Consequence.String(),
		lazydet.TotalOrderWeak.String(), lazydet.TotalOrderWeakNondet.String(),
		lazydet.LazyDet.String(),
	}
	joined := strings.Join(names, " ")
	for _, want := range []string{"pthreads", "Consequence", "TotalOrder-Weak", "LazyDet"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("engine names %q missing %q", joined, want)
		}
	}
}

func TestPublicAPISyscallAndAtomic(t *testing.T) {
	ran := 0
	w := &lazydet.Workload{
		Name: "api-sys", HeapWords: 8, Locks: 1,
		Programs: func(threads int) []*lazydet.Program {
			progs := make([]*lazydet.Program, threads)
			for tid := 0; tid < threads; tid++ {
				b := lazydet.NewProgram("sys")
				r := b.Reg()
				b.Lock(lazydet.Const(0))
				b.Syscall(&lazydet.Syscall{Name: "probe", Work: 5, Effect: func(*lazydet.Thread) { ran++ }})
				b.Unlock(lazydet.Const(0))
				b.AtomicAdd(r, lazydet.Const(1), lazydet.Const(1))
				progs[tid] = b.Build()
			}
			return progs
		},
		Validate: func(read func(int64) int64, threads int) error {
			if got := read(1); got != int64(threads) {
				return fmt.Errorf("atomic counter = %d, want %d", got, threads)
			}
			return nil
		},
	}
	res, err := lazydet.Run(w, lazydet.Options{Engine: lazydet.LazyDet, Threads: 3, CollectSpec: true})
	if err != nil {
		t.Fatal(err)
	}
	if ran != 3 {
		t.Fatalf("syscall effects ran %d times, want 3", ran)
	}
	if res.Spec.Upgrades.Load() == 0 {
		t.Fatal("syscalls under locks should upgrade speculation runs")
	}
}
