// Package lazydet is a deterministic multithreading (DMT) runtime for Go,
// reproducing "Lazy Determinism for Faster Deterministic Multithreading"
// (Merrifield, Roghanchi, Devietti, Eriksson — ASPLOS 2019).
//
// The library executes multithreaded programs — written for its
// deterministic thread VM — under five interchangeable engines:
//
//   - Pthreads: plain locks over shared memory, nondeterministic (the
//     baseline every result is normalized to);
//   - Consequence: eager strong determinism — a deterministic logical
//     clock totally orders all synchronization, and versioned memory
//     isolates threads between synchronization points;
//   - TotalOrderWeak: the same total order without isolation
//     (Kendo-style weak determinism);
//   - TotalOrderWeakNondet: total ordering through a global mutex,
//     nondeterministically;
//   - LazyDet: the paper's contribution — lazy determinism. Lock
//     acquisitions run speculatively with no global coordination;
//     determinism is enforced after the fact by validating, at a
//     deterministic commit point, that no lock in the run's log was
//     acquired by another thread since the run began. Failed runs roll
//     back (thread state snapshot + versioned-memory revert) and re-run.
//
// Programs are built with the structured Builder API:
//
//	b := lazydet.NewProgram("counter")
//	i, v := b.Reg(), b.Reg()
//	b.ForN(i, 1000, func() {
//		b.Lock(lazydet.Const(0))
//		b.Load(v, lazydet.Const(0))
//		b.Store(lazydet.Const(0), func(t *lazydet.Thread) int64 { return t.R(v) + 1 })
//		b.Unlock(lazydet.Const(0))
//	})
//	prog := b.Build()
//
// and run through a Workload:
//
//	w := &lazydet.Workload{
//		Name: "counter", HeapWords: 8, Locks: 1,
//		Programs: func(threads int) []*lazydet.Program { ... },
//	}
//	res, err := lazydet.Run(w, lazydet.Options{Engine: lazydet.LazyDet, Threads: 8})
//
// Two runs of a deterministic engine on the same workload produce
// identical synchronization traces and final memory; Verify checks this,
// and names the first diverging synchronization event when it fails.
//
// Setting Options.CheckInvariants additionally audits the runtime's own
// safety invariants (turn-holder uniqueness, heap commit monotonicity,
// lock-table consistency, speculation-revert exactness) at every turn grant
// and commit/revert, reporting any breach as a structured
// InvariantViolation at the violating operation.
package lazydet

import (
	"fmt"

	"lazydet/internal/core"
	"lazydet/internal/dvm"
	"lazydet/internal/harness"
	"lazydet/internal/invariant"
	"lazydet/internal/trace"
)

// Core program-building types, re-exported from the deterministic VM.
type (
	// Builder assembles a Program with structured control flow.
	Builder = dvm.Builder
	// Program is an immutable instruction sequence for one thread.
	Program = dvm.Program
	// Thread is the per-thread VM state passed to instruction closures.
	Thread = dvm.Thread
	// Reg names a VM register.
	Reg = dvm.Reg
	// Syscall describes an irrevocable external operation.
	Syscall = dvm.Syscall
)

// Experiment-running types, re-exported from the harness.
type (
	// Workload describes a benchmark: memory and lock footprint,
	// per-thread programs, initial data and a final check.
	Workload = harness.Workload
	// Options selects the engine, thread count and instrumentation.
	Options = harness.Options
	// Result carries one run's measurements.
	Result = harness.Result
	// EngineKind names one of the five systems.
	EngineKind = harness.EngineKind
	// SpecConfig tunes LazyDet's speculation (paper §3.4).
	SpecConfig = core.SpecConfig
	// InvariantViolation is the structured diagnostic delivered to
	// Options.OnViolation when Options.CheckInvariants is set: the broken
	// rule, the observing thread, its logical clock and turn status, and
	// the offending lock. With no OnViolation handler a violation panics
	// (repeatably — the engines are deterministic).
	InvariantViolation = invariant.Violation
)

// The five engines of the paper's evaluation.
const (
	Pthreads             = harness.Pthreads
	Consequence          = harness.Consequence
	TotalOrderWeak       = harness.TotalOrderWeak
	TotalOrderWeakNondet = harness.TotalOrderWeakNondet
	LazyDet              = harness.LazyDet
)

// NewProgram starts building a thread program.
func NewProgram(name string) *Builder { return dvm.NewBuilder(name) }

// Const returns an operand for a constant, recorded statically for lazydet-vet.
func Const(v int64) dvm.Val { return dvm.Const(v) }

// FromReg returns an operand reading register r.
func FromReg(r Reg) dvm.Val { return dvm.FromReg(r) }

// Dyn wraps an arbitrary closure as an operand; the static analyzer treats
// it as unknown.
func Dyn(f func(*Thread) int64) dvm.Val { return dvm.Dyn(f) }

// DefaultSpecConfig returns the speculation parameters used by the paper's
// experiments (85 % success threshold, probe every 20 attempts, per-lock
// statistics, coarsening, irrevocable upgrade).
func DefaultSpecConfig() SpecConfig { return core.DefaultSpecConfig() }

// Run executes the workload once under the configured engine.
func Run(w *Workload, opt Options) (*Result, error) { return harness.Run(w, opt) }

// Verify runs the workload twice under the given options (forcing full
// event-log trace recording) and returns an error if the two executions
// differ in final memory or synchronization order — the determinism check.
// On divergence the error names the first diverging synchronization event of
// each affected thread (via internal/trace's log diffing), not just the
// mismatched hashes, so the failure points at a cause rather than a symptom.
func Verify(w *Workload, opt Options) error {
	opt.Trace = true
	opt.LogEvents = true
	r1, err := Run(w, opt)
	if err != nil {
		return err
	}
	r2, err := Run(w, opt)
	if err != nil {
		return err
	}
	if r1.HeapHash == r2.HeapHash && r1.TraceSig == r2.TraceSig {
		return nil
	}
	what := "sync order"
	if r1.HeapHash != r2.HeapHash {
		what = "final memory"
		if r1.TraceSig != r2.TraceSig {
			what = "final memory and sync order"
		}
	}
	if divs := trace.DiffLogs(r1.Recorder, r2.Recorder); len(divs) > 0 {
		return fmt.Errorf("lazydet: %s under %s is not deterministic (%s differ): first divergence at %s",
			w.Name, opt.Engine, what, divs[0])
	}
	// Memory diverged with identical sync streams: a value (not order)
	// difference, e.g. a nondeterministic instruction closure.
	return fmt.Errorf("lazydet: %s under %s is not deterministic: %s differ (memory %x vs %x, sync streams identical)",
		w.Name, opt.Engine, what, r1.HeapHash, r2.HeapHash)
}
