module lazydet

go 1.22
