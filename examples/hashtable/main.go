// Hashtable runs the paper's motivating experiment (Figure 1 / §5.1): the
// Synchrobench lock-based hash table under every engine, sweeping the
// table size, and prints slowdown versus the pthreads baseline.
package main

import (
	"flag"
	"fmt"
	"log"

	"lazydet"
	"lazydet/internal/workloads"
)

func main() {
	threads := flag.Int("threads", 8, "simulated thread count")
	variant := flag.String("variant", "ht", "ht (hand-over-hand) or htlazy (lazy list set)")
	updates := flag.Int("updates", 50, "update percentage")
	flag.Parse()

	engines := []lazydet.EngineKind{
		lazydet.Consequence, lazydet.TotalOrderWeak, lazydet.TotalOrderWeakNondet, lazydet.LazyDet,
	}

	fmt.Printf("Synchrobench %s, %d threads, %d%% updates — slowdown vs pthreads\n\n",
		*variant, *threads, *updates)
	fmt.Printf("%-10s", "objects")
	for _, e := range engines {
		fmt.Printf(" %22s", e)
	}
	fmt.Println()

	for _, size := range []int{512, 2048, 8192, 16384} {
		cfg := workloads.DefaultHTConfig(workloads.HTVariant(*variant))
		cfg.MaxObjects = size
		cfg.UpdatePct = *updates
		w := workloads.NewHashTable(cfg)

		base, err := lazydet.Run(w, lazydet.Options{Engine: lazydet.Pthreads, Threads: *threads})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10d", size)
		for _, e := range engines {
			res, err := lazydet.Run(w, lazydet.Options{Engine: e, Threads: *threads})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf(" %21.1fx", res.Wall.Seconds()/base.Wall.Seconds())
		}
		fmt.Println()
	}
}
