// Quickstart: a bank with fine-grained per-account locks, run under the
// nondeterministic pthreads baseline, eager determinism (Consequence) and
// lazy determinism (LazyDet). Shows the public API end to end: building a
// program, declaring a workload, running engines, and verifying
// determinism.
package main

import (
	"fmt"
	"log"

	"lazydet"
)

const (
	accounts  = 2048
	transfers = 400
)

// bankWorkload moves money between per-account-locked balances; the total
// balance is conserved, which Validate checks under every engine.
func bankWorkload() *lazydet.Workload {
	return &lazydet.Workload{
		Name:      "bank",
		HeapWords: accounts,
		Locks:     accounts,
		Programs: func(threads int) []*lazydet.Program {
			progs := make([]*lazydet.Program, threads)
			for tid := 0; tid < threads; tid++ {
				b := lazydet.NewProgram(fmt.Sprintf("teller-%d", tid))
				i, from, to, bal := b.Reg(), b.Reg(), b.Reg(), b.Reg()
				b.ForN(i, transfers, func() {
					// Draw a deterministic transfer; order the two
					// account locks to avoid deadlock.
					b.Do(func(t *lazydet.Thread) {
						a := t.RandN(accounts)
						c := t.RandN(accounts)
						if a == c {
							c = (c + 1) % accounts
						}
						if a > c {
							a, c = c, a
						}
						t.SetR(from, a)
						t.SetR(to, c)
					})
					b.Lock(lazydet.FromReg(from))
					b.Lock(lazydet.FromReg(to))
					b.Load(bal, lazydet.FromReg(from))
					b.Store(lazydet.FromReg(from), lazydet.Dyn(func(t *lazydet.Thread) int64 { return t.R(bal) - 1 }))
					b.Load(bal, lazydet.FromReg(to))
					b.Store(lazydet.FromReg(to), lazydet.Dyn(func(t *lazydet.Thread) int64 { return t.R(bal) + 1 }))
					b.Unlock(lazydet.FromReg(to))
					b.Unlock(lazydet.FromReg(from))
				})
				progs[tid] = b.Build()
			}
			return progs
		},
		Init: func(set func(addr, val int64), threads int) {
			for a := int64(0); a < accounts; a++ {
				set(a, 100)
			}
		},
		Validate: func(read func(int64) int64, threads int) error {
			var total int64
			for a := int64(0); a < accounts; a++ {
				total += read(a)
			}
			if total != accounts*100 {
				return fmt.Errorf("money not conserved: %d", total)
			}
			return nil
		},
	}
}

func main() {
	w := bankWorkload()
	const threads = 8

	fmt.Printf("%d tellers × %d transfers over %d accounts\n\n", threads, transfers, accounts)
	for _, eng := range []lazydet.EngineKind{lazydet.Pthreads, lazydet.Consequence, lazydet.LazyDet} {
		opt := lazydet.Options{Engine: eng, Threads: threads, CollectSpec: eng == lazydet.LazyDet}
		res, err := lazydet.Run(w, opt)
		if err != nil {
			log.Fatalf("%s: %v", eng, err)
		}
		fmt.Printf("%-24s %10v", eng, res.Wall)
		if res.Spec != nil && res.Spec.Runs.Load() > 0 {
			fmt.Printf("   (%.0f%% speculative, %.0f%% committed, %.1f CS/run)",
				res.Spec.SpecAcquirePct(), res.Spec.SuccessPct(), res.Spec.MeanRunCS())
		}
		fmt.Println()
	}

	fmt.Println("\nverifying determinism (two runs must match exactly):")
	for _, eng := range []lazydet.EngineKind{lazydet.Consequence, lazydet.LazyDet} {
		if err := lazydet.Verify(w, lazydet.Options{Engine: eng, Threads: threads}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-24s deterministic ✓\n", eng)
	}
}
