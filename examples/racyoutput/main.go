// Racyoutput demonstrates strong determinism on a program with a genuine
// data race: threads write to overlapping memory without locks, then a
// lock-protected phase mixes the values. Under pthreads the final state
// varies from run to run; under Consequence and LazyDet every run produces
// bit-identical memory — the paper's strong-determinism guarantee, which
// holds "even in the presence of data races" (§3.2).
package main

import (
	"fmt"
	"log"

	"lazydet"
)

const (
	cells = 64
	steps = 2000
)

func racyWorkload() *lazydet.Workload {
	return &lazydet.Workload{
		Name:      "racy",
		HeapWords: cells + 1,
		Locks:     1,
		Programs: func(threads int) []*lazydet.Program {
			progs := make([]*lazydet.Program, threads)
			for tid := 0; tid < threads; tid++ {
				b := lazydet.NewProgram(fmt.Sprintf("racer-%d", tid))
				i, v := b.Reg(), b.Reg()
				b.ForN(i, steps, func() {
					// Deliberately racy read-modify-write on a shared
					// cell: no lock.
					cell := lazydet.Dyn(func(t *lazydet.Thread) int64 { return (t.R(i)*7 + int64(t.ID)) % cells })
					b.Load(v, cell)
					b.Store(cell, lazydet.Dyn(func(t *lazydet.Thread) int64 { return t.R(v)*31 + int64(t.ID) + 1 }))
					// Occasionally mix through a locked cell, so the
					// racy values propagate between threads.
					b.If(func(t *lazydet.Thread) bool { return t.R(i)%64 == 0 }, func() {
						b.Lock(lazydet.Const(0))
						b.Load(v, lazydet.Const(cells))
						b.Store(lazydet.Const(cells), lazydet.Dyn(func(t *lazydet.Thread) int64 { return t.R(v) ^ t.R(i)<<t.R(i)%13 }))
						b.Unlock(lazydet.Const(0))
					})
				})
				progs[tid] = b.Build()
			}
			return progs
		},
	}
}

func main() {
	w := racyWorkload()
	const threads = 8
	const runs = 4

	fmt.Println("final-memory fingerprints over repeated runs:")
	for _, eng := range []lazydet.EngineKind{lazydet.Pthreads, lazydet.Consequence, lazydet.LazyDet} {
		hashes := map[uint64]int{}
		for r := 0; r < runs; r++ {
			res, err := lazydet.Run(w, lazydet.Options{Engine: eng, Threads: threads})
			if err != nil {
				log.Fatal(err)
			}
			hashes[res.HeapHash]++
		}
		fmt.Printf("%-24s %d distinct outcome(s) in %d runs", eng, len(hashes), runs)
		if eng.Deterministic() {
			if len(hashes) != 1 {
				log.Fatalf("%s must be deterministic", eng)
			}
			fmt.Print("   (guaranteed, even though the program races)")
		} else {
			fmt.Print("   (no guarantee: may differ across runs and machines)")
		}
		fmt.Println()
	}
}
