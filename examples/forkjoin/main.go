// Forkjoin demonstrates deterministic thread creation and joining — the
// pthread_create/pthread_join surface — through the public API: a main
// thread prepares input, spawns suspended workers, and joins them; spawn
// publishes the spawner's writes to the child and join makes the child's
// results visible, under every engine.
package main

import (
	"fmt"
	"log"

	"lazydet"
)

const (
	workers = 4
	items   = 1024
)

func workload() *lazydet.Workload {
	// Layout: [0..items) input, [items..items+workers) per-worker sums,
	// items+workers = grand total.
	inputBase := int64(0)
	sumBase := int64(items)
	totalCell := int64(items + workers)

	return &lazydet.Workload{
		Name:      "forkjoin",
		HeapWords: items + workers + 1,
		Locks:     1,
		Programs: func(threads int) []*lazydet.Program {
			if threads != workers+1 {
				panic("forkjoin: run with -threads = workers+1")
			}
			progs := make([]*lazydet.Program, threads)

			main := lazydet.NewProgram("main")
			i, v, total := main.Reg(), main.Reg(), main.Reg()
			// Prepare the input, then create the workers (they must see
			// every preceding write).
			main.ForN(i, items, func() {
				main.Store(lazydet.Dyn(func(t *lazydet.Thread) int64 { return inputBase + t.R(i) }), lazydet.Dyn(func(t *lazydet.Thread) int64 { return t.R(i) % 10 }))
			})
			main.ForN(i, workers, func() {
				main.Spawn(lazydet.Dyn(func(t *lazydet.Thread) int64 { return t.R(i) + 1 }))
			})
			// Join and reduce.
			main.ForN(i, workers, func() {
				main.Join(lazydet.Dyn(func(t *lazydet.Thread) int64 { return t.R(i) + 1 }))
				main.Load(v, lazydet.Dyn(func(t *lazydet.Thread) int64 { return sumBase + t.R(i) }))
				main.Do(func(t *lazydet.Thread) { t.AddR(total, t.R(v)) })
			})
			main.Store(lazydet.Const(totalCell), lazydet.FromReg(total))
			progs[0] = main.Build()

			per := items / workers
			for w := 1; w <= workers; w++ {
				lo := int64(w-1) * int64(per)
				b := lazydet.NewProgram(fmt.Sprintf("worker-%d", w))
				j, x, acc := b.Reg(), b.Reg(), b.Reg()
				b.For(j, lo, lazydet.Const(lo+int64(per)), func() {
					b.Load(x, lazydet.Dyn(func(t *lazydet.Thread) int64 { return inputBase + t.R(j) }))
					b.Do(func(t *lazydet.Thread) { t.AddR(acc, t.R(x)) })
				})
				b.Store(lazydet.Const(sumBase+int64(w-1)), lazydet.FromReg(acc))
				p := b.Build()
				p.StartSuspended = true
				progs[w] = p
			}
			return progs
		},
		Validate: func(read func(int64) int64, threads int) error {
			var want int64
			for i := int64(0); i < items; i++ {
				want += i % 10
			}
			if got := read(totalCell); got != want {
				return fmt.Errorf("total = %d, want %d", got, want)
			}
			return nil
		},
	}
}

func main() {
	w := workload()
	for _, eng := range []lazydet.EngineKind{lazydet.Pthreads, lazydet.Consequence, lazydet.LazyDet} {
		res, err := lazydet.Run(w, lazydet.Options{Engine: eng, Threads: workers + 1})
		if err != nil {
			log.Fatalf("%s: %v", eng, err)
		}
		fmt.Printf("%-24s %10v   total verified\n", eng, res.Wall)
	}
	if err := lazydet.Verify(w, lazydet.Options{Engine: lazydet.LazyDet, Threads: workers + 1}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("fork-join schedule is deterministic ✓")
}
