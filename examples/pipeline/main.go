// Pipeline shows the two speculation features the paper's Figure 11
// ablates on a ferret-style stage pipeline: coarsening (one speculation
// run spanning many small critical sections) and irrevocable upgrade
// (system calls inside critical sections that would otherwise force a
// revert). It runs full LazyDet against both ablations.
package main

import (
	"fmt"
	"log"

	"lazydet"
)

const (
	items        = 4000
	syscallEvery = 32
)

// pipelineWorkload: thread 0 drains a result area under one hot lock,
// calling a simulated write() inside every 32nd critical section; the
// other threads compute and publish into per-thread slots.
func pipelineWorkload() *lazydet.Workload {
	const slots = 256
	return &lazydet.Workload{
		Name:      "pipeline",
		HeapWords: slots + 1,
		Locks:     2,
		Programs: func(threads int) []*lazydet.Program {
			progs := make([]*lazydet.Program, threads)
			for tid := 0; tid < threads; tid++ {
				b := lazydet.NewProgram(fmt.Sprintf("stage-%d", tid))
				i, v := b.Reg(), b.Reg()
				if tid == 0 {
					// Consumer: many tiny critical sections on one
					// lock, with syscalls inside some of them.
					b.ForN(i, items, func() {
						b.Lock(lazydet.Const(0))
						b.Load(v, lazydet.Dyn(func(t *lazydet.Thread) int64 { return 1 + t.R(i)%slots }))
						b.Store(lazydet.Const(0), lazydet.Dyn(func(t *lazydet.Thread) int64 { return t.R(v) }))
						b.If(func(t *lazydet.Thread) bool { return t.R(i)%syscallEvery == 0 }, func() {
							b.Syscall(&lazydet.Syscall{Name: "write", Work: 200})
						})
						b.Unlock(lazydet.Const(0))
					})
				} else {
					// Producers: compute, then publish lock-free into
					// this thread's slot range.
					b.ForN(i, items/4, func() {
						b.DoCost(10, func(t *lazydet.Thread) {
							t.SetR(v, t.R(i)*2654435761+int64(t.ID))
						})
						b.Store(lazydet.Dyn(func(t *lazydet.Thread) int64 {
							return 1 + (int64(t.ID)*37+t.R(i))%slots
						}), lazydet.FromReg(v))
					})
				}
				progs[tid] = b.Build()
			}
			return progs
		},
	}
}

func main() {
	w := pipelineWorkload()
	const threads = 8

	run := func(label string, spec lazydet.SpecConfig) *lazydet.Result {
		res, err := lazydet.Run(w, lazydet.Options{
			Engine: lazydet.LazyDet, Threads: threads, CollectSpec: true, Spec: spec,
		})
		if err != nil {
			log.Fatalf("%s: %v", label, err)
		}
		fmt.Printf("%-16s %10v   spec %.0f%%, success %.0f%%, %.1f CS/run, %d upgrades, %d reverts\n",
			label, res.Wall,
			res.Spec.SpecAcquirePct(), res.Spec.SuccessPct(), res.Spec.MeanRunCS(),
			res.Spec.Upgrades.Load(), res.Spec.Reverts.Load())
		return res
	}

	base, err := lazydet.Run(w, lazydet.Options{Engine: lazydet.Consequence, Threads: threads})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-16s %10v   (eager determinism)\n", "Consequence", base.Wall)

	full := lazydet.DefaultSpecConfig()
	run("LazyDet", full)

	noCoarsen := lazydet.DefaultSpecConfig()
	noCoarsen.Coarsening = false
	run("NoCoarsening", noCoarsen)

	noIrrev := lazydet.DefaultSpecConfig()
	noIrrev.Irrevocable = false
	run("NoIrrevocable", noIrrev)
}
