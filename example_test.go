package lazydet_test

import (
	"fmt"

	"lazydet"
)

// Example builds a two-thread counter and runs it deterministically under
// LazyDet.
func Example() {
	w := &lazydet.Workload{
		Name:      "example",
		HeapWords: 8,
		Locks:     1,
		Programs: func(threads int) []*lazydet.Program {
			b := lazydet.NewProgram("inc")
			i, v := b.Reg(), b.Reg()
			b.ForN(i, 1000, func() {
				b.Lock(lazydet.Const(0))
				b.Load(v, lazydet.Const(0))
				b.Store(lazydet.Const(0), lazydet.Dyn(func(t *lazydet.Thread) int64 { return t.R(v) + 1 }))
				b.Unlock(lazydet.Const(0))
			})
			p := b.Build()
			progs := make([]*lazydet.Program, threads)
			for t := range progs {
				progs[t] = p
			}
			return progs
		},
		Validate: func(read func(int64) int64, threads int) error {
			if got := read(0); got != int64(threads)*1000 {
				return fmt.Errorf("counter = %d", got)
			}
			return nil
		},
	}
	if _, err := lazydet.Run(w, lazydet.Options{Engine: lazydet.LazyDet, Threads: 2}); err != nil {
		fmt.Println("run failed:", err)
		return
	}
	fmt.Println("counted to 2000 deterministically")
	// Output: counted to 2000 deterministically
}

// ExampleVerify checks that two executions are bit-identical — the
// determinism guarantee.
func ExampleVerify() {
	w := &lazydet.Workload{
		Name:      "verify-example",
		HeapWords: 8,
		Locks:     1,
		Programs: func(threads int) []*lazydet.Program {
			progs := make([]*lazydet.Program, threads)
			for tid := 0; tid < threads; tid++ {
				b := lazydet.NewProgram("writer")
				// Deliberate data race: strong determinism still
				// guarantees a reproducible outcome.
				b.Store(lazydet.Const(0), lazydet.Dyn(func(t *lazydet.Thread) int64 { return int64(t.ID) }))
				b.Lock(lazydet.Const(0))
				b.Unlock(lazydet.Const(0))
				progs[tid] = b.Build()
			}
			return progs
		},
	}
	if err := lazydet.Verify(w, lazydet.Options{Engine: lazydet.Consequence, Threads: 4}); err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("racy program, reproducible outcome")
	// Output: racy program, reproducible outcome
}

// ExampleOptions_speculation tunes LazyDet's speculation parameters — here
// disabling coarsening, one of the paper's Figure 11 ablations.
func ExampleOptions_speculation() {
	sc := lazydet.DefaultSpecConfig()
	sc.Coarsening = false

	w := &lazydet.Workload{
		Name: "ablated", HeapWords: 8, Locks: 4,
		Programs: func(threads int) []*lazydet.Program {
			b := lazydet.NewProgram("p")
			i := b.Reg()
			b.ForN(i, 100, func() {
				l := lazydet.Dyn(func(t *lazydet.Thread) int64 { return t.R(i) % 4 })
				b.Lock(l)
				b.Store(l, lazydet.FromReg(i))
				b.Unlock(l)
			})
			p := b.Build()
			return []*lazydet.Program{p}
		},
	}
	res, err := lazydet.Run(w, lazydet.Options{
		Engine: lazydet.LazyDet, Threads: 1, Spec: sc, CollectSpec: true,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("mean speculation run: %.0f critical section(s)\n", res.Spec.MeanRunCS())
	// Output: mean speculation run: 1 critical section(s)
}
