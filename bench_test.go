// Benchmarks regenerating each table and figure of the paper's evaluation
// in testing.B form. One benchmark (with sub-benchmarks for the series)
// corresponds to each table and figure; `lazydet-bench` produces the
// full formatted sweeps, while these provide repeatable, -benchmem-able
// measurements of the same code paths.
package lazydet_test

import (
	"fmt"
	"testing"

	"lazydet"
	"lazydet/internal/memmodel"
	"lazydet/internal/vheap"
	"lazydet/internal/workloads"
)

const benchThreads = 8

func runOnce(b *testing.B, w *lazydet.Workload, opt lazydet.Options) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := lazydet.Run(w, opt); err != nil {
			b.Fatal(err)
		}
	}
}

func htCfg(variant workloads.HTVariant) workloads.HTConfig {
	cfg := workloads.DefaultHTConfig(variant)
	cfg.OpsPerThread = 100
	return cfg
}

// BenchmarkFigure1_EagerHashTable measures the motivating experiment: the
// ht microbenchmark under the three eager systems (Figure 1).
func BenchmarkFigure1_EagerHashTable(b *testing.B) {
	w := workloads.NewHashTable(htCfg(workloads.HT))
	for _, eng := range []lazydet.EngineKind{
		lazydet.Pthreads, lazydet.Consequence, lazydet.TotalOrderWeak, lazydet.TotalOrderWeakNondet,
	} {
		b.Run(eng.String(), func(b *testing.B) {
			runOnce(b, w, lazydet.Options{Engine: eng, Threads: benchThreads})
		})
	}
}

// BenchmarkFigure7_HashTableSweep measures both hash-table variants under
// every system (Figure 7's panels at their default sweep point).
func BenchmarkFigure7_HashTableSweep(b *testing.B) {
	for _, variant := range []workloads.HTVariant{workloads.HT, workloads.HTLazy} {
		w := workloads.NewHashTable(htCfg(variant))
		for _, eng := range []lazydet.EngineKind{
			lazydet.Pthreads, lazydet.Consequence, lazydet.TotalOrderWeak,
			lazydet.TotalOrderWeakNondet, lazydet.LazyDet,
		} {
			b.Run(fmt.Sprintf("%s/%s", variant, eng), func(b *testing.B) {
				runOnce(b, w, lazydet.Options{Engine: eng, Threads: benchThreads})
			})
		}
	}
}

// BenchmarkHTAllocs measures the allocation behavior of the strong
// deterministic engines on both hash-table variants (run with -benchmem).
// The flat page tables and frame/page pools target exactly this path: after
// per-run setup, sync epochs should draw every dirty-page frame and
// published page version from a pool rather than the allocator.
func BenchmarkHTAllocs(b *testing.B) {
	for _, variant := range []workloads.HTVariant{workloads.HT, workloads.HTLazy} {
		w := workloads.NewHashTable(htCfg(variant))
		for _, eng := range []lazydet.EngineKind{lazydet.Consequence, lazydet.LazyDet} {
			b.Run(fmt.Sprintf("%s/%s", variant, eng), func(b *testing.B) {
				b.ReportAllocs()
				runOnce(b, w, lazydet.Options{Engine: eng, Threads: benchThreads})
			})
		}
	}
}

// burstWorkload is the chain-forming shape for the publication-elision
// benchmark: each thread's DLC-staggered bursts of short reacquire runs of
// its own lock, separated by heavy compute, give the same-owner elision
// path uninterrupted runs of turns to merge stages across.
func burstWorkload(bursts, burstLen int64) *lazydet.Workload {
	const heavy = 10_000
	return &lazydet.Workload{
		Name:      "burst",
		HeapWords: 64,
		Locks:     64,
		Programs: func(threads int) []*lazydet.Program {
			progs := make([]*lazydet.Program, threads)
			for tid := 0; tid < threads; tid++ {
				b := lazydet.NewProgram(fmt.Sprintf("burst-%d", tid))
				i, j, v := b.Reg(), b.Reg(), b.Reg()
				lock := lazydet.Const(int64(tid))
				addr := lazydet.Const(int64(tid))
				b.DoCost(1+int64(tid)*1000, func(*lazydet.Thread) {})
				b.ForN(i, bursts, func() {
					b.DoCost(heavy, func(*lazydet.Thread) {})
					b.ForN(j, burstLen, func() {
						b.Lock(lock)
						b.Load(v, addr)
						b.Store(addr, lazydet.Dyn(func(t *lazydet.Thread) int64 { return t.R(v) + 1 }))
						b.Unlock(lock)
					})
				})
				progs[tid] = b.Build()
			}
			return progs
		},
		Validate: func(read func(int64) int64, threads int) error {
			for tid := 0; tid < threads; tid++ {
				if got, want := read(int64(tid)), bursts*burstLen; got != want {
					return fmt.Errorf("thread %d counter = %d, want %d", tid, got, want)
				}
			}
			return nil
		},
	}
}

// BenchmarkElision_PublicationDiscipline measures same-owner publication
// elision against its -eagerpublish differential oracle on the strong
// engines: the hash-table microbenchmarks (dynamically addressed locks,
// where the adaptive policy should learn elision off and cost ~nothing)
// and the burst shape (reacquire runs, where stages chain and physical
// commits collapse).
func BenchmarkElision_PublicationDiscipline(b *testing.B) {
	type point struct {
		name string
		w    *lazydet.Workload
		eng  lazydet.EngineKind
	}
	points := []point{
		{"ht/LazyDet", workloads.NewHashTable(htCfg(workloads.HT)), lazydet.LazyDet},
		{"htlazy/LazyDet", workloads.NewHashTable(htCfg(workloads.HTLazy)), lazydet.LazyDet},
		{"burst/Consequence", burstWorkload(10, 20), lazydet.Consequence},
		{"burst/LazyDet", burstWorkload(10, 20), lazydet.LazyDet},
	}
	for _, p := range points {
		for _, eager := range []bool{false, true} {
			name := p.name + "/elided"
			if eager {
				name = p.name + "/eager"
			}
			b.Run(name, func(b *testing.B) {
				runOnce(b, p.w, lazydet.Options{
					Engine: p.eng, Threads: benchThreads, EagerPublish: eager,
				})
			})
		}
	}
}

// BenchmarkTable1_LockStatistics measures the instrumented pthreads runs
// that produce Table 1's lock statistics.
func BenchmarkTable1_LockStatistics(b *testing.B) {
	for _, name := range []string{"barnes", "ferret", "dedup", "blackscholes"} {
		w := workloads.ByName(name).New(1)
		b.Run(name, func(b *testing.B) {
			runOnce(b, w, lazydet.Options{Engine: lazydet.Pthreads, Threads: benchThreads, CountLocks: true})
		})
	}
}

// BenchmarkFigure8_Applications measures the lock-based application group
// under eager and lazy determinism (Figure 8's headline comparison).
func BenchmarkFigure8_Applications(b *testing.B) {
	for _, name := range []string{
		"barnes", "ocean_cp", "ferret", "water_nsquared",
		"reverse_index", "water_spatial", "dedup", "radix",
	} {
		w := workloads.ByName(name).New(1)
		for _, eng := range []lazydet.EngineKind{lazydet.Pthreads, lazydet.Consequence, lazydet.LazyDet} {
			b.Run(fmt.Sprintf("%s/%s", name, eng), func(b *testing.B) {
				runOnce(b, w, lazydet.Options{Engine: eng, Threads: benchThreads})
			})
		}
	}
}

// BenchmarkFigure9_Scalability measures LazyDet and Consequence across
// thread counts on ferret (Figure 9's most discussed series).
func BenchmarkFigure9_Scalability(b *testing.B) {
	w := workloads.ByName("ferret").New(1)
	for _, threads := range []int{2, 8, 16} {
		for _, eng := range []lazydet.EngineKind{lazydet.Consequence, lazydet.LazyDet} {
			b.Run(fmt.Sprintf("%s/threads-%d", eng, threads), func(b *testing.B) {
				runOnce(b, w, lazydet.Options{Engine: eng, Threads: threads})
			})
		}
	}
}

// BenchmarkFigure10_Utilization measures runs with blocked-time accounting
// enabled, the instrumentation behind Figure 10.
func BenchmarkFigure10_Utilization(b *testing.B) {
	w := workloads.ByName("water_nsquared").New(1)
	for _, eng := range []lazydet.EngineKind{lazydet.Consequence, lazydet.LazyDet} {
		b.Run(eng.String(), func(b *testing.B) {
			runOnce(b, w, lazydet.Options{Engine: eng, Threads: benchThreads, MeasureTimes: true})
		})
	}
}

// BenchmarkFigure11_Ablations measures LazyDet with each speculation
// feature disabled, on ferret (Figure 11's strongest effects).
func BenchmarkFigure11_Ablations(b *testing.B) {
	w := workloads.ByName("ferret").New(1)
	variants := map[string]func(*lazydet.SpecConfig){
		"Full":           func(*lazydet.SpecConfig) {},
		"NoCoarsening":   func(s *lazydet.SpecConfig) { s.Coarsening = false },
		"NoIrrevocable":  func(s *lazydet.SpecConfig) { s.Irrevocable = false },
		"NoPerLockStats": func(s *lazydet.SpecConfig) { s.PerLockStats = false },
	}
	for _, name := range []string{"Full", "NoCoarsening", "NoIrrevocable", "NoPerLockStats"} {
		sc := lazydet.DefaultSpecConfig()
		variants[name](&sc)
		b.Run(name, func(b *testing.B) {
			runOnce(b, w, lazydet.Options{Engine: lazydet.LazyDet, Threads: benchThreads, Spec: sc})
		})
	}
}

// BenchmarkTable2_SpeculationStats measures LazyDet runs with speculation
// statistics collection, the instrumentation behind Table 2.
func BenchmarkTable2_SpeculationStats(b *testing.B) {
	for _, name := range []string{"barnes", "ferret", "dedup"} {
		w := workloads.ByName(name).New(1)
		b.Run(name, func(b *testing.B) {
			runOnce(b, w, lazydet.Options{Engine: lazydet.LazyDet, Threads: benchThreads, CollectSpec: true})
		})
	}
}

// BenchmarkFigure12_RevertCost measures a conflict-heavy configuration
// that exercises the revert path whose cost Figure 12 characterizes.
func BenchmarkFigure12_RevertCost(b *testing.B) {
	cfg := htCfg(workloads.HT)
	cfg.MaxObjects = 512 // small table: frequent conflicts, frequent reverts
	w := workloads.NewHashTable(cfg)
	b.Run("contended-ht", func(b *testing.B) {
		runOnce(b, w, lazydet.Options{Engine: lazydet.LazyDet, Threads: benchThreads, CollectSpec: true})
	})
}

// BenchmarkFigures4to6_MemoryModels measures the litmus-outcome
// enumeration behind the consistency-model comparison (Figures 4–6).
func BenchmarkFigures4to6_MemoryModels(b *testing.B) {
	p := memmodel.Figure4()
	b.Run("TSO", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			memmodel.TSO(p)
		}
	})
	b.Run("DLRC", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			memmodel.DLRC(p)
		}
	})
	b.Run("DDRF", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			memmodel.DDRF(p)
		}
	})
}

// BenchmarkSection42_VersionRetention measures the §4.2 space/time claim:
// commits against a DDRF-style coalescing version list versus a
// DLRC-style heap retaining full version chains.
func BenchmarkSection42_VersionRetention(b *testing.B) {
	run := func(b *testing.B, opts ...vheap.Option) {
		h := vheap.New(1<<14, opts...)
		v := h.NewView()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			v.Store(int64(i%(1<<14)), int64(i))
			v.Commit()
		}
	}
	b.Run("DDRF-coalesced", func(b *testing.B) { run(b) })
	b.Run("DLRC-full-chains", func(b *testing.B) { run(b, vheap.WithFullVersionChains()) })
}

// BenchmarkExtension_SpeculativeAtomics measures the §7 extension: atomics
// inside speculation runs versus eager (run-terminating) atomics.
func BenchmarkExtension_SpeculativeAtomics(b *testing.B) {
	w := workloads.AtomicHistogram(1)
	on := lazydet.DefaultSpecConfig()
	off := lazydet.DefaultSpecConfig()
	off.SpeculativeAtomics = false
	b.Run("speculative", func(b *testing.B) {
		runOnce(b, w, lazydet.Options{Engine: lazydet.LazyDet, Threads: benchThreads, Spec: on})
	})
	b.Run("eager", func(b *testing.B) {
		runOnce(b, w, lazydet.Options{Engine: lazydet.LazyDet, Threads: benchThreads, Spec: off})
	})
}

// BenchmarkExtension_WriteAwareValidation measures dependence-aware
// conflict detection (§6.2 direction) on a read-mostly hash table, where
// the paper's G_l scheme aborts on reader-reader overlap and write-aware
// detection does not.
func BenchmarkExtension_WriteAwareValidation(b *testing.B) {
	cfg := htCfg(workloads.HT)
	cfg.UpdatePct = 10
	cfg.MaxObjects = 512 // small table: heavy lock sharing
	w := workloads.NewHashTable(cfg)
	gl := lazydet.DefaultSpecConfig()
	wa := lazydet.DefaultSpecConfig()
	wa.WriteAware = true
	b.Run("paper-Gl", func(b *testing.B) {
		runOnce(b, w, lazydet.Options{Engine: lazydet.LazyDet, Threads: benchThreads, Spec: gl})
	})
	b.Run("write-aware", func(b *testing.B) {
		runOnce(b, w, lazydet.Options{Engine: lazydet.LazyDet, Threads: benchThreads, Spec: wa})
	})
}

// BenchmarkExtension_LinkedList measures the lock-coupling sorted list
// under eager and lazy determinism.
func BenchmarkExtension_LinkedList(b *testing.B) {
	w := workloads.NewLinkedList(workloads.DefaultLLConfig())
	for _, eng := range []lazydet.EngineKind{lazydet.Pthreads, lazydet.Consequence, lazydet.LazyDet} {
		b.Run(eng.String(), func(b *testing.B) {
			runOnce(b, w, lazydet.Options{Engine: eng, Threads: benchThreads})
		})
	}
}

// BenchmarkExtension_BoundedQueue measures the condition-variable pipeline
// (speculation terminates at every condvar operation, paper footnote 2).
func BenchmarkExtension_BoundedQueue(b *testing.B) {
	w := workloads.NewBoundedQueue(40, 4)
	for _, eng := range []lazydet.EngineKind{lazydet.Pthreads, lazydet.Consequence, lazydet.LazyDet} {
		b.Run(eng.String(), func(b *testing.B) {
			runOnce(b, w, lazydet.Options{Engine: eng, Threads: benchThreads})
		})
	}
}
