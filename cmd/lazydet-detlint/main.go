// Command lazydet-detlint runs the determinism lint (internal/detlint) over
// the engine-deterministic packages: wall-clock reads, math/rand, map
// iteration and multi-case selects are forbidden there unless annotated
// with //lazydet:nondeterministic and a reason.
//
//	lazydet-detlint                 # lint the default engine packages
//	lazydet-detlint ./internal/dvm  # lint specific directories
//	lazydet-detlint -json
//
// Exit status: 0 clean, 1 findings, 2 usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lazydet/internal/detlint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	root := flag.String("root", ".", "repository root for the default package set")
	flag.Parse()

	dirs := flag.Args()
	if len(dirs) == 0 {
		dirs = detlint.DefaultDirs(*root)
	}
	findings, err := detlint.LintDirs(dirs)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
		fmt.Printf("%d directory(ies) linted, %d finding(s)\n", len(dirs), len(findings))
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}
