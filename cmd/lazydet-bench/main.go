// Command lazydet-bench regenerates the tables and figures of the paper's
// evaluation. Examples:
//
//	lazydet-bench -fig 7            # the hash-table sweeps
//	lazydet-bench -table 1          # lock statistics
//	lazydet-bench -all -quick       # everything, shrunk sweeps
//	lazydet-bench -fig 8 -reps 5    # the paper's repetition count
//
// It is also the perf-gate front end: -report runs the report suite and
// writes a structured JSON run report; -baseline diffs it against a previous
// report, failing (exit 1) when a gated deterministic metric regresses more
// than -gate percent; -compare diffs two existing report files without
// running anything.
//
//	lazydet-bench -report new.json
//	lazydet-bench -report new.json -baseline bench/baseline.json -gate 25
//	lazydet-bench -compare new.json -baseline old.json -gate 15
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"lazydet/internal/core"
	"lazydet/internal/experiments"
	"lazydet/internal/telemetry"
)

// diffReports loads both reports, prints the comparison, and returns the
// process exit code: 0 when the gate passes, 1 when it fails.
func diffReports(basePath, curPath string, gatePct float64) int {
	base, err := telemetry.ReadReport(basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	cur, err := telemetry.ReadReport(curPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	c := telemetry.Compare(base, cur, gatePct)
	c.Format(os.Stdout)
	if !c.Ok() {
		fmt.Printf("perf gate FAILED: %d regression(s), %d missing run(s) (gate %.1f%%)\n",
			len(c.Regressions), len(c.MissingRuns), gatePct)
		return 1
	}
	fmt.Printf("perf gate passed (gate %.1f%%)\n", gatePct)
	return 0
}

func main() {
	fig := flag.Int("fig", 0, "regenerate figure N (1, 7, 8, 9, 10, 11, 12)")
	table := flag.Int("table", 0, "regenerate table N (1, 2)")
	all := flag.Bool("all", false, "regenerate every table and figure")
	versions := flag.Bool("versions", false, "run the §4.2 version-count experiment")
	arbsweep := flag.Bool("arbsweep", false, "run the arbiter-cost-vs-threads sweep (tournament tree vs flat scan)")
	dispatchsweep := flag.Bool("dispatchsweep", false, "run the dispatch-cost sweep (interpreter vs threaded code vs direct, per program shape)")
	compiled := flag.Bool("compiled", false, "run the deterministic engines on the threaded-code backend; with -report and -baseline, the interpreter baseline's gated metrics act as the differential oracle")
	eagerPublish := flag.Bool("eagerpublish", false, "publish every release eagerly; with -report and -baseline, the elided baseline's gated metrics outside the elision-variant set act as the differential oracle")
	reps := flag.Int("reps", 3, "repetitions per data point (paper: 5)")
	threads := flag.Int("threads", 0, "override the experiment's thread count")
	scale := flag.Int("scale", 1, "workload problem-size multiplier")
	quick := flag.Bool("quick", false, "shrink sweeps for a fast smoke run")
	csvDir := flag.String("csv", "", "also write each experiment's rows as CSV files into this directory")
	report := flag.String("report", "", "run the report suite and write a structured JSON run report to this file")
	baseline := flag.String("baseline", "", "baseline report to diff against (with -report or -compare)")
	gate := flag.Float64("gate", 0, "fail when a gated deterministic metric regresses more than this percent against -baseline; 0 reports without failing")
	compare := flag.String("compare", "", "diff this existing report file against -baseline without running anything")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the selected experiments to this file; samples carry engine-phase pprof labels (grant/commit/validate)")
	memprofile := flag.String("memprofile", "", "write an allocation profile of the selected experiments to this file")
	flag.Parse()

	if *cpuprofile != "" {
		core.EnableProfileLabels()
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC() // up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	cfg := experiments.Config{
		Out:          os.Stdout,
		Reps:         *reps,
		Threads:      *threads,
		Scale:        *scale,
		Quick:        *quick,
		CSVDir:       *csvDir,
		Compiled:     *compiled,
		EagerPublish: *eagerPublish,
	}

	if *compare != "" {
		if *baseline == "" {
			fmt.Fprintln(os.Stderr, "-compare requires -baseline")
			os.Exit(2)
		}
		os.Exit(diffReports(*baseline, *compare, *gate))
	}
	if *report != "" {
		suite, err := experiments.ReportSuite(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := suite.WriteFile(*report); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d runs to %s\n", len(suite.Runs), *report)
		if *baseline != "" {
			os.Exit(diffReports(*baseline, *report, *gate))
		}
		return
	}

	type job struct {
		name string
		run  func(experiments.Config) error
	}
	var jobs []job
	add := func(name string, run func(experiments.Config) error) {
		jobs = append(jobs, job{name, run})
	}

	figs := map[int]func(experiments.Config) error{
		1: experiments.Fig1, 7: experiments.Fig7, 8: experiments.Fig8,
		9: experiments.Fig9, 10: experiments.Fig10, 11: experiments.Fig11,
		12: experiments.Fig12,
	}
	tables := map[int]func(experiments.Config) error{
		1: experiments.Table1, 2: experiments.Table2,
	}

	switch {
	case *all:
		add("table 1", experiments.Table1)
		add("figure 1", experiments.Fig1)
		add("figure 7", experiments.Fig7)
		add("figure 8", experiments.Fig8)
		add("figure 9", experiments.Fig9)
		add("figure 10", experiments.Fig10)
		add("figure 11", experiments.Fig11)
		add("table 2", experiments.Table2)
		add("figure 12", experiments.Fig12)
		add("versions", experiments.Versions)
		add("arbsweep", experiments.ArbiterSweep)
		add("dispatchsweep", experiments.DispatchSweep)
	case *fig != 0:
		f, ok := figs[*fig]
		if !ok {
			fmt.Fprintf(os.Stderr, "no such figure: %d (have 1, 7, 8, 9, 10, 11, 12)\n", *fig)
			os.Exit(2)
		}
		add(fmt.Sprintf("figure %d", *fig), f)
	case *table != 0:
		f, ok := tables[*table]
		if !ok {
			fmt.Fprintf(os.Stderr, "no such table: %d (have 1, 2)\n", *table)
			os.Exit(2)
		}
		add(fmt.Sprintf("table %d", *table), f)
	case *versions:
		add("versions", experiments.Versions)
	case *arbsweep:
		add("arbsweep", experiments.ArbiterSweep)
	case *dispatchsweep:
		add("dispatchsweep", experiments.DispatchSweep)
	default:
		flag.Usage()
		os.Exit(2)
	}

	for _, j := range jobs {
		if err := j.run(cfg); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", j.name, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
