package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"lazydet/internal/progcheck"
)

var update = flag.Bool("update", false, "rewrite the vet JSON golden")

// TestVetJSONGolden pins the full machine-readable output of
// `lazydet-vet -all -json` plus `-litmus -json` — findings, speculation-hint
// verdicts and witness strings for every built-in workload, the service
// simulation and the litmus corpus. CI diffs this golden, so an analyzer or
// workload change that shifts any verdict must regenerate it deliberately:
// `go test ./cmd/lazydet-vet -update`.
func TestVetJSONGolden(t *testing.T) {
	var all []jsonReport
	for _, group := range []struct {
		litmus bool
	}{{false}, {true}} {
		targets, err := buildTargets("", !group.litmus, group.litmus, 8, 1)
		if err != nil {
			t.Fatal(err)
		}
		for _, tg := range targets {
			rep := progcheck.Check(tg.progs)
			// Wall times are machine-dependent; everything else is a pure
			// function of the program sets.
			rep.Stats.AnalysisNs = 0
			rep.Stats.LockstateNs = 0
			rep.Stats.DeadlockNs = 0
			rep.Stats.RaceNs = 0
			rep.Stats.FootprintNs = 0
			verdict := "clean"
			if len(rep.Findings) > 0 {
				verdict = "findings"
			}
			if tg.isLitmus {
				if classesEqual(rep.Classes(), tg.want) && hintsMatch(rep, tg.wantHints) {
					verdict = "as-expected"
				} else {
					verdict = "mismatch"
				}
			}
			all = append(all, jsonReport{
				Target: tg.name, Report: rep,
				Expected: tg.want, ExpectedHints: tg.wantHints,
				Verdict: verdict,
			})
		}
	}
	for _, r := range all {
		if r.Verdict == "mismatch" {
			t.Errorf("%s: analyzer verdict drifted from the litmus expectation", r.Target)
		}
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	for _, r := range all {
		if err := enc.Encode(r); err != nil {
			t.Fatal(err)
		}
	}
	got := buf.Bytes()

	path := filepath.Join("testdata", "vet.golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("vet JSON output drifted from golden (run `go test ./cmd/lazydet-vet -update` to refresh after verifying the new verdicts)")
	}
}
