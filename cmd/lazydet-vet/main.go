// Command lazydet-vet runs the internal/progcheck static analyzer over dvm
// program sets: per-thread control-flow graphs, a forward abstract
// interpretation of lock/barrier state, cross-program deadlock cycles,
// static data-race candidates, and per-lock critical-section footprints —
// the speculation-hint verdicts (disjoint / conflicting / commutative /
// unknown) that harness.Options.SpecHints feeds back into the LazyDet
// engine. The open-loop service simulation's program set is vetted too
// (target "opensim"), so its hint verdicts are visible and pinned the same
// way as the benchmark workloads'.
//
//	lazydet-vet -all                    # vet every built-in workload
//	lazydet-vet -workload barnes        # vet one workload
//	lazydet-vet -workload opensim       # vet the service simulation's programs
//	lazydet-vet -litmus                 # run the known-bad corpus
//	lazydet-vet -all -json              # machine-readable reports
//	lazydet-vet -all -werror            # exit nonzero on warnings too
//
// Exit status: 0 when every analyzed set is clean, 1 when any set has
// error-severity findings (or warnings under -werror), 2 on usage errors.
// Litmus targets also fail on drift between the analyzer's verdicts — the
// finding classes or the speculation hints — and the corpus expectations.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"lazydet/internal/dvm"
	"lazydet/internal/opensim"
	"lazydet/internal/progcheck"
	"lazydet/internal/workloads"
)

// target is one named program set to analyze.
type target struct {
	name  string
	progs []*dvm.Program
	// want lists the finding classes a litmus target must produce; nil for
	// workloads, which must be clean.
	want []progcheck.Class
	// wantHints pins the litmus target's speculation verdicts when non-nil.
	wantHints map[int64]progcheck.SpecVerdict
	isLitmus  bool
}

// jsonReport is the machine-readable per-target output.
type jsonReport struct {
	Target        string                          `json:"target"`
	Report        *progcheck.Report               `json:"report"`
	Expected      []progcheck.Class               `json:"expected,omitempty"`
	ExpectedHints map[int64]progcheck.SpecVerdict `json:"expected_hints,omitempty"`
	Verdict       string                          `json:"verdict"` // "clean", "findings", "as-expected", "mismatch"
}

func buildTargets(workload string, all, litmus bool, threads, scale int) ([]target, error) {
	var ts []target
	if litmus {
		for _, c := range progcheck.Litmus() {
			ts = append(ts, target{name: "litmus/" + c.Name, progs: c.Build(), want: c.Want, wantHints: c.WantHints, isLitmus: true})
		}
		return ts, nil
	}
	if all {
		for _, variant := range []string{"ht", "htlazy"} {
			cfg := workloads.DefaultHTConfig(workloads.HTVariant(variant))
			w := workloads.NewHashTable(cfg)
			ts = append(ts, target{name: variant, progs: w.Programs(threads)})
		}
		for _, g := range workloads.All() {
			ts = append(ts, target{name: g.Name, progs: g.New(scale).Programs(threads)})
		}
		ts = append(ts, target{name: "opensim", progs: opensim.VetPrograms(opensim.Config{Workers: threads - 1}, threads)})
		return ts, nil
	}
	switch workload {
	case "":
		return nil, fmt.Errorf("one of -workload, -all or -litmus is required")
	case "ht", "htlazy":
		cfg := workloads.DefaultHTConfig(workloads.HTVariant(workload))
		w := workloads.NewHashTable(cfg)
		ts = append(ts, target{name: workload, progs: w.Programs(threads)})
	case "opensim":
		ts = append(ts, target{name: "opensim", progs: opensim.VetPrograms(opensim.Config{Workers: threads - 1}, threads)})
	default:
		g := workloads.ByName(workload)
		if g == nil {
			return nil, fmt.Errorf("unknown workload %q", workload)
		}
		ts = append(ts, target{name: g.Name, progs: g.New(scale).Programs(threads)})
	}
	return ts, nil
}

// classesEqual compares sorted class slices.
func classesEqual(a, b []progcheck.Class) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// hintsMatch reports whether the report's speculation verdicts equal the
// litmus expectation exactly; a nil expectation leaves them unchecked.
func hintsMatch(rep *progcheck.Report, want map[int64]progcheck.SpecVerdict) bool {
	if want == nil {
		return true
	}
	got := map[int64]progcheck.SpecVerdict{}
	if rep.Hints != nil {
		for l, v := range rep.Hints.Verdicts {
			got[l] = v
		}
	}
	if len(got) != len(want) {
		return false
	}
	for l, v := range want {
		if got[l] != v {
			return false
		}
	}
	return true
}

func main() {
	workload := flag.String("workload", "", "vet one workload's programs (see lazydet-run -list)")
	all := flag.Bool("all", false, "vet every built-in workload")
	litmus := flag.Bool("litmus", false, "run the known-bad litmus corpus and check expected verdicts")
	threads := flag.Int("threads", 8, "thread count the program set is built for")
	scale := flag.Int("scale", 1, "problem-size multiplier")
	jsonOut := flag.Bool("json", false, "emit one JSON object per target instead of human-readable reports")
	werror := flag.Bool("werror", false, "treat warn-severity findings as failures")
	flag.Parse()

	targets, err := buildTargets(*workload, *all, *litmus, *threads, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	failed := false
	for _, t := range targets {
		rep := progcheck.Check(t.progs)
		bad := rep.CountBySeverity(progcheck.SevError) > 0
		if *werror && rep.CountBySeverity(progcheck.SevWarn) > 0 {
			bad = true
		}

		verdict := "clean"
		if len(rep.Findings) > 0 {
			verdict = "findings"
		}
		if t.isLitmus {
			// Litmus targets fail when the analyzer's verdict drifts from
			// the corpus expectation — the finding classes or the
			// speculation hints — in either direction.
			if classesEqual(rep.Classes(), t.want) && hintsMatch(rep, t.wantHints) {
				verdict = "as-expected"
			} else {
				verdict = "mismatch"
				failed = true
			}
		} else if bad {
			failed = true
		}

		if *jsonOut {
			if err := enc.Encode(jsonReport{Target: t.name, Report: rep, Expected: t.want, ExpectedHints: t.wantHints, Verdict: verdict}); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			continue
		}
		fmt.Printf("== %s ==\n", t.name)
		if t.isLitmus {
			fmt.Printf("expected: %v, verdict: %s\n", t.want, verdict)
		}
		fmt.Print(rep.Human())
		fmt.Println()
	}
	if failed {
		os.Exit(1)
	}
}
