// Command lazydet-trace is the determinism-debugging tool: it runs a
// workload twice under an engine with full synchronization-event logging
// and reports whether the two executions are identical — and if not, the
// first point of divergence in each thread's event stream.
//
// Deterministic engines must always report identical runs; the
// nondeterministic engines show where executions actually diverge, which is
// exactly the reproducibility problem DMT systems eliminate.
//
// With -chrometrace, run A's per-thread timeline — turn waits, speculation
// runs, commits and reverts, stamped in deterministic logical clock (DLC)
// time rather than wall time — is exported as a Chrome-tracing/Perfetto JSON
// file (load it at chrome://tracing or ui.perfetto.dev). Because the
// timestamps are DLC ticks, a deterministic engine exports a byte-identical
// trace on every run of the same spec.
//
//	lazydet-trace -workload ht -engine lazydet -threads 8
//	lazydet-trace -workload ht -engine weak-nondet -threads 8
//	lazydet-trace -workload ferret -engine lazydet -dump 20
//	lazydet-trace -workload ht -engine lazydet -chrometrace trace.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lazydet/internal/harness"
	"lazydet/internal/telemetry"
	"lazydet/internal/trace"
	"lazydet/internal/workloads"
)

func main() {
	workload := flag.String("workload", "ht", "workload name")
	engine := flag.String("engine", "lazydet", "engine: pthreads, consequence, weak, weak-nondet, lazydet")
	threads := flag.Int("threads", 8, "simulated thread count")
	scale := flag.Int("scale", 1, "problem-size multiplier")
	dump := flag.Int("dump", 0, "print the first N events of each thread of run A")
	chrome := flag.String("chrometrace", "", "export run A's per-thread DLC-time spans as Chrome-tracing JSON to this file")
	flag.Parse()

	var ek harness.EngineKind
	switch strings.ToLower(*engine) {
	case "pthreads":
		ek = harness.Pthreads
	case "consequence":
		ek = harness.Consequence
	case "weak", "totalorder-weak":
		ek = harness.TotalOrderWeak
	case "weak-nondet", "totalorder-weak-nondet":
		ek = harness.TotalOrderWeakNondet
	case "lazydet":
		ek = harness.LazyDet
	default:
		fmt.Fprintf(os.Stderr, "unknown engine %q\n", *engine)
		os.Exit(2)
	}

	var w *harness.Workload
	switch *workload {
	case "ht", "htlazy":
		w = workloads.NewHashTable(workloads.DefaultHTConfig(workloads.HTVariant(*workload)))
	default:
		g := workloads.ByName(*workload)
		if g == nil {
			fmt.Fprintf(os.Stderr, "unknown workload %q\n", *workload)
			os.Exit(2)
		}
		w = g.New(*scale)
	}

	opt := harness.Options{Engine: ek, Threads: *threads, LogEvents: true, TelemetrySpans: *chrome != ""}
	runA, err := harness.Run(w, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	runB, err := harness.Run(w, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Printf("workload %s under %s, %d threads\n", w.Name, ek, *threads)
	if *chrome != "" {
		f, err := os.Create(*chrome)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		proc := fmt.Sprintf("%s/%s/t%d", w.Name, ek, *threads)
		if err := telemetry.WriteChromeTrace(f, runA.Telemetry, proc); err != nil {
			f.Close()
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("chrome trace (run A, DLC timebase): %s\n", *chrome)
	}
	fmt.Printf("run A: %d sync events, trace %016x, memory %016x\n", runA.SyncEvents, runA.TraceSig, runA.HeapHash)
	fmt.Printf("run B: %d sync events, trace %016x, memory %016x\n", runB.SyncEvents, runB.TraceSig, runB.HeapHash)

	if *dump > 0 {
		for tid := 0; tid < *threads; tid++ {
			log := runA.Recorder.ThreadLog(tid)
			n := *dump
			if n > len(log) {
				n = len(log)
			}
			fmt.Printf("thread %d (run A, first %d of %d):\n", tid, n, len(log))
			for i := 0; i < n; i++ {
				fmt.Printf("  %4d %s\n", i, log[i])
			}
		}
	}

	divs := trace.DiffLogs(runA.Recorder, runB.Recorder)
	switch {
	case len(divs) == 0 && runA.HeapHash == runB.HeapHash:
		fmt.Println("runs are IDENTICAL: every thread's synchronization stream and the final memory match")
		if !ek.Deterministic() {
			fmt.Println("(note: this engine makes no guarantee — identical runs can still be luck)")
		}
	case len(divs) == 0:
		fmt.Println("synchronization streams match but final memory differs (data race outside sync order)")
		os.Exit(1)
	default:
		fmt.Printf("runs DIVERGE in %d thread stream(s); first divergences:\n", len(divs))
		for _, d := range divs {
			fmt.Printf("  %s\n", d)
		}
		if ek.Deterministic() {
			fmt.Println("ERROR: a deterministic engine diverged — this is a bug")
			os.Exit(1)
		}
	}
}
