// Command lazydet-fuzz differentially stress-tests the engines: it
// generates random data-race-free commutative programs (whose final memory
// is schedule-independent and predicted on the host), runs each under every
// engine, and verifies three properties per seed:
//
//  1. correctness — every engine's final memory matches the model exactly;
//
//  2. determinism — Consequence, TotalOrder-Weak and LazyDet reproduce
//     identical trace signatures and memory across repeated runs;
//
//  3. speculation accounting — LazyDet's commits + reverts equal its run
//     count.
//
//     lazydet-fuzz -seeds 100 -threads 4
//     lazydet-fuzz -seeds 1000 -ops 120 -start 42
package main

import (
	"flag"
	"fmt"
	"os"

	"lazydet/internal/harness"
	"lazydet/internal/randprog"
)

func main() {
	seeds := flag.Int("seeds", 50, "number of random programs")
	start := flag.Uint64("start", 1, "first seed")
	threads := flag.Int("threads", 4, "simulated thread count")
	ops := flag.Int("ops", 60, "operations per thread")
	verbose := flag.Bool("v", false, "print every seed")
	flag.Parse()

	cfg := randprog.DefaultConfig(*threads)
	cfg.OpsPerThread = *ops

	failures := 0
	for s := uint64(0); s < uint64(*seeds); s++ {
		seed := *start + s
		w, _ := randprog.Generate(seed, cfg)
		ok := true

		// Property 1: model equivalence under every engine.
		for _, eng := range harness.AllEngines {
			if _, err := harness.Run(w, harness.Options{Engine: eng, Threads: *threads}); err != nil {
				fmt.Printf("seed %d: %s: %v\n", seed, eng, err)
				ok = false
			}
		}
		// Properties 2 and 3: determinism + speculation accounting.
		for _, eng := range []harness.EngineKind{harness.Consequence, harness.TotalOrderWeak, harness.LazyDet} {
			opt := harness.Options{Engine: eng, Threads: *threads, Trace: true, CollectSpec: eng == harness.LazyDet}
			r1, err1 := harness.Run(w, opt)
			r2, err2 := harness.Run(w, opt)
			if err1 != nil || err2 != nil {
				fmt.Printf("seed %d: %s: %v %v\n", seed, eng, err1, err2)
				ok = false
				continue
			}
			if r1.TraceSig != r2.TraceSig || r1.HeapHash != r2.HeapHash {
				fmt.Printf("seed %d: %s NOT DETERMINISTIC (trace %x/%x heap %x/%x)\n",
					seed, eng, r1.TraceSig, r2.TraceSig, r1.HeapHash, r2.HeapHash)
				ok = false
			}
			if r1.Spec != nil {
				runs, commits, reverts := r1.Spec.Runs.Load(), r1.Spec.Commits.Load(), r1.Spec.Reverts.Load()
				if commits+reverts != runs {
					fmt.Printf("seed %d: speculation accounting broken: %d commits + %d reverts != %d runs\n",
						seed, commits, reverts, runs)
					ok = false
				}
			}
		}
		if !ok {
			failures++
		} else if *verbose {
			fmt.Printf("seed %d ok\n", seed)
		}
	}
	if failures > 0 {
		fmt.Printf("FAIL: %d of %d seeds\n", failures, *seeds)
		os.Exit(1)
	}
	fmt.Printf("ok: %d seeds × %d engines, all equivalent and deterministic\n", *seeds, len(harness.AllEngines))
}
