// Command lazydet-fuzz differentially stress-tests the engines: it
// generates random data-race-free commutative programs (whose final memory
// is schedule-independent and predicted on the host), runs each under every
// engine, and verifies four properties per seed:
//
//  1. correctness — every engine's final memory matches the model exactly;
//
//  2. determinism — Consequence, TotalOrder-Weak and LazyDet reproduce
//     identical trace signatures and memory across repeated runs, and so
//     does LazyDet with write-aware conflict detection;
//
//  3. speculation accounting — LazyDet's commits + reverts equal its run
//     count;
//
//  4. (with -invariants) runtime invariants — turn-holder uniqueness, heap
//     commit monotonicity, lock-table consistency and snapshot round-trip
//     exactness hold at every turn grant and commit/revert.
//
// With -vet (on by default) every generated program set is additionally
// cross-checked against the static analyzer: internal/progcheck must report
// zero error findings on these race-free, deadlock-free programs (any
// finding is an analyzer false positive — warnings are tallied and the rate
// reported), and after seeding a known bug into a copy (the final halt is
// prefixed with a lock acquisition that is never released) the analyzer
// must flag it, or it has a soundness hole.
//
// Unless -nohints is given, every seed also runs LazyDet with the static
// speculation hints (harness.Options.SpecHints) and checks the hint
// properties: the hinted run is deterministic, its final memory is
// bit-identical to the unhinted run's (hints steer speculation, never
// committed state), and every lock the footprint analysis proved Disjoint
// observes zero conflict-attributed reverts — if a "can never fail
// validation" lock reverts even once, the static proof is unsound.
// -nohints drops the hinted runs, making the unhinted policy the
// differential baseline.
//
// With -legacydiff, the strong engines commit via the legacy full-page twin
// scan instead of the dirty-word bitmaps — running the suite both ways
// differentially checks the two commit paths against each other. With
// -mapviews, thread views track pages in Go maps instead of the flat
// page-number-indexed tables, differentially checking the flat-table fast
// path the same way. -flatarb arbitrates turns with the flat O(threads)
// scans instead of the tournament tree, and -shards overrides the heap's
// shard count — and independently of those flags, every seed cross-checks
// the strong engines against the opposite arbiter and the single-shard
// heap: traces and final memory must be bit-identical, because grant and
// publication order are specified by (DLC, tid) alone. -compiled runs every
// engine on the threaded-code backend (fused superinstructions) instead of
// the interpreter — and independently of the flag, every seed cross-checks
// the strong engines against the opposite backend, the interpreter serving
// as the differential oracle for the lowering pass. -eagerpublish disables
// same-owner publication elision — and independently of the flag, every
// seed cross-checks the strong engines against the opposite publication
// discipline: a staged release reserves exactly the sequence an eager
// commit would use and records the same trace event, so schedules,
// TraceSig, HeapHash and every gated metric outside the publication
// machinery (commit/stage volume) must be bit-identical either way.
//
//	lazydet-fuzz -seeds 100 -threads 4
//	lazydet-fuzz -seeds 1000 -ops 120 -start 42
//	lazydet-fuzz -seeds 50 -invariants -legacydiff
//	lazydet-fuzz -seeds 50 -invariants -mapviews
//	lazydet-fuzz -seeds 5 -threads 256 -ops 8 -invariants
package main

import (
	"flag"
	"fmt"
	"os"

	"lazydet/internal/core"
	"lazydet/internal/dvm"
	"lazydet/internal/harness"
	"lazydet/internal/invariant"
	"lazydet/internal/progcheck"
	"lazydet/internal/randprog"
)

// seedHeldLockBug returns a copy of p with a deliberate lock-discipline bug:
// the trailing halt is prefixed with an acquisition of lock 0 that is never
// released, so every execution exits holding it. Used to cross-check that
// the static analyzer still catches a bug it is specified to catch.
func seedHeldLockBug(p *dvm.Program) *dvm.Program {
	n := len(p.Code)
	if n == 0 || p.Code[n-1].Op != dvm.OpHalt {
		return nil
	}
	code := make([]dvm.Instr, n+1)
	copy(code, p.Code)
	code[n-1] = dvm.Instr{
		Op:    dvm.OpLock,
		Cost:  1,
		Addr:  func(*dvm.Thread) int64 { return 0 },
		SAddr: dvm.SVal{Known: true, K: 0},
	}
	code[n] = dvm.Instr{Op: dvm.OpHalt, Cost: 1}
	mut := *p
	mut.Name = p.Name + "+held-lock-bug"
	mut.Code = code
	return &mut
}

// gatedMismatches diffs the gated metrics of two telemetry-collected runs,
// skipping the elision-variant set (commit/stage volume counters, which the
// publication discipline legitimately changes).
func gatedMismatches(a, b *harness.Result) []string {
	return harness.GatedMetricDiffs(a, b)
}

func hasClass(rep *progcheck.Report, class progcheck.Class) bool {
	for _, f := range rep.Findings {
		if f.Class == class {
			return true
		}
	}
	return false
}

func main() {
	seeds := flag.Int("seeds", 50, "number of random programs")
	start := flag.Uint64("start", 1, "first seed")
	threads := flag.Int("threads", 4, "simulated thread count")
	ops := flag.Int("ops", 60, "operations per thread")
	invariants := flag.Bool("invariants", false, "audit runtime invariants at every turn and commit/revert")
	vet := flag.Bool("vet", true, "cross-check progcheck static verdicts against runtime outcomes")
	legacyDiff := flag.Bool("legacydiff", false, "commit via legacy full-page twin scans instead of dirty-word bitmaps")
	mapViews := flag.Bool("mapviews", false, "track view pages in maps instead of flat page tables")
	flatArb := flag.Bool("flatarb", false, "arbitrate turns with flat O(threads) scans instead of the tournament tree")
	shards := flag.Int("shards", 0, "versioned heap shard count (0 = default, 1 = single-lock oracle)")
	compiled := flag.Bool("compiled", false, "run the threaded-code backend instead of the interpreter")
	eagerPublish := flag.Bool("eagerpublish", false, "publish every release eagerly instead of eliding same-owner publications")
	noHints := flag.Bool("nohints", false, "skip the statically hinted LazyDet runs (unhinted differential baseline only)")
	verbose := flag.Bool("v", false, "print every seed")
	flag.Parse()

	cfg := randprog.DefaultConfig(*threads)
	cfg.OpsPerThread = *ops

	failures := 0
	vetSeeds, vetFalseWarnings := 0, 0
	for s := uint64(0); s < uint64(*seeds); s++ {
		seed := *start + s
		w, _, err := randprog.Generate(seed, cfg)
		if err != nil {
			fmt.Printf("seed %d: generator failed: %v\n", seed, err)
			failures++
			continue
		}
		ok := true
		var violations []*invariant.Violation
		baseOpt := harness.Options{
			Threads: *threads, LegacyDiffCommit: *legacyDiff, MapViews: *mapViews,
			FlatArbiter: *flatArb, HeapShards: *shards, Compiled: *compiled,
			EagerPublish: *eagerPublish,
		}
		if *invariants {
			baseOpt.CheckInvariants = true
			baseOpt.OnViolation = func(v *invariant.Violation) { violations = append(violations, v) }
		}

		// Properties 5 and 6: static/runtime cross-check. The generator
		// emits race-free, deadlock-free programs, so (5) every progcheck
		// finding on them is a false positive — errors fail the seed,
		// warnings only feed the rate printed at the end — and (6) seeding
		// a lock-held-at-exit bug into a copy must produce exactly that
		// finding, or the analyzer has a soundness hole.
		if *vet {
			progs := w.Programs(*threads)
			rep := progcheck.Check(progs)
			if n := rep.CountBySeverity(progcheck.SevError); n > 0 {
				fmt.Printf("seed %d: progcheck false positive: %d error finding(s) on a race-free program:\n%s",
					seed, n, rep.Human())
				ok = false
			}
			vetFalseWarnings += rep.CountBySeverity(progcheck.SevWarn)
			vetSeeds++
			if mut := seedHeldLockBug(progs[0]); mut == nil {
				fmt.Printf("seed %d: progcheck cross-check: generated program does not end in halt\n", seed)
				ok = false
			} else if mrep := progcheck.Check([]*dvm.Program{mut}); !hasClass(mrep, progcheck.ClassHeldAtExit) {
				fmt.Printf("seed %d: progcheck MISSED a seeded %s bug in %s\n",
					seed, progcheck.ClassHeldAtExit, mut.Name)
				ok = false
			}
		}

		// Property 1: model equivalence under every engine.
		for _, eng := range harness.AllEngines {
			opt := baseOpt
			opt.Engine = eng
			if _, err := harness.Run(w, opt); err != nil {
				fmt.Printf("seed %d: %s: %v\n", seed, eng, err)
				ok = false
			}
		}
		// Properties 2 and 3: determinism + speculation accounting, for
		// the deterministic engines plus LazyDet's write-aware variant.
		type variant struct {
			name       string
			engine     harness.EngineKind
			writeAware bool
			hints      bool
		}
		variants := []variant{
			{"Consequence", harness.Consequence, false, false},
			{"TotalOrder-Weak", harness.TotalOrderWeak, false, false},
			{"LazyDet", harness.LazyDet, false, false},
			{"LazyDet-WriteAware", harness.LazyDet, true, false},
			{"LazyDet-Hints", harness.LazyDet, false, true},
		}
		var lazyRef *harness.Result // the unhinted LazyDet run, property 9's oracle
		for _, va := range variants {
			if va.hints && *noHints {
				continue
			}
			opt := baseOpt
			opt.Engine = va.engine
			opt.Trace = true
			opt.CollectSpec = va.engine == harness.LazyDet
			opt.SpecHints = va.hints
			if va.writeAware {
				opt.Spec = core.DefaultSpecConfig()
				opt.Spec.WriteAware = true
			}
			r1, err1 := harness.Run(w, opt)
			r2, err2 := harness.Run(w, opt)
			if err1 != nil || err2 != nil {
				fmt.Printf("seed %d: %s: %v %v\n", seed, va.name, err1, err2)
				ok = false
				continue
			}
			if r1.TraceSig != r2.TraceSig || r1.HeapHash != r2.HeapHash {
				fmt.Printf("seed %d: %s NOT DETERMINISTIC (trace %x/%x heap %x/%x)\n",
					seed, va.name, r1.TraceSig, r2.TraceSig, r1.HeapHash, r2.HeapHash)
				ok = false
			}
			if r1.Spec != nil {
				runs, commits, reverts := r1.Spec.Runs.Load(), r1.Spec.Commits.Load(), r1.Spec.Reverts.Load()
				if commits+reverts != runs {
					fmt.Printf("seed %d: %s speculation accounting broken: %d commits + %d reverts != %d runs\n",
						seed, va.name, commits, reverts, runs)
					ok = false
				}
			}
			if va.name == "LazyDet" {
				lazyRef = r1
			}
			// Property 9: static speculation hints. The hinted schedule may
			// differ (hints change when the engine speculates), but the
			// committed state may not — the generator's programs have
			// schedule-independent finals — and a statically Disjoint lock
			// must never be charged a conflict revert.
			if va.hints {
				if lazyRef != nil && r1.HeapHash != lazyRef.HeapHash {
					fmt.Printf("seed %d: hinted LazyDet heap %x != unhinted %x\n",
						seed, r1.HeapHash, lazyRef.HeapHash)
					ok = false
				}
				if r1.Hints == nil {
					fmt.Printf("seed %d: SpecHints requested but no verdict table on the result\n", seed)
					ok = false
				} else {
					for _, l := range r1.Hints.Locks() {
						if r1.Hints.Verdicts[l] != progcheck.VerdictDisjoint {
							continue
						}
						if l < int64(len(r1.LockReverts)) && r1.LockReverts[l] != 0 {
							fmt.Printf("seed %d: statically Disjoint lock %d charged %d conflict revert(s): %s\n",
								seed, l, r1.LockReverts[l], r1.Hints.Reasons[l])
							ok = false
						}
					}
				}
			}
		}
		// Property 7: arbitration and sharding oracles. The tournament
		// tree vs the flat scan, and the sharded heap vs the single-lock
		// layout, must be unobservable: grant order and publication order
		// are specified by (DLC, tid) alone, so the strong engines must
		// produce bit-identical traces and final memory either way.
		for _, eng := range []harness.EngineKind{harness.Consequence, harness.LazyDet} {
			opt := baseOpt
			opt.Engine = eng
			opt.Trace = true
			ref, err := harness.Run(w, opt)
			alt := opt
			alt.FlatArbiter = !opt.FlatArbiter
			if opt.HeapShards == 1 {
				alt.HeapShards = 0 // oracle run was requested; compare against default sharding
			} else {
				alt.HeapShards = 1
			}
			res, err2 := harness.Run(w, alt)
			if err != nil || err2 != nil {
				fmt.Printf("seed %d: %s arbiter/shard oracle: %v %v\n", seed, eng, err, err2)
				ok = false
				continue
			}
			if ref.TraceSig != res.TraceSig || ref.HeapHash != res.HeapHash {
				fmt.Printf("seed %d: %s DIVERGES from arbiter/shard oracle (trace %x/%x heap %x/%x)\n",
					seed, eng, ref.TraceSig, res.TraceSig, ref.HeapHash, res.HeapHash)
				ok = false
			}
			// Property 8: execution-backend oracle. The threaded-code
			// backend and the interpreter publish identical clocks at
			// every sync point, so the schedule — and with it the trace
			// and the final memory — must be bit-identical per seed.
			bopt := opt
			bopt.Compiled = !opt.Compiled
			bres, err4 := harness.Run(w, bopt)
			if err4 != nil {
				fmt.Printf("seed %d: %s backend oracle: %v\n", seed, eng, err4)
				ok = false
				continue
			}
			if ref.TraceSig != bres.TraceSig || ref.HeapHash != bres.HeapHash {
				fmt.Printf("seed %d: %s DIVERGES from backend oracle (trace %x/%x heap %x/%x)\n",
					seed, eng, ref.TraceSig, bres.TraceSig, ref.HeapHash, bres.HeapHash)
				ok = false
			}
			// Property 10: publication-discipline oracle. A staged release
			// reserves exactly the sequence an eager commit would use and
			// records the same trace event, so the schedule, the trace, the
			// final memory and every gated metric outside the publication
			// machinery itself must be bit-identical with elision flipped.
			// Telemetry is enabled on both runs so the gated metrics can be
			// diffed, not just the fingerprints.
			popt := opt
			popt.Telemetry = true
			pref, err5 := harness.Run(w, popt)
			palt := popt
			palt.EagerPublish = !popt.EagerPublish
			pres, err6 := harness.Run(w, palt)
			if err5 != nil || err6 != nil {
				fmt.Printf("seed %d: %s publication oracle: %v %v\n", seed, eng, err5, err6)
				ok = false
				continue
			}
			if pref.TraceSig != pres.TraceSig || pref.HeapHash != pres.HeapHash {
				fmt.Printf("seed %d: %s DIVERGES from publication oracle (trace %x/%x heap %x/%x)\n",
					seed, eng, pref.TraceSig, pres.TraceSig, pref.HeapHash, pres.HeapHash)
				ok = false
			}
			for _, m := range gatedMismatches(pref, pres) {
				fmt.Printf("seed %d: %s gated metric differs across publication oracle: %s\n", seed, eng, m)
				ok = false
			}
		}
		// Property 4: zero invariant violations across all of the above.
		for _, v := range violations {
			fmt.Printf("seed %d: %v\n", seed, v)
			ok = false
		}
		if !ok {
			failures++
		} else if *verbose {
			fmt.Printf("seed %d ok\n", seed)
		}
	}
	if failures > 0 {
		fmt.Printf("FAIL: %d of %d seeds\n", failures, *seeds)
		os.Exit(1)
	}
	suffix := ""
	if *invariants {
		suffix = ", zero invariant violations"
	}
	if vetSeeds > 0 {
		suffix += fmt.Sprintf("; progcheck: %d seeds cross-checked, %d warning false positive(s)", vetSeeds, vetFalseWarnings)
	}
	fmt.Printf("ok: %d seeds × %d engines, all equivalent and deterministic%s\n", *seeds, len(harness.AllEngines), suffix)
}
