// Command lazydet-run executes one workload under one engine and prints
// everything the runtime can measure: wall time, commit counts, speculation
// statistics, CPU utilization and determinism fingerprints.
//
//	lazydet-run -workload ht -engine lazydet -threads 8
//	lazydet-run -workload barnes -engine consequence -threads 16 -trace
//	lazydet-run -workload ht -engine lazydet -report run.json
//	lazydet-run -list
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"lazydet/internal/core"
	"lazydet/internal/harness"
	"lazydet/internal/telemetry"
	"lazydet/internal/workloads"
)

// startCPUProfile begins CPU profiling into path; the returned func stops it.
func startCPUProfile(path string) (func(), error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}, nil
}

// writeHeapProfile writes an allocation profile of the run to path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	runtime.GC() // up-to-date allocation statistics
	return pprof.WriteHeapProfile(f)
}

func engineByName(name string) (harness.EngineKind, error) {
	switch strings.ToLower(name) {
	case "pthreads":
		return harness.Pthreads, nil
	case "consequence":
		return harness.Consequence, nil
	case "weak", "totalorder-weak":
		return harness.TotalOrderWeak, nil
	case "weak-nondet", "totalorder-weak-nondet":
		return harness.TotalOrderWeakNondet, nil
	case "lazydet":
		return harness.LazyDet, nil
	}
	return 0, fmt.Errorf("unknown engine %q (pthreads, consequence, weak, weak-nondet, lazydet)", name)
}

func buildWorkload(name string, scale int) (*harness.Workload, error) {
	switch name {
	case "ht", "htlazy":
		cfg := workloads.DefaultHTConfig(workloads.HTVariant(name))
		return workloads.NewHashTable(cfg), nil
	}
	if g := workloads.ByName(name); g != nil {
		return g.New(scale), nil
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

func main() {
	workload := flag.String("workload", "ht", "workload name (see -list)")
	engine := flag.String("engine", "lazydet", "engine: pthreads, consequence, weak, weak-nondet, lazydet")
	threads := flag.Int("threads", 8, "simulated thread count")
	scale := flag.Int("scale", 1, "problem-size multiplier")
	trace := flag.Bool("trace", false, "record and print determinism fingerprints")
	legacyDiff := flag.Bool("legacydiff", false, "commit via legacy full-page twin scans instead of dirty-word bitmaps")
	mapViews := flag.Bool("mapviews", false, "track view pages in maps instead of flat page tables")
	flatArb := flag.Bool("flatarb", false, "arbitrate turns with flat O(threads) scans instead of the tournament tree")
	shards := flag.Int("shards", 0, "versioned heap shard count (0 = default, 1 = single-lock oracle)")
	compiled := flag.Bool("compiled", false, "run the threaded-code backend instead of the interpreter")
	eagerPublish := flag.Bool("eagerpublish", false, "publish every release eagerly instead of eliding same-owner publications")
	reportPath := flag.String("report", "", "write a single-run structured JSON run report to this file")
	list := flag.Bool("list", false, "list workloads and exit")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file; samples carry engine-phase pprof labels (grant/commit/validate)")
	memprofile := flag.String("memprofile", "", "write an allocation profile of the run to this file")
	flag.Parse()

	if *list {
		fmt.Println("ht htlazy (Synchrobench microbenchmarks)")
		for _, g := range workloads.All() {
			fmt.Println(g.Name)
		}
		return
	}

	ek, err := engineByName(*engine)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	w, err := buildWorkload(*workload, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	opt := harness.Options{
		Engine: ek, Threads: *threads, Trace: *trace,
		MeasureTimes: true, CollectSpec: ek == harness.LazyDet,
		CountLocks:       ek == harness.Pthreads,
		LegacyDiffCommit: *legacyDiff,
		MapViews:         *mapViews,
		FlatArbiter:      *flatArb,
		HeapShards:       *shards,
		Compiled:         *compiled,
		EagerPublish:     *eagerPublish,
		Telemetry:        *reportPath != "",
	}
	if *cpuprofile != "" {
		core.EnableProfileLabels()
		stop, err := startCPUProfile(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer stop()
	}
	res, err := harness.Run(w, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *memprofile != "" {
		if err := writeHeapProfile(*memprofile); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	fmt.Printf("workload:    %s (scale %d)\n", w.Name, *scale)
	backend := "interpreter"
	if *compiled {
		backend = "threaded code"
	}
	fmt.Printf("engine:      %s, %d threads, %s backend\n", ek, *threads, backend)
	fmt.Printf("wall time:   %v\n", res.Wall)
	fmt.Printf("utilization: %.1f%%\n", res.UtilizationPct)
	if res.Commits > 0 {
		fmt.Printf("heap:        %d commits, %d pages, %d words (%d scanned)\n",
			res.Commits, res.PagesCommitted, res.WordsCommitted, res.WordsScanned)
	}
	if res.Spec != nil && res.Spec.Runs.Load() > 0 {
		fmt.Printf("speculation: %.1f%% of %d acquisitions; %d runs, %.1f%% committed, mean %.1f CS/run\n",
			res.Spec.SpecAcquirePct(), res.Spec.TotalAcquires.Load(),
			res.Spec.Runs.Load(), res.Spec.SuccessPct(), res.Spec.MeanRunCS())
		fmt.Printf("             %d reverts, %d irrevocable upgrades\n",
			res.Spec.Reverts.Load(), res.Spec.Upgrades.Load())
	}
	if res.Counter != nil {
		s := res.Counter.Summarize()
		fmt.Printf("locks:       %d variables, %d acquisitions (p50 %d, p75 %d, p95 %d, max %d)\n",
			s.Variables, s.Acquisitions, s.P50, s.P75, s.P95, s.Max)
	}
	if *trace {
		fmt.Printf("trace:       sig %016x over %d sync events; heap %016x\n",
			res.TraceSig, res.SyncEvents, res.HeapHash)
	}
	if *reportPath != "" {
		suite := &telemetry.SuiteReport{
			Schema: telemetry.ReportSchema,
			Suite:  "single",
			Runs:   []telemetry.RunReport{harness.BuildReport(res)},
		}
		if err := suite.WriteFile(*reportPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("report:      %s\n", *reportPath)
	}
}
