// Command litmus prints the outcomes each memory-consistency model of the
// paper's §4 allows for its litmus tests: TSO (Consequence), DLRC (RFDet)
// and DDRF (LazyDet). It regenerates the claims of Figures 4, 5 and 6.
package main

import (
	"fmt"

	"lazydet/internal/memmodel"
)

func show(p *memmodel.Program) {
	fmt.Printf("%s\n", p.Name)
	fmt.Printf("  SC:   %v\n", memmodel.SC(p))
	fmt.Printf("  TSO:  %v\n", memmodel.TSO(p))
	fmt.Printf("  DLRC: %v\n", memmodel.DLRC(p))
	fmt.Printf("  DDRF: %v\n", memmodel.DDRF(p))
	fmt.Println()
}

func main() {
	show(memmodel.Figure4())
	show(memmodel.Figure5())
	show(memmodel.MessagePassing())
	show(memmodel.StoreBufferNoLocks())

	p := memmodel.Figure4()
	tso, dlrc, ddrf := memmodel.TSO(p), memmodel.DLRC(p), memmodel.DDRF(p)
	fmt.Println("Figure 6 relations (on the Figure 4 program):")
	fmt.Printf("  TSO  ⊆ DDRF: %v\n", tso.SubsetOf(ddrf))
	fmt.Printf("  DLRC ⊆ DDRF: %v\n", dlrc.SubsetOf(ddrf))
	fmt.Printf("  TSO  ⊆ DLRC: %v (incomparable)\n", tso.SubsetOf(dlrc))
	fmt.Printf("  DLRC ⊆ TSO:  %v (incomparable)\n", dlrc.SubsetOf(tso))
}
