// Command lazydet-sim runs declarative open-loop simulation grids: the
// experiment-grid front end for internal/opensim.
//
//	lazydet-sim -grid bench/ci-grid.json                  # timestamped output folder
//	lazydet-sim -grid sweep.json -out runs/try3           # fixed output folder
//	lazydet-sim -grid bench/ci-grid.json -out a \
//	    -baseline bench/baseline.json -gate 25            # gate sim/* rows
//	lazydet-sim -compare a/report.json -baseline bench/baseline.json -gate 25
//
// The output folder holds the resolved grid config (grid.json), the run
// report (report.json), the merged deterministic summary
// (<grid>-summary.csv — two runs of the same grid are byte-identical, the
// CI determinism check), the machine-dependent timing twin
// (<grid>-timing.csv, excluded from byte-diffs by design), and with
// per_request_csv the raw per-cell stamp dumps under cells/.
//
// Gating (-baseline/-gate) filters the baseline to sim/* rows first, so a
// grid run is compared only against the simulation slice of the full
// bench/baseline.json.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"time"

	"lazydet/internal/core"
	"lazydet/internal/experiments"
	"lazydet/internal/telemetry"
)

// diffSim gates the sim/* slice of both reports and returns the exit code.
func diffSim(basePath, curPath string, gatePct float64) int {
	base, err := telemetry.ReadReport(basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	cur, err := telemetry.ReadReport(curPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		return 1
	}
	// The report suite pins the hint policy as sim/hints-* rows; no grid
	// produces those, so they are dropped from the baseline slice before the
	// MissingRuns check.
	c := telemetry.Compare(base.FilterPrefix("sim/").DropPrefix("sim/hints-"),
		cur.FilterPrefix("sim/").DropPrefix("sim/hints-"), gatePct)
	c.Format(os.Stdout)
	if !c.Ok() {
		fmt.Printf("sim gate FAILED: %d regression(s), %d missing run(s) (gate %.1f%%)\n",
			len(c.Regressions), len(c.MissingRuns), gatePct)
		return 1
	}
	fmt.Printf("sim gate passed (gate %.1f%%)\n", gatePct)
	return 0
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}

func main() {
	grid := flag.String("grid", "", "grid config file (JSON; see bench/ci-grid.json)")
	out := flag.String("out", "", "output folder (default sim-runs/<UTC timestamp>)")
	baseline := flag.String("baseline", "", "baseline report to gate the sim/* rows against")
	gate := flag.Float64("gate", 0, "fail when a gated sim metric regresses more than this percent; 0 reports without failing")
	compare := flag.String("compare", "", "diff this existing report's sim/* rows against -baseline without running anything")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the grid run to this file; samples carry engine-phase pprof labels (grant/commit/validate)")
	flag.Parse()

	// The deferred stop does not run through the os.Exit gate paths below,
	// so the stop closure is also invoked explicitly before them.
	stopProfile := func() {}
	if *cpuprofile != "" {
		core.EnableProfileLabels()
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fail(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fail(err)
		}
		stopped := false
		stopProfile = func() {
			if stopped {
				return
			}
			stopped = true
			pprof.StopCPUProfile()
			f.Close()
		}
		defer stopProfile()
	}

	if *compare != "" {
		if *baseline == "" {
			fmt.Fprintln(os.Stderr, "-compare requires -baseline")
			os.Exit(2)
		}
		os.Exit(diffSim(*baseline, *compare, *gate))
	}
	if *grid == "" {
		flag.Usage()
		os.Exit(2)
	}

	g, err := experiments.LoadGrid(*grid)
	if err != nil {
		fail(err)
	}
	dir := *out
	if dir == "" {
		dir = filepath.Join("sim-runs", time.Now().UTC().Format("20060102T150405Z"))
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		fail(err)
	}
	// The resolved config rides along with the results, so a folder is
	// self-describing and re-runnable.
	resolved, err := json.MarshalIndent(g, "", "  ")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "grid.json"), append(resolved, '\n'), 0o644); err != nil {
		fail(err)
	}

	cfg := experiments.Config{Out: os.Stdout, CSVDir: dir}
	suite, err := experiments.RunGrid(cfg, g)
	if err != nil {
		fail(err)
	}
	reportPath := filepath.Join(dir, "report.json")
	if err := suite.WriteFile(reportPath); err != nil {
		fail(err)
	}
	fmt.Printf("wrote %d cell runs to %s\n", len(suite.Runs), dir)

	if *baseline != "" {
		stopProfile()
		os.Exit(diffSim(*baseline, reportPath, *gate))
	}
}
