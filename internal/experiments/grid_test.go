package experiments

import (
	"errors"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// -update rewrites the golden summary CSV from the current output.
var update = flag.Bool("update", false, "rewrite golden files")

// validGridJSON is a minimal well-formed config the error table mutates.
const validGridJSON = `{
  "name": "t",
  "repeats": 2,
  "seed_ranges": [{"from": 1, "to": 2}],
  "requests": 16,
  "mean_gaps": [64],
  "workers": [2],
  "engines": ["Consequence"],
  "backends": ["interp"],
  "contention": [{"name": "c", "keys": 16, "stripes": 2, "hot_pct": 10, "hot_keys": 2}]
}`

func TestParseGridValid(t *testing.T) {
	g, err := ParseGrid(strings.NewReader(validGridJSON))
	if err != nil {
		t.Fatal(err)
	}
	if got := g.seeds(); !reflect.DeepEqual(got, []uint64{1, 2}) {
		t.Errorf("seeds = %v, want [1 2]", got)
	}
}

// Every malformed config produces its named error, so scripts and CI can
// distinguish a config bug from a runner bug.
func TestParseGridErrors(t *testing.T) {
	cases := []struct {
		name    string
		mutate  func(s string) string
		wantErr error
	}{
		{
			name:    "unknown key",
			mutate:  func(s string) string { return strings.Replace(s, `"requests"`, `"requessts"`, 1) },
			wantErr: ErrGridUnknownKey,
		},
		{
			name:    "repeats zero",
			mutate:  func(s string) string { return strings.Replace(s, `"repeats": 2`, `"repeats": 0`, 1) },
			wantErr: ErrGridRepeats,
		},
		{
			name:    "empty dimension",
			mutate:  func(s string) string { return strings.Replace(s, `"mean_gaps": [64]`, `"mean_gaps": []`, 1) },
			wantErr: ErrGridEmptyDimension,
		},
		{
			name: "overlapping seed ranges",
			mutate: func(s string) string {
				return strings.Replace(s,
					`"seed_ranges": [{"from": 1, "to": 2}]`,
					`"seed_ranges": [{"from": 1, "to": 2}, {"from": 2, "to": 3}], "repeats": 4`, 1)
			},
			wantErr: ErrGridSeedOverlap,
		},
		{
			name: "inverted seed range",
			mutate: func(s string) string {
				return strings.Replace(s, `{"from": 1, "to": 2}`, `{"from": 2, "to": 1}`, 1)
			},
			wantErr: ErrGridSeedRange,
		},
		{
			name: "seed count mismatch",
			mutate: func(s string) string {
				return strings.Replace(s, `{"from": 1, "to": 2}`, `{"from": 1, "to": 5}`, 1)
			},
			wantErr: ErrGridSeedCount,
		},
		{
			name:    "unknown engine",
			mutate:  func(s string) string { return strings.Replace(s, `"Consequence"`, `"pthreads"`, 1) },
			wantErr: ErrGridEngine,
		},
		{
			name:    "unknown backend",
			mutate:  func(s string) string { return strings.Replace(s, `"interp"`, `"jit"`, 1) },
			wantErr: ErrGridBackend,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseGrid(strings.NewReader(tc.mutate(validGridJSON)))
			if !errors.Is(err, tc.wantErr) {
				t.Errorf("got %v, want %v", err, tc.wantErr)
			}
		})
	}
}

// The repeats field reads strangely when overridden mid-string in the
// overlap case above; make sure a duplicated key is at least not silently
// dropped by the decoder (json keeps the last one).
func TestGridSeedsFollowRangeOrder(t *testing.T) {
	g := &Grid{Repeats: 3, SeedRanges: []SeedRange{{From: 9, To: 9}, {From: 3, To: 4}}}
	if got := g.seeds(); !reflect.DeepEqual(got, []uint64{9, 3, 4}) {
		t.Errorf("seeds = %v, want [9 3 4]", got)
	}
}

// bench/ci-grid.json is the file CI hands to lazydet-sim; CIGrid() is the
// value the report suite embeds (and therefore what bench/baseline.json's
// sim/* rows pin). They must describe the same grid, or the sim-smoke job
// and the perf gate would quietly measure different things.
func TestCIGridMatchesCheckedInFile(t *testing.T) {
	f, err := os.Open(filepath.Join("..", "..", "bench", "ci-grid.json"))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	g, err := ParseGrid(f)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(g, CIGrid()) {
		t.Errorf("bench/ci-grid.json %+v\n!= experiments.CIGrid() %+v", g, CIGrid())
	}
}

// Golden-file test for the merged summary CSV: a tiny single-cell grid's
// summary must reproduce testdata/sim-golden-summary.csv byte-for-byte.
// Every column is deterministic (DLC stamps, exact percentiles, trace and
// heap fingerprints), so the golden file is stable across hosts; run with
// -update after an intentional schedule or format change.
func TestSummaryCSVGolden(t *testing.T) {
	g := &Grid{
		Name:       "golden",
		Repeats:    1,
		SeedRanges: []SeedRange{{From: 5, To: 5}},
		Requests:   48,
		MeanGaps:   []int64{64},
		Workers:    []int{2},
		Engines:    []string{"Consequence"},
		Backends:   []string{"interp"},
		Contention: []GridContention{{Name: "c2", Keys: 32, Stripes: 2, HotPct: 20, HotKeys: 2}},
		Verify:     true,
	}
	dir := t.TempDir()
	if _, err := RunGrid(Config{CSVDir: dir}, g); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "golden-summary.csv"))
	if err != nil {
		t.Fatal(err)
	}
	goldenPath := filepath.Join("testdata", "sim-golden-summary.csv")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if string(got) != string(want) {
		t.Errorf("summary CSV drifted from golden file:\ngot:\n%s\nwant:\n%s", got, want)
	}
}
