// The declarative experiment-grid runner behind cmd/lazydet-sim: a JSON
// config names the dimensions of an open-loop simulation sweep (arrival
// rate × workers × engine × contention × backend), the repeat count and the
// seed ranges; RunGrid executes the cross-product with a per-cell schedule
// cross-check and emits per-cell CSV plus a merged summary into the
// configured output folder (SNIPPETS.md snippet 3's experiments.json →
// CSV → analysis pipeline, specialized to deterministic metrics).
package experiments

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"reflect"
	"strings"

	"lazydet/internal/harness"
	"lazydet/internal/opensim"
	"lazydet/internal/telemetry"
)

// Named grid-validation errors (asserted by table tests and scripts).
var (
	// ErrGridUnknownKey rejects config files with unrecognized fields —
	// a misspelled dimension silently running the default would invalidate
	// a whole sweep.
	ErrGridUnknownKey = errors.New("experiments: grid config has unknown keys")
	// ErrGridRepeats rejects repeats < 1.
	ErrGridRepeats = errors.New("experiments: grid repeats must be at least 1")
	// ErrGridEmptyDimension rejects an empty dimension list.
	ErrGridEmptyDimension = errors.New("experiments: grid dimension list is empty")
	// ErrGridSeedRange rejects a seed range with from > to.
	ErrGridSeedRange = errors.New("experiments: grid seed range is inverted")
	// ErrGridSeedOverlap rejects overlapping seed ranges — repeats must
	// be independent draws, not aliases of one another.
	ErrGridSeedOverlap = errors.New("experiments: grid seed ranges overlap")
	// ErrGridSeedCount requires exactly one seed per repeat.
	ErrGridSeedCount = errors.New("experiments: grid seed ranges must supply exactly one seed per repeat")
	// ErrGridEngine rejects unknown or nondeterministic engine names.
	ErrGridEngine = errors.New("experiments: grid engine must be Consequence, TotalOrder-Weak or LazyDet")
	// ErrGridBackend rejects backends other than interp/compiled.
	ErrGridBackend = errors.New(`experiments: grid backend must be "interp" or "compiled"`)
	// ErrGridVerify reports a per-cell schedule cross-check divergence:
	// the same cell run twice produced different stamps or traces.
	ErrGridVerify = errors.New("experiments: grid cell cross-check diverged")
)

// SeedRange is an inclusive range of run seeds.
type SeedRange struct {
	From uint64 `json:"from"`
	To   uint64 `json:"to"`
}

// GridContention is one point on the contention dimension.
type GridContention struct {
	Name    string `json:"name"`
	Keys    int    `json:"keys"`
	Stripes int    `json:"stripes"`
	HotPct  int    `json:"hot_pct"`
	HotKeys int    `json:"hot_keys"`
}

// Grid is the declarative description of one sweep.
type Grid struct {
	Name    string `json:"name"`
	Repeats int    `json:"repeats"`
	// SeedRanges supplies the per-repeat seeds, flattened in order; the
	// total count must equal Repeats.
	SeedRanges []SeedRange `json:"seed_ranges"`

	// Per-cell constants.
	Requests int   `json:"requests"`
	OpCost   int64 `json:"op_cost,omitempty"`
	PollCost int64 `json:"poll_cost,omitempty"`
	// Mix overrides the default workload mix when non-empty.
	Mix []opensim.MixEntry `json:"mix,omitempty"`

	// Dimensions; the cross-product is executed.
	MeanGaps   []int64          `json:"mean_gaps"`
	Workers    []int            `json:"workers"`
	Engines    []string         `json:"engines"`
	Backends   []string         `json:"backends"`
	Contention []GridContention `json:"contention"`

	// PerRequestCSV additionally writes one CSV of raw stamps per cell.
	PerRequestCSV bool `json:"per_request_csv,omitempty"`
	// Verify runs each cell twice and requires identical stamps, trace
	// signature and final heap — the per-cell schedule cross-check.
	Verify bool `json:"verify,omitempty"`
}

// gridEngines maps config engine names to kinds. Only engines whose
// schedules (and therefore DLC stamps) are deterministic are admissible.
var gridEngines = map[string]harness.EngineKind{
	"Consequence":     harness.Consequence,
	"TotalOrder-Weak": harness.TotalOrderWeak,
	"LazyDet":         harness.LazyDet,
}

// ParseGrid decodes and validates a grid config. Unknown fields are an
// error (ErrGridUnknownKey), not a silent default.
func ParseGrid(r io.Reader) (*Grid, error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var g Grid
	if err := dec.Decode(&g); err != nil {
		if strings.Contains(err.Error(), "unknown field") {
			return nil, fmt.Errorf("%w: %v", ErrGridUnknownKey, err)
		}
		return nil, fmt.Errorf("experiments: parsing grid config: %w", err)
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return &g, nil
}

// LoadGrid reads and validates a grid config file.
func LoadGrid(path string) (*Grid, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := ParseGrid(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return g, nil
}

// Validate checks the grid's shape: a positive repeat count, non-empty
// dimensions, known engine and backend names, and non-overlapping seed
// ranges supplying exactly one seed per repeat.
func (g *Grid) Validate() error {
	if g.Repeats < 1 {
		return ErrGridRepeats
	}
	dims := []struct {
		name string
		n    int
	}{
		{"mean_gaps", len(g.MeanGaps)},
		{"workers", len(g.Workers)},
		{"engines", len(g.Engines)},
		{"backends", len(g.Backends)},
		{"contention", len(g.Contention)},
	}
	for _, d := range dims {
		if d.n == 0 {
			return fmt.Errorf("%w: %s", ErrGridEmptyDimension, d.name)
		}
	}
	for _, e := range g.Engines {
		if _, ok := gridEngines[e]; !ok {
			return fmt.Errorf("%w: got %q", ErrGridEngine, e)
		}
	}
	for _, b := range g.Backends {
		if b != "interp" && b != "compiled" {
			return fmt.Errorf("%w: got %q", ErrGridBackend, b)
		}
	}
	total := 0
	for i, r := range g.SeedRanges {
		if r.From > r.To {
			return fmt.Errorf("%w: [%d, %d]", ErrGridSeedRange, r.From, r.To)
		}
		total += int(r.To - r.From + 1)
		for _, q := range g.SeedRanges[:i] {
			if r.From <= q.To && q.From <= r.To {
				return fmt.Errorf("%w: [%d, %d] and [%d, %d]", ErrGridSeedOverlap, q.From, q.To, r.From, r.To)
			}
		}
	}
	if total != g.Repeats {
		return fmt.Errorf("%w: %d seeds for %d repeats", ErrGridSeedCount, total, g.Repeats)
	}
	return nil
}

// seeds flattens the seed ranges in declaration order.
func (g *Grid) seeds() []uint64 {
	out := make([]uint64, 0, g.Repeats)
	for _, r := range g.SeedRanges {
		for s := r.From; ; s++ {
			out = append(out, s)
			if s == r.To {
				break
			}
		}
	}
	return out
}

// cellName keys one cell+repeat in reports and CSV: every dimension except
// the engine (which has its own report field) is encoded, so baseline keys
// are collision-free.
func cellName(cont GridContention, gap int64, workers, rep int, backend string) string {
	name := fmt.Sprintf("sim/%s/g%d/w%d/r%d", cont.Name, gap, workers, rep)
	if backend == "compiled" {
		name += "/compiled"
	}
	return name
}

// RunGrid executes the validated grid's cross-product and returns the suite
// report (one run per cell × repeat). When cfg.CSVDir is set it also writes
// <grid>-summary.csv (deterministic columns only — the CI byte-diff
// target), <grid>-timing.csv (wall-clock twins, machine-dependent by
// design), and with PerRequestCSV a per-cell stamp dump under cells/.
func RunGrid(cfg Config, g *Grid) (*telemetry.SuiteReport, error) {
	cfg = cfg.withDefaults()
	if err := g.Validate(); err != nil {
		return nil, err
	}
	suite := &telemetry.SuiteReport{Schema: telemetry.ReportSchema, Suite: g.Name}
	summary, err := cfg.csvFile(g.Name+"-summary",
		"cell", "engine", "threads", "backend", "mean_gap", "workers", "contention",
		"repeat", "seed", "requests", "lat_p50", "lat_p95", "lat_p99", "wait_p95",
		"qdepth_max", "qdepth_mean", "makespan_dlc", "throughput_kdlc",
		"trace_sig", "heap_hash")
	if err != nil {
		return nil, err
	}
	defer summary.close()
	timing, err := cfg.csvFile(g.Name+"-timing",
		"cell", "engine", "repeat", "wall_ns", "cpu_ns", "req_per_s")
	if err != nil {
		return nil, err
	}
	defer timing.close()

	seeds := g.seeds()
	for _, cont := range g.Contention {
		for _, gap := range g.MeanGaps {
			for _, workers := range g.Workers {
				for _, engName := range g.Engines {
					for _, backend := range g.Backends {
						for rep := 0; rep < g.Repeats; rep++ {
							cell := opensim.Config{
								Engine:   gridEngines[engName],
								Workers:  workers,
								Requests: g.Requests,
								MeanGap:  gap,
								Seed:     seeds[rep],
								Keys:     cont.Keys,
								Stripes:  cont.Stripes,
								HotPct:   cont.HotPct,
								HotKeys:  cont.HotKeys,
								OpCost:   g.OpCost,
								PollCost: g.PollCost,
								Mix:      g.Mix,
								Compiled: backend == "compiled",
								Trace:    true,
							}
							name := cellName(cont, gap, workers, rep, backend)
							res, err := opensim.Run(cell)
							if err != nil {
								return nil, fmt.Errorf("%s under %s: %w", name, engName, err)
							}
							if g.Verify {
								again, err := opensim.Run(cell)
								if err != nil {
									return nil, fmt.Errorf("%s under %s (cross-check): %w", name, engName, err)
								}
								if res.Harness.TraceSig != again.Harness.TraceSig ||
									res.Harness.HeapHash != again.Harness.HeapHash ||
									!reflect.DeepEqual(res.Requests, again.Requests) {
									return nil, fmt.Errorf("%w: %s under %s", ErrGridVerify, name, engName)
								}
							}
							rr := harness.BuildReport(res.Harness)
							rr.Workload = name
							suite.Runs = append(suite.Runs, rr)
							cfg.printf("%-34s %-16s lat p50/p95/p99 %d/%d/%d dlc, qmax %d\n",
								name, engName, res.LatP50, res.LatP95, res.LatP99, res.QDepthMax)

							summary.row(name, engName, workers+1, backend, gap, workers, cont.Name,
								rep, seeds[rep], g.Requests, res.LatP50, res.LatP95, res.LatP99,
								res.WaitP95, res.QDepthMax, res.QDepthMean, res.MakespanDLC,
								res.ThroughputKDLC, rr.TraceSig, rr.HeapHash)
							wall := res.Harness.Wall.Seconds()
							reqPerS := 0.0
							if wall > 0 {
								reqPerS = float64(g.Requests) / wall
							}
							timing.row(name, engName, rep, res.Harness.Wall.Nanoseconds(),
								res.Harness.CPU.Nanoseconds(), reqPerS)

							if g.PerRequestCSV {
								if err := writePerRequest(cfg, name, engName, res); err != nil {
									return nil, err
								}
							}
						}
					}
				}
			}
		}
	}
	return suite, nil
}

// writePerRequest dumps one cell's raw stamps as cells/<cell>-<engine>.csv.
// Only deterministic columns: the file participates in the CI byte-diff.
func writePerRequest(cfg Config, cell, engine string, res *opensim.Result) error {
	if cfg.CSVDir == "" {
		return nil
	}
	sub := cfg
	sub.CSVDir = cfg.CSVDir + "/cells"
	name := strings.ReplaceAll(cell, "/", "-") + "-" + engine
	f, err := sub.csvFile(name, "req", "mix", "admit", "start", "finish", "latency", "wait", "depth")
	if err != nil {
		return err
	}
	defer f.close()
	for _, q := range res.Requests {
		f.row(q.ID, q.Mix, q.Admit, q.Start, q.Finish, q.Latency(), q.Wait(), q.Depth)
	}
	return nil
}

// CIGrid is the checked-in smoke grid CI runs twice and byte-diffs
// (bench/ci-grid.json mirrors it; a unit test keeps the two in sync). Its
// cells are also appended to the report suite, which is how sim/* rows
// enter bench/baseline.json. Small on purpose: 8 cells × 2 repeats, each
// verified by a double run.
func CIGrid() *Grid {
	return &Grid{
		Name:       "sim-ci-grid",
		Repeats:    2,
		SeedRanges: []SeedRange{{From: 1, To: 1}, {From: 7, To: 7}},
		Requests:   192,
		MeanGaps:   []int64{48, 192},
		Workers:    []int{3},
		Engines:    []string{"Consequence", "LazyDet"},
		Backends:   []string{"interp", "compiled"},
		Contention: []GridContention{
			{Name: "c4", Keys: 64, Stripes: 4, HotPct: 25, HotKeys: 2},
		},
		PerRequestCSV: true,
		Verify:        true,
	}
}
