// Package experiments regenerates every table and figure of the paper's
// evaluation (§5): the hash-table microbenchmark sweeps (Figures 1 and 7),
// the lock-statistics and speculation-statistics tables (Tables 1 and 2),
// the application comparisons (Figures 8–11), and the revert-cost scatter
// (Figure 12). Each function prints the same rows or series the paper
// reports, measured on this machine.
package experiments

import (
	"fmt"
	"io"

	"lazydet/internal/core"
	"lazydet/internal/harness"
	"lazydet/internal/stats"
	"lazydet/internal/workloads"
)

// Config controls an experiment run.
type Config struct {
	Out io.Writer
	// Reps is the number of repetitions per data point (the paper uses
	// 5); the mean is reported, with the standard deviation where the
	// paper shows error bars.
	Reps int
	// Threads overrides an experiment's default thread count when > 0.
	Threads int
	// Scale scales workload problem sizes (1 = default).
	Scale int
	// Quick shrinks sweeps for fast smoke runs.
	Quick bool
	// Compiled runs the deterministic engines on the threaded-code
	// backend instead of the interpreter. Because the two backends
	// publish identical clocks at every sync point, a -report run with
	// Compiled set must reproduce the interpreter baseline's gated
	// metrics exactly — diffing against bench/baseline.json turns the
	// perf gate itself into a differential oracle for the lowering pass.
	Compiled bool
	// EagerPublish disables same-owner publication elision on the strong
	// engines — the always-publish differential oracle. A -report run with
	// EagerPublish set must reproduce the baseline's gated metrics outside
	// the elision-variant set (harness.ElisionVariantMetrics) exactly.
	EagerPublish bool
	// CSVDir, when set, additionally writes each experiment's rows as
	// <CSVDir>/<experiment>.csv for re-plotting.
	CSVDir string
}

func (c Config) withDefaults() Config {
	if c.Out == nil {
		c.Out = io.Discard
	}
	if c.Reps <= 0 {
		c.Reps = 3
	}
	if c.Scale <= 0 {
		c.Scale = 1
	}
	return c
}

func (c Config) printf(format string, args ...any) {
	fmt.Fprintf(c.Out, format, args...)
}

// measure runs the workload reps times and returns mean and stddev wall
// times in seconds.
func measure(w *harness.Workload, opt harness.Options, reps int) (mean, std float64, last *harness.Result, err error) {
	times := make([]float64, 0, reps)
	for r := 0; r < reps; r++ {
		res, e := harness.Run(w, opt)
		if e != nil {
			return 0, 0, nil, e
		}
		times = append(times, res.Wall.Seconds())
		last = res
	}
	return stats.Mean(times), stats.Stddev(times), last, nil
}

// slowdownRow measures one workload under a set of engines and returns each
// engine's runtime normalized to the pthreads engine.
func slowdownRow(w *harness.Workload, threads, reps int, engines []harness.EngineKind) (base float64, slows []float64, err error) {
	base, _, _, err = measure(w, harness.Options{Engine: harness.Pthreads, Threads: threads}, reps)
	if err != nil {
		return 0, nil, err
	}
	for _, e := range engines {
		m, _, _, err := measure(w, harness.Options{Engine: e, Threads: threads}, reps)
		if err != nil {
			return 0, nil, err
		}
		slows = append(slows, m/base)
	}
	return base, slows, nil
}

// Fig1 reproduces Figure 1: the motivating hash-table experiment. The
// paper's Consequence-Weak and Consequence-Weak-Nondet are this
// repository's TotalOrder-Weak and TotalOrder-Weak-Nondet engines.
func Fig1(cfg Config) error {
	cfg = cfg.withDefaults()
	threads := 32
	if cfg.Threads > 0 {
		threads = cfg.Threads
	}
	sizes := []int{512, 1024, 2048, 4096, 8192, 16384}
	if cfg.Quick {
		sizes = []int{512, 4096}
	}
	engines := []harness.EngineKind{harness.Consequence, harness.TotalOrderWeak, harness.TotalOrderWeakNondet}

	cfg.printf("Figure 1: hash table (ht) slowdown vs pthreads, %d threads\n", threads)
	cfg.printf("%-12s %12s %18s %24s\n", "max objects", "Consequence", "Consequence-Weak", "Consequence-Weak-Nondet")
	csvf, err := cfg.csvFile("fig1", "max_objects", "consequence_x", "weak_x", "weak_nondet_x")
	if err != nil {
		return err
	}
	defer csvf.close()
	for _, size := range sizes {
		ht := workloads.DefaultHTConfig(workloads.HT)
		ht.MaxObjects = size
		w := workloads.NewHashTable(ht)
		_, slows, err := slowdownRow(w, threads, cfg.Reps, engines)
		if err != nil {
			return err
		}
		cfg.printf("%-12d %11.1fx %17.1fx %23.1fx\n", size, slows[0], slows[1], slows[2])
		csvf.row(size, slows[0], slows[1], slows[2])
	}
	return nil
}

// Fig7 reproduces Figure 7: six panels sweeping table size, load factor and
// update percentage for the ht and htLazy variants under all five systems.
func Fig7(cfg Config) error {
	cfg = cfg.withDefaults()
	threads := 32
	if cfg.Threads > 0 {
		threads = cfg.Threads
	}
	engines := []harness.EngineKind{
		harness.Consequence, harness.TotalOrderWeak, harness.TotalOrderWeakNondet, harness.LazyDet,
	}

	sizes := []int{512, 2048, 8192, 16384}
	factors := []int{1, 2, 4, 8}
	updates := []int{0, 10, 50, 100}
	if cfg.Quick {
		sizes = []int{512, 8192}
		factors = []int{1, 8}
		updates = []int{10, 100}
	}

	csvf, err := cfg.csvFile("fig7", "variant", "axis", "value", "consequence_x", "weak_x", "weak_nondet_x", "lazydet_x")
	if err != nil {
		return err
	}
	defer csvf.close()
	panel := func(variant workloads.HTVariant, axis string, vals []int, mk func(v int) workloads.HTConfig) error {
		cfg.printf("\nFigure 7 [%s, sweep %s]: slowdown vs pthreads, %d threads\n", variant, axis, threads)
		cfg.printf("%-10s %12s %16s %23s %9s\n", axis, "Consequence", "TotalOrder-Weak", "TotalOrder-Weak-Nondet", "LazyDet")
		for _, v := range vals {
			w := workloads.NewHashTable(mk(v))
			_, slows, err := slowdownRow(w, threads, cfg.Reps, engines)
			if err != nil {
				return err
			}
			cfg.printf("%-10d %11.1fx %15.1fx %22.1fx %8.1fx\n", v, slows[0], slows[1], slows[2], slows[3])
			csvf.row(string(variant), axis, v, slows[0], slows[1], slows[2], slows[3])
		}
		return nil
	}

	for _, variant := range []workloads.HTVariant{workloads.HT, workloads.HTLazy} {
		variant := variant
		if err := panel(variant, "size", sizes, func(v int) workloads.HTConfig {
			c := workloads.DefaultHTConfig(variant)
			c.MaxObjects = v
			return c
		}); err != nil {
			return err
		}
		if err := panel(variant, "load-factor", factors, func(v int) workloads.HTConfig {
			c := workloads.DefaultHTConfig(variant)
			c.LoadFactor = v
			return c
		}); err != nil {
			return err
		}
		if err := panel(variant, "update-pct", updates, func(v int) workloads.HTConfig {
			c := workloads.DefaultHTConfig(variant)
			c.UpdatePct = v
			return c
		}); err != nil {
			return err
		}
	}
	return nil
}

// Table1 reproduces Table 1: lock statistics for every benchmark at 8
// threads under the pthreads engine.
func Table1(cfg Config) error {
	cfg = cfg.withDefaults()
	threads := 8
	if cfg.Threads > 0 {
		threads = cfg.Threads
	}
	cfg.printf("Table 1: lock statistics, %d threads (pthreads engine)\n", threads)
	cfg.printf("%-18s %9s %12s %6s %6s %6s %6s %12s\n",
		"program", "# locks", "# acquis.", "50th", "75th", "95th", "max", "runtime (s)")
	csvf, err := cfg.csvFile("table1", "program", "locks", "acquisitions", "p50", "p75", "p95", "max", "runtime_s")
	if err != nil {
		return err
	}
	defer csvf.close()
	for _, g := range workloads.All() {
		w := g.New(cfg.Scale)
		mean, _, res, err := measure(w, harness.Options{
			Engine: harness.Pthreads, Threads: threads, CountLocks: true,
		}, cfg.Reps)
		if err != nil {
			return fmt.Errorf("%s: %w", g.Name, err)
		}
		s := res.Counter.Summarize()
		cfg.printf("%-18s %9d %12d %6d %6d %6d %6d %12.4f\n",
			g.Name, s.Variables, s.Acquisitions, s.P50, s.P75, s.P95, s.Max, mean)
		csvf.row(g.Name, s.Variables, s.Acquisitions, s.P50, s.P75, s.P95, s.Max, mean)
	}
	return nil
}

// lockBased returns the benchmarks of Figure 8's left group.
func lockBased() []workloads.Gen {
	var out []workloads.Gen
	for _, g := range workloads.All() {
		if g.LockBased {
			out = append(out, g)
		}
	}
	return out
}

// Fig8 reproduces Figure 8: the best runtime of each system across thread
// counts, normalized to the best pthreads runtime.
func Fig8(cfg Config) error {
	cfg = cfg.withDefaults()
	threadCounts := []int{2, 4, 8}
	if cfg.Quick {
		threadCounts = []int{4}
	}
	engines := []harness.EngineKind{
		harness.Consequence, harness.TotalOrderWeak, harness.TotalOrderWeakNondet, harness.LazyDet,
	}

	best := func(w *harness.Workload, e harness.EngineKind) (float64, error) {
		b := -1.0
		for _, th := range threadCounts {
			m, _, _, err := measure(w, harness.Options{Engine: e, Threads: th}, cfg.Reps)
			if err != nil {
				return 0, err
			}
			if b < 0 || m < b {
				b = m
			}
		}
		return b, nil
	}

	cfg.printf("Figure 8: best runtime normalized to pthreads (threads in %v)\n", threadCounts)
	cfg.printf("%-18s %12s %16s %23s %9s\n", "program", "Consequence", "TotalOrder-Weak", "TotalOrder-Weak-Nondet", "LazyDet")
	csvf, err := cfg.csvFile("fig8", "program", "consequence_x", "weak_x", "weak_nondet_x", "lazydet_x")
	if err != nil {
		return err
	}
	defer csvf.close()
	group := func(gens []workloads.Gen) error {
		for _, g := range gens {
			w := g.New(cfg.Scale)
			base, err := best(w, harness.Pthreads)
			if err != nil {
				return fmt.Errorf("%s: %w", g.Name, err)
			}
			row := make([]float64, len(engines))
			for i, e := range engines {
				m, err := best(w, e)
				if err != nil {
					return fmt.Errorf("%s/%s: %w", g.Name, e, err)
				}
				row[i] = m / base
			}
			cfg.printf("%-18s %11.1fx %15.1fx %22.1fx %8.1fx\n", g.Name, row[0], row[1], row[2], row[3])
			csvf.row(g.Name, row[0], row[1], row[2], row[3])
		}
		return nil
	}
	cfg.printf("-- lock-based group --\n")
	if err := group(lockBased()); err != nil {
		return err
	}
	if !cfg.Quick {
		cfg.printf("-- coarse-grained group --\n")
		var coarse []workloads.Gen
		for _, g := range workloads.All() {
			if !g.LockBased {
				coarse = append(coarse, g)
			}
		}
		if err := group(coarse); err != nil {
			return err
		}
	}
	return nil
}

// Fig9 reproduces Figure 9: runtime vs thread count, normalized to the
// pthreads runtime at the same thread count.
func Fig9(cfg Config) error {
	cfg = cfg.withDefaults()
	threadCounts := []int{2, 4, 8, 16, 32}
	if cfg.Quick {
		threadCounts = []int{2, 8}
	}
	names := []string{"barnes", "ocean_cp", "ferret", "water_nsquared", "reverse_index", "dedup"}
	engines := []harness.EngineKind{harness.Consequence, harness.LazyDet}

	cfg.printf("Figure 9: scalability, slowdown vs pthreads at each thread count\n")
	csvf, err := cfg.csvFile("fig9", "program", "threads", "consequence_x", "lazydet_x")
	if err != nil {
		return err
	}
	defer csvf.close()
	for _, name := range names {
		g := workloads.ByName(name)
		w := g.New(cfg.Scale)
		cfg.printf("\n%s:\n%-8s %12s %9s\n", name, "threads", "Consequence", "LazyDet")
		for _, th := range threadCounts {
			base, _, _, err := measure(w, harness.Options{Engine: harness.Pthreads, Threads: th}, cfg.Reps)
			if err != nil {
				return err
			}
			row := make([]float64, len(engines))
			for i, e := range engines {
				m, _, _, err := measure(w, harness.Options{Engine: e, Threads: th}, cfg.Reps)
				if err != nil {
					return err
				}
				row[i] = m / base
			}
			cfg.printf("%-8d %11.1fx %8.1fx\n", th, row[0], row[1])
			csvf.row(name, th, row[0], row[1])
		}
	}
	return nil
}

// Fig10 reproduces Figure 10: the CPU-utilization proxy for the lock-based
// programs at 16 threads.
func Fig10(cfg Config) error {
	cfg = cfg.withDefaults()
	threads := 16
	if cfg.Threads > 0 {
		threads = cfg.Threads
	}
	engines := []harness.EngineKind{
		harness.Pthreads, harness.Consequence, harness.TotalOrderWeak, harness.TotalOrderWeakNondet, harness.LazyDet,
	}
	cfg.printf("Figure 10: CPU utilization (%% of machine; thread blocked %% in parens), %d threads\n", threads)
	cfg.printf("%-18s %16s %18s %20s %24s %16s\n", "program", "pthreads", "Consequence", "TotalOrder-Weak", "TotalOrder-Weak-Nondet", "LazyDet")
	for _, g := range lockBased() {
		w := g.New(cfg.Scale)
		cells := make([]string, len(engines))
		for i, e := range engines {
			_, _, res, err := measure(w, harness.Options{Engine: e, Threads: threads, MeasureTimes: true}, cfg.Reps)
			if err != nil {
				return err
			}
			cells[i] = fmt.Sprintf("%.0f%% (%.0f%%)", res.UtilizationPct, res.BlockedPct)
		}
		cfg.printf("%-18s %16s %18s %20s %24s %16s\n",
			g.Name, cells[0], cells[1], cells[2], cells[3], cells[4])
	}
	return nil
}

// Fig11 reproduces Figure 11: LazyDet with individual speculation features
// disabled, normalized to full LazyDet.
func Fig11(cfg Config) error {
	cfg = cfg.withDefaults()
	threads := 8
	if cfg.Threads > 0 {
		threads = cfg.Threads
	}
	variants := []struct {
		name string
		mod  func(*core.SpecConfig)
	}{
		{"NoCoarsening", func(s *core.SpecConfig) { s.Coarsening = false }},
		{"NoIrrevocable", func(s *core.SpecConfig) { s.Irrevocable = false }},
		{"NoPerLockStats", func(s *core.SpecConfig) { s.PerLockStats = false }},
	}
	cfg.printf("Figure 11: ablations, runtime normalized to full LazyDet, %d threads\n", threads)
	cfg.printf("%-18s %14s %15s %16s\n", "program", "NoCoarsening", "NoIrrevocable", "NoPerLockStats")
	csvf, err := cfg.csvFile("fig11", "program", "no_coarsening_x", "no_irrevocable_x", "no_perlockstats_x")
	if err != nil {
		return err
	}
	defer csvf.close()
	for _, g := range lockBased() {
		w := g.New(cfg.Scale)
		base, _, _, err := measure(w, harness.Options{Engine: harness.LazyDet, Threads: threads}, cfg.Reps)
		if err != nil {
			return err
		}
		row := make([]float64, len(variants))
		for i, v := range variants {
			sc := core.DefaultSpecConfig()
			v.mod(&sc)
			m, _, _, err := measure(w, harness.Options{Engine: harness.LazyDet, Threads: threads, Spec: sc}, cfg.Reps)
			if err != nil {
				return err
			}
			row[i] = m / base
		}
		cfg.printf("%-18s %13.2fx %14.2fx %15.2fx\n", g.Name, row[0], row[1], row[2])
		csvf.row(g.Name, row[0], row[1], row[2])
	}
	return nil
}

// Table2 reproduces Table 2: speculation statistics at 8, 16 and 32
// threads.
func Table2(cfg Config) error {
	cfg = cfg.withDefaults()
	threadCounts := []int{8, 16, 32}
	if cfg.Quick {
		threadCounts = []int{8}
	}
	names := []string{"barnes", "ocean_cp", "ferret", "water_nsquared", "reverse_index", "water_spatial", "dedup"}
	cfg.printf("Table 2: speculation statistics (LazyDet)\n")
	cfg.printf("%-18s %8s %14s %12s %18s\n", "program", "threads", "% spec. acq.", "% success", "mean length (CS)")
	csvf, err := cfg.csvFile("table2", "program", "threads", "spec_acq_pct", "success_pct", "mean_cs")
	if err != nil {
		return err
	}
	defer csvf.close()
	for _, name := range names {
		g := workloads.ByName(name)
		w := g.New(cfg.Scale)
		for _, th := range threadCounts {
			res, err := harness.Run(w, harness.Options{Engine: harness.LazyDet, Threads: th, CollectSpec: true})
			if err != nil {
				return err
			}
			mean := res.Spec.MeanRunCS()
			ms := fmt.Sprintf("%.1f", mean)
			if res.Spec.Commits.Load() == 0 {
				ms = "N/A"
			}
			cfg.printf("%-18s %8d %13.1f%% %11.1f%% %18s\n",
				name, th, res.Spec.SpecAcquirePct(), res.Spec.SuccessPct(), ms)
			csvf.row(name, th, res.Spec.SpecAcquirePct(), res.Spec.SuccessPct(), ms)
		}
	}
	return nil
}

// Fig12 reproduces Figure 12: a scatter of revert cost vs change-set size
// with a least-squares fit. Reverts are harvested from the conflict-prone
// benchmarks at 8 threads.
func Fig12(cfg Config) error {
	cfg = cfg.withDefaults()
	threads := 8
	if cfg.Threads > 0 {
		threads = cfg.Threads
	}
	var samples []stats.RevertSample
	srcs := []string{"water_spatial", "reverse_index", "dedup", "barnes", "radix"}
	for _, name := range srcs {
		g := workloads.ByName(name)
		res, err := harness.Run(g.New(cfg.Scale), harness.Options{Engine: harness.LazyDet, Threads: threads, CollectSpec: true})
		if err != nil {
			return err
		}
		samples = append(samples, res.Spec.RevertSamples()...)
	}
	// Small-table hash runs generate plenty of reverts with varied sizes.
	ht := workloads.DefaultHTConfig(workloads.HT)
	ht.MaxObjects = 512
	res, err := harness.Run(workloads.NewHashTable(ht), harness.Options{Engine: harness.LazyDet, Threads: threads, CollectSpec: true})
	if err != nil {
		return err
	}
	samples = append(samples, res.Spec.RevertSamples()...)

	if len(samples) == 0 {
		cfg.printf("Figure 12: no reverts observed\n")
		return nil
	}
	xs := make([]float64, len(samples))
	ys := make([]float64, len(samples))
	var meanCost float64
	for i, s := range samples {
		xs[i] = float64(s.ChangeSet)
		ys[i] = float64(s.CostNs)
		meanCost += ys[i]
	}
	meanCost /= float64(len(samples))
	slope, intercept := stats.LinReg(xs, ys)
	csvf, err := cfg.csvFile("fig12", "change_set_words", "cost_ns")
	if err != nil {
		return err
	}
	defer csvf.close()
	for _, sm := range samples {
		csvf.row(sm.ChangeSet, sm.CostNs)
	}
	cfg.printf("Figure 12: revert cost vs change-set size (%d reverts from %v + ht)\n", len(samples), srcs)
	cfg.printf("mean revert cost: %.0f ns\n", meanCost)
	cfg.printf("least-squares fit: cost_ns = %.1f * words + %.0f\n", slope, intercept)
	step := len(samples)/20 + 1
	cfg.printf("%-16s %12s\n", "change set (w)", "cost (ns)")
	for i := 0; i < len(samples); i += step {
		cfg.printf("%-16d %12d\n", samples[i].ChangeSet, samples[i].CostNs)
	}
	return nil
}

// Versions demonstrates the §4.2 space claim: a DLRC-style system must
// retain versions per lock plus per thread, while DDRF's central version
// list coalesces to the live thread bases. The same LazyDet run executes
// against a trimming heap (DDRF) and a full-retention heap (the
// DLRC-accounting mode), and the surviving page-version counts are
// compared against the heap's page population.
// ArbiterSweep measures how arbitration cost scales with thread count: the
// ht microbenchmark at t = 4…1024 (total operation count held constant)
// under the tournament-tree arbiter and under the flat O(threads)-scan
// oracle. For each point it reports wall time and the arbiter's own cost
// counters — wakes sent and election key comparisons — whose ratio is the
// per-grant arbitration work. Every point is cross-checked: the two
// arbiters must produce bit-identical traces and final memory, so the sweep
// can never trade determinism for speed silently.
func ArbiterSweep(cfg Config) error {
	cfg = cfg.withDefaults()
	counts := []int{4, 16, 64, 256, 1024}
	if cfg.Quick {
		counts = []int{4, 64, 256}
	}
	if cfg.Threads > 0 {
		counts = []int{cfg.Threads}
	}
	csvf, err := cfg.csvFile("arbsweep", "threads", "arbiter", "wall_s", "wakes", "grant_work", "work_per_grant")
	if err != nil {
		return err
	}
	defer csvf.close()
	cfg.printf("arbiter cost vs threads: ht, constant total ops, LazyDet\n")
	cfg.printf("%8s %6s %12s %12s %14s %16s\n", "threads", "arb", "wall", "wakes", "grant work", "work/grant")
	for _, threads := range counts {
		htCfg := workloads.DefaultHTConfig(workloads.HT)
		htCfg.OpsPerThread = 16384 / threads
		if htCfg.OpsPerThread < 1 {
			htCfg.OpsPerThread = 1
		}
		var sigs [2]*harness.Result
		for i, flat := range []bool{false, true} {
			w := workloads.NewHashTable(htCfg)
			opt := harness.Options{
				Engine: harness.LazyDet, Threads: threads,
				FlatArbiter: flat, Trace: true,
			}
			mean, _, last, err := measure(w, opt, cfg.Reps)
			if err != nil {
				return err
			}
			sigs[i] = last
			name := "tree"
			if flat {
				name = "flat"
			}
			perGrant := float64(last.ArbiterGrantWork) / float64(max(last.SyncEvents, 1))
			cfg.printf("%8d %6s %12.4fs %12d %14d %16.1f\n",
				threads, name, mean, last.ArbiterWakes, last.ArbiterGrantWork, perGrant)
			csvf.row(threads, name, mean, last.ArbiterWakes, last.ArbiterGrantWork, perGrant)
		}
		if sigs[0].TraceSig != sigs[1].TraceSig || sigs[0].HeapHash != sigs[1].HeapHash {
			return fmt.Errorf("arbsweep: t=%d: tree and flat arbiters diverge (trace %x/%x heap %x/%x)",
				threads, sigs[0].TraceSig, sigs[1].TraceSig, sigs[0].HeapHash, sigs[1].HeapHash)
		}
	}
	cfg.printf("all points: tree and flat schedules bit-identical\n")
	return nil
}

func Versions(cfg Config) error {
	cfg = cfg.withDefaults()
	w := workloads.NewHashTable(workloads.DefaultHTConfig(workloads.HT))
	threads := 8
	if cfg.Threads > 0 {
		threads = cfg.Threads
	}
	ddrf, err := harness.Run(w, harness.Options{Engine: harness.LazyDet, Threads: threads})
	if err != nil {
		return err
	}
	dlrc, err := harness.Run(w, harness.Options{Engine: harness.LazyDet, Threads: threads, FullVersionChains: true})
	if err != nil {
		return err
	}
	basePages := int(w.HeapWords/int64(256) + 1)
	cfg.printf("§4.2 scalability: memory versions retained, %d threads, %d commits\n", threads, ddrf.Commits)
	cfg.printf("%-34s %14s %10s\n", "retention policy", "page versions", "wall")
	cfg.printf("%-34s %14d %10v\n", "DDRF (coalesced version list)", ddrf.LiveVersions, ddrf.Wall)
	cfg.printf("%-34s %14d %10v\n", "DLRC-style (full retention)", dlrc.LiveVersions, dlrc.Wall)
	cfg.printf("heap population is %d pages; DDRF retains ~1 version per page,\n", basePages)
	cfg.printf("full retention grows with every commit (%d page versions written)\n", dlrc.PagesCommitted)
	return nil
}
