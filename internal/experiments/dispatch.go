// The dispatch sweep: ns/instruction for the interpreter vs the threaded-code
// backend vs direct (pthreads) execution, across program shapes chosen to
// stress different parts of the lowering pass — straight-line compute (pure
// dispatch), load-modify-store sequences (superinstruction fusion), dense
// branching (block transitions and loop back-edge threading), and lock-heavy
// loops (engine ops that break fusion blocks).
//
// The instruction denominator is the exact retired-instruction count from the
// dvm.retired.* telemetry of a reference run; it is a deterministic function
// of the programs alone, so one count serves every backend. Each sweep point
// also cross-checks the two deterministic backends: traces and final memory
// must be bit-identical, the interpreter serving as the differential oracle.
package experiments

import (
	"fmt"
	"strings"

	"lazydet/internal/dvm"
	"lazydet/internal/harness"
)

// dispatchShape is one program family of the sweep: a workload factory whose
// per-thread programs have a statically fixed instruction count. runLens, for
// lock shapes, sweeps the same-owner reacquire run length — how many
// consecutive critical sections a thread runs on its own lock before a
// compute gap lets another thread's turn intervene. Longer runs are the
// publication-elision target (one deferred publication per run instead of
// one commit per section); a nil runLens means the knob does not apply and
// the shape is measured once with runlen 0.
type dispatchShape struct {
	name    string
	runLens []int64
	build   func(threads int, iters, runlen int64) *harness.Workload
}

// privateWords is the per-thread private heap span of the sweep's workloads;
// threads never share an address, so every shape is race-free and its final
// memory and retired-instruction mix are schedule-independent.
const privateWords = 64

func dispatchShapes() []dispatchShape {
	return []dispatchShape{
		{"compute", nil, func(threads int, iters, _ int64) *harness.Workload {
			return dispatchWorkload("compute", threads, 0, func(b *dvm.Builder, tid int) {
				acc := b.Reg()
				i := b.Reg()
				b.Set(acc, 0)
				b.ForN(i, iters, func() {
					b.Do(func(t *dvm.Thread) { t.SetR(acc, t.R(acc)*3+1) })
					b.Do(func(t *dvm.Thread) { t.SetR(acc, t.R(acc)&0xffff) })
				})
				b.Store(dvm.Const(int64(tid*privateWords)), dvm.FromReg(acc))
			})
		}},
		{"loadstore", nil, func(threads int, iters, _ int64) *harness.Workload {
			return dispatchWorkload("loadstore", threads, 0, func(b *dvm.Builder, tid int) {
				addr := int64(tid * privateWords)
				r := b.Reg()
				i := b.Reg()
				b.ForN(i, iters, func() {
					b.Load(r, dvm.Const(addr))
					b.Do(func(t *dvm.Thread) { t.SetR(r, t.R(r)+1) })
					b.Store(dvm.Const(addr), dvm.FromReg(r))
				})
			})
		}},
		{"branchy", nil, func(threads int, iters, _ int64) *harness.Workload {
			return dispatchWorkload("branchy", threads, 0, func(b *dvm.Builder, tid int) {
				acc := b.Reg()
				i := b.Reg()
				b.Set(acc, 0)
				b.ForN(i, iters, func() {
					b.IfElse(func(t *dvm.Thread) bool { return t.R(i)&1 == 0 },
						func() { b.Do(func(t *dvm.Thread) { t.SetR(acc, t.R(acc)+2) }) },
						func() { b.Do(func(t *dvm.Thread) { t.SetR(acc, t.R(acc)-1) }) })
				})
				b.Store(dvm.Const(int64(tid*privateWords)), dvm.FromReg(acc))
			})
		}},
		// The locked shape sweeps the reacquire run length: runlen
		// consecutive critical sections on the thread's own lock, then a
		// compute gap whose DLC cost lets every other thread's pending turn
		// intervene. runlen 1 is the old tight loop (every release
		// immediately observed); longer runs are uninterrupted same-owner
		// chains, where elision replaces runlen commits with one deferred
		// publication. Loop-control overhead differs slightly per run
		// length, so each runlen point takes its own retired-instruction
		// reference.
		{"locked", []int64{1, 8, 64}, func(threads int, iters, runlen int64) *harness.Workload {
			return dispatchWorkload(fmt.Sprintf("locked/r%d", runlen), threads, threads, func(b *dvm.Builder, tid int) {
				addr := int64(tid * privateWords)
				lock := dvm.Const(int64(tid))
				r := b.Reg()
				i := b.Reg()
				j := b.Reg()
				b.DoCost(1+int64(tid)*512, func(*dvm.Thread) {})
				b.ForN(i, iters/runlen, func() {
					b.DoCost(4096, func(*dvm.Thread) {})
					b.ForN(j, runlen, func() {
						b.Lock(lock)
						b.Load(r, dvm.Const(addr))
						b.Do(func(t *dvm.Thread) { t.SetR(r, t.R(r)+1) })
						b.Store(dvm.Const(addr), dvm.FromReg(r))
						b.Unlock(lock)
					})
				})
			})
		}},
	}
}

// dispatchWorkload assembles a race-free workload from a per-thread program
// generator; each thread owns its own privateWords span (and, for lock
// shapes, its own lock).
func dispatchWorkload(name string, threads, locks int, gen func(b *dvm.Builder, tid int)) *harness.Workload {
	return &harness.Workload{
		Name:      "dispatch/" + name,
		HeapWords: int64(threads * privateWords),
		Locks:     locks,
		Programs: func(threads int) []*dvm.Program {
			progs := make([]*dvm.Program, threads)
			for tid := 0; tid < threads; tid++ {
				b := dvm.NewBuilder(fmt.Sprintf("%s-t%d", name, tid))
				gen(b, tid)
				progs[tid] = b.Build()
			}
			return progs
		},
	}
}

// retiredInstructions sums the dvm.retired.* opcode counters of one
// telemetry run — the exact number of instructions the run retired.
func retiredInstructions(res *harness.Result) int64 {
	if res.Telemetry == nil {
		return 0
	}
	var total int64
	//lazydet:nondeterministic order-independent sum over the counter map
	for k, v := range res.Telemetry.Snapshot().Counters {
		if strings.HasPrefix(k, "dvm.retired.") {
			total += v
		}
	}
	return total
}

// DispatchSweep measures instruction-dispatch cost — wall time divided by
// retired instructions — for each backend across the dispatch shapes:
//
//	direct    pthreads engine, interpreter (no deterministic scheduling)
//	interp    LazyDet engine, interpreter
//	compiled  LazyDet engine, threaded code
//
// and verifies at every point that the two LazyDet backends produce
// bit-identical traces and final memory.
func DispatchSweep(cfg Config) error {
	cfg = cfg.withDefaults()
	threads := 8
	if cfg.Threads > 0 {
		threads = cfg.Threads
	}
	iters := int64(200_000)
	if cfg.Quick {
		iters = 20_000
	}
	iters *= int64(cfg.Scale)
	csvf, err := cfg.csvFile("dispatchsweep", "shape", "runlen", "backend", "wall_s", "instructions", "ns_per_instr")
	if err != nil {
		return err
	}
	defer csvf.close()
	cfg.printf("dispatch cost by backend: %d threads, %d iterations/thread\n", threads, iters)
	cfg.printf("%-10s %7s %10s %12s %14s %14s\n", "shape", "runlen", "backend", "wall", "instructions", "ns/instr")
	for _, shape := range dispatchShapes() {
		runLens := shape.runLens
		if runLens == nil {
			runLens = []int64{0}
		}
		for _, runlen := range runLens {
			w := shape.build(threads, iters, runlen)
			// Reference run: exact retired-instruction count, shared by every
			// backend below (the count is deterministic and backend-invariant).
			ref, err := harness.Run(w, harness.Options{
				Engine: harness.LazyDet, Threads: threads, Telemetry: true, Trace: true,
			})
			if err != nil {
				return fmt.Errorf("dispatchsweep: %s reference: %w", w.Name, err)
			}
			instrs := retiredInstructions(ref)
			if instrs == 0 {
				return fmt.Errorf("dispatchsweep: %s reference retired no instructions", w.Name)
			}
			backends := []struct {
				name string
				opt  harness.Options
			}{
				{"direct", harness.Options{Engine: harness.Pthreads, Threads: threads}},
				{"interp", harness.Options{Engine: harness.LazyDet, Threads: threads, Trace: true}},
				{"compiled", harness.Options{Engine: harness.LazyDet, Threads: threads, Trace: true, Compiled: true}},
			}
			var sigs [2]*harness.Result
			for _, bk := range backends {
				mean, _, last, err := measure(w, bk.opt, cfg.Reps)
				if err != nil {
					return fmt.Errorf("dispatchsweep: %s %s: %w", w.Name, bk.name, err)
				}
				switch bk.name {
				case "interp":
					sigs[0] = last
				case "compiled":
					sigs[1] = last
				}
				nsPerInstr := mean * 1e9 / float64(instrs)
				cfg.printf("%-10s %7d %10s %12.4fs %14d %14.2f\n", shape.name, runlen, bk.name, mean, instrs, nsPerInstr)
				csvf.row(shape.name, runlen, bk.name, mean, instrs, nsPerInstr)
			}
			if sigs[0].TraceSig != sigs[1].TraceSig || sigs[0].HeapHash != sigs[1].HeapHash {
				return fmt.Errorf("dispatchsweep: %s: interpreter and threaded code diverge (trace %x/%x heap %x/%x)",
					w.Name, sigs[0].TraceSig, sigs[1].TraceSig, sigs[0].HeapHash, sigs[1].HeapHash)
			}
		}
	}
	cfg.printf("all shapes: interpreter and threaded-code schedules bit-identical\n")
	return nil
}
