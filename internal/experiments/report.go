// The report suite: the fixed set of runs lazydet-bench -report serializes
// and the CI perf gate diffs against bench/baseline.json.
//
// The suite only includes engines whose gated metrics are deterministic:
// pthreads (timing reference only — it publishes no deterministic metrics),
// Consequence, TotalOrder-Weak and LazyDet. TotalOrder-Weak-Nondet is
// excluded because its turn arbitration is nondeterministic by design, so
// its counters cannot be matched against a checked-in baseline.
package experiments

import (
	"fmt"

	"lazydet/internal/harness"
	"lazydet/internal/opensim"
	"lazydet/internal/telemetry"
	"lazydet/internal/workloads"
)

// reportEngines are the suite's engines, in report order.
var reportEngines = []harness.EngineKind{
	harness.Pthreads, harness.Consequence, harness.TotalOrderWeak, harness.LazyDet,
}

// ReportSuite runs the report suite — the ht and htlazy microbenchmarks
// under each reportEngines entry — with telemetry, tracing, blocked-time and
// speculation collection on, and returns the suite report. Thread count
// defaults to 4 (cfg.Threads overrides).
func ReportSuite(cfg Config) (*telemetry.SuiteReport, error) {
	cfg = cfg.withDefaults()
	threads := 4
	if cfg.Threads > 0 {
		threads = cfg.Threads
	}
	suite := &telemetry.SuiteReport{Schema: telemetry.ReportSchema, Suite: "ht-microbench"}
	for _, variant := range []workloads.HTVariant{workloads.HT, workloads.HTLazy} {
		w := workloads.NewHashTable(workloads.DefaultHTConfig(variant))
		for _, e := range reportEngines {
			opt := harness.Options{
				Engine:       e,
				Threads:      threads,
				Telemetry:    true,
				MeasureTimes: true,
				Trace:        e != harness.Pthreads,
				CollectSpec:  e == harness.LazyDet,
				Compiled:     cfg.Compiled,
				EagerPublish: cfg.EagerPublish,
			}
			res, err := harness.Run(w, opt)
			if err != nil {
				return nil, fmt.Errorf("report suite: %s under %s: %w", w.Name, e, err)
			}
			r := harness.BuildReport(res)
			suite.Runs = append(suite.Runs, r)
			cfg.printf("%-28s wall %-12v %d deterministic metrics\n", r.Key(), res.Wall, len(r.Metrics))

			// Threaded-code rows for the strong engines, keyed
			// <workload>/compiled so the baseline pins both backends. Their
			// gated metrics must stay bit-identical to the interpreter rows
			// above; the Timing section carries the wall-time difference the
			// backend actually buys.
			if e == harness.Consequence || e == harness.LazyDet {
				copt := opt
				copt.Compiled = true
				cres, err := harness.Run(w, copt)
				if err != nil {
					return nil, fmt.Errorf("report suite: %s/compiled under %s: %w", w.Name, e, err)
				}
				cr := harness.BuildReport(cres)
				cr.Workload += "/compiled"
				suite.Runs = append(suite.Runs, cr)
				cfg.printf("%-28s wall %-12v %d deterministic metrics\n", cr.Key(), cres.Wall, len(cr.Metrics))
			}

			// Eager-publication rows for the strong engines, keyed
			// <workload>/eager: the same run with same-owner publication
			// elision disabled — the differential oracle. TraceSig, HeapHash
			// and every gated metric outside harness.ElisionVariantMetrics
			// must match the elided row above; the rows that differ
			// (vheap.commits, commit.elided, stage counters) measure exactly
			// what elision saves, pinned against the baseline.
			if e == harness.Consequence || e == harness.LazyDet {
				eopt := opt
				eopt.EagerPublish = true
				eres, err := harness.Run(w, eopt)
				if err != nil {
					return nil, fmt.Errorf("report suite: %s/eager under %s: %w", w.Name, e, err)
				}
				er := harness.BuildReport(eres)
				er.Workload += "/eager"
				suite.Runs = append(suite.Runs, er)
				cfg.printf("%-28s wall %-12v %d deterministic metrics\n", er.Key(), eres.Wall, len(er.Metrics))
			}

			// Statically hinted LazyDet rows, keyed <workload>/hints: the
			// same run with the progcheck footprint verdicts seeding the
			// speculation policy. Diffing the spec.* metrics (successes,
			// reverts, spec.conflict_reverts) against the unhinted row above
			// is the suite's measure of what the static hints buy; the
			// progcheck.hints.* counters pin the verdict distribution
			// itself. Both rows are gated — the deltas are deterministic.
			if e == harness.LazyDet {
				hopt := opt
				hopt.SpecHints = true
				hres, err := harness.Run(w, hopt)
				if err != nil {
					return nil, fmt.Errorf("report suite: %s/hints under %s: %w", w.Name, e, err)
				}
				hr := harness.BuildReport(hres)
				hr.Workload += "/hints"
				suite.Runs = append(suite.Runs, hr)
				cfg.printf("%-28s wall %-12v %d deterministic metrics\n", hr.Key(), hres.Wall, len(hr.Metrics))
			}
		}
	}
	// Scale rows: the ht microbenchmark at high thread counts (total
	// operation count held constant), pinning the tournament arbiter's and
	// sharded heap's deterministic metrics — DLC totals, commit counts,
	// arbiter depth, shard count — where regressions in turn arbitration
	// at scale would surface. Only run when cfg.Threads doesn't already
	// override the suite's thread count.
	if cfg.Threads == 0 {
		for _, scaleThreads := range []int{64, 256} {
			htCfg := workloads.DefaultHTConfig(workloads.HT)
			htCfg.OpsPerThread = 2048 / scaleThreads
			w := workloads.NewHashTable(htCfg)
			for _, e := range []harness.EngineKind{harness.Consequence, harness.LazyDet} {
				opt := harness.Options{
					Engine:       e,
					Threads:      scaleThreads,
					Telemetry:    true,
					Trace:        true,
					CollectSpec:  e == harness.LazyDet,
					Compiled:     cfg.Compiled,
					EagerPublish: cfg.EagerPublish,
				}
				res, err := harness.Run(w, opt)
				if err != nil {
					return nil, fmt.Errorf("report suite: %s under %s at t=%d: %w", w.Name, e, scaleThreads, err)
				}
				r := harness.BuildReport(res)
				suite.Runs = append(suite.Runs, r)
				cfg.printf("%-28s wall %-12v %d deterministic metrics\n", r.Key(), res.Wall, len(r.Metrics))

				// Compiled scale rows: schedule equivalence of the two
				// backends is pinned at high thread counts too.
				copt := opt
				copt.Compiled = true
				cres, err := harness.Run(w, copt)
				if err != nil {
					return nil, fmt.Errorf("report suite: %s/compiled under %s at t=%d: %w", w.Name, e, scaleThreads, err)
				}
				cr := harness.BuildReport(cres)
				cr.Workload += "/compiled"
				suite.Runs = append(suite.Runs, cr)
				cfg.printf("%-28s wall %-12v %d deterministic metrics\n", cr.Key(), cres.Wall, len(cr.Metrics))
			}
		}
	}
	// Open-loop simulation rows: the CI smoke grid's cells, keyed sim/*.
	// Their latency percentiles are deterministic, so they are gated like
	// every other sim metric; the grid's own Verify double-run cross-checks
	// each cell's schedule first. Skipped when cfg.Threads overrides the
	// suite (the grid carries its own worker dimension). The grid's CSV
	// output is suppressed here — lazydet-sim is the CSV front end.
	if cfg.Threads == 0 {
		gridCfg := cfg
		gridCfg.CSVDir = ""
		simSuite, err := RunGrid(gridCfg, CIGrid())
		if err != nil {
			return nil, fmt.Errorf("report suite: %w", err)
		}
		suite.Runs = append(suite.Runs, simSuite.Runs...)

		// Hinted-simulation pair: one open-loop service cell with the static
		// speculation hints off and on, keyed sim/hints-off and sim/hints-on.
		// The hinted run is a different — still deterministic — schedule
		// (the queue lock classifies Conflicting, so the hinted policy skips
		// its warm-up speculation), so both rows are pinned whole rather
		// than asserted equal; the spec.* deltas between them measure the
		// hints' payoff under queueing load.
		for _, hinted := range []bool{false, true} {
			sc := opensim.Config{Engine: harness.LazyDet, Seed: 7, SpecHints: hinted, Compiled: cfg.Compiled}
			sres, err := opensim.Run(sc)
			if err != nil {
				return nil, fmt.Errorf("report suite: sim hints pair (hinted=%v): %w", hinted, err)
			}
			r := harness.BuildReport(sres.Harness)
			r.Workload = "sim/hints-off"
			if hinted {
				r.Workload = "sim/hints-on"
			}
			suite.Runs = append(suite.Runs, r)
			cfg.printf("%-28s wall %-12v %d deterministic metrics\n", r.Key(), sres.Harness.Wall, len(r.Metrics))
		}
	}
	return suite, nil
}
