package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsSmoke runs every table/figure generator in quick mode
// and sanity-checks the output shape. This is the regression net for the
// evaluation harness itself.
func TestAllExperimentsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment smoke runs are not short")
	}
	cases := []struct {
		name string
		run  func(Config) error
		want []string
	}{
		{"table1", Table1, []string{"Table 1", "barnes", "lu_ncb", "runtime"}},
		{"fig1", Fig1, []string{"Figure 1", "Consequence-Weak-Nondet"}},
		{"fig7", Fig7, []string{"Figure 7", "ht", "htlazy", "LazyDet"}},
		{"fig8", Fig8, []string{"Figure 8", "lock-based group", "ferret"}},
		{"fig9", Fig9, []string{"Figure 9", "water_nsquared", "threads"}},
		{"fig10", Fig10, []string{"Figure 10", "utilization"}},
		{"fig11", Fig11, []string{"Figure 11", "NoCoarsening", "NoIrrevocable", "NoPerLockStats"}},
		{"table2", Table2, []string{"Table 2", "% success", "dedup"}},
		{"fig12", Fig12, []string{"Figure 12", "least-squares"}},
		{"versions", Versions, []string{"§4.2", "DDRF", "DLRC"}},
		{"arbsweep", ArbiterSweep, []string{"arbiter cost", "tree", "flat", "bit-identical"}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var sb strings.Builder
			cfg := Config{Out: &sb, Reps: 1, Quick: true, Threads: 4}
			if err := c.run(cfg); err != nil {
				t.Fatal(err)
			}
			out := sb.String()
			for _, w := range c.want {
				if !strings.Contains(out, w) {
					t.Errorf("output missing %q:\n%s", w, out)
				}
			}
		})
	}
}

// TestConfigDefaults: zero config fills usable defaults and discards
// output.
func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Reps <= 0 || c.Scale <= 0 || c.Out == nil {
		t.Fatalf("defaults not filled: %+v", c)
	}
}
