package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
)

// csvOut writes one experiment's rows as a CSV file under cfg.CSVDir. When
// no directory is configured every method is a no-op, so experiments call
// it unconditionally.
type csvOut struct {
	w *csv.Writer
	f *os.File
}

// csvFile opens <dir>/<name>.csv and writes the header. Returns a no-op
// writer when dir is empty.
func (c Config) csvFile(name string, header ...string) (*csvOut, error) {
	if c.CSVDir == "" {
		return &csvOut{}, nil
	}
	if err := os.MkdirAll(c.CSVDir, 0o755); err != nil {
		return nil, err
	}
	f, err := os.Create(filepath.Join(c.CSVDir, name+".csv"))
	if err != nil {
		return nil, err
	}
	out := &csvOut{w: csv.NewWriter(f), f: f}
	out.row(toAny(header)...)
	return out, nil
}

func toAny(ss []string) []any {
	out := make([]any, len(ss))
	for i, s := range ss {
		out[i] = s
	}
	return out
}

// row appends one record, formatting each value with %v.
func (o *csvOut) row(vals ...any) {
	if o.w == nil {
		return
	}
	rec := make([]string, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			rec[i] = fmt.Sprintf("%.4f", x)
		default:
			rec[i] = fmt.Sprintf("%v", v)
		}
	}
	_ = o.w.Write(rec)
}

// close flushes and closes the file.
func (o *csvOut) close() {
	if o.w == nil {
		return
	}
	o.w.Flush()
	_ = o.f.Close()
}
