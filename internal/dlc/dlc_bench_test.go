package dlc

import (
	"fmt"
	"sync"
	"testing"
)

func BenchmarkTickUncontended(b *testing.B) {
	a := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.Tick(0, 1)
	}
}

func BenchmarkTurnSoloThread(b *testing.B) {
	a := New(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		a.WaitTurn(0)
		a.ReleaseTurn(0, 2)
	}
}

// BenchmarkTurnHandoff measures the full deterministic turn protocol under
// contention: n threads round-robin through turns, under the tournament
// tree and under the flat-scan oracle. The spread between the two at high
// thread counts is the tentpole scaling win.
func BenchmarkTurnHandoff(b *testing.B) {
	for _, v := range arbVariants {
		for _, n := range []int{2, 8, 32, 256} {
			b.Run(fmt.Sprintf("%s/%d-threads", v.name, n), func(b *testing.B) {
				a := New(n, v.opts...)
				per := b.N/n + 1
				var wg sync.WaitGroup
				b.ResetTimer()
				for tid := 0; tid < n; tid++ {
					wg.Add(1)
					go func(tid int) {
						defer wg.Done()
						for i := 0; i < per; i++ {
							a.Tick(tid, 3)
							a.WaitTurn(tid)
							a.ReleaseTurn(tid, 2)
						}
						a.Exit(tid)
					}(tid)
				}
				wg.Wait()
			})
		}
	}
}
