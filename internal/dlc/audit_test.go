package dlc

import (
	"strings"
	"testing"
)

// TestAuditTurnHolder: a thread that legitimately holds the turn audits
// clean; a thread that does not is rejected with its actual status.
func TestAuditTurnHolder(t *testing.T) {
	a := New(2)
	a.WaitTurn(0)
	if err := a.AuditTurn(0); err != nil {
		t.Fatalf("legitimate turn holder flagged: %v", err)
	}
	if err := a.AuditTurn(1); err == nil {
		t.Fatal("thread 1 audited the turn without holding it, no error")
	} else if !strings.Contains(err.Error(), "status") {
		t.Fatalf("error %q does not mention the bogus status", err)
	}
	a.ReleaseTurn(0, 1)
}

// TestAuditTurnNotMinimum: a turn holder whose clock was pushed above a
// runnable peer's is no longer the (DLC, tid) minimum and must be flagged.
func TestAuditTurnNotMinimum(t *testing.T) {
	a := New(2)
	a.WaitTurn(0)
	// Corrupt the discipline: advance the holder's clock past thread 1's
	// while it still holds the turn.
	a.slots[0].dlc.Add(100)
	err := a.AuditTurn(0)
	if err == nil {
		t.Fatal("turn holder above the minimum audited clean")
	}
	if !strings.Contains(err.Error(), "minimum") {
		t.Fatalf("error %q does not describe the minimum breach", err)
	}
	a.slots[0].dlc.Add(-100)
	a.ReleaseTurn(0, 1)
}

// TestAuditTurnIgnoresParked: parked and exited threads are outside turn
// arbitration, so a holder with a higher clock than a parked thread is fine.
func TestAuditTurnIgnoresParked(t *testing.T) {
	a := New(2)
	a.WaitTurn(0)
	a.Park(0) // thread 0 parks at DLC 0; thread 1 now the minimum
	a.WaitTurn(1)
	a.Tick(1, 50)
	// Thread 1 holds the turn at DLC 50; parked thread 0 at DLC 0 with a
	// lower tid and clock must not trip the audit.
	if err := a.AuditTurn(1); err != nil {
		t.Fatalf("holder flagged against a parked thread: %v", err)
	}
	a.ReleaseTurn(1, 1)
}

// TestAuditTurnNondet: the nondeterministic arbiter has no clock discipline;
// AuditTurn is a no-op there.
func TestAuditTurnNondet(t *testing.T) {
	a := NewNondet(2)
	if err := a.AuditTurn(0); err != nil {
		t.Fatalf("nondet arbiter audited: %v", err)
	}
}
