package dlc

import (
	"sync"
	"testing"
	"testing/quick"
)

// TestQuickGrantOrderMatchesModel verifies both arbiter implementations
// against a host-side model: each thread runs a scripted loop of (tick,
// take turn, release) with per-thread costs derived from a seed. The model
// computes the grant sequence by always admitting the minimum (clock, tid);
// the live arbiters — tournament tree and flat-scan oracle alike, under
// real goroutine scheduling — must produce exactly that sequence.
func TestQuickGrantOrderMatchesModel(t *testing.T) {
	run := func(seed uint64, opts ...Option) ([]int, []int) {
		const threads = 4
		const rounds = 30
		r := seed
		next := func(n uint64) uint64 {
			r = r*6364136223846793005 + 1442695040888963407
			return (r >> 33) % n
		}
		// Scripts: tick[i][k] before the k-th turn, release cost after.
		tick := make([][]int64, threads)
		rel := make([][]int64, threads)
		for i := 0; i < threads; i++ {
			for k := 0; k < rounds; k++ {
				tick[i] = append(tick[i], int64(next(20))+1)
				rel[i] = append(rel[i], int64(next(5))+1)
			}
		}

		// Host model: priority queue by (clock, tid).
		type st struct {
			clock int64
			round int
		}
		model := make([]st, threads)
		for i := range model {
			model[i].clock = tick[i][0]
		}
		var want []int
		done := 0
		for done < threads {
			best := -1
			for i := range model {
				if model[i].round >= rounds {
					continue
				}
				if best == -1 || model[i].clock < model[best].clock {
					best = i
				}
			}
			want = append(want, best)
			model[best].clock += rel[best][model[best].round]
			model[best].round++
			if model[best].round >= rounds {
				done++
			} else {
				model[best].clock += tick[best][model[best].round]
			}
		}

		// Live arbiter.
		a := New(threads, opts...)
		var mu sync.Mutex
		var got []int
		var wg sync.WaitGroup
		for i := 0; i < threads; i++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				for k := 0; k < rounds; k++ {
					a.Tick(tid, tick[tid][k])
					a.WaitTurn(tid)
					mu.Lock()
					got = append(got, tid)
					mu.Unlock()
					a.ReleaseTurn(tid, rel[tid][k])
				}
				a.Exit(tid)
			}(i)
		}
		wg.Wait()
		return want, got
	}

	f := func(seed uint64) bool {
		for _, v := range arbVariants {
			want, got := run(seed, v.opts...)
			if len(want) != len(got) {
				t.Logf("seed %x %s: grant counts differ: %d vs %d", seed, v.name, len(want), len(got))
				return false
			}
			for i := range want {
				if want[i] != got[i] {
					t.Logf("seed %x %s: grant %d: model %d, arbiter %d\nmodel:   %v\narbiter: %v",
						seed, v.name, i, want[i], got[i], want, got)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
