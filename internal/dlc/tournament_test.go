package dlc

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// waitStatus polls until thread tid reaches status st (statuses are atomics,
// so polling is race-free) or the deadline passes.
func waitStatus(t *testing.T, a *Arbiter, tid int, st Status) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for a.Status(tid) != st {
		if time.Now().After(deadline) {
			t.Fatalf("thread %d stuck in status %v, want %v", tid, a.Status(tid), st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSetParkedDeadlockDetection is the regression test for the SetParked
// bugfix: marking a never-run thread parked can itself complete the
// all-parked state, exactly like Park and Exit, and must fire the deadlock
// handler. The shape reproduces the real hang: a program whose suspended
// threads park themselves from their own goroutines (core.Engine's
// ThreadStart does this for StartSuspended programs) races them against the
// last live thread's exit — if the exit lands first, the final SetParked is
// the transition into deadlock, and before the fix nothing ever checked it.
func TestSetParkedDeadlockDetection(t *testing.T) {
	for _, v := range arbVariants {
		t.Run(v.name, func(t *testing.T) {
			a := New(3, v.opts...)
			fired := 0
			a.SetDeadlockHandler(func() { fired++ })
			a.Exit(0) // the last live thread leaves first...
			a.SetParked(1)
			if fired != 0 {
				t.Fatal("deadlock reported while thread 2 was still runnable")
			}
			a.SetParked(2) // ...then its peers suspend: all-parked, no waker
			if fired != 1 {
				t.Fatalf("deadlock handler fired %d times after the last SetParked, want 1", fired)
			}
		})
	}
}

// TestSetParkedDeadlockDetectionConcurrent drives the same shape through
// real goroutines: peers SetParked themselves concurrently with the last
// live thread's exit. Whatever the interleaving, the handler must fire
// exactly once — before the fix, interleavings where Exit preceded the
// final SetParked hung forever.
func TestSetParkedDeadlockDetectionConcurrent(t *testing.T) {
	for _, v := range arbVariants {
		t.Run(v.name, func(t *testing.T) {
			for round := 0; round < 100; round++ {
				a := New(4, v.opts...)
				fired := make(chan struct{}, 1)
				a.SetDeadlockHandler(func() { fired <- struct{}{} })
				var wg sync.WaitGroup
				wg.Add(3)
				go func() { defer wg.Done(); a.SetParked(1) }()
				go func() { defer wg.Done(); a.SetParked(2) }()
				go func() { defer wg.Done(); a.Exit(0) }()
				wg.Wait()
				a.SetParked(3)
				select {
				case <-fired:
				default:
					t.Fatalf("round %d: all threads parked or exited but the deadlock handler never fired", round)
				}
			}
		})
	}
}

// TestEqualDLCWaitersWakeInTidOrder pins the equal-DLC half of the
// minWaiter-cache audit: the cache stores only a DLC, dropping the tid half
// of the key, so when several waiters share the minimum clock the cache
// cannot say which one to admit. The invariant that makes this safe is that
// notification and grant always elect the lowest tid among equal-DLC
// waiters (the flat scan by in-order iteration, the tree by its (DLC, tid)
// match), and Tick's bracket test [old, new] ∋ cached-DLC covers both the
// equality tick (admitting a lower-tid waiter) and the strict crossing
// (admitting a higher-tid one).
func TestEqualDLCWaitersWakeInTidOrder(t *testing.T) {
	for _, v := range arbVariants {
		t.Run(v.name, func(t *testing.T) {
			a := New(3, v.opts...)
			a.SetDLC(0, 50)
			a.SetDLC(1, 50) // two waiters at the same clock; thread 2 runs at 0
			grants := make(chan int, 2)
			for _, tid := range []int{0, 1} {
				go func(tid int) {
					a.WaitTurn(tid)
					grants <- tid
					a.ReleaseTurn(tid, 10)
				}(tid)
			}
			waitStatus(t, a, 0, StatusWaiting)
			waitStatus(t, a, 1, StatusWaiting)
			// The runner reaches the waiters' clock exactly: key (50, 2)
			// still trails waiter 0's (50, 0) and waiter 1's (50, 1), so
			// both must eventually be admitted, lowest tid first.
			a.Tick(2, 50)
			var order []int
			for len(order) < 2 {
				select {
				case tid := <-grants:
					order = append(order, tid)
				case <-time.After(5 * time.Second):
					t.Fatalf("granted %v, then no wakeup: missed equal-DLC wake", order)
				}
			}
			if order[0] != 0 || order[1] != 1 {
				t.Fatalf("equal-DLC waiters granted in order %v, want [0 1]", order)
			}
		})
	}
}

// TestTickWaiterRegistrationRace pins the tick-past-waiter half of the
// minWaiter-cache audit: Tick loads the cache outside a.mu, racing with a
// registering waiter. The protocol is safe because it is the store-buffer
// litmus under Go's sequentially consistent atomics — Tick's clock advance
// precedes its cache load, registration's cache store precedes its read of
// the ticker's clock, so at least one side observes the other: either the
// ticker sees the waiter and wakes it, or the waiter sees the advanced
// clock and never blocks behind it. A missed wakeup here would hang the
// grant forever; the loop hunts for one across many live interleavings.
func TestTickWaiterRegistrationRace(t *testing.T) {
	for _, v := range arbVariants {
		t.Run(v.name, func(t *testing.T) {
			for round := 0; round < 300; round++ {
				a := New(2, v.opts...)
				a.SetDLC(1, 10)
				granted := make(chan struct{})
				go func() {
					a.WaitTurn(1) // registers at clock 10
					close(granted)
				}()
				// Concurrently jump from 0 past the waiter in one batch:
				// only this crossing tick's bracket test can notify, so a
				// lost notification cannot be papered over by later ticks.
				a.Tick(0, 25)
				select {
				case <-granted:
				case <-time.After(5 * time.Second):
					t.Fatalf("round %d: waiter never admitted after the runner ticked past it (missed wakeup)", round)
				}
				a.ReleaseTurn(1, 1)
			}
		})
	}
}

// TestStatsShape checks the cost counters: the tree arbiter reports its
// match depth and both implementations count wakes and grant work.
func TestStatsShape(t *testing.T) {
	a := New(5)
	if got := a.Stats().Depth; got != 3 { // 5 threads -> 8 leaves -> depth 3
		t.Fatalf("tree depth = %d, want 3", got)
	}
	if got := New(1).Stats().Depth; got != 0 {
		t.Fatalf("single-thread tree depth = %d, want 0", got)
	}
	if got := New(5, WithFlatArbiter()).Stats().Depth; got != 0 {
		t.Fatalf("flat arbiter depth = %d, want 0", got)
	}
	for _, v := range arbVariants {
		a := New(2, v.opts...)
		done := make(chan struct{})
		go func() {
			a.WaitTurn(1)
			a.ReleaseTurn(1, 1)
			close(done)
		}()
		waitStatus(t, a, 1, StatusWaiting)
		for i := 0; i < 5; i++ {
			a.Tick(0, 1)
		}
		<-done
		st := a.Stats()
		if st.Wakes == 0 {
			t.Fatalf("%s: no wakes counted across a blocked grant", v.name)
		}
		if st.GrantWork == 0 {
			t.Fatalf("%s: no grant work counted across a blocked grant", v.name)
		}
	}
}

// TestAuditTreeCleanDuringRun runs a multithreaded turn storm, auditing the
// tournament state at every granted turn.
func TestAuditTreeCleanDuringRun(t *testing.T) {
	const n = 16
	const rounds = 50
	a := New(n)
	rng := rand.New(rand.NewSource(1))
	ticks := make([][]int64, n)
	for i := range ticks {
		for k := 0; k < rounds; k++ {
			ticks[i] = append(ticks[i], rng.Int63n(8)+1)
		}
	}
	var wg sync.WaitGroup
	for tid := 0; tid < n; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				a.Tick(tid, ticks[tid][r])
				a.WaitTurn(tid)
				if err := a.AuditTree(); err != nil {
					t.Errorf("AuditTree at thread %d round %d: %v", tid, r, err)
				}
				if err := a.AuditTurn(tid); err != nil {
					t.Errorf("AuditTurn at thread %d round %d: %v", tid, r, err)
				}
				a.ReleaseTurn(tid, 2)
			}
			a.Exit(tid)
		}(tid)
	}
	wg.Wait()
}

// TestAuditTreeDetectsCorruption corrupts tournament state directly and
// checks the audit reports it.
func TestAuditTreeDetectsCorruption(t *testing.T) {
	mkTurnHolder := func() *Arbiter {
		a := New(4)
		a.WaitTurn(0)
		return a
	}

	a := mkTurnHolder()
	a.mu.Lock()
	a.pub[2] = a.slots[2].dlc.Load() + 7 // published clock leading the true clock
	a.mu.Unlock()
	if err := a.AuditTree(); err == nil {
		t.Fatal("AuditTree accepted a published clock ahead of the true clock")
	}

	a = mkTurnHolder()
	a.mu.Lock()
	a.minTree[1] = a.minTree[2] // root no longer the match of its children... unless it already is
	if a.minTree[1] == a.match(a.minTree[2], a.minTree[3]) {
		a.minTree[1] = a.minTree[3]
	}
	a.mu.Unlock()
	if err := a.AuditTree(); err == nil {
		t.Fatal("AuditTree accepted an internal node that is not its children's match")
	}

	a = mkTurnHolder()
	a.mu.Lock()
	a.minTree[a.size+3] = -1 // eligible thread evicted from its leaf
	a.mu.Unlock()
	if err := a.AuditTree(); err == nil {
		t.Fatal("AuditTree accepted a missing leaf for an eligible thread")
	}

	if err := New(4, WithFlatArbiter()).AuditTree(); err != nil {
		t.Fatalf("AuditTree on the flat oracle: %v", err)
	}
}

// TestIncrementalCountsMatchScan cross-checks the O(1) deadlock counts
// against AuditTurn's scan across a mix of transitions.
func TestIncrementalCountsMatchScan(t *testing.T) {
	for _, v := range arbVariants {
		t.Run(v.name, func(t *testing.T) {
			a := New(6, v.opts...)
			a.SetParked(4)
			a.SetParked(5)
			a.Exit(3)
			a.Unpark(4, 9)
			a.WaitTurn(0)
			if err := a.AuditTurn(0); err != nil {
				t.Fatal(err)
			}
			a.mu.Lock()
			live, parked := a.live, a.parked
			a.mu.Unlock()
			if live != 4 || parked != 1 { // threads 0,1,2,4 live; 5 parked; 3 exited
				t.Fatalf("counts (live %d, parked %d), want (4, 1)", live, parked)
			}
			a.ReleaseTurn(0, 1)
		})
	}
}

// TestTournamentManyThreads exercises deep trees: a 256-thread turn storm
// with mutual exclusion checked by the arbiter's own audits, and the grant
// sequence cross-checked tree-vs-flat.
func TestTournamentManyThreads(t *testing.T) {
	const n = 256
	const rounds = 4
	run := func(opts ...Option) []int {
		a := New(n, opts...)
		var mu sync.Mutex
		var order []int
		var wg sync.WaitGroup
		for tid := 0; tid < n; tid++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					a.Tick(tid, int64(1+(tid+r)%7))
					a.WaitTurn(tid)
					mu.Lock()
					order = append(order, tid)
					mu.Unlock()
					a.ReleaseTurn(tid, int64(1+tid%3))
				}
				a.Exit(tid)
			}(tid)
		}
		wg.Wait()
		return order
	}
	tree, flat := run(), run(WithFlatArbiter())
	if len(tree) != len(flat) {
		t.Fatalf("grant counts differ: tree %d, flat %d", len(tree), len(flat))
	}
	for i := range tree {
		if tree[i] != flat[i] {
			t.Fatalf("grant %d: tree admitted %d, flat admitted %d", i, tree[i], flat[i])
		}
	}
}
