// Package dlc implements the deterministic logical clock (DLC) and the turn
// arbiter used by every deterministic engine in this repository.
//
// Each simulated thread owns a logical clock that counts retired virtual-
// machine instructions (weighted by per-instruction cost). A thread may
// perform a globally ordered action — a synchronization operation in the
// eager engines, a speculation commit in LazyDet — only when it holds "the
// turn": its (DLC, thread-id) pair is the minimum over all threads that are
// neither parked nor exited. This is the classic Kendo/Consequence turn
// discipline (see paper §2): the thread that arrives first in deterministic
// logical time goes next.
//
// Waiting is blocking, not spinning: a thread that wants the turn publishes
// itself as a waiter and sleeps on a condition variable. Running threads
// advance their clocks with Tick; when a tick moves a thread's clock past the
// minimum waiter's clock the runner wakes the waiters, because the set of
// threads that could be blocking them has shrunk.
//
// The arbiter also supports a nondeterministic mode, used to implement the
// TotalOrder-Weak-Nondet engine from the paper's evaluation: the turn becomes
// a plain mutex, still totally ordering the actions but no longer
// deterministically.
package dlc

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"
)

// Status describes how a thread participates in turn arbitration.
type Status int32

const (
	// StatusRunning threads execute instructions and advance their DLC.
	StatusRunning Status = iota
	// StatusWaiting threads are blocked inside WaitTurn. Their DLC is
	// frozen and still participates in the minimum computation.
	StatusWaiting
	// StatusTurn threads have been granted the turn and are executing a
	// globally ordered action. Their DLC still participates in the
	// minimum, which is what serializes turn holders.
	StatusTurn
	// StatusParked threads are blocked on a condition variable or barrier
	// and are excluded from the minimum computation. Threads may only be
	// parked at a deterministic point (while holding the turn), which is
	// what keeps exclusion deterministic.
	StatusParked
	// StatusExited threads have finished their program.
	StatusExited
)

// String names the status for diagnostics.
func (s Status) String() string {
	switch s {
	case StatusRunning:
		return "running"
	case StatusWaiting:
		return "waiting"
	case StatusTurn:
		return "turn"
	case StatusParked:
		return "parked"
	case StatusExited:
		return "exited"
	}
	return fmt.Sprintf("status(%d)", int32(s))
}

// TickWindow is the instruction-batching window the interpreter uses when
// flushing retired-instruction cost into Tick: instead of one Tick per
// retired instruction, cost accumulates thread-locally and flushes every
// TickWindow instructions and — unconditionally — immediately before every
// engine (synchronization) operation.
//
// Batching is safe because a thread's published clock then lags its true
// clock by at most the pending batch, and a lagging clock can only delay
// turn grants, never produce a wrong one: a waiter is granted the turn only
// when its exact (DLC, tid) pair is the minimum over published clocks, and
// every thread publishes its exact clock before requesting a turn. The
// sequence of (DLC, tid) pairs observed at synchronization points — the only
// inputs to the deterministic schedule — is therefore unchanged for every
// window size, while per-instruction arbiter traffic (an atomic add plus a
// min-waiter load) drops by the window factor. 64 keeps the worst-case extra
// wall-clock grant latency below one cache-miss-scale pause on any workload
// this repository runs.
const TickWindow = 64

// noWaiter is the sentinel stored in minWaiter when no thread is waiting.
const noWaiter = math.MaxInt64

type slot struct {
	dlc    atomic.Int64
	status atomic.Int32
	_      [48]byte // pad to a cache line to avoid false sharing
}

// Arbiter arbitrates the deterministic turn between a fixed set of threads.
//
// Wakeups are targeted: only the minimum waiter can ever be granted the
// turn (any other waiter is blocked by it), so state changes wake exactly
// that thread through its buffered channel instead of broadcasting to all
// waiters — the difference between O(1) and O(threads) scheduler work per
// synchronization operation.
type Arbiter struct {
	mu        sync.Mutex
	slots     []slot
	wake      []chan struct{} // per-thread wakeup tokens, buffered 1
	minWaiter atomic.Int64    // min DLC among StatusWaiting threads, noWaiter if none

	// nondet switches the arbiter to nondeterministic total ordering:
	// WaitTurn/ReleaseTurn degenerate to a mutex and clocks are unused.
	nondet bool
	turnMu sync.Mutex

	// onDeadlock runs when every non-exited thread is parked: nothing can
	// ever unpark them, which is the repeatable deadlock that broken
	// synchronization produces under determinism (paper Appendix A).
	onDeadlock func()
}

// New returns an arbiter for n threads, all starting at DLC 0 in
// StatusRunning. Thread IDs are 0..n-1.
func New(n int) *Arbiter {
	a := &Arbiter{slots: make([]slot, n), wake: make([]chan struct{}, n)}
	for i := range a.wake {
		a.wake[i] = make(chan struct{}, 1)
	}
	a.minWaiter.Store(noWaiter)
	return a
}

// NewNondet returns an arbiter whose turn is a plain mutex: actions are
// totally ordered but the order is not deterministic. Clock methods are
// no-ops.
func NewNondet(n int) *Arbiter {
	a := New(n)
	a.nondet = true
	return a
}

// Nondet reports whether the arbiter orders turns nondeterministically.
func (a *Arbiter) Nondet() bool { return a.nondet }

// SetDeadlockHandler installs a callback invoked (once, on the parking or
// exiting thread) when every non-exited thread has parked — a state nothing
// can undo, since wakeups only come from running threads. The default
// handler panics with a diagnostic; deterministic engines make such
// deadlocks perfectly repeatable.
func (a *Arbiter) SetDeadlockHandler(f func()) { a.onDeadlock = f }

// checkDeadlockLocked fires the deadlock handler if no thread can run.
// Caller holds a.mu.
func (a *Arbiter) checkDeadlockLocked() {
	anyLive := false
	anyParked := false
	for i := range a.slots {
		switch Status(a.slots[i].status.Load()) {
		case StatusParked:
			anyParked = true
		case StatusExited:
		default:
			anyLive = true
		}
	}
	if anyLive || !anyParked {
		return
	}
	if a.onDeadlock != nil {
		a.onDeadlock()
		return
	}
	panic("dlc: deterministic deadlock — every thread is parked on a condition variable or barrier and no waker remains")
}

// N returns the number of threads the arbiter manages.
func (a *Arbiter) N() int { return len(a.slots) }

// DLC returns the current logical clock of thread tid.
func (a *Arbiter) DLC(tid int) int64 { return a.slots[tid].dlc.Load() }

// Tick advances thread tid's logical clock by cost. If the clock crosses the
// minimum waiter's clock, waiters are woken so they can re-evaluate the turn
// predicate. Tick must only be called by thread tid itself while running.
// cost may be a multi-instruction batch (see TickWindow): the crossing test
// below brackets the minimum waiter between the old and new clock, so a
// batch that jumps past the waiter still wakes it.
func (a *Arbiter) Tick(tid int, cost int64) {
	if a.nondet || cost == 0 {
		return
	}
	s := &a.slots[tid]
	now := s.dlc.Add(cost)
	mw := a.minWaiter.Load()
	if now >= mw && now-cost <= mw {
		// We just reached or passed the minimum waiter's clock, so we
		// may have stopped blocking it: a waiter with a lower thread ID
		// is unblocked at clock equality (tie-break), one with a higher
		// ID once we strictly exceed it. Wake it to re-check.
		a.mu.Lock()
		a.notifyMinWaiterLocked()
		a.mu.Unlock()
	}
}

// SetDLC overwrites thread tid's clock. It is used when waking a parked
// thread, whose clock is deterministically derived from the waker's clock.
// Must be called at a deterministic point (by a turn holder) or on the
// thread itself before it starts running.
func (a *Arbiter) SetDLC(tid int, v int64) {
	a.slots[tid].dlc.Store(v)
}

// isMinLocked reports whether tid holds the global minimum (DLC, tid) among
// threads that are not parked or exited. Caller holds a.mu.
func (a *Arbiter) isMinLocked(tid int) bool {
	my := a.slots[tid].dlc.Load()
	for i := range a.slots {
		if i == tid {
			continue
		}
		st := Status(a.slots[i].status.Load())
		if st == StatusParked || st == StatusExited {
			continue
		}
		d := a.slots[i].dlc.Load()
		if d < my || (d == my && i < tid) {
			return false
		}
	}
	return true
}

// recomputeMinWaiterLocked refreshes the cached minimum waiter clock.
// Caller holds a.mu.
func (a *Arbiter) recomputeMinWaiterLocked() {
	min := int64(noWaiter)
	for i := range a.slots {
		if Status(a.slots[i].status.Load()) == StatusWaiting {
			if d := a.slots[i].dlc.Load(); d < min {
				min = d
			}
		}
	}
	a.minWaiter.Store(min)
}

// notifyMinWaiterLocked drops a wakeup token for the waiter with the
// minimum (DLC, tid) — the only waiter whose turn predicate can have become
// true. Caller holds a.mu.
func (a *Arbiter) notifyMinWaiterLocked() {
	best := -1
	var bestDLC int64
	for i := range a.slots {
		if Status(a.slots[i].status.Load()) != StatusWaiting {
			continue
		}
		d := a.slots[i].dlc.Load()
		if best == -1 || d < bestDLC {
			best, bestDLC = i, d
		}
	}
	if best >= 0 {
		//lazydet:nondeterministic non-blocking token send; a pending token and a fresh one are indistinguishable to the receiver
		select {
		case a.wake[best] <- struct{}{}:
		default: // a token is already pending; one is enough to re-check
		}
	}
}

// WaitTurn blocks until thread tid holds the turn. On return the thread's
// status is StatusTurn; the caller must eventually call ReleaseTurn.
func (a *Arbiter) WaitTurn(tid int) {
	if a.nondet {
		a.turnMu.Lock()
		return
	}
	s := &a.slots[tid]
	a.mu.Lock()
	s.status.Store(int32(StatusWaiting))
	a.recomputeMinWaiterLocked()
	for !a.isMinLocked(tid) {
		a.mu.Unlock()
		<-a.wake[tid]
		a.mu.Lock()
	}
	s.status.Store(int32(StatusTurn))
	a.recomputeMinWaiterLocked()
	// Drain a stale token so a future wait does not wake spuriously.
	//lazydet:nondeterministic non-blocking drain; waking with or without a stale token pending is behaviorally identical
	select {
	case <-a.wake[tid]:
	default:
	}
	a.mu.Unlock()
}

// ReleaseTurn ends the turn, charging cost to the thread's clock, and wakes
// the minimum waiter. The thread returns to StatusRunning.
func (a *Arbiter) ReleaseTurn(tid int, cost int64) {
	if a.nondet {
		a.turnMu.Unlock()
		return
	}
	s := &a.slots[tid]
	a.mu.Lock()
	s.dlc.Add(cost)
	s.status.Store(int32(StatusRunning))
	a.notifyMinWaiterLocked()
	a.mu.Unlock()
}

// Park transitions the thread from StatusTurn to StatusParked, excluding it
// from turn arbitration, and wakes the minimum waiter. It must be called
// while holding the turn, which makes the park point deterministic. The
// caller is responsible for actually blocking the thread (e.g. on a
// channel).
func (a *Arbiter) Park(tid int) {
	if a.nondet {
		a.slots[tid].status.Store(int32(StatusParked))
		a.turnMu.Unlock()
		return
	}
	a.mu.Lock()
	a.slots[tid].status.Store(int32(StatusParked))
	a.notifyMinWaiterLocked()
	a.checkDeadlockLocked()
	a.mu.Unlock()
}

// Unpark returns a parked thread to arbitration with the given clock value.
// It is called by the waking thread at its own deterministic turn point, so
// the new clock (derived from the waker's) is deterministic.
func (a *Arbiter) Unpark(tid int, newDLC int64) {
	a.mu.Lock()
	a.slots[tid].dlc.Store(newDLC)
	a.slots[tid].status.Store(int32(StatusRunning))
	a.notifyMinWaiterLocked()
	a.mu.Unlock()
}

// Exit removes the thread from arbitration permanently. It may be called
// while holding the turn (the exit then becomes visible exactly at that
// deterministic boundary, which is what makes join retries deterministic)
// or while running.
func (a *Arbiter) Exit(tid int) {
	a.mu.Lock()
	a.slots[tid].status.Store(int32(StatusExited))
	a.notifyMinWaiterLocked()
	a.checkDeadlockLocked()
	a.mu.Unlock()
}

// SetParked marks a thread parked before it has ever run: the state of a
// suspended (not yet spawned) thread, which must not participate in turn
// arbitration until Unpark.
func (a *Arbiter) SetParked(tid int) {
	a.mu.Lock()
	a.slots[tid].status.Store(int32(StatusParked))
	a.notifyMinWaiterLocked()
	a.mu.Unlock()
}

// Status returns the current status of thread tid.
func (a *Arbiter) Status(tid int) Status {
	return Status(a.slots[tid].status.Load())
}

// AuditTurn verifies the turn-discipline invariant from the perspective of
// thread tid, which must currently hold the turn: no other thread is in
// StatusTurn, and tid's (DLC, tid) pair is the minimum over all threads that
// are neither parked nor exited. It must be called by tid itself between
// WaitTurn and ReleaseTurn — while tid holds the turn, other threads' clocks
// only advance and park/exit transitions cannot happen, so any violation
// observed under the arbiter mutex is genuine, not transient. Returns a
// descriptive error on breach, nil otherwise. In nondeterministic mode there
// is no clock discipline to audit.
func (a *Arbiter) AuditTurn(tid int) error {
	if a.nondet {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if st := Status(a.slots[tid].status.Load()); st != StatusTurn {
		return fmt.Errorf("dlc: thread %d audits the turn with status %v, want turn", tid, st)
	}
	my := a.slots[tid].dlc.Load()
	for i := range a.slots {
		if i == tid {
			continue
		}
		st := Status(a.slots[i].status.Load())
		if st == StatusTurn {
			return fmt.Errorf("dlc: threads %d and %d hold the turn simultaneously", tid, i)
		}
		if st == StatusParked || st == StatusExited {
			continue
		}
		if d := a.slots[i].dlc.Load(); d < my || (d == my && i < tid) {
			return fmt.Errorf("dlc: turn holder %d @ DLC %d is not the (DLC, tid) minimum: thread %d (%v) is at DLC %d",
				tid, my, i, st, d)
		}
	}
	return nil
}
