// Package dlc implements the deterministic logical clock (DLC) and the turn
// arbiter used by every deterministic engine in this repository.
//
// Each simulated thread owns a logical clock that counts retired virtual-
// machine instructions (weighted by per-instruction cost). A thread may
// perform a globally ordered action — a synchronization operation in the
// eager engines, a speculation commit in LazyDet — only when it holds "the
// turn": its (DLC, thread-id) pair is the minimum over all threads that are
// neither parked nor exited. This is the classic Kendo/Consequence turn
// discipline (see paper §2): the thread that arrives first in deterministic
// logical time goes next.
//
// Waiting is blocking, not spinning: a thread that wants the turn publishes
// itself as a waiter and sleeps on a condition variable. Running threads
// advance their clocks with Tick; when a tick moves a thread's clock past the
// minimum waiter's clock the runner wakes the waiter, because the set of
// threads that could be blocking it has shrunk.
//
// # Tournament arbitration
//
// The default arbiter resolves turns with a pair of tournament trees —
// complete binary trees whose leaves are threads and whose internal nodes
// each hold the winner (minimum (DLC, tid) key) of their two children. A
// state change updates one leaf and replays the O(log n) matches on its
// root path; the root is then the global minimum without any scan. One tree
// ranks all arbitration-eligible threads (the turn predicate), the other
// ranks only the waiters (the targeted-wakeup choice).
//
// The trees rank *published* clock snapshots, not the live atomics: Tick
// advances a thread's clock without the arbiter mutex, so the tree entry for
// a running thread may lag its true clock. That staleness is safe for the
// same reason TickWindow batching is: clocks only advance, so a lagging
// published clock can only make its thread look earlier than it is — which
// delays other threads' grants but never produces a wrong one. Liveness is
// lazy: when a waiter finds the tree root is a stale runner, the waiter
// itself re-publishes that runner's clock and replays its path, repeating
// until the root is either fresh (waiter sleeps; a later tick crossing the
// min-waiter clock wakes it) or the waiter itself (grant).
//
// The previous flat implementation — O(n) scans over the live atomics for
// every grant, notify and deadlock check — is preserved behind
// WithFlatArbiter as a differential oracle: both arbiters grant identical
// bit-deterministic schedules, and the test suite and fuzzer cross-check
// them against each other.
//
// The arbiter also supports a nondeterministic mode, used to implement the
// TotalOrder-Weak-Nondet engine from the paper's evaluation: the turn becomes
// a plain mutex, still totally ordering the actions but no longer
// deterministically.
package dlc

import (
	"fmt"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"
)

// Status describes how a thread participates in turn arbitration.
type Status int32

const (
	// StatusRunning threads execute instructions and advance their DLC.
	StatusRunning Status = iota
	// StatusWaiting threads are blocked inside WaitTurn. Their DLC is
	// frozen and still participates in the minimum computation.
	StatusWaiting
	// StatusTurn threads have been granted the turn and are executing a
	// globally ordered action. Their DLC still participates in the
	// minimum, which is what serializes turn holders.
	StatusTurn
	// StatusParked threads are blocked on a condition variable or barrier
	// and are excluded from the minimum computation. Threads may only be
	// parked at a deterministic point (while holding the turn), which is
	// what keeps exclusion deterministic.
	StatusParked
	// StatusExited threads have finished their program.
	StatusExited
)

// String names the status for diagnostics.
func (s Status) String() string {
	switch s {
	case StatusRunning:
		return "running"
	case StatusWaiting:
		return "waiting"
	case StatusTurn:
		return "turn"
	case StatusParked:
		return "parked"
	case StatusExited:
		return "exited"
	}
	return fmt.Sprintf("status(%d)", int32(s))
}

// TickWindow is the instruction-batching window the interpreter uses when
// flushing retired-instruction cost into Tick: instead of one Tick per
// retired instruction, cost accumulates thread-locally and flushes every
// TickWindow instructions and — unconditionally — immediately before every
// engine (synchronization) operation.
//
// Batching is safe because a thread's published clock then lags its true
// clock by at most the pending batch, and a lagging clock can only delay
// turn grants, never produce a wrong one: a waiter is granted the turn only
// when its exact (DLC, tid) pair is the minimum over published clocks, and
// every thread publishes its exact clock before requesting a turn. The
// sequence of (DLC, tid) pairs observed at synchronization points — the only
// inputs to the deterministic schedule — is therefore unchanged for every
// window size, while per-instruction arbiter traffic (an atomic add plus a
// min-waiter load) drops by the window factor. 64 keeps the worst-case extra
// wall-clock grant latency below one cache-miss-scale pause on any workload
// this repository runs.
const TickWindow = 64

// noWaiter is the sentinel stored in minWaiter when no thread is waiting.
const noWaiter = math.MaxInt64

type slot struct {
	dlc    atomic.Int64
	status atomic.Int32
	_      [48]byte // pad to a cache line to avoid false sharing
}

// isLive reports whether the status counts as live for deadlock detection:
// the thread either can run or will be granted a turn eventually.
func isLive(st Status) bool {
	return st == StatusRunning || st == StatusWaiting || st == StatusTurn
}

// eligible reports whether the status participates in turn arbitration.
func eligible(st Status) bool {
	return st != StatusParked && st != StatusExited
}

// Option configures an Arbiter at construction.
type Option func(*Arbiter)

// WithFlatArbiter selects the original flat implementation: O(n) scans over
// the live clock atomics for every grant check, waiter notification and
// deadlock check. It grants the same bit-deterministic schedule as the
// tournament arbiter and exists as its differential oracle, mirroring the
// -mapviews/-legacydiff pattern elsewhere in the repository.
func WithFlatArbiter() Option {
	return func(a *Arbiter) { a.flat = true }
}

// Arbiter arbitrates the deterministic turn between a fixed set of threads.
//
// Wakeups are targeted: only the minimum waiter can ever be granted the
// turn (any other waiter is blocked by it), so state changes wake exactly
// that thread through its buffered channel instead of broadcasting to all
// waiters — the difference between O(1) and O(threads) scheduler work per
// synchronization operation.
type Arbiter struct {
	mu        sync.Mutex
	slots     []slot
	wake      []chan struct{} // per-thread wakeup tokens, buffered 1
	minWaiter atomic.Int64    // min DLC among StatusWaiting threads, noWaiter if none

	// flat selects the O(n)-scan oracle implementation; the tournament
	// state below is then left nil.
	flat bool

	// Tournament state, all guarded by mu. size is the leaf span (next
	// power of two >= len(slots)); both trees are laid out as implicit
	// binary heaps of length 2*size with leaves at [size, 2*size), the
	// root at [1], and -1 marking an empty slot. pub[i] is thread i's
	// published clock snapshot — the key its leaves are ranked by.
	size     int
	depth    int // internal levels above a leaf == log2(size)
	pub      []int64
	minTree  []int32 // ranks arbitration-eligible threads (turn predicate)
	waitTree []int32 // ranks StatusWaiting threads (targeted wakeup)

	// Incremental deadlock state, guarded by mu: live counts
	// Running/Waiting/Turn threads, parked counts Parked. Deadlock is the
	// O(1) test live == 0 && parked > 0.
	live   int
	parked int

	// Cumulative cost counters, guarded by mu. wakes counts wakeup tokens
	// delivered; grantWork counts per-thread key inspections (scan length
	// in flat mode, match replays and lazy refreshes in tree mode).
	wakes     int64
	grantWork int64

	// Grant chaining, guarded by mu. lastGrant is the thread most recently
	// granted the turn (-1 before the first grant); chainHits counts grants
	// to the thread that also received the previous grant — a pure function
	// of the deterministic grant sequence, identical across arbiter
	// implementations; chainFast counts the subset of those the tournament
	// arbiter served through the cached-election fast path, which depends on
	// how stale runners' published clocks happened to be (wall-clock).
	lastGrant int
	chainHits int64
	chainFast int64

	// nondet switches the arbiter to nondeterministic total ordering:
	// WaitTurn/ReleaseTurn degenerate to a mutex and clocks are unused.
	nondet bool
	turnMu sync.Mutex

	// onDeadlock runs when every non-exited thread is parked: nothing can
	// ever unpark them, which is the repeatable deadlock that broken
	// synchronization produces under determinism (paper Appendix A).
	onDeadlock func()
}

// New returns an arbiter for n threads, all starting at DLC 0 in
// StatusRunning. Thread IDs are 0..n-1.
func New(n int, opts ...Option) *Arbiter {
	a := &Arbiter{slots: make([]slot, n), wake: make([]chan struct{}, n), lastGrant: -1}
	for i := range a.wake {
		a.wake[i] = make(chan struct{}, 1)
	}
	a.minWaiter.Store(noWaiter)
	for _, o := range opts {
		o(a)
	}
	a.live = n
	if !a.flat {
		size := 1
		for size < n {
			size <<= 1
		}
		a.size = size
		a.depth = bits.Len(uint(size)) - 1
		a.pub = make([]int64, n)
		a.minTree = make([]int32, 2*size)
		a.waitTree = make([]int32, 2*size)
		for i := range a.minTree {
			a.minTree[i] = -1
			a.waitTree[i] = -1
		}
		for i := 0; i < n; i++ {
			a.minTree[size+i] = int32(i)
		}
		for i := size - 1; i >= 1; i-- {
			a.minTree[i] = a.match(a.minTree[2*i], a.minTree[2*i+1])
		}
	}
	return a
}

// NewNondet returns an arbiter whose turn is a plain mutex: actions are
// totally ordered but the order is not deterministic. Clock methods are
// no-ops.
func NewNondet(n int) *Arbiter {
	a := New(n)
	a.nondet = true
	return a
}

// Nondet reports whether the arbiter orders turns nondeterministically.
func (a *Arbiter) Nondet() bool { return a.nondet }

// Flat reports whether the arbiter uses the flat O(n)-scan implementation.
func (a *Arbiter) Flat() bool { return a.flat }

// SetDeadlockHandler installs a callback invoked (once, on the parking or
// exiting thread) when every non-exited thread has parked — a state nothing
// can undo, since wakeups only come from running threads. The default
// handler panics with a diagnostic; deterministic engines make such
// deadlocks perfectly repeatable.
func (a *Arbiter) SetDeadlockHandler(f func()) { a.onDeadlock = f }

// setStatusLocked transitions thread tid's status, maintaining the
// incremental live/parked counts. Caller holds a.mu. All status stores go
// through here so the counts can never drift from the statuses.
func (a *Arbiter) setStatusLocked(tid int, st Status) {
	old := Status(a.slots[tid].status.Load())
	if old == st {
		return
	}
	a.slots[tid].status.Store(int32(st))
	if isLive(old) && !isLive(st) {
		a.live--
	} else if !isLive(old) && isLive(st) {
		a.live++
	}
	if old == StatusParked {
		a.parked--
	}
	if st == StatusParked {
		a.parked++
	}
}

// checkDeadlockLocked fires the deadlock handler if no thread can run:
// every non-exited thread is parked. The incremental counts make this O(1).
// Caller holds a.mu.
func (a *Arbiter) checkDeadlockLocked() {
	if a.live > 0 || a.parked == 0 {
		return
	}
	if a.onDeadlock != nil {
		a.onDeadlock()
		return
	}
	panic("dlc: deterministic deadlock — every thread is parked on a condition variable or barrier and no waker remains")
}

// N returns the number of threads the arbiter manages.
func (a *Arbiter) N() int { return len(a.slots) }

// DLC returns the current logical clock of thread tid.
func (a *Arbiter) DLC(tid int) int64 { return a.slots[tid].dlc.Load() }

// match returns the winner of a tournament match: the child with the lower
// (published DLC, tid) key, -1 beaten by anything. Caller holds a.mu.
func (a *Arbiter) match(x, y int32) int32 {
	if x < 0 {
		return y
	}
	if y < 0 {
		return x
	}
	if dx, dy := a.pub[x], a.pub[y]; dx < dy || (dx == dy && x < y) {
		return x
	}
	return y
}

// replayLocked re-seats thread tid's leaf in tree (present iff active) and
// replays the O(log n) matches on its root path. Caller holds a.mu.
func (a *Arbiter) replayLocked(tree []int32, tid int, active bool) {
	i := a.size + tid
	if active {
		tree[i] = int32(tid)
	} else {
		tree[i] = -1
	}
	for i >>= 1; i >= 1; i >>= 1 {
		tree[i] = a.match(tree[2*i], tree[2*i+1])
	}
	a.grantWork += int64(a.depth)
}

// publishLocked snapshots thread tid's live clock into pub and replays its
// arbitration leaf if the snapshot changed. Caller holds a.mu; tree mode
// only. The wait tree never needs a replay here: a Waiting thread's clock is
// frozen, so publication only ever changes runners' keys.
func (a *Arbiter) publishLocked(tid int) {
	if cur := a.slots[tid].dlc.Load(); cur != a.pub[tid] {
		a.pub[tid] = cur
		a.replayLocked(a.minTree, tid, eligible(Status(a.slots[tid].status.Load())))
	}
}

// Tick advances thread tid's logical clock by cost. If the clock crosses the
// minimum waiter's clock, the waiter is woken so it can re-evaluate the turn
// predicate. Tick must only be called by thread tid itself while running.
// cost may be a multi-instruction batch (see TickWindow): the crossing test
// below brackets the minimum waiter between the old and new clock, so a
// batch that jumps past the waiter still wakes it.
//
// The minWaiter load is deliberately outside a.mu. The resulting race with a
// registering waiter is benign — see TestTickWaiterRegistrationRace for the
// pinned argument: Tick's clock advance (atomic Add) is sequenced before its
// minWaiter load, the waiter's minWaiter store is sequenced before its clock
// reads, and Go's sync/atomic operations are sequentially consistent, so in
// any interleaving at least one side observes the other (the store-buffer
// litmus shape) — either the ticker sees the waiter's clock and wakes it, or
// the waiter sees the ticker's advanced clock and never blocks on it.
func (a *Arbiter) Tick(tid int, cost int64) {
	if a.nondet || cost == 0 {
		return
	}
	s := &a.slots[tid]
	now := s.dlc.Add(cost)
	mw := a.minWaiter.Load()
	if now >= mw && now-cost <= mw {
		// We just reached or passed the minimum waiter's clock, so we
		// may have stopped blocking it: a waiter with a lower thread ID
		// is unblocked at clock equality (tie-break), one with a higher
		// ID once we strictly exceed it. Wake it to re-check.
		a.mu.Lock()
		if !a.flat {
			a.publishLocked(tid)
		}
		a.notifyMinWaiterLocked()
		a.mu.Unlock()
	}
}

// SetDLC overwrites thread tid's clock. It is used when waking a parked
// thread, whose clock is deterministically derived from the waker's clock.
// Must be called at a deterministic point (by a turn holder) or on the
// thread itself before it starts running.
func (a *Arbiter) SetDLC(tid int, v int64) {
	a.slots[tid].dlc.Store(v)
	if a.nondet || a.flat {
		return
	}
	a.mu.Lock()
	a.publishLocked(tid)
	a.mu.Unlock()
}

// isMinLocked reports whether tid may be granted the turn: its (DLC, tid)
// pair is the global minimum among threads that are not parked or exited.
// Caller holds a.mu; tid must be Waiting (its published clock exact).
//
// Tree mode resolves this at the root, refreshing lazily: if the root is
// another thread, that thread either genuinely precedes tid (its published
// key is fresh — since published clocks never lead true clocks and clocks
// only advance, a fresh smaller key proves the true key is smaller too, so
// tid is not the minimum), or its snapshot is stale — then tid re-publishes
// it and replays its path. Each iteration either returns or strictly
// advances one runner's published clock, so the loop terminates; its work is
// exactly the publication debt runners skipped by ticking lock-free, paid by
// the thread that is blocked anyway.
func (a *Arbiter) isMinLocked(tid int) bool {
	if a.flat {
		a.grantWork += int64(len(a.slots) - 1)
		my := a.slots[tid].dlc.Load()
		for i := range a.slots {
			if i == tid {
				continue
			}
			st := Status(a.slots[i].status.Load())
			if st == StatusParked || st == StatusExited {
				continue
			}
			d := a.slots[i].dlc.Load()
			if d < my || (d == my && i < tid) {
				return false
			}
		}
		return true
	}
	for {
		a.grantWork++
		w := int(a.minTree[1])
		if w == tid {
			return true
		}
		if w < 0 {
			panic("dlc: waiting thread absent from the arbitration tree")
		}
		cur := a.slots[w].dlc.Load()
		if cur == a.pub[w] {
			// Fresh snapshot: w won the tournament against tid's exact
			// key, so tid is genuinely not the minimum.
			return false
		}
		a.pub[w] = cur
		a.replayLocked(a.minTree, w, true)
	}
}

// refreshMinWaiterLocked recomputes the cached minimum-waiter clock that
// Tick's crossing test reads. Caller holds a.mu.
func (a *Arbiter) refreshMinWaiterLocked() {
	if a.flat {
		a.grantWork += int64(len(a.slots))
		min := int64(noWaiter)
		for i := range a.slots {
			if Status(a.slots[i].status.Load()) == StatusWaiting {
				if d := a.slots[i].dlc.Load(); d < min {
					min = d
				}
			}
		}
		a.minWaiter.Store(min)
		return
	}
	a.grantWork++
	if w := a.waitTree[1]; w >= 0 {
		a.minWaiter.Store(a.pub[w])
	} else {
		a.minWaiter.Store(noWaiter)
	}
}

// notifyMinWaiterLocked drops a wakeup token for the waiter with the
// minimum (DLC, tid) — the only waiter whose turn predicate can have become
// true. Caller holds a.mu.
//
// The flat scan keeps the first thread at the minimum clock, which under
// in-order iteration is the lowest tid among equal-DLC waiters — the same
// waiter the wait tree's (DLC, tid) tie-break elects, and the only one of
// them the turn predicate can accept.
func (a *Arbiter) notifyMinWaiterLocked() {
	best := -1
	if a.flat {
		a.grantWork += int64(len(a.slots))
		var bestDLC int64
		for i := range a.slots {
			if Status(a.slots[i].status.Load()) != StatusWaiting {
				continue
			}
			d := a.slots[i].dlc.Load()
			if best == -1 || d < bestDLC {
				best, bestDLC = i, d
			}
		}
	} else {
		a.grantWork++
		best = int(a.waitTree[1])
	}
	if best >= 0 {
		//lazydet:nondeterministic non-blocking token send; a pending token and a fresh one are indistinguishable to the receiver
		select {
		case a.wake[best] <- struct{}{}:
			a.wakes++
		default: // a token is already pending; one is enough to re-check
		}
	}
}

// WaitTurn blocks until thread tid holds the turn. On return the thread's
// status is StatusTurn; the caller must eventually call ReleaseTurn.
func (a *Arbiter) WaitTurn(tid int) {
	if a.nondet {
		a.turnMu.Lock()
		return
	}
	a.mu.Lock()
	// Grant chaining: when the thread that received the previous grant
	// returns — the dominant shape on same-owner lock chains — publishing
	// its exact key and finding it still at the tournament root proves the
	// grant outright: every other published key is a lower bound on its
	// thread's true clock, so losing to tid's exact key means genuinely
	// losing. The cached election is reused: no waiter registration, no
	// wait-tree replays, no min-waiter refreshes. The grant sequence is
	// unchanged — the slow path would grant the same turn on its first
	// root inspection.
	if !a.flat && tid == a.lastGrant {
		a.publishLocked(tid)
		a.grantWork++
		if int(a.minTree[1]) == tid {
			a.setStatusLocked(tid, StatusTurn)
			a.chainHits++
			a.chainFast++
			a.mu.Unlock()
			return
		}
	}
	a.setStatusLocked(tid, StatusWaiting)
	if !a.flat {
		// Publish the exact clock before registering as a waiter: grants
		// compare waiters by published key, which must be exact for the
		// schedule to match the flat oracle bit for bit.
		a.publishLocked(tid)
		a.replayLocked(a.waitTree, tid, true)
	}
	a.refreshMinWaiterLocked()
	for !a.isMinLocked(tid) {
		a.mu.Unlock()
		<-a.wake[tid]
		a.mu.Lock()
	}
	a.setStatusLocked(tid, StatusTurn)
	if tid == a.lastGrant {
		// Still a consecutive same-thread grant even when the cached
		// election could not be reused (stale runner snapshots forced the
		// slow path): the gated chain counter tracks the deterministic
		// grant sequence, not the wall-clock-dependent fast path.
		a.chainHits++
	}
	a.lastGrant = tid
	if !a.flat {
		a.replayLocked(a.waitTree, tid, false)
	}
	a.refreshMinWaiterLocked()
	// Drain a stale token so a future wait does not wake spuriously.
	//lazydet:nondeterministic non-blocking drain; waking with or without a stale token pending is behaviorally identical
	select {
	case <-a.wake[tid]:
	default:
	}
	a.mu.Unlock()
}

// ReleaseTurn ends the turn, charging cost to the thread's clock, and wakes
// the minimum waiter. The thread returns to StatusRunning.
func (a *Arbiter) ReleaseTurn(tid int, cost int64) {
	if a.nondet {
		a.turnMu.Unlock()
		return
	}
	s := &a.slots[tid]
	a.mu.Lock()
	s.dlc.Add(cost)
	a.setStatusLocked(tid, StatusRunning)
	if !a.flat {
		a.publishLocked(tid)
	}
	a.notifyMinWaiterLocked()
	a.mu.Unlock()
}

// Park transitions the thread from StatusTurn to StatusParked, excluding it
// from turn arbitration, and wakes the minimum waiter. It must be called
// while holding the turn, which makes the park point deterministic. The
// caller is responsible for actually blocking the thread (e.g. on a
// channel).
func (a *Arbiter) Park(tid int) {
	if a.nondet {
		// No clock discipline to maintain, but the live/parked counts
		// feeding Exit's deadlock check must stay coherent.
		a.mu.Lock()
		a.setStatusLocked(tid, StatusParked)
		a.mu.Unlock()
		a.turnMu.Unlock()
		return
	}
	a.mu.Lock()
	a.setStatusLocked(tid, StatusParked)
	if !a.flat {
		a.replayLocked(a.minTree, tid, false)
	}
	a.notifyMinWaiterLocked()
	a.checkDeadlockLocked()
	a.mu.Unlock()
}

// Unpark returns a parked thread to arbitration with the given clock value.
// It is called by the waking thread at its own deterministic turn point, so
// the new clock (derived from the waker's) is deterministic.
func (a *Arbiter) Unpark(tid int, newDLC int64) {
	a.mu.Lock()
	a.slots[tid].dlc.Store(newDLC)
	a.setStatusLocked(tid, StatusRunning)
	if !a.flat && !a.nondet {
		a.pub[tid] = newDLC
		a.replayLocked(a.minTree, tid, true)
	}
	a.notifyMinWaiterLocked()
	a.mu.Unlock()
}

// Exit removes the thread from arbitration permanently. It may be called
// while holding the turn (the exit then becomes visible exactly at that
// deterministic boundary, which is what makes join retries deterministic)
// or while running.
func (a *Arbiter) Exit(tid int) {
	a.mu.Lock()
	a.setStatusLocked(tid, StatusExited)
	if !a.flat && !a.nondet {
		a.replayLocked(a.minTree, tid, false)
		a.replayLocked(a.waitTree, tid, false)
	}
	a.notifyMinWaiterLocked()
	a.checkDeadlockLocked()
	a.mu.Unlock()
}

// SetParked marks a thread parked before it has ever run: the state of a
// suspended (not yet spawned) thread, which must not participate in turn
// arbitration until Unpark. Like Park and Exit it must check for deadlock:
// a suspended thread parks itself from its own goroutine, so the program's
// last live thread can exit before its peers reach this point, making the
// SetParked here the transition into the all-parked state.
func (a *Arbiter) SetParked(tid int) {
	a.mu.Lock()
	a.setStatusLocked(tid, StatusParked)
	if !a.flat && !a.nondet {
		a.replayLocked(a.minTree, tid, false)
	}
	a.notifyMinWaiterLocked()
	a.checkDeadlockLocked()
	a.mu.Unlock()
}

// Status returns the current status of thread tid.
func (a *Arbiter) Status(tid int) Status {
	return Status(a.slots[tid].status.Load())
}

// Stats is a snapshot of the arbiter's cumulative cost counters. Wakes and
// GrantWork depend on wall-clock interleaving (how often runners catch
// waiters mid-registration, how stale snapshots get) and are therefore
// reporting-only: deterministic metric gates must not include them.
type Stats struct {
	// Wakes counts wakeup tokens actually delivered to waiters (sends
	// that found the buffer empty).
	Wakes int64
	// GrantWork counts per-thread key inspections performed by the
	// arbiter: full scan lengths in flat mode, tournament match replays
	// and lazy snapshot refreshes in tree mode. The tentpole scaling
	// claim is this quantity growing sub-linearly in thread count.
	GrantWork int64
	// Depth is the tournament tree's match depth (0 for the flat oracle
	// and nondeterministic mode).
	Depth int
	// ChainHits counts turn grants to the thread that also received the
	// previous grant. It is a pure function of the deterministic grant
	// sequence — identical across arbiter implementations — so, unlike
	// Wakes and GrantWork, it belongs with the gated metrics.
	ChainHits int64
	// ChainFast counts the ChainHits the tournament arbiter served through
	// the cached-election fast path (no waiter registration, no wait-tree
	// replays). It depends on how stale runners' published snapshots were
	// at the moment of re-arrival, so it is reporting-only.
	ChainFast int64
}

// Stats returns the arbiter's cumulative cost counters.
func (a *Arbiter) Stats() Stats {
	a.mu.Lock()
	defer a.mu.Unlock()
	d := 0
	if !a.flat && !a.nondet {
		d = a.depth
	}
	return Stats{Wakes: a.wakes, GrantWork: a.grantWork, Depth: d,
		ChainHits: a.chainHits, ChainFast: a.chainFast}
}

// AuditTurn verifies the turn-discipline invariant from the perspective of
// thread tid, which must currently hold the turn: no other thread is in
// StatusTurn, and tid's (DLC, tid) pair is the minimum over all threads that
// are neither parked nor exited. It also cross-checks the incremental
// live/parked counts against a status scan. It must be called by tid itself
// between WaitTurn and ReleaseTurn — while tid holds the turn, other
// threads' clocks only advance and park/exit transitions cannot happen, so
// any violation observed under the arbiter mutex is genuine, not transient.
// Returns a descriptive error on breach, nil otherwise. In nondeterministic
// mode there is no clock discipline to audit.
func (a *Arbiter) AuditTurn(tid int) error {
	if a.nondet {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if st := Status(a.slots[tid].status.Load()); st != StatusTurn {
		return fmt.Errorf("dlc: thread %d audits the turn with status %v, want turn", tid, st)
	}
	my := a.slots[tid].dlc.Load()
	live, parked := 1, 0 // tid itself, in StatusTurn, is live
	for i := range a.slots {
		st := Status(a.slots[i].status.Load())
		if i == tid {
			continue
		}
		if isLive(st) {
			live++
		}
		if st == StatusParked {
			parked++
		}
		if st == StatusTurn {
			return fmt.Errorf("dlc: threads %d and %d hold the turn simultaneously", tid, i)
		}
		if st == StatusParked || st == StatusExited {
			continue
		}
		if d := a.slots[i].dlc.Load(); d < my || (d == my && i < tid) {
			return fmt.Errorf("dlc: turn holder %d @ DLC %d is not the (DLC, tid) minimum: thread %d (%v) is at DLC %d",
				tid, my, i, st, d)
		}
	}
	if live != a.live || parked != a.parked {
		return fmt.Errorf("dlc: incremental deadlock counts (live %d, parked %d) disagree with status scan (live %d, parked %d)",
			a.live, a.parked, live, parked)
	}
	return nil
}

// AuditTree verifies the tournament state against first principles: every
// published clock trails its thread's true clock (and equals it for frozen
// Waiting/Turn threads), leaf occupancy matches thread statuses, every
// internal node holds the match of its children, and both roots agree with
// direct scans over the published keys — the tree-vs-scan minimum agreement
// the invariant checker audits at every granted turn. Returns nil in flat
// and nondeterministic modes, where there is no tree.
//
// Like AuditTurn it must be called by a thread holding the turn, so that
// park/exit transitions and waiter registrations are quiescent; concurrent
// runners only advance their clocks, which cannot invalidate the trailing
// checks below.
func (a *Arbiter) AuditTree() error {
	if a.nondet || a.flat {
		return nil
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	n := len(a.slots)
	for i := 0; i < n; i++ {
		st := Status(a.slots[i].status.Load())
		d := a.slots[i].dlc.Load()
		if a.pub[i] > d {
			return fmt.Errorf("dlc: thread %d published clock %d leads its true clock %d", i, a.pub[i], d)
		}
		if (st == StatusWaiting || st == StatusTurn) && a.pub[i] != d {
			return fmt.Errorf("dlc: frozen thread %d (%v) published clock %d != true clock %d", i, st, a.pub[i], d)
		}
		if got, want := a.minTree[a.size+i] >= 0, eligible(st); got != want {
			return fmt.Errorf("dlc: thread %d (%v) arbitration leaf occupancy %v, want %v", i, st, got, want)
		}
		if got, want := a.waitTree[a.size+i] >= 0, st == StatusWaiting; got != want {
			return fmt.Errorf("dlc: thread %d (%v) wait leaf occupancy %v, want %v", i, st, got, want)
		}
	}
	for i := n; i < a.size; i++ {
		if a.minTree[a.size+i] != -1 || a.waitTree[a.size+i] != -1 {
			return fmt.Errorf("dlc: phantom thread in padding leaf %d", i)
		}
	}
	for i := a.size - 1; i >= 1; i-- {
		if got, want := a.minTree[i], a.match(a.minTree[2*i], a.minTree[2*i+1]); got != want {
			return fmt.Errorf("dlc: arbitration tree node %d holds %d, match of children gives %d", i, got, want)
		}
		if got, want := a.waitTree[i], a.match(a.waitTree[2*i], a.waitTree[2*i+1]); got != want {
			return fmt.Errorf("dlc: wait tree node %d holds %d, match of children gives %d", i, got, want)
		}
	}
	minScan, waitScan := int32(-1), int32(-1)
	for i := 0; i < n; i++ {
		st := Status(a.slots[i].status.Load())
		if eligible(st) {
			minScan = a.match(minScan, int32(i))
		}
		if st == StatusWaiting {
			waitScan = a.match(waitScan, int32(i))
		}
	}
	if a.minTree[1] != minScan {
		return fmt.Errorf("dlc: arbitration tree root %d disagrees with published-key scan %d", a.minTree[1], minScan)
	}
	if a.waitTree[1] != waitScan {
		return fmt.Errorf("dlc: wait tree root %d disagrees with published-key scan %d", a.waitTree[1], waitScan)
	}
	return nil
}
