package dlc

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// arbVariants lists the two arbiter implementations every turn-discipline
// test must hold for: the tournament tree (default) and the flat O(n)-scan
// oracle it is differentially checked against.
var arbVariants = []struct {
	name string
	opts []Option
}{
	{"tree", nil},
	{"flat", []Option{WithFlatArbiter()}},
}

// TestTurnOrderFollowsClock checks that turns are granted in (DLC, tid)
// order: three threads request turns with distinct clocks and must be
// admitted lowest-clock first.
func TestTurnOrderFollowsClock(t *testing.T) {
	for _, v := range arbVariants {
		t.Run(v.name, func(t *testing.T) {
			a := New(3, v.opts...)
			a.SetDLC(0, 30)
			a.SetDLC(1, 10)
			a.SetDLC(2, 20)

			var mu sync.Mutex
			var order []int
			var wg sync.WaitGroup
			for tid := 0; tid < 3; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					a.WaitTurn(tid)
					mu.Lock()
					order = append(order, tid)
					mu.Unlock()
					a.ReleaseTurn(tid, 100) // push clock past the others
				}(tid)
			}
			wg.Wait()
			want := []int{1, 2, 0}
			for i, tid := range want {
				if order[i] != tid {
					t.Fatalf("turn order = %v, want %v", order, want)
				}
			}
		})
	}
}

// TestTieBreakByThreadID checks that equal clocks admit the lower thread ID
// first.
func TestTieBreakByThreadID(t *testing.T) {
	for _, v := range arbVariants {
		t.Run(v.name, func(t *testing.T) {
			a := New(2, v.opts...)
			// Both at DLC 0. Thread 1 requests first, but thread 0 must win.
			got0 := make(chan struct{})
			go func() {
				a.WaitTurn(1)
				close(got0)
			}()
			time.Sleep(10 * time.Millisecond)
			select {
			case <-got0:
				t.Fatal("thread 1 got the turn while thread 0 (same DLC, lower tid) was runnable")
			default:
			}
			a.WaitTurn(0)
			a.ReleaseTurn(0, 5)
			<-got0 // now thread 1 proceeds
			a.ReleaseTurn(1, 5)
		})
	}
}

// TestRunningThreadBlocksWaiter checks that a running thread with a lower
// clock blocks a waiter until its clock passes the waiter's.
func TestRunningThreadBlocksWaiter(t *testing.T) {
	for _, v := range arbVariants {
		t.Run(v.name, func(t *testing.T) {
			a := New(2, v.opts...)
			a.SetDLC(0, 0)  // running
			a.SetDLC(1, 50) // will wait

			granted := make(chan struct{})
			go func() {
				a.WaitTurn(1)
				close(granted)
			}()
			time.Sleep(10 * time.Millisecond)
			select {
			case <-granted:
				t.Fatal("waiter admitted while a running thread had a lower clock")
			default:
			}
			// Tick thread 0 past the waiter: grants the turn.
			for i := 0; i < 6; i++ {
				a.Tick(0, 10)
			}
			select {
			case <-granted:
			case <-time.After(2 * time.Second):
				t.Fatal("waiter not admitted after the running thread's clock passed it")
			}
			a.ReleaseTurn(1, 1)
		})
	}
}

// TestParkedThreadExcluded checks that parked threads do not block waiters.
func TestParkedThreadExcluded(t *testing.T) {
	for _, v := range arbVariants {
		t.Run(v.name, func(t *testing.T) {
			a := New(2, v.opts...)
			a.SetDLC(0, 0)
			a.SetDLC(1, 100)
			a.WaitTurn(0)
			a.Park(0) // thread 0 parks at its turn with the lower clock
			done := make(chan struct{})
			go func() {
				a.WaitTurn(1)
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(2 * time.Second):
				t.Fatal("parked thread still blocked the waiter")
			}
			a.ReleaseTurn(1, 1)
			a.Unpark(0, 200)
			if got := a.DLC(0); got != 200 {
				t.Fatalf("DLC after Unpark = %d, want 200", got)
			}
			if a.Status(0) != StatusRunning {
				t.Fatalf("status after Unpark = %v, want running", a.Status(0))
			}
		})
	}
}

// TestExitedThreadExcluded checks that exited threads do not block waiters.
func TestExitedThreadExcluded(t *testing.T) {
	for _, v := range arbVariants {
		t.Run(v.name, func(t *testing.T) {
			a := New(2, v.opts...)
			a.SetDLC(0, 0)
			a.SetDLC(1, 100)
			a.Exit(0)
			done := make(chan struct{})
			go func() {
				a.WaitTurn(1)
				close(done)
			}()
			select {
			case <-done:
			case <-time.After(2 * time.Second):
				t.Fatal("exited thread still blocked the waiter")
			}
		})
	}
}

// TestTurnMutualExclusion hammers the arbiter with concurrent turn takers
// and checks that at most one thread holds the turn at a time.
func TestTurnMutualExclusion(t *testing.T) {
	for _, v := range arbVariants {
		t.Run(v.name, func(t *testing.T) {
			const n = 8
			const rounds = 200
			a := New(n, v.opts...)
			var inTurn atomic.Int32
			var wg sync.WaitGroup
			for tid := 0; tid < n; tid++ {
				wg.Add(1)
				go func(tid int) {
					defer wg.Done()
					for r := 0; r < rounds; r++ {
						a.WaitTurn(tid)
						if inTurn.Add(1) != 1 {
							t.Errorf("two threads hold the turn simultaneously")
						}
						inTurn.Add(-1)
						a.ReleaseTurn(tid, 3)
						a.Tick(tid, 2)
					}
					a.Exit(tid)
				}(tid)
			}
			wg.Wait()
		})
	}
}

// TestDeterministicGrantSequence runs the same concurrent turn-taking
// schedule twice per implementation and checks the grant order is identical
// across runs AND across implementations: grants follow (DLC, tid), and DLC
// evolution is fixed by the protocol.
func TestDeterministicGrantSequence(t *testing.T) {
	runOnce := func(opts ...Option) []int {
		const n = 4
		const rounds = 50
		a := New(n, opts...)
		var mu sync.Mutex
		var order []int
		var wg sync.WaitGroup
		for tid := 0; tid < n; tid++ {
			wg.Add(1)
			go func(tid int) {
				defer wg.Done()
				for r := 0; r < rounds; r++ {
					// Distinct per-thread tick patterns.
					a.Tick(tid, int64(1+tid))
					a.WaitTurn(tid)
					mu.Lock()
					order = append(order, tid)
					mu.Unlock()
					a.ReleaseTurn(tid, 2)
				}
				a.Exit(tid)
			}(tid)
		}
		wg.Wait()
		return order
	}
	sequences := map[string][]int{}
	for _, v := range arbVariants {
		first := runOnce(v.opts...)
		second := runOnce(v.opts...)
		if len(first) != len(second) {
			t.Fatalf("%s: grant counts differ: %d vs %d", v.name, len(first), len(second))
		}
		for i := range first {
			if first[i] != second[i] {
				t.Fatalf("%s: grant order diverges at %d: %v vs %v", v.name, i, first[i], second[i])
			}
		}
		sequences[v.name] = first
	}
	tree, flat := sequences["tree"], sequences["flat"]
	if len(tree) != len(flat) {
		t.Fatalf("tree and flat grant counts differ: %d vs %d", len(tree), len(flat))
	}
	for i := range tree {
		if tree[i] != flat[i] {
			t.Fatalf("tree and flat grant orders diverge at %d: %d vs %d", i, tree[i], flat[i])
		}
	}
}

// TestNondetArbiterSerializes checks the nondeterministic arbiter still
// provides mutual exclusion.
func TestNondetArbiterSerializes(t *testing.T) {
	const n = 8
	a := NewNondet(n)
	if !a.Nondet() {
		t.Fatal("NewNondet returned a deterministic arbiter")
	}
	var inTurn atomic.Int32
	var wg sync.WaitGroup
	for tid := 0; tid < n; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for r := 0; r < 500; r++ {
				a.WaitTurn(tid)
				if inTurn.Add(1) != 1 {
					t.Errorf("two threads hold the nondet turn simultaneously")
				}
				inTurn.Add(-1)
				a.ReleaseTurn(tid, 1)
			}
		}(tid)
	}
	wg.Wait()
}

// TestTickIsCheapWithoutWaiters checks Tick does not require the mutex when
// nobody waits (it must not deadlock or panic; we just exercise the path).
func TestTickIsCheapWithoutWaiters(t *testing.T) {
	for _, v := range arbVariants {
		t.Run(v.name, func(t *testing.T) {
			a := New(1, v.opts...)
			for i := 0; i < 1000; i++ {
				a.Tick(0, 1)
			}
			if got := a.DLC(0); got != 1000 {
				t.Fatalf("DLC = %d, want 1000", got)
			}
		})
	}
}

// TestDeadlockDetection: when every non-exited thread parks, the deadlock
// handler fires — the repeatable deadlock broken ad-hoc synchronization
// produces under determinism.
func TestDeadlockDetection(t *testing.T) {
	for _, v := range arbVariants {
		t.Run(v.name, func(t *testing.T) {
			a := New(3, v.opts...)
			fired := 0
			a.SetDeadlockHandler(func() { fired++ })
			a.Exit(2)
			a.WaitTurn(0)
			a.Park(0)
			if fired != 0 {
				t.Fatal("deadlock reported while a thread was still runnable")
			}
			a.WaitTurn(1)
			a.Park(1)
			if fired != 1 {
				t.Fatalf("deadlock handler fired %d times, want 1", fired)
			}
		})
	}
}

// TestNoDeadlockWhenAllExit: clean termination is not a deadlock.
func TestNoDeadlockWhenAllExit(t *testing.T) {
	for _, v := range arbVariants {
		t.Run(v.name, func(t *testing.T) {
			a := New(2, v.opts...)
			a.SetDeadlockHandler(func() { t.Fatal("deadlock reported on clean exit") })
			a.Exit(0)
			a.Exit(1)
		})
	}
}
