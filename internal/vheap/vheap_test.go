package vheap

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestLoadStoreIsolation(t *testing.T) {
	h := New(1024)
	a := h.NewView()
	b := h.NewView()
	a.Store(10, 42)
	if got := a.Load(10); got != 42 {
		t.Fatalf("a.Load(10) = %d, want 42 (own write must be visible)", got)
	}
	if got := b.Load(10); got != 0 {
		t.Fatalf("b.Load(10) = %d, want 0 (uncommitted write leaked)", got)
	}
	a.Commit()
	if got := b.Load(10); got != 0 {
		t.Fatalf("b.Load(10) = %d, want 0 (b has not updated)", got)
	}
	b.Update()
	if got := b.Load(10); got != 42 {
		t.Fatalf("b.Load(10) after Update = %d, want 42", got)
	}
}

func TestCommitMergesWordLevel(t *testing.T) {
	h := New(1024)
	a := h.NewView()
	b := h.NewView()
	// Same page (page size 256 words), disjoint words.
	a.Store(0, 1)
	b.Store(1, 2)
	a.Commit()
	b.Commit()
	c := h.NewView()
	if got := c.Load(0); got != 1 {
		t.Fatalf("word 0 = %d, want 1 (a's write lost in merge)", got)
	}
	if got := c.Load(1); got != 2 {
		t.Fatalf("word 1 = %d, want 2 (b's write lost in merge)", got)
	}
}

func TestCommitLastWriterWinsSameWord(t *testing.T) {
	h := New(64, WithPageWords(16))
	a := h.NewView()
	b := h.NewView()
	a.Store(5, 111)
	b.Store(5, 222)
	a.Commit()
	b.Commit() // later commit wins the word
	if got := h.ReadCommitted(5); got != 222 {
		t.Fatalf("word 5 = %d, want 222 (commit order must decide)", got)
	}
}

// TestSilentStoreLost documents the word-tearing limitation the paper
// inherits from RFDet (§4): a store of the value already present produces no
// diff and does not overwrite a concurrent committed change.
func TestSilentStoreLost(t *testing.T) {
	h := New(64, WithPageWords(16))
	h.SetInitial(3, 7)
	a := h.NewView()
	b := h.NewView()
	a.Store(3, 7) // silent: same value as the twin
	b.Store(3, 9)
	b.Commit()
	a.Commit()
	if got := h.ReadCommitted(3); got != 9 {
		t.Fatalf("word 3 = %d, want 9 (silent store must not generate a diff)", got)
	}
}

func TestRevertDiscardsChanges(t *testing.T) {
	h := New(1024)
	a := h.NewView()
	a.Store(100, 5)
	a.Store(101, 6)
	if n := a.DirtyWords(); n != 2 {
		t.Fatalf("DirtyWords = %d, want 2", n)
	}
	if n := a.Revert(); n != 2 {
		t.Fatalf("Revert discarded %d words, want 2", n)
	}
	if got := a.Load(100); got != 0 {
		t.Fatalf("after revert Load(100) = %d, want 0", got)
	}
	if h.Seq() != 0 {
		t.Fatalf("revert must not commit; seq = %d", h.Seq())
	}
}

func TestRevertRebasesToLatest(t *testing.T) {
	h := New(1024)
	a := h.NewView()
	b := h.NewView()
	a.Store(7, 70)
	b.Store(8, 80)
	b.Commit()
	a.Revert()
	if got := a.Load(8); got != 80 {
		t.Fatalf("after revert, Load(8) = %d, want 80 (heap must update to newest committed version)", got)
	}
}

func TestSnapshotReadsOldVersionWhileOthersCommit(t *testing.T) {
	h := New(1024)
	h.SetInitial(0, 1)
	a := h.NewView() // bases at the initial state
	b := h.NewView()
	for i := 0; i < 10; i++ {
		b.Store(0, int64(100+i))
		b.Commit()
	}
	if got := a.Load(0); got != 1 {
		t.Fatalf("a.Load(0) = %d, want 1 (snapshot isolation violated)", got)
	}
	a.Update()
	if got := a.Load(0); got != 109 {
		t.Fatalf("after update a.Load(0) = %d, want 109", got)
	}
}

func TestTrimmedChainsStayBounded(t *testing.T) {
	h := New(256, WithPageWords(16)) // 16 pages
	v := h.NewView()
	for i := 0; i < 1000; i++ {
		v.Store(0, int64(i))
		v.Commit()
	}
	// One live view, always re-based at commit: the chain for page 0
	// should hold the head plus at most a short tail.
	if n := h.LiveVersions(); n > 16+4 {
		t.Fatalf("LiveVersions = %d after 1000 commits; trimming is not working", n)
	}
}

func TestFullChainsRetainHistory(t *testing.T) {
	h := New(256, WithPageWords(16), WithFullVersionChains())
	v := h.NewView()
	for i := 0; i < 50; i++ {
		v.Store(0, int64(i))
		v.Commit()
	}
	if n := h.LiveVersions(); n < 50 {
		t.Fatalf("LiveVersions = %d, want >= 50 with full chains", n)
	}
}

func TestHashDetectsDifferences(t *testing.T) {
	h1 := New(1024)
	h2 := New(1024)
	if h1.Hash() != h2.Hash() {
		t.Fatal("identical heaps hash differently")
	}
	v := h1.NewView()
	v.Store(512, 1)
	v.Commit()
	if h1.Hash() == h2.Hash() {
		t.Fatal("different heaps hash identically")
	}
}

func TestSetInitialVisibleToViews(t *testing.T) {
	h := New(1024)
	h.SetInitial(33, 99)
	v := h.NewView()
	if got := v.Load(33); got != 99 {
		t.Fatalf("Load(33) = %d, want 99", got)
	}
}

func TestUpdatePanicsWithDirtyPages(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Update with dirty pages must panic (engine protocol violation)")
		}
	}()
	h := New(64, WithPageWords(16))
	v := h.NewView()
	v.Store(0, 1)
	v.Update()
}

// TestQuickViewMatchesFlatMemory is a property test: a single view's
// load/store/commit/update behaviour must match a flat array, for random
// operation sequences.
func TestQuickViewMatchesFlatMemory(t *testing.T) {
	f := func(ops []uint16, seed uint8) bool {
		const words = 128
		h := New(words, WithPageWords(16))
		v := h.NewView()
		ref := make([]int64, words)
		val := int64(seed) + 1
		for _, op := range ops {
			addr := int64(op % words)
			switch (op / words) % 3 {
			case 0:
				v.Store(addr, val)
				ref[addr] = val
				val++
			case 1:
				if v.Load(addr) != ref[addr] {
					return false
				}
			case 2:
				v.Commit()
				v.Update()
			}
		}
		for a := int64(0); a < words; a++ {
			if v.Load(a) != ref[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMergeDisjointWriters is a property test: concurrent committers
// writing disjoint word sets must all survive the merge.
func TestQuickMergeDisjointWriters(t *testing.T) {
	f := func(vals [4]int64) bool {
		h := New(64, WithPageWords(16))
		var wg sync.WaitGroup
		for i := 0; i < 4; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				v := h.NewView()
				v.Store(int64(i), vals[i]|1) // |1 keeps it nonzero and non-silent
				v.Commit()
			}(i)
		}
		wg.Wait()
		for i := 0; i < 4; i++ {
			if h.ReadCommitted(int64(i)) != vals[i]|1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsCountCommits(t *testing.T) {
	h := New(1024)
	v := h.NewView()
	v.Store(0, 1)
	v.Store(300, 2) // second page
	v.Commit()
	st := h.Stats()
	if st.Commits != 1 || st.Pages != 2 || st.Words != 2 {
		t.Fatalf("Stats = (%d,%d,%d), want (1,2,2)", st.Commits, st.Pages, st.Words)
	}
	// Under dirty tracking, finding 2 changed words costs examining exactly
	// the 2 marked words.
	if st.WordsScanned != 2 {
		t.Fatalf("WordsScanned = %d, want 2 (commit work must be proportional to dirty words)", st.WordsScanned)
	}
}

// TestQuickConcurrentViewsStress hammers the heap with concurrent views
// performing random store/commit/revert/update sequences on disjoint
// address ranges, then checks every view's writes survived exactly.
func TestQuickConcurrentViewsStress(t *testing.T) {
	f := func(seed uint64) bool {
		const goroutines = 4
		const perRange = 64
		h := New(goroutines*perRange, WithPageWords(32))
		var wg sync.WaitGroup
		expected := make([][]int64, goroutines)
		for g := 0; g < goroutines; g++ {
			expected[g] = make([]int64, perRange)
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				r := seed + uint64(g)*977
				next := func(n uint64) uint64 {
					r = r*6364136223846793005 + 1442695040888963407
					return (r >> 33) % n
				}
				v := h.NewView()
				defer v.Close()
				base := int64(g * perRange)
				pending := map[int64]int64{}
				for i := 0; i < 200; i++ {
					switch next(10) {
					case 0: // revert: discard pending
						v.Revert()
						pending = map[int64]int64{}
					case 1, 2: // commit: pending becomes durable
						v.Commit()
						for a, val := range pending {
							expected[g][a-base] = val
						}
						pending = map[int64]int64{}
					case 3:
						if len(pending) == 0 {
							v.Update() // only legal with a clean dirty set
						}
					default:
						a := base + int64(next(perRange))
						val := int64(next(1000)) + 1
						v.Store(a, val)
						pending[a] = val
					}
				}
				v.Commit()
				for a, val := range pending {
					expected[g][a-base] = val
				}
			}(g)
		}
		wg.Wait()
		for g := 0; g < goroutines; g++ {
			for off, want := range expected[g] {
				if got := h.ReadCommitted(int64(g*perRange + off)); got != want {
					t.Logf("seed %x: word (%d,%d) = %d, want %d", seed, g, off, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestStoreDirtyForcesMerge: a StoreDirty of the base value still wins the
// commit merge.
func TestStoreDirtyForcesMerge(t *testing.T) {
	h := New(64, WithPageWords(16))
	h.SetInitial(3, 7)
	a := h.NewView()
	b := h.NewView()
	b.Store(3, 9)
	b.Commit()         // committed value now 9
	a.StoreDirty(3, 7) // equals a's (stale) base: must still merge
	a.Commit()
	if got := h.ReadCommitted(3); got != 7 {
		t.Fatalf("word 3 = %d, want 7 (StoreDirty must not be silent)", got)
	}
}
