package vheap

import "testing"

// Directed tests of the deferred-publication (commit staging) machinery:
// delta staging, same-owner chain merging, foreign flushes, and the
// interaction with speculation snapshots — the regression surface for
// same-owner publication elision.

// TestStagePublishDefersPhysicalCommit: a staged publication reserves a
// sequence without touching the version chains; the physical commit happens
// at the first observation (here a committed read) and carries exactly the
// staged values.
func TestStagePublishDefersPhysicalCommit(t *testing.T) {
	h := New(256)
	v := h.NewView()
	v.Store(3, 30)
	seq, staged := v.StagePublish()
	if !staged || seq != 1 {
		t.Fatalf("StagePublish = (%d, %v), want (1, true)", seq, staged)
	}
	if got := h.Stats().Commits; got != 0 {
		t.Fatalf("physical commits after staging = %d, want 0", got)
	}
	if v.Unpublished() {
		t.Fatal("view still unpublished after StagePublish")
	}
	// The owner keeps reading its deferred value through the retained frame.
	if got := v.Load(3); got != 30 {
		t.Fatalf("owner load = %d, want 30", got)
	}
	// A committed read is an observation: the stage is applied first.
	if got := h.ReadCommitted(3); got != 30 {
		t.Fatalf("ReadCommitted = %d, want 30", got)
	}
	if got := h.Stats().Commits; got != 1 {
		t.Fatalf("physical commits after observation = %d, want 1", got)
	}
	if !v.StageFlushed() {
		t.Fatal("owner's stage not marked flushed after a foreign observation")
	}
}

// TestStageChainMergesDeltas: consecutive staged publications merge into one
// stage per view — later sections stage only their delta, a word rewritten
// in a later section overwrites its staged value, and the whole chain
// reaches the chains as one physical commit with last-writer-wins contents.
func TestStageChainMergesDeltas(t *testing.T) {
	h := New(256)
	v := h.NewView()
	v.Store(1, 10)
	v.Store(2, 20)
	if _, staged := v.StagePublish(); !staged {
		t.Fatal("first StagePublish did not stage")
	}
	v.Store(2, 22) // rewrite a staged word
	v.Store(4, 40) // and a fresh one
	if _, staged := v.StagePublish(); !staged {
		t.Fatal("second StagePublish did not stage")
	}
	if err := v.AuditDeferred(); err != nil {
		t.Fatalf("AuditDeferred after chain: %v", err)
	}
	// One merged stage, applied once.
	if got := h.ReadCommitted(2); got != 22 {
		t.Fatalf("ReadCommitted(2) = %d, want 22 (last writer)", got)
	}
	for addr, want := range map[int64]int64{1: 10, 4: 40} {
		if got := h.ReadCommitted(addr); got != want {
			t.Fatalf("ReadCommitted(%d) = %d, want %d", addr, got, want)
		}
	}
	if got := h.Stats().Commits; got != 1 {
		t.Fatalf("physical commits for a 2-section chain = %d, want 1", got)
	}
}

// TestStageKeepsFirstTwin: a word staged at value A and later rewritten back
// to its pre-stage contents must still publish — silence is judged against
// the twin of the word's first staging, not the latest frame snapshot.
func TestStageKeepsFirstTwin(t *testing.T) {
	h := New(256)
	h.SetInitial(5, 7)
	v := h.NewView()
	v.Store(5, 50)
	if _, staged := v.StagePublish(); !staged {
		t.Fatal("first StagePublish did not stage")
	}
	v.Store(5, 7) // back to the pre-stage value
	if _, staged := v.StagePublish(); !staged {
		t.Fatal("second StagePublish did not stage")
	}
	if got := h.ReadCommitted(5); got != 7 {
		t.Fatalf("ReadCommitted(5) = %d, want 7", got)
	}
	// The chain must have physically committed: the intermediate value 50
	// was reserved and traced, so the final publication cannot be elided as
	// silent even though the net change is zero.
	if got := h.Stats().Commits; got != 1 {
		t.Fatalf("physical commits = %d, want 1", got)
	}
}

// TestCommitAppliesOwnStageFirst: the owner's physical Commit applies its
// outstanding stage at the reserved sequence, then commits the delta at a
// fresh sequence — both publications reach the chains in order.
func TestCommitAppliesOwnStageFirst(t *testing.T) {
	h := New(256)
	v := h.NewView()
	v.Store(1, 10)
	seq1, staged := v.StagePublish()
	if !staged {
		t.Fatal("StagePublish did not stage")
	}
	v.Store(2, 20)
	seq2, _ := v.Commit()
	if seq2 <= seq1 {
		t.Fatalf("commit seq %d not above reserved stage seq %d", seq2, seq1)
	}
	if got := h.Stats().Commits; got != 2 {
		t.Fatalf("physical commits = %d, want 2 (stage + delta)", got)
	}
	for addr, want := range map[int64]int64{1: 10, 2: 20} {
		if got := h.ReadCommitted(addr); got != want {
			t.Fatalf("ReadCommitted(%d) = %d, want %d", addr, got, want)
		}
	}
}

// TestForeignCommitFlushesStage: another view's commit applies the owner's
// outstanding stage first, so the head never overtakes a reserved sequence
// and the owner observes the miss at its next turn.
func TestForeignCommitFlushesStage(t *testing.T) {
	h := New(256)
	a := h.NewView()
	b := h.NewView()
	a.Store(1, 10)
	if _, staged := a.StagePublish(); !staged {
		t.Fatal("StagePublish did not stage")
	}
	b.Update()
	if got := b.Load(1); got != 10 {
		t.Fatalf("peer load after update = %d, want 10 (stage applied by re-base)", got)
	}
	b.Store(2, 20)
	b.Commit()
	if !a.StageFlushed() {
		t.Fatal("owner's stage not marked flushed after foreign activity")
	}
	// The owner re-bases over the flushed stage: its retained frame must
	// keep serving the already-published value, now as a silent store.
	a.RefreshDirty()
	if got := a.Load(1); got != 10 {
		t.Fatalf("owner load after rebase = %d, want 10", got)
	}
	if got := a.Load(2); got != 20 {
		t.Fatalf("owner load after rebase = %d, want 20 (peer commit visible)", got)
	}
	// Fully published and nothing written since: the retained set may drop.
	if a.Unpublished() {
		t.Fatal("owner unpublished after flush with no new writes")
	}
	a.DropClean()
	if got := a.Load(1); got != 10 {
		t.Fatalf("owner load after DropClean = %d, want 10", got)
	}
}

// TestRevertPreservesDeferredState is the speculation-interaction regression
// test: a speculative revert of a thread holding deferred (staged but not
// physically committed) state must restore the retained frames exactly, so
// the reserved publication still reaches the chains with the promised
// values. The deferred-publish invariant (AuditDeferred) must hold at every
// step.
func TestRevertPreservesDeferredState(t *testing.T) {
	h := New(256)
	h.SetInitial(2, 2)
	v := h.NewView()
	v.Store(1, 10)
	v.Store(2, 20)
	if _, staged := v.StagePublish(); !staged {
		t.Fatal("StagePublish did not stage")
	}
	if err := v.AuditDeferred(); err != nil {
		t.Fatalf("AuditDeferred after staging: %v", err)
	}

	// A speculation run begins: snapshot, speculative writes over both a
	// staged word and a fresh one, then the run fails and reverts.
	snap := v.SnapshotDirty()
	v.Store(1, 111)
	v.Store(3, 333)
	// Rewritten staged words are exempt from the audit — the owner's new
	// value legitimately shadows the staged one until revert or publish.
	if err := v.AuditDeferred(); err != nil {
		t.Fatalf("AuditDeferred mid-speculation: %v", err)
	}
	if n := v.RevertTo(snap); n == 0 {
		t.Fatal("revert discarded no speculative words")
	}
	if err := v.AuditDeferred(); err != nil {
		t.Fatalf("AuditDeferred after revert: %v", err)
	}
	if got := v.Load(1); got != 10 {
		t.Fatalf("owner load after revert = %d, want 10", got)
	}
	if v.Unpublished() {
		t.Fatal("revert resurrected the unpublished flag")
	}

	// The deferred publication must reach the chains with the pre-revert
	// values, and the speculative writes must not.
	if got := h.ReadCommitted(1); got != 10 {
		t.Fatalf("ReadCommitted(1) = %d, want 10", got)
	}
	if got := h.ReadCommitted(2); got != 20 {
		t.Fatalf("ReadCommitted(2) = %d, want 20", got)
	}
	if got := h.ReadCommitted(3); got != 0 {
		t.Fatalf("ReadCommitted(3) = %d, want 0 (speculative write reverted)", got)
	}
}

// TestStagePublishEmptyDelta: a release with nothing written since the last
// publication event reserves nothing — matching the eager path, which skips
// the commit on an empty dirty set.
func TestStagePublishEmptyDelta(t *testing.T) {
	h := New(256)
	v := h.NewView()
	v.Store(1, 10)
	if _, staged := v.StagePublish(); !staged {
		t.Fatal("first StagePublish did not stage")
	}
	seq, staged := v.StagePublish()
	if staged {
		t.Fatalf("empty-delta StagePublish staged at seq %d", seq)
	}
	if got := h.ReadCommitted(1); got != 10 {
		t.Fatalf("ReadCommitted(1) = %d, want 10", got)
	}
}
