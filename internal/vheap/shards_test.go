package vheap

import (
	"testing"
	"testing/quick"
)

// TestShardCountRounding pins how New maps the requested shard count onto
// page ranges: pages-per-shard is the smallest power of two that keeps the
// shard count at or under the request, and heaps with fewer pages than
// shards collapse to one page per shard.
func TestShardCountRounding(t *testing.T) {
	cases := []struct {
		words  int64
		pw     int
		want   int // requested shards (0 = default)
		shards int
	}{
		{1024, 16, 1, 1},    // oracle layout: one shard regardless of pages
		{1024, 16, 0, 8},    // 64 pages / default 8 -> 8 pages per shard
		{1024, 16, 64, 64},  // one page per shard
		{1024, 16, 100, 64}, // request above page count clamps to npages
		{1024, 16, 3, 3},    // 64 pages, want 3 -> pps 32 -> 2... check below
		{64, 16, 8, 4},      // 4 pages, want 8 -> clamp to 4 shards
	}
	for _, c := range cases {
		opts := []Option{WithPageWords(c.pw)}
		if c.want > 0 {
			opts = append(opts, WithShards(c.want))
		}
		h := New(c.words, opts...)
		got := h.Shards()
		if got > max(c.want, 1) && c.want > 0 {
			t.Errorf("New(%d words, pw %d, WithShards(%d)): %d shards, exceeds request",
				c.words, c.pw, c.want, got)
		}
		// Shard ranges must tile the page space exactly.
		covered := 0
		for si := 0; si < got; si++ {
			lo, hi := h.shardRange(si)
			if lo != covered {
				t.Fatalf("shard %d starts at page %d, want %d (gap or overlap)", si, lo, covered)
			}
			covered = hi
		}
		if covered != h.npages {
			t.Fatalf("shards cover %d pages, heap has %d", covered, h.npages)
		}
	}
	// Explicit check of the non-exact case: 64 pages with WithShards(3)
	// rounds pages-per-shard up to a power of two (32), giving 2 shards.
	if got := New(1024, WithPageWords(16), WithShards(3)).Shards(); got != 2 {
		t.Fatalf("64 pages, WithShards(3): %d shards, want 2 (pps rounds to 32)", got)
	}
}

// TestShardedMatchesUnshardedOracle is the differential test for the
// sharding tentpole: the same serialized commit script replayed against the
// default sharded heap and the WithShards(1) single-lock oracle must yield
// identical sequence numbers, identical content hashes, and identical
// commit statistics.
func TestShardedMatchesUnshardedOracle(t *testing.T) {
	script := func(h *Heap) (hashes []uint64, seqs []int64, st CommitStats) {
		a := h.NewView()
		b := h.NewView()
		// Writes span several shards (64 pages of 16 words; default
		// sharding puts 8 pages in each shard).
		for round := 0; round < 6; round++ {
			for k := 0; k < 20; k++ {
				addr := int64((round*131 + k*67) % 1024)
				a.Store(addr, int64(round*1000+k))
			}
			seq, _ := a.Commit()
			seqs = append(seqs, seq)
			b.Update()
			for k := 0; k < 10; k++ {
				addr := int64((round*29 + k*251) % 1024)
				b.Store(addr, int64(-round*100-k))
			}
			seq, _ = b.Commit()
			seqs = append(seqs, seq)
			a.Update()
			hashes = append(hashes, h.Hash())
		}
		b.Close()
		a.Close()
		return hashes, seqs, h.Stats()
	}

	sharded := New(1024, WithPageWords(16))
	oracle := New(1024, WithPageWords(16), WithShards(1))
	if sharded.Shards() <= 1 {
		t.Fatalf("default heap has %d shards; the differential test needs > 1", sharded.Shards())
	}
	if oracle.Shards() != 1 {
		t.Fatalf("WithShards(1) heap has %d shards, want 1", oracle.Shards())
	}
	sh, ss, sst := script(sharded)
	oh, os, ost := script(oracle)
	for i := range sh {
		if sh[i] != oh[i] {
			t.Fatalf("hash after round %d: sharded %x, unsharded oracle %x", i, sh[i], oh[i])
		}
	}
	for i := range ss {
		if ss[i] != os[i] {
			t.Fatalf("commit %d: sharded seq %d, oracle seq %d", i, ss[i], os[i])
		}
	}
	// PageHits/PageMisses are excluded: they count published-frame pool
	// reuse, and the pool is per-shard, so reuse locality is a function of
	// the shard layout (deterministic for a given layout, but not across
	// layouts). Everything visible to the program must agree.
	sst.PageHits, sst.PageMisses = 0, 0
	ost.PageHits, ost.PageMisses = 0, 0
	if sst != ost {
		t.Fatalf("commit stats diverge:\nsharded:  %+v\noracle:   %+v", sst, ost)
	}
	if err := sharded.Audit(); err != nil {
		t.Fatalf("sharded heap audit: %v", err)
	}
	if err := oracle.Audit(); err != nil {
		t.Fatalf("oracle heap audit: %v", err)
	}
}

// TestQuickShardedHashMatchesOracle drives random store/commit/update
// scripts through the sharded heap and the single-shard oracle and checks
// the final content hash and live-version count agree.
func TestQuickShardedHashMatchesOracle(t *testing.T) {
	f := func(seed uint64) bool {
		run := func(opts ...Option) (uint64, int64) {
			h := New(512, append([]Option{WithPageWords(8)}, opts...)...)
			views := []*View{h.NewView(), h.NewView(), h.NewView()}
			r := seed
			next := func(n uint64) uint64 {
				r = r*6364136223846793005 + 1442695040888963407
				return (r >> 33) % n
			}
			for step := 0; step < 200; step++ {
				v := views[next(uint64(len(views)))]
				switch next(4) {
				case 0, 1:
					v.Store(int64(next(512)), int64(next(1<<20)))
				case 2:
					v.Commit()
				case 3:
					if v.DirtyPages() == 0 { // Update requires a clean view
						v.Update()
					} else {
						v.Revert()
					}
				}
			}
			for _, v := range views {
				v.Commit()
				v.Close()
			}
			return h.Hash(), h.Seq()
		}
		h1, s1 := run()
		h2, s2 := run(WithShards(1))
		if h1 != h2 || s1 != s2 {
			t.Logf("seed %x: sharded (hash %x, seq %d) vs oracle (hash %x, seq %d)", seed, h1, s1, h2, s2)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestShardTrimFloorsMonotone pins the per-shard trim-floor invariant: as
// views commit, re-base and close, the floor each shard trims at never
// decreases, and never exceeds the newest committed sequence.
func TestShardTrimFloorsMonotone(t *testing.T) {
	h := New(1024, WithPageWords(16))
	prev := h.ShardTrimFloors()
	check := func(stage string) {
		cur := h.ShardTrimFloors()
		for si := range cur {
			if cur[si] < prev[si] {
				t.Fatalf("%s: shard %d trim floor went backwards: %d -> %d", stage, si, prev[si], cur[si])
			}
			if cur[si] > h.Seq() {
				t.Fatalf("%s: shard %d trim floor %d ahead of newest commit %d", stage, si, cur[si], h.Seq())
			}
		}
		prev = cur
	}

	a := h.NewView()
	b := h.NewView()
	for round := 0; round < 8; round++ {
		for pi := 0; pi < 64; pi += 3 {
			a.Store(int64(pi*16), int64(round))
		}
		a.Commit()
		check("after a.Commit")
		b.Update() // b's base advances: floors may rise
		for pi := 1; pi < 64; pi += 5 {
			b.Store(int64(pi*16), int64(-round))
		}
		b.Commit()
		check("after b.Commit")
		a.Update()
	}
	b.Close()
	check("after b.Close")
	// With only one live view at the newest base, another commit trims
	// every touched chain up to that base.
	for pi := 0; pi < 64; pi++ {
		a.Store(int64(pi*16+1), 7)
	}
	a.Commit()
	check("after full-heap commit")
	if err := h.Audit(); err != nil {
		t.Fatal(err)
	}
	a.Close()
}

// TestShardPoolsRecycleFrames checks trimming refills the owning shard's
// pool: steady-state commits on a trimmed heap reuse frames rather than
// allocating fresh pages without bound.
func TestShardPoolsRecycleFrames(t *testing.T) {
	h := New(1024, WithPageWords(16))
	v := h.NewView()
	for round := 0; round < 50; round++ {
		for pi := 0; pi < 64; pi++ {
			v.Store(int64(pi*16), int64(round))
		}
		v.Commit()
	}
	// One live view at the newest base: every chain should have been
	// trimmed to ~1 version + the shared zero tail.
	if live := h.LiveVersions(); live > 2*64 {
		t.Fatalf("%d live versions after steady-state commits on 64 pages; trimming is not recycling", live)
	}
	pooled := 0
	for si := range h.shards {
		s := &h.shards[si]
		s.mu.Lock()
		pooled += len(s.pagePool)
		s.mu.Unlock()
	}
	if pooled == 0 {
		t.Fatal("no frames in any shard pool after heavy trimming")
	}
	v.Close()
}
