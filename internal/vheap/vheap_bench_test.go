package vheap

import "testing"

func BenchmarkViewLoadClean(b *testing.B) {
	h := New(1 << 16)
	v := h.NewView()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Load(int64(i) & 0xffff)
	}
}

func BenchmarkViewLoadDirty(b *testing.B) {
	h := New(1 << 16)
	v := h.NewView()
	for a := int64(0); a < 1<<16; a += 64 {
		v.Store(a, a)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Load(int64(i) & 0xffff)
	}
}

func BenchmarkViewStoreHot(b *testing.B) {
	h := New(1 << 16)
	v := h.NewView()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Store(int64(i)&0xffff, int64(i))
	}
}

func BenchmarkCommitSmall(b *testing.B) {
	h := New(1 << 16)
	v := h.NewView()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Store(int64(i)&0xffff, int64(i)|1)
		v.Commit()
	}
}

func BenchmarkCommitWide(b *testing.B) {
	h := New(1 << 16)
	v := h.NewView()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := int64(0); p < 32; p++ {
			v.Store(p*256+int64(i)&0xff, int64(i)|1)
		}
		v.Commit()
	}
}

func BenchmarkSnapshotAndRevert(b *testing.B) {
	h := New(1 << 16)
	v := h.NewView()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Store(int64(i)&0xffff, int64(i)|1)
		snap := v.SnapshotDirty()
		v.Store(int64(i+7)&0xffff, int64(i))
		v.RevertTo(snap)
		v.Revert()
	}
}
