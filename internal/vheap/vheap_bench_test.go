package vheap

import (
	"fmt"
	"testing"
)

func BenchmarkViewLoadClean(b *testing.B) {
	h := New(1 << 16)
	v := h.NewView()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Load(int64(i) & 0xffff)
	}
}

func BenchmarkViewLoadDirty(b *testing.B) {
	h := New(1 << 16)
	v := h.NewView()
	for a := int64(0); a < 1<<16; a += 64 {
		v.Store(a, a)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Load(int64(i) & 0xffff)
	}
}

func BenchmarkViewStoreHot(b *testing.B) {
	h := New(1 << 16)
	v := h.NewView()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Store(int64(i)&0xffff, int64(i))
	}
}

func BenchmarkCommitSmall(b *testing.B) {
	h := New(1 << 16)
	v := h.NewView()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v.Store(int64(i)&0xffff, int64(i)|1)
		v.Commit()
	}
}

func BenchmarkCommitWide(b *testing.B) {
	h := New(1 << 16)
	v := h.NewView()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for p := int64(0); p < 32; p++ {
			v.Store(p*256+int64(i)&0xff, int64(i)|1)
		}
		v.Commit()
	}
}

// BenchmarkCommitDirtyFraction sweeps the fraction of a page modified
// between commits, for the dirty-bitmap walk and the legacy full-page scan.
// The words-scanned/commit metric is the structural difference the tentpole
// claims: constant-in-page-size for the bitmap, pageWords for the scan.
func BenchmarkCommitDirtyFraction(b *testing.B) {
	for _, pageWords := range []int{256, 1024} {
		for _, frac := range []struct {
			name  string
			dirty func(pw int) int
		}{
			{"1word", func(int) int { return 1 }},
			{"1pct", func(pw int) int { return (pw + 99) / 100 }},
			{"50pct", func(pw int) int { return pw / 2 }},
			{"100pct", func(pw int) int { return pw }},
		} {
			for _, path := range []struct {
				name string
				opts []Option
			}{
				{"bitmap", nil},
				{"legacy", []Option{WithLegacyDiffCommit()}},
				// The map-backed oracle also shows what the flat tables and
				// pools save: compare its allocs/op against bitmap's.
				{"mapviews", []Option{WithMapViews()}},
			} {
				name := fmt.Sprintf("page%d/%s/%s", pageWords, frac.name, path.name)
				b.Run(name, func(b *testing.B) {
					h := New(int64(pageWords), append([]Option{WithPageWords(pageWords)}, path.opts...)...)
					v := h.NewView()
					nd := frac.dirty(pageWords)
					b.ReportAllocs()
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						for w := 0; w < nd; w++ {
							// Spread writes across the page; fresh value each
							// iteration keeps every store non-silent.
							v.Store(int64(w*(pageWords/nd)), int64(i*nd+w)|1)
						}
						v.Commit()
					}
					b.StopTimer()
					st := h.Stats()
					if st.Commits > 0 {
						b.ReportMetric(float64(st.WordsScanned)/float64(st.Commits), "words-scanned/commit")
					}
				})
			}
		}
	}
}

func BenchmarkSnapshotAndRevert(b *testing.B) {
	h := New(1 << 16)
	v := h.NewView()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Store(int64(i)&0xffff, int64(i)|1)
		snap := v.SnapshotDirty()
		v.Store(int64(i+7)&0xffff, int64(i))
		v.RevertTo(snap)
		v.Revert()
	}
}

// BenchmarkSnapshotIntoAndRevert is BenchmarkSnapshotAndRevert on the
// buffer-reusing path the speculation engine drives: after warm-up the
// whole begin/revert cycle must run allocation-free.
func BenchmarkSnapshotIntoAndRevert(b *testing.B) {
	h := New(1 << 16)
	v := h.NewView()
	var snap *DirtySnapshot
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		v.Store(int64(i)&0xffff, int64(i)|1)
		snap = v.SnapshotDirtyInto(snap)
		v.Store(int64(i+7)&0xffff, int64(i))
		v.RevertTo(snap)
		v.Revert()
	}
}
