// Package vheap implements the versioned shared memory substrate that gives
// the strong-determinism engines their thread isolation. It is a user-space
// reimplementation of CONVERSION (Merrifield & Eriksson, EuroSys'13), the
// multi-version memory system LazyDet and Consequence are built on:
//
//   - Shared memory is an array of 64-bit words divided into fixed-size
//     pages.
//   - Each page slot holds a central version list: an immutable chain of
//     page versions, newest first, each tagged with the commit sequence
//     number that produced it.
//   - A thread reads and writes through a View. Reads resolve against the
//     newest page version no newer than the view's base sequence; the first
//     write to a page makes a private working copy plus a "twin" (a snapshot
//     of the base contents used for diffing) and a dirty-word bitmap. Every
//     store marks its word in the bitmap.
//   - Commit publishes, for every dirty page, the marked words that differ
//     from the twin, merged word-by-word onto the current head version.
//     Commit work is therefore proportional to the number of words written,
//     not the page size. WithLegacyDiffCommit restores the original
//     full-page twin scan as a differential-test oracle. Commits are
//     serialized (in this repository, by the deterministic turn), so the
//     merge order — and therefore the heap contents — is deterministic.
//   - Update re-bases a view on the newest committed state; Revert discards
//     all private modifications. Both are O(dirty set).
//
// The hot path is organized as a software TLB, mirroring the flat per-thread
// page tables the paper's threads read and write through:
//
//   - A View's dirty and clean lookups are dense slices indexed by page
//     number (the page count is fixed at heap construction), so a Load is an
//     array index plus at most one version-chain resolution — no hashing.
//   - Clean-resolution entries are validated by a per-view generation
//     stamp: re-basing the view (Commit, Update, Revert) bumps the
//     generation instead of clearing or reallocating the table.
//   - dirtyPage frames (working copy + twin + bitmap) come from a per-view
//     free list, recycled at every Commit/Revert, and published page
//     versions come from a per-heap free list refilled by chain trimming —
//     steady-state sync epochs allocate nothing.
//
// WithMapViews restores the original map-backed views (unpooled, allocating)
// as a differential oracle for the flat tables, exactly as
// WithLegacyDiffCommit preserves the full twin scan for the bitmap commit.
//
// The heap is sharded by contiguous page range: each shard owns its pages'
// commit lock, published-page pool and trim-floor cache, so commits touching
// disjoint page ranges contend on nothing global — the hierarchical scaling
// structure the tournament arbiter (internal/dlc) applies to turn grants,
// applied to publication. Sharding is invisible to determinism: commit
// sequence numbers and publication order are still derived solely from the
// (DLC, tid) turn order that serializes Commit calls, and a shard only
// partitions which mutex guards which page chains. WithShards(1) collapses
// the heap to the original single-lock layout as the differential oracle.
//
// Version chains are trimmed below the oldest base sequence still referenced
// by a live view. This is the space advantage the paper ascribes to DDRF
// (§4.2): the heap holds one version per page plus short tails for in-flight
// views (t views → at most t extra bases), rather than the l+t versions a
// DLRC-style system must retain. WithFullVersionChains disables trimming so
// the DLRC accounting experiment can measure the difference.
//
// Word-level twin diffing gives the same write-isolation semantics as the
// paper's system, including its documented limitation: a "silent store" (a
// store that writes the value already present) produces no diff and is lost
// if another thread commits a different value for the same word. The bitmap
// commit path preserves this exactly — a marked word still merges only when
// it differs from the twin — so both commit paths are byte-identical.
package vheap

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"lazydet/internal/telemetry"
)

// DefaultPageWords is the default page size in 64-bit words (2 KiB pages).
const DefaultPageWords = 256

// DefaultShards is the shard count New aims for when WithShards is not
// given: enough to spread commit traffic, few enough that per-shard state
// (a mutex, a pool, a floor cache) stays negligible. Heaps with fewer pages
// than shards get one shard per page.
const DefaultShards = 8

// page is one immutable version of one page, linked into that slot's
// version list. Only the prev pointer mutates (for trimming), hence atomic.
type page struct {
	seq   int64 // commit sequence that created this version
	prev  atomic.Pointer[page]
	words []int64
}

// heapShard owns one contiguous page range of the heap: the mutex guarding
// those pages' version chains, the published-page pool their trims refill,
// and a cache of the trim floor. Lock order, where both are held: a shard
// mutex before viewMu (and shards in index order before viewMu when a
// whole-heap operation locks several).
type heapShard struct {
	mu sync.Mutex // guards this shard's chains, pool and trims

	// pagePool is this shard's free list of published page frames, refilled
	// by chain trimming: a version cut below the trim floor is unreachable
	// by every live view (their bases are at or above the floor, so no
	// chain walk descends past the floor's terminal node), which makes its
	// frame safe to overwrite in a later commit. Guarded by mu.
	pagePool []*page

	// Trim-floor cache: recomputing the floor is an O(views) map scan under
	// viewMu, so commits into this shard reuse the last computed value
	// until it is invalidated — by view registration/unregistration, or by
	// a re-base of a view that sat at (or below) the cached floor. View
	// bases only move forward, and NewView bases at the newest commit
	// (>= every floor), so a cached floor is always a lower bound of the
	// true floor: stale only ever means trimming less, never over-trimming.
	floorCache atomic.Int64
	floorValid atomic.Bool

	// lastFloor is the floor the shard's most recent trim used, -1 before
	// any. The true floor is monotone (bases only move forward, new views
	// base at the newest commit) and caches revalidate against the current
	// view set, so the sequence of floors a shard trims at must never
	// decrease — the per-shard monotonicity invariant the checker audits.
	// Guarded by mu.
	lastFloor int64
}

// Heap is the shared versioned memory.
type Heap struct {
	pageWords int
	pageShift uint
	pageMask  int64
	npages    int
	seq       atomic.Int64 // newest committed sequence
	slots     []atomic.Pointer[page]

	// zero is the single shared all-zero page every slot starts from. It can
	// appear in many chains at once, so trimming must never recycle it.
	zero *page

	// Shards partition the page slots into contiguous ranges of 2^ppsShift
	// pages: page pi belongs to shards[pi>>ppsShift]. Each shard's mutex
	// serializes commits and trims on its own pages only.
	ppsShift uint
	shards   []heapShard

	viewMu sync.Mutex         // guards the live-view registry
	views  map[*View]struct{} // live views, for trim floor computation

	// Outstanding deferred publications (see stage.go). nstaged mirrors
	// len(stages) so the no-elision fast path is one atomic load.
	stageMu sync.Mutex
	stages  []*stage
	nstaged atomic.Int32

	commits      atomic.Int64 // total commits (stats)
	pagesWritten atomic.Int64 // total page versions published (stats)
	wordsMerged  atomic.Int64 // total words merged across commits (stats)
	wordsScanned atomic.Int64 // total words examined by commits to find them

	frameHits   atomic.Int64 // dirty-page frames served from a view free list
	frameMisses atomic.Int64 // dirty-page frames freshly allocated
	pageHits    atomic.Int64 // published page frames served from the heap pool
	pageMisses  atomic.Int64 // published page frames freshly allocated

	trim       bool // trim chains below the oldest live base (DDRF coalescing)
	legacyDiff bool // commit by full twin scan instead of the dirty bitmap
	mapViews   bool // map-backed views (the flat-table differential oracle)

	// tel, if non-nil, receives commit metrics ("vheap.*" counters and the
	// commit-size histogram). Nil costs one pointer compare per commit.
	tel *telemetry.Recorder
}

// Option configures a Heap.
type Option func(*heapConfig)

type heapConfig struct {
	pageWords  int
	shards     int
	keepChains bool
	legacyDiff bool
	mapViews   bool
	tel        *telemetry.Recorder
}

// WithPageWords sets the page size in words; it must be a power of two.
func WithPageWords(n int) Option { return func(c *heapConfig) { c.pageWords = n } }

// WithShards sets the target shard count (default DefaultShards). The heap
// rounds pages-per-shard up to a power of two, so the realized count (see
// Shards) can be lower; it never exceeds the page count. WithShards(1)
// restores the original single-lock heap and is kept as the differential
// oracle the sharded layout is tested against: shard boundaries are pure
// lock partitioning, so every shard count publishes byte-identical heaps,
// sequences and commit statistics.
func WithShards(n int) Option { return func(c *heapConfig) { c.shards = n } }

// WithFullVersionChains retains every page version rather than trimming
// chains to the versions still reachable by a live view. Used by the
// DLRC-vs-DDRF version accounting experiment.
func WithFullVersionChains() Option { return func(c *heapConfig) { c.keepChains = true } }

// WithLegacyDiffCommit makes Commit find modified words by scanning every
// word of every dirty page against its twin, as the original CONVERSION
// reimplementation did, instead of walking the dirty-word bitmap. The two
// paths publish byte-identical heaps; this one exists as the differential
// oracle the bitmap path is tested against, and to measure what the bitmap
// saves (see Stats().WordsScanned).
func WithLegacyDiffCommit() Option { return func(c *heapConfig) { c.legacyDiff = true } }

// WithMapViews makes every view resolve its dirty and clean pages through
// Go maps, as the original implementation did, instead of the flat
// generation-stamped page tables — and disables frame and page pooling, so
// allocation behavior matches the original too. The two view layouts
// publish byte-identical heaps, commit sequences and dirty counts; this one
// exists as the differential oracle the flat tables are tested against.
func WithMapViews() Option { return func(c *heapConfig) { c.mapViews = true } }

// WithTelemetry publishes the heap's commit-path measurements into rec:
// cumulative "vheap.commits", "vheap.pages_committed", "vheap.words_committed",
// "vheap.words_scanned" and "vheap.shard_batches" (shard lock acquisitions
// across commits, a deterministic function of each commit's dirty-page set)
// counters, a "vheap.commit_words" histogram of
// per-commit merged word counts, and the pool counters
// "vheap.frame_pool_hits"/"vheap.frame_pool_misses" (dirty-page frames) and
// "vheap.page_pool_hits"/"vheap.page_pool_misses" (published page frames).
// The commit counters are deterministic for deterministic engines (commit
// contents and order are turn-ordered); the pool counters can depend on
// wall-clock view registration order (a suspended thread's view pins the
// trim floor from a nondeterministic instant), so the harness reports them
// in the non-gated Timing half.
func WithTelemetry(rec *telemetry.Recorder) Option {
	return func(c *heapConfig) { c.tel = rec }
}

// New creates a heap of the given size in words. The initial contents are
// all zero at sequence 0.
func New(words int64, opts ...Option) *Heap {
	cfg := heapConfig{pageWords: DefaultPageWords}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.pageWords <= 0 || cfg.pageWords&(cfg.pageWords-1) != 0 {
		panic(fmt.Sprintf("vheap: page size %d is not a positive power of two", cfg.pageWords))
	}
	shift := uint(0)
	for 1<<shift != cfg.pageWords {
		shift++
	}
	np := int((words + int64(cfg.pageWords) - 1) >> shift)
	if np == 0 {
		np = 1
	}
	want := cfg.shards
	if want <= 0 {
		want = DefaultShards
	}
	if want > np {
		want = np
	}
	pps := 1
	for pps < (np+want-1)/want {
		pps <<= 1
	}
	h := &Heap{
		pageWords:  cfg.pageWords,
		pageShift:  shift,
		pageMask:   int64(cfg.pageWords - 1),
		npages:     np,
		slots:      make([]atomic.Pointer[page], np),
		ppsShift:   uint(bits.TrailingZeros(uint(pps))),
		shards:     make([]heapShard, (np+pps-1)/pps),
		views:      make(map[*View]struct{}),
		trim:       !cfg.keepChains,
		legacyDiff: cfg.legacyDiff,
		mapViews:   cfg.mapViews,
		tel:        cfg.tel,
	}
	for i := range h.shards {
		h.shards[i].lastFloor = -1
	}
	h.zero = &page{seq: 0, words: make([]int64, cfg.pageWords)}
	for i := range h.slots {
		h.slots[i].Store(h.zero) // shared zero page; copied on first write
	}
	return h
}

// Shards returns the realized shard count.
func (h *Heap) Shards() int { return len(h.shards) }

// shardOf returns the shard owning page pi.
func (h *Heap) shardOf(pi int) *heapShard { return &h.shards[pi>>h.ppsShift] }

// shardRange returns the page range [lo, hi) shard si owns.
func (h *Heap) shardRange(si int) (lo, hi int) {
	lo = si << h.ppsShift
	hi = lo + 1<<h.ppsShift
	if hi > h.npages {
		hi = h.npages
	}
	return lo, hi
}

// ShardTrimFloors returns, per shard, the trim floor its most recent trim
// used (-1 for shards that never trimmed). The true floor is monotone, so
// each entry must never decrease across calls — the invariant checker's
// per-shard trim-floor rule.
func (h *Heap) ShardTrimFloors() []int64 {
	floors := make([]int64, len(h.shards))
	for i := range h.shards {
		s := &h.shards[i]
		s.mu.Lock()
		floors[i] = s.lastFloor
		s.mu.Unlock()
	}
	return floors
}

// Words returns the heap size in words.
func (h *Heap) Words() int64 { return int64(h.npages) * int64(h.pageWords) }

// PageWords returns the page size in words.
func (h *Heap) PageWords() int { return h.pageWords }

// Seq returns the newest committed sequence number.
func (h *Heap) Seq() int64 { return h.seq.Load() }

// SetInitial writes directly into the committed state. It must only be used
// before any views exist (to load a workload's initial data) — which is what
// makes writing in place legal: page versions only become immutable once a
// view can read them.
func (h *Heap) SetInitial(addr, val int64) {
	pi := addr >> h.pageShift
	off := addr & h.pageMask
	s := h.shardOf(int(pi))
	s.mu.Lock()
	defer s.mu.Unlock()
	head := h.slots[pi].Load()
	if head == h.zero {
		// First touch: give the slot a private page. The shared zero page
		// backs every untouched slot and must stay all-zero.
		np := &page{seq: head.seq, words: make([]int64, h.pageWords)}
		np.prev.Store(head.prev.Load())
		h.slots[pi].Store(np)
		head = np
	}
	head.words[off] = val
}

// ReadCommitted returns the committed value of addr at the newest version.
// It is used by validation and by the harness after a run completes. Any
// outstanding deferred publication is applied first: "newest committed"
// includes every reserved sequence.
func (h *Heap) ReadCommitted(addr int64) int64 {
	h.flushStages(nil, flushAll)
	p := h.slots[addr>>h.pageShift].Load()
	return p.words[addr&h.pageMask]
}

// pageAt resolves the newest page version with seq <= base for page index pi.
func (h *Heap) pageAt(pi int, base int64) *page {
	p := h.slots[pi].Load()
	for p.seq > base {
		prev := p.prev.Load()
		if prev == nil {
			panic("vheap: version older than base was trimmed while still referenced")
		}
		p = prev
	}
	return p
}

// trimFloorLocked returns the oldest base sequence referenced by any live
// view. Caller holds h.viewMu.
func (h *Heap) trimFloorLocked() int64 {
	floor := int64(math.MaxInt64)
	//lazydet:nondeterministic order-independent min-reduction over the live-view set
	for v := range h.views {
		if b := v.base.Load(); b < floor {
			floor = b
		}
	}
	return floor
}

// noteRebase invalidates every shard's cached trim floor when a view moves
// its base forward from oldBase: if that view sat at (or below) a shard's
// cached floor it may have been the floor holder, so that shard's next
// commit must recompute. Views strictly above a cached floor cannot lower
// it by moving forward.
func (h *Heap) noteRebase(oldBase int64) {
	for i := range h.shards {
		s := &h.shards[i]
		if s.floorValid.Load() && oldBase <= s.floorCache.Load() {
			s.floorValid.Store(false)
		}
	}
}

// invalidateFloors drops every shard's cached trim floor (view set changed).
func (h *Heap) invalidateFloors() {
	for i := range h.shards {
		h.shards[i].floorValid.Store(false)
	}
}

// shardFloor returns the shard's cached trim floor, recomputing it from the
// live-view registry when invalid. Caller holds s.mu (lock order: a shard
// mutex before viewMu).
func (h *Heap) shardFloor(s *heapShard) int64 {
	if s.floorValid.Load() {
		return s.floorCache.Load()
	}
	h.viewMu.Lock()
	floor := h.trimFloorLocked()
	h.viewMu.Unlock()
	s.floorCache.Store(floor)
	s.floorValid.Store(true)
	return floor
}

// Hash returns an FNV-1a hash of the newest committed heap contents. Two
// deterministic runs of the same program must produce equal hashes. Each
// shard is locked while its range is hashed; page order (and so the hash)
// is independent of the shard layout.
func (h *Heap) Hash() uint64 {
	h.flushStages(nil, flushAll) // hash the state including deferred publications
	f := fnv.New64a()
	var buf [8]byte
	for si := range h.shards {
		s := &h.shards[si]
		s.mu.Lock()
		lo, hi := h.shardRange(si)
		for i := lo; i < hi; i++ {
			p := h.slots[i].Load()
			for _, w := range p.words {
				buf[0] = byte(w)
				buf[1] = byte(w >> 8)
				buf[2] = byte(w >> 16)
				buf[3] = byte(w >> 24)
				buf[4] = byte(w >> 32)
				buf[5] = byte(w >> 40)
				buf[6] = byte(w >> 48)
				buf[7] = byte(w >> 56)
				f.Write(buf[:])
			}
		}
		s.mu.Unlock()
	}
	return f.Sum64()
}

// CommitStats are cumulative counters over a heap's commit path.
type CommitStats struct {
	// Commits is the number of Commit calls.
	Commits int64
	// Pages is the number of page versions published.
	Pages int64
	// Words is the number of words merged onto head versions — the change
	// set size the paper's Figure 12 plots.
	Words int64
	// WordsScanned is the number of words commits examined to find the
	// merged ones: per dirty page, the page size under the legacy full
	// twin diff, or the bitmap's population count under dirty tracking.
	// The ratio WordsScanned/Words is the overhead of locating a change.
	WordsScanned int64
	// FrameHits/FrameMisses count dirty-page frames served from a view's
	// free list vs freshly allocated (flat-table views only; flushed into
	// the heap totals at each commit).
	FrameHits, FrameMisses int64
	// PageHits/PageMisses count published page frames served from the
	// heap's trim-refilled pool vs freshly allocated.
	PageHits, PageMisses int64
}

// Stats returns cumulative commit statistics.
func (h *Heap) Stats() CommitStats {
	return CommitStats{
		Commits:      h.commits.Load(),
		Pages:        h.pagesWritten.Load(),
		Words:        h.wordsMerged.Load(),
		WordsScanned: h.wordsScanned.Load(),
		FrameHits:    h.frameHits.Load(),
		FrameMisses:  h.frameMisses.Load(),
		PageHits:     h.pageHits.Load(),
		PageMisses:   h.pageMisses.Load(),
	}
}

// LiveVersions counts page versions currently reachable from the version
// lists. With full chains retained this measures the cost that DLRC-style
// systems pay (paper §4.2).
func (h *Heap) LiveVersions() int {
	h.flushStages(nil, flushAll)
	n := 0
	for si := range h.shards {
		s := &h.shards[si]
		s.mu.Lock()
		lo, hi := h.shardRange(si)
		for i := lo; i < hi; i++ {
			for p := h.slots[i].Load(); p != nil; p = p.prev.Load() {
				n++
			}
		}
		s.mu.Unlock()
	}
	return n
}

// Audit verifies the heap's structural invariants: every page version chain
// is strictly decreasing in commit sequence, no version is newer than the
// heap's committed sequence, with trimming enabled the oldest retained
// version of every chain is at or below the trim floor (the minimum base of
// the live views) so no live view's base has been trimmed out from under it,
// no pooled page frame is still reachable from a version chain (a reachable
// frame would be overwritten by the commit that reuses it), and every
// shard's cached and last-used trim floors are at or below the true floor.
// Returns a descriptive error on the first breach. Used by the invariant
// checker (internal/invariant).
func (h *Heap) Audit() error {
	// Snapshot the outstanding stages before taking shard locks (flushes
	// acquire stageMu before shard mutexes; Audit must not invert that).
	h.stageMu.Lock()
	stages := append([]*stage(nil), h.stages...)
	h.stageMu.Unlock()
	for i := range h.shards {
		h.shards[i].mu.Lock()
		defer h.shards[i].mu.Unlock()
	}
	h.viewMu.Lock()
	defer h.viewMu.Unlock()
	top := h.seq.Load()
	for _, s := range stages {
		if s.seq > top {
			return fmt.Errorf("vheap: outstanding stage at seq %d is ahead of the newest commit %d", s.seq, top)
		}
		for _, pi := range s.pis {
			if head := h.slots[pi].Load(); head.seq >= s.seq {
				return fmt.Errorf("vheap: page %d head version %d has overtaken an outstanding stage at seq %d — its flush could no longer head-insert",
					pi, head.seq, s.seq)
			}
		}
	}
	floor := h.trimFloorLocked()
	//lazydet:nondeterministic order-independent audit: every view is checked, the first offender differs only in the error text
	for v := range h.views {
		if b := v.base.Load(); b > top {
			return fmt.Errorf("vheap: live view base %d is ahead of the newest commit %d", b, top)
		}
	}
	pooled := make(map[*page]bool)
	for si := range h.shards {
		s := &h.shards[si]
		if s.floorValid.Load() && s.floorCache.Load() > floor {
			return fmt.Errorf("vheap: shard %d cached trim floor %d is above the true floor %d — trimming could cut a live view's base",
				si, s.floorCache.Load(), floor)
		}
		if s.lastFloor > floor {
			return fmt.Errorf("vheap: shard %d last trimmed at floor %d, above the true floor %d — trimming could have cut a live view's base",
				si, s.lastFloor, floor)
		}
		for i, p := range s.pagePool {
			if p == nil {
				return fmt.Errorf("vheap: shard %d page pool entry %d is nil", si, i)
			}
			if p == h.zero {
				return fmt.Errorf("vheap: the shared zero page was recycled into shard %d's page pool — other chains may still reference it", si)
			}
			if len(p.words) != h.pageWords {
				return fmt.Errorf("vheap: shard %d pooled page frame %d has %d words, want the page size %d", si, i, len(p.words), h.pageWords)
			}
			if p.prev.Load() != nil {
				return fmt.Errorf("vheap: shard %d pooled page frame %d still links to a version chain", si, i)
			}
			pooled[p] = true
		}
	}
	for pi := range h.slots {
		p := h.slots[pi].Load()
		if p.seq > top {
			return fmt.Errorf("vheap: page %d head version %d is ahead of the newest commit %d", pi, p.seq, top)
		}
		oldest := p.seq
		for q := p; q != nil; q = q.prev.Load() {
			if pooled[q] {
				return fmt.Errorf("vheap: page %d version %d is both pooled and reachable — its frame would be overwritten while live",
					pi, q.seq)
			}
			if q != p && q.seq >= oldest {
				return fmt.Errorf("vheap: page %d version chain is not strictly decreasing (%d then %d)", pi, oldest, q.seq)
			}
			oldest = q.seq
		}
		if h.trim && len(h.views) > 0 && oldest > floor {
			return fmt.Errorf("vheap: page %d oldest retained version %d is above the trim floor %d — a live view's base was trimmed",
				pi, oldest, floor)
		}
	}
	return nil
}

// dirtyPage is a view's private working copy of one page. dirty has one bit
// per word, set by every store; commit walks the set bits instead of
// re-diffing the whole page against the twin.
type dirtyPage struct {
	words []int64
	twin  []int64 // snapshot of the base contents at first write
	dirty []uint64
	// baseSeq is the sequence of the page version the twin was snapshotted
	// from, so a keep-dirty re-base (stage.go) can tell whether the frame's
	// base page advanced without storing the page pointer itself.
	baseSeq int64
	// snapKeep is RevertTo's transient sweep mark: set on frames the
	// snapshot reinstates, cleared again before RevertTo returns.
	snapKeep bool
}

// mark records a write to word off.
func (d *dirtyPage) mark(off int64) { d.dirty[off>>6] |= 1 << (uint(off) & 63) }

// marked reports whether word i has been written.
func (d *dirtyPage) marked(i int) bool { return d.dirty[i>>6]&(1<<(uint(i)&63)) != 0 }

// newFrame allocates a dirty-page frame sized for the heap's pages.
func (h *Heap) newFrame() *dirtyPage {
	return &dirtyPage{
		words: make([]int64, h.pageWords),
		twin:  make([]int64, h.pageWords),
		dirty: make([]uint64, (h.pageWords+63)/64),
	}
}

// mapTables is the original map-backed view layout, kept behind
// WithMapViews as the differential oracle for the flat page tables.
type mapTables struct {
	dirty map[int]*dirtyPage
	clean map[int]*page
}

// View is one thread's isolated window onto the heap. Its page tables are
// dense slices indexed by page number — the software analogue of the flat
// per-thread page tables the paper's threads read and write through — with
// a generation stamp validating clean-resolution entries, so re-basing
// invalidates the whole cache in O(1).
type View struct {
	h    *Heap
	base atomic.Int64 // committed sequence the view reads at

	// dirtyTab[pi] is the private working copy of page pi, nil if the page
	// is clean. dirtyIdx lists the dirty page numbers in first-write order
	// (the deterministic iteration order for commits and snapshots).
	dirtyTab []*dirtyPage
	dirtyIdx []int

	// cleanTab caches pages already resolved at the current base, so reads
	// against a stale base (a speculating thread that has not re-based for
	// a while) do not re-walk version chains. An entry is valid only while
	// cleanGen[pi] == gen; moving the base bumps gen instead of clearing
	// the table. Page versions are immutable and trimming never cuts above
	// a live base, so a cached resolution stays valid until the base moves.
	cleanTab []*page
	cleanGen []uint64
	gen      uint64

	// free is the view's dirty-page frame pool: frames released by
	// Commit/Revert, reused by the next first-write. Thread-local, so hit
	// and miss counts stay deterministic (unlike a sync.Pool's).
	free      []*dirtyPage
	frameHits int64 // flushed into heap totals (and telemetry) at Commit
	frameMiss int64
	closed    bool // Close happened; further Closes are no-ops

	// mt, when non-nil, holds the original map-backed tables and the view
	// ignores the flat tables entirely (WithMapViews oracle).
	mt *mapTables

	// stg is the view's deferred publication (stage.go), nil until the first
	// elided publish. unstaged records whether any store happened since the
	// last publication event (Commit or StagePublish) — the elided analogue
	// of "is the dirty set non-empty", which staging no longer clears.
	stg      *stage
	unstaged bool
}

// NewView creates a view based on the newest committed state. It does NOT
// flush outstanding deferred publications: views are created at thread
// start, which can race with already-running threads' turns, and a
// wall-clock flush here would make elision outcomes (and the gated elision
// counters) nondeterministic. The base may therefore sit above an unapplied
// stage — harmless, because a thread's pre-first-synchronization loads can
// only touch state no other thread has written (anything else is a data
// race), and the engine re-bases the view, flushing at its own turn, before
// any cross-thread state is read.
func (h *Heap) NewView() *View {
	v := &View{h: h}
	if h.mapViews {
		v.mt = &mapTables{dirty: make(map[int]*dirtyPage), clean: make(map[int]*page)}
	} else {
		v.dirtyTab = make([]*dirtyPage, h.npages)
		v.cleanTab = make([]*page, h.npages)
		v.cleanGen = make([]uint64, h.npages)
		v.gen = 1 // so zero-valued cleanGen entries are invalid
	}
	h.viewMu.Lock()
	v.base.Store(h.seq.Load())
	h.views[v] = struct{}{}
	h.viewMu.Unlock()
	h.invalidateFloors()
	return v
}

// Close unregisters the view so its base no longer pins old versions. It is
// idempotent: a second Close is a no-op, so an engine tearing down shared
// thread state twice cannot invalidate the trim-floor cache spuriously or
// unregister a recreated view by aliasing.
func (v *View) Close() {
	// A closing view's outstanding deferred publication is still committed
	// state (it is in the trace at its reserved sequence); apply it rather
	// than lose it — dropping is only legal when the owner commits the
	// retained dirty set itself, which a Close does not.
	if v.stg != nil && v.stg.queued {
		// Bounded by the stage's own reserved sequence: prefix closure pulls
		// in every earlier stage the application depends on, and later
		// stages (possibly created at turns still running) are left alone.
		v.h.flushStages(nil, v.stg.seq)
	}
	v.h.viewMu.Lock()
	unregistered := false
	if !v.closed {
		v.closed = true
		delete(v.h.views, v)
		unregistered = true
	}
	v.h.viewMu.Unlock()
	if unregistered {
		v.h.invalidateFloors()
	}
}

// BaseSeq returns the committed sequence the view is based on.
func (v *View) BaseSeq() int64 { return v.base.Load() }

// DirtyPages returns the number of privately modified pages.
func (v *View) DirtyPages() int {
	if v.mt != nil {
		return len(v.mt.dirty)
	}
	return len(v.dirtyIdx)
}

// DirtyWords returns the number of words that differ from the twins — the
// "change set size" reported in the paper's Figure 12. Silent stores (marked
// but equal to the twin) do not count, under either commit path.
func (v *View) DirtyWords() int {
	n := 0
	if v.mt != nil {
		//lazydet:nondeterministic order-independent sum over the dirty-page set
		for _, d := range v.mt.dirty {
			n += diffWords(d)
		}
		return n
	}
	for _, pi := range v.dirtyIdx {
		n += diffWords(v.dirtyTab[pi])
	}
	return n
}

// diffWords counts words differing from the twin, walking only marked words
// (an unmarked word was never stored to, so it cannot differ).
func diffWords(d *dirtyPage) int {
	n := 0
	for bi, mask := range d.dirty {
		for mask != 0 {
			i := bi<<6 + bits.TrailingZeros64(mask)
			mask &= mask - 1
			if d.words[i] != d.twin[i] {
				n++
			}
		}
	}
	return n
}

// AuditDirty verifies the view's dirty tracking: every word of every dirty
// page that differs from its twin must be marked in the bitmap — otherwise
// the bitmap commit would silently drop that write. (The converse, a marked
// word equal to its twin, is a legal silent store.) Must be called by the
// view's owning thread, before Commit clears the dirty set. Used by the
// invariant checker.
func (v *View) AuditDirty() error {
	if v.mt != nil {
		//lazydet:nondeterministic order-independent audit: every page is checked, the first offender differs only in the error text
		for pi, d := range v.mt.dirty {
			if err := auditDirtyPage(pi, d); err != nil {
				return err
			}
		}
		return nil
	}
	for _, pi := range v.dirtyIdx {
		if err := auditDirtyPage(pi, v.dirtyTab[pi]); err != nil {
			return err
		}
	}
	return nil
}

// auditDirtyPage checks one page's bitmap against its twin diff.
func auditDirtyPage(pi int, d *dirtyPage) error {
	for i := range d.words {
		if d.words[i] != d.twin[i] && !d.marked(i) {
			return fmt.Errorf("vheap: page %d word %d differs from its twin (%d vs %d) but is not marked dirty — the bitmap commit would drop this write",
				pi, i, d.words[i], d.twin[i])
		}
	}
	return nil
}

// AuditTables verifies the flat page tables and frame pool: dirtyIdx and
// dirtyTab must agree exactly (every listed page has a frame, every frame is
// listed once), clean-cache entries stamped with the current generation must
// equal a fresh version-chain resolution at the view's base, and pooled
// frames must be page-sized with cleared bitmaps and must not alias a live
// dirty frame. Returns nil for map-backed views, which have no tables or
// pools to audit. Used by the invariant checker at every publication.
func (v *View) AuditTables() error {
	if v.mt != nil {
		return nil
	}
	if len(v.dirtyTab) != v.h.npages || len(v.cleanTab) != v.h.npages || len(v.cleanGen) != v.h.npages {
		return fmt.Errorf("vheap: page tables sized %d/%d/%d, want the heap's %d pages",
			len(v.dirtyTab), len(v.cleanTab), len(v.cleanGen), v.h.npages)
	}
	listed := make(map[int]bool, len(v.dirtyIdx))
	live := make(map[*dirtyPage]bool, len(v.dirtyIdx))
	for _, pi := range v.dirtyIdx {
		if pi < 0 || pi >= v.h.npages {
			return fmt.Errorf("vheap: dirty index lists page %d outside the heap's %d pages", pi, v.h.npages)
		}
		if listed[pi] {
			return fmt.Errorf("vheap: dirty index lists page %d twice", pi)
		}
		listed[pi] = true
		d := v.dirtyTab[pi]
		if d == nil {
			return fmt.Errorf("vheap: dirty index lists page %d but its table entry is nil", pi)
		}
		live[d] = true
	}
	dirty := 0
	for pi, d := range v.dirtyTab {
		if d == nil {
			continue
		}
		dirty++
		if !listed[pi] {
			return fmt.Errorf("vheap: page %d has a dirty frame but is missing from the dirty index — commit would drop it", pi)
		}
	}
	if dirty != len(v.dirtyIdx) {
		return fmt.Errorf("vheap: %d dirty frames but %d dirty index entries", dirty, len(v.dirtyIdx))
	}
	base := v.base.Load()
	for pi, g := range v.cleanGen {
		if g > v.gen {
			return fmt.Errorf("vheap: page %d clean stamp %d is ahead of the view generation %d", pi, g, v.gen)
		}
		if g != v.gen {
			continue
		}
		p := v.cleanTab[pi]
		if p == nil {
			return fmt.Errorf("vheap: page %d clean stamp is current but the cached resolution is nil", pi)
		}
		if p != v.h.pageAt(pi, base) {
			return fmt.Errorf("vheap: page %d cached clean resolution (seq %d) is stale for base %d — generation stamping failed to invalidate it",
				pi, p.seq, base)
		}
	}
	for i, d := range v.free {
		if d == nil {
			return fmt.Errorf("vheap: frame pool entry %d is nil", i)
		}
		if live[d] {
			return fmt.Errorf("vheap: frame pool entry %d aliases a live dirty frame — its contents would be overwritten under the view", i)
		}
		if len(d.words) != v.h.pageWords || len(d.twin) != v.h.pageWords || len(d.dirty) != (v.h.pageWords+63)/64 {
			return fmt.Errorf("vheap: frame pool entry %d sized %d/%d/%d, want %d-word pages",
				i, len(d.words), len(d.twin), len(d.dirty), v.h.pageWords)
		}
		for bi, mask := range d.dirty {
			if mask != 0 {
				return fmt.Errorf("vheap: frame pool entry %d has residual dirty bits (word group %d) — a recycled frame must start clean", i, bi)
			}
		}
	}
	return nil
}

// frame takes a dirty-page frame from the view's free list, or allocates
// one. Recycled frames have cleared bitmaps (releaseFrame's contract); words
// and twin are fully overwritten by the caller.
func (v *View) frame() *dirtyPage {
	if n := len(v.free); n > 0 {
		d := v.free[n-1]
		v.free[n-1] = nil
		v.free = v.free[:n-1]
		v.frameHits++
		return d
	}
	v.frameMiss++
	return v.h.newFrame()
}

// releaseFrame returns a frame to the free list with its bitmap cleared.
func (v *View) releaseFrame(d *dirtyPage) {
	clear(d.dirty)
	v.free = append(v.free, d)
}

// clearDirty recycles every dirty frame and empties the dirty index.
func (v *View) clearDirty() {
	for _, pi := range v.dirtyIdx {
		v.releaseFrame(v.dirtyTab[pi])
		v.dirtyTab[pi] = nil
	}
	v.dirtyIdx = v.dirtyIdx[:0]
}

// invalidateClean discards every cached clean resolution in O(1) by bumping
// the generation stamp.
func (v *View) invalidateClean() { v.gen++ }

// resolve returns the committed page for pi at the view's base, caching the
// resolution under the current generation.
func (v *View) resolve(pi int) *page {
	if v.cleanGen[pi] == v.gen {
		return v.cleanTab[pi]
	}
	p := v.h.pageAt(pi, v.base.Load())
	v.cleanTab[pi] = p
	v.cleanGen[pi] = v.gen
	return p
}

// resolveMap is resolve for the map-backed oracle.
func (v *View) resolveMap(pi int) *page {
	if p, ok := v.mt.clean[pi]; ok {
		return p
	}
	p := v.h.pageAt(pi, v.base.Load())
	v.mt.clean[pi] = p
	return p
}

// Load reads addr through the view: private copy if the page is dirty,
// otherwise the newest committed version no newer than the base.
func (v *View) Load(addr int64) int64 {
	pi := int(addr >> v.h.pageShift)
	off := addr & v.h.pageMask
	if v.mt != nil {
		if d, ok := v.mt.dirty[pi]; ok {
			return d.words[off]
		}
		return v.resolveMap(pi).words[off]
	}
	if d := v.dirtyTab[pi]; d != nil {
		return d.words[off]
	}
	return v.resolve(pi).words[off]
}

// Store writes addr privately, creating a working copy, twin and dirty
// bitmap on the first write to a page, and marking the written word. Flat
// views draw the frame from the view's free list.
func (v *View) Store(addr, val int64) {
	pi := int(addr >> v.h.pageShift)
	off := addr & v.h.pageMask
	v.unstaged = true
	if v.mt != nil {
		d, ok := v.mt.dirty[pi]
		if !ok {
			base := v.resolveMap(pi)
			d = v.h.newFrame()
			copy(d.words, base.words)
			copy(d.twin, base.words)
			d.baseSeq = base.seq
			v.mt.dirty[pi] = d
		}
		d.words[off] = val
		d.mark(off)
		return
	}
	d := v.dirtyTab[pi]
	if d == nil {
		base := v.resolve(pi)
		d = v.frame()
		copy(d.words, base.words)
		copy(d.twin, base.words)
		d.baseSeq = base.seq
		v.dirtyTab[pi] = d
		v.dirtyIdx = append(v.dirtyIdx, pi)
	}
	d.words[off] = val
	d.mark(off)
}

// StoreDirty writes addr like Store, but guarantees the word is treated as
// modified at commit even when the stored value equals the page's base
// contents. Needed when the value was computed against state newer than the
// view's base (irrevocable atomics), where a "silent" store must still win
// the merge.
func (v *View) StoreDirty(addr, val int64) {
	v.Store(addr, val)
	pi := int(addr >> v.h.pageShift)
	off := addr & v.h.pageMask
	var d *dirtyPage
	if v.mt != nil {
		d = v.mt.dirty[pi]
	} else {
		d = v.dirtyTab[pi]
	}
	if d.twin[off] == val {
		d.twin[off] = ^val
	}
}

// newPageLocked takes a published-page frame from the shard's pool
// (refilled by chain trimming) or allocates one, counting the outcome into
// hits/misses. Caller holds s.mu; the returned frame's words are
// overwritten by the caller before publication.
func (h *Heap) newPageLocked(s *heapShard, seq int64, hits, misses *int64) *page {
	if n := len(s.pagePool); n > 0 {
		p := s.pagePool[n-1]
		s.pagePool[n-1] = nil
		s.pagePool = s.pagePool[:n-1]
		p.seq = seq
		p.prev.Store(nil)
		*hits++
		return p
	}
	*misses++
	return &page{seq: seq, words: make([]int64, h.pageWords)}
}

// commitPage merges one dirty page onto its head version and publishes the
// result, returning the number of merged words (0 means every store was
// silent and nothing was published). Caller holds the mutex of page pi's
// shard s.
func (h *Heap) commitPage(s *heapShard, pi int, d *dirtyPage, newSeq int64, scanned, pageHits, pageMisses *int64) int {
	head := h.slots[pi].Load()
	var merged *page
	n := 0
	if h.legacyDiff {
		*scanned += int64(len(d.words))
		for i, w := range d.words {
			if w != d.twin[i] {
				if merged == nil {
					merged = h.newPageLocked(s, newSeq, pageHits, pageMisses)
					copy(merged.words, head.words)
				}
				merged.words[i] = w
				n++
			}
		}
	} else {
		for bi, mask := range d.dirty {
			for mask != 0 {
				i := bi<<6 + bits.TrailingZeros64(mask)
				mask &= mask - 1
				*scanned++
				if d.words[i] != d.twin[i] {
					if merged == nil {
						merged = h.newPageLocked(s, newSeq, pageHits, pageMisses)
						copy(merged.words, head.words)
					}
					merged.words[i] = d.words[i]
					n++
				}
			}
		}
	}
	if merged == nil {
		return 0 // page dirtied but all stores were silent
	}
	merged.prev.Store(head)
	h.slots[pi].Store(merged)
	return n
}

// Commit publishes the view's modifications: for every dirty page, the words
// that differ from the twin are merged onto the current head version, and a
// new page version is linked in. Under dirty tracking (the default) only the
// bitmap's marked words are examined; under WithLegacyDiffCommit every word
// of the page is. The view is re-based on the new committed state and its
// dirty set cleared — flat views recycle their frames, and trimmed-off page
// versions refill their shards' published-page pools. Returns the new
// sequence number and the number of words merged.
//
// Publication locks one shard at a time: each dirty page is merged and
// trimmed under the mutex of the shard owning it, with consecutive dirty
// pages in the same shard sharing one acquisition. The committed sequence is
// advanced only after every page is published, so a view registering
// concurrently still bases on a fully published state.
//
// Callers must serialize commits deterministically (all engines here commit
// while holding the turn); the shard mutexes only protect the data
// structures.
func (v *View) Commit() (seq int64, changed int) {
	h := v.h
	// Deferred-publication rule: a physical commit first applies every
	// outstanding stage — the view's own included, at its reserved sequence,
	// so the traced elided publications reach the chains with exactly the
	// values the trace promised — and only then merges the delta written
	// since the last publication event at the new sequence.
	h.flushStages(nil, flushAll)
	oldBase := v.base.Load()
	newSeq := h.seq.Load() + 1
	scanned := int64(0)
	pages := int64(0)
	batches := int64(0)
	var pageHits, pageMisses int64
	if v.mt != nil {
		//lazydet:nondeterministic pages publish independently into per-page slots; commit order within one commit is unobservable
		for pi, d := range v.mt.dirty {
			s := h.shardOf(pi)
			s.mu.Lock()
			batches++
			n := h.commitPage(s, pi, d, newSeq, &scanned, &pageHits, &pageMisses)
			if n != 0 {
				pages++
				changed += n
				if h.trim {
					h.trimChainLocked(s, h.slots[pi].Load(), h.shardFloor(s))
				}
			}
			s.mu.Unlock()
		}
	} else {
		cur := -1
		for _, pi := range v.dirtyIdx {
			if si := pi >> h.ppsShift; si != cur {
				if cur >= 0 {
					h.shards[cur].mu.Unlock()
				}
				h.shards[si].mu.Lock()
				cur = si
				batches++
			}
			s := &h.shards[cur]
			n := h.commitPage(s, pi, v.dirtyTab[pi], newSeq, &scanned, &pageHits, &pageMisses)
			if n == 0 {
				continue
			}
			pages++
			changed += n
			if h.trim {
				h.trimChainLocked(s, h.slots[pi].Load(), h.shardFloor(s))
			}
		}
		if cur >= 0 {
			h.shards[cur].mu.Unlock()
		}
	}
	h.seq.Store(newSeq)
	h.commits.Add(1)
	h.pagesWritten.Add(pages)
	h.wordsMerged.Add(int64(changed))
	h.wordsScanned.Add(scanned)
	frameHits, frameMiss := v.frameHits, v.frameMiss
	if frameHits != 0 || frameMiss != 0 {
		h.frameHits.Add(frameHits)
		h.frameMisses.Add(frameMiss)
		v.frameHits, v.frameMiss = 0, 0
	}
	if pageHits != 0 || pageMisses != 0 {
		h.pageHits.Add(pageHits)
		h.pageMisses.Add(pageMisses)
	}
	if h.tel != nil {
		h.tel.Count("vheap.commits", 1)
		h.tel.Count("vheap.pages_committed", pages)
		h.tel.Count("vheap.words_committed", int64(changed))
		h.tel.Count("vheap.words_scanned", scanned)
		h.tel.Count("vheap.shard_batches", batches)
		h.tel.Observe("vheap.commit_words", int64(changed))
		if frameHits != 0 {
			h.tel.Count("vheap.frame_pool_hits", frameHits)
		}
		if frameMiss != 0 {
			h.tel.Count("vheap.frame_pool_misses", frameMiss)
		}
		if pageHits != 0 {
			h.tel.Count("vheap.page_pool_hits", pageHits)
		}
		if pageMisses != 0 {
			h.tel.Count("vheap.page_pool_misses", pageMisses)
		}
	}
	v.base.Store(newSeq)
	h.noteRebase(oldBase)
	v.unstaged = false
	if v.mt != nil {
		clear(v.mt.dirty)
		clear(v.mt.clean)
	} else {
		v.clearDirty()
		v.invalidateClean()
	}
	return newSeq, changed
}

// trimChainLocked cuts the version chain below the newest version whose seq
// is <= floor: no live view can need anything older. Readers concurrently
// walking the chain hold bases >= floor, so they never traverse past the new
// terminal node — which is what makes the cut-off tail unreachable and its
// frames safe to recycle into the shard's page pool (the shared zero page
// excepted: it can sit in many chains at once). The floor is recorded as the
// shard's lastFloor for the monotonicity audit. Caller holds s.mu; head must
// belong to shard s.
func (h *Heap) trimChainLocked(s *heapShard, head *page, floor int64) {
	s.lastFloor = floor
	p := head
	for p.seq > floor {
		prev := p.prev.Load()
		if prev == nil {
			return
		}
		p = prev
	}
	// p is the newest version <= floor; it becomes the terminal node, and
	// everything below it is unreachable from this chain.
	tail := p.prev.Load()
	p.prev.Store(nil)
	if h.mapViews {
		return // the oracle keeps the original non-pooling behavior
	}
	for q := tail; q != nil; {
		next := q.prev.Load()
		q.prev.Store(nil)
		if q != h.zero {
			s.pagePool = append(s.pagePool, q)
		}
		q = next
	}
}

// Update re-bases the view on the newest committed state. The dirty set must
// be empty (engines always commit or revert before updating).
func (v *View) Update() {
	if v.DirtyPages() != 0 {
		panic("vheap: Update with non-empty dirty set")
	}
	v.h.flushStages(v, flushAll)
	oldBase := v.base.Load()
	v.base.Store(v.h.seq.Load())
	v.h.noteRebase(oldBase)
	if v.mt != nil {
		clear(v.mt.clean)
	} else {
		v.invalidateClean()
	}
}

// UpdateTo re-bases the view on a specific committed sequence, used when a
// woken thread must adopt the exact state its waker published (barrier
// releases, thread spawns): re-basing on "newest" at wake time would depend
// on wall-clock timing and break determinism.
func (v *View) UpdateTo(seq int64) {
	if v.DirtyPages() != 0 {
		panic("vheap: UpdateTo with non-empty dirty set")
	}
	// Bounded flush: UpdateTo executes at a wall-clock wake moment, so it may
	// only consume stages at or below the pinned sequence — all of which were
	// settled at their owners' turns, making this a deterministic no-op.
	v.h.flushStages(nil, seq)
	cur := v.base.Load()
	if seq < cur {
		panic(fmt.Sprintf("vheap: UpdateTo(%d) would move the base backwards from %d", seq, cur))
	}
	v.base.Store(seq)
	v.h.noteRebase(cur)
	if v.mt != nil {
		clear(v.mt.clean)
	} else {
		v.invalidateClean()
	}
}

// Revert discards all private modifications and re-bases the view on the
// newest committed state, as LazyDet does when a speculation run fails.
// It returns the number of discarded (non-silent) dirty words.
func (v *View) Revert() (discarded int) {
	// A full revert discards the entire dirty set, which may include words
	// whose deferred publication is already in the trace; applying every
	// outstanding stage (own included) first keeps those publications — they
	// are committed state, not private modifications.
	v.h.flushStages(nil, flushAll)
	v.unstaged = false
	discarded = v.DirtyWords()
	oldBase := v.base.Load()
	v.base.Store(v.h.seq.Load())
	v.h.noteRebase(oldBase)
	if v.mt != nil {
		clear(v.mt.dirty)
		clear(v.mt.clean)
	} else {
		v.clearDirty()
		v.invalidateClean()
	}
	return discarded
}

// DirtySnapshot is a deep copy of a view's private modifications, taken when
// a speculation run begins so that a revert can restore the thread's
// pre-speculation writes (which were made before the run and must survive
// its failure). Snapshots are reusable: SnapshotDirtyInto recycles the
// snapshot's frames across speculation runs, so steady-state BEGINs
// allocate nothing.
type DirtySnapshot struct {
	pis   []int
	pages []*dirtyPage // deep copies, parallel to pis
	spare []*dirtyPage // retained frames not used by the current contents
	// cleanPis records frames that had no marked words at snapshot time —
	// frames retained across an elided publication, whose twin was
	// re-snapshotted to the frame values at the last publication event and
	// is immutable during a speculative run. Such a frame needs no deep
	// copy at BEGIN: a revert restores its words from its own twin and
	// clears its marks. This keeps the snapshot cost of a retained dirty
	// set (the elision steady state) at zero page copies instead of one
	// per retained frame per speculation attempt.
	cleanPis []int
	words    int
	// unstaged preserves the view's writes-since-last-publication flag, so a
	// revert restores the elision machinery's delta tracking along with the
	// dirty set.
	unstaged bool
}

// Words returns the number of non-silent dirty words in the snapshot.
func (s *DirtySnapshot) Words() int { return s.words }

// frame takes a snapshot-owned frame from the spare list or allocates one.
func (s *DirtySnapshot) frame(h *Heap) *dirtyPage {
	if n := len(s.spare); n > 0 {
		d := s.spare[n-1]
		s.spare[n-1] = nil
		s.spare = s.spare[:n-1]
		return d
	}
	return h.newFrame()
}

// copyInto deep-copies src over dst, bitmap and base stamp included.
func copyInto(dst, src *dirtyPage) {
	copy(dst.words, src.words)
	copy(dst.twin, src.twin)
	copy(dst.dirty, src.dirty)
	dst.baseSeq = src.baseSeq
}

// SnapshotDirty deep-copies the view's dirty set into a fresh snapshot.
func (v *View) SnapshotDirty() *DirtySnapshot { return v.SnapshotDirtyInto(nil) }

// SnapshotDirtyInto deep-copies the view's dirty set into s, reusing its
// page frames and slices; a nil s allocates a fresh snapshot. The returned
// snapshot is s (or the fresh one). Frames the previous contents used but
// the new contents do not are retained on the snapshot's spare list, so
// alternating between large and small dirty sets still reaches a
// steady state with no allocation.
func (v *View) SnapshotDirtyInto(s *DirtySnapshot) *DirtySnapshot {
	if s == nil {
		s = new(DirtySnapshot)
	}
	s.spare = append(s.spare, s.pages...)
	for i := range s.pages {
		s.pages[i] = nil
	}
	s.pages = s.pages[:0]
	s.pis = s.pis[:0]
	s.cleanPis = s.cleanPis[:0]
	s.words = 0
	s.unstaged = v.unstaged
	// A frame with no marked words — retained across an elided publication,
	// its twin re-snapshotted to the frame values at that publication event —
	// is recorded by page number only: the twin is immutable for the
	// snapshot's lifetime (stores touch words and marks; twins change only at
	// publication events, which cannot happen inside a speculative run), so
	// RevertTo restores the frame from its own twin without a deep copy here.
	if v.mt != nil {
		//lazydet:nondeterministic order-independent deep copy; the snapshot order only decides which recycled frame holds which page, and RevertTo reinstates by page number
		for pi, d := range v.mt.dirty {
			if !hasMarks(d) {
				s.cleanPis = append(s.cleanPis, pi)
				continue
			}
			dst := s.frame(v.h)
			copyInto(dst, d)
			s.pis = append(s.pis, pi)
			s.pages = append(s.pages, dst)
			s.words += diffWords(d)
		}
		return s
	}
	for _, pi := range v.dirtyIdx {
		d := v.dirtyTab[pi]
		if !hasMarks(d) {
			s.cleanPis = append(s.cleanPis, pi)
			continue
		}
		dst := s.frame(v.h)
		copyInto(dst, d)
		s.pis = append(s.pis, pi)
		s.pages = append(s.pages, dst)
		s.words += diffWords(d)
	}
	return s
}

// hasMarks reports whether any word of the frame is marked written since the
// last publication event.
func hasMarks(d *dirtyPage) bool {
	for _, m := range d.dirty {
		if m != 0 {
			return true
		}
	}
	return false
}

// RevertTo discards the run's modifications and reinstates the dirty set
// captured at the run's begin. The view keeps its base (it never advanced
// during the run), so after RevertTo the view is exactly as it was when the
// snapshot was taken. Returns the number of discarded speculative words
// (the run's change set, net of the preserved pre-run writes).
func (v *View) RevertTo(s *DirtySnapshot) (discarded int) {
	discarded = v.DirtyWords() - s.words
	if discarded < 0 {
		discarded = 0
	}
	v.unstaged = s.unstaged
	// Frames recorded clean restore from their own immutable twins; frames
	// the snapshot deep-copied reinstate into the frame already holding the
	// page (no publication happened during the run, so a snapshotted page's
	// frame is still live); frames for pages the run dirtied after the
	// snapshot are released. The snapKeep mark makes the sweep linear.
	if v.mt != nil {
		for _, pi := range s.cleanPis {
			d := v.mt.dirty[pi]
			copy(d.words, d.twin)
			clear(d.dirty)
			d.snapKeep = true
		}
		for i, pi := range s.pis {
			d := v.mt.dirty[pi]
			if d == nil {
				d = v.h.newFrame()
				v.mt.dirty[pi] = d
			}
			copyInto(d, s.pages[i])
			d.snapKeep = true
		}
		//lazydet:nondeterministic order-independent sweep; each entry is kept or deleted on its own mark
		for pi, d := range v.mt.dirty {
			if d.snapKeep {
				d.snapKeep = false
				continue
			}
			delete(v.mt.dirty, pi)
		}
		return discarded
	}
	for _, pi := range s.cleanPis {
		d := v.dirtyTab[pi]
		copy(d.words, d.twin)
		clear(d.dirty)
		d.snapKeep = true
	}
	var missing []int
	for i, pi := range s.pis {
		d := v.dirtyTab[pi]
		if d == nil {
			missing = append(missing, i)
			continue
		}
		copyInto(d, s.pages[i])
		d.snapKeep = true
	}
	n := 0
	for _, pi := range v.dirtyIdx {
		d := v.dirtyTab[pi]
		if d.snapKeep {
			d.snapKeep = false
			v.dirtyIdx[n] = pi
			n++
			continue
		}
		v.releaseFrame(d)
		v.dirtyTab[pi] = nil
	}
	v.dirtyIdx = v.dirtyIdx[:n]
	for _, i := range missing {
		pi := s.pis[i]
		d := v.frame()
		copyInto(d, s.pages[i])
		v.dirtyTab[pi] = d
		v.dirtyIdx = append(v.dirtyIdx, pi)
	}
	return discarded
}
