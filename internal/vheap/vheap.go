// Package vheap implements the versioned shared memory substrate that gives
// the strong-determinism engines their thread isolation. It is a user-space
// reimplementation of CONVERSION (Merrifield & Eriksson, EuroSys'13), the
// multi-version memory system LazyDet and Consequence are built on:
//
//   - Shared memory is an array of 64-bit words divided into fixed-size
//     pages.
//   - Each page slot holds a central version list: an immutable chain of
//     page versions, newest first, each tagged with the commit sequence
//     number that produced it.
//   - A thread reads and writes through a View. Reads resolve against the
//     newest page version no newer than the view's base sequence; the first
//     write to a page makes a private working copy plus a "twin" (a snapshot
//     of the base contents used for diffing) and a dirty-word bitmap. Every
//     store marks its word in the bitmap.
//   - Commit publishes, for every dirty page, the marked words that differ
//     from the twin, merged word-by-word onto the current head version.
//     Commit work is therefore proportional to the number of words written,
//     not the page size. WithLegacyDiffCommit restores the original
//     full-page twin scan as a differential-test oracle. Commits are
//     serialized (in this repository, by the deterministic turn), so the
//     merge order — and therefore the heap contents — is deterministic.
//   - Update re-bases a view on the newest committed state; Revert discards
//     all private modifications. Both are O(dirty set).
//
// Version chains are trimmed below the oldest base sequence still referenced
// by a live view. This is the space advantage the paper ascribes to DDRF
// (§4.2): the heap holds one version per page plus short tails for in-flight
// views (t views → at most t extra bases), rather than the l+t versions a
// DLRC-style system must retain. WithFullVersionChains disables trimming so
// the DLRC accounting experiment can measure the difference.
//
// Word-level twin diffing gives the same write-isolation semantics as the
// paper's system, including its documented limitation: a "silent store" (a
// store that writes the value already present) produces no diff and is lost
// if another thread commits a different value for the same word. The bitmap
// commit path preserves this exactly — a marked word still merges only when
// it differs from the twin — so both commit paths are byte-identical.
package vheap

import (
	"fmt"
	"hash/fnv"
	"math"
	"math/bits"
	"sync"
	"sync/atomic"

	"lazydet/internal/telemetry"
)

// DefaultPageWords is the default page size in 64-bit words (2 KiB pages).
const DefaultPageWords = 256

// page is one immutable version of one page, linked into that slot's
// version list. Only the prev pointer mutates (for trimming), hence atomic.
type page struct {
	seq   int64 // commit sequence that created this version
	prev  atomic.Pointer[page]
	words []int64
}

// Heap is the shared versioned memory.
type Heap struct {
	mu        sync.Mutex // serializes commits, trims and view registration
	pageWords int
	pageShift uint
	pageMask  int64
	npages    int
	seq       atomic.Int64 // newest committed sequence
	slots     []atomic.Pointer[page]

	views map[*View]struct{} // live views, for trim floor computation

	// Trim-floor cache: recomputing the floor is an O(views) map scan under
	// mu on every commit, so Commit reuses the last computed value until it
	// is invalidated — by view registration/unregistration, or by a re-base
	// of a view that sat at (or below) the cached floor. View bases only
	// move forward, and NewView bases at the newest commit (>= every floor),
	// so a cached floor is always a lower bound of the true floor: stale
	// only ever means trimming less, never over-trimming.
	floorCache atomic.Int64
	floorValid atomic.Bool

	commits      atomic.Int64 // total commits (stats)
	pagesWritten atomic.Int64 // total page versions published (stats)
	wordsMerged  atomic.Int64 // total words merged across commits (stats)
	wordsScanned atomic.Int64 // total words examined by commits to find them

	trim       bool // trim chains below the oldest live base (DDRF coalescing)
	legacyDiff bool // commit by full twin scan instead of the dirty bitmap

	// tel, if non-nil, receives commit metrics ("vheap.*" counters and the
	// commit-size histogram). Nil costs one pointer compare per commit.
	tel *telemetry.Recorder
}

// Option configures a Heap.
type Option func(*heapConfig)

type heapConfig struct {
	pageWords  int
	keepChains bool
	legacyDiff bool
	tel        *telemetry.Recorder
}

// WithPageWords sets the page size in words; it must be a power of two.
func WithPageWords(n int) Option { return func(c *heapConfig) { c.pageWords = n } }

// WithFullVersionChains retains every page version rather than trimming
// chains to the versions still reachable by a live view. Used by the
// DLRC-vs-DDRF version accounting experiment.
func WithFullVersionChains() Option { return func(c *heapConfig) { c.keepChains = true } }

// WithLegacyDiffCommit makes Commit find modified words by scanning every
// word of every dirty page against its twin, as the original CONVERSION
// reimplementation did, instead of walking the dirty-word bitmap. The two
// paths publish byte-identical heaps; this one exists as the differential
// oracle the bitmap path is tested against, and to measure what the bitmap
// saves (see Stats().WordsScanned).
func WithLegacyDiffCommit() Option { return func(c *heapConfig) { c.legacyDiff = true } }

// WithTelemetry publishes the heap's commit-path measurements into rec:
// cumulative "vheap.commits", "vheap.pages_committed", "vheap.words_committed"
// and "vheap.words_scanned" counters, and a "vheap.commit_words" histogram of
// per-commit merged word counts. All of them are deterministic for
// deterministic engines (commit contents and order are turn-ordered).
func WithTelemetry(rec *telemetry.Recorder) Option {
	return func(c *heapConfig) { c.tel = rec }
}

// New creates a heap of the given size in words. The initial contents are
// all zero at sequence 0.
func New(words int64, opts ...Option) *Heap {
	cfg := heapConfig{pageWords: DefaultPageWords}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.pageWords <= 0 || cfg.pageWords&(cfg.pageWords-1) != 0 {
		panic(fmt.Sprintf("vheap: page size %d is not a positive power of two", cfg.pageWords))
	}
	shift := uint(0)
	for 1<<shift != cfg.pageWords {
		shift++
	}
	np := int((words + int64(cfg.pageWords) - 1) >> shift)
	if np == 0 {
		np = 1
	}
	h := &Heap{
		pageWords:  cfg.pageWords,
		pageShift:  shift,
		pageMask:   int64(cfg.pageWords - 1),
		npages:     np,
		slots:      make([]atomic.Pointer[page], np),
		views:      make(map[*View]struct{}),
		trim:       !cfg.keepChains,
		legacyDiff: cfg.legacyDiff,
		tel:        cfg.tel,
	}
	zero := make([]int64, cfg.pageWords)
	for i := range h.slots {
		h.slots[i].Store(&page{seq: 0, words: zero}) // shared zero page; copied on first write
	}
	return h
}

// Words returns the heap size in words.
func (h *Heap) Words() int64 { return int64(h.npages) * int64(h.pageWords) }

// PageWords returns the page size in words.
func (h *Heap) PageWords() int { return h.pageWords }

// Seq returns the newest committed sequence number.
func (h *Heap) Seq() int64 { return h.seq.Load() }

// SetInitial writes directly into the committed state. It must only be used
// before any views exist (to load a workload's initial data).
func (h *Heap) SetInitial(addr, val int64) {
	pi := addr >> h.pageShift
	off := addr & h.pageMask
	h.mu.Lock()
	defer h.mu.Unlock()
	head := h.slots[pi].Load()
	w := make([]int64, h.pageWords)
	copy(w, head.words)
	w[off] = val
	np := &page{seq: head.seq, words: w}
	np.prev.Store(head.prev.Load())
	h.slots[pi].Store(np)
}

// ReadCommitted returns the committed value of addr at the newest version.
// It is used by validation and by the harness after a run completes.
func (h *Heap) ReadCommitted(addr int64) int64 {
	p := h.slots[addr>>h.pageShift].Load()
	return p.words[addr&h.pageMask]
}

// pageAt resolves the newest page version with seq <= base for page index pi.
func (h *Heap) pageAt(pi int, base int64) *page {
	p := h.slots[pi].Load()
	for p.seq > base {
		prev := p.prev.Load()
		if prev == nil {
			panic("vheap: version older than base was trimmed while still referenced")
		}
		p = prev
	}
	return p
}

// trimFloorLocked returns the oldest base sequence referenced by any live
// view. Caller holds h.mu.
func (h *Heap) trimFloorLocked() int64 {
	floor := int64(math.MaxInt64)
	//lazydet:nondeterministic order-independent min-reduction over the live-view set
	for v := range h.views {
		if b := v.base.Load(); b < floor {
			floor = b
		}
	}
	return floor
}

// noteRebase invalidates the cached trim floor when a view moves its base
// forward from oldBase: if that view sat at (or below) the cached floor it
// may have been the floor holder, so the next commit must recompute. Views
// strictly above the cached floor cannot lower it by moving forward.
func (h *Heap) noteRebase(oldBase int64) {
	if h.floorValid.Load() && oldBase <= h.floorCache.Load() {
		h.floorValid.Store(false)
	}
}

// Hash returns an FNV-1a hash of the newest committed heap contents. Two
// deterministic runs of the same program must produce equal hashes.
func (h *Heap) Hash() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	f := fnv.New64a()
	var buf [8]byte
	for i := range h.slots {
		p := h.slots[i].Load()
		for _, w := range p.words {
			buf[0] = byte(w)
			buf[1] = byte(w >> 8)
			buf[2] = byte(w >> 16)
			buf[3] = byte(w >> 24)
			buf[4] = byte(w >> 32)
			buf[5] = byte(w >> 40)
			buf[6] = byte(w >> 48)
			buf[7] = byte(w >> 56)
			f.Write(buf[:])
		}
	}
	return f.Sum64()
}

// CommitStats are cumulative counters over a heap's commit path.
type CommitStats struct {
	// Commits is the number of Commit calls.
	Commits int64
	// Pages is the number of page versions published.
	Pages int64
	// Words is the number of words merged onto head versions — the change
	// set size the paper's Figure 12 plots.
	Words int64
	// WordsScanned is the number of words commits examined to find the
	// merged ones: per dirty page, the page size under the legacy full
	// twin diff, or the bitmap's population count under dirty tracking.
	// The ratio WordsScanned/Words is the overhead of locating a change.
	WordsScanned int64
}

// Stats returns cumulative commit statistics.
func (h *Heap) Stats() CommitStats {
	return CommitStats{
		Commits:      h.commits.Load(),
		Pages:        h.pagesWritten.Load(),
		Words:        h.wordsMerged.Load(),
		WordsScanned: h.wordsScanned.Load(),
	}
}

// LiveVersions counts page versions currently reachable from the version
// lists. With full chains retained this measures the cost that DLRC-style
// systems pay (paper §4.2).
func (h *Heap) LiveVersions() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	n := 0
	for i := range h.slots {
		for p := h.slots[i].Load(); p != nil; p = p.prev.Load() {
			n++
		}
	}
	return n
}

// Audit verifies the heap's structural invariants: every page version chain
// is strictly decreasing in commit sequence, no version is newer than the
// heap's committed sequence, and — with trimming enabled — the oldest
// retained version of every chain is at or below the trim floor (the minimum
// base of the live views), so no live view's base has been trimmed out from
// under it. Returns a descriptive error on the first breach. Used by the
// invariant checker (internal/invariant).
func (h *Heap) Audit() error {
	h.mu.Lock()
	defer h.mu.Unlock()
	top := h.seq.Load()
	floor := h.trimFloorLocked()
	if h.floorValid.Load() && h.floorCache.Load() > floor {
		return fmt.Errorf("vheap: cached trim floor %d is above the true floor %d — trimming could cut a live view's base",
			h.floorCache.Load(), floor)
	}
	//lazydet:nondeterministic order-independent audit: every view is checked, the first offender differs only in the error text
	for v := range h.views {
		if b := v.base.Load(); b > top {
			return fmt.Errorf("vheap: live view base %d is ahead of the newest commit %d", b, top)
		}
	}
	for pi := range h.slots {
		p := h.slots[pi].Load()
		if p.seq > top {
			return fmt.Errorf("vheap: page %d head version %d is ahead of the newest commit %d", pi, p.seq, top)
		}
		oldest := p.seq
		for q := p.prev.Load(); q != nil; q = q.prev.Load() {
			if q.seq >= oldest {
				return fmt.Errorf("vheap: page %d version chain is not strictly decreasing (%d then %d)", pi, oldest, q.seq)
			}
			oldest = q.seq
		}
		if h.trim && len(h.views) > 0 && oldest > floor {
			return fmt.Errorf("vheap: page %d oldest retained version %d is above the trim floor %d — a live view's base was trimmed",
				pi, oldest, floor)
		}
	}
	return nil
}

// dirtyPage is a view's private working copy of one page. dirty has one bit
// per word, set by every store; commit walks the set bits instead of
// re-diffing the whole page against the twin.
type dirtyPage struct {
	words []int64
	twin  []int64 // snapshot of the base contents at first write
	dirty []uint64
}

// mark records a write to word off.
func (d *dirtyPage) mark(off int64) { d.dirty[off>>6] |= 1 << (uint(off) & 63) }

// marked reports whether word i has been written.
func (d *dirtyPage) marked(i int) bool { return d.dirty[i>>6]&(1<<(uint(i)&63)) != 0 }

// View is one thread's isolated window onto the heap.
type View struct {
	h     *Heap
	base  atomic.Int64 // committed sequence the view reads at
	dirty map[int]*dirtyPage
	// clean caches pages already resolved at the current base, so reads
	// against a stale base (a speculating thread that has not re-based
	// for a while) do not re-walk version chains. Page versions are
	// immutable and trimming never cuts above a live base, so a cached
	// resolution stays valid until the base moves.
	clean map[int]*page
}

// NewView creates a view based on the newest committed state.
func (h *Heap) NewView() *View {
	v := &View{h: h, dirty: make(map[int]*dirtyPage), clean: make(map[int]*page)}
	h.mu.Lock()
	v.base.Store(h.seq.Load())
	h.views[v] = struct{}{}
	h.floorValid.Store(false)
	h.mu.Unlock()
	return v
}

// Close unregisters the view so its base no longer pins old versions.
func (v *View) Close() {
	v.h.mu.Lock()
	delete(v.h.views, v)
	v.h.floorValid.Store(false)
	v.h.mu.Unlock()
}

// BaseSeq returns the committed sequence the view is based on.
func (v *View) BaseSeq() int64 { return v.base.Load() }

// DirtyPages returns the number of privately modified pages.
func (v *View) DirtyPages() int { return len(v.dirty) }

// DirtyWords returns the number of words that differ from the twins — the
// "change set size" reported in the paper's Figure 12. Silent stores (marked
// but equal to the twin) do not count, under either commit path.
func (v *View) DirtyWords() int {
	n := 0
	//lazydet:nondeterministic order-independent sum over the dirty-page set
	for _, d := range v.dirty {
		n += diffWords(d)
	}
	return n
}

// diffWords counts words differing from the twin, walking only marked words
// (an unmarked word was never stored to, so it cannot differ).
func diffWords(d *dirtyPage) int {
	n := 0
	for bi, mask := range d.dirty {
		for mask != 0 {
			i := bi<<6 + bits.TrailingZeros64(mask)
			mask &= mask - 1
			if d.words[i] != d.twin[i] {
				n++
			}
		}
	}
	return n
}

// AuditDirty verifies the view's dirty tracking: every word of every dirty
// page that differs from its twin must be marked in the bitmap — otherwise
// the bitmap commit would silently drop that write. (The converse, a marked
// word equal to its twin, is a legal silent store.) Must be called by the
// view's owning thread, before Commit clears the dirty set. Used by the
// invariant checker.
func (v *View) AuditDirty() error {
	//lazydet:nondeterministic order-independent audit: every page is checked, the first offender differs only in the error text
	for pi, d := range v.dirty {
		for i := range d.words {
			if d.words[i] != d.twin[i] && !d.marked(i) {
				return fmt.Errorf("vheap: page %d word %d differs from its twin (%d vs %d) but is not marked dirty — the bitmap commit would drop this write",
					pi, i, d.words[i], d.twin[i])
			}
		}
	}
	return nil
}

// resolve returns the committed page for pi at the view's base, caching the
// resolution.
func (v *View) resolve(pi int) *page {
	if p, ok := v.clean[pi]; ok {
		return p
	}
	p := v.h.pageAt(pi, v.base.Load())
	v.clean[pi] = p
	return p
}

// Load reads addr through the view: private copy if the page is dirty,
// otherwise the newest committed version no newer than the base.
func (v *View) Load(addr int64) int64 {
	pi := int(addr >> v.h.pageShift)
	if d, ok := v.dirty[pi]; ok {
		return d.words[addr&v.h.pageMask]
	}
	return v.resolve(pi).words[addr&v.h.pageMask]
}

// Store writes addr privately, creating a working copy, twin and dirty
// bitmap on the first write to a page, and marking the written word.
func (v *View) Store(addr, val int64) {
	pi := int(addr >> v.h.pageShift)
	d, ok := v.dirty[pi]
	if !ok {
		base := v.resolve(pi)
		w := make([]int64, v.h.pageWords)
		copy(w, base.words)
		t := make([]int64, v.h.pageWords)
		copy(t, base.words)
		d = &dirtyPage{words: w, twin: t, dirty: make([]uint64, (v.h.pageWords+63)/64)}
		v.dirty[pi] = d
	}
	off := addr & v.h.pageMask
	d.words[off] = val
	d.mark(off)
}

// StoreDirty writes addr like Store, but guarantees the word is treated as
// modified at commit even when the stored value equals the page's base
// contents. Needed when the value was computed against state newer than the
// view's base (irrevocable atomics), where a "silent" store must still win
// the merge.
func (v *View) StoreDirty(addr, val int64) {
	v.Store(addr, val)
	pi := int(addr >> v.h.pageShift)
	off := addr & v.h.pageMask
	if d := v.dirty[pi]; d.twin[off] == val {
		d.twin[off] = ^val
	}
}

// Commit publishes the view's modifications: for every dirty page, the words
// that differ from the twin are merged onto the current head version, and a
// new page version is linked in. Under dirty tracking (the default) only the
// bitmap's marked words are examined; under WithLegacyDiffCommit every word
// of the page is. The view is re-based on the new committed state and its
// dirty set cleared. Returns the new sequence number and the number of words
// merged.
//
// Callers must serialize commits deterministically (all engines here commit
// while holding the turn); the heap mutex only protects the data structures.
func (v *View) Commit() (seq int64, changed int) {
	h := v.h
	oldBase := v.base.Load()
	h.mu.Lock()
	newSeq := h.seq.Load() + 1
	var floor int64 = -1
	if h.trim {
		if h.floorValid.Load() {
			floor = h.floorCache.Load()
		} else {
			floor = h.trimFloorLocked()
			h.floorCache.Store(floor)
			h.floorValid.Store(true)
		}
	}
	scanned := int64(0)
	pages := int64(0)
	//lazydet:nondeterministic pages publish independently into per-page slots; commit order within one commit is unobservable
	for pi, d := range v.dirty {
		head := h.slots[pi].Load()
		var merged []int64
		n := 0
		if h.legacyDiff {
			scanned += int64(len(d.words))
			for i, w := range d.words {
				if w != d.twin[i] {
					if merged == nil {
						merged = make([]int64, h.pageWords)
						copy(merged, head.words)
					}
					merged[i] = w
					n++
				}
			}
		} else {
			for bi, mask := range d.dirty {
				for mask != 0 {
					i := bi<<6 + bits.TrailingZeros64(mask)
					mask &= mask - 1
					scanned++
					if d.words[i] != d.twin[i] {
						if merged == nil {
							merged = make([]int64, h.pageWords)
							copy(merged, head.words)
						}
						merged[i] = d.words[i]
						n++
					}
				}
			}
		}
		if merged == nil {
			continue // page dirtied but all stores were silent
		}
		np := &page{seq: newSeq, words: merged}
		np.prev.Store(head)
		h.slots[pi].Store(np)
		h.pagesWritten.Add(1)
		h.wordsMerged.Add(int64(n))
		pages++
		changed += n
		if h.trim {
			trimChain(np, floor)
		}
	}
	h.seq.Store(newSeq)
	h.commits.Add(1)
	h.wordsScanned.Add(scanned)
	h.mu.Unlock()
	if h.tel != nil {
		h.tel.Count("vheap.commits", 1)
		h.tel.Count("vheap.pages_committed", pages)
		h.tel.Count("vheap.words_committed", int64(changed))
		h.tel.Count("vheap.words_scanned", scanned)
		h.tel.Observe("vheap.commit_words", int64(changed))
	}
	v.base.Store(newSeq)
	h.noteRebase(oldBase)
	clear(v.dirty)
	clear(v.clean)
	return newSeq, changed
}

// trimChain cuts the version chain below the newest version whose seq is
// <= floor: no live view can need anything older. Readers concurrently
// walking the chain hold bases >= floor, so they never traverse past the new
// terminal node.
func trimChain(head *page, floor int64) {
	p := head
	for p.seq > floor {
		prev := p.prev.Load()
		if prev == nil {
			return
		}
		p = prev
	}
	// p is the newest version <= floor; it becomes the terminal node.
	p.prev.Store(nil)
}

// Update re-bases the view on the newest committed state. The dirty set must
// be empty (engines always commit or revert before updating).
func (v *View) Update() {
	if len(v.dirty) != 0 {
		panic("vheap: Update with non-empty dirty set")
	}
	oldBase := v.base.Load()
	v.base.Store(v.h.seq.Load())
	v.h.noteRebase(oldBase)
	clear(v.clean)
}

// UpdateTo re-bases the view on a specific committed sequence, used when a
// woken thread must adopt the exact state its waker published (barrier
// releases, thread spawns): re-basing on "newest" at wake time would depend
// on wall-clock timing and break determinism.
func (v *View) UpdateTo(seq int64) {
	if len(v.dirty) != 0 {
		panic("vheap: UpdateTo with non-empty dirty set")
	}
	cur := v.base.Load()
	if seq < cur {
		panic(fmt.Sprintf("vheap: UpdateTo(%d) would move the base backwards from %d", seq, cur))
	}
	v.base.Store(seq)
	v.h.noteRebase(cur)
	clear(v.clean)
}

// Revert discards all private modifications and re-bases the view on the
// newest committed state, as LazyDet does when a speculation run fails.
// It returns the number of discarded (non-silent) dirty words.
func (v *View) Revert() (discarded int) {
	discarded = v.DirtyWords()
	clear(v.dirty)
	oldBase := v.base.Load()
	v.base.Store(v.h.seq.Load())
	v.h.noteRebase(oldBase)
	clear(v.clean)
	return discarded
}

// DirtySnapshot is a deep copy of a view's private modifications, taken when
// a speculation run begins so that a revert can restore the thread's
// pre-speculation writes (which were made before the run and must survive
// its failure).
type DirtySnapshot struct {
	pages map[int]*dirtyPage
	words int
}

// Words returns the number of non-silent dirty words in the snapshot.
func (s *DirtySnapshot) Words() int { return s.words }

// copyDirtyPage deep-copies one dirty page, bitmap included.
func copyDirtyPage(d *dirtyPage) *dirtyPage {
	w := make([]int64, len(d.words))
	copy(w, d.words)
	tw := make([]int64, len(d.twin))
	copy(tw, d.twin)
	db := make([]uint64, len(d.dirty))
	copy(db, d.dirty)
	return &dirtyPage{words: w, twin: tw, dirty: db}
}

// SnapshotDirty deep-copies the view's dirty set.
func (v *View) SnapshotDirty() *DirtySnapshot {
	s := &DirtySnapshot{pages: make(map[int]*dirtyPage, len(v.dirty))}
	//lazydet:nondeterministic order-independent deep copy into a map
	for pi, d := range v.dirty {
		s.pages[pi] = copyDirtyPage(d)
		s.words += diffWords(d)
	}
	return s
}

// RevertTo discards the run's modifications and reinstates the dirty set
// captured at the run's begin. The view keeps its base (it never advanced
// during the run), so after RevertTo the view is exactly as it was when the
// snapshot was taken. Returns the number of discarded speculative words
// (the run's change set, net of the preserved pre-run writes).
func (v *View) RevertTo(s *DirtySnapshot) (discarded int) {
	discarded = v.DirtyWords() - s.words
	if discarded < 0 {
		discarded = 0
	}
	v.dirty = make(map[int]*dirtyPage, len(s.pages))
	//lazydet:nondeterministic order-independent deep copy into a map
	for pi, d := range s.pages {
		v.dirty[pi] = copyDirtyPage(d)
	}
	return discarded
}
