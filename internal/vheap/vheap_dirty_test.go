package vheap

import (
	"testing"
	"testing/quick"
)

// This file tests the dirty-word bitmap commit path against the legacy
// full-scan diff it replaced: the two must publish byte-identical heaps and
// identical commit statistics (other than words scanned), the bitmap must
// never miss a modified word (AuditDirty), and the whole point — commit
// work proportional to dirty words, not page size — must hold by a wide,
// measured margin.

// mirrorOp applies one deterministic pseudo-random operation to both views.
func mirrorOp(r *uint64, h1, h2 *Heap, v1, v2 *View, words int64) {
	*r = *r*6364136223846793005 + 1442695040888963407
	op := *r >> 60
	*r = *r*6364136223846793005 + 1442695040888963407
	addr := int64(*r>>32) % words
	*r = *r*6364136223846793005 + 1442695040888963407
	val := int64(*r >> 40)
	switch {
	case op < 9: // store, sometimes silent (val repeats across draws rarely)
		v1.Store(addr, val)
		v2.Store(addr, val)
	case op < 11:
		v1.StoreDirty(addr, val)
		v2.StoreDirty(addr, val)
	case op < 13:
		v1.Commit()
		v2.Commit()
	case op < 14:
		v1.Revert()
		v2.Revert()
	default:
		s1 := v1.SnapshotDirty()
		s2 := v2.SnapshotDirty()
		v1.Store((addr+1)%words, val+1)
		v2.Store((addr+1)%words, val+1)
		v1.RevertTo(s1)
		v2.RevertTo(s2)
	}
}

// TestQuickBitmapMatchesLegacyDiff drives a bitmap-committing heap and a
// legacy full-scan heap through identical operation sequences: final
// contents, committed words and published pages must be identical — the
// bitmap path may only change how modified words are found, never which.
func TestQuickBitmapMatchesLegacyDiff(t *testing.T) {
	f := func(seed uint64) bool {
		const words = 256
		h1 := New(words, WithPageWords(32))
		h2 := New(words, WithPageWords(32), WithLegacyDiffCommit())
		v1 := h1.NewView()
		v2 := h2.NewView()
		r := seed
		for i := 0; i < 200; i++ {
			mirrorOp(&r, h1, h2, v1, v2, words)
		}
		v1.Commit()
		v2.Commit()
		if h1.Hash() != h2.Hash() {
			t.Logf("seed %d: bitmap heap hash %x != legacy heap hash %x", seed, h1.Hash(), h2.Hash())
			return false
		}
		s1, s2 := h1.Stats(), h2.Stats()
		if s1.Commits != s2.Commits || s1.Pages != s2.Pages || s1.Words != s2.Words {
			t.Logf("seed %d: stats diverge: bitmap (%d,%d,%d) vs legacy (%d,%d,%d)",
				seed, s1.Commits, s1.Pages, s1.Words, s2.Commits, s2.Pages, s2.Words)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestBitmapPreservesSilentStoreSemantics: a marked word equal to its twin
// must still merge as silent (lost to a concurrent commit), identically
// under both paths.
func TestBitmapPreservesSilentStoreSemantics(t *testing.T) {
	for _, legacy := range []bool{false, true} {
		opts := []Option{WithPageWords(16)}
		if legacy {
			opts = append(opts, WithLegacyDiffCommit())
		}
		h := New(64, opts...)
		h.SetInitial(3, 7)
		a := h.NewView()
		b := h.NewView()
		a.Store(3, 7) // silent: marked in the bitmap, equal to the twin
		b.Store(3, 9)
		b.Commit()
		a.Commit()
		if got := h.ReadCommitted(3); got != 9 {
			t.Fatalf("legacy=%v: word 3 = %d, want 9 (silent store must lose under both paths)", legacy, got)
		}
		// The all-silent page must publish no version under either path.
		if st := h.Stats(); st.Pages != 1 {
			t.Fatalf("legacy=%v: %d pages published, want 1 (a's silent page must publish nothing)", legacy, st.Pages)
		}
	}
}

// TestAuditDirtyCatchesUnmarkedWord corrupts a page's bitmap and checks the
// audit reports the word the bitmap commit would drop.
func TestAuditDirtyCatchesUnmarkedWord(t *testing.T) {
	h := New(64, WithPageWords(16))
	v := h.NewView()
	v.Store(3, 9)
	if err := v.AuditDirty(); err != nil {
		t.Fatalf("clean dirty set audited dirty: %v", err)
	}
	d := v.dirtyTab[0]
	d.dirty[0] = 0 // word 3 differs from its twin but is no longer marked
	if err := v.AuditDirty(); err == nil {
		t.Fatal("unmarked modified word not caught by AuditDirty")
	}
	d.mark(3)
	v.Store(4, 0) // silent store: marked, equal to twin — legal
	if err := v.AuditDirty(); err != nil {
		t.Fatalf("marked silent store flagged: %v", err)
	}
}

// TestCommitScanProportionalToDirtyWords is the tentpole's acceptance
// criterion as a test: at 1%-dirty pages, the bitmap path must examine at
// least 10× fewer words than the legacy full scan (it examines exactly the
// dirty words, so the real ratio here is 100×).
func TestCommitScanProportionalToDirtyWords(t *testing.T) {
	const pageWords = 1024
	const dirtyPerPage = 10 // ~1% of a page
	scanned := func(opts ...Option) int64 {
		h := New(pageWords, append([]Option{WithPageWords(pageWords)}, opts...)...)
		v := h.NewView()
		for c := 0; c < 20; c++ {
			for i := int64(0); i < dirtyPerPage; i++ {
				v.Store(i*97%pageWords, int64(c*100)+i+1)
			}
			v.Commit()
		}
		return h.Stats().WordsScanned
	}
	bitmap := scanned()
	legacy := scanned(WithLegacyDiffCommit())
	if bitmap*10 > legacy {
		t.Fatalf("bitmap commit scanned %d words vs legacy %d — want >=10x reduction at 1%%-dirty pages", bitmap, legacy)
	}
	if want := int64(20 * dirtyPerPage); bitmap != want {
		t.Fatalf("bitmap commit scanned %d words, want exactly %d (the dirty words)", bitmap, want)
	}
	if want := int64(20 * pageWords); legacy != want {
		t.Fatalf("legacy commit scanned %d words, want exactly %d (full pages)", legacy, want)
	}
}

// TestTrimFloorCacheInvalidation: closing the view that pins the trim floor
// must invalidate the cached floor, so the next commit trims the chain tail
// the closed view was holding alive.
func TestTrimFloorCacheInvalidation(t *testing.T) {
	h := New(32, WithPageWords(32))
	pinned := h.NewView() // base 0 pins every version
	w := h.NewView()
	for i := 0; i < 8; i++ {
		w.Store(0, int64(i+1))
		w.Commit() // caches floor 0 — nothing trims
	}
	grown := h.LiveVersions()
	if grown < 8 {
		t.Fatalf("pinned view retained %d versions, want >= 8", grown)
	}
	if err := h.Audit(); err != nil {
		t.Fatalf("audit with cached floor: %v", err)
	}
	pinned.Close() // must invalidate the cached floor
	w.Store(0, 99)
	w.Commit()
	// The commit trims to w's pre-commit base: the new head plus the floor
	// version survive, everything the closed view pinned is gone.
	if got := h.LiveVersions(); got > 2 {
		t.Fatalf("after closing the pinning view, %d versions survive the next commit, want <= 2 (stale floor cache?)", got)
	}
	if err := h.Audit(); err != nil {
		t.Fatalf("audit after invalidation: %v", err)
	}
}

// TestTrimFloorCacheRebase: a view sitting at the floor that re-bases via
// Update must also invalidate the cache.
func TestTrimFloorCacheRebase(t *testing.T) {
	h := New(32, WithPageWords(32))
	lagging := h.NewView()
	w := h.NewView()
	for i := 0; i < 6; i++ {
		w.Store(0, int64(i+1))
		w.Commit()
	}
	lagging.Update() // the floor holder moves forward: cache must drop
	w.Store(0, 77)
	w.Commit()
	if got := h.LiveVersions(); got > 2 {
		t.Fatalf("after the floor holder re-based, %d versions survive, want <= 2", got)
	}
	if err := h.Audit(); err != nil {
		t.Fatal(err)
	}
}
