// Deferred publication ("commit staging"): the heap half of same-owner
// publication elision.
//
// An elided publication reserves a commit sequence number and moves the
// view's *delta* — the words written since its last publication event — into
// a per-view stage instead of merging them onto the version chains: the
// frame bitmaps are cleared and the twins re-snapshotted, so consecutive
// elided publications by the same thread each stage only what the section
// wrote (per-page bitmap OR plus a copy of the freshly marked words), and a
// chain of k same-owner critical sections costs k delta walks and one
// physical commit instead of k commits. The frames are retained unmarked:
// they keep serving the staged values to the owner's loads (and they seed
// re-bases, which overlay the outstanding stage on the new base).
//
// Soundness rests on one rule: every operation that could let another thread
// observe committed state — a physical Commit, an Update/UpdateTo re-base, a
// new view, a committed read, a heap hash, or another view's own staged
// publication — first applies every outstanding stage (except the operating
// view's own) at its reserved sequence. Because every base-advancing
// operation flushes first, no page version can ever exist above an
// outstanding stage's sequence, which makes the head insertion chain-safe,
// and no view can ever base itself past a deferred publication without
// absorbing it. The owner's own physical commit applies its own stage at the
// reserved sequence first, then commits the delta — so every traced commit
// sequence that anyone could have observed reaches the chains with exactly
// the values the trace promised.
//
// Like Commit, staging and flushing are serialized by the caller (all
// engines here publish while holding the deterministic turn); h.stageMu only
// protects the registry so that the defensive flushes on concurrently
// executed paths (barrier re-bases, post-run reads) are memory-safe.
package vheap

import (
	"fmt"
	"math"
	"math/bits"
	"sort"
)

// flushAll is the sequence bound that applies every outstanding stage. Only
// turn-holding operations may flush unbounded: a concurrently executed
// re-base (a barrier wake, a spawned thread's pin) must bound its flush by
// the pinned sequence, or it could consume a stage created at a later turn
// at a wall-clock-dependent moment — making the owner's elision-outcome
// history, and with it the gated elision counters, nondeterministic.
const flushAll = int64(math.MaxInt64)

// stage is one view's deferred publication: deep copies of the dirty pages
// the view had accumulated up to the most recent elided publication, tagged
// with that publication's reserved commit sequence.
type stage struct {
	view *View
	seq  int64 // reserved sequence of the newest elided publication

	pis   []int
	pages []*dirtyPage // deep copies, parallel to pis
	idx   map[int]int  // page number -> index in pis/pages

	queued  bool // registered in the heap's outstanding-stage list
	flushed bool // another thread applied this stage's contents
}

// frame takes a frame for stage contents from the owning view's pool — the
// stage only ever grows and shrinks at the owner's turns, so sharing the pool
// with the view's dirty frames is race-free and keeps staging allocation-free
// once the pool warms up. The map-view oracle keeps its non-pooling behavior.
func (s *stage) frame(h *Heap) *dirtyPage {
	if s.view.mt != nil {
		return h.newFrame()
	}
	return s.view.frame()
}

// reset empties the stage contents, recycling the page frames into the
// owning view's pool. Only the owner calls this (at its next staging after a
// flush), so the flusher never touches the pool.
func (s *stage) reset() {
	for i, d := range s.pages {
		if s.view.mt == nil {
			s.view.releaseFrame(d)
		}
		s.pages[i] = nil
	}
	s.pages = s.pages[:0]
	s.pis = s.pis[:0]
	clear(s.idx)
	s.flushed = false
}

// StagePublish defers the view's publication: it reserves the next commit
// sequence, moves the delta written since the last publication event into the
// view's stage (per-page bitmap OR plus a copy of the marked words, after
// which the frame marks clear and the twins re-snapshot), and re-bases the
// view on the reserved sequence with the frames retained. It returns the
// reserved sequence and true. When nothing was written since the view's last
// publication event it returns (0, false) after re-basing on the newest
// state — exactly the cases where an eager publish would have found an empty
// dirty set and skipped its commit, so the commit-sequence trajectory matches
// the eager path bit for bit. Foreign stages are flushed first either way, so
// the re-base observes every publication it must. Caller must hold the
// deterministic turn.
func (v *View) StagePublish() (int64, bool) {
	h := v.h
	h.flushStages(v, flushAll)
	if !v.unstaged {
		v.rebaseDirty(h.seq.Load())
		return 0, false
	}
	seq := h.seq.Load() + 1
	v.stageDirty(seq)
	h.seq.Store(seq)
	v.unstaged = false
	v.rebaseDirty(seq)
	if h.tel != nil {
		h.tel.Count("vheap.stage_publishes", 1)
	}
	return seq, true
}

// stageDirty moves the view's delta — the words marked since the last
// publication event — into its stage at seq. A page new to the stage is
// deep-copied whole (its bitmap is the delta); a page already staged merges
// by copying the marked words and OR-ing the bitmaps, keeping the stage's
// original twin for words staged earlier so a value rewritten back to its
// pre-stage contents still publishes. After the merge the frame's marks
// clear and its twin re-snapshots to the frame values: the frame now serves
// the staged values to the owner's loads, and the next elided section stages
// only what it writes.
func (v *View) stageDirty(seq int64) {
	s := v.stg
	if s == nil {
		s = &stage{view: v, idx: make(map[int]int)}
		v.stg = s
	} else if s.flushed {
		// The previous stage was consumed by another thread's flush; its
		// object and frames are free for reuse at the owner's next turn.
		s.reset()
	}
	s.seq = seq
	mergeOne := func(pi int, d *dirtyPage) {
		delta := false
		for _, m := range d.dirty {
			if m != 0 {
				delta = true
				break
			}
		}
		if !delta {
			return
		}
		if k, ok := s.idx[pi]; ok {
			dst := s.pages[k]
			for bi, mask := range d.dirty {
				fresh := mask &^ dst.dirty[bi]
				dst.dirty[bi] |= mask
				for m := mask; m != 0; m &= m - 1 {
					i := bi<<6 + bits.TrailingZeros64(m)
					dst.words[i] = d.words[i]
				}
				// Words staged for the first time bring their twin along;
				// words already staged keep the twin of their first staging,
				// so silence is judged against the pre-stage contents.
				for m := fresh; m != 0; m &= m - 1 {
					i := bi<<6 + bits.TrailingZeros64(m)
					dst.twin[i] = d.twin[i]
				}
			}
		} else {
			dst := s.frame(v.h)
			copyInto(dst, d)
			s.idx[pi] = len(s.pis)
			s.pis = append(s.pis, pi)
			s.pages = append(s.pages, dst)
		}
		copy(d.twin, d.words)
		clear(d.dirty)
	}
	if v.mt != nil {
		//lazydet:nondeterministic order-independent merge; flushes apply staged pages into disjoint slots at one sequence
		for pi, d := range v.mt.dirty {
			mergeOne(pi, d)
		}
	} else {
		for _, pi := range v.dirtyIdx {
			mergeOne(pi, v.dirtyTab[pi])
		}
	}
	h := v.h
	if !s.queued {
		h.stageMu.Lock()
		s.queued = true
		h.stages = append(h.stages, s)
		h.nstaged.Store(int32(len(h.stages)))
		h.stageMu.Unlock()
	}
}

// Unpublished reports whether any store happened since the view's last
// publication event (Commit or StagePublish). Under elision this — not the
// dirty set, which staging retains — is the "anything to publish?" test, and
// in eager operation the two are identical (Commit clears both).
func (v *View) Unpublished() bool { return v.unstaged }

// SyncDeferred applies other views' outstanding deferred publications
// without moving this view's base: the flush half of a publication point at
// which this view itself has nothing to publish. Caller must hold the
// deterministic turn.
func (v *View) SyncDeferred() { v.h.flushStages(v, flushAll) }

// SettleDeferred applies every outstanding deferred publication, the view's
// own included. Engines call it at the turn before a thread parks, spawns a
// child, or exits — the points after which a concurrently executing thread
// pins a re-base to a sequence at or above the view's reserved one. Settling
// at the turn keeps those pinned flushes no-ops, so whether a stage was
// consumed by another thread stays a function of the turn schedule alone.
// Caller must hold the deterministic turn.
func (v *View) SettleDeferred() { v.h.flushStages(nil, flushAll) }

// StageFlushed reports whether the view's most recent deferred publication
// was applied by another thread (the elision "miss" signal the engine's
// adaptive policy feeds on). It is meaningful until the next StagePublish or
// Commit. Caller must hold the deterministic turn.
func (v *View) StageFlushed() bool {
	return v.stg != nil && v.stg.flushed
}

// DropClean recycles the view's retained dirty set once every marked word's
// value has been published: legal only when no store has happened since the
// view's last publication event and its own stage is no longer outstanding
// (applied by a flush, or never created). Engines call it at force points
// after settling, so a thread's dirty set does not grow without bound across
// chains of elided sections — without it every later commit would re-walk
// frames that have long since become silent. The base is NOT moved: loads
// before the caller's next re-base see the base state, the same contract an
// eager commit imposes.
func (v *View) DropClean() {
	if v.unstaged {
		panic("vheap: DropClean with unpublished writes")
	}
	if s := v.stg; s != nil && s.queued {
		panic("vheap: DropClean with an outstanding deferred publication")
	}
	if v.mt != nil {
		clear(v.mt.dirty)
		clear(v.mt.clean)
		return
	}
	v.clearDirty()
	v.invalidateClean()
}

// flushStages applies every outstanding deferred publication except skip's
// own, oldest reserved sequence first, skipping stages whose reserved
// sequence is above upTo (pass flushAll for no bound — legal only while
// holding the deterministic turn; see flushAll). The bound is prefix-closed:
// sequences are reserved in global order and every StagePublish flushes all
// foreign stages first, so no stage at or below upTo can sit under one above
// it on the same page. The fast path — no stages anywhere — is one atomic
// load. Stages detached here are marked flushed so their owners can observe
// the outcome at their next turn.
func (h *Heap) flushStages(skip *View, upTo int64) {
	if h.nstaged.Load() == 0 {
		return
	}
	h.stageMu.Lock()
	var todo []*stage
	keep := h.stages[:0]
	for _, s := range h.stages {
		if s.view == skip || s.seq > upTo {
			keep = append(keep, s)
			continue
		}
		s.queued = false
		s.flushed = true
		todo = append(todo, s)
	}
	h.stages = keep
	h.nstaged.Store(int32(len(h.stages)))
	h.stageMu.Unlock()
	if len(todo) == 0 {
		return
	}
	sort.Slice(todo, func(i, j int) bool { return todo[i].seq < todo[j].seq })
	for _, s := range todo {
		h.applyStage(s)
	}
}

// applyStage merges one detached stage onto the version chains at its
// reserved sequence. The merge is commitPage verbatim — same silent-store
// suppression, same trim policy — so a flushed elided section publishes
// byte-identical pages to the eager commits it replaced. The heap sequence
// is not advanced: the reservation already advanced it at stage time.
func (h *Heap) applyStage(s *stage) {
	scanned := int64(0)
	pages := int64(0)
	changed := 0
	batches := int64(0)
	var pageHits, pageMisses int64
	cur := -1
	for k, pi := range s.pis {
		if si := pi >> h.ppsShift; si != cur {
			if cur >= 0 {
				h.shards[cur].mu.Unlock()
			}
			h.shards[si].mu.Lock()
			cur = si
			batches++
		}
		sh := &h.shards[cur]
		if head := h.slots[pi].Load(); head.seq >= s.seq {
			panic(fmt.Sprintf("vheap: deferred publication at seq %d under page %d head seq %d — a commit overtook an outstanding stage",
				s.seq, pi, head.seq))
		}
		n := h.commitPage(sh, pi, s.pages[k], s.seq, &scanned, &pageHits, &pageMisses)
		if n == 0 {
			continue
		}
		pages++
		changed += n
		if h.trim {
			h.trimChainLocked(sh, h.slots[pi].Load(), h.shardFloor(sh))
		}
	}
	if cur >= 0 {
		h.shards[cur].mu.Unlock()
	}
	h.commits.Add(1)
	h.pagesWritten.Add(pages)
	h.wordsMerged.Add(int64(changed))
	h.wordsScanned.Add(scanned)
	if pageHits != 0 || pageMisses != 0 {
		h.pageHits.Add(pageHits)
		h.pageMisses.Add(pageMisses)
	}
	if h.tel != nil {
		h.tel.Count("vheap.commits", 1)
		h.tel.Count("vheap.stage_flushes", 1)
		h.tel.Count("vheap.pages_committed", pages)
		h.tel.Count("vheap.words_committed", int64(changed))
		h.tel.Count("vheap.words_scanned", scanned)
		h.tel.Count("vheap.shard_batches", batches)
		h.tel.Observe("vheap.commit_words", int64(changed))
		if pageHits != 0 {
			h.tel.Count("vheap.page_pool_hits", pageHits)
		}
		if pageMisses != 0 {
			h.tel.Count("vheap.page_pool_misses", pageMisses)
		}
	}
}

// RefreshDirty re-bases the view on the newest committed state while
// keeping the dirty set — the elided analogue of Update for a view whose
// dirty words are retained across publication points. Other views' deferred
// publications are flushed first, so the new base observes them; the view's
// own stage (if any) stays outstanding — that is the chaining win. Caller
// must hold the deterministic turn.
func (v *View) RefreshDirty() {
	v.h.flushStages(v, flushAll)
	v.rebaseDirty(v.h.seq.Load())
}

// RefreshToDirty re-bases the view on exactly seq while keeping the dirty
// set, used at barrier releases under elision. It executes concurrently with
// other threads' turns (the wake moment is wall-clock), so the flush is
// bounded by the pinned sequence: every stage at or below it was settled at
// its owner's arrival turn (SettleDeferred), making this flush a
// deterministic no-op, and stages reserved at later turns are left alone.
func (v *View) RefreshToDirty(seq int64) {
	v.h.flushStages(nil, seq)
	v.rebaseDirty(seq)
}

// rebaseDirty re-bases the view on newBase while keeping the retained
// frames: the re-base an elided publication performs in place of the eager
// path's commit-then-Update. Frames whose base page advanced (a foreign
// commit or a flushed stage — possibly the view's own, handing its values
// back) are rebuilt over the new base: words marked since the last
// publication event keep the view's private values, everything else adopts
// the new base overlaid with the view's own outstanding stage (whose
// reserved publication is not on the chains yet but is committed state the
// owner must keep seeing), and the twin is re-snapshotted — so a word whose
// deferred value already reached the head becomes a silent store and is not
// merged twice. Caller must hold the deterministic turn.
func (v *View) rebaseDirty(newBase int64) {
	oldBase := v.base.Load()
	if newBase == oldBase {
		return
	}
	if newBase < oldBase {
		panic(fmt.Sprintf("vheap: rebaseDirty(%d) would move the base backwards from %d", newBase, oldBase))
	}
	v.base.Store(newBase)
	v.h.noteRebase(oldBase)
	s := v.stg
	if s == nil || !s.queued {
		s = nil
	}
	overlay := func(pi int) *dirtyPage {
		if s == nil {
			return nil
		}
		if k, ok := s.idx[pi]; ok {
			return s.pages[k]
		}
		return nil
	}
	if v.mt != nil {
		clear(v.mt.clean)
		//lazydet:nondeterministic order-independent rebuild over the dirty-page set
		for pi, d := range v.mt.dirty {
			if p := v.h.pageAt(pi, newBase); p.seq != d.baseSeq {
				rebuildFrame(d, p, overlay(pi))
			}
		}
		return
	}
	v.invalidateClean()
	for _, pi := range v.dirtyIdx {
		d := v.dirtyTab[pi]
		if p := v.h.pageAt(pi, newBase); p.seq != d.baseSeq {
			rebuildFrame(d, p, overlay(pi))
		}
	}
}

// rebuildFrame re-bases one dirty frame on page version p: marked words keep
// their private values, everything else adopts p overlaid with the view's
// own outstanding staged page sp (nil when the page is not staged): a staged
// word's reserved publication is committed state that has not reached the
// chains yet, so the owner's window — and the twin that decides future
// silence — must carry it.
func rebuildFrame(d *dirtyPage, p *page, sp *dirtyPage) {
	copy(d.twin, p.words)
	for i, w := range p.words {
		if !d.marked(i) {
			d.words[i] = w
		}
	}
	if sp != nil {
		for bi, mask := range sp.dirty {
			for m := mask; m != 0; m &= m - 1 {
				i := bi<<6 + bits.TrailingZeros64(m)
				d.twin[i] = sp.words[i]
				if !d.marked(i) {
					d.words[i] = sp.words[i]
				}
			}
		}
	}
	d.baseSeq = p.seq
}

// AuditDeferred verifies the deferred-publication invariant: every page of
// the view's outstanding stage must still hold a live frame in the view, and
// every staged word the owner has not rewritten since must carry the staged
// value in that frame — the frame is what serves the reserved publication's
// values to the owner's loads (and to re-bases and revert restores), so a
// divergence means deferred state was dropped or corrupted. Used by the
// invariant checker's deferred-publish rule. Caller must hold the
// deterministic turn.
func (v *View) AuditDeferred() error {
	s := v.stg
	if s == nil || !s.queued {
		return nil
	}
	for k, pi := range s.pis {
		var d *dirtyPage
		if v.mt != nil {
			d = v.mt.dirty[pi]
		} else {
			d = v.dirtyTab[pi]
		}
		if d == nil {
			return fmt.Errorf("vheap: page %d is staged for deferred publication but holds no frame in the view — a revert or commit dropped deferred state",
				pi)
		}
		st := s.pages[k]
		for bi, mask := range st.dirty {
			for m := mask; m != 0; m &= m - 1 {
				i := bi<<6 + bits.TrailingZeros64(m)
				if !d.marked(i) && d.words[i] != st.words[i] {
					return fmt.Errorf("vheap: page %d word %d is staged as %d but the view's frame serves %d and the word is not rewritten — deferred state was corrupted",
						pi, i, st.words[i], d.words[i])
				}
			}
		}
	}
	return nil
}
