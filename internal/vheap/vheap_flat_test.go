package vheap

import (
	"testing"
	"testing/quick"
)

// This file tests the flat per-view page tables, the generation-stamped
// clean cache, and the frame/page pools against the map-backed view layout
// they replaced (kept behind WithMapViews as the differential oracle): the
// two must publish byte-identical heaps, identical commit results and dirty
// counts, and the pooled fast path must reach an allocation-free steady
// state.

// TestQuickFlatMatchesMapViews drives a flat-table heap and a map-backed
// heap through identical operation sequences, checking every observable
// after every operation: Load results, dirty counts, commit sequence and
// changed-word returns, revert discard counts, and the final heap hash and
// statistics must all agree — the flat tables may only change how pages are
// found, never which.
func TestQuickFlatMatchesMapViews(t *testing.T) {
	f := func(seed uint64) bool {
		const words = 256
		h1 := New(words, WithPageWords(32))
		h2 := New(words, WithPageWords(32), WithMapViews())
		v1 := h1.NewView()
		v2 := h2.NewView()
		var s1, s2 *DirtySnapshot
		r := seed
		next := func() uint64 {
			r = r*6364136223846793005 + 1442695040888963407
			return r
		}
		for i := 0; i < 300; i++ {
			op := next() >> 60
			addr := int64(next()>>32) % words
			val := int64(next() >> 40)
			switch {
			case op < 8:
				v1.Store(addr, val)
				v2.Store(addr, val)
			case op < 10:
				v1.StoreDirty(addr, val)
				v2.StoreDirty(addr, val)
			case op < 12:
				seq1, ch1 := v1.Commit()
				seq2, ch2 := v2.Commit()
				if seq1 != seq2 || ch1 != ch2 {
					t.Logf("seed %d op %d: commit (%d,%d) flat vs (%d,%d) map", seed, i, seq1, ch1, seq2, ch2)
					return false
				}
			case op < 13:
				d1 := v1.Revert()
				d2 := v2.Revert()
				if d1 != d2 {
					t.Logf("seed %d op %d: revert discarded %d flat vs %d map", seed, i, d1, d2)
					return false
				}
			default:
				s1 = v1.SnapshotDirtyInto(s1)
				s2 = v2.SnapshotDirtyInto(s2)
				if s1.Words() != s2.Words() {
					t.Logf("seed %d op %d: snapshot %d words flat vs %d map", seed, i, s1.Words(), s2.Words())
					return false
				}
				v1.Store((addr+1)%words, val+1)
				v2.Store((addr+1)%words, val+1)
				d1 := v1.RevertTo(s1)
				d2 := v2.RevertTo(s2)
				if d1 != d2 {
					t.Logf("seed %d op %d: RevertTo discarded %d flat vs %d map", seed, i, d1, d2)
					return false
				}
			}
			if v1.Load(addr) != v2.Load(addr) {
				t.Logf("seed %d op %d: Load(%d) = %d flat vs %d map", seed, i, addr, v1.Load(addr), v2.Load(addr))
				return false
			}
			if v1.DirtyPages() != v2.DirtyPages() || v1.DirtyWords() != v2.DirtyWords() {
				t.Logf("seed %d op %d: dirty (%d pages, %d words) flat vs (%d, %d) map",
					seed, i, v1.DirtyPages(), v1.DirtyWords(), v2.DirtyPages(), v2.DirtyWords())
				return false
			}
			if err := v1.AuditTables(); err != nil {
				t.Logf("seed %d op %d: flat tables audit: %v", seed, i, err)
				return false
			}
		}
		v1.Commit()
		v2.Commit()
		if h1.Hash() != h2.Hash() {
			t.Logf("seed %d: flat heap hash %x != map heap hash %x", seed, h1.Hash(), h2.Hash())
			return false
		}
		st1, st2 := h1.Stats(), h2.Stats()
		if st1.Commits != st2.Commits || st1.Pages != st2.Pages ||
			st1.Words != st2.Words || st1.WordsScanned != st2.WordsScanned {
			t.Logf("seed %d: stats diverge: flat (%d,%d,%d,%d) vs map (%d,%d,%d,%d)",
				seed, st1.Commits, st1.Pages, st1.Words, st1.WordsScanned,
				st2.Commits, st2.Pages, st2.Words, st2.WordsScanned)
			return false
		}
		if err := h1.Audit(); err != nil {
			t.Logf("seed %d: flat heap audit: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestCloseIdempotent is the double-free regression test: closing a view
// twice must be a no-op the second time — it must not unregister an aliased
// later view or spuriously invalidate the trim-floor cache — and the heap
// must audit clean afterwards.
func TestCloseIdempotent(t *testing.T) {
	h := New(32, WithPageWords(32))
	v := h.NewView()
	w := h.NewView()
	w.Store(0, 1)
	w.Commit()
	v.Close()
	v.Close() // second close: must be a no-op
	w.Store(0, 2)
	w.Commit()
	if err := h.Audit(); err != nil {
		t.Fatalf("audit after double close: %v", err)
	}
	if got := h.ReadCommitted(0); got != 2 {
		t.Fatalf("word 0 = %d, want 2", got)
	}
	// The trim floor must reflect only the surviving view: after its
	// commits, old versions pinned by nothing must have been trimmed.
	if got := h.LiveVersions(); got > 2 {
		t.Fatalf("%d versions survive after the pinning view closed twice, want <= 2", got)
	}
	w.Close()
	w.Close()
	if err := h.Audit(); err != nil {
		t.Fatalf("audit after closing every view twice: %v", err)
	}
}

// TestAuditTablesCatchesCorruption corrupts each flat-table invariant in
// turn and checks AuditTables reports it: a frame missing from the dirty
// index, a stale clean-cache stamp, and a pooled frame with residual dirty
// bits.
func TestAuditTablesCatchesCorruption(t *testing.T) {
	fresh := func() (*Heap, *View) {
		h := New(128, WithPageWords(32))
		v := h.NewView()
		v.Store(0, 1)
		v.Load(40) // populate the clean cache for page 1
		if err := v.AuditTables(); err != nil {
			t.Fatalf("fresh view audited dirty: %v", err)
		}
		return h, v
	}

	h, v := fresh()
	v.dirtyTab[2] = h.newFrame() // frame not listed in dirtyIdx
	if err := v.AuditTables(); err == nil {
		t.Fatal("unlisted dirty frame not caught")
	}

	_, v = fresh()
	v.dirtyIdx = append(v.dirtyIdx, 3) // listed page without a frame
	if err := v.AuditTables(); err == nil {
		t.Fatal("dirty index entry without a frame not caught")
	}

	_, v = fresh()
	v.cleanTab[1] = &page{seq: 99, words: make([]int64, 32)} // stale cached resolution
	if err := v.AuditTables(); err == nil {
		t.Fatal("stale clean-cache resolution not caught")
	}

	h, v = fresh()
	d := h.newFrame()
	d.mark(5) // a recycled frame must start with a clear bitmap
	v.free = append(v.free, d)
	if err := v.AuditTables(); err == nil {
		t.Fatal("pooled frame with residual dirty bits not caught")
	}

	_, v = fresh()
	v.free = append(v.free, v.dirtyTab[0]) // pool aliasing a live frame
	if err := v.AuditTables(); err == nil {
		t.Fatal("pool entry aliasing a live dirty frame not caught")
	}
}

// TestCommitSteadyStateAllocFree is the pooling acceptance criterion as a
// test: once the frame and page pools are warm, a store+commit sync epoch
// must allocate nothing — the dirty-page frame comes from the view's free
// list and the published page version from the trim-refilled heap pool.
func TestCommitSteadyStateAllocFree(t *testing.T) {
	h := New(64, WithPageWords(64))
	v := h.NewView()
	val := int64(0)
	epoch := func() {
		val++
		v.Store(3, val)
		v.Commit()
	}
	// Warm up: commit 1 publishes over the zero page (nothing trims),
	// commit 2 cuts the zero page (never pooled), commit 3 refills the
	// page pool for the first time.
	for i := 0; i < 5; i++ {
		epoch()
	}
	if allocs := testing.AllocsPerRun(100, epoch); allocs != 0 {
		t.Fatalf("steady-state store+commit epoch allocates %.1f times, want 0", allocs)
	}
	st := h.Stats()
	if st.FrameHits == 0 || st.PageHits == 0 {
		t.Fatalf("pools never hit (frame hits %d, page hits %d) — the alloc-free epochs did not come from the pools",
			st.FrameHits, st.PageHits)
	}
	if err := h.Audit(); err != nil {
		t.Fatal(err)
	}
	if err := v.AuditTables(); err != nil {
		t.Fatal(err)
	}
}

// TestSnapshotIntoSteadyStateAllocFree: a speculation BEGIN's
// SnapshotDirtyInto and a failed run's RevertTo must also reach an
// allocation-free steady state, including when the dirty set shrinks (the
// spare list must retain the unused frames rather than dropping them).
func TestSnapshotIntoSteadyStateAllocFree(t *testing.T) {
	h := New(256, WithPageWords(32))
	v := h.NewView()
	var s *DirtySnapshot
	val := int64(0)
	run := func(pages int) {
		val++
		for p := 0; p < pages; p++ {
			v.Store(int64(p*32), val)
		}
		s = v.SnapshotDirtyInto(s)
		v.Store(33, val+7) // the speculative write the revert discards
		if d := v.RevertTo(s); d != 1 {
			t.Fatalf("revert discarded %d words, want 1", d)
		}
		if got := v.Load(33); got != 0 {
			t.Fatalf("speculative write survived the revert: word 33 = %d", got)
		}
		v.Revert()
	}
	run(6) // warm the frame pool and snapshot buffers at the largest size
	run(6)
	for _, pages := range []int{6, 2, 6, 1} {
		p := pages
		if allocs := testing.AllocsPerRun(50, func() { run(p) }); allocs != 0 {
			t.Fatalf("steady-state snapshot/revert with %d dirty pages allocates %.1f times, want 0", p, allocs)
		}
	}
	if err := v.AuditTables(); err != nil {
		t.Fatal(err)
	}
}

// TestGenerationStampInvalidation: after a re-base the clean cache must not
// serve resolutions cached at the old base, even though the table entries
// are still physically present (only the generation moved).
func TestGenerationStampInvalidation(t *testing.T) {
	h := New(64, WithPageWords(32))
	reader := h.NewView()
	writer := h.NewView()
	if got := reader.Load(5); got != 0 {
		t.Fatalf("initial word 5 = %d, want 0", got)
	}
	writer.Store(5, 42)
	writer.Commit()
	if got := reader.Load(5); got != 0 {
		t.Fatalf("un-rebased reader sees %d, want its base's 0 (isolation broken)", got)
	}
	reader.Update()
	if got := reader.Load(5); got != 42 {
		t.Fatalf("re-based reader sees %d, want 42 (stale clean cache survived the generation bump)", got)
	}
	if err := reader.AuditTables(); err != nil {
		t.Fatal(err)
	}
}
