// Package progcheck statically analyzes sets of dvm programs for the
// properties the LazyDet engines assume but never check before running:
// lock discipline, deadlock-freedom under any turn order, and data-race
// freedom under the locks the program actually takes.
//
// The analyzer builds a control-flow graph per program from the Code/Target
// edges, then runs a forward abstract interpretation of synchronization
// state: the abstract domain is a set of locksets (lock ID → acquisition
// mode) per program point, extended with a barrier-phase counter and a
// taint bit. Static operand knowledge comes from dvm.SVal, the metadata the
// Builder records for dvm.Const operands and InClass tags; an operand the
// builder could not resolve is *unknown*, and the analysis degrades soundly:
// a sync operation on an unknown object taints the state, and tainted states
// produce no findings. The analyzer therefore never reports a finding it
// cannot justify from static facts — precision scales with how much of the
// program is built from constants, and `Stats.UnknownSyncOps` quantifies
// the loss.
//
// Four analyses run over the abstract states:
//
//   - lock discipline (lockstate.go): double-lock, unlock-without-lock,
//     read/write-mode confusion, locks still held on a path to OpHalt, and
//     OpCondWait without its mutex held;
//   - potential deadlocks (deadlock.go): a cross-program lock-order graph,
//     with cycle detection, gate-lock suppression and a thread-feasibility
//     check, reporting the witness cycle;
//   - potential data races (race.go): conflicting OpLoad/OpStore/OpAtomic
//     address classes whose static locksets are disjoint and whose barrier
//     phases can overlap;
//   - critical-section footprints (footprint.go): per-lock read/write
//     footprints lifted into a cross-program conflict graph classifying
//     every statically known lock as Disjoint, Conflicting, Commutative or
//     Unknown — the Report.Hints table that seeds LazyDet's speculation
//     policy through harness.Options.SpecHints.
//
// cmd/lazydet-vet exposes the analyzer on the command line, and
// harness.Options.Vet runs it as a pre-run check.
package progcheck

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"lazydet/internal/dvm"
)

// Severity ranks findings.
type Severity uint8

const (
	// SevInfo marks observations that are not defects.
	SevInfo Severity = iota
	// SevWarn marks potential defects: the analysis found a static
	// configuration that can misbehave under some schedule (deadlock
	// cycles, data-race candidates).
	SevWarn
	// SevError marks definite discipline violations on some executable
	// path (double-lock, unlock-without-lock, lock held at exit).
	SevError
)

// String returns the report name of the severity.
func (s Severity) String() string {
	switch s {
	case SevInfo:
		return "info"
	case SevWarn:
		return "warn"
	case SevError:
		return "error"
	}
	return "unknown"
}

// MarshalText implements encoding.TextMarshaler for JSON reports.
func (s Severity) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// Class names a finding category.
type Class string

// The finding classes the analyzer reports.
const (
	ClassDoubleLock        Class = "double-lock"
	ClassUnlockWithoutLock Class = "unlock-without-lock"
	ClassRWConfusion       Class = "rw-confusion"
	ClassHeldAtExit        Class = "lock-held-at-exit"
	ClassCondWaitNoMutex   Class = "condwait-without-mutex"
	ClassDeadlock          Class = "deadlock-cycle"
	ClassRace              Class = "data-race"
)

// Site is one program location participating in a finding.
type Site struct {
	// Thread is the index of a thread running the program (the lowest,
	// when the program is replicated across several).
	Thread int `json:"thread"`
	// Prog is the program name.
	Prog string `json:"prog"`
	// PC is the instruction index.
	PC int `json:"pc"`
	// Detail describes the site's role in the finding.
	Detail string `json:"detail,omitempty"`
}

func (s Site) String() string {
	d := ""
	if s.Detail != "" {
		d = " (" + s.Detail + ")"
	}
	return fmt.Sprintf("thread %d %q pc %d%s", s.Thread, s.Prog, s.PC, d)
}

// Finding is one analyzer report.
type Finding struct {
	Class    Class    `json:"class"`
	Severity Severity `json:"severity"`
	Message  string   `json:"message"`
	// Sites lists the participating locations; the first is primary.
	Sites []Site `json:"sites,omitempty"`
}

// String renders the finding in the human report format.
func (f Finding) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s %s: %s", strings.ToUpper(f.Severity.String()), f.Class, f.Message)
	for _, s := range f.Sites {
		fmt.Fprintf(&b, "\n    at %s", s)
	}
	return b.String()
}

// Stats summarizes one analysis run.
type Stats struct {
	// Programs counts distinct programs analyzed (replicas dedup).
	Programs int `json:"programs"`
	// Threads is the thread count of the analyzed set.
	Threads int `json:"threads"`
	// Instructions counts instructions across distinct programs.
	Instructions int `json:"instructions"`
	// States counts abstract states explored.
	States int `json:"states"`
	// UnknownSyncOps counts synchronization operations whose object the
	// builder could not resolve statically; each one degrades precision
	// (the sound fallback) but never soundness.
	UnknownSyncOps int `json:"unknown_sync_ops"`
	// AnalysisNs is the total analysis wall time; the four fields after it
	// split the total per analysis. All machine-dependent: report them,
	// never gate on them.
	AnalysisNs  int64 `json:"analysis_ns"`
	LockstateNs int64 `json:"lockstate_ns"`
	DeadlockNs  int64 `json:"deadlock_ns"`
	RaceNs      int64 `json:"race_ns"`
	FootprintNs int64 `json:"footprint_ns"`
}

// Report is the analyzer's result for one program set.
type Report struct {
	Findings []Finding `json:"findings"`
	Stats    Stats     `json:"stats"`
	// Hints is the footprint analysis verdict table (one entry per
	// statically known lock). Hints are facts about speculation payoff,
	// not defects, so they are reported here rather than as Findings.
	Hints *SpecHints `json:"hints,omitempty"`
}

// CountBySeverity returns the number of findings at exactly sev.
func (r *Report) CountBySeverity(sev Severity) int {
	n := 0
	for _, f := range r.Findings {
		if f.Severity == sev {
			n++
		}
	}
	return n
}

// Classes returns the sorted distinct finding classes of the report.
func (r *Report) Classes() []Class {
	seen := map[Class]bool{}
	for _, f := range r.Findings {
		seen[f.Class] = true
	}
	cs := make([]Class, 0, len(seen))
	for c := range seen {
		cs = append(cs, c)
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i] < cs[j] })
	return cs
}

// Human renders the full report for terminals.
func (r *Report) Human() string {
	var b strings.Builder
	if len(r.Findings) == 0 {
		b.WriteString("no findings\n")
	}
	for _, f := range r.Findings {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	if h := r.Hints.Human(); h != "" {
		b.WriteString(h)
	}
	fmt.Fprintf(&b, "%d program(s), %d thread(s), %d instruction(s), %d state(s), %d unknown sync op(s)\n",
		r.Stats.Programs, r.Stats.Threads, r.Stats.Instructions, r.Stats.States, r.Stats.UnknownSyncOps)
	return b.String()
}

// Check analyzes the program set progs, where progs[i] is the program thread
// i runs — exactly the slice a harness.Workload builds. Replicated programs
// (the same *dvm.Program on several threads) are analyzed once and treated
// as concurrent instances for the cross-program analyses.
func Check(progs []*dvm.Program) *Report {
	start := time.Now()
	rep := &Report{Stats: Stats{Threads: len(progs)}}

	// Deduplicate replicas, preserving first-thread order.
	type distinct struct {
		p       *dvm.Program
		threads []int
	}
	var ds []*distinct
	index := map[*dvm.Program]*distinct{}
	for tid, p := range progs {
		if d, ok := index[p]; ok {
			d.threads = append(d.threads, tid)
			continue
		}
		d := &distinct{p: p, threads: []int{tid}}
		index[p] = d
		ds = append(ds, d)
	}

	var summaries []*progSummary
	for _, d := range ds {
		s := analyzeProgram(d.p, d.threads)
		summaries = append(summaries, s)
		rep.Stats.Programs++
		rep.Stats.Instructions += len(d.p.Code)
		rep.Stats.States += s.statesExplored
		rep.Stats.UnknownSyncOps += s.unknownSyncOps
		rep.Findings = append(rep.Findings, s.findings...)
	}
	t1 := time.Now()
	rep.Stats.LockstateNs = t1.Sub(start).Nanoseconds()

	rep.Findings = append(rep.Findings, findDeadlocks(summaries)...)
	t2 := time.Now()
	rep.Stats.DeadlockNs = t2.Sub(t1).Nanoseconds()

	rep.Findings = append(rep.Findings, findRaces(summaries)...)
	t3 := time.Now()
	rep.Stats.RaceNs = t3.Sub(t2).Nanoseconds()

	rep.Hints = analyzeFootprints(summaries)
	rep.Stats.FootprintNs = time.Since(t3).Nanoseconds()

	sortFindings(rep.Findings)
	rep.Stats.AnalysisNs = time.Since(start).Nanoseconds()
	return rep
}

// sortFindings orders findings deterministically: severity descending, then
// class, then message, then primary site.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Severity != b.Severity {
			return a.Severity > b.Severity
		}
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.Message != b.Message {
			return a.Message < b.Message
		}
		as, bs := "", ""
		if len(a.Sites) > 0 {
			as = a.Sites[0].String()
		}
		if len(b.Sites) > 0 {
			bs = b.Sites[0].String()
		}
		return as < bs
	})
}
