package progcheck_test

import (
	"testing"

	"lazydet/internal/progcheck"
	"lazydet/internal/randprog"
	"lazydet/internal/workloads"
)

// TestWorkloadsAreClean: the analyzer must produce zero findings on every
// built-in benchmark — they are the known-good corpus, so any finding here
// is an analyzer false positive (or a real workload bug; either way a
// hard failure).
func TestWorkloadsAreClean(t *testing.T) {
	const threads = 4
	for _, g := range workloads.All() {
		t.Run(g.Name, func(t *testing.T) {
			w := g.New(1)
			rep := progcheck.Check(w.Programs(threads))
			if len(rep.Findings) != 0 {
				t.Fatalf("workload %s has findings:\n%s", g.Name, rep.Human())
			}
		})
	}
}

// TestRandprogHints: the generator's private-counter lock guards per-thread
// cells only, so the footprint pass must prove it Disjoint whenever a seed
// exercises it; the rendezvous door lock is held across cond waits and
// provably collides on the rendezvous cell, so it must never be Disjoint.
func TestRandprogHints(t *testing.T) {
	sawPriv := false
	for seed := uint64(1); seed <= 10; seed++ {
		cfg := randprog.DefaultConfig(3)
		w, _, err := randprog.Generate(seed, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep := progcheck.Check(w.Programs(3))
		if rep.Hints == nil {
			t.Fatalf("seed %d: no hint table", seed)
		}
		privLock := int64(cfg.Cells) + 1
		doorLock := int64(cfg.Cells)
		if v, ok := rep.Hints.Verdicts[privLock]; ok {
			sawPriv = true
			if v != progcheck.VerdictDisjoint {
				t.Fatalf("seed %d: private lock verdict = %s, want disjoint — %s",
					seed, v, rep.Hints.Reasons[privLock])
			}
		}
		if v, ok := rep.Hints.Verdicts[doorLock]; ok && v == progcheck.VerdictDisjoint {
			t.Fatalf("seed %d: door lock proved disjoint — %s", seed, rep.Hints.Reasons[doorLock])
		}
	}
	if !sawPriv {
		t.Fatal("no seed exercised the private-counter lock; test is vacuous")
	}
}

// TestRandprogIsClean: the fuzzer's generator emits disciplined programs by
// construction (ordered nested acquisitions, rendezvous under a door lock),
// so the analyzer must agree.
func TestRandprogIsClean(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		cfg := randprog.DefaultConfig(3)
		w, _, err := randprog.Generate(seed, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep := progcheck.Check(w.Programs(3))
		if n := rep.CountBySeverity(progcheck.SevError); n != 0 {
			t.Fatalf("seed %d: %d error-severity findings:\n%s", seed, n, rep.Human())
		}
		if len(rep.Findings) != 0 {
			t.Fatalf("seed %d: findings on generated program:\n%s", seed, rep.Human())
		}
	}
}
