package progcheck_test

import (
	"testing"

	"lazydet/internal/progcheck"
	"lazydet/internal/randprog"
	"lazydet/internal/workloads"
)

// TestWorkloadsAreClean: the analyzer must produce zero findings on every
// built-in benchmark — they are the known-good corpus, so any finding here
// is an analyzer false positive (or a real workload bug; either way a
// hard failure).
func TestWorkloadsAreClean(t *testing.T) {
	const threads = 4
	for _, g := range workloads.All() {
		t.Run(g.Name, func(t *testing.T) {
			w := g.New(1)
			rep := progcheck.Check(w.Programs(threads))
			if len(rep.Findings) != 0 {
				t.Fatalf("workload %s has findings:\n%s", g.Name, rep.Human())
			}
		})
	}
}

// TestRandprogIsClean: the fuzzer's generator emits disciplined programs by
// construction (ordered nested acquisitions, rendezvous under a door lock),
// so the analyzer must agree.
func TestRandprogIsClean(t *testing.T) {
	for seed := uint64(1); seed <= 20; seed++ {
		cfg := randprog.DefaultConfig(3)
		w, _, err := randprog.Generate(seed, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		rep := progcheck.Check(w.Programs(3))
		if n := rep.CountBySeverity(progcheck.SevError); n != 0 {
			t.Fatalf("seed %d: %d error-severity findings:\n%s", seed, n, rep.Human())
		}
		if len(rep.Findings) != 0 {
			t.Fatalf("seed %d: findings on generated program:\n%s", seed, rep.Human())
		}
	}
}
