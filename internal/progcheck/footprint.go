// Critical-section footprint analysis: the fourth progcheck pass.
//
// For every statically known lock, the pass collects the read/write
// footprint of each access executed while the lock is held — over known
// constant addresses and InClass address classes — and classifies the lock
// by comparing footprints across every pair of critical sections that could
// run on different threads:
//
//   - Disjoint: all guarded footprints are provably non-overlapping (or
//     overlap only in reads). Speculation through the lock can never fail
//     validation, so the runtime always speculates and skips the lock's
//     conflict checks (core.HintDisjoint, DESIGN.md §5e).
//   - Conflicting: two sections provably overlap through a non-commuting
//     access pair on the same constant address. Speculation is wasted work;
//     the runtime starts the lock conventional.
//   - Commutative: sections overlap, but only through commuting operations
//     (atomic adds, identical constant stores on the same address).
//     Recorded as candidates for future phase reconciliation (ROADMAP's
//     ddtxn item); the runtime treats the verdict like Unknown today.
//   - Unknown: the footprint is unreliable — an unknown operand inside a
//     critical section, a dynamic lock operand that may alias this lock, a
//     mid-section commit hazard, class-level may-aliasing, or a truncated
//     state exploration. The runtime's adaptive policy decides alone.
//
// Unlike the race pass, which may drop facts (missed findings are
// acceptable there), this pass must over-approximate: a missed access could
// wrongly prove a lock Disjoint and make the engine skip a validation check
// it needed. Every approximation in the collection therefore errs toward
// larger footprints and toward demotion.
package progcheck

import (
	"fmt"
	"sort"
	"strings"

	"lazydet/internal/dvm"
)

// SpecVerdict classifies one lock's cross-section conflict behavior.
type SpecVerdict uint8

const (
	// VerdictUnknown is the sound default: no static fact, defer to the
	// runtime's adaptive policy. It is deliberately the zero value, so a
	// lock missing from a verdict table reads as Unknown.
	VerdictUnknown SpecVerdict = iota
	VerdictDisjoint
	VerdictConflicting
	VerdictCommutative
)

func (v SpecVerdict) String() string {
	switch v {
	case VerdictDisjoint:
		return "disjoint"
	case VerdictConflicting:
		return "conflicting"
	case VerdictCommutative:
		return "commutative"
	default:
		return "unknown"
	}
}

// MarshalText makes verdicts render as their names in JSON output.
func (v SpecVerdict) MarshalText() ([]byte, error) { return []byte(v.String()), nil }

// UnmarshalText accepts the String form back (vet golden round-trips).
func (v *SpecVerdict) UnmarshalText(b []byte) error {
	switch string(b) {
	case "disjoint":
		*v = VerdictDisjoint
	case "conflicting":
		*v = VerdictConflicting
	case "commutative":
		*v = VerdictCommutative
	case "unknown":
		*v = VerdictUnknown
	default:
		return fmt.Errorf("progcheck: unknown spec verdict %q", b)
	}
	return nil
}

// SpecHints is the footprint analysis result: one verdict per statically
// known lock, with a deterministic one-line witness per lock. The harness
// lowers it into core.Config.Hints to seed the speculation policy.
type SpecHints struct {
	Verdicts map[int64]SpecVerdict `json:"verdicts"`
	Reasons  map[int64]string      `json:"reasons,omitempty"`
}

// Locks returns the classified lock IDs in ascending order.
func (h *SpecHints) Locks() []int64 {
	if h == nil {
		return nil
	}
	ids := make([]int64, 0, len(h.Verdicts))
	for l := range h.Verdicts {
		ids = append(ids, l)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// Count returns how many locks carry verdict v.
func (h *SpecHints) Count(v SpecVerdict) int {
	if h == nil {
		return 0
	}
	n := 0
	for _, got := range h.Verdicts {
		if got == v {
			n++
		}
	}
	return n
}

// Human renders the hints section of Report.Human: a count line plus one
// line per lock, ascending. Empty string when no lock was classified.
func (h *SpecHints) Human() string {
	if h == nil || len(h.Verdicts) == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, "speculation hints: %d disjoint, %d conflicting, %d commutative, %d unknown\n",
		h.Count(VerdictDisjoint), h.Count(VerdictConflicting),
		h.Count(VerdictCommutative), h.Count(VerdictUnknown))
	for _, l := range h.Locks() {
		fmt.Fprintf(&b, "  lock %d: %s", l, h.Verdicts[l])
		if r := h.Reasons[l]; r != "" {
			fmt.Fprintf(&b, " — %s", r)
		}
		b.WriteString("\n")
	}
	return b.String()
}

// fpRecord is one distinct access inside some critical section: the pc's
// kind, static address, and — for the commutativity check — the static
// store value or atomic kind.
type fpRecord struct {
	kind accessKind
	addr dvm.SVal
	val  dvm.SVal // OpStore only: the stored value
	atom dvm.AtomicKind
}

// noteLockClass records the address class a statically known lock's sync
// site declared ("" for an unclassed site). The class set feeds the
// dynamic-operand may-alias demotion, and registering the lock at all is
// what gives never-accessed locks a (Disjoint) verdict.
func (ps *progSummary) noteLockClass(id int64, class string) {
	m := ps.lockClasses[id]
	if m == nil {
		m = map[string]bool{}
		ps.lockClasses[id] = m
	}
	m[class] = true
}

// noteDynLockOperand records a lock/cond-mutex operand the builder could
// not resolve to a constant. Its class ("" when unclassed) decides which
// known locks it may alias; a classless dynamic operand may alias any lock.
func (ps *progSummary) noteDynLockOperand(op dvm.SVal) {
	ps.dynLockSeen[op.Class] = true
}

// demoteLock caps a lock's verdict at Unknown, keeping the first reason.
func (ps *progSummary) demoteLock(id int64, reason string) {
	if _, ok := ps.fpDemote[id]; !ok {
		ps.fpDemote[id] = reason
	}
}

// demoteHeld demotes every lock held in st — used at operations that
// terminate a speculation run mid-critical-section (converting still-held
// speculative locks to conventional ownership, which the Disjoint
// validation skip must never be allowed to race) and at thread exit.
// Tainted states demote too: their held sets over-approximate, which only
// adds demotions, never loses one.
func (ps *progSummary) demoteHeld(st absState, pc int, why string) {
	for _, h := range st.held {
		ps.demoteLock(h.id, fmt.Sprintf("%s at pc %d", why, pc))
	}
}

// recordFootprint folds one abstract execution of a memory access into the
// footprint of every held lock. An access whose address carries no static
// fact at all makes the footprint unbounded and demotes every held lock.
func (ps *progSummary) recordFootprint(pc int, kind accessKind, in *dvm.Instr, st absState) {
	if len(st.held) == 0 {
		return
	}
	addr := in.SAddr
	if !addr.Known && addr.Class == "" {
		for _, h := range st.held {
			ps.demoteLock(h.id, fmt.Sprintf("%s of a statically unknown address at pc %d", kind, pc))
		}
		return
	}
	rec := &fpRecord{kind: kind, addr: addr}
	if in.Op == dvm.OpStore {
		rec.val = in.SValue
	}
	if in.Atom != nil {
		rec.atom = in.Atom.Kind
	}
	for _, h := range st.held {
		m := ps.fp[h.id]
		if m == nil {
			m = map[int]*fpRecord{}
			ps.fp[h.id] = m
		}
		if _, ok := m[pc]; !ok {
			m[pc] = rec
		}
	}
}

// fpEntry is one footprint record lifted into the cross-program pass, with
// enough context to decide whether two entries can run concurrently.
type fpEntry struct {
	progIdx  int // index into the summaries slice (deterministic order)
	pc       int
	nthreads int // threads running the entry's program
	rec      *fpRecord
	prog     string
}

// aliasFact is the three-valued outcome of comparing two static addresses.
type aliasFact uint8

const (
	aliasNo   aliasFact = iota // provably different addresses
	aliasMay                   // no static fact either way
	aliasMust                  // provably the same address
)

// footprintAlias compares two footprint addresses. The polarity is the
// opposite of the race pass's mayAlias: where that pass needs "provably
// may alias" to justify a finding, this pass needs "provably does NOT
// alias" to justify Disjoint, so the no-fact case lands on aliasMay.
func footprintAlias(a, b dvm.SVal) aliasFact {
	if a.Known && b.Known {
		if a.K == b.K {
			return aliasMust
		}
		return aliasNo
	}
	if a.Class != "" && b.Class != "" {
		// Address classes name disjoint abstract regions (the builder's
		// declaration), so different classes cannot alias; a shared class
		// may alias but is never provably equal.
		if a.Class == b.Class {
			return aliasMay
		}
		return aliasNo
	}
	return aliasMay
}

// commutes reports whether two must-aliased accesses commute: executing
// them in either order yields the same final state. Atomic adds commute
// with each other (sum is order-independent, and atomic locations are
// validated separately — validateAtomics is never skipped), and two stores
// of the same known constant commute (either order leaves that constant).
func commutes(a, b *fpRecord) bool {
	if a.kind == accAtomic && b.kind == accAtomic {
		return a.atom == dvm.AtomicAdd && b.atom == dvm.AtomicAdd
	}
	if a.kind == accWrite && b.kind == accWrite {
		return a.val.Known && b.val.Known && a.val.K == b.val.K
	}
	return false
}

// overlapKind classifies one cross-section access pair.
type overlapKind uint8

const (
	overlapNone overlapKind = iota
	overlapMay                 // class-level may-alias with a write: demote
	overlapCommute             // provable overlap, but the pair commutes
	overlapConflict            // provable non-commuting overlap
)

func classifyPair(a, b *fpRecord) overlapKind {
	if a.kind == accRead && b.kind == accRead {
		return overlapNone // read-read never invalidates a run
	}
	switch footprintAlias(a.addr, b.addr) {
	case aliasNo:
		return overlapNone
	case aliasMust:
		if commutes(a, b) {
			return overlapCommute
		}
		return overlapConflict
	default:
		return overlapMay
	}
}

// describeSVal renders a static address for witness lines.
func describeSVal(a dvm.SVal) string {
	if a.Known {
		return fmt.Sprintf("address %d", a.K)
	}
	return fmt.Sprintf("address class %q", a.Class)
}

// lockMayAliasOperand reports whether a known lock (with the given declared
// class set) may alias a dynamic lock operand of class opClass. A lock with
// any unclassed sync site has no fact to exclude the operand.
func lockMayAliasOperand(classes map[string]bool, opClass string) bool {
	if classes[""] {
		return true
	}
	return classes[opClass]
}

// analyzeFootprints lifts the per-program footprints into the cross-program
// per-lock conflict graph and returns the verdict table. Verdict
// precedence: Conflicting (a provable non-commuting overlap exists — the
// runtime should start conventional regardless of other hazards) beats
// Unknown (any demotion) beats Commutative beats Disjoint.
func analyzeFootprints(summaries []*progSummary) *SpecHints {
	hints := &SpecHints{Verdicts: map[int64]SpecVerdict{}, Reasons: map[int64]string{}}

	// Gather the verdict domain (every statically known lock), the
	// per-lock entries in deterministic (progIdx, pc) order, the merged
	// demotions, and the dynamic-operand facts.
	lockSet := map[int64]bool{}
	entries := map[int64][]fpEntry{}
	demote := map[int64]string{}
	classes := map[int64]map[string]bool{}
	dynOperands := map[string]bool{}
	setDemote := func(l int64, reason string) {
		if _, ok := demote[l]; !ok {
			demote[l] = reason
		}
	}
	for _, ps := range summaries {
		for id, cls := range ps.lockClasses {
			lockSet[id] = true
			m := classes[id]
			if m == nil {
				m = map[string]bool{}
				classes[id] = m
			}
			for c := range cls {
				m[c] = true
			}
		}
		for id := range ps.fp {
			lockSet[id] = true
		}
		for id := range ps.fpDemote {
			lockSet[id] = true
		}
		for c := range ps.dynLockSeen {
			dynOperands[c] = true
		}
	}
	locks := make([]int64, 0, len(lockSet))
	for l := range lockSet {
		locks = append(locks, l)
	}
	sort.Slice(locks, func(i, j int) bool { return locks[i] < locks[j] })

	for idx, ps := range summaries {
		for _, l := range locks {
			if reason, ok := ps.fpDemote[l]; ok {
				setDemote(l, fmt.Sprintf("%s (program %s)", reason, ps.prog.Name))
			}
			m := ps.fp[l]
			if len(m) == 0 {
				continue
			}
			pcs := make([]int, 0, len(m))
			for pc := range m {
				pcs = append(pcs, pc)
			}
			sort.Ints(pcs)
			for _, pc := range pcs {
				entries[l] = append(entries[l], fpEntry{
					progIdx: idx, pc: pc, nthreads: len(ps.threads),
					rec: m[pc], prog: ps.prog.Name,
				})
			}
		}
		if ps.fpTruncated {
			// The exploration dropped states for this program: any lock it
			// syncs on may have unseen accesses.
			for id := range ps.lockClasses {
				setDemote(id, fmt.Sprintf("state exploration truncated in program %s", ps.prog.Name))
			}
		}
	}

	// Dynamic lock operands: a Lock/Unlock/CondWait whose lock operand the
	// builder could not resolve may alias any known lock its class admits,
	// putting critical sections outside that lock's collected footprint.
	for _, l := range locks {
		for c := range dynOperands {
			if c == "" {
				setDemote(l, "a classless dynamic lock operand may alias any lock")
			} else if lockMayAliasOperand(classes[l], c) {
				setDemote(l, fmt.Sprintf("a dynamic lock operand of class %q may alias this lock", c))
			}
		}
	}

	for _, l := range locks {
		es := entries[l]
		var conflict, commute, mayWhy string
		for i := 0; i < len(es); i++ {
			for j := i; j < len(es); j++ {
				a, b := es[i], es[j]
				// Two entries can only overlap at runtime if they can
				// execute on different threads: always true across
				// programs, and true within one program only when it runs
				// replicated (including an entry against itself).
				if a.progIdx == b.progIdx && a.nthreads < 2 {
					continue
				}
				switch classifyPair(a.rec, b.rec) {
				case overlapConflict:
					if conflict == "" {
						conflict = fmt.Sprintf("%s@pc%d(%s) and %s@pc%d(%s) provably overlap on %s",
							a.rec.kind, a.pc, a.prog, b.rec.kind, b.pc, b.prog, describeSVal(a.rec.addr))
					}
				case overlapCommute:
					if commute == "" {
						commute = fmt.Sprintf("sections overlap only via commuting ops on %s (pc%d/%s × pc%d/%s) — phase-reconciliation candidate",
							describeSVal(a.rec.addr), a.pc, a.prog, b.pc, b.prog)
					}
				case overlapMay:
					if mayWhy == "" {
						mayWhy = fmt.Sprintf("%s@pc%d(%s) and %s@pc%d(%s) may overlap on %s",
							a.rec.kind, a.pc, a.prog, b.rec.kind, b.pc, b.prog, describeSVal(a.rec.addr))
					}
				}
			}
		}
		switch {
		case conflict != "":
			hints.Verdicts[l] = VerdictConflicting
			hints.Reasons[l] = conflict
		case demote[l] != "":
			hints.Verdicts[l] = VerdictUnknown
			hints.Reasons[l] = demote[l]
		case mayWhy != "":
			hints.Verdicts[l] = VerdictUnknown
			hints.Reasons[l] = mayWhy
		case commute != "":
			hints.Verdicts[l] = VerdictCommutative
			hints.Reasons[l] = commute
		default:
			hints.Verdicts[l] = VerdictDisjoint
			if len(es) == 0 {
				hints.Reasons[l] = "no guarded accesses"
			} else {
				hints.Reasons[l] = fmt.Sprintf("all %d guarded accesses provably non-overlapping across threads", len(es))
			}
		}
	}
	return hints
}
