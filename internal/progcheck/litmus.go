package progcheck

import (
	"sort"

	"lazydet/internal/dvm"
)

// LitmusCase is one entry of the known-answer corpus: a tiny program set
// with a seeded synchronization bug (or deliberately none), plus the finding
// classes the analyzer must report for it. The corpus pins the analyzer's
// behavior in both directions — every seeded bug must be flagged, and the
// clean variants must stay silent — and doubles as executable documentation
// of what each finding class means.
type LitmusCase struct {
	Name string
	// Want lists the expected finding classes, sorted; empty means the case
	// must produce zero findings.
	Want []Class
	// Build constructs the program set, one program per thread.
	Build func() []*dvm.Program
}

// Litmus returns the corpus, sorted by name.
func Litmus() []LitmusCase {
	cases := []LitmusCase{
		{
			Name: "abba-deadlock",
			Want: []Class{ClassDeadlock},
			Build: func() []*dvm.Program {
				a := dvm.NewBuilder("ab")
				a.Lock(dvm.Const(0))
				a.Lock(dvm.Const(1))
				a.Unlock(dvm.Const(1))
				a.Unlock(dvm.Const(0))
				b := dvm.NewBuilder("ba")
				b.Lock(dvm.Const(1))
				b.Lock(dvm.Const(0))
				b.Unlock(dvm.Const(0))
				b.Unlock(dvm.Const(1))
				return []*dvm.Program{a.Build(), b.Build()}
			},
		},
		{
			Name: "gate-locked-abba",
			Want: nil, // the outer gate lock serializes the cycle
			Build: func() []*dvm.Program {
				a := dvm.NewBuilder("gate-ab")
				a.Lock(dvm.Const(9))
				a.Lock(dvm.Const(0))
				a.Lock(dvm.Const(1))
				a.Unlock(dvm.Const(1))
				a.Unlock(dvm.Const(0))
				a.Unlock(dvm.Const(9))
				b := dvm.NewBuilder("gate-ba")
				b.Lock(dvm.Const(9))
				b.Lock(dvm.Const(1))
				b.Lock(dvm.Const(0))
				b.Unlock(dvm.Const(0))
				b.Unlock(dvm.Const(1))
				b.Unlock(dvm.Const(9))
				return []*dvm.Program{a.Build(), b.Build()}
			},
		},
		{
			Name: "racy-counter",
			Want: []Class{ClassRace},
			Build: func() []*dvm.Program {
				b := dvm.NewBuilder("racy-inc")
				v := b.Reg()
				b.Load(v, dvm.Const(0))
				b.Store(dvm.Const(0), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(v) + 1 }))
				p := b.Build()
				return []*dvm.Program{p, p}
			},
		},
		{
			Name: "locked-counter",
			Want: nil,
			Build: func() []*dvm.Program {
				b := dvm.NewBuilder("locked-inc")
				v := b.Reg()
				b.Lock(dvm.Const(1))
				b.Load(v, dvm.Const(0))
				b.Store(dvm.Const(0), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(v) + 1 }))
				b.Unlock(dvm.Const(1))
				p := b.Build()
				return []*dvm.Program{p, p}
			},
		},
		{
			Name: "read-locked-writer",
			// The writer takes only the read mode of the lock: readers and
			// the writer can be inside simultaneously, so the race stands.
			Want: []Class{ClassRace},
			Build: func() []*dvm.Program {
				w := dvm.NewBuilder("rw-writer")
				w.RLock(dvm.Const(1))
				w.Store(dvm.Const(0), dvm.Const(7))
				w.RUnlock(dvm.Const(1))
				r := dvm.NewBuilder("rw-reader")
				v := r.Reg()
				r.RLock(dvm.Const(1))
				r.Load(v, dvm.Const(0))
				r.RUnlock(dvm.Const(1))
				return []*dvm.Program{w.Build(), r.Build()}
			},
		},
		{
			Name: "class-race",
			Want: []Class{ClassRace},
			Build: func() []*dvm.Program {
				b := dvm.NewBuilder("class-writer")
				i := b.Reg()
				b.ForN(i, 4, func() {
					b.Store(dvm.FromReg(i).InClass("slots"), dvm.Const(1))
				})
				p := b.Build()
				return []*dvm.Program{p, p}
			},
		},
		{
			Name: "double-lock",
			Want: []Class{ClassDoubleLock},
			Build: func() []*dvm.Program {
				b := dvm.NewBuilder("double-lock")
				b.Lock(dvm.Const(0))
				b.Lock(dvm.Const(0))
				b.Unlock(dvm.Const(0))
				return []*dvm.Program{b.Build()}
			},
		},
		{
			Name: "unlock-without-lock",
			Want: []Class{ClassUnlockWithoutLock},
			Build: func() []*dvm.Program {
				b := dvm.NewBuilder("unlock-free")
				b.Unlock(dvm.Const(0))
				return []*dvm.Program{b.Build()}
			},
		},
		{
			Name: "cond-wait-no-mutex",
			Want: []Class{ClassCondWaitNoMutex},
			Build: func() []*dvm.Program {
				b := dvm.NewBuilder("wait-bare")
				b.CondWait(dvm.Const(0), dvm.Const(1))
				return []*dvm.Program{b.Build()}
			},
		},
		{
			Name: "lock-held-at-exit",
			Want: []Class{ClassHeldAtExit},
			Build: func() []*dvm.Program {
				b := dvm.NewBuilder("leaky")
				b.Lock(dvm.Const(0))
				b.Store(dvm.Const(0), dvm.Const(1))
				return []*dvm.Program{b.Build()}
			},
		},
		{
			Name: "lock-held-on-one-path",
			// Only the If branch leaks the lock; path sensitivity must keep
			// the clean path from masking the leaky one.
			Want: []Class{ClassHeldAtExit},
			Build: func() []*dvm.Program {
				b := dvm.NewBuilder("leaky-branch")
				b.Lock(dvm.Const(0))
				b.If(func(t *dvm.Thread) bool { return t.ID == 0 }, func() {
					b.Unlock(dvm.Const(0))
				})
				return []*dvm.Program{b.Build()}
			},
		},
		{
			Name: "rw-confusion",
			Want: []Class{ClassRWConfusion},
			Build: func() []*dvm.Program {
				b := dvm.NewBuilder("mismatched")
				b.RLock(dvm.Const(0))
				b.Unlock(dvm.Const(0))
				return []*dvm.Program{b.Build()}
			},
		},
		{
			Name: "atomic-clean",
			Want: nil, // atomic RMWs are engine-serialized
			Build: func() []*dvm.Program {
				b := dvm.NewBuilder("atomic-inc")
				v := b.Reg()
				b.AtomicAdd(v, dvm.Const(0), dvm.Const(1))
				p := b.Build()
				return []*dvm.Program{p, p}
			},
		},
		{
			Name: "barrier-phased",
			Want: nil, // the full barrier orders the write before the read
			Build: func() []*dvm.Program {
				w := dvm.NewBuilder("phase-writer")
				w.Store(dvm.Const(0), dvm.Const(42))
				w.Barrier(dvm.Const(0))
				r := dvm.NewBuilder("phase-reader")
				v := r.Reg()
				r.Barrier(dvm.Const(0))
				r.Load(v, dvm.Const(0))
				return []*dvm.Program{w.Build(), r.Build()}
			},
		},
		{
			Name: "unknown-lock-sound-fallback",
			// The lock object is dynamic, so the analyzer must stay silent
			// rather than guess (taint, not findings).
			Want: nil,
			Build: func() []*dvm.Program {
				b := dvm.NewBuilder("dyn-lock")
				v := b.Reg()
				b.Lock(dvm.Dyn(func(t *dvm.Thread) int64 { return int64(t.ID) }))
				b.Load(v, dvm.Const(0))
				b.Store(dvm.Const(0), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(v) + 1 }))
				b.Unlock(dvm.Dyn(func(t *dvm.Thread) int64 { return int64(t.ID) }))
				p := b.Build()
				return []*dvm.Program{p, p}
			},
		},
	}
	sort.Slice(cases, func(i, j int) bool { return cases[i].Name < cases[j].Name })
	return cases
}
