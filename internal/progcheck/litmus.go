package progcheck

import (
	"sort"

	"lazydet/internal/dvm"
)

// LitmusCase is one entry of the known-answer corpus: a tiny program set
// with a seeded synchronization bug (or deliberately none), plus the finding
// classes the analyzer must report for it. The corpus pins the analyzer's
// behavior in both directions — every seeded bug must be flagged, and the
// clean variants must stay silent — and doubles as executable documentation
// of what each finding class means.
type LitmusCase struct {
	Name string
	// Want lists the expected finding classes, sorted; empty means the case
	// must produce zero findings.
	Want []Class
	// WantHints pins the footprint pass's speculation verdicts when non-nil:
	// the report's hint table must equal it exactly (an empty map means no
	// lock may be classified). Nil leaves the verdicts unchecked.
	WantHints map[int64]SpecVerdict
	// Build constructs the program set, one program per thread.
	Build func() []*dvm.Program
}

// Litmus returns the corpus, sorted by name.
func Litmus() []LitmusCase {
	cases := []LitmusCase{
		{
			Name: "abba-deadlock",
			Want: []Class{ClassDeadlock},
			Build: func() []*dvm.Program {
				a := dvm.NewBuilder("ab")
				a.Lock(dvm.Const(0))
				a.Lock(dvm.Const(1))
				a.Unlock(dvm.Const(1))
				a.Unlock(dvm.Const(0))
				b := dvm.NewBuilder("ba")
				b.Lock(dvm.Const(1))
				b.Lock(dvm.Const(0))
				b.Unlock(dvm.Const(0))
				b.Unlock(dvm.Const(1))
				return []*dvm.Program{a.Build(), b.Build()}
			},
		},
		{
			Name: "gate-locked-abba",
			Want: nil, // the outer gate lock serializes the cycle
			Build: func() []*dvm.Program {
				a := dvm.NewBuilder("gate-ab")
				a.Lock(dvm.Const(9))
				a.Lock(dvm.Const(0))
				a.Lock(dvm.Const(1))
				a.Unlock(dvm.Const(1))
				a.Unlock(dvm.Const(0))
				a.Unlock(dvm.Const(9))
				b := dvm.NewBuilder("gate-ba")
				b.Lock(dvm.Const(9))
				b.Lock(dvm.Const(1))
				b.Lock(dvm.Const(0))
				b.Unlock(dvm.Const(0))
				b.Unlock(dvm.Const(1))
				b.Unlock(dvm.Const(9))
				return []*dvm.Program{a.Build(), b.Build()}
			},
		},
		{
			Name: "racy-counter",
			Want: []Class{ClassRace},
			Build: func() []*dvm.Program {
				b := dvm.NewBuilder("racy-inc")
				v := b.Reg()
				b.Load(v, dvm.Const(0))
				b.Store(dvm.Const(0), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(v) + 1 }))
				p := b.Build()
				return []*dvm.Program{p, p}
			},
		},
		{
			Name: "locked-counter",
			Want: nil,
			// The two replicas provably collide on cell 0 through a
			// non-commuting load/store pair: correct code, but speculation
			// through lock 1 is wasted work.
			WantHints: map[int64]SpecVerdict{1: VerdictConflicting},
			Build: func() []*dvm.Program {
				b := dvm.NewBuilder("locked-inc")
				v := b.Reg()
				b.Lock(dvm.Const(1))
				b.Load(v, dvm.Const(0))
				b.Store(dvm.Const(0), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(v) + 1 }))
				b.Unlock(dvm.Const(1))
				p := b.Build()
				return []*dvm.Program{p, p}
			},
		},
		{
			Name: "read-locked-writer",
			// The writer takes only the read mode of the lock: readers and
			// the writer can be inside simultaneously, so the race stands.
			Want: []Class{ClassRace},
			Build: func() []*dvm.Program {
				w := dvm.NewBuilder("rw-writer")
				w.RLock(dvm.Const(1))
				w.Store(dvm.Const(0), dvm.Const(7))
				w.RUnlock(dvm.Const(1))
				r := dvm.NewBuilder("rw-reader")
				v := r.Reg()
				r.RLock(dvm.Const(1))
				r.Load(v, dvm.Const(0))
				r.RUnlock(dvm.Const(1))
				return []*dvm.Program{w.Build(), r.Build()}
			},
		},
		{
			Name: "class-race",
			Want: []Class{ClassRace},
			Build: func() []*dvm.Program {
				b := dvm.NewBuilder("class-writer")
				i := b.Reg()
				b.ForN(i, 4, func() {
					b.Store(dvm.FromReg(i).InClass("slots"), dvm.Const(1))
				})
				p := b.Build()
				return []*dvm.Program{p, p}
			},
		},
		{
			Name: "double-lock",
			Want: []Class{ClassDoubleLock},
			Build: func() []*dvm.Program {
				b := dvm.NewBuilder("double-lock")
				b.Lock(dvm.Const(0))
				b.Lock(dvm.Const(0))
				b.Unlock(dvm.Const(0))
				return []*dvm.Program{b.Build()}
			},
		},
		{
			Name: "unlock-without-lock",
			Want: []Class{ClassUnlockWithoutLock},
			Build: func() []*dvm.Program {
				b := dvm.NewBuilder("unlock-free")
				b.Unlock(dvm.Const(0))
				return []*dvm.Program{b.Build()}
			},
		},
		{
			Name: "cond-wait-no-mutex",
			Want: []Class{ClassCondWaitNoMutex},
			Build: func() []*dvm.Program {
				b := dvm.NewBuilder("wait-bare")
				b.CondWait(dvm.Const(0), dvm.Const(1))
				return []*dvm.Program{b.Build()}
			},
		},
		{
			Name: "lock-held-at-exit",
			Want: []Class{ClassHeldAtExit},
			Build: func() []*dvm.Program {
				b := dvm.NewBuilder("leaky")
				b.Lock(dvm.Const(0))
				b.Store(dvm.Const(0), dvm.Const(1))
				return []*dvm.Program{b.Build()}
			},
		},
		{
			Name: "lock-held-on-one-path",
			// Only the If branch leaks the lock; path sensitivity must keep
			// the clean path from masking the leaky one.
			Want: []Class{ClassHeldAtExit},
			Build: func() []*dvm.Program {
				b := dvm.NewBuilder("leaky-branch")
				b.Lock(dvm.Const(0))
				b.If(func(t *dvm.Thread) bool { return t.ID == 0 }, func() {
					b.Unlock(dvm.Const(0))
				})
				return []*dvm.Program{b.Build()}
			},
		},
		{
			Name: "rw-confusion",
			Want: []Class{ClassRWConfusion},
			Build: func() []*dvm.Program {
				b := dvm.NewBuilder("mismatched")
				b.RLock(dvm.Const(0))
				b.Unlock(dvm.Const(0))
				return []*dvm.Program{b.Build()}
			},
		},
		{
			Name: "atomic-clean",
			Want: nil, // atomic RMWs are engine-serialized
			Build: func() []*dvm.Program {
				b := dvm.NewBuilder("atomic-inc")
				v := b.Reg()
				b.AtomicAdd(v, dvm.Const(0), dvm.Const(1))
				p := b.Build()
				return []*dvm.Program{p, p}
			},
		},
		{
			Name: "barrier-phased",
			Want: nil, // the full barrier orders the write before the read
			Build: func() []*dvm.Program {
				w := dvm.NewBuilder("phase-writer")
				w.Store(dvm.Const(0), dvm.Const(42))
				w.Barrier(dvm.Const(0))
				r := dvm.NewBuilder("phase-reader")
				v := r.Reg()
				r.Barrier(dvm.Const(0))
				r.Load(v, dvm.Const(0))
				return []*dvm.Program{w.Build(), r.Build()}
			},
		},
		{
			Name: "unknown-lock-sound-fallback",
			// The lock object is dynamic, so the analyzer must stay silent
			// rather than guess (taint, not findings). Same for hints: no
			// statically known lock exists, so no verdict may be issued.
			Want:      nil,
			WantHints: map[int64]SpecVerdict{},
			Build: func() []*dvm.Program {
				b := dvm.NewBuilder("dyn-lock")
				v := b.Reg()
				b.Lock(dvm.Dyn(func(t *dvm.Thread) int64 { return int64(t.ID) }))
				b.Load(v, dvm.Const(0))
				b.Store(dvm.Const(0), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(v) + 1 }))
				b.Unlock(dvm.Dyn(func(t *dvm.Thread) int64 { return int64(t.ID) }))
				p := b.Build()
				return []*dvm.Program{p, p}
			},
		},
		{
			Name: "fp-disjoint-private",
			// Both threads serialize on lock 0 but touch different cells:
			// speculation through the lock can never fail validation.
			Want:      nil,
			WantHints: map[int64]SpecVerdict{0: VerdictDisjoint},
			Build: func() []*dvm.Program {
				a := dvm.NewBuilder("fp-priv-a")
				va := a.Reg()
				a.Lock(dvm.Const(0))
				a.Load(va, dvm.Const(1))
				a.Store(dvm.Const(1), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(va) + 1 }))
				a.Unlock(dvm.Const(0))
				b := dvm.NewBuilder("fp-priv-b")
				vb := b.Reg()
				b.Lock(dvm.Const(0))
				b.Load(vb, dvm.Const(2))
				b.Store(dvm.Const(2), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(vb) + 1 }))
				b.Unlock(dvm.Const(0))
				return []*dvm.Program{a.Build(), b.Build()}
			},
		},
		{
			Name: "fp-commutative-counter",
			// The critical sections collide on cell 0, but only through
			// atomic adds, which commute: a phase-reconciliation candidate.
			Want:      nil,
			WantHints: map[int64]SpecVerdict{1: VerdictCommutative},
			Build: func() []*dvm.Program {
				b := dvm.NewBuilder("fp-atomic-add")
				v := b.Reg()
				b.Lock(dvm.Const(1))
				b.AtomicAdd(v, dvm.Const(0), dvm.Const(1))
				b.Unlock(dvm.Const(1))
				p := b.Build()
				return []*dvm.Program{p, p}
			},
		},
		{
			Name: "fp-commutative-const-store",
			// Both replicas blind-write the same constant: either commit
			// order leaves cell 0 holding 7.
			Want:      nil,
			WantHints: map[int64]SpecVerdict{1: VerdictCommutative},
			Build: func() []*dvm.Program {
				b := dvm.NewBuilder("fp-const-store")
				b.Lock(dvm.Const(1))
				b.Store(dvm.Const(0), dvm.Const(7))
				b.Unlock(dvm.Const(1))
				p := b.Build()
				return []*dvm.Program{p, p}
			},
		},
		{
			Name: "fp-unknown-dyn-addr",
			// A store through a dynamic, classless address inside the
			// critical section makes the footprint unbounded: the lock must
			// demote to Unknown, never prove Disjoint.
			Want:      nil,
			WantHints: map[int64]SpecVerdict{1: VerdictUnknown},
			Build: func() []*dvm.Program {
				b := dvm.NewBuilder("fp-dyn-addr")
				b.Lock(dvm.Const(1))
				b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return int64(t.ID) + 8 }), dvm.Const(1))
				b.Unlock(dvm.Const(1))
				return []*dvm.Program{b.Build()}
			},
		},
		{
			Name: "fp-demote-condwait",
			// The mutex is held across a cond wait (and the signaler holds it
			// across the signal): a mid-section commit converts speculative
			// holds to conventional ownership, so the Disjoint validation
			// skip must not apply — even though no guarded access conflicts.
			Want:      nil,
			WantHints: map[int64]SpecVerdict{0: VerdictUnknown},
			Build: func() []*dvm.Program {
				w := dvm.NewBuilder("fp-waiter")
				w.Lock(dvm.Const(0))
				w.CondWait(dvm.Const(3), dvm.Const(0))
				w.Unlock(dvm.Const(0))
				s := dvm.NewBuilder("fp-signaler")
				s.Lock(dvm.Const(0))
				s.CondSignal(dvm.Const(3))
				s.Unlock(dvm.Const(0))
				return []*dvm.Program{w.Build(), s.Build()}
			},
		},
	}
	sort.Slice(cases, func(i, j int) bool { return cases[i].Name < cases[j].Name })
	return cases
}
