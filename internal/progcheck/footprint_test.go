package progcheck

import (
	"strings"
	"testing"

	"lazydet/internal/dvm"
)

// hintOf runs the full analyzer over progs and returns lock l's verdict
// (VerdictUnknown when the lock was not classified at all).
func hintOf(t *testing.T, progs []*dvm.Program, l int64) SpecVerdict {
	t.Helper()
	rep := Check(progs)
	if rep.Hints == nil {
		t.Fatalf("Check produced no hint table")
	}
	return rep.Hints.Verdicts[l]
}

// TestFootprintDisjointConstants: two replicas guarding distinct constant
// cells under one lock are provably disjoint.
func TestFootprintDisjointConstants(t *testing.T) {
	a := dvm.NewBuilder("fpt-a")
	a.Lock(dvm.Const(0))
	a.Store(dvm.Const(10), dvm.Const(1))
	a.Unlock(dvm.Const(0))
	b := dvm.NewBuilder("fpt-b")
	b.Lock(dvm.Const(0))
	b.Store(dvm.Const(11), dvm.Const(1))
	b.Unlock(dvm.Const(0))
	if got := hintOf(t, []*dvm.Program{a.Build(), b.Build()}, 0); got != VerdictDisjoint {
		t.Fatalf("verdict = %s, want disjoint", got)
	}
}

// TestFootprintUnknownOperandDemotes is the soundness keystone: an access
// through a fully unknown address inside a critical section must demote every
// held lock to Unknown — never let it prove Disjoint — even though all the
// other guarded accesses are provably non-overlapping.
func TestFootprintUnknownOperandDemotes(t *testing.T) {
	for _, mode := range []string{"load", "store"} {
		t.Run(mode, func(t *testing.T) {
			b := dvm.NewBuilder("fpt-dyn-" + mode)
			v := b.Reg()
			b.Lock(dvm.Const(0))
			b.Store(dvm.Const(10), dvm.Const(1)) // a provably private access...
			dyn := dvm.Dyn(func(t *dvm.Thread) int64 { return int64(t.ID) })
			if mode == "load" {
				b.Load(v, dyn)
			} else {
				b.Store(dyn, dvm.Const(1))
			}
			b.Unlock(dvm.Const(0))
			p := b.Build()
			rep := Check([]*dvm.Program{p})
			if got := rep.Hints.Verdicts[0]; got != VerdictUnknown {
				t.Fatalf("verdict = %s, want unknown\nreport:\n%s", got, rep.Human())
			}
			if r := rep.Hints.Reasons[0]; !strings.Contains(r, "statically unknown address") {
				t.Fatalf("reason = %q, want unknown-address witness", r)
			}
		})
	}
}

// TestFootprintClassedUnknownAddressKept: an InClass dynamic address is a
// bounded footprint, not a demotion — two different classes stay disjoint.
func TestFootprintClassedUnknownAddressKept(t *testing.T) {
	a := dvm.NewBuilder("fpt-class-a")
	a.Lock(dvm.Const(0))
	a.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return int64(t.ID) }).InClass("left"), dvm.Const(1))
	a.Unlock(dvm.Const(0))
	b := dvm.NewBuilder("fpt-class-b")
	b.Lock(dvm.Const(0))
	b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return 64 + int64(t.ID) }).InClass("right"), dvm.Const(1))
	b.Unlock(dvm.Const(0))
	if got := hintOf(t, []*dvm.Program{a.Build(), b.Build()}, 0); got != VerdictDisjoint {
		t.Fatalf("verdict = %s, want disjoint (distinct classes cannot alias)", got)
	}
}

// TestFootprintClassMayOverlap: a shared class with at least one write is
// only a may-overlap — Unknown, not Conflicting and not Disjoint.
func TestFootprintClassMayOverlap(t *testing.T) {
	b := dvm.NewBuilder("fpt-class-shared")
	b.Lock(dvm.Const(0))
	b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return int64(t.ID) }).InClass("slots"), dvm.Const(1))
	b.Unlock(dvm.Const(0))
	p := b.Build()
	if got := hintOf(t, []*dvm.Program{p, p}, 0); got != VerdictUnknown {
		t.Fatalf("verdict = %s, want unknown (class-level may-overlap)", got)
	}
}

// TestFootprintProvableConflict: a load/store pair on the same constant cell
// across replicas is Conflicting, and the conflict beats any demotion.
func TestFootprintProvableConflict(t *testing.T) {
	b := dvm.NewBuilder("fpt-conflict")
	v := b.Reg()
	b.Lock(dvm.Const(0))
	b.Load(v, dvm.Const(10))
	b.Store(dvm.Const(10), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(v) + 1 }))
	// An unknown-address store would demote, but the provable conflict wins.
	b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return 32 + int64(t.ID) }), dvm.Const(0))
	b.Unlock(dvm.Const(0))
	p := b.Build()
	if got := hintOf(t, []*dvm.Program{p, p}, 0); got != VerdictConflicting {
		t.Fatalf("verdict = %s, want conflicting (precedence over demotion)", got)
	}
}

// TestFootprintCommutative: overlaps only through commuting pairs classify
// Commutative; mixing in a non-commuting pair degrades to Conflicting.
func TestFootprintCommutative(t *testing.T) {
	t.Run("atomic-add", func(t *testing.T) {
		b := dvm.NewBuilder("fpt-add")
		v := b.Reg()
		b.Lock(dvm.Const(0))
		b.AtomicAdd(v, dvm.Const(10), dvm.Const(1))
		b.Unlock(dvm.Const(0))
		p := b.Build()
		if got := hintOf(t, []*dvm.Program{p, p}, 0); got != VerdictCommutative {
			t.Fatalf("verdict = %s, want commutative", got)
		}
	})
	t.Run("const-store", func(t *testing.T) {
		b := dvm.NewBuilder("fpt-const")
		b.Lock(dvm.Const(0))
		b.Store(dvm.Const(10), dvm.Const(7))
		b.Unlock(dvm.Const(0))
		p := b.Build()
		if got := hintOf(t, []*dvm.Program{p, p}, 0); got != VerdictCommutative {
			t.Fatalf("verdict = %s, want commutative", got)
		}
	})
	t.Run("different-const-stores-conflict", func(t *testing.T) {
		a := dvm.NewBuilder("fpt-const-a")
		a.Lock(dvm.Const(0))
		a.Store(dvm.Const(10), dvm.Const(7))
		a.Unlock(dvm.Const(0))
		b := dvm.NewBuilder("fpt-const-b")
		b.Lock(dvm.Const(0))
		b.Store(dvm.Const(10), dvm.Const(8))
		b.Unlock(dvm.Const(0))
		if got := hintOf(t, []*dvm.Program{a.Build(), b.Build()}, 0); got != VerdictConflicting {
			t.Fatalf("verdict = %s, want conflicting (7 vs 8 do not commute)", got)
		}
	})
	t.Run("atomic-cas-conflicts", func(t *testing.T) {
		b := dvm.NewBuilder("fpt-cas")
		v := b.Reg()
		b.Lock(dvm.Const(0))
		b.AtomicCAS(v, dvm.Const(10), dvm.Const(0), dvm.Const(1))
		b.Unlock(dvm.Const(0))
		p := b.Build()
		if got := hintOf(t, []*dvm.Program{p, p}, 0); got != VerdictConflicting {
			t.Fatalf("verdict = %s, want conflicting (CAS does not commute)", got)
		}
	})
}

// TestFootprintReadReadDisjoint: read-read sharing never invalidates a run,
// so a read-only shared cell stays Disjoint.
func TestFootprintReadReadDisjoint(t *testing.T) {
	b := dvm.NewBuilder("fpt-readers")
	v := b.Reg()
	b.Lock(dvm.Const(0))
	b.Load(v, dvm.Const(10))
	b.Unlock(dvm.Const(0))
	p := b.Build()
	if got := hintOf(t, []*dvm.Program{p, p}, 0); got != VerdictDisjoint {
		t.Fatalf("verdict = %s, want disjoint (read-read is harmless)", got)
	}
}

// TestFootprintSingleThreadSelfOverlap: a program that runs on one thread
// cannot race with itself, so its self-overlapping section is Disjoint.
func TestFootprintSingleThreadSelfOverlap(t *testing.T) {
	b := dvm.NewBuilder("fpt-solo")
	v := b.Reg()
	b.Lock(dvm.Const(0))
	b.Load(v, dvm.Const(10))
	b.Store(dvm.Const(10), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(v) + 1 }))
	b.Unlock(dvm.Const(0))
	other := dvm.NewBuilder("fpt-bystander")
	other.Lock(dvm.Const(0))
	other.Unlock(dvm.Const(0))
	if got := hintOf(t, []*dvm.Program{b.Build(), other.Build()}, 0); got != VerdictDisjoint {
		t.Fatalf("verdict = %s, want disjoint (single instance cannot self-race)", got)
	}
}

// TestFootprintMidSectionCommitDemotes: every operation that commits a
// speculation run mid-critical-section (converting speculative holds to
// conventional ownership) must demote the locks held across it.
func TestFootprintMidSectionCommitDemotes(t *testing.T) {
	cases := []struct {
		name string
		emit func(b *dvm.Builder)
	}{
		{"cond-signal", func(b *dvm.Builder) { b.CondSignal(dvm.Const(9)) }},
		{"cond-broadcast", func(b *dvm.Builder) { b.CondBroadcast(dvm.Const(9)) }},
		{"barrier", func(b *dvm.Builder) { b.Barrier(dvm.Const(0)) }},
		{"spawn", func(b *dvm.Builder) { b.Spawn(dvm.Const(1)) }},
		{"join", func(b *dvm.Builder) { b.Join(dvm.Const(1)) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			b := dvm.NewBuilder("fpt-" + c.name)
			b.Lock(dvm.Const(0))
			c.emit(b)
			b.Unlock(dvm.Const(0))
			if got := hintOf(t, []*dvm.Program{b.Build()}, 0); got != VerdictUnknown {
				t.Fatalf("verdict = %s, want unknown (lock held across %s)", got, c.name)
			}
		})
	}
}

// TestFootprintDynLockOperand: a dynamic lock operand makes critical
// sections the analysis cannot see. A classless operand demotes every known
// lock; a classed operand demotes only the locks it may alias.
func TestFootprintDynLockOperand(t *testing.T) {
	t.Run("classless-demotes-all", func(t *testing.T) {
		a := dvm.NewBuilder("fpt-known")
		a.Lock(dvm.Const(0))
		a.Store(dvm.Const(10), dvm.Const(1))
		a.Unlock(dvm.Const(0))
		d := dvm.NewBuilder("fpt-dynlock")
		dyn := dvm.Dyn(func(t *dvm.Thread) int64 { return int64(t.ID) })
		d.Lock(dyn)
		d.Unlock(dyn)
		if got := hintOf(t, []*dvm.Program{a.Build(), d.Build()}, 0); got != VerdictUnknown {
			t.Fatalf("verdict = %s, want unknown (classless dynamic lock may alias lock 0)", got)
		}
	})
	t.Run("classed-spares-other-classes", func(t *testing.T) {
		a := dvm.NewBuilder("fpt-classed-known")
		a.Lock(dvm.Const(0).InClass("mutexes"))
		a.Store(dvm.Const(10), dvm.Const(1))
		a.Unlock(dvm.Const(0).InClass("mutexes"))
		d := dvm.NewBuilder("fpt-classed-dynlock")
		dyn := dvm.Dyn(func(t *dvm.Thread) int64 { return 32 + int64(t.ID) }).InClass("stripes")
		d.Lock(dyn)
		d.Unlock(dyn)
		progs := []*dvm.Program{a.Build(), d.Build()}
		if got := hintOf(t, progs, 0); got != VerdictDisjoint {
			t.Fatalf("verdict = %s, want disjoint (class %q cannot alias class %q)", got, "stripes", "mutexes")
		}
	})
	t.Run("classed-demotes-matching-class", func(t *testing.T) {
		a := dvm.NewBuilder("fpt-same-class-known")
		a.Lock(dvm.Const(0).InClass("stripes"))
		a.Store(dvm.Const(10), dvm.Const(1))
		a.Unlock(dvm.Const(0).InClass("stripes"))
		d := dvm.NewBuilder("fpt-same-class-dynlock")
		dyn := dvm.Dyn(func(t *dvm.Thread) int64 { return 32 + int64(t.ID) }).InClass("stripes")
		d.Lock(dyn)
		d.Unlock(dyn)
		if got := hintOf(t, []*dvm.Program{a.Build(), d.Build()}, 0); got != VerdictUnknown {
			t.Fatalf("verdict = %s, want unknown (same lock class may alias)", got)
		}
	})
}

// TestFootprintTruncationDemotes: blowing the per-PC state bound marks the
// program's footprints incomplete, demoting every lock it syncs on.
func TestFootprintTruncationDemotes(t *testing.T) {
	b := dvm.NewBuilder("fpt-blowup")
	b.Lock(dvm.Const(0))
	b.Store(dvm.Const(10), dvm.Const(1))
	b.Unlock(dvm.Const(0))
	// Each conditional acquisition doubles the reachable locksets at the
	// join points: 2^7 exceeds maxStatesPerPC (64). The leaked locks also
	// produce held-at-exit findings, which this test ignores.
	for i := 1; i <= 7; i++ {
		l := int64(i)
		b.If(func(t *dvm.Thread) bool { return t.ID == 0 }, func() {
			b.Lock(dvm.Const(l))
		})
	}
	p := b.Build()
	rep := Check([]*dvm.Program{p, p})
	if got := rep.Hints.Verdicts[0]; got != VerdictUnknown {
		t.Fatalf("verdict = %s, want unknown\nreason: %q", got, rep.Hints.Reasons[0])
	}
	if r := rep.Hints.Reasons[0]; !strings.Contains(r, "truncated") {
		t.Fatalf("reason = %q, want truncation witness", r)
	}
}

// TestSpecVerdictTextRoundTrip pins the JSON encoding of verdicts.
func TestSpecVerdictTextRoundTrip(t *testing.T) {
	for _, v := range []SpecVerdict{VerdictUnknown, VerdictDisjoint, VerdictConflicting, VerdictCommutative} {
		b, err := v.MarshalText()
		if err != nil {
			t.Fatal(err)
		}
		var back SpecVerdict
		if err := back.UnmarshalText(b); err != nil {
			t.Fatal(err)
		}
		if back != v {
			t.Fatalf("round-trip %s -> %s", v, back)
		}
	}
	var bad SpecVerdict
	if err := bad.UnmarshalText([]byte("bogus")); err == nil {
		t.Fatal("UnmarshalText accepted a bogus verdict")
	}
}
