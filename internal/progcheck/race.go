package progcheck

import (
	"fmt"
	"sort"
)

// findRaces reports pairs of memory accesses that (a) may alias — same known
// constant address, or the same declared address class — (b) conflict (at
// least one write, not both atomic), (c) can overlap in time (barrier phases
// intersect), and (d) are not ordered by a common lock in some reachable
// pair of locksets. Program sets using Spawn/Join are skipped wholesale:
// create/join edges impose happens-before the pass does not model, and
// reporting through them would be guessing.
func findRaces(summaries []*progSummary) []Finding {
	for _, ps := range summaries {
		if ps.usesSpawn {
			return nil
		}
	}

	type owned struct {
		a  *access
		ps *progSummary
	}
	var all []owned
	for _, ps := range summaries {
		pcs := make([]int, 0, len(ps.accesses))
		for pc := range ps.accesses {
			pcs = append(pcs, pc)
		}
		sort.Ints(pcs)
		for _, pc := range pcs {
			all = append(all, owned{ps.accesses[pc], ps})
		}
	}

	var findings []Finding
	seen := map[string]bool{}
	for i := 0; i < len(all); i++ {
		for j := i; j < len(all); j++ {
			x, y := all[i], all[j]
			if x.ps == y.ps && len(x.ps.threads) < 2 {
				continue // a single thread cannot race with itself
			}
			if i == j && x.a.kind == accRead {
				continue
			}
			if !conflicting(x.a, y.a) || !mayAlias(x.a, y.a) || !phasesOverlap(x.a, y.a) {
				continue
			}
			if protected(x.a, y.a) {
				continue
			}
			key := fmt.Sprintf("%s/%d|%s/%d", x.ps.prog.Name, x.a.pc, y.ps.prog.Name, y.a.pc)
			if seen[key] {
				continue
			}
			seen[key] = true
			findings = append(findings, Finding{
				Class: ClassRace, Severity: SevWarn,
				Message: fmt.Sprintf("conflicting %s and %s of %s with no common lock",
					x.a.kind, y.a.kind, describeAddr(x.a)),
				Sites: []Site{
					x.ps.site(x.a.pc, fmt.Sprintf("%s, locked by %s", x.a.kind, describeLocksets(x.a))),
					y.ps.site(y.a.pc, fmt.Sprintf("%s, locked by %s", y.a.kind, describeLocksets(y.a))),
				},
			})
		}
	}
	return findings
}

// conflicting: at least one side writes, and the pair is not two atomics
// (the engine serializes atomic RMWs on the same word).
func conflicting(a, b *access) bool {
	if a.kind == accRead && b.kind == accRead {
		return false
	}
	if a.kind == accAtomic && b.kind == accAtomic {
		return false
	}
	return true
}

// mayAlias uses only the static facts the builder declared: two known
// constants alias iff equal; two class-tagged operands alias iff the class
// matches (classes are disjoint by declaration). A known constant and a
// class, or anything involving a fully unknown operand, yields no aliasing
// fact — and hence no finding.
func mayAlias(a, b *access) bool {
	switch {
	case a.addr.Known && b.addr.Known:
		return a.addr.K == b.addr.K
	case a.addr.Class != "" && b.addr.Class != "":
		return a.addr.Class == b.addr.Class
	default:
		return false
	}
}

// phasesOverlap reports whether the two accesses can execute in the same
// barrier phase. Threads that never hit a barrier stay in phase 0 and
// overlap everything that can run in phase 0.
func phasesOverlap(a, b *access) bool {
	for p := range a.phases {
		if b.phases[p] {
			return true
		}
	}
	return false
}

// protected reports whether every reachable pair of locksets shares a lock
// that orders the two accesses. A common lock protects unless both sides
// hold it in read mode (two readers run concurrently — but then a writer
// holding only the read mode is exactly the confusion worth reporting).
func protected(a, b *access) bool {
	for _, la := range a.locksets {
		for _, lb := range b.locksets {
			if !locksetsProtect(la, lb) {
				return false
			}
		}
	}
	return true
}

func locksetsProtect(la, lb []heldLock) bool {
	for _, x := range la {
		for _, y := range lb {
			if x.id == y.id && !(x.mode == modeRead && y.mode == modeRead) {
				return true
			}
		}
	}
	return false
}

func describeAddr(a *access) string {
	if a.addr.Known {
		return fmt.Sprintf("address %d", a.addr.K)
	}
	return fmt.Sprintf("address class %q", a.addr.Class)
}

func describeLocksets(a *access) string {
	keys := make([]string, 0, len(a.locksets))
	for k := range a.locksets {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := ""
	for i, k := range keys {
		if i > 0 {
			out += " | "
		}
		ls := a.locksets[k]
		if len(ls) == 0 {
			out += "{}"
			continue
		}
		out += "{"
		for j, h := range ls {
			if j > 0 {
				out += ","
			}
			out += fmt.Sprintf("%d:%s", h.id, h.mode)
		}
		out += "}"
	}
	if out == "" {
		return "{}"
	}
	return out
}
