package progcheck

import (
	"fmt"
	"sort"
	"strings"

	"lazydet/internal/dvm"
)

// lockMode is the abstract acquisition mode of a held lock.
type lockMode uint8

const (
	modeWrite lockMode = iota
	modeRead
)

func (m lockMode) String() string {
	if m == modeRead {
		return "read"
	}
	return "write"
}

// heldLock is one entry of an abstract lockset.
type heldLock struct {
	id   int64
	mode lockMode
}

// phaseCap saturates the barrier-phase counter: phases at the cap are
// indistinguishable, which only ever widens the race-overlap check (more
// candidates, never a wrong suppression).
const phaseCap = 8

// maxStatesPerPC bounds the abstract states tracked per program point.
// Programs that exceed it (deeply path-sensitive lock usage) lose states —
// and hence possibly findings — but never gain spurious ones.
const maxStatesPerPC = 64

// absState is one abstract synchronization state: the ordered set of held
// locks, the saturating barrier-phase counter, and a taint bit set when a
// sync operation on a statically unknown object has made the lockset
// unreliable. Tainted states flow on (so reachability stays right) but
// produce no findings.
type absState struct {
	held    []heldLock // sorted by (id, mode)
	phase   uint8
	tainted bool
}

func (s absState) key() string {
	var b strings.Builder
	for _, h := range s.held {
		fmt.Fprintf(&b, "%d/%d;", h.id, h.mode)
	}
	fmt.Fprintf(&b, "|p%d|t%v", s.phase, s.tainted)
	return b.String()
}

func (s absState) clone() absState {
	ns := s
	ns.held = append([]heldLock(nil), s.held...)
	return ns
}

func (s absState) find(id int64) (lockMode, bool) {
	for _, h := range s.held {
		if h.id == id {
			return h.mode, true
		}
	}
	return modeWrite, false
}

func (s *absState) add(id int64, mode lockMode) {
	s.held = append(s.held, heldLock{id, mode})
	sort.Slice(s.held, func(i, j int) bool {
		if s.held[i].id != s.held[j].id {
			return s.held[i].id < s.held[j].id
		}
		return s.held[i].mode < s.held[j].mode
	})
}

func (s *absState) remove(id int64) {
	for i, h := range s.held {
		if h.id == id {
			s.held = append(s.held[:i], s.held[i+1:]...)
			return
		}
	}
}

func (s absState) heldIDs() []int64 {
	ids := make([]int64, len(s.held))
	for i, h := range s.held {
		ids[i] = h.id
	}
	return ids
}

// lockEdge is one lock-order fact: while holding `from` (and everything in
// `guards`), the program acquires `to` at instruction pc.
type lockEdge struct {
	from, to int64
	pc       int
	// guards is the sorted full set of lock IDs held at the acquisition,
	// including from; a lock common to every edge of a cycle is a gate
	// that serializes the cycle and makes the deadlock infeasible.
	guards []int64
}

// accessKind classifies a memory access for the race analysis.
type accessKind uint8

const (
	accRead accessKind = iota
	accWrite
	accAtomic // read-modify-write, but engine-serialized: atomic vs atomic never races
)

func (k accessKind) String() string {
	switch k {
	case accRead:
		return "read"
	case accWrite:
		return "write"
	}
	return "atomic"
}

// access accumulates, per instruction, the abstract contexts a memory
// access executes under: every untainted lockset reached and every barrier
// phase. The race analysis works on these summaries.
type access struct {
	pc   int
	kind accessKind
	addr dvm.SVal
	// locksets are the distinct untainted locksets observed, keyed for dedup.
	locksets map[string][]heldLock
	phases   map[uint8]bool
}

// progSummary is the per-program analysis result feeding the cross-program
// deadlock and race passes.
type progSummary struct {
	prog    *dvm.Program
	threads []int // thread IDs running this program, ascending

	findings       []Finding
	statesExplored int
	unknownSyncOps int

	edges        []lockEdge
	accesses     map[int]*access
	usesSpawn    bool // OpSpawn/OpJoin present: inter-thread HB the race pass does not model
	usesCondSync bool // OpCondSignal/Broadcast/Wait present: same caveat, but locksets still checked

	// Footprint analysis inputs (footprint.go). Unlike the race pass,
	// which drops tainted states because they would only manufacture
	// false positives, the footprint pass must OVER-approximate each
	// lock's footprint — a missed access could wrongly prove a lock
	// Disjoint — so tainted states contribute here too (their stale held
	// entries only enlarge footprints).
	fp          map[int64]map[int]*fpRecord // per held lock, per pc: accesses under it
	fpDemote    map[int64]string            // locks capped at Unknown, with the first reason
	lockClasses map[int64]map[string]bool   // address classes declared at each lock's sync sites ("" = an unclassed site)
	dynLockSeen map[string]bool             // classes of dynamic lock operands ("" = a classless one)
	fpTruncated bool                        // state exploration hit maxStatesPerPC: footprints incomplete
}

// site builds the finding site for this program at pc.
func (ps *progSummary) site(pc int, detail string) Site {
	return Site{Thread: ps.threads[0], Prog: ps.prog.Name, PC: pc, Detail: detail}
}

// analyzeProgram runs the forward abstract interpretation of one program and
// returns its summary. threads lists the thread IDs running the program.
func analyzeProgram(p *dvm.Program, threads []int) *progSummary {
	ps := &progSummary{
		prog: p, threads: threads, accesses: map[int]*access{},
		fp:          map[int64]map[int]*fpRecord{},
		fpDemote:    map[int64]string{},
		lockClasses: map[int64]map[string]bool{},
		dynLockSeen: map[string]bool{},
	}
	if len(p.Code) == 0 {
		return ps
	}

	// seen[pc] holds the state keys already queued at pc; dedup keeps the
	// fixpoint finite, maxStatesPerPC keeps it small.
	seen := make([]map[string]bool, len(p.Code))
	for i := range seen {
		seen[i] = map[string]bool{}
	}
	type work struct {
		pc int
		st absState
	}
	var list []work
	push := func(pc int, st absState) {
		if pc >= len(p.Code) {
			// Validate rejects fall-off-the-end paths; tolerate them here
			// so the analyzer never panics on unvalidated input.
			return
		}
		k := st.key()
		if seen[pc][k] {
			return
		}
		if len(seen[pc]) >= maxStatesPerPC {
			// Dropped states may hide accesses: the footprint pass must
			// not claim Disjoint from an incomplete exploration.
			ps.fpTruncated = true
			return
		}
		seen[pc][k] = true
		list = append(list, work{pc, st})
	}
	// reported dedups findings across the many states reaching one pc.
	reported := map[string]bool{}
	report := func(key string, f Finding) {
		if reported[key] {
			return
		}
		reported[key] = true
		ps.findings = append(ps.findings, f)
	}
	edgeSeen := map[string]bool{}

	push(0, absState{})
	for len(list) > 0 {
		w := list[0]
		list = list[1:]
		ps.statesExplored++
		st := w.st.clone()
		in := &p.Code[w.pc]

		switch in.Op {
		case dvm.OpLock:
			if !in.SAddr.Known {
				ps.unknownSyncOps++
				ps.noteDynLockOperand(in.SAddr)
				st.tainted = true
				break
			}
			id := in.SAddr.K
			ps.noteLockClass(id, in.SAddr.Class)
			mode, held := st.find(id)
			switch {
			case st.tainted:
				// Lockset unreliable: no verdicts, keep the acquisition so
				// later unlocks match up.
				if !held {
					st.add(id, modeWrite)
				}
			case held && mode == modeWrite:
				report(fmt.Sprintf("dl/%d", w.pc), Finding{
					Class: ClassDoubleLock, Severity: SevError,
					Message: fmt.Sprintf("lock %d acquired while already held", id),
					Sites:   []Site{ps.site(w.pc, "second acquisition")},
				})
			case held && mode == modeRead:
				report(fmt.Sprintf("rw-up/%d", w.pc), Finding{
					Class: ClassRWConfusion, Severity: SevError,
					Message: fmt.Sprintf("write-lock of lock %d while holding it in read mode", id),
					Sites:   []Site{ps.site(w.pc, "upgrade attempt")},
				})
			default:
				ps.recordOrderEdges(edgeSeen, &st, id, w.pc)
				st.add(id, modeWrite)
			}

		case dvm.OpRLock:
			if !in.SAddr.Known {
				ps.unknownSyncOps++
				ps.noteDynLockOperand(in.SAddr)
				st.tainted = true
				break
			}
			id := in.SAddr.K
			ps.noteLockClass(id, in.SAddr.Class)
			mode, held := st.find(id)
			switch {
			case st.tainted:
				if !held {
					st.add(id, modeRead)
				}
			case held && mode == modeWrite:
				report(fmt.Sprintf("rw-down/%d", w.pc), Finding{
					Class: ClassRWConfusion, Severity: SevError,
					Message: fmt.Sprintf("read-lock of lock %d while holding it in write mode", id),
					Sites:   []Site{ps.site(w.pc, "re-entrant read of write-held lock")},
				})
			case held && mode == modeRead:
				// Recursive read acquisition is legal; the abstraction keeps
				// a single entry (release counts are not tracked).
			default:
				ps.recordOrderEdges(edgeSeen, &st, id, w.pc)
				st.add(id, modeRead)
			}

		case dvm.OpUnlock:
			if !in.SAddr.Known {
				ps.unknownSyncOps++
				ps.noteDynLockOperand(in.SAddr)
				st.tainted = true
				break
			}
			id := in.SAddr.K
			ps.noteLockClass(id, in.SAddr.Class)
			mode, held := st.find(id)
			switch {
			case st.tainted:
				st.remove(id)
			case held && mode == modeWrite:
				st.remove(id)
			case held && mode == modeRead:
				report(fmt.Sprintf("rw-unl/%d", w.pc), Finding{
					Class: ClassRWConfusion, Severity: SevError,
					Message: fmt.Sprintf("write-unlock of lock %d held in read mode", id),
					Sites:   []Site{ps.site(w.pc, "mismatched release")},
				})
				st.remove(id) // assume the release was intended
			default:
				report(fmt.Sprintf("unl/%d", w.pc), Finding{
					Class: ClassUnlockWithoutLock, Severity: SevError,
					Message: fmt.Sprintf("unlock of lock %d which is not held", id),
					Sites:   []Site{ps.site(w.pc, "release without acquisition")},
				})
			}

		case dvm.OpRUnlock:
			if !in.SAddr.Known {
				ps.unknownSyncOps++
				ps.noteDynLockOperand(in.SAddr)
				st.tainted = true
				break
			}
			id := in.SAddr.K
			ps.noteLockClass(id, in.SAddr.Class)
			mode, held := st.find(id)
			switch {
			case st.tainted:
				st.remove(id)
			case held && mode == modeRead:
				st.remove(id)
			case held && mode == modeWrite:
				report(fmt.Sprintf("rw-runl/%d", w.pc), Finding{
					Class: ClassRWConfusion, Severity: SevError,
					Message: fmt.Sprintf("read-unlock of lock %d held in write mode", id),
					Sites:   []Site{ps.site(w.pc, "mismatched release")},
				})
				st.remove(id)
			default:
				report(fmt.Sprintf("runl/%d", w.pc), Finding{
					Class: ClassUnlockWithoutLock, Severity: SevError,
					Message: fmt.Sprintf("read-unlock of lock %d which is not held", id),
					Sites:   []Site{ps.site(w.pc, "release without acquisition")},
				})
			}

		case dvm.OpCondWait:
			ps.usesCondSync = true
			// A run terminating at a condition-variable operation commits
			// with its critical-section locks still held, converting them
			// to conventional ownership — a conversion the Disjoint
			// validation skip must never race (DESIGN.md §5e) — so every
			// lock held here is capped at Unknown.
			ps.demoteHeld(st, w.pc, "held across cond-wait")
			if !in.SAddr2.Known {
				ps.unknownSyncOps++
				ps.noteDynLockOperand(in.SAddr2)
				st.tainted = true
				break
			}
			id := in.SAddr2.K
			ps.noteLockClass(id, in.SAddr2.Class)
			mode, held := st.find(id)
			if !st.tainted && (!held || mode != modeWrite) {
				report(fmt.Sprintf("cw/%d", w.pc), Finding{
					Class: ClassCondWaitNoMutex, Severity: SevError,
					Message: fmt.Sprintf("cond-wait requires mutex %d held in write mode", id),
					Sites:   []Site{ps.site(w.pc, "wait without its mutex")},
				})
			}
			// The wait releases and reacquires the mutex: the lockset is
			// unchanged afterwards, but arbitrary interleavings happened.

		case dvm.OpCondSignal, dvm.OpCondBroadcast:
			ps.usesCondSync = true
			// Signal/broadcast terminate a speculation run mid-critical
			// section; see the OpCondWait demotion rationale.
			ps.demoteHeld(st, w.pc, "held across cond-signal/broadcast")
			if !in.SAddr.Known {
				ps.unknownSyncOps++
			}

		case dvm.OpBarrier:
			ps.demoteHeld(st, w.pc, "held across barrier")
			if in.SAddr.Known {
				if st.phase < phaseCap {
					st.phase++
				}
			} else {
				// Unknown barrier: leave the phase alone, so the race pass
				// still treats accesses around it as overlapping.
				ps.unknownSyncOps++
			}

		case dvm.OpLoad:
			ps.recordAccess(w.pc, accRead, in.SAddr, st)
			ps.recordFootprint(w.pc, accRead, in, st)
		case dvm.OpStore:
			ps.recordAccess(w.pc, accWrite, in.SAddr, st)
			ps.recordFootprint(w.pc, accWrite, in, st)
		case dvm.OpAtomic:
			ps.recordAccess(w.pc, accAtomic, in.SAddr, st)
			ps.recordFootprint(w.pc, accAtomic, in, st)

		case dvm.OpSpawn, dvm.OpJoin:
			ps.usesSpawn = true
			ps.demoteHeld(st, w.pc, "held across spawn/join")

		case dvm.OpHalt:
			ps.demoteHeld(st, w.pc, "held at thread exit")
			if !st.tainted && len(st.held) > 0 {
				ids := st.heldIDs()
				strs := make([]string, len(ids))
				for i, id := range ids {
					strs[i] = fmt.Sprintf("%d", id)
				}
				report(fmt.Sprintf("exit/%d/%s", w.pc, strings.Join(strs, ",")), Finding{
					Class: ClassHeldAtExit, Severity: SevError,
					Message: fmt.Sprintf("thread halts still holding lock(s) %s", strings.Join(strs, ", ")),
					Sites:   []Site{ps.site(w.pc, "halt with live acquisitions")},
				})
			}
		}

		for _, succ := range ps.successors(w.pc) {
			push(succ, st)
		}
	}
	return ps
}

// successors mirrors Program.successors but stays total on unvalidated input.
func (ps *progSummary) successors(pc int) []int {
	in := &ps.prog.Code[pc]
	switch in.Op {
	case dvm.OpHalt:
		return nil
	case dvm.OpJump:
		return []int{in.Target}
	case dvm.OpBranchUnless:
		if in.Target == pc+1 {
			return []int{pc + 1}
		}
		return []int{pc + 1, in.Target}
	default:
		return []int{pc + 1}
	}
}

// recordOrderEdges adds a lock-order edge from every currently held lock to
// the one being acquired, carrying the full held set as the guard set.
func (ps *progSummary) recordOrderEdges(seen map[string]bool, st *absState, to int64, pc int) {
	if len(st.held) == 0 {
		return
	}
	guards := st.heldIDs()
	gkey := fmt.Sprint(guards)
	for _, h := range st.held {
		key := fmt.Sprintf("%d>%d@%d|%s", h.id, to, pc, gkey)
		if seen[key] {
			continue
		}
		seen[key] = true
		ps.edges = append(ps.edges, lockEdge{from: h.id, to: to, pc: pc, guards: guards})
	}
}

// recordAccess folds one abstract execution of a memory access into the
// per-pc summary. Tainted states contribute nothing: their locksets are
// unreliable and would only manufacture false candidates.
func (ps *progSummary) recordAccess(pc int, kind accessKind, addr dvm.SVal, st absState) {
	if st.tainted {
		return
	}
	if !addr.Known && addr.Class == "" {
		return // unknown address: no static aliasing facts, nothing to check
	}
	a := ps.accesses[pc]
	if a == nil {
		a = &access{pc: pc, kind: kind, addr: addr,
			locksets: map[string][]heldLock{}, phases: map[uint8]bool{}}
		ps.accesses[pc] = a
	}
	key := ""
	for _, h := range st.held {
		key += fmt.Sprintf("%d/%d;", h.id, h.mode)
	}
	if _, ok := a.locksets[key]; !ok {
		a.locksets[key] = append([]heldLock(nil), st.held...)
	}
	a.phases[st.phase] = true
}
