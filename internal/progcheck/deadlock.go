package progcheck

import (
	"fmt"
	"sort"
	"strings"
)

// maxCycleLen bounds the lock-order cycles the analysis searches for.
// Real-world deadlocks overwhelmingly involve two or three locks; longer
// cycles exist but cost exponentially more to enumerate.
const maxCycleLen = 4

// maxEdgesPerPair bounds how many concrete acquisition sites are considered
// per (from lock, to lock) pair when searching for a feasible witness.
const maxEdgesPerPair = 8

// taggedEdge is a lock-order edge attributed to the summary that produced it.
type taggedEdge struct {
	lockEdge
	owner *progSummary
}

// lockPair keys the lock-order multigraph by (held, acquired).
type lockPair struct{ from, to int64 }

// findDeadlocks builds the cross-program lock-order multigraph and reports
// every lock cycle that is feasible: some selection of one acquisition site
// per cycle arc has (a) no gate lock — a lock held across *every* selected
// acquisition, which would serialize the cycle — and (b) an assignment of
// distinct threads to the arcs.
func findDeadlocks(summaries []*progSummary) []Finding {
	// Group edges by (from, to).
	pairs := map[lockPair][]taggedEdge{}
	adj := map[int64][]int64{} // from -> sorted distinct to
	for _, ps := range summaries {
		for _, e := range ps.edges {
			k := lockPair{e.from, e.to}
			if len(pairs[k]) < maxEdgesPerPair {
				pairs[k] = append(pairs[k], taggedEdge{e, ps})
			}
		}
	}
	for k := range pairs {
		adj[k.from] = append(adj[k.from], k.to)
	}
	nodes := make([]int64, 0, len(adj))
	for n, tos := range adj {
		sort.Slice(tos, func(i, j int) bool { return tos[i] < tos[j] })
		adj[n] = tos
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })

	var findings []Finding
	seenCycle := map[string]bool{}

	// Enumerate simple cycles up to maxCycleLen, canonicalized by starting
	// at the cycle's smallest lock ID so each is found once.
	var path []int64
	var dfs func(start, cur int64)
	dfs = func(start, cur int64) {
		for _, next := range adj[cur] {
			if next == start && len(path) >= 2 {
				key := fmt.Sprint(path)
				if !seenCycle[key] {
					seenCycle[key] = true
					if f, ok := witness(path, pairs); ok {
						findings = append(findings, f)
					}
				}
				continue
			}
			if next <= start || len(path) >= maxCycleLen {
				continue // canonical form: start is the minimum node
			}
			dup := false
			for _, p := range path {
				if p == next {
					dup = true
					break
				}
			}
			if dup {
				continue
			}
			path = append(path, next)
			dfs(start, next)
			path = path[:len(path)-1]
		}
	}
	for _, n := range nodes {
		path = append(path[:0], n)
		dfs(n, n)
	}
	return findings
}

// witness searches the edge selections of a lock cycle for a feasible one and
// renders it as a finding. cycle lists the lock IDs in order; arc i acquires
// cycle[(i+1)%len] while holding cycle[i].
func witness(cycle []int64, pairs map[lockPair][]taggedEdge) (Finding, bool) {
	n := len(cycle)
	arcs := make([][]taggedEdge, n)
	for i := range cycle {
		arcs[i] = pairs[lockPair{cycle[i], cycle[(i+1)%n]}]
		if len(arcs[i]) == 0 {
			return Finding{}, false
		}
	}

	sel := make([]taggedEdge, n)
	var pick func(i int) bool
	pick = func(i int) bool {
		if i == n {
			return feasible(sel)
		}
		for _, e := range arcs[i] {
			sel[i] = e
			if pick(i + 1) {
				return true
			}
		}
		return false
	}
	if !pick(0) {
		return Finding{}, false
	}

	ids := make([]string, n)
	sites := make([]Site, n)
	threadOf := assignThreads(sel)
	for i, e := range sel {
		ids[i] = fmt.Sprintf("%d", cycle[i])
		sites[i] = Site{
			Thread: threadOf[i],
			Prog:   e.owner.prog.Name,
			PC:     e.pc,
			Detail: fmt.Sprintf("acquires lock %d while holding lock %d", e.to, e.from),
		}
	}
	return Finding{
		Class: ClassDeadlock, Severity: SevWarn,
		Message: fmt.Sprintf("locks %s form an acquisition cycle; some schedule deadlocks here",
			strings.Join(ids, " -> ")+" -> "+ids[0]),
		Sites: sites,
	}, true
}

// feasible reports whether a selected set of cycle edges can actually
// deadlock: no common gate lock across every acquisition, and distinct
// threads can execute the arcs.
func feasible(sel []taggedEdge) bool {
	// Gate-lock suppression: a lock held at every selected acquisition
	// serializes the cycle. Intersect the guard sets.
	gates := map[int64]int{}
	for _, e := range sel {
		seen := map[int64]bool{}
		for _, g := range e.guards {
			if !seen[g] {
				seen[g] = true
				gates[g]++
			}
		}
	}
	for g, cnt := range gates {
		if cnt != len(sel) {
			continue
		}
		// g is held across all arcs — but the cycle's own locks do not
		// count as gates (each arc holds its from-lock by construction).
		own := false
		for _, e := range sel {
			if e.from == g || e.to == g {
				own = true
				break
			}
		}
		if !own {
			return false
		}
	}
	return assignThreads(sel) != nil
}

// assignThreads finds an assignment of distinct thread IDs to the selected
// edges (each arc of a deadlock must be executed by a different thread), or
// nil if none exists. Edge i may be run by any thread of its owning summary.
func assignThreads(sel []taggedEdge) []int {
	out := make([]int, len(sel))
	used := map[int]bool{}
	var place func(i int) bool
	place = func(i int) bool {
		if i == len(sel) {
			return true
		}
		for _, t := range sel[i].owner.threads {
			if used[t] {
				continue
			}
			used[t] = true
			out[i] = t
			if place(i + 1) {
				return true
			}
			delete(used, t)
		}
		return false
	}
	if !place(0) {
		return nil
	}
	return out
}
