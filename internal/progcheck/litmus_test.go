package progcheck

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// TestLitmusClasses pins the analyzer's verdicts: every seeded bug in the
// corpus must be reported with exactly the expected finding classes, and the
// clean variants must stay silent.
func TestLitmusClasses(t *testing.T) {
	for _, c := range Litmus() {
		t.Run(c.Name, func(t *testing.T) {
			rep := Check(c.Build())
			got := rep.Classes()
			want := append([]Class(nil), c.Want...)
			if len(got) == 0 && len(want) == 0 {
				return
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("classes = %v, want %v\nreport:\n%s", got, want, rep.Human())
			}
		})
	}
}

// TestLitmusHints pins the footprint pass's speculation verdicts for every
// case that declares an expectation: exact equality, so a spurious verdict on
// an unlisted lock fails just like a missing one.
func TestLitmusHints(t *testing.T) {
	for _, c := range Litmus() {
		if c.WantHints == nil {
			continue
		}
		t.Run(c.Name, func(t *testing.T) {
			rep := Check(c.Build())
			got := map[int64]SpecVerdict{}
			if rep.Hints != nil {
				for l, v := range rep.Hints.Verdicts {
					got[l] = v
				}
			}
			if !reflect.DeepEqual(got, c.WantHints) {
				t.Fatalf("hint verdicts = %v, want %v\nreport:\n%s", got, c.WantHints, rep.Human())
			}
		})
	}
}

// TestLitmusGolden pins the exact rendered reports, so message wording,
// sites and ordering cannot drift silently. Refresh with
// `go test ./internal/progcheck -run TestLitmusGolden -update`.
func TestLitmusGolden(t *testing.T) {
	var b strings.Builder
	for _, c := range Litmus() {
		rep := Check(c.Build())
		rep.Stats.AnalysisNs = 0 // wall time is machine-dependent
		fmt.Fprintf(&b, "== %s ==\n%s\n", c.Name, rep.Human())
	}
	got := b.String()

	path := filepath.Join("testdata", "litmus.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Fatalf("litmus report drifted from golden (run with -update to refresh)\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestSeverityMapping: discipline violations are errors, schedule-dependent
// hazards (deadlock cycles, races) are warnings.
func TestSeverityMapping(t *testing.T) {
	wantSev := map[Class]Severity{
		ClassDoubleLock:        SevError,
		ClassUnlockWithoutLock: SevError,
		ClassRWConfusion:       SevError,
		ClassHeldAtExit:        SevError,
		ClassCondWaitNoMutex:   SevError,
		ClassDeadlock:          SevWarn,
		ClassRace:              SevWarn,
	}
	seen := map[Class]bool{}
	for _, c := range Litmus() {
		for _, f := range Check(c.Build()).Findings {
			seen[f.Class] = true
			if want, ok := wantSev[f.Class]; !ok || f.Severity != want {
				t.Errorf("%s: finding %s has severity %s, want %s", c.Name, f.Class, f.Severity, want)
			}
		}
	}
	for cl := range wantSev {
		if !seen[cl] {
			t.Errorf("litmus corpus exercises no %s finding", cl)
		}
	}
}

// TestReplicaDedup: N threads running the same *Program are analyzed once.
func TestReplicaDedup(t *testing.T) {
	c := litmusByName(t, "racy-counter")
	progs := c.Build()
	progs = append(progs, progs[0], progs[0])
	rep := Check(progs)
	if rep.Stats.Programs != 1 {
		t.Fatalf("Programs = %d, want 1 (replicas dedup)", rep.Stats.Programs)
	}
	if rep.Stats.Threads != 4 {
		t.Fatalf("Threads = %d, want 4", rep.Stats.Threads)
	}
}

// TestUnknownSyncCounted: dynamic sync objects are counted, not guessed at.
func TestUnknownSyncCounted(t *testing.T) {
	c := litmusByName(t, "unknown-lock-sound-fallback")
	rep := Check(c.Build())
	if rep.Stats.UnknownSyncOps == 0 {
		t.Fatal("UnknownSyncOps = 0, want > 0 for dynamic lock operands")
	}
	if len(rep.Findings) != 0 {
		t.Fatalf("tainted analysis must stay silent, got:\n%s", rep.Human())
	}
}

func litmusByName(t *testing.T, name string) LitmusCase {
	t.Helper()
	for _, c := range Litmus() {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("no litmus case %q", name)
	return LitmusCase{}
}
