package progcheck

import "lazydet/internal/telemetry"

// Publish records the analysis outcome into the telemetry registry under the
// progcheck.* namespace: programs/instructions/states analyzed, unknown sync
// operations (the precision loss), findings by class, speculation-hint
// verdict counts, and the analysis wall time. The counters are deterministic
// except the *_ns ones, which the report builder routes into the never-gated
// Timing section.
func (r *Report) Publish(tel *telemetry.Recorder) {
	if !tel.Enabled() {
		return
	}
	tel.Count("progcheck.programs", int64(r.Stats.Programs))
	tel.Count("progcheck.instructions", int64(r.Stats.Instructions))
	tel.Count("progcheck.states", int64(r.Stats.States))
	tel.Count("progcheck.unknown_sync_ops", int64(r.Stats.UnknownSyncOps))
	tel.Count("progcheck.findings.total", int64(len(r.Findings)))
	for _, f := range r.Findings {
		tel.Count("progcheck.findings."+string(f.Class), 1)
	}
	r.Hints.Publish(tel)
	tel.Count("progcheck.analysis_ns", r.Stats.AnalysisNs)
	tel.Count("progcheck.lockstate_ns", r.Stats.LockstateNs)
	tel.Count("progcheck.deadlock_ns", r.Stats.DeadlockNs)
	tel.Count("progcheck.race_ns", r.Stats.RaceNs)
	tel.Count("progcheck.footprint_ns", r.Stats.FootprintNs)
}

// Publish records the footprint verdict counts under progcheck.hints.*.
// Deterministic (pure functions of the program set), so gateable.
func (h *SpecHints) Publish(tel *telemetry.Recorder) {
	if h == nil || !tel.Enabled() {
		return
	}
	tel.Count("progcheck.hints.locks", int64(len(h.Verdicts)))
	tel.Count("progcheck.hints.disjoint", int64(h.Count(VerdictDisjoint)))
	tel.Count("progcheck.hints.conflicting", int64(h.Count(VerdictConflicting)))
	tel.Count("progcheck.hints.commutative", int64(h.Count(VerdictCommutative)))
	tel.Count("progcheck.hints.unknown", int64(h.Count(VerdictUnknown)))
}
