package progcheck

import "lazydet/internal/telemetry"

// Publish records the analysis outcome into the telemetry registry under the
// progcheck.* namespace: programs/instructions/states analyzed, unknown sync
// operations (the precision loss), findings by class, and the analysis wall
// time. The counters are deterministic except progcheck.analysis_ns, which
// the report builder routes into the never-gated Timing section.
func (r *Report) Publish(tel *telemetry.Recorder) {
	if !tel.Enabled() {
		return
	}
	tel.Count("progcheck.programs", int64(r.Stats.Programs))
	tel.Count("progcheck.instructions", int64(r.Stats.Instructions))
	tel.Count("progcheck.states", int64(r.Stats.States))
	tel.Count("progcheck.unknown_sync_ops", int64(r.Stats.UnknownSyncOps))
	tel.Count("progcheck.findings.total", int64(len(r.Findings)))
	for _, f := range r.Findings {
		tel.Count("progcheck.findings."+string(f.Class), 1)
	}
	tel.Count("progcheck.analysis_ns", r.Stats.AnalysisNs)
}
