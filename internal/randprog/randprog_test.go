package randprog

import (
	"testing"

	"lazydet/internal/dvm"
	"lazydet/internal/harness"
)

// opcodes flattens the generated per-thread programs to their opcode streams.
func opcodes(w *harness.Workload, threads int) [][]dvm.Opcode {
	progs := w.Programs(threads)
	out := make([][]dvm.Opcode, len(progs))
	for i, p := range progs {
		ops := make([]dvm.Opcode, len(p.Code))
		for j, in := range p.Code {
			ops[j] = in.Op
		}
		out[i] = ops
	}
	return out
}

// TestSeededStability: the generator is a pure function of (seed, config) —
// two calls yield identical expected-memory models and identical opcode
// streams, and the generated workload reproduces trace signature and heap
// hash across independent Consequence runs.
func TestSeededStability(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.OpsPerThread = 40
	for _, seed := range []uint64{1, 7, 42, 1 << 40} {
		w1, exp1, err := Generate(seed, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		w2, exp2, err := Generate(seed, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if len(exp1) != len(exp2) {
			t.Fatalf("seed %d: expected-model sizes differ: %d vs %d", seed, len(exp1), len(exp2))
		}
		for cell, v1 := range exp1 {
			if v2, ok := exp2[cell]; !ok || v1 != v2 {
				t.Fatalf("seed %d: expected[%d] = %d vs %d", seed, cell, v1, v2)
			}
		}
		ops1, ops2 := opcodes(w1, cfg.Threads), opcodes(w2, cfg.Threads)
		for tid := range ops1 {
			if len(ops1[tid]) != len(ops2[tid]) {
				t.Fatalf("seed %d thread %d: program lengths differ: %d vs %d",
					seed, tid, len(ops1[tid]), len(ops2[tid]))
			}
			for j := range ops1[tid] {
				if ops1[tid][j] != ops2[tid][j] {
					t.Fatalf("seed %d thread %d instr %d: opcode %v vs %v",
						seed, tid, j, ops1[tid][j], ops2[tid][j])
				}
			}
		}
		opt := harness.Options{Engine: harness.Consequence, Threads: cfg.Threads, Trace: true}
		r1, err := harness.Run(w1, opt)
		if err != nil {
			t.Fatalf("seed %d run 1: %v", seed, err)
		}
		r2, err := harness.Run(w2, opt)
		if err != nil {
			t.Fatalf("seed %d run 2: %v", seed, err)
		}
		if r1.TraceSig != r2.TraceSig || r1.HeapHash != r2.HeapHash {
			t.Fatalf("seed %d: same seed diverged (trace %x/%x heap %x/%x)",
				seed, r1.TraceSig, r2.TraceSig, r1.HeapHash, r2.HeapHash)
		}
	}
}

// TestSeedsDiffer: distinct seeds actually produce distinct programs.
func TestSeedsDiffer(t *testing.T) {
	cfg := DefaultConfig(2)
	_, exp1, err := Generate(1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, exp2, err := Generate(2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	same := len(exp1) == len(exp2)
	if same {
		for cell, v := range exp1 {
			if exp2[cell] != v {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 1 and 2 generated identical expected models")
	}
}

// TestConfigRejection: malformed configurations return errors instead of
// generating broken programs.
func TestConfigRejection(t *testing.T) {
	base := DefaultConfig(4)
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"no-threads", func(c *Config) { c.Threads = 0 }},
		{"one-cell", func(c *Config) { c.Cells = 1 }},
		{"no-atomic-cells", func(c *Config) { c.AtomicCells = 0 }},
		{"negative-ops", func(c *Config) { c.OpsPerThread = -1 }},
		{"negative-barriers", func(c *Config) { c.MaxBarriers = -1 }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if _, _, err := Generate(1, cfg); err == nil {
			t.Errorf("%s: Generate accepted invalid config %+v", tc.name, cfg)
		}
	}
}

// countOps tallies opcode occurrences across every thread's program.
func countOps(w *harness.Workload, threads int) map[dvm.Opcode]int {
	n := map[dvm.Opcode]int{}
	for _, ops := range opcodes(w, threads) {
		for _, op := range ops {
			n[op]++
		}
	}
	return n
}

// TestOpCoverage: the default configuration emits the rwlock, syscall and
// condvar operations the hardened generator exists to cover, and disabling
// each class removes it.
func TestOpCoverage(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.OpsPerThread = 200 // enough draws to hit every op-kind case
	var seed uint64 = 3

	w, _, err := Generate(seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n := countOps(w, cfg.Threads)
	for _, op := range []dvm.Opcode{dvm.OpLock, dvm.OpRLock, dvm.OpSyscall, dvm.OpCondWait, dvm.OpAtomic} {
		if n[op] == 0 {
			t.Errorf("default config, seed %d: no %v emitted (counts %v)", seed, op, n)
		}
	}

	cfg.WithRWLocks, cfg.WithSyscalls, cfg.WithCondvars = false, false, false
	w, _, err = Generate(seed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n = countOps(w, cfg.Threads)
	for _, op := range []dvm.Opcode{dvm.OpRLock, dvm.OpSyscall, dvm.OpCondWait, dvm.OpCondSignal} {
		if n[op] != 0 {
			t.Errorf("all classes disabled, seed %d: %d %v emitted", seed, n[op], op)
		}
	}
}

// TestExpectedModelMatchesEveryEngine: one generated workload satisfies its
// own model under all five engines (the fuzzer's property 1, pinned as a
// test).
func TestExpectedModelMatchesEveryEngine(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.OpsPerThread = 30
	w, _, err := Generate(99, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, eng := range harness.AllEngines {
		if _, err := harness.Run(w, harness.Options{Engine: eng, Threads: cfg.Threads}); err != nil {
			t.Errorf("%s: %v", eng, err)
		}
	}
}
