// Package randprog generates random-but-checkable workloads for
// differential testing of the engines: every generated program is
// data-race-free and all its updates commute, so the final shared memory is
// schedule-independent and predictable on the host. Any engine —
// deterministic or not — must produce exactly the model's state, and the
// deterministic engines must additionally reproduce their synchronization
// traces run over run.
//
// The generator is used by the property tests in internal/harness and by
// the cmd/lazydet-fuzz stress tool.
package randprog

import (
	"fmt"

	"lazydet/internal/dvm"
	"lazydet/internal/harness"
)

// Config bounds the generated programs.
type Config struct {
	Threads      int
	Cells        int // lock-protected cells (one lock per cell)
	AtomicCells  int // cells updated only with atomics
	OpsPerThread int
	MaxBarriers  int
	// WithCondvars adds a final condvar rendezvous phase.
	WithCondvars bool
}

// DefaultConfig returns moderate bounds.
func DefaultConfig(threads int) Config {
	return Config{
		Threads:      threads,
		Cells:        32,
		AtomicCells:  8,
		OpsPerThread: 60,
		MaxBarriers:  3,
	}
}

type opKind int

const (
	opLockedAdd opKind = iota
	opAtomicAdd
	opBarrier
	opNestedAdd // two cells under ordered nested locks
)

type op struct {
	kind   opKind
	cell   int64
	cell2  int64
	delta  int64
	delta2 int64
}

// Generate builds a workload from the seed and returns it with the
// host-side model of the expected final memory.
func Generate(seed uint64, cfg Config) (*harness.Workload, map[int64]int64) {
	plans := make([][]op, cfg.Threads)
	expected := map[int64]int64{}
	r := seed
	next := func(n uint64) uint64 {
		r = r*6364136223846793005 + 1442695040888963407
		return (r >> 33) % n
	}
	barriers := 0
	for tid := 0; tid < cfg.Threads; tid++ {
		for i := 0; i < cfg.OpsPerThread; i++ {
			switch next(12) {
			case 0:
				if tid == 0 && barriers < cfg.MaxBarriers {
					barriers++
					for t2 := 0; t2 < cfg.Threads; t2++ {
						plans[t2] = append(plans[t2], op{kind: opBarrier})
					}
					continue
				}
				fallthrough
			case 1, 2, 3, 4, 5:
				c := int64(next(uint64(cfg.Cells)))
				d := int64(next(7)) + 1
				plans[tid] = append(plans[tid], op{kind: opLockedAdd, cell: c, delta: d})
				expected[c] += d
			case 6, 7:
				// Nested critical section over two ordered cells.
				a := int64(next(uint64(cfg.Cells)))
				b := int64(next(uint64(cfg.Cells)))
				if a == b {
					b = (b + 1) % int64(cfg.Cells)
				}
				if a > b {
					a, b = b, a
				}
				da := int64(next(5)) + 1
				db := int64(next(5)) + 1
				plans[tid] = append(plans[tid], op{kind: opNestedAdd, cell: a, cell2: b, delta: da, delta2: db})
				expected[a] += da
				expected[b] += db
			default:
				c := int64(cfg.Cells) + int64(next(uint64(cfg.AtomicCells)))
				d := int64(next(5)) + 1
				plans[tid] = append(plans[tid], op{kind: opAtomicAdd, cell: c, delta: d})
				expected[c] += d
			}
		}
	}

	w := &harness.Workload{
		Name:      fmt.Sprintf("randprog-%x", seed),
		HeapWords: int64(cfg.Cells + cfg.AtomicCells),
		Locks:     cfg.Cells,
		Barriers:  1,
		Conds:     1,
		Programs: func(n int) []*dvm.Program {
			progs := make([]*dvm.Program, n)
			for tid := 0; tid < n; tid++ {
				b := dvm.NewBuilder(fmt.Sprintf("rnd-%d", tid))
				v := b.Reg()
				for _, o := range plans[tid] {
					o := o
					switch o.kind {
					case opLockedAdd:
						b.Lock(dvm.Const(o.cell))
						b.Load(v, dvm.Const(o.cell))
						b.Store(dvm.Const(o.cell), func(t *dvm.Thread) int64 { return t.R(v) + o.delta })
						b.Unlock(dvm.Const(o.cell))
					case opNestedAdd:
						b.Lock(dvm.Const(o.cell))
						b.Lock(dvm.Const(o.cell2))
						b.Load(v, dvm.Const(o.cell))
						b.Store(dvm.Const(o.cell), func(t *dvm.Thread) int64 { return t.R(v) + o.delta })
						b.Load(v, dvm.Const(o.cell2))
						b.Store(dvm.Const(o.cell2), func(t *dvm.Thread) int64 { return t.R(v) + o.delta2 })
						b.Unlock(dvm.Const(o.cell2))
						b.Unlock(dvm.Const(o.cell))
					case opAtomicAdd:
						b.AtomicAdd(v, dvm.Const(o.cell), dvm.Const(o.delta))
					case opBarrier:
						b.Barrier(dvm.Const(0))
					}
				}
				progs[tid] = b.Build()
			}
			return progs
		},
	}
	w.Validate = func(read func(int64) int64, _ int) error {
		for cell, want := range expected {
			if got := read(cell); got != want {
				return fmt.Errorf("cell %d = %d, want %d", cell, got, want)
			}
		}
		return nil
	}
	return w, expected
}
