// Package randprog generates random-but-checkable workloads for
// differential testing of the engines: every generated program is
// data-race-free and all its updates commute, so the final shared memory is
// schedule-independent and predictable on the host. Any engine —
// deterministic or not — must produce exactly the model's state, and the
// deterministic engines must additionally reproduce their synchronization
// traces run over run.
//
// The operation mix deliberately covers every engine code path that has
// distinct speculation behavior: exclusive locks (plain and nested),
// shared-mode rwlock reads (reader conflict detection, read logging),
// atomics (the speculative-atomics extension), barriers (run termination at
// a rendezvous), system calls both inside a critical section (irrevocable
// upgrade, paper §3.5) and outside one (run termination), and a final
// condition-variable rendezvous (park/unpark, FIFO wake order).
//
// The generator is used by the property tests in internal/harness and by
// the cmd/lazydet-fuzz stress tool.
package randprog

import (
	"fmt"

	"lazydet/internal/dvm"
	"lazydet/internal/harness"
)

// Config bounds the generated programs.
type Config struct {
	Threads      int
	Cells        int // lock-protected cells (one lock per cell)
	AtomicCells  int // cells updated only with atomics
	OpsPerThread int
	MaxBarriers  int
	// WithCondvars adds a final condvar rendezvous phase: every non-leader
	// thread increments a counter under a dedicated lock and signals;
	// thread 0 cond-waits until all have checked in.
	WithCondvars bool
	// WithRWLocks mixes in shared-mode (RLock/RUnlock) critical sections,
	// exercising reader admission and read-logged speculation.
	WithRWLocks bool
	// WithSyscalls mixes in irrevocable Syscall operations, both inside
	// critical sections (irrevocable upgrade) and between them (run
	// termination).
	WithSyscalls bool
}

// DefaultConfig returns moderate bounds with every operation class enabled,
// so differential runs exercise the condvar, rwlock and irrevocable paths by
// default.
func DefaultConfig(threads int) Config {
	return Config{
		Threads:      threads,
		Cells:        32,
		AtomicCells:  8,
		OpsPerThread: 60,
		MaxBarriers:  3,
		WithCondvars: true,
		WithRWLocks:  true,
		WithSyscalls: true,
	}
}

type opKind int

const (
	opLockedAdd opKind = iota
	opAtomicAdd
	opBarrier
	opNestedAdd   // two cells under ordered nested locks
	opSharedRead  // RLock + load, no write: never conflicts with readers
	opLockedSysc  // locked add with a Syscall inside the critical section
	opBareSyscall // Syscall outside any critical section
	opPrivateAdd  // add to a thread-private cell under the shared private lock
)

type op struct {
	kind   opKind
	cell   int64
	cell2  int64
	delta  int64
	delta2 int64
	work   int // syscall cost
}

// validate rejects configurations the generator cannot honor.
func (cfg Config) validate() error {
	switch {
	case cfg.Threads < 1:
		return fmt.Errorf("randprog: thread count %d, want >= 1", cfg.Threads)
	case cfg.Cells < 2:
		return fmt.Errorf("randprog: %d lock-protected cells, want >= 2 (nested sections need two distinct cells)", cfg.Cells)
	case cfg.AtomicCells < 1:
		return fmt.Errorf("randprog: %d atomic cells, want >= 1", cfg.AtomicCells)
	case cfg.OpsPerThread < 0:
		return fmt.Errorf("randprog: %d ops per thread, want >= 0", cfg.OpsPerThread)
	case cfg.MaxBarriers < 0:
		return fmt.Errorf("randprog: %d max barriers, want >= 0", cfg.MaxBarriers)
	}
	return nil
}

// Generate builds a workload from the seed and returns it with the
// host-side model of the expected final memory. It fails on configurations
// it cannot generate a well-formed program for.
//
// Heap layout: cells [0, Cells) are lock-protected (lock i guards cell i),
// [Cells, Cells+AtomicCells) are atomic-only, cell Cells+AtomicCells is the
// condvar rendezvous counter (guarded by lock Cells), and the Threads cells
// after it are thread-private counters all guarded by the single lock
// Cells+1 — each section's footprint is a distinct constant address, so the
// footprint analysis classifies that lock Disjoint and the hinted engine
// must never revert on it (lazydet-fuzz property 9).
func Generate(seed uint64, cfg Config) (*harness.Workload, map[int64]int64, error) {
	if err := cfg.validate(); err != nil {
		return nil, nil, err
	}
	plans := make([][]op, cfg.Threads)
	rvCell := int64(cfg.Cells + cfg.AtomicCells)
	doorLock := int64(cfg.Cells)
	privLock := int64(cfg.Cells) + 1
	privBase := rvCell + 1
	expected := map[int64]int64{}
	r := seed
	next := func(n uint64) uint64 {
		r = r*6364136223846793005 + 1442695040888963407
		return (r >> 33) % n
	}
	barriers := 0
	for tid := 0; tid < cfg.Threads; tid++ {
		for i := 0; i < cfg.OpsPerThread; i++ {
			switch next(16) {
			case 0:
				if tid == 0 && barriers < cfg.MaxBarriers {
					barriers++
					for t2 := 0; t2 < cfg.Threads; t2++ {
						plans[t2] = append(plans[t2], op{kind: opBarrier})
					}
					continue
				}
				fallthrough
			case 1, 2, 3, 4, 5:
				c := int64(next(uint64(cfg.Cells)))
				d := int64(next(7)) + 1
				plans[tid] = append(plans[tid], op{kind: opLockedAdd, cell: c, delta: d})
				expected[c] += d
			case 6, 7:
				// Nested critical section over two ordered cells.
				a := int64(next(uint64(cfg.Cells)))
				b := int64(next(uint64(cfg.Cells)))
				if a == b {
					b = (b + 1) % int64(cfg.Cells)
				}
				if a > b {
					a, b = b, a
				}
				da := int64(next(5)) + 1
				db := int64(next(5)) + 1
				plans[tid] = append(plans[tid], op{kind: opNestedAdd, cell: a, cell2: b, delta: da, delta2: db})
				expected[a] += da
				expected[b] += db
			case 8, 9:
				c := int64(next(uint64(cfg.Cells)))
				if cfg.WithRWLocks {
					plans[tid] = append(plans[tid], op{kind: opSharedRead, cell: c})
					continue
				}
				d := int64(next(7)) + 1
				plans[tid] = append(plans[tid], op{kind: opLockedAdd, cell: c, delta: d})
				expected[c] += d
			case 10:
				c := int64(next(uint64(cfg.Cells)))
				d := int64(next(5)) + 1
				if cfg.WithSyscalls {
					plans[tid] = append(plans[tid], op{kind: opLockedSysc, cell: c, delta: d, work: int(next(4)) + 1})
				} else {
					plans[tid] = append(plans[tid], op{kind: opLockedAdd, cell: c, delta: d})
				}
				expected[c] += d
			case 11:
				if cfg.WithSyscalls {
					plans[tid] = append(plans[tid], op{kind: opBareSyscall, work: int(next(4)) + 1})
					continue
				}
				fallthrough
			case 12:
				d := int64(next(7)) + 1
				plans[tid] = append(plans[tid], op{kind: opPrivateAdd, delta: d})
				expected[privBase+int64(tid)] += d
				continue
			default:
				c := int64(cfg.Cells) + int64(next(uint64(cfg.AtomicCells)))
				d := int64(next(5)) + 1
				plans[tid] = append(plans[tid], op{kind: opAtomicAdd, cell: c, delta: d})
				expected[c] += d
			}
		}
	}

	// Condvar rendezvous: non-leaders check in under the door lock and
	// signal; the leader waits until everyone has. The counter's final
	// value is schedule-independent.
	if cfg.WithCondvars && cfg.Threads > 1 {
		expected[rvCell] = int64(cfg.Threads - 1)
	}

	w := &harness.Workload{
		Name:      fmt.Sprintf("randprog-%x", seed),
		HeapWords: int64(cfg.Cells+cfg.AtomicCells+1) + int64(cfg.Threads),
		Locks:     cfg.Cells + 2,
		Barriers:  1,
		Conds:     1,
		Programs: func(n int) []*dvm.Program {
			progs := make([]*dvm.Program, n)
			for tid := 0; tid < n; tid++ {
				b := dvm.NewBuilder(fmt.Sprintf("rnd-%d", tid))
				v := b.Reg()
				for _, o := range plans[tid] {
					o := o
					switch o.kind {
					case opLockedAdd:
						b.Lock(dvm.Const(o.cell))
						b.Load(v, dvm.Const(o.cell))
						b.Store(dvm.Const(o.cell), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(v) + o.delta }))
						b.Unlock(dvm.Const(o.cell))
					case opNestedAdd:
						b.Lock(dvm.Const(o.cell))
						b.Lock(dvm.Const(o.cell2))
						b.Load(v, dvm.Const(o.cell))
						b.Store(dvm.Const(o.cell), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(v) + o.delta }))
						b.Load(v, dvm.Const(o.cell2))
						b.Store(dvm.Const(o.cell2), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(v) + o.delta2 }))
						b.Unlock(dvm.Const(o.cell2))
						b.Unlock(dvm.Const(o.cell))
					case opSharedRead:
						b.RLock(dvm.Const(o.cell))
						b.Load(v, dvm.Const(o.cell))
						b.RUnlock(dvm.Const(o.cell))
					case opLockedSysc:
						b.Lock(dvm.Const(o.cell))
						b.Load(v, dvm.Const(o.cell))
						b.Store(dvm.Const(o.cell), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(v) + o.delta }))
						b.Syscall(&dvm.Syscall{Name: "fuzz-cs", Work: o.work})
						b.Unlock(dvm.Const(o.cell))
					case opBareSyscall:
						b.Syscall(&dvm.Syscall{Name: "fuzz", Work: o.work})
					case opPrivateAdd:
						cell := dvm.Const(privBase + int64(tid))
						b.Lock(dvm.Const(privLock))
						b.Load(v, cell)
						b.Store(cell, dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(v) + o.delta }))
						b.Unlock(dvm.Const(privLock))
					case opAtomicAdd:
						b.AtomicAdd(v, dvm.Const(o.cell), dvm.Const(o.delta))
					case opBarrier:
						b.Barrier(dvm.Const(0))
					}
				}
				if cfg.WithCondvars && n > 1 {
					if tid == 0 {
						// Leader: wait (rechecking under the lock, so no
						// lost wakeup) until all others checked in.
						b.Lock(dvm.Const(doorLock))
						b.Load(v, dvm.Const(rvCell))
						b.While(func(t *dvm.Thread) bool { return t.R(v) < int64(n-1) }, func() {
							b.CondWait(dvm.Const(0), dvm.Const(doorLock))
							b.Load(v, dvm.Const(rvCell))
						})
						b.Unlock(dvm.Const(doorLock))
					} else {
						b.Lock(dvm.Const(doorLock))
						b.Load(v, dvm.Const(rvCell))
						b.Store(dvm.Const(rvCell), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(v) + 1 }))
						b.CondSignal(dvm.Const(0))
						b.Unlock(dvm.Const(doorLock))
					}
				}
				progs[tid] = b.Build()
			}
			return progs
		},
	}
	w.Validate = func(read func(int64) int64, _ int) error {
		for cell, want := range expected {
			if got := read(cell); got != want {
				return fmt.Errorf("cell %d = %d, want %d", cell, got, want)
			}
		}
		return nil
	}
	return w, expected, nil
}
