// Package shmem provides the non-isolated shared memory used by the engines
// that do not provide strong determinism: the pthreads baseline,
// TotalOrder-Weak, and TotalOrder-Weak-Nondet. Accesses are atomic so that
// the deliberate races these engines permit remain well-defined in Go.
package shmem

import (
	"hash/fnv"
	"sync/atomic"
)

// Mem is a flat array of shared 64-bit words.
type Mem struct {
	words []int64
}

// New allocates a zeroed shared memory of the given size in words.
func New(words int64) *Mem {
	return &Mem{words: make([]int64, words)}
}

// Words returns the memory size in words.
func (m *Mem) Words() int64 { return int64(len(m.words)) }

// Load atomically reads addr.
func (m *Mem) Load(addr int64) int64 {
	return atomic.LoadInt64(&m.words[addr])
}

// Store atomically writes addr.
func (m *Mem) Store(addr, val int64) {
	atomic.StoreInt64(&m.words[addr], val)
}

// Add atomically adds delta to addr and returns the new value.
func (m *Mem) Add(addr, delta int64) int64 {
	return atomic.AddInt64(&m.words[addr], delta)
}

// CAS atomically compares addr against old and swaps in new on a match.
func (m *Mem) CAS(addr, old, new int64) bool {
	return atomic.CompareAndSwapInt64(&m.words[addr], old, new)
}

// Swap atomically stores new at addr and returns the previous value.
func (m *Mem) Swap(addr, new int64) int64 {
	return atomic.SwapInt64(&m.words[addr], new)
}

// SetInitial writes initial data before the run starts.
func (m *Mem) SetInitial(addr, val int64) {
	m.words[addr] = val
}

// ReadCommitted reads the final value after the run completes.
func (m *Mem) ReadCommitted(addr int64) int64 {
	return atomic.LoadInt64(&m.words[addr])
}

// Hash returns an FNV-1a hash of the memory contents. Only meaningful when
// no thread is running.
func (m *Mem) Hash() uint64 {
	f := fnv.New64a()
	var buf [8]byte
	for _, w := range m.words {
		buf[0] = byte(w)
		buf[1] = byte(w >> 8)
		buf[2] = byte(w >> 16)
		buf[3] = byte(w >> 24)
		buf[4] = byte(w >> 32)
		buf[5] = byte(w >> 40)
		buf[6] = byte(w >> 48)
		buf[7] = byte(w >> 56)
		f.Write(buf[:])
	}
	return f.Sum64()
}
