package shmem

import (
	"sync"
	"testing"
)

func TestLoadStore(t *testing.T) {
	m := New(16)
	m.Store(3, 42)
	if got := m.Load(3); got != 42 {
		t.Fatalf("Load(3) = %d, want 42", got)
	}
	if m.Words() != 16 {
		t.Fatalf("Words = %d", m.Words())
	}
}

func TestAddConcurrent(t *testing.T) {
	m := New(4)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				m.Add(0, 1)
			}
		}()
	}
	wg.Wait()
	if got := m.Load(0); got != 8000 {
		t.Fatalf("counter = %d, want 8000", got)
	}
}

func TestCASAndSwap(t *testing.T) {
	m := New(4)
	if !m.CAS(0, 0, 5) {
		t.Fatal("CAS from initial value failed")
	}
	if m.CAS(0, 0, 9) {
		t.Fatal("CAS with stale expectation succeeded")
	}
	if old := m.Swap(0, 7); old != 5 {
		t.Fatalf("Swap returned %d, want 5", old)
	}
	if got := m.Load(0); got != 7 {
		t.Fatalf("after swap = %d, want 7", got)
	}
}

func TestHashDistinguishesContents(t *testing.T) {
	a := New(64)
	b := New(64)
	if a.Hash() != b.Hash() {
		t.Fatal("equal memories hash differently")
	}
	a.SetInitial(10, 1)
	if a.Hash() == b.Hash() {
		t.Fatal("different memories hash equally")
	}
}
