package workloads

import (
	"fmt"
	"math"

	"lazydet/internal/dvm"
	"lazydet/internal/harness"
)

// SPLASH-2 kernels (Woo et al., ISCA'95), reimplemented to match each
// program's Table 1 synchronization shape.

// Barnes is the n-body tree code: thousands of lock variables (per-body
// locks touched once, per-cell locks with a skewed popularity distribution),
// barriers between iterations, and — per the paper's Appendix A — a
// condition variable replacing the original's ad-hoc flag synchronization.
func Barnes(scale int) *harness.Workload {
	bodies := int64(1024 * scale)
	const l2Cells, l3Cells = 256, 2048
	const iters = 2
	var l layout
	pos := l.alloc(bodies)
	vel := l.alloc(bodies)
	cellAcc := l.alloc(l2Cells + l3Cells) // per-cell accumulated mass
	flag := l.alloc(1)                    // iteration flag, condvar-protected

	var lk lockAlloc
	bodyLock := int64(lk.alloc(int(bodies)))
	cellLock := int64(lk.alloc(l2Cells + l3Cells))
	flagLock := int64(lk.alloc(1))

	w := &harness.Workload{Name: "barnes", HeapWords: l.next, Locks: lk.next, Conds: 1, Barriers: 1}
	w.Init = func(set func(addr, val int64), threads int) {
		r := uint64(23)
		for i := int64(0); i < bodies; i++ {
			r = lcg(r)
			set(pos+i, int64(r%65536))
		}
	}
	w.Programs = func(threads int) []*dvm.Program {
		progs := make([]*dvm.Program, threads)
		for tid := 0; tid < threads; tid++ {
			b := dvm.NewBuilder(fmt.Sprintf("barnes-%d", tid))
			lo, hi := splitRange(bodies, threads, tid)
			i, p, v, n1, n2, acc := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
			it, fv := b.Reg(), b.Reg()

			// Load phase: each body's lock is taken exactly once — the
			// "acquired once" half of barnes' lock population.
			b.For(i, lo, dvm.Const(hi), func() {
				b.Lock(dvm.Dyn(func(t *dvm.Thread) int64 { return bodyLock + t.R(i) }))
				b.Load(p, dvm.Dyn(func(t *dvm.Thread) int64 { return pos + t.R(i) }))
				b.Unlock(dvm.Dyn(func(t *dvm.Thread) int64 { return bodyLock + t.R(i) }))
			})

			b.ForN(it, iters, func() {
				// Iteration start handshake: the original polls a shared
				// flag; the paper's modified barnes uses a condition
				// variable, as do we.
				if tid == 0 {
					b.Lock(dvm.Const(flagLock))
					b.Store(dvm.Const(flag), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(it) + 1 }))
					b.CondBroadcast(dvm.Const(0))
					b.Unlock(dvm.Const(flagLock))
				} else {
					b.Lock(dvm.Const(flagLock))
					b.Load(fv, dvm.Const(flag))
					b.While(func(t *dvm.Thread) bool { return t.R(fv) < t.R(it)+1 }, func() {
						b.CondWait(dvm.Const(0), dvm.Const(flagLock))
						b.Load(fv, dvm.Const(flag))
					})
					b.Unlock(dvm.Const(flagLock))
				}

				b.For(i, lo, dvm.Const(hi), func() {
					// Force computation: read a few neighbours.
					b.Load(p, dvm.Dyn(func(t *dvm.Thread) int64 { return pos + t.R(i) }))
					b.Load(n1, dvm.Dyn(func(t *dvm.Thread) int64 { return pos + (t.R(i)+1)%bodies }))
					b.Load(n2, dvm.Dyn(func(t *dvm.Thread) int64 { return pos + (t.R(i)+7)%bodies }))
					b.Do(func(t *dvm.Thread) {
						f := (t.R(n1) - t.R(p)) / 16
						f += (t.R(n2) - t.R(p)) / 64
						t.SetR(v, f)
					})
					// Tree update: lock the body's level-2 and level-3
					// cells and fold its mass in. Cell indices derive
					// from the position, so popularity is skewed.
					for _, lvl := range []struct{ base, cells int64 }{
						{0, l2Cells},
						{l2Cells, l3Cells},
					} {
						lvl := lvl
						cell := func(t *dvm.Thread) int64 {
							return lvl.base + (t.R(p)*2654435761)%lvl.cells
						}
						b.Lock(dvm.Dyn(func(t *dvm.Thread) int64 { return cellLock + cell(t) }))
						b.Load(acc, dvm.Dyn(func(t *dvm.Thread) int64 { return cellAcc + cell(t) }))
						b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return cellAcc + cell(t) }), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(acc) + 1 }))
						b.Unlock(dvm.Dyn(func(t *dvm.Thread) int64 { return cellLock + cell(t) }))
					}
					// Advance the body.
					b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return vel + t.R(i) }), dvm.FromReg(v))
					b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return pos + t.R(i) }), dvm.Dyn(func(t *dvm.Thread) int64 { return (t.R(p) + t.R(v)) & 0xffff }))
				})
				b.Barrier(dvm.Const(0))
			})
			progs[tid] = b.Build()
		}
		return progs
	}
	w.Validate = func(read func(int64) int64, threads int) error {
		var total int64
		for c := int64(0); c < l2Cells+l3Cells; c++ {
			total += read(cellAcc + c)
		}
		want := bodies * iters * 2 // each body folds into 2 cells per iteration
		if total != want {
			return fmt.Errorf("cell mass = %d, want %d", total, want)
		}
		return nil
	}
	return w
}

// OceanCP is the grid solver: a handful of locks, one of them (the global
// error accumulator) taking nearly all acquisitions, plus per-iteration
// barriers — Table 1's ocean_cp row.
func OceanCP(scale int) *harness.Workload {
	const n = 64 // grid edge
	iters := int64(6 * scale)
	const chunksPerThread = 8
	var l layout
	grid := l.alloc(n * n)
	scratchGrid := l.alloc(n * n)
	errCell := l.alloc(1)
	miscCells := l.alloc(14)

	var lk lockAlloc
	errLock := int64(lk.alloc(1))
	miscLock := int64(lk.alloc(14))

	w := &harness.Workload{Name: "ocean_cp", HeapWords: l.next, Locks: lk.next, Barriers: 1}
	w.Init = func(set func(addr, val int64), threads int) {
		for i := int64(0); i < n*n; i++ {
			set(grid+i, ftoi(float64(i%17)))
		}
	}
	w.Programs = func(threads int) []*dvm.Program {
		progs := make([]*dvm.Program, threads)
		for tid := 0; tid < threads; tid++ {
			b := dvm.NewBuilder(fmt.Sprintf("ocean-%d", tid))
			rlo, rhi := splitRange(n-2, threads, tid)
			rlo, rhi = rlo+1, rhi+1
			it, row, col, c, up, dn, lf, rt, acc := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
			ev := b.Reg()

			// Startup: touch one of the rarely used setup locks.
			ml := int64(tid % 14)
			b.Lock(dvm.Const(miscLock + ml))
			b.Load(ev, dvm.Const(miscCells+ml))
			b.Store(dvm.Const(miscCells+ml), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(ev) + 1 }))
			b.Unlock(dvm.Const(miscLock + ml))

			b.ForN(it, iters, func() {
				b.Set(acc, 0)
				chunk := b.Reg()
				b.Set(chunk, 0)
				b.For(row, rlo, dvm.Const(rhi), func() {
					b.For(col, 1, dvm.Const(n-1), func() {
						at := func(dr, dc int64) dvm.Val {
							return dvm.Dyn(func(t *dvm.Thread) int64 {
								return grid + (t.R(row)+dr)*n + t.R(col) + dc
							})
						}
						b.Load(c, at(0, 0))
						b.Load(up, at(-1, 0))
						b.Load(dn, at(1, 0))
						b.Load(lf, at(0, -1))
						b.Load(rt, at(0, 1))
						b.Do(func(t *dvm.Thread) {
							nv := (itof(t.R(up)) + itof(t.R(dn)) + itof(t.R(lf)) + itof(t.R(rt))) / 4
							d := nv - itof(t.R(c))
							t.SetR(acc, ftoi(itof(t.R(acc))+d*d))
							t.SetR(c, ftoi(nv))
						})
						b.Store(dvm.Dyn(func(t *dvm.Thread) int64 {
							return scratchGrid + t.R(row)*n + t.R(col)
						}), dvm.FromReg(c))
					})
					// Fold the chunk's residual into the hot global
					// error lock several times per iteration.
					b.Do(func(t *dvm.Thread) { t.AddR(chunk, 1) })
					b.If(func(t *dvm.Thread) bool {
						return t.R(chunk)%((rhi-rlo)/chunksPerThread+1) == 0
					}, func() {
						b.Lock(dvm.Const(errLock))
						b.Load(ev, dvm.Const(errCell))
						b.Store(dvm.Const(errCell), dvm.Dyn(func(t *dvm.Thread) int64 {
							return ftoi(itof(t.R(ev)) + itof(t.R(acc)))
						}))
						b.Unlock(dvm.Const(errLock))
						b.Set(acc, 0)
					})
				})
				b.Barrier(dvm.Const(0))
				// Copy back (partitioned, no locks).
				b.For(row, rlo, dvm.Const(rhi), func() {
					b.For(col, 1, dvm.Const(n-1), func() {
						b.Load(c, dvm.Dyn(func(t *dvm.Thread) int64 { return scratchGrid + t.R(row)*n + t.R(col) }))
						b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return grid + t.R(row)*n + t.R(col) }), dvm.FromReg(c))
					})
				})
				b.Barrier(dvm.Const(0))
			})
			progs[tid] = b.Build()
		}
		return progs
	}
	return w
}

// WaterNSquared computes pairwise molecular interactions with one lock per
// molecule: thousands of locks, each acquired a handful of times — the
// uniform, sparse pattern where LazyDet shines (it even beats
// TotalOrder-Weak here in the paper's Figure 8).
func WaterNSquared(scale int) *harness.Workload {
	mols := int64(512 * scale)
	const iters = 2
	const neighbors = 3
	var l layout
	mpos := l.alloc(mols)
	force := l.alloc(mols)
	kinetic := l.alloc(1)

	var lk lockAlloc
	molLock := int64(lk.alloc(int(mols)))
	keLock := int64(lk.alloc(1))

	w := &harness.Workload{Name: "water_nsquared", HeapWords: l.next, Locks: lk.next, Barriers: 1}
	w.Init = func(set func(addr, val int64), threads int) {
		r := uint64(31)
		for i := int64(0); i < mols; i++ {
			r = lcg(r)
			set(mpos+i, ftoi(float64(r%1000)/10))
		}
	}
	w.Programs = func(threads int) []*dvm.Program {
		progs := make([]*dvm.Program, threads)
		for tid := 0; tid < threads; tid++ {
			b := dvm.NewBuilder(fmt.Sprintf("waterns-%d", tid))
			lo, hi := splitRange(mols, threads, tid)
			it, i, k, pi, pj, f, fv, ke := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
			jreg := b.Reg()
			b.ForN(it, iters, func() {
				b.Set(ke, 0)
				b.For(i, lo, dvm.Const(hi), func() {
					b.ForN(k, neighbors, func() {
						b.Do(func(t *dvm.Thread) {
							t.SetR(jreg, (t.R(i)+(t.R(k)+1)*97)%mols)
						})
						b.Load(pi, dvm.Dyn(func(t *dvm.Thread) int64 { return mpos + t.R(i) }))
						b.Load(pj, dvm.Dyn(func(t *dvm.Thread) int64 { return mpos + t.R(jreg) }))
						// Lennard-Jones-flavoured force.
						b.Do(func(t *dvm.Thread) {
							d := itof(t.R(pi)) - itof(t.R(pj))
							if d == 0 {
								d = 0.1
							}
							r2 := d*d + 0.3
							t.SetR(f, ftoi(1/(r2*r2*r2)-1/(r2*r2)))
							t.SetR(ke, ftoi(itof(t.R(ke))+d*d/2))
						})
						// Symmetric update: both molecules' locks.
						for _, side := range []dvm.Reg{i, jreg} {
							side := side
							b.Lock(dvm.Dyn(func(t *dvm.Thread) int64 { return molLock + t.R(side) }))
							b.Load(fv, dvm.Dyn(func(t *dvm.Thread) int64 { return force + t.R(side) }))
							b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return force + t.R(side) }), dvm.Dyn(func(t *dvm.Thread) int64 { return ftoi(itof(t.R(fv)) + itof(t.R(f))) }))
							b.Unlock(dvm.Dyn(func(t *dvm.Thread) int64 { return molLock + t.R(side) }))
						}
					})
				})
				// Fold kinetic energy into the single global lock.
				b.Lock(dvm.Const(keLock))
				b.Load(fv, dvm.Const(kinetic))
				b.Store(dvm.Const(kinetic), dvm.Dyn(func(t *dvm.Thread) int64 {
					return ftoi(itof(t.R(fv)) + itof(t.R(ke)))
				}))
				b.Unlock(dvm.Const(keLock))
				b.Barrier(dvm.Const(0))
			})
			progs[tid] = b.Build()
		}
		return progs
	}
	return w
}

// WaterSpatial uses a small fixed number of spatial-box locks — few locks,
// moderate counts, high contention, so speculation rarely pays (Table 2).
func WaterSpatial(scale int) *harness.Workload {
	mols := int64(128 * scale)
	const boxes = 10
	const iters = 2
	var l layout
	mpos := l.alloc(mols)
	boxAcc := l.alloc(boxes)

	var lk lockAlloc
	boxLock := int64(lk.alloc(boxes))

	w := &harness.Workload{Name: "water_spatial", HeapWords: l.next, Locks: lk.next, Barriers: 1}
	w.Init = func(set func(addr, val int64), threads int) {
		r := uint64(41)
		for i := int64(0); i < mols; i++ {
			r = lcg(r)
			set(mpos+i, int64(r%1000))
		}
	}
	w.Programs = func(threads int) []*dvm.Program {
		progs := make([]*dvm.Program, threads)
		for tid := 0; tid < threads; tid++ {
			b := dvm.NewBuilder(fmt.Sprintf("waterspatial-%d", tid))
			lo, hi := splitRange(mols, threads, tid)
			it, i, p, v, box := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
			b.ForN(it, iters, func() {
				b.For(i, lo, dvm.Const(hi), func() {
					b.Load(p, dvm.Dyn(func(t *dvm.Thread) int64 { return mpos + t.R(i) }))
					b.DoCost(4, func(t *dvm.Thread) {
						t.SetR(box, t.R(p)%boxes)
						t.SetR(p, (t.R(p)*31+7)%1000)
					})
					b.Lock(dvm.Dyn(func(t *dvm.Thread) int64 { return boxLock + t.R(box) }))
					b.Load(v, dvm.Dyn(func(t *dvm.Thread) int64 { return boxAcc + t.R(box) }))
					b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return boxAcc + t.R(box) }), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(v) + 1 }))
					b.Unlock(dvm.Dyn(func(t *dvm.Thread) int64 { return boxLock + t.R(box) }))
					b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return mpos + t.R(i) }), dvm.FromReg(p))
				})
				b.Barrier(dvm.Const(0))
			})
			progs[tid] = b.Build()
		}
		return progs
	}
	w.Validate = func(read func(int64) int64, threads int) error {
		var total int64
		for bx := int64(0); bx < boxes; bx++ {
			total += read(boxAcc + bx)
		}
		if want := mols * iters; total != want {
			return fmt.Errorf("box updates = %d, want %d", total, want)
		}
		return nil
	}
	return w
}

// Radix is the parallel radix sort: a short burst of highly contended
// histogram-lock acquisitions per pass, too few per thread for adaptive
// speculation to learn — the workload where LazyDet regresses (§5.3).
func Radix(scale int) *harness.Workload {
	keys := int64(4096 * scale)
	const radix = 16
	const passes = 4
	var l layout
	src := l.alloc(keys)
	dst := l.alloc(keys)
	hist := l.alloc(radix)          // global per-pass histogram
	rankBase := l.alloc(radix * 64) // per (bucket, thread) counts
	prefix := l.alloc(radix)        // prefix sums

	var lk lockAlloc
	bucketLock := int64(lk.alloc(radix))

	w := &harness.Workload{Name: "radix", HeapWords: l.next, Locks: lk.next, Barriers: 1}
	w.Init = func(set func(addr, val int64), threads int) {
		r := uint64(5)
		for i := int64(0); i < keys; i++ {
			r = lcg(r)
			// Skewed 16-bit keys: low buckets hot, matching the
			// skewed per-lock distribution of Table 1.
			set(src+i, zipfPick(int64(r>>16&0xffff), 65536))
		}
	}
	w.Programs = func(threads int) []*dvm.Program {
		progs := make([]*dvm.Program, threads)
		for tid := 0; tid < threads; tid++ {
			b := dvm.NewBuilder(fmt.Sprintf("radix-%d", tid))
			lo, hi := splitRange(keys, threads, tid)
			pass, i, v, d, c, off := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
			localHist := b.Scratch(radix)
			offsets := b.Scratch(radix)

			srcOf := func(t *dvm.Thread) int64 {
				if t.R(pass)%2 == 0 {
					return src
				}
				return dst
			}
			dstOf := func(t *dvm.Thread) int64 {
				if t.R(pass)%2 == 0 {
					return dst
				}
				return src
			}
			digit := func(t *dvm.Thread, key int64) int64 {
				return key >> (uint(t.R(pass)) * 4) & (radix - 1)
			}

			b.ForN(pass, passes, func() {
				// Local histogram over the thread's slice.
				b.Do(func(t *dvm.Thread) {
					for k := int64(0); k < radix; k++ {
						t.Scratch[localHist+k] = 0
					}
				})
				b.For(i, lo, dvm.Const(hi), func() {
					b.Load(v, dvm.Dyn(func(t *dvm.Thread) int64 { return srcOf(t) + t.R(i) }))
					b.Do(func(t *dvm.Thread) { t.Scratch[localHist+digit(t, t.R(v))]++ })
				})
				// Publish per-(bucket, thread) counts (disjoint) and
				// merge non-zero buckets into the global histogram
				// under the bucket locks: the contended burst.
				b.ForN(d, radix, func() {
					b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return rankBase + t.R(d)*64 + int64(t.ID) }), dvm.Dyn(func(t *dvm.Thread) int64 { return t.Scratch[localHist+t.R(d)] }))
					b.If(func(t *dvm.Thread) bool { return t.Scratch[localHist+t.R(d)] > 0 }, func() {
						b.Lock(dvm.Dyn(func(t *dvm.Thread) int64 { return bucketLock + t.R(d) }))
						b.Load(c, dvm.Dyn(func(t *dvm.Thread) int64 { return hist + t.R(d) }))
						b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return hist + t.R(d) }), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(c) + t.Scratch[localHist+t.R(d)] }))
						b.Unlock(dvm.Dyn(func(t *dvm.Thread) int64 { return bucketLock + t.R(d) }))
					})
				})
				b.Barrier(dvm.Const(0))
				// Thread 0 computes prefix sums and clears the histogram.
				if tid == 0 {
					b.Set(off, 0)
					b.ForN(d, radix, func() {
						b.Load(c, dvm.Dyn(func(t *dvm.Thread) int64 { return hist + t.R(d) }))
						b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return prefix + t.R(d) }), dvm.FromReg(off))
						b.Do(func(t *dvm.Thread) { t.AddR(off, t.R(c)) })
						b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return hist + t.R(d) }), dvm.Const(0))
					})
				}
				b.Barrier(dvm.Const(0))
				// Compute private write offsets: prefix[d] + counts of
				// lower-numbered threads.
				b.ForN(d, radix, func() {
					b.Load(off, dvm.Dyn(func(t *dvm.Thread) int64 { return prefix + t.R(d) }))
					b.Do(func(t *dvm.Thread) { t.Scratch[offsets+t.R(d)] = t.R(off) })
					for t2 := 0; t2 < tid; t2++ {
						t2 := t2
						b.Load(c, dvm.Dyn(func(t *dvm.Thread) int64 { return rankBase + t.R(d)*64 + int64(t2) }))
						b.Do(func(t *dvm.Thread) { t.Scratch[offsets+t.R(d)] += t.R(c) })
					}
				})
				// Permute into the destination (disjoint writes).
				b.For(i, lo, dvm.Const(hi), func() {
					b.Load(v, dvm.Dyn(func(t *dvm.Thread) int64 { return srcOf(t) + t.R(i) }))
					b.Store(dvm.Dyn(func(t *dvm.Thread) int64 {
						dd := digit(t, t.R(v))
						o := t.Scratch[offsets+dd]
						t.Scratch[offsets+dd]++
						return dstOf(t) + o
					}), dvm.FromReg(v))
				})
				b.Barrier(dvm.Const(0))
			})
			progs[tid] = b.Build()
		}
		return progs
	}
	w.Validate = func(read func(int64) int64, threads int) error {
		// After an even number of passes the sorted data is back in src.
		prev := int64(-1)
		for i := int64(0); i < keys; i++ {
			v := read(src + i)
			if v < prev {
				return fmt.Errorf("not sorted at %d: %d < %d", i, v, prev)
			}
			prev = v
		}
		return nil
	}
	return w
}

// FFT is the radix-2 transform: barrier-per-stage with three lightly used
// locks, matching Table 1's fft row.
func FFT(scale int) *harness.Workload {
	logN := 9 + scale - 1
	if logN > 11 {
		logN = 11
	}
	n := int64(1) << uint(logN)
	var l layout
	re := l.alloc(n)
	im := l.alloc(n)
	stageAcc := l.alloc(3)

	var lk lockAlloc
	stageLock := int64(lk.alloc(3))

	w := &harness.Workload{Name: "fft", HeapWords: l.next, Locks: lk.next, Barriers: 1}
	w.Init = func(set func(addr, val int64), threads int) {
		for i := int64(0); i < n; i++ {
			set(re+i, ftoi(math.Sin(float64(i)*0.1)+math.Cos(float64(i)*0.03)))
		}
	}
	w.Programs = func(threads int) []*dvm.Program {
		progs := make([]*dvm.Program, threads)
		for tid := 0; tid < threads; tid++ {
			b := dvm.NewBuilder(fmt.Sprintf("fft-%d", tid))
			i, ar, ai, br, bi, v := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
			half := int64(1)
			for s := 0; s < logN; s++ {
				lo, hi := splitRange(n/2, threads, tid)
				// A thread occasionally touches a stage lock (twiddle
				// table bookkeeping in the original).
				if (s+tid)%4 == 0 {
					sl := int64((s + tid) % 3)
					b.Lock(dvm.Const(stageLock + sl))
					b.Load(v, dvm.Const(stageAcc+sl))
					b.Store(dvm.Const(stageAcc+sl), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(v) + 1 }))
					b.Unlock(dvm.Const(stageLock + sl))
				}
				halfS := half
				b.For(i, lo, dvm.Const(hi), func() {
					idx := func(t *dvm.Thread) (int64, int64) {
						blk := t.R(i) / halfS
						off := t.R(i) % halfS
						a := blk*halfS*2 + off
						return a, a + halfS
					}
					b.Load(ar, dvm.Dyn(func(t *dvm.Thread) int64 { a, _ := idx(t); return re + a }))
					b.Load(ai, dvm.Dyn(func(t *dvm.Thread) int64 { a, _ := idx(t); return im + a }))
					b.Load(br, dvm.Dyn(func(t *dvm.Thread) int64 { _, c := idx(t); return re + c }))
					b.Load(bi, dvm.Dyn(func(t *dvm.Thread) int64 { _, c := idx(t); return im + c }))
					b.Do(func(t *dvm.Thread) {
						off := t.R(i) % halfS
						ang := -math.Pi * float64(off) / float64(halfS)
						wr, wi := math.Cos(ang), math.Sin(ang)
						xr, xi := itof(t.R(br)), itof(t.R(bi))
						tr := wr*xr - wi*xi
						ti := wr*xi + wi*xr
						t.SetR(br, ftoi(itof(t.R(ar))-tr))
						t.SetR(bi, ftoi(itof(t.R(ai))-ti))
						t.SetR(ar, ftoi(itof(t.R(ar))+tr))
						t.SetR(ai, ftoi(itof(t.R(ai))+ti))
					})
					b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { a, _ := idx(t); return re + a }), dvm.FromReg(ar))
					b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { a, _ := idx(t); return im + a }), dvm.FromReg(ai))
					b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { _, c := idx(t); return re + c }), dvm.FromReg(br))
					b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { _, c := idx(t); return im + c }), dvm.FromReg(bi))
				})
				b.Barrier(dvm.Const(0))
				half *= 2
			}
			progs[tid] = b.Build()
		}
		return progs
	}
	w.Validate = func(read func(int64) int64, threads int) error {
		// Parseval's check: input and output energies must agree.
		var inE, outE float64
		for i := int64(0); i < n; i++ {
			x := math.Sin(float64(i)*0.1) + math.Cos(float64(i)*0.03)
			inE += x * x
			xr, xi := itof(read(re+i)), itof(read(im+i))
			outE += xr*xr + xi*xi
		}
		if math.Abs(outE/float64(n)-inE) > 1e-6*inE {
			return fmt.Errorf("Parseval mismatch: in %v, out/n %v", inE, outE/float64(n))
		}
		return nil
	}
	return w
}

// luWorkload factors a diagonally dominant matrix with per-step barriers
// and zero locks (Table 1's lu rows). Contiguous vs non-contiguous block
// assignment distinguishes lu_cb from lu_ncb.
func luWorkload(name string, contiguous bool, scale int) *harness.Workload {
	n := int64(24)
	if scale > 1 {
		n = 32
	}
	var l layout
	a := l.alloc(n * n)

	initVal := func(i int64) float64 {
		r, c := i/n, i%n
		v := float64((r*7+c*13)%10) + 1
		if r == c {
			v += float64(n) * 10
		}
		return v
	}

	w := &harness.Workload{Name: name, HeapWords: l.next, Locks: 0, Barriers: 1}
	w.Init = func(set func(addr, val int64), threads int) {
		for i := int64(0); i < n*n; i++ {
			set(a+i, ftoi(initVal(i)))
		}
	}
	w.Programs = func(threads int) []*dvm.Program {
		progs := make([]*dvm.Program, threads)
		for tid := 0; tid < threads; tid++ {
			b := dvm.NewBuilder(fmt.Sprintf("%s-%d", name, tid))
			col, mul, v, pv := b.Reg(), b.Reg(), b.Reg(), b.Reg()
			mine := func(r int64) bool {
				if contiguous {
					lo, hi := splitRange(n, threads, tid)
					return r >= lo && r < hi
				}
				return r%int64(threads) == int64(tid)
			}
			for k := int64(0); k < n-1; k++ {
				k := k
				for r := k + 1; r < n; r++ {
					if !mine(r) {
						continue
					}
					r := r
					b.Load(pv, dvm.Const(a+k*n+k))
					b.Load(mul, dvm.Const(a+r*n+k))
					b.Do(func(t *dvm.Thread) { t.SetR(mul, ftoi(itof(t.R(mul))/itof(t.R(pv)))) })
					b.Store(dvm.Const(a+r*n+k), dvm.FromReg(mul))
					b.For(col, k+1, dvm.Const(n), func() {
						b.Load(v, dvm.Dyn(func(t *dvm.Thread) int64 { return a + r*n + t.R(col) }))
						b.Load(pv, dvm.Dyn(func(t *dvm.Thread) int64 { return a + k*n + t.R(col) }))
						b.Do(func(t *dvm.Thread) {
							t.SetR(v, ftoi(itof(t.R(v))-itof(t.R(mul))*itof(t.R(pv))))
						})
						b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return a + r*n + t.R(col) }), dvm.FromReg(v))
					})
				}
				b.Barrier(dvm.Const(0))
			}
			progs[tid] = b.Build()
		}
		return progs
	}
	w.Validate = func(read func(int64) int64, threads int) error {
		// Reproduce the elimination on the host and compare.
		m := make([]float64, n*n)
		for i := int64(0); i < n*n; i++ {
			m[i] = initVal(i)
		}
		for k := int64(0); k < n-1; k++ {
			for r := k + 1; r < n; r++ {
				mul := m[r*n+k] / m[k*n+k]
				m[r*n+k] = mul
				for c := k + 1; c < n; c++ {
					m[r*n+c] -= mul * m[k*n+c]
				}
			}
		}
		for i := int64(0); i < n*n; i++ {
			got := itof(read(a + i))
			if math.Abs(got-m[i]) > 1e-9*(math.Abs(m[i])+1) {
				return fmt.Errorf("A[%d,%d] = %v, want %v", i/n, i%n, got, m[i])
			}
		}
		return nil
	}
	return w
}

// LUContig is lu_cb: contiguous row blocks per thread.
func LUContig(scale int) *harness.Workload { return luWorkload("lu_cb", true, scale) }

// LUNonContig is lu_ncb: rows interleaved across threads.
func LUNonContig(scale int) *harness.Workload { return luWorkload("lu_ncb", false, scale) }
