package workloads

import (
	"testing"

	"lazydet/internal/harness"
)

func htSmall(v HTVariant) HTConfig {
	return HTConfig{
		Variant:      v,
		MaxObjects:   256,
		LoadFactor:   2,
		UpdatePct:    50,
		OpsPerThread: 100,
		Prefill:      true,
	}
}

func TestHashTableAllEngines(t *testing.T) {
	for _, v := range []HTVariant{HT, HTLazy} {
		w := NewHashTable(htSmall(v))
		for _, eng := range harness.AllEngines {
			t.Run(string(v)+"/"+eng.String(), func(t *testing.T) {
				if _, err := harness.Run(w, harness.Options{Engine: eng, Threads: 4}); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

func TestHashTableDeterminism(t *testing.T) {
	for _, v := range []HTVariant{HT, HTLazy} {
		w := NewHashTable(htSmall(v))
		for _, eng := range []harness.EngineKind{harness.Consequence, harness.LazyDet} {
			t.Run(string(v)+"/"+eng.String(), func(t *testing.T) {
				opt := harness.Options{Engine: eng, Threads: 4, Trace: true}
				r1, err := harness.Run(w, opt)
				if err != nil {
					t.Fatal(err)
				}
				r2, err := harness.Run(w, opt)
				if err != nil {
					t.Fatal(err)
				}
				if r1.HeapHash != r2.HeapHash {
					t.Errorf("heap hashes differ: %x vs %x", r1.HeapHash, r2.HeapHash)
				}
				if r1.TraceSig != r2.TraceSig {
					t.Errorf("trace signatures differ")
				}
			})
		}
	}
}

func TestHashTableSpeculationProfile(t *testing.T) {
	// Paper §5.1: "LazyDet does better as we increase the size of the
	// data structure because the likelihood of a conflict is reduced."
	// Check both a floor on success for a large table and the shape:
	// success grows with table size.
	profile := func(maxObjects int) (acqPct, successPct float64) {
		w := NewHashTable(HTConfig{
			Variant: HT, MaxObjects: maxObjects, LoadFactor: 2,
			UpdatePct: 50, OpsPerThread: 200, Prefill: true,
		})
		r, err := harness.Run(w, harness.Options{Engine: harness.LazyDet, Threads: 4, CollectSpec: true})
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("ht %5d objects: spec acq %.1f%% success %.1f%% mean run %.1f CS",
			maxObjects, r.Spec.SpecAcquirePct(), r.Spec.SuccessPct(), r.Spec.MeanRunCS())
		return r.Spec.SpecAcquirePct(), r.Spec.SuccessPct()
	}
	acqBig, successBig := profile(16384)
	_, successSmall := profile(512)
	if acqBig < 80 {
		t.Errorf("spec acquisitions = %.1f%%, want >= 80%% on a large table", acqBig)
	}
	if successBig < 50 {
		t.Errorf("spec success = %.1f%%, want >= 50%% on a large table", successBig)
	}
	if successBig <= successSmall {
		t.Errorf("spec success must grow with table size: %.1f%% (16384) vs %.1f%% (512)",
			successBig, successSmall)
	}
}

func TestHashTableHandOverHandAcquiresScaleWithLoadFactor(t *testing.T) {
	// Table 1 / Figure 7 mechanics: ht's acquisitions per operation grow
	// with the load factor; htLazy's do not.
	count := func(v HTVariant, lf int) int64 {
		w := NewHashTable(HTConfig{
			Variant: v, MaxObjects: 512, LoadFactor: lf,
			UpdatePct: 50, OpsPerThread: 200, Prefill: true,
		})
		r, err := harness.Run(w, harness.Options{Engine: harness.Pthreads, Threads: 2, CountLocks: true})
		if err != nil {
			t.Fatal(err)
		}
		return r.Counter.Summarize().Acquisitions
	}
	htLF1 := count(HT, 1)
	htLF8 := count(HT, 8)
	if htLF8 < htLF1*2 {
		t.Errorf("ht acquisitions: lf=1 %d, lf=8 %d; want clear growth with load factor", htLF1, htLF8)
	}
	lzLF1 := count(HTLazy, 1)
	lzLF8 := count(HTLazy, 8)
	if lzLF8 > lzLF1*2 {
		t.Errorf("htLazy acquisitions: lf=1 %d, lf=8 %d; want little growth", lzLF1, lzLF8)
	}
	if lzLF1 >= htLF1 {
		t.Errorf("htLazy (%d) should acquire fewer locks than ht (%d)", lzLF1, htLF1)
	}
}
