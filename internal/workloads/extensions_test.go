package workloads

import (
	"testing"

	"lazydet/internal/core"
	"lazydet/internal/harness"
)

// TestAdHocFlagBreaksDeterministically reproduces Appendix A / Table 3:
// under strong isolation the polling threads never observe the ad-hoc flag
// — and they fail identically on every run — while under pthreads the flag
// is observed.
func TestAdHocFlagBreaksDeterministically(t *testing.T) {
	w := AdHocFlag(20000)
	const threads = 4

	// pthreads: the plain store becomes visible; the pollers see it.
	// (Scheduling could in principle starve a poller, but a 20k budget on
	// this workload makes that implausible; a flaky failure here would
	// itself demonstrate the nondeterminism the paper contrasts against.)
	res, err := harness.Run(w, harness.Options{Engine: harness.Pthreads, Threads: threads})
	if err != nil {
		t.Fatal(err)
	}
	_ = res

	for _, eng := range []harness.EngineKind{harness.Consequence, harness.LazyDet} {
		outcomes := map[uint64]int{}
		var sawFlag bool
		for run := 0; run < 3; run++ {
			res, err := harness.Run(w, harness.Options{Engine: eng, Threads: threads})
			if err != nil {
				t.Fatal(err)
			}
			outcomes[res.HeapHash]++
			// Inspect via the workload's outcome cells is not possible
			// here (hash only), so rely on a dedicated run below.
			_ = sawFlag
		}
		if len(outcomes) != 1 {
			t.Errorf("%s: ad-hoc breakage must be repeatable, got %d distinct outcomes", eng, len(outcomes))
		}
	}
}

// TestAdHocFlagInvisibleUnderIsolation checks the outcome cells directly:
// every poller gives up under strong isolation.
func TestAdHocFlagInvisibleUnderIsolation(t *testing.T) {
	w := AdHocFlag(5000)
	base := *w
	base.Validate = func(read func(int64) int64, threads int) error {
		for tid := 1; tid < threads; tid++ {
			if got := read(int64(1 + tid)); got != 2 {
				t.Errorf("poller %d outcome = %d, want 2 (gave up: writes only propagate at sync ops)", tid, got)
			}
		}
		return nil
	}
	if _, err := harness.Run(&base, harness.Options{Engine: harness.Consequence, Threads: 4}); err != nil {
		t.Fatal(err)
	}
}

// TestAtomicHistogramAllEngines: the atomics workload is exact under every
// engine, including LazyDet with speculative atomics.
func TestAtomicHistogramAllEngines(t *testing.T) {
	w := AtomicHistogram(1)
	for _, eng := range harness.AllEngines {
		t.Run(eng.String(), func(t *testing.T) {
			if _, err := harness.Run(w, harness.Options{Engine: eng, Threads: 4}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestAtomicHistogramSpeculativeBenefit: speculative atomics keep the
// acquisitions speculative; disabling the extension forces eager atomics,
// which terminate every run.
func TestAtomicHistogramSpeculativeBenefit(t *testing.T) {
	w := AtomicHistogram(1)
	on, err := harness.Run(w, harness.Options{Engine: harness.LazyDet, Threads: 4, CollectSpec: true})
	if err != nil {
		t.Fatal(err)
	}
	off := core.DefaultSpecConfig()
	off.SpeculativeAtomics = false
	offRes, err := harness.Run(w, harness.Options{Engine: harness.LazyDet, Threads: 4, CollectSpec: true, Spec: off})
	if err != nil {
		t.Fatal(err)
	}
	if onLen, offLen := on.Spec.MeanRunCS(), offRes.Spec.MeanRunCS(); !(onLen > offLen) {
		t.Errorf("speculative atomics should lengthen runs: %.2f vs %.2f CS", onLen, offLen)
	}
	t.Logf("spec atomics ON:  wall=%v runs=%d mean=%.1f CS success=%.0f%%",
		on.Wall, on.Spec.Runs.Load(), on.Spec.MeanRunCS(), on.Spec.SuccessPct())
	t.Logf("spec atomics OFF: wall=%v runs=%d mean=%.1f CS success=%.0f%%",
		offRes.Wall, offRes.Spec.Runs.Load(), offRes.Spec.MeanRunCS(), offRes.Spec.SuccessPct())
}

// TestAtomicHistogramDeterminism: run-twice check under LazyDet.
func TestAtomicHistogramDeterminism(t *testing.T) {
	w := AtomicHistogram(1)
	opt := harness.Options{Engine: harness.LazyDet, Threads: 4, Trace: true}
	r1, err := harness.Run(w, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := harness.Run(w, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r1.HeapHash != r2.HeapHash || r1.TraceSig != r2.TraceSig {
		t.Fatalf("atomic histogram not deterministic")
	}
}
