// Package workloads implements the benchmark programs of the paper's
// evaluation as deterministic-VM programs: the Synchrobench hash-table
// microbenchmark (§5.1, Figures 1 and 7) and Go reimplementations of the
// PARSEC-2, SPLASH-2 and Phoenix kernels of Table 1 (§5.2–§5.4).
//
// Each reimplementation is a synthetic kernel designed to match the
// original's synchronization shape — its number of lock variables, the
// distribution of acquisitions across them, its condition variables,
// barriers and system calls — because that shape is what determines DMT
// behaviour. Compute phases are real (if scaled-down) versions of each
// benchmark's arithmetic.
package workloads

import (
	"lazydet/internal/harness"
)

// Gen names a workload generator. Scale 1 is the default problem size used
// by the table/figure experiments; smaller scales run faster.
type Gen struct {
	Name string
	// New builds the workload at the given scale (>= 1).
	New func(scale int) *harness.Workload
	// LockBased marks the benchmarks the paper groups as "lock-based"
	// (the left group of Figure 8, candidates for speculation).
	LockBased bool
}

// All returns the workload generators in Table 1's row order.
func All() []Gen {
	return []Gen{
		{Name: "barnes", New: Barnes, LockBased: true},
		{Name: "ocean_cp", New: OceanCP, LockBased: true},
		{Name: "ferret", New: Ferret, LockBased: true},
		{Name: "water_nsquared", New: WaterNSquared, LockBased: true},
		{Name: "reverse_index", New: ReverseIndex, LockBased: true},
		{Name: "water_spatial", New: WaterSpatial, LockBased: true},
		{Name: "dedup", New: Dedup, LockBased: true},
		{Name: "radix", New: Radix, LockBased: true},
		{Name: "streamcluster", New: Streamcluster},
		{Name: "fft", New: FFT},
		{Name: "blackscholes", New: Blackscholes},
		{Name: "swaptions", New: Swaptions},
		{Name: "linear_regression", New: LinearRegression},
		{Name: "word_count", New: WordCount},
		{Name: "matrix_multiply", New: MatrixMultiply},
		{Name: "pca", New: PCA},
		{Name: "string_match", New: StringMatch},
		{Name: "lu_cb", New: LUContig},
		{Name: "lu_ncb", New: LUNonContig},
	}
}

// ByName returns the named generator, or nil.
func ByName(name string) *Gen {
	for _, g := range All() {
		if g.Name == name {
			return &g
		}
	}
	return nil
}

// layout hands out heap addresses sequentially.
type layout struct{ next int64 }

func (l *layout) alloc(n int64) int64 {
	base := l.next
	l.next += n
	return base
}

// lockAlloc hands out lock IDs sequentially.
type lockAlloc struct{ next int }

func (l *lockAlloc) alloc(n int) int {
	base := l.next
	l.next += n
	return base
}
