package workloads

import (
	"fmt"
	"math"

	"lazydet/internal/dvm"
	"lazydet/internal/harness"
)

// Phoenix map-reduce kernels (Ranger et al., HPCA'07). Five of them share
// the suite's synchronization shape from Table 1 — one lock acquired twice
// for the whole run, everything else data-parallel — and reverse_index is
// the suite's pathological case: one extremely hot list lock.

// coarseReduce emits the Phoenix pattern: barrier, then thread 0 reduces
// per-thread partials under the single global lock (lock id 0).
func coarseReduce(b *dvm.Builder, tid int, reduce func()) {
	b.Barrier(dvm.Const(0))
	if tid == 0 {
		b.Lock(dvm.Const(0))
		reduce()
		b.Unlock(dvm.Const(0))
	}
	b.Barrier(dvm.Const(0))
}

// LinearRegression fits y = a*x + b over a shared point array: threads
// accumulate partial sums over their slice, thread 0 reduces.
func LinearRegression(scale int) *harness.Workload {
	points := int64(8192 * scale)
	var l layout
	xs := l.alloc(points)
	ys := l.alloc(points)
	partials := l.alloc(64 * 4) // per-thread sx, sy, sxx, sxy
	out := l.alloc(2)

	w := &harness.Workload{
		Name: "linear_regression", HeapWords: l.next, Locks: 1, Barriers: 1,
	}
	w.Init = func(set func(addr, val int64), threads int) {
		r := uint64(42)
		for i := int64(0); i < points; i++ {
			r = lcg(r)
			x := float64(r%1000) / 10
			noise := float64(lcg(r)%100)/100 - 0.5
			set(xs+i, ftoi(x))
			set(ys+i, ftoi(3*x+7+noise))
		}
	}
	w.Programs = func(threads int) []*dvm.Program {
		progs := make([]*dvm.Program, threads)
		for tid := 0; tid < threads; tid++ {
			b := dvm.NewBuilder(fmt.Sprintf("linreg-%d", tid))
			lo, hi := splitRange(points, threads, tid)
			i, xv, yv := b.Reg(), b.Reg(), b.Reg()
			sx, sy, sxx, sxy := b.Reg(), b.Reg(), b.Reg(), b.Reg()
			b.For(i, lo, dvm.Const(hi), func() {
				b.Load(xv, dvm.Dyn(func(t *dvm.Thread) int64 { return xs + t.R(i) }))
				b.Load(yv, dvm.Dyn(func(t *dvm.Thread) int64 { return ys + t.R(i) }))
				b.Do(func(t *dvm.Thread) {
					x, y := itof(t.R(xv)), itof(t.R(yv))
					t.SetR(sx, ftoi(itof(t.R(sx))+x))
					t.SetR(sy, ftoi(itof(t.R(sy))+y))
					t.SetR(sxx, ftoi(itof(t.R(sxx))+x*x))
					t.SetR(sxy, ftoi(itof(t.R(sxy))+x*y))
				})
			})
			base := partials + int64(tid)*4
			b.Store(dvm.Const(base+0), dvm.FromReg(sx))
			b.Store(dvm.Const(base+1), dvm.FromReg(sy))
			b.Store(dvm.Const(base+2), dvm.FromReg(sxx))
			b.Store(dvm.Const(base+3), dvm.FromReg(sxy))
			coarseReduce(b, tid, func() {
				v := b.Reg()
				acc := b.Scratch(4)
				for t2 := 0; t2 < threads; t2++ {
					pb := partials + int64(t2)*4
					for f := int64(0); f < 4; f++ {
						f := f
						b.Load(v, dvm.Const(pb+f))
						b.Do(func(t *dvm.Thread) {
							t.Scratch[acc+f] = ftoi(itof(t.Scratch[acc+f]) + itof(t.R(v)))
						})
					}
				}
				b.Do(func(t *dvm.Thread) {
					n := float64(points)
					gx, gy := itof(t.Scratch[acc]), itof(t.Scratch[acc+1])
					gxx, gxy := itof(t.Scratch[acc+2]), itof(t.Scratch[acc+3])
					slope := (n*gxy - gx*gy) / (n*gxx - gx*gx)
					t.SetR(v, ftoi(slope))
				})
				b.Store(dvm.Const(out), dvm.FromReg(v))
				b.Do(func(t *dvm.Thread) {
					n := float64(points)
					gx, gy := itof(t.Scratch[acc]), itof(t.Scratch[acc+1])
					t.SetR(v, ftoi((gy-itof(t.R(v))*gx)/n))
				})
				b.Store(dvm.Const(out+1), dvm.FromReg(v))
			})
			progs[tid] = b.Build()
		}
		return progs
	}
	w.Validate = func(read func(int64) int64, threads int) error {
		slope := itof(read(out))
		if math.Abs(slope-3) > 0.1 {
			return fmt.Errorf("slope = %v, want ~3", slope)
		}
		return nil
	}
	return w
}

// WordCount counts word occurrences: threads build private histograms over
// their slice of the document, thread 0 merges them.
func WordCount(scale int) *harness.Workload {
	words := int64(16384 * scale)
	const vocab = 512
	var l layout
	doc := l.alloc(words)
	priv := l.alloc(64 * vocab) // per-thread histograms (disjoint)
	counts := l.alloc(vocab)

	w := &harness.Workload{Name: "word_count", HeapWords: l.next, Locks: 1, Barriers: 1}
	w.Init = func(set func(addr, val int64), threads int) {
		r := uint64(7)
		for i := int64(0); i < words; i++ {
			r = lcg(r)
			set(doc+i, int64(zipfPick(int64(r>>16&0xffff), vocab)))
		}
	}
	w.Programs = func(threads int) []*dvm.Program {
		progs := make([]*dvm.Program, threads)
		for tid := 0; tid < threads; tid++ {
			b := dvm.NewBuilder(fmt.Sprintf("wordcount-%d", tid))
			lo, hi := splitRange(words, threads, tid)
			i, wv, c := b.Reg(), b.Reg(), b.Reg()
			mine := priv + int64(tid)*vocab
			b.For(i, lo, dvm.Const(hi), func() {
				b.Load(wv, dvm.Dyn(func(t *dvm.Thread) int64 { return doc + t.R(i) }))
				b.Load(c, dvm.Dyn(func(t *dvm.Thread) int64 { return mine + t.R(wv) }))
				b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return mine + t.R(wv) }), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(c) + 1 }))
			})
			coarseReduce(b, tid, func() {
				word, v, acc := b.Reg(), b.Reg(), b.Reg()
				b.ForN(word, vocab, func() {
					b.Set(acc, 0)
					for t2 := 0; t2 < threads; t2++ {
						pb := priv + int64(t2)*vocab
						b.Load(v, dvm.Dyn(func(t *dvm.Thread) int64 { return pb + t.R(word) }))
						b.Do(func(t *dvm.Thread) { t.AddR(acc, t.R(v)) })
					}
					b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return counts + t.R(word) }), dvm.FromReg(acc))
				})
			})
			progs[tid] = b.Build()
		}
		return progs
	}
	w.Validate = func(read func(int64) int64, threads int) error {
		var total int64
		for v := int64(0); v < vocab; v++ {
			total += read(counts + v)
		}
		if total != words {
			return fmt.Errorf("counted %d words, want %d", total, words)
		}
		return nil
	}
	return w
}

// MatrixMultiply computes C = A × B with rows partitioned across threads.
func MatrixMultiply(scale int) *harness.Workload {
	n := int64(32)
	if scale > 1 {
		n *= 2
	}
	var l layout
	a := l.alloc(n * n)
	bm := l.alloc(n * n)
	c := l.alloc(n * n)

	w := &harness.Workload{Name: "matrix_multiply", HeapWords: l.next, Locks: 1, Barriers: 1}
	w.Init = func(set func(addr, val int64), threads int) {
		for i := int64(0); i < n*n; i++ {
			set(a+i, i%7+1)
			set(bm+i, i%5+1)
		}
	}
	w.Programs = func(threads int) []*dvm.Program {
		progs := make([]*dvm.Program, threads)
		for tid := 0; tid < threads; tid++ {
			b := dvm.NewBuilder(fmt.Sprintf("matmul-%d", tid))
			lo, hi := splitRange(n, threads, tid)
			row, col, k, av, bv, acc := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
			if tid == 0 {
				b.Lock(dvm.Const(0)) // the suite's single init lock
				b.Unlock(dvm.Const(0))
			}
			b.For(row, lo, dvm.Const(hi), func() {
				b.ForN(col, n, func() {
					b.Set(acc, 0)
					b.ForN(k, n, func() {
						b.Load(av, dvm.Dyn(func(t *dvm.Thread) int64 { return a + t.R(row)*n + t.R(k) }))
						b.Load(bv, dvm.Dyn(func(t *dvm.Thread) int64 { return bm + t.R(k)*n + t.R(col) }))
						b.Do(func(t *dvm.Thread) { t.AddR(acc, t.R(av)*t.R(bv)) })
					})
					b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return c + t.R(row)*n + t.R(col) }), dvm.FromReg(acc))
				})
			})
			b.Barrier(dvm.Const(0))
			progs[tid] = b.Build()
		}
		return progs
	}
	w.Validate = func(read func(int64) int64, threads int) error {
		// Spot-check C[0,0] against a host-side computation.
		var want int64
		for k := int64(0); k < n; k++ {
			want += (k%7 + 1) * ((k*n)%5 + 1)
		}
		if got := read(c); got != want {
			return fmt.Errorf("C[0,0] = %d, want %d", got, want)
		}
		return nil
	}
	return w
}

// PCA computes column means and a covariance block of a data matrix.
func PCA(scale int) *harness.Workload {
	rows := int64(128 * scale)
	const cols = 16
	var l layout
	m := l.alloc(rows * cols)
	means := l.alloc(cols)
	cov := l.alloc(cols * cols)

	w := &harness.Workload{Name: "pca", HeapWords: l.next, Locks: 1, Barriers: 1}
	w.Init = func(set func(addr, val int64), threads int) {
		r := uint64(11)
		for i := int64(0); i < rows*cols; i++ {
			r = lcg(r)
			set(m+i, ftoi(float64(r%100)))
		}
	}
	w.Programs = func(threads int) []*dvm.Program {
		progs := make([]*dvm.Program, threads)
		for tid := 0; tid < threads; tid++ {
			b := dvm.NewBuilder(fmt.Sprintf("pca-%d", tid))
			col, row, v, acc := b.Reg(), b.Reg(), b.Reg(), b.Reg()
			// Phase 1: column means, columns partitioned.
			clo, chi := splitRange(cols, threads, tid)
			b.For(col, clo, dvm.Const(chi), func() {
				b.Set(acc, 0)
				b.ForN(row, rows, func() {
					b.Load(v, dvm.Dyn(func(t *dvm.Thread) int64 { return m + t.R(row)*cols + t.R(col) }))
					b.Do(func(t *dvm.Thread) { t.SetR(acc, ftoi(itof(t.R(acc))+itof(t.R(v)))) })
				})
				b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return means + t.R(col) }), dvm.Dyn(func(t *dvm.Thread) int64 { return ftoi(itof(t.R(acc)) / float64(rows)) }))
			})
			b.Barrier(dvm.Const(0))
			// Phase 2: covariance entries, partitioned by flat index.
			elo, ehi := splitRange(cols*cols, threads, tid)
			e, mi, mj, xi, xj := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
			b.For(e, elo, dvm.Const(ehi), func() {
				b.Load(mi, dvm.Dyn(func(t *dvm.Thread) int64 { return means + t.R(e)/cols }))
				b.Load(mj, dvm.Dyn(func(t *dvm.Thread) int64 { return means + t.R(e)%cols }))
				b.Set(acc, 0)
				b.ForN(row, rows, func() {
					b.Load(xi, dvm.Dyn(func(t *dvm.Thread) int64 { return m + t.R(row)*cols + t.R(e)/cols }))
					b.Load(xj, dvm.Dyn(func(t *dvm.Thread) int64 { return m + t.R(row)*cols + t.R(e)%cols }))
					b.Do(func(t *dvm.Thread) {
						d := (itof(t.R(xi)) - itof(t.R(mi))) * (itof(t.R(xj)) - itof(t.R(mj)))
						t.SetR(acc, ftoi(itof(t.R(acc))+d))
					})
				})
				b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return cov + t.R(e) }), dvm.Dyn(func(t *dvm.Thread) int64 { return ftoi(itof(t.R(acc)) / float64(rows-1)) }))
			})
			coarseReduce(b, tid, func() {})
			progs[tid] = b.Build()
		}
		return progs
	}
	w.Validate = func(read func(int64) int64, threads int) error {
		// Variance entries must be non-negative.
		for cidx := int64(0); cidx < cols; cidx++ {
			if v := itof(read(cov + cidx*cols + cidx)); v < 0 {
				return fmt.Errorf("variance[%d] = %v < 0", cidx, v)
			}
		}
		return nil
	}
	return w
}

// StringMatch scans an encrypted keyword array for matches, Phoenix-style.
func StringMatch(scale int) *harness.Workload {
	n := int64(16384 * scale)
	const nkeys = 4
	var l layout
	data := l.alloc(n)
	keys := l.alloc(nkeys)
	hits := l.alloc(64)

	encrypt := func(v int64) int64 { return (v*2654435761 + 12345) & 0x7fffffff }

	w := &harness.Workload{Name: "string_match", HeapWords: l.next, Locks: 1, Barriers: 1}
	w.Init = func(set func(addr, val int64), threads int) {
		r := uint64(3)
		for i := int64(0); i < n; i++ {
			r = lcg(r)
			set(data+i, int64(r%997))
		}
		for k := int64(0); k < nkeys; k++ {
			set(keys+k, encrypt(k*211+5))
		}
	}
	w.Programs = func(threads int) []*dvm.Program {
		progs := make([]*dvm.Program, threads)
		for tid := 0; tid < threads; tid++ {
			b := dvm.NewBuilder(fmt.Sprintf("strmatch-%d", tid))
			lo, hi := splitRange(n, threads, tid)
			i, v, k, kv, cnt := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
			ktab := b.Scratch(nkeys)
			// Cache the keys in private scratch first.
			b.ForN(k, nkeys, func() {
				b.Load(kv, dvm.Dyn(func(t *dvm.Thread) int64 { return keys + t.R(k) }))
				b.Do(func(t *dvm.Thread) { t.Scratch[ktab+t.R(k)] = t.R(kv) })
			})
			b.For(i, lo, dvm.Const(hi), func() {
				b.Load(v, dvm.Dyn(func(t *dvm.Thread) int64 { return data + t.R(i) }))
				b.Do(func(t *dvm.Thread) {
					enc := encrypt(t.R(v))
					for kk := int64(0); kk < nkeys; kk++ {
						if t.Scratch[ktab+kk] == enc {
							t.AddR(cnt, 1)
						}
					}
				})
			})
			b.Store(dvm.Const(hits+int64(tid)), dvm.FromReg(cnt))
			coarseReduce(b, tid, func() {})
			progs[tid] = b.Build()
		}
		return progs
	}
	return w
}

// ReverseIndex builds a link index: threads scan their file slice and
// append every link to a shared list under one extremely hot lock — the
// suite's worst case for total ordering, and a workload speculation cannot
// help (Table 1, Table 2: 0 % speculation at 32 threads).
func ReverseIndex(scale int) *harness.Workload {
	files := int64(512 * scale)
	const wordsPerFile = 24
	const dirLocks = 60 // per-directory locks, rarely taken
	var l layout
	corpus := l.alloc(files * wordsPerFile)
	listLen := l.alloc(1)
	list := l.alloc(files * 4)
	dirs := l.alloc(dirLocks)

	var lk lockAlloc
	listLock := int64(lk.alloc(1))
	dirLock := int64(lk.alloc(dirLocks))

	w := &harness.Workload{Name: "reverse_index", HeapWords: l.next, Locks: lk.next, Barriers: 1}
	w.Init = func(set func(addr, val int64), threads int) {
		r := uint64(17)
		for i := int64(0); i < files*wordsPerFile; i++ {
			r = lcg(r)
			// ~12% of words are links.
			if r%8 == 0 {
				set(corpus+i, int64(r%1024)+2)
			}
		}
	}
	w.Programs = func(threads int) []*dvm.Program {
		progs := make([]*dvm.Program, threads)
		for tid := 0; tid < threads; tid++ {
			b := dvm.NewBuilder(fmt.Sprintf("revindex-%d", tid))
			lo, hi := splitRange(files, threads, tid)
			f, i, v, n := b.Reg(), b.Reg(), b.Reg(), b.Reg()
			b.For(f, lo, dvm.Const(hi), func() {
				// Once per directory (64 files), touch its lock.
				b.If(func(t *dvm.Thread) bool { return t.R(f)%64 == 0 }, func() {
					dl := dvm.Dyn(func(t *dvm.Thread) int64 { return dirLock + t.R(f)/64%dirLocks })
					b.Lock(dl)
					b.Load(v, dvm.Dyn(func(t *dvm.Thread) int64 { return dirs + t.R(f)/64%dirLocks }))
					b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return dirs + t.R(f)/64%dirLocks }), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(v) + 1 }))
					b.Unlock(dl)
				})
				b.ForN(i, wordsPerFile, func() {
					b.Load(v, dvm.Dyn(func(t *dvm.Thread) int64 { return corpus + t.R(f)*wordsPerFile + t.R(i) }))
					b.If(func(t *dvm.Thread) bool { return t.R(v) >= 2 }, func() {
						// Append to the shared link list: the hot lock.
						b.Lock(dvm.Const(listLock))
						b.Load(n, dvm.Const(listLen))
						b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return list + t.R(n)%(files*4) }), dvm.FromReg(v))
						b.Store(dvm.Const(listLen), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(n) + 1 }))
						b.Unlock(dvm.Const(listLock))
					})
				})
			})
			b.Barrier(dvm.Const(0))
			progs[tid] = b.Build()
		}
		return progs
	}
	w.Validate = func(read func(int64) int64, threads int) error {
		if read(listLen) == 0 {
			return fmt.Errorf("no links indexed")
		}
		return nil
	}
	return w
}
