package workloads

import (
	"math"

	"lazydet/internal/dvm"
)

// splitRange partitions [0, n) into contiguous per-thread slices.
func splitRange(n int64, threads, tid int) (lo, hi int64) {
	per := n / int64(threads)
	rem := n % int64(threads)
	lo = int64(tid)*per + min64(int64(tid), rem)
	hi = lo + per
	if int64(tid) < rem {
		hi++
	}
	return lo, hi
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

// itof reinterprets a heap word as a float64.
func itof(bits int64) float64 { return math.Float64frombits(uint64(bits)) }

// ftoi packs a float64 into a heap word.
func ftoi(v float64) int64 { return int64(math.Float64bits(v)) }

// sameProgram replicates one program across all threads.
func sameProgram(p *dvm.Program, threads int) []*dvm.Program {
	progs := make([]*dvm.Program, threads)
	for i := range progs {
		progs[i] = p
	}
	return progs
}

// zipfPick maps a uniform draw u in [0, 1<<16) onto [0, n) with a heavily
// skewed (approximately zipfian) distribution: low indices are hot.
func zipfPick(u, n int64) int64 {
	if n <= 1 {
		return 0
	}
	// Square the normalized draw twice: u^4 concentrates mass near 0.
	x := float64(u) / 65536.0
	x = x * x
	x = x * x
	i := int64(x * float64(n))
	if i >= n {
		i = n - 1
	}
	return i
}

// lcg advances a simple deterministic generator for host-side data
// initialization (workload inputs must be identical across engines).
func lcg(x uint64) uint64 { return x*6364136223846793005 + 1442695040888963407 }
