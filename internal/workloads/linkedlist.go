package workloads

import (
	"fmt"

	"lazydet/internal/dvm"
	"lazydet/internal/harness"
)

// NewLinkedList is the Synchrobench-style sorted linked-list set with
// lock-coupling (hand-over-hand) synchronization: the other classic
// fine-grained structure the paper's class of workloads covers. Every node
// has its own lock; traversal holds at most two locks at a time, so
// acquisitions per operation grow with the list length — an even harsher
// version of the ht chain behaviour.
//
// Layout: node k (for key k) occupies two words, next-pointer and
// presence; a sentinel head node precedes all keys. Next pointers store
// node index + 1, 0 meaning nil. Lock k guards node k; lock Keys guards
// the head.
type LLConfig struct {
	// Keys is the key-space size (and preallocated node count).
	Keys int
	// UpdatePct is the percentage of mutating operations.
	UpdatePct int
	// OpsPerThread is the operation count per thread.
	OpsPerThread int
}

// DefaultLLConfig returns a small, contended list.
func DefaultLLConfig() LLConfig {
	return LLConfig{Keys: 128, UpdatePct: 50, OpsPerThread: 60}
}

// NewLinkedList builds the workload.
func NewLinkedList(cfg LLConfig) *harness.Workload {
	keys := int64(cfg.Keys)
	head := keys // head node index (sentinel)
	nextOf := func(node int64) int64 { return node * 2 }
	presentOf := func(node int64) int64 { return node*2 + 1 }

	w := &harness.Workload{
		Name:      "llist",
		HeapWords: (keys + 1) * 2,
		Locks:     int(keys) + 1,
	}
	w.Init = func(set func(addr, val int64), threads int) {
		// Prefill every second key, linked in order from the head.
		prev := head
		for k := int64(0); k < keys; k += 2 {
			set(nextOf(prev), k+1)
			set(presentOf(k), 1)
			prev = k
		}
		set(nextOf(prev), 0)
	}
	w.Programs = func(threads int) []*dvm.Program {
		b := dvm.NewBuilder("llist")
		i, key, mode := b.Reg(), b.Reg(), b.Reg()
		pred, curr, nxt := b.Reg(), b.Reg(), b.Reg()
		v := b.Reg()

		lockOf := func(r dvm.Reg) dvm.Val { return dvm.FromReg(r) }
		b.ForN(i, int64(cfg.OpsPerThread), func() {
			b.Do(func(t *dvm.Thread) {
				t.SetR(key, t.RandN(keys))
				r := t.RandN(200)
				switch {
				case r%2 == 0 && r/2 < int64(cfg.UpdatePct):
					t.SetR(mode, 1) // insert
				case r%2 == 1 && r/2 < int64(cfg.UpdatePct):
					t.SetR(mode, 2) // remove
				default:
					t.SetR(mode, 0) // contains
				}
				t.SetR(pred, head)
			})
			// Hand-over-hand traversal: lock pred, walk until the next
			// node's key reaches the target.
			b.Lock(lockOf(pred))
			b.Load(nxt, dvm.Dyn(func(t *dvm.Thread) int64 { return nextOf(t.R(pred)) }))
			b.While(func(t *dvm.Thread) bool { return t.R(nxt) != 0 && t.R(nxt)-1 < t.R(key) }, func() {
				b.Do(func(t *dvm.Thread) { t.SetR(curr, t.R(nxt)-1) })
				b.Lock(lockOf(curr))
				b.Unlock(lockOf(pred))
				b.Do(func(t *dvm.Thread) { t.SetR(pred, t.R(curr)) })
				b.Load(nxt, dvm.Dyn(func(t *dvm.Thread) int64 { return nextOf(t.R(pred)) }))
			})
			// pred is locked; nxt-1 is the first node with key >= target
			// (or nil). For updates, lock it too when it is the target.
			b.IfElse(func(t *dvm.Thread) bool { return t.R(nxt) != 0 && t.R(nxt)-1 == t.R(key) },
				func() {
					// Target node present.
					b.Do(func(t *dvm.Thread) { t.SetR(curr, t.R(nxt)-1) })
					b.Lock(lockOf(curr))
					b.If(func(t *dvm.Thread) bool { return t.R(mode) == 2 }, func() {
						// Remove: unlink and clear.
						b.Load(v, dvm.Dyn(func(t *dvm.Thread) int64 { return nextOf(t.R(curr)) }))
						b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return nextOf(t.R(pred)) }), dvm.FromReg(v))
						b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return presentOf(t.R(curr)) }), dvm.Const(0))
						b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return nextOf(t.R(curr)) }), dvm.Const(0))
					})
					b.Unlock(lockOf(curr))
				},
				func() {
					// Target absent.
					b.If(func(t *dvm.Thread) bool { return t.R(mode) == 1 }, func() {
						// Insert: link the key's node after pred.
						b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return nextOf(t.R(key)) }), dvm.FromReg(nxt))
						b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return presentOf(t.R(key)) }), dvm.Const(1))
						b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return nextOf(t.R(pred)) }), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(key) + 1 }))
					})
				},
			)
			b.Unlock(lockOf(pred))
		})
		p := b.Build()
		return sameProgram(p, threads)
	}
	w.Validate = func(read func(int64) int64, threads int) error {
		// Walk the list: keys strictly increasing, presence flags
		// consistent, no cycles.
		seen := 0
		prevKey := int64(-1)
		node := read(nextOf(head))
		for node != 0 {
			k := node - 1
			if k <= prevKey {
				return fmt.Errorf("list keys not increasing: %d after %d", k, prevKey)
			}
			if read(presentOf(k)) != 1 {
				return fmt.Errorf("linked node %d not marked present", k)
			}
			prevKey = k
			node = read(nextOf(k))
			seen++
			if seen > cfg.Keys {
				return fmt.Errorf("cycle detected after %d nodes", seen)
			}
		}
		// Every present-marked node must be reachable: count them.
		marked := 0
		for k := int64(0); k < keys; k++ {
			if read(presentOf(k)) == 1 {
				marked++
			}
		}
		if marked != seen {
			return fmt.Errorf("%d nodes marked present, %d linked", marked, seen)
		}
		return nil
	}
	return w
}

// NewBoundedQueue is a classic condition-variable producer/consumer
// pipeline: producers block on not-full, the consumer blocks on not-empty.
// Condition-variable operations force speculation runs to terminate (paper
// footnote 2), so this workload stresses the commit-if-possible path and
// deterministic park/unpark ordering.
func NewBoundedQueue(itemsPerProducer, capacity int) *harness.Workload {
	var l layout
	count := l.alloc(1)
	headIdx := l.alloc(1)
	tailIdx := l.alloc(1)
	buf := l.alloc(int64(capacity))
	consumed := l.alloc(1)
	checksum := l.alloc(1)
	done := l.alloc(1)

	var lk lockAlloc
	qLock := int64(lk.alloc(1))

	const cvNotFull, cvNotEmpty = 0, 1

	w := &harness.Workload{
		Name:      "bounded_queue",
		HeapWords: l.next,
		Locks:     lk.next,
		Conds:     2,
	}
	w.Programs = func(threads int) []*dvm.Program {
		producers := threads - 1
		if producers < 1 {
			producers = 1
		}
		total := int64(itemsPerProducer) * int64(producers)
		progs := make([]*dvm.Program, threads)
		for tid := 0; tid < threads; tid++ {
			b := dvm.NewBuilder(fmt.Sprintf("queue-%d", tid))
			if tid == 0 && threads > 1 {
				// Consumer.
				n, c, v, t2 := b.Reg(), b.Reg(), b.Reg(), b.Reg()
				b.Set(n, 0)
				b.While(func(t *dvm.Thread) bool { return t.R(n) < total }, func() {
					b.Lock(dvm.Const(qLock))
					b.Load(c, dvm.Const(count))
					b.While(func(t *dvm.Thread) bool { return t.R(c) == 0 }, func() {
						b.CondWait(dvm.Const(cvNotEmpty), dvm.Const(qLock))
						b.Load(c, dvm.Const(count))
					})
					b.Load(t2, dvm.Const(headIdx))
					b.Load(v, dvm.Dyn(func(t *dvm.Thread) int64 { return buf + t.R(t2)%int64(capacity) }))
					b.Store(dvm.Const(headIdx), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(t2) + 1 }))
					b.Store(dvm.Const(count), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(c) - 1 }))
					b.Load(t2, dvm.Const(checksum))
					b.Store(dvm.Const(checksum), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(t2) + t.R(v) }))
					b.CondSignal(dvm.Const(cvNotFull))
					b.Unlock(dvm.Const(qLock))
					b.Do(func(t *dvm.Thread) { t.AddR(n, 1) })
				})
				b.Store(dvm.Const(consumed), dvm.FromReg(n))
				b.Store(dvm.Const(done), dvm.Const(1))
			} else {
				// Producer.
				i, c, t2 := b.Reg(), b.Reg(), b.Reg()
				items := int64(itemsPerProducer)
				if threads == 1 {
					items = 0 // no consumer: produce nothing
				}
				b.ForN(i, items, func() {
					b.Lock(dvm.Const(qLock))
					b.Load(c, dvm.Const(count))
					b.While(func(t *dvm.Thread) bool { return t.R(c) >= int64(capacity) }, func() {
						b.CondWait(dvm.Const(cvNotFull), dvm.Const(qLock))
						b.Load(c, dvm.Const(count))
					})
					b.Load(t2, dvm.Const(tailIdx))
					b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return buf + t.R(t2)%int64(capacity) }), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(i) + int64(t.ID)*1000 }))
					b.Store(dvm.Const(tailIdx), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(t2) + 1 }))
					b.Store(dvm.Const(count), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(c) + 1 }))
					b.CondSignal(dvm.Const(cvNotEmpty))
					b.Unlock(dvm.Const(qLock))
				})
			}
			progs[tid] = b.Build()
		}
		return progs
	}
	w.Validate = func(read func(int64) int64, threads int) error {
		if threads < 2 {
			return nil
		}
		producers := threads - 1
		total := int64(itemsPerProducer) * int64(producers)
		if got := read(consumed); got != total {
			return fmt.Errorf("consumed %d items, want %d", got, total)
		}
		// Every producer contributes Σi + tid*1000*items.
		var want int64
		for tid := 1; tid <= producers; tid++ {
			n := int64(itemsPerProducer)
			want += n*(n-1)/2 + int64(tid)*1000*n
		}
		if got := read(checksum); got != want {
			return fmt.Errorf("checksum %d, want %d (items lost or duplicated)", got, want)
		}
		return nil
	}
	return w
}
