package workloads

import (
	"fmt"

	"lazydet/internal/dvm"
	"lazydet/internal/harness"
)

// This file implements the Synchrobench lock-based hash table of the
// paper's §5.1 (Figures 1 and 7): a bucketed table whose chains are
// synchronized either with hand-over-hand locking ("ht") or with a lazy
// list-based set in the style of Heller et al. ("htLazy").
//
// Storage: bucket b occupies MaxChain slots; a slot holds 0 (empty),
// 1 (removed/tombstone), or key+2. Every slot has its own lock.
//
//   - ht: every operation traverses its chain hand-over-hand — acquire the
//     next slot's lock before releasing the current one — so acquisitions
//     per operation grow with the load factor, exactly the behaviour the
//     paper's load-factor sweep exercises.
//   - htLazy: traversal is lock-free; only updates lock the single slot
//     they modify and re-validate it, so update percentage controls the
//     acquisition rate.

// HTVariant selects the chaining synchronization.
type HTVariant string

const (
	// HT is hand-over-hand chain locking.
	HT HTVariant = "ht"
	// HTLazy is the lazy list-based set.
	HTLazy HTVariant = "htlazy"
)

// HTConfig parameterizes the microbenchmark, mirroring Figure 7's axes.
type HTConfig struct {
	Variant HTVariant
	// MaxObjects is the key-space size ("max objects inserted").
	MaxObjects int
	// LoadFactor is the target chain length; the bucket count is
	// MaxObjects / LoadFactor.
	LoadFactor int
	// UpdatePct is the percentage of operations that mutate the table.
	UpdatePct int
	// OpsPerThread is the operation count per thread.
	OpsPerThread int
	// Prefill inserts MaxObjects/2 keys before timing when true.
	Prefill bool
}

// Buckets returns the bucket count implied by the configuration.
func (c HTConfig) Buckets() int {
	b := c.MaxObjects / c.LoadFactor
	if b < 1 {
		b = 1
	}
	return b
}

// DefaultHTConfig is the baseline point of the Figure 7 sweeps.
func DefaultHTConfig(v HTVariant) HTConfig {
	return HTConfig{
		Variant:      v,
		MaxObjects:   2048,
		LoadFactor:   2,
		UpdatePct:    50,
		OpsPerThread: 200,
		Prefill:      true,
	}
}

// hashKey spreads keys across buckets.
func hashKey(key, buckets int64) int64 {
	return (key * 2654435761) % buckets
}

// NewHashTable builds the microbenchmark workload.
func NewHashTable(cfg HTConfig) *harness.Workload {
	buckets := int64(cfg.Buckets())
	chain := int64(cfg.LoadFactor) * 2 // slack so chains don't saturate instantly
	if chain < 2 {
		chain = 2
	}
	slots := buckets * chain

	w := &harness.Workload{
		Name:      string(cfg.Variant),
		HeapWords: slots,
		Locks:     int(slots),
	}

	w.Init = func(set func(addr, val int64), threads int) {
		if !cfg.Prefill {
			return
		}
		// Deterministic prefill of half the key space: key k goes to
		// the next free slot of its chain (chains have 2× slack).
		occupied := make(map[int64]int64)
		for k := int64(0); k < int64(cfg.MaxObjects); k += 2 {
			b := hashKey(k, buckets)
			used := occupied[b]
			if used < chain {
				set(b*chain+used, k+2)
				occupied[b] = used + 1
			}
		}
	}

	w.Programs = func(threads int) []*dvm.Program {
		p := buildHTProgram(cfg, buckets, chain)
		progs := make([]*dvm.Program, threads)
		for i := range progs {
			progs[i] = p
		}
		return progs
	}

	w.Validate = func(read func(int64) int64, threads int) error {
		// Structural invariant: every occupied slot holds a key that
		// hashes to its bucket.
		for b := int64(0); b < buckets; b++ {
			for s := int64(0); s < chain; s++ {
				v := read(b*chain + s)
				if v <= 1 {
					continue
				}
				key := v - 2
				if hashKey(key, buckets) != b {
					return fmt.Errorf("slot (%d,%d) holds key %d of bucket %d", b, s, key, hashKey(key, buckets))
				}
			}
		}
		return nil
	}
	return w
}

// buildHTProgram emits one thread's operation loop.
func buildHTProgram(cfg HTConfig, buckets, chain int64) *dvm.Program {
	b := dvm.NewBuilder(string(cfg.Variant))
	i := b.Reg()    // operation counter
	key := b.Reg()  // key being operated on
	mode := b.Reg() // 0 lookup, 1 insert, 2 remove
	base := b.Reg() // first slot address of the bucket
	s := b.Reg()    // current slot offset
	v := b.Reg()    // loaded slot value
	act := b.Reg()  // slot chosen for the action, -1 none

	slotAddr := dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(base) + t.R(s) })
	lockOfSlot := slotAddr // lock l guards slot l

	b.ForN(i, int64(cfg.OpsPerThread), func() {
		// Draw the operation deterministically from the thread PRNG.
		b.Do(func(t *dvm.Thread) {
			t.SetR(key, t.RandN(int64(cfg.MaxObjects)))
			r := t.RandN(200)
			switch {
			case r%2 == 0 && r/2 < int64(cfg.UpdatePct): // insert
				t.SetR(mode, 1)
			case r%2 == 1 && r/2 < int64(cfg.UpdatePct): // remove
				t.SetR(mode, 2)
			default:
				t.SetR(mode, 0)
			}
			t.SetR(base, hashKey(t.R(key), buckets)*chain)
			t.SetR(s, 0)
			t.SetR(act, -1)
		})
		if cfg.Variant == HT {
			emitHandOverHand(b, chain, key, mode, base, s, v, act, slotAddr, lockOfSlot)
		} else {
			emitLazySet(b, chain, key, mode, base, s, v, act, slotAddr, lockOfSlot)
		}
	})
	return b.Build()
}

// emitHandOverHand walks the chain holding one slot lock at a time,
// acquiring the successor before releasing the predecessor, then performs
// the operation on the final locked slot.
func emitHandOverHand(b *dvm.Builder, chain int64, key, mode, base, s, v, act dvm.Reg,
	slotAddr, lockOfSlot dvm.Val) {

	next := dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(base) + t.R(s) + 1 })
	stop := b.Reg()

	b.Lock(lockOfSlot)
	b.Set(stop, 0)
	b.While(func(t *dvm.Thread) bool { return t.R(stop) == 0 }, func() {
		b.Load(v, slotAddr)
		b.Do(func(t *dvm.Thread) {
			switch {
			case t.R(v) == t.R(key)+2: // found
				t.SetR(act, t.R(s))
				t.SetR(stop, 1)
			case t.R(v) == 0: // chain end
				t.SetR(act, t.R(s))
				t.SetR(stop, 1)
			case t.R(s) == chain-1: // chain exhausted
				t.SetR(act, t.R(s))
				t.SetR(stop, 1)
			}
		})
		b.If(func(t *dvm.Thread) bool { return t.R(stop) == 0 }, func() {
			b.Lock(next)
			b.Unlock(lockOfSlot)
			b.Do(func(t *dvm.Thread) { t.AddR(s, 1) })
		})
	})
	// Act on the locked slot: v holds its current value.
	b.If(func(t *dvm.Thread) bool { return t.R(mode) == 1 && t.R(v) <= 1 }, func() {
		b.Store(slotAddr, dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(key) + 2 }))
	})
	b.If(func(t *dvm.Thread) bool { return t.R(mode) == 2 && t.R(v) == t.R(key)+2 }, func() {
		b.Store(slotAddr, dvm.Const(1)) // tombstone
	})
	b.Unlock(lockOfSlot)
}

// emitLazySet traverses without locks, then locks and re-validates only the
// slot an update modifies. Lookups acquire no locks at all.
func emitLazySet(b *dvm.Builder, chain int64, key, mode, base, s, v, act dvm.Reg,
	slotAddr, lockOfSlot dvm.Val) {

	tomb := b.Reg() // first tombstone seen, -1 none
	stop := b.Reg()

	b.Set(tomb, -1)
	b.Set(stop, 0)
	b.While(func(t *dvm.Thread) bool { return t.R(stop) == 0 && t.R(s) < chain }, func() {
		b.Load(v, slotAddr)
		b.Do(func(t *dvm.Thread) {
			switch {
			case t.R(v) == t.R(key)+2:
				t.SetR(act, t.R(s))
				t.SetR(stop, 1)
			case t.R(v) == 0:
				t.SetR(stop, 1)
			case t.R(v) == 1 && t.R(tomb) < 0:
				t.SetR(tomb, t.R(s))
			}
			if t.R(stop) == 0 {
				t.AddR(s, 1)
			}
		})
	})
	// Insert: claim the found slot if present (no-op), else the first
	// tombstone, else the terminating empty slot.
	b.If(func(t *dvm.Thread) bool { return t.R(mode) == 1 && t.R(act) < 0 }, func() {
		b.Do(func(t *dvm.Thread) {
			target := t.R(s)
			if t.R(tomb) >= 0 {
				target = t.R(tomb)
			}
			if target >= chain { // chain full
				target = -1
			}
			t.SetR(s, target)
		})
		b.If(func(t *dvm.Thread) bool { return t.R(s) >= 0 }, func() {
			b.Lock(lockOfSlot)
			b.Load(v, slotAddr)
			// Validate: still empty or tombstoned.
			b.If(func(t *dvm.Thread) bool { return t.R(v) <= 1 }, func() {
				b.Store(slotAddr, dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(key) + 2 }))
			})
			b.Unlock(lockOfSlot)
		})
	})
	// Remove: lock the found slot, re-validate, tombstone it.
	b.If(func(t *dvm.Thread) bool { return t.R(mode) == 2 && t.R(act) >= 0 }, func() {
		b.Do(func(t *dvm.Thread) { t.SetR(s, t.R(act)) })
		b.Lock(lockOfSlot)
		b.Load(v, slotAddr)
		b.If(func(t *dvm.Thread) bool { return t.R(v) == t.R(key)+2 }, func() {
			b.Store(slotAddr, dvm.Const(1))
		})
		b.Unlock(lockOfSlot)
	})
}
