package workloads

import (
	"testing"

	"lazydet/internal/harness"
)

// TestAllWorkloadsAllEngines runs every Table 1 benchmark at scale 1 under
// every engine, exercising each workload's Validate check.
func TestAllWorkloadsAllEngines(t *testing.T) {
	for _, g := range All() {
		w := g.New(1)
		for _, eng := range harness.AllEngines {
			t.Run(g.Name+"/"+eng.String(), func(t *testing.T) {
				if _, err := harness.Run(w, harness.Options{Engine: eng, Threads: 4}); err != nil {
					t.Fatal(err)
				}
			})
		}
	}
}

// TestAllWorkloadsDeterministic runs every benchmark twice under
// Consequence and LazyDet and requires identical heaps and sync traces.
func TestAllWorkloadsDeterministic(t *testing.T) {
	for _, g := range All() {
		w := g.New(1)
		for _, eng := range []harness.EngineKind{harness.Consequence, harness.LazyDet} {
			t.Run(g.Name+"/"+eng.String(), func(t *testing.T) {
				opt := harness.Options{Engine: eng, Threads: 4, Trace: true}
				r1, err := harness.Run(w, opt)
				if err != nil {
					t.Fatal(err)
				}
				r2, err := harness.Run(w, opt)
				if err != nil {
					t.Fatal(err)
				}
				if r1.HeapHash != r2.HeapHash {
					t.Errorf("heap hashes differ: %x vs %x", r1.HeapHash, r2.HeapHash)
				}
				if r1.TraceSig != r2.TraceSig {
					t.Errorf("trace signatures differ: %x vs %x", r1.TraceSig, r2.TraceSig)
				}
			})
		}
	}
}

// TestFerretUpgradesToIrrevocable: ferret's mmap calls inside critical
// sections must drive the irrevocable-upgrade path (paper §3.5).
func TestFerretUpgradesToIrrevocable(t *testing.T) {
	w := Ferret(1)
	r, err := harness.Run(w, harness.Options{Engine: harness.LazyDet, Threads: 4, CollectSpec: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Spec.Upgrades.Load() == 0 {
		t.Error("ferret performed no irrevocable upgrades")
	}
	if pct := r.Spec.SuccessPct(); pct < 90 {
		t.Errorf("ferret spec success = %.1f%%, want >= 90%% (paper: 99.8%%)", pct)
	}
	t.Logf("ferret: acq %.1f%% success %.1f%% mean run %.1f CS, %d upgrades",
		r.Spec.SpecAcquirePct(), r.Spec.SuccessPct(), r.Spec.MeanRunCS(), r.Spec.Upgrades.Load())
}

// TestTable1Shapes spot-checks that the reimplementations reproduce the
// qualitative lock statistics of Table 1: which programs have many lock
// variables, which have a single dominant lock, and which barely lock.
func TestTable1Shapes(t *testing.T) {
	summarize := func(name string) (vars int, acqs int64, p50, max int64) {
		g := ByName(name)
		if g == nil {
			t.Fatalf("no workload %q", name)
		}
		r, err := harness.Run(g.New(1), harness.Options{Engine: harness.Pthreads, Threads: 8, CountLocks: true})
		if err != nil {
			t.Fatal(err)
		}
		s := r.Counter.Summarize()
		t.Logf("%-16s vars=%5d acqs=%7d p50=%5d max=%6d", name, s.Variables, s.Acquisitions, s.P50, s.Max)
		return s.Variables, s.Acquisitions, s.P50, s.Max
	}

	if vars, _, p50, _ := summarize("barnes"); vars < 1000 || p50 > 3 {
		t.Errorf("barnes: want >1000 lock variables with median ~1, got vars=%d p50=%d", vars, p50)
	}
	if vars, acqs, _, max := summarize("ocean_cp"); vars > 20 || max < acqs*7/10 {
		t.Errorf("ocean_cp: want few locks with one dominant, got vars=%d max=%d/%d", vars, max, acqs)
	}
	// The paper's ferret touches 1004 lock variables over 532k
	// acquisitions; at this repository's ~100× smaller acquisition count
	// the hash-table coverage is proportionally sparser.
	if vars, _, _, max := summarize("ferret"); vars < 300 || max < 1000 {
		t.Errorf("ferret: want hundreds of locks with one extremely hot, got vars=%d max=%d", vars, max)
	}
	if vars, _, p50, _ := summarize("water_nsquared"); vars < 500 || p50 > 20 {
		t.Errorf("water_nsquared: want many uniform locks, got vars=%d p50=%d", vars, p50)
	}
	if _, acqs, _, max := summarize("reverse_index"); max < acqs*9/10 {
		t.Errorf("reverse_index: want one lock dominating >90%%, got max=%d/%d", max, acqs)
	}
	if vars, _, _, _ := summarize("dedup"); vars < 500 {
		t.Errorf("dedup: want >500 lock variables, got %d", vars)
	}
	if vars, acqs, _, _ := summarize("blackscholes"); vars > 1 || acqs > 2 {
		t.Errorf("blackscholes: want 1 lock 2 acquisitions, got vars=%d acqs=%d", vars, acqs)
	}
	if vars, _, _, _ := summarize("lu_cb"); vars != 0 {
		t.Errorf("lu_cb: want 0 locks, got %d", vars)
	}
}
