package workloads

import (
	"testing"

	"lazydet/internal/harness"
)

func TestLinkedListAllEngines(t *testing.T) {
	w := NewLinkedList(DefaultLLConfig())
	for _, eng := range harness.AllEngines {
		t.Run(eng.String(), func(t *testing.T) {
			if _, err := harness.Run(w, harness.Options{Engine: eng, Threads: 4}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestLinkedListDeterminism(t *testing.T) {
	w := NewLinkedList(DefaultLLConfig())
	for _, eng := range []harness.EngineKind{harness.Consequence, harness.LazyDet} {
		opt := harness.Options{Engine: eng, Threads: 4, Trace: true}
		r1, err := harness.Run(w, opt)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := harness.Run(w, opt)
		if err != nil {
			t.Fatal(err)
		}
		if r1.HeapHash != r2.HeapHash || r1.TraceSig != r2.TraceSig {
			t.Fatalf("%s: linked list not deterministic", eng)
		}
	}
}

func TestLinkedListLockCouplingAcquiresScaleWithLength(t *testing.T) {
	count := func(keys int) int64 {
		cfg := DefaultLLConfig()
		cfg.Keys = keys
		r, err := harness.Run(NewLinkedList(cfg), harness.Options{Engine: harness.Pthreads, Threads: 2, CountLocks: true})
		if err != nil {
			t.Fatal(err)
		}
		return r.Counter.Summarize().Acquisitions
	}
	short := count(32)
	long := count(256)
	if long < short*3 {
		t.Errorf("lock-coupling acquisitions must grow with list length: %d (32 keys) vs %d (256 keys)", short, long)
	}
}

func TestBoundedQueueAllEngines(t *testing.T) {
	w := NewBoundedQueue(40, 4)
	for _, eng := range harness.AllEngines {
		t.Run(eng.String(), func(t *testing.T) {
			if _, err := harness.Run(w, harness.Options{Engine: eng, Threads: 4}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestBoundedQueueDeterminism(t *testing.T) {
	w := NewBoundedQueue(30, 3)
	for _, eng := range []harness.EngineKind{harness.Consequence, harness.LazyDet, harness.TotalOrderWeak} {
		opt := harness.Options{Engine: eng, Threads: 4, Trace: true}
		r1, err := harness.Run(w, opt)
		if err != nil {
			t.Fatal(err)
		}
		r2, err := harness.Run(w, opt)
		if err != nil {
			t.Fatal(err)
		}
		if r1.HeapHash != r2.HeapHash || r1.TraceSig != r2.TraceSig {
			t.Fatalf("%s: bounded queue not deterministic", eng)
		}
	}
}

func TestBoundedQueueTinyCapacityStress(t *testing.T) {
	// Capacity 1 maximizes condvar churn: every item parks someone.
	w := NewBoundedQueue(25, 1)
	for _, eng := range []harness.EngineKind{harness.Consequence, harness.LazyDet} {
		if _, err := harness.Run(w, harness.Options{Engine: eng, Threads: 5}); err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
	}
}
