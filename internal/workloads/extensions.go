package workloads

import (
	"fmt"

	"lazydet/internal/dvm"
	"lazydet/internal/harness"
)

// This file holds workloads outside the paper's Table 1 set: the ad-hoc
// synchronization demonstration of Appendix A (Table 3), and an
// atomics-based benchmark for the §7 extension.

// AdHocFlag reproduces the incompatibility documented in the paper's
// Appendix A: thread 0 sets a shared flag with a plain store ("ad-hoc
// synchronization"); the other threads poll it with plain loads, up to a
// bound. Because strong-determinism engines make writes visible only at
// synchronization operations, the polling threads never see the flag: they
// exhaust their budget and record a failure — deterministically, every run,
// exactly as the paper describes ("the resulting deadlocks or program
// crashes are repeatable"). Under pthreads the flag is usually, but not
// reliably, observed.
//
// The outcome cell at address 1+tid holds 1 if thread tid saw the flag,
// or 2 if it gave up.
func AdHocFlag(pollBudget int64) *harness.Workload {
	const flagAddr = 0
	return &harness.Workload{
		Name:      "adhoc_flag",
		HeapWords: 64,
		Locks:     1,
		Programs: func(threads int) []*dvm.Program {
			progs := make([]*dvm.Program, threads)
			for tid := 0; tid < threads; tid++ {
				b := dvm.NewBuilder(fmt.Sprintf("adhoc-%d", tid))
				if tid == 0 {
					// Setter: plain store, no synchronization.
					b.Store(dvm.Const(flagAddr), dvm.Const(1))
				} else {
					f, tries := b.Reg(), b.Reg()
					b.While(func(t *dvm.Thread) bool {
						return t.R(f) == 0 && t.R(tries) < pollBudget
					}, func() {
						b.Load(f, dvm.Const(flagAddr))
						b.Do(func(t *dvm.Thread) { t.AddR(tries, 1) })
					})
					out := int64(1 + tid)
					b.IfElse(func(t *dvm.Thread) bool { return t.R(f) != 0 },
						func() { b.Store(dvm.Const(out), dvm.Const(1)) }, // saw it
						func() { b.Store(dvm.Const(out), dvm.Const(2)) }, // gave up
					)
				}
				progs[tid] = b.Build()
			}
			return progs
		},
	}
}

// AtomicHistogram exercises the §7 speculative-atomics extension: threads
// atomically increment histogram bins chosen deterministically, inside
// lock-protected critical sections on per-thread locks, so the atomics are
// the only cross-thread communication.
func AtomicHistogram(scale int) *harness.Workload {
	bins := int64(256)
	ops := int64(400 * scale)
	var l layout
	hist := l.alloc(bins)

	var lk lockAlloc
	myLock := int64(lk.alloc(64))

	w := &harness.Workload{Name: "atomic_histogram", HeapWords: l.next, Locks: lk.next, Barriers: 1}
	w.Programs = func(threads int) []*dvm.Program {
		progs := make([]*dvm.Program, threads)
		for tid := 0; tid < threads; tid++ {
			b := dvm.NewBuilder(fmt.Sprintf("athist-%d", tid))
			i, bin, r := b.Reg(), b.Reg(), b.Reg()
			lock := dvm.Const(myLock + int64(tid%64))
			b.ForN(i, ops, func() {
				b.Lock(lock)
				b.DoCost(4, func(t *dvm.Thread) { t.SetR(bin, t.RandN(bins)) })
				b.AtomicAdd(r, dvm.Dyn(func(t *dvm.Thread) int64 { return hist + t.R(bin) }), dvm.Const(1))
				b.Unlock(lock)
			})
			b.Barrier(dvm.Const(0))
			progs[tid] = b.Build()
		}
		return progs
	}
	w.Validate = func(read func(int64) int64, threads int) error {
		var total int64
		for i := int64(0); i < bins; i++ {
			total += read(hist + i)
		}
		if want := ops * int64(threads); total != want {
			return fmt.Errorf("histogram total = %d, want %d (atomic increments lost)", total, want)
		}
		return nil
	}
	return w
}
