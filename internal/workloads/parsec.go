package workloads

import (
	"fmt"
	"math"

	"lazydet/internal/dvm"
	"lazydet/internal/harness"
)

// PARSEC-2 programs (Bienia et al., PACT'08). blackscholes and swaptions
// are the suite's embarrassingly parallel members (one lock, two
// acquisitions); ferret and dedup are the pipeline programs whose thousands
// of lock variables and in-critical-section system calls make them the
// paper's flagship speculation targets (Figures 8, 9 and 11).

// cndf is the cumulative normal distribution used by the Black-Scholes
// formula (Abramowitz-Stegun polynomial, as in PARSEC).
func cndf(x float64) float64 {
	sign := false
	if x < 0 {
		x = -x
		sign = true
	}
	k := 1 / (1 + 0.2316419*x)
	poly := k * (0.319381530 + k*(-0.356563782+k*(1.781477937+k*(-1.821255978+k*1.330274429))))
	v := 1 - 1/math.Sqrt(2*math.Pi)*math.Exp(-x*x/2)*poly
	if sign {
		return 1 - v
	}
	return v
}

// Blackscholes prices a portfolio of European options, partitioned across
// threads, with the suite's single init lock.
func Blackscholes(scale int) *harness.Workload {
	options := int64(2048 * scale)
	var l layout
	spot := l.alloc(options)
	strike := l.alloc(options)
	rate := l.alloc(options)
	vol := l.alloc(options)
	tte := l.alloc(options)
	price := l.alloc(options)

	w := &harness.Workload{Name: "blackscholes", HeapWords: l.next, Locks: 1, Barriers: 1}
	w.Init = func(set func(addr, val int64), threads int) {
		r := uint64(19)
		for i := int64(0); i < options; i++ {
			r = lcg(r)
			set(spot+i, ftoi(80+float64(r%4000)/100))
			r = lcg(r)
			set(strike+i, ftoi(80+float64(r%4000)/100))
			set(rate+i, ftoi(0.05))
			r = lcg(r)
			set(vol+i, ftoi(0.1+float64(r%40)/100))
			r = lcg(r)
			set(tte+i, ftoi(0.25+float64(r%8)/4))
		}
	}
	w.Programs = func(threads int) []*dvm.Program {
		progs := make([]*dvm.Program, threads)
		for tid := 0; tid < threads; tid++ {
			b := dvm.NewBuilder(fmt.Sprintf("blackscholes-%d", tid))
			lo, hi := splitRange(options, threads, tid)
			i, s, k, r, v, tt, out := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
			if tid == 0 {
				b.Lock(dvm.Const(0))
				b.Unlock(dvm.Const(0))
			}
			b.For(i, lo, dvm.Const(hi), func() {
				b.Load(s, dvm.Dyn(func(t *dvm.Thread) int64 { return spot + t.R(i) }))
				b.Load(k, dvm.Dyn(func(t *dvm.Thread) int64 { return strike + t.R(i) }))
				b.Load(r, dvm.Dyn(func(t *dvm.Thread) int64 { return rate + t.R(i) }))
				b.Load(v, dvm.Dyn(func(t *dvm.Thread) int64 { return vol + t.R(i) }))
				b.Load(tt, dvm.Dyn(func(t *dvm.Thread) int64 { return tte + t.R(i) }))
				b.DoCost(8, func(t *dvm.Thread) {
					S, K := itof(t.R(s)), itof(t.R(k))
					R, V, T := itof(t.R(r)), itof(t.R(v)), itof(t.R(tt))
					d1 := (math.Log(S/K) + (R+V*V/2)*T) / (V * math.Sqrt(T))
					d2 := d1 - V*math.Sqrt(T)
					c := S*cndf(d1) - K*math.Exp(-R*T)*cndf(d2)
					t.SetR(out, ftoi(c))
				})
				b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return price + t.R(i) }), dvm.FromReg(out))
			})
			b.Barrier(dvm.Const(0))
			progs[tid] = b.Build()
		}
		return progs
	}
	w.Validate = func(read func(int64) int64, threads int) error {
		for i := int64(0); i < options; i += options / 16 {
			c := itof(read(price + i))
			s := itof(read(spot + i))
			if c < 0 || c > s {
				return fmt.Errorf("option %d price %v out of [0, %v]", i, c, s)
			}
		}
		return nil
	}
	return w
}

// Swaptions runs a Monte-Carlo swaption pricer on the thread-local
// deterministic PRNG.
func Swaptions(scale int) *harness.Workload {
	swaptions := int64(32)
	trials := int64(400 * scale)
	var l layout
	params := l.alloc(swaptions)
	results := l.alloc(swaptions)

	w := &harness.Workload{Name: "swaptions", HeapWords: l.next, Locks: 1, Barriers: 1}
	w.Init = func(set func(addr, val int64), threads int) {
		for i := int64(0); i < swaptions; i++ {
			set(params+i, ftoi(0.01+float64(i)/1000))
		}
	}
	w.Programs = func(threads int) []*dvm.Program {
		progs := make([]*dvm.Program, threads)
		for tid := 0; tid < threads; tid++ {
			b := dvm.NewBuilder(fmt.Sprintf("swaptions-%d", tid))
			lo, hi := splitRange(swaptions, threads, tid)
			i, tr, p, acc := b.Reg(), b.Reg(), b.Reg(), b.Reg()
			if tid == 0 {
				b.Lock(dvm.Const(0))
				b.Unlock(dvm.Const(0))
			}
			b.For(i, lo, dvm.Const(hi), func() {
				b.Load(p, dvm.Dyn(func(t *dvm.Thread) int64 { return params + t.R(i) }))
				b.Set(acc, 0)
				b.For(tr, 0, dvm.Const(trials), func() {
					b.DoCost(4, func(t *dvm.Thread) {
						strike := itof(t.R(p))
						// Simulated forward-rate path.
						rnd := float64(t.RandN(10000))/10000 - 0.5
						rate := 0.05 + strike + rnd*0.02
						payoff := rate - 0.05
						if payoff < 0 {
							payoff = 0
						}
						t.SetR(acc, ftoi(itof(t.R(acc))+payoff))
					})
				})
				b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return results + t.R(i) }), dvm.Dyn(func(t *dvm.Thread) int64 { return ftoi(itof(t.R(acc)) / float64(trials)) }))
			})
			b.Barrier(dvm.Const(0))
			progs[tid] = b.Build()
		}
		return progs
	}
	return w
}

// Streamcluster clusters points with barrier-delimited phases and two
// locks, one of them hot (the global cost accumulator), per Table 1.
func Streamcluster(scale int) *harness.Workload {
	points := int64(1024 * scale)
	const dim = 4
	const iters = 8
	var l layout
	data := l.alloc(points * dim)
	center := l.alloc(dim)
	cost := l.alloc(1)
	opened := l.alloc(1)

	var lk lockAlloc
	costLock := int64(lk.alloc(1))
	openLock := int64(lk.alloc(1))

	w := &harness.Workload{Name: "streamcluster", HeapWords: l.next, Locks: lk.next, Barriers: 1}
	w.Init = func(set func(addr, val int64), threads int) {
		r := uint64(13)
		for i := int64(0); i < points*dim; i++ {
			r = lcg(r)
			set(data+i, ftoi(float64(r%100)))
		}
	}
	w.Programs = func(threads int) []*dvm.Program {
		progs := make([]*dvm.Program, threads)
		for tid := 0; tid < threads; tid++ {
			b := dvm.NewBuilder(fmt.Sprintf("streamcluster-%d", tid))
			lo, hi := splitRange(points, threads, tid)
			it, i, d, v, cv, acc := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
			cbuf := b.Scratch(dim)
			b.ForN(it, iters, func() {
				// Cache the center, then accumulate the local cost.
				b.ForN(d, dim, func() {
					b.Load(cv, dvm.Dyn(func(t *dvm.Thread) int64 { return center + t.R(d) }))
					b.Do(func(t *dvm.Thread) { t.Scratch[cbuf+t.R(d)] = t.R(cv) })
				})
				b.Set(acc, 0)
				b.For(i, lo, dvm.Const(hi), func() {
					b.ForN(d, dim, func() {
						b.Load(v, dvm.Dyn(func(t *dvm.Thread) int64 { return data + t.R(i)*dim + t.R(d) }))
						b.Do(func(t *dvm.Thread) {
							df := itof(t.R(v)) - itof(t.Scratch[cbuf+t.R(d)])
							t.SetR(acc, ftoi(itof(t.R(acc))+df*df))
						})
					})
				})
				b.Lock(dvm.Const(costLock))
				b.Load(v, dvm.Const(cost))
				b.Store(dvm.Const(cost), dvm.Dyn(func(t *dvm.Thread) int64 {
					return ftoi(itof(t.R(v)) + itof(t.R(acc)))
				}))
				b.Unlock(dvm.Const(costLock))
				b.Barrier(dvm.Const(0))
				// Thread 0 decides whether to open a new center.
				if tid == 0 {
					b.Lock(dvm.Const(openLock))
					b.Load(v, dvm.Const(opened))
					b.Store(dvm.Const(opened), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(v) + 1 }))
					b.ForN(d, dim, func() {
						b.Load(cv, dvm.Dyn(func(t *dvm.Thread) int64 { return data + (t.R(v)*31%points)*dim + t.R(d) }))
						b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return center + t.R(d) }), dvm.FromReg(cv))
					})
					b.Unlock(dvm.Const(openLock))
				}
				b.Barrier(dvm.Const(0))
			})
			progs[tid] = b.Build()
		}
		return progs
	}
	return w
}

// Ferret is the image-similarity pipeline. As in PARSEC, threads are
// assigned to stages, which concentrates each lock population in its
// stage's threads — the reason the paper measures ~100 % speculation
// success despite half a million acquisitions. The DMT-relevant shape
// (Table 1, §5.4): the rank stage performs an extreme number of
// acquisitions of its queue lock with little work between them (coarsening
// is essential) and calls mmap/munmap inside critical sections
// (irrevocable upgrade is essential); the index stage probes a
// ~thousand-lock hash table with a skewed distribution; the remaining
// threads do compute-heavy feature extraction.
func Ferret(scale int) *harness.Workload {
	const tableLocks = 1000
	rankOps := int64(4800 * scale)
	indexItems := int64(600 * scale)
	extractItems := int64(150 * scale)
	const syscallEvery = 40 // gives the paper's ~40-CS mean run length
	var l layout
	images := l.alloc(4096)
	table := l.alloc(tableLocks)
	candidates := l.alloc(64 * 8) // per-extractor candidate slots
	rankOut := l.alloc(8)

	var lk lockAlloc
	tableLock := int64(lk.alloc(tableLocks))
	rankLock := int64(lk.alloc(1))

	w := &harness.Workload{Name: "ferret", HeapWords: l.next, Locks: lk.next, Barriers: 1}
	w.Init = func(set func(addr, val int64), threads int) {
		r := uint64(29)
		for i := int64(0); i < 4096; i++ {
			r = lcg(r)
			set(images+i, int64(r%65536))
		}
	}
	w.Programs = func(threads int) []*dvm.Program {
		progs := make([]*dvm.Program, threads)
		for tid := 0; tid < threads; tid++ {
			b := dvm.NewBuilder(fmt.Sprintf("ferret-%d", tid))
			switch {
			case tid == 0:
				// Rank stage: a tight lock-acquire loop with mmap
				// system calls inside the critical section.
				i, v, best := b.Reg(), b.Reg(), b.Reg()
				b.ForN(i, rankOps, func() {
					b.Lock(dvm.Const(rankLock))
					b.Load(v, dvm.Dyn(func(t *dvm.Thread) int64 {
						return candidates + t.R(i)%(64*8)
					}))
					b.Do(func(t *dvm.Thread) {
						if t.R(v) > t.R(best) {
							t.SetR(best, t.R(v))
						}
					})
					// Maintain the rank list under the lock.
					b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return rankOut + t.R(i)%8 }), dvm.FromReg(best))
					b.If(func(t *dvm.Thread) bool { return t.R(i)%syscallEvery == syscallEvery-1 }, func() {
						b.Syscall(&dvm.Syscall{Name: "mmap", Work: 300})
					})
					b.Unlock(dvm.Const(rankLock))
				})
			case tid == 1:
				// Index stage: hash-table probes over a skewed
				// bucket distribution.
				i, h, v := b.Reg(), b.Reg(), b.Reg()
				b.ForN(i, indexItems, func() {
					b.Load(v, dvm.Dyn(func(t *dvm.Thread) int64 { return images + (t.R(i)*7)%4096 }))
					b.DoCost(6, func(t *dvm.Thread) {
						f := t.R(v)*2654435761 + t.R(i)
						// Half the probes follow a skewed popularity,
						// half are uniform: a few very hot buckets over
						// a broad population, as in Table 1's row.
						if f&1 == 0 {
							t.SetR(h, zipfPick(f>>1&0xffff, tableLocks))
						} else {
							t.SetR(h, f>>1%tableLocks)
						}
					})
					for probe := 0; probe < 2; probe++ {
						probe := probe
						bucket := func(t *dvm.Thread) int64 {
							return (t.R(h) + int64(probe)*37) % tableLocks
						}
						b.Lock(dvm.Dyn(func(t *dvm.Thread) int64 { return tableLock + bucket(t) }))
						b.Load(v, dvm.Dyn(func(t *dvm.Thread) int64 { return table + bucket(t) }))
						b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return table + bucket(t) }), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(v) + 1 }))
						b.Unlock(dvm.Dyn(func(t *dvm.Thread) int64 { return tableLock + bucket(t) }))
					}
				})
			default:
				// Extraction stage: compute-heavy, lock-free; results
				// go to this thread's private candidate slots.
				i, v, feat := b.Reg(), b.Reg(), b.Reg()
				b.ForN(i, extractItems, func() {
					b.Load(v, dvm.Dyn(func(t *dvm.Thread) int64 { return images + (t.R(i)*int64(tid*131+7))%4096 }))
					b.DoCost(20, func(t *dvm.Thread) {
						f := t.R(v)
						for k := 0; k < 8; k++ {
							f = f*2654435761 + int64(tid)
						}
						t.SetR(feat, f&0x7fffffff)
					})
					b.Store(dvm.Dyn(func(t *dvm.Thread) int64 {
						return candidates + int64(tid%64)*8 + t.R(i)%8
					}), dvm.FromReg(feat))
				})
			}
			b.Barrier(dvm.Const(0))
			progs[tid] = b.Build()
		}
		return progs
	}
	w.Validate = func(read func(int64) int64, threads int) error {
		var probes int64
		for i := int64(0); i < tableLocks; i++ {
			probes += read(table + i)
		}
		want := indexItems * 2
		if threads == 1 {
			want = 0
		}
		if probes != want {
			return fmt.Errorf("table probes = %d, want %d", probes, want)
		}
		return nil
	}
	return w
}

// Dedup is the deduplicating compression pipeline: ~2k fingerprint-bucket
// locks with moderate counts, plus a hot shared output-queue lock. As in
// PARSEC, queue traffic is batched (a stage hands whole item batches
// across), so runs coarsen over several bucket critical sections between
// queue operations, and queue sharing causes the real-but-survivable
// conflict rate the paper measures (Table 2: ~60 % success). write()
// system calls happen inside the queue critical section.
func Dedup(scale int) *harness.Workload {
	const buckets = 1024
	chunksPerThread := int64(320 * scale)
	const batch = 8 // chunks per queue append
	const syscallEvery = 8
	var l layout
	input := l.alloc(8192)
	bucketData := l.alloc(buckets)
	outLen := l.alloc(1)
	outQueue := l.alloc(4096)

	var lk lockAlloc
	bucketLock := int64(lk.alloc(buckets))
	queueLock := int64(lk.alloc(1))

	w := &harness.Workload{Name: "dedup", HeapWords: l.next, Locks: lk.next, Barriers: 1}
	w.Init = func(set func(addr, val int64), threads int) {
		r := uint64(37)
		for i := int64(0); i < 8192; i++ {
			r = lcg(r)
			set(input+i, int64(r%100000))
		}
	}
	w.Programs = func(threads int) []*dvm.Program {
		progs := make([]*dvm.Program, threads)
		for tid := 0; tid < threads; tid++ {
			b := dvm.NewBuilder(fmt.Sprintf("dedup-%d", tid))
			lo, hi := splitRange(chunksPerThread*int64(threads), threads, tid)
			i, v, fp, hb, n, fresh := b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg(), b.Reg()
			b.For(i, lo, dvm.Const(hi), func() {
				// Chunk + fingerprint (compute over the input).
				b.Load(v, dvm.Dyn(func(t *dvm.Thread) int64 { return input + t.R(i)%8192 }))
				b.DoCost(6, func(t *dvm.Thread) {
					f := t.R(v)*-7046029254386353131 + t.R(i) // Fibonacci hashing constant
					t.SetR(fp, f&0x7fffffffffffffff)
					t.SetR(hb, zipfPick(t.R(fp)&0xffff, buckets))
				})
				// Deduplicate against the fingerprint table bucket.
				b.Lock(dvm.Dyn(func(t *dvm.Thread) int64 { return bucketLock + t.R(hb) }))
				b.Load(v, dvm.Dyn(func(t *dvm.Thread) int64 { return bucketData + t.R(hb) }))
				b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return bucketData + t.R(hb) }), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(v) + 1 }))
				b.Unlock(dvm.Dyn(func(t *dvm.Thread) int64 { return bucketLock + t.R(hb) }))
				b.Do(func(t *dvm.Thread) { t.AddR(fresh, 1) })
				// Every batch, append to the shared output queue under
				// the hot lock and write() the compressed batch out
				// inside the critical section.
				b.If(func(t *dvm.Thread) bool { return t.R(fresh) >= batch }, func() {
					b.Lock(dvm.Const(queueLock))
					b.Load(n, dvm.Const(outLen))
					b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return outQueue + t.R(n)%4096 }), dvm.FromReg(fp))
					b.Store(dvm.Const(outLen), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(n) + 1 }))
					b.If(func(t *dvm.Thread) bool { return t.R(n)%syscallEvery == syscallEvery-1 }, func() {
						b.Syscall(&dvm.Syscall{Name: "write", Work: 200})
					})
					b.Unlock(dvm.Const(queueLock))
					b.Set(fresh, 0)
				})
			})
			b.Barrier(dvm.Const(0))
			progs[tid] = b.Build()
		}
		return progs
	}
	w.Validate = func(read func(int64) int64, threads int) error {
		var dedups int64
		for i := int64(0); i < buckets; i++ {
			dedups += read(bucketData + i)
		}
		if want := chunksPerThread * int64(threads); dedups != want {
			return fmt.Errorf("bucket updates = %d, want %d", dedups, want)
		}
		return nil
	}
	return w
}
