// Package mempipe is the shared memory pipeline behind every engine: one
// engine-facing interface over the two memory substrates — versioned
// (internal/vheap, strong determinism: threads are isolated between
// synchronization points and publish at deterministic commits) and flat
// (internal/shmem, the weak and nondeterministic engines: every store is
// immediately global and publication is a no-op).
//
// Before this layer each engine file drove its own copy of the
// commit/update choreography, guarded by mode checks. Routing all of them
// through Pipeline/Thread means the five engines exercise identical
// publication code — the paper's "one code base, many engines" comparison
// structure — and the dirty-word commit path (vheap) has exactly one caller
// to keep correct.
//
// The flat pipeline answers the same questions degenerately: it is never
// dirty, Publish commits nothing, Refresh has nothing to re-base, and its
// sequence number is always 0. The speculation operations (SnapshotDirty,
// RevertTo) panic — speculation without write isolation cannot be rolled
// back, and the engines never speculate in weak modes.
package mempipe

import (
	"lazydet/internal/shmem"
	"lazydet/internal/telemetry"
	"lazydet/internal/vheap"
)

// Pipeline is one engine's route to shared memory. Implementations are
// NewVersioned (vheap) and NewFlat (shmem).
type Pipeline interface {
	// NewThread opens thread tid's private window onto the memory. Engines
	// call it once per thread, at thread start.
	NewThread(tid int) Thread
	// Seq returns the newest published commit sequence — always 0 for flat
	// memory, where stores are global the moment they happen.
	Seq() int64
	// Shards reports how many page-range shards publications are routed
	// across (per-shard commit locks in the versioned heap). Flat memory is
	// unsharded: every store lands directly, so it reports 1.
	Shards() int
	// ReadCommitted reads the newest published value of addr, bypassing
	// any thread's unpublished writes.
	ReadCommitted(addr int64) int64
}

// Thread is one thread's window onto the pipeline's memory. The VM's load
// and store instructions dispatch straight to it (it satisfies
// dvm.MemWindow); the engines drive the publication methods at
// synchronization points.
type Thread interface {
	// Load reads addr: the thread's own unpublished write if there is one,
	// otherwise the published state the window is based on.
	Load(addr int64) int64
	// Store writes addr. Versioned windows buffer the write privately and
	// record the word in the page's dirty bitmap; flat windows write
	// through immediately.
	Store(addr, val int64)
	// StoreDirty writes addr and guarantees the word wins the merge at
	// publication even if the stored value equals the window's base
	// contents (irrevocable atomics). Equivalent to Store on flat memory.
	StoreDirty(addr, val int64)

	// Dirty reports whether the window holds unpublished writes. Always
	// false for flat memory.
	Dirty() bool
	// DirtyWords counts unpublished words differing from the window's base.
	DirtyWords() int
	// Publish makes the window's writes globally visible. It reports the
	// commit sequence it published at, and false if there was nothing to
	// publish (or the memory is flat and publication is meaningless).
	Publish() (seq int64, committed bool)
	// Refresh re-bases the window on the newest published state. The dirty
	// set must be empty (publish or revert first).
	Refresh()
	// RefreshTo re-bases the window on a specific commit sequence — used
	// when a woken thread must adopt exactly the state its waker published
	// (barrier releases, spawns), where "newest at wake time" would be a
	// wall-clock race. No-op on flat memory (seq is always 0 there).
	RefreshTo(seq int64)
	// BaseSeq returns the commit sequence the window reads at.
	BaseSeq() int64

	// StagePublish defers publication (same-owner elision, vheap stage.go):
	// when the window holds writes not yet covered by a publication it
	// reserves the next commit sequence and stages them, otherwise it only
	// re-bases on the newest state; the dirty set is retained either way and
	// other windows' deferred publications are flushed first. Returns the
	// reserved sequence and whether a new publication was staged. On flat
	// memory publication is meaningless, so (0, false).
	StagePublish() (seq int64, staged bool)
	// RefreshDirty re-bases the window on the newest published state while
	// keeping the dirty set — Refresh for a window with deferred state.
	// No-op on flat memory.
	RefreshDirty()
	// RefreshToDirty re-bases the window on a specific commit sequence while
	// keeping the dirty set (barrier releases under elision), flushing every
	// outstanding deferred publication first. No-op on flat memory.
	RefreshToDirty(seq int64)
	// StageFlushed reports whether the window's most recent deferred
	// publication was applied by another thread — the elision miss signal
	// the adaptive policy feeds on. Always false on flat memory.
	StageFlushed() bool
	// Unpublished reports whether the window holds writes not yet covered by
	// any publication, eager or deferred. Always false on flat memory.
	Unpublished() bool
	// SyncDeferred applies other windows' outstanding deferred publications
	// without moving this window's base. No-op on flat memory.
	SyncDeferred()
	// SettleDeferred applies every outstanding deferred publication, the
	// window's own included — the engine's move at the turn before a thread
	// parks, spawns, or exits. No-op on flat memory.
	SettleDeferred()
	// DropClean releases the window's retained dirty set once everything in
	// it has been published (no writes since the last publication event, no
	// outstanding deferred publication). No-op on flat memory.
	DropClean()
	// AuditDeferred verifies that the window's deferred publication is still
	// a prefix of its dirty set (the deferred-publish invariant); nil on
	// flat memory.
	AuditDeferred() error

	// SnapshotDirty deep-copies the unpublished write set at a speculation
	// run's begin. Panics on flat memory.
	SnapshotDirty() *vheap.DirtySnapshot
	// SnapshotDirtyInto deep-copies the unpublished write set into s,
	// recycling its buffers (nil s allocates a fresh snapshot) — the
	// allocation-free path the speculation engine uses across runs. Panics
	// on flat memory.
	SnapshotDirtyInto(s *vheap.DirtySnapshot) *vheap.DirtySnapshot
	// RevertTo discards the run's writes and reinstates the snapshot,
	// returning the number of discarded speculative words. Panics on flat
	// memory.
	RevertTo(s *vheap.DirtySnapshot) (discarded int)

	// AuditDirty verifies the window's dirty tracking (see
	// vheap.View.AuditDirty); nil on flat memory, which tracks nothing.
	AuditDirty() error
	// Close releases the window at thread exit.
	Close()
}

// versioned is the strong-determinism pipeline over a versioned heap.
type versioned struct {
	h   *vheap.Heap
	tel *telemetry.Recorder
}

// NewVersioned builds the pipeline the strong engines (Consequence, LazyDet)
// run on: thread windows are vheap views, publication is a versioned commit.
// tel, if non-nil, receives per-publication metrics ("mempipe.publishes" and
// the "mempipe.publish_dirty_words" histogram of dirty-set sizes at
// publication); nil disables them at the cost of a pointer compare.
func NewVersioned(h *vheap.Heap, tel *telemetry.Recorder) Pipeline { return versioned{h, tel} }

func (p versioned) NewThread(tid int) Thread {
	return &versionedThread{v: p.h.NewView(), tel: p.tel}
}
func (p versioned) Seq() int64                     { return p.h.Seq() }
func (p versioned) Shards() int                    { return p.h.Shards() }
func (p versioned) ReadCommitted(addr int64) int64 { return p.h.ReadCommitted(addr) }

type versionedThread struct {
	v   *vheap.View
	tel *telemetry.Recorder
}

func (t *versionedThread) Load(addr int64) int64               { return t.v.Load(addr) }
func (t *versionedThread) Store(addr, val int64)               { t.v.Store(addr, val) }
func (t *versionedThread) StoreDirty(addr, val int64)          { t.v.StoreDirty(addr, val) }
func (t *versionedThread) Dirty() bool                         { return t.v.DirtyPages() != 0 }
func (t *versionedThread) DirtyWords() int                     { return t.v.DirtyWords() }
func (t *versionedThread) Refresh()                            { t.v.Update() }
func (t *versionedThread) RefreshTo(seq int64)                 { t.v.UpdateTo(seq) }
func (t *versionedThread) BaseSeq() int64                      { return t.v.BaseSeq() }
func (t *versionedThread) SnapshotDirty() *vheap.DirtySnapshot { return t.v.SnapshotDirty() }
func (t *versionedThread) RevertTo(s *vheap.DirtySnapshot) int { return t.v.RevertTo(s) }
func (t *versionedThread) AuditDirty() error                   { return t.v.AuditDirty() }
func (t *versionedThread) AuditTables() error                  { return t.v.AuditTables() }
func (t *versionedThread) Close()                              { t.v.Close() }

func (t *versionedThread) RefreshDirty()          { t.v.RefreshDirty() }
func (t *versionedThread) RefreshToDirty(s int64) { t.v.RefreshToDirty(s) }
func (t *versionedThread) StageFlushed() bool     { return t.v.StageFlushed() }
func (t *versionedThread) Unpublished() bool      { return t.v.Unpublished() }
func (t *versionedThread) SyncDeferred()          { t.v.SyncDeferred() }
func (t *versionedThread) SettleDeferred()        { t.v.SettleDeferred() }
func (t *versionedThread) DropClean()             { t.v.DropClean() }
func (t *versionedThread) AuditDeferred() error   { return t.v.AuditDeferred() }

func (t *versionedThread) SnapshotDirtyInto(s *vheap.DirtySnapshot) *vheap.DirtySnapshot {
	return t.v.SnapshotDirtyInto(s)
}

func (t *versionedThread) Publish() (int64, bool) {
	// Unpublished, not DirtyPages: an elided window retains its dirty set
	// across staged publications, and a force point with no writes since the
	// last stage must publish nothing — exactly when the eager path's dirty
	// set would have been empty. The two tests coincide in eager operation.
	if !t.v.Unpublished() {
		return 0, false
	}
	if t.tel != nil {
		t.tel.Count("mempipe.publishes", 1)
		t.tel.Observe("mempipe.publish_dirty_words", int64(t.v.DirtyWords()))
	}
	seq, _ := t.v.Commit()
	return seq, true
}

func (t *versionedThread) StagePublish() (int64, bool) {
	seq, staged := t.v.StagePublish()
	if staged && t.tel != nil {
		t.tel.Count("mempipe.publishes", 1)
		t.tel.Observe("mempipe.publish_dirty_words", int64(t.v.DirtyWords()))
	}
	return seq, staged
}

// flat is the unversioned pipeline over plain shared memory.
type flat struct{ m *shmem.Mem }

// NewFlat builds the pipeline the weak and nondeterministic engines run on:
// no isolation, no versions, publication is a no-op — so there is nothing to
// measure and flat pipelines take no recorder.
func NewFlat(m *shmem.Mem) Pipeline { return flat{m} }

func (p flat) NewThread(tid int) Thread       { return flatThread{p.m} }
func (p flat) Seq() int64                     { return 0 }
func (p flat) Shards() int                    { return 1 }
func (p flat) ReadCommitted(addr int64) int64 { return p.m.ReadCommitted(addr) }

type flatThread struct{ m *shmem.Mem }

func (t flatThread) Load(addr int64) int64       { return t.m.Load(addr) }
func (t flatThread) Store(addr, val int64)       { t.m.Store(addr, val) }
func (t flatThread) StoreDirty(addr, val int64)  { t.m.Store(addr, val) }
func (t flatThread) Dirty() bool                 { return false }
func (t flatThread) DirtyWords() int             { return 0 }
func (t flatThread) Publish() (int64, bool)      { return 0, false }
func (t flatThread) StagePublish() (int64, bool) { return 0, false }
func (t flatThread) Refresh()                    {}
func (t flatThread) RefreshTo(seq int64)         {}
func (t flatThread) RefreshDirty()               {}
func (t flatThread) RefreshToDirty(seq int64)    {}
func (t flatThread) StageFlushed() bool          { return false }
func (t flatThread) Unpublished() bool           { return false }
func (t flatThread) SyncDeferred()               {}
func (t flatThread) SettleDeferred()             {}
func (t flatThread) DropClean()                  {}
func (t flatThread) AuditDeferred() error        { return nil }
func (t flatThread) BaseSeq() int64              { return 0 }
func (t flatThread) AuditDirty() error           { return nil }
func (t flatThread) Close()                      {}

func (t flatThread) SnapshotDirty() *vheap.DirtySnapshot {
	panic("mempipe: speculation snapshot on flat memory — speculation requires versioned isolation")
}

func (t flatThread) SnapshotDirtyInto(*vheap.DirtySnapshot) *vheap.DirtySnapshot {
	panic("mempipe: speculation snapshot on flat memory — speculation requires versioned isolation")
}

func (t flatThread) RevertTo(*vheap.DirtySnapshot) int {
	panic("mempipe: speculation revert on flat memory — speculation requires versioned isolation")
}
