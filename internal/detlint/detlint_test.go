package detlint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// lintSrc parses one in-memory file and lints it.
func lintSrc(t *testing.T, src string) []Finding {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("fixture does not parse: %v", err)
	}
	return LintFiles(fset, []*ast.File{f})
}

func TestWallClock(t *testing.T) {
	fs := lintSrc(t, `package p
import "time"
func f() int64 { return time.Now().UnixNano() }
func g(s time.Time) time.Duration { return time.Since(s) }
func h(s time.Time) time.Duration { return time.Until(s) }
func ok() time.Duration { return time.Second }
`)
	if len(fs) != 3 {
		t.Fatalf("findings = %v, want 3 wall-clock", fs)
	}
	for _, f := range fs {
		if f.Rule != RuleWallClock {
			t.Fatalf("rule = %s, want %s", f.Rule, RuleWallClock)
		}
	}
}

func TestMathRandImport(t *testing.T) {
	fs := lintSrc(t, `package p
import "math/rand"
func f() int { return rand.Int() }
`)
	if len(fs) != 1 || fs[0].Rule != RuleMathRand {
		t.Fatalf("findings = %v, want one math-rand", fs)
	}
}

func TestMapRange(t *testing.T) {
	fs := lintSrc(t, `package p
type bag struct{ m map[int]string }
func f(b bag) int {
	n := 0
	for range b.m {
		n++
	}
	return n
}
func ok(xs []int) int {
	n := 0
	for range xs {
		n++
	}
	return n
}
`)
	if len(fs) != 1 || fs[0].Rule != RuleMapRange {
		t.Fatalf("findings = %v, want one map-range", fs)
	}
}

func TestSelect(t *testing.T) {
	fs := lintSrc(t, `package p
func f(a, b chan int) int {
	select {
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}
func singleCaseOK(a chan int) int {
	select {
	case v := <-a:
		return v
	}
}
`)
	if len(fs) != 1 || fs[0].Rule != RuleSelect {
		t.Fatalf("findings = %v, want one select", fs)
	}
}

func TestSuppressionLine(t *testing.T) {
	fs := lintSrc(t, `package p
import "time"
func f() int64 {
	//lazydet:nondeterministic measurement only
	return time.Now().UnixNano()
}
`)
	if len(fs) != 0 {
		t.Fatalf("line directive did not suppress: %v", fs)
	}
}

func TestSuppressionFunc(t *testing.T) {
	fs := lintSrc(t, `package p
import "time"

//lazydet:nondeterministic this whole function measures wall time
func f() (int64, int64) {
	a := time.Now().UnixNano()
	b := time.Now().UnixNano()
	return a, b
}
func g() int64 { return time.Now().UnixNano() }
`)
	if len(fs) != 1 {
		t.Fatalf("function directive must suppress f's two calls but not g's: %v", fs)
	}
}

func TestSuppressionFile(t *testing.T) {
	fs := lintSrc(t, `//lazydet:nondeterministic benchmark helper file, timing is the point
package p
import "time"
func f() int64 { return time.Now().UnixNano() }
`)
	if len(fs) != 0 {
		t.Fatalf("file directive did not suppress: %v", fs)
	}
}

func TestSuppressionImport(t *testing.T) {
	fs := lintSrc(t, `package p
//lazydet:nondeterministic seeded explicitly by the caller
import "math/rand"
var _ = rand.Int
`)
	if len(fs) != 0 {
		t.Fatalf("import directive did not suppress: %v", fs)
	}
}

func TestLocalTimeVariableNotFlagged(t *testing.T) {
	fs := lintSrc(t, `package p
type clock struct{}
func (clock) Now() int64 { return 0 }
func f() int64 {
	var time clock
	return time.Now()
}
`)
	if len(fs) != 0 {
		t.Fatalf("shadowed identifier flagged: %v", fs)
	}
}

// TestEngineDeterministicPackagesAreClean lints the repository's own
// deterministic execution path — the same check CI runs. Any new
// nondeterministic construct must either go away or gain an annotated
// justification.
func TestEngineDeterministicPackagesAreClean(t *testing.T) {
	fs, err := LintDirs(DefaultDirs("../.."))
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range fs {
		t.Errorf("%s", f)
	}
}
