// Package detlint is a determinism lint for the runtime's own Go source:
// it forbids, inside the engine-deterministic packages, the stdlib
// constructs whose behavior varies between runs and would silently break
// the deterministic engines' run-twice guarantees:
//
//   - wall-clock reads (time.Now / time.Since / time.Until),
//   - math/rand (seeded nondeterministically since Go 1.20),
//   - iteration over maps (randomized order),
//   - select statements with two or more cases (runtime picks uniformly
//     among ready cases).
//
// A construct that is deliberately nondeterministic — wall-time measurement,
// an order-independent map reduction, a channel handoff where every ready
// case commutes — is allowed when annotated with a
//
//	//lazydet:nondeterministic <reason>
//
// directive on the same line, the line above, the enclosing function's
// declaration, or the file's package doc. The reason is required reading for
// reviewers, not parsed.
//
// The lint mirrors the shape of a golang.org/x/tools/go/analysis pass but is
// built on the standard library only (go/ast, go/parser, go/types with a
// stub importer), so the repository carries no external dependencies.
// Cross-package types resolve to stubs; a range over a value whose type
// cannot be resolved is not reported (best-effort, never spurious).
package detlint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Directive is the annotation that marks deliberate nondeterminism.
const Directive = "//lazydet:nondeterministic"

// Rule names a lint rule.
type Rule string

const (
	RuleWallClock Rule = "wall-clock"
	RuleMathRand  Rule = "math-rand"
	RuleMapRange  Rule = "map-range"
	RuleSelect    Rule = "select"
)

// Finding is one determinism violation.
type Finding struct {
	File    string `json:"file"`
	Line    int    `json:"line"`
	Rule    Rule   `json:"rule"`
	Message string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", f.File, f.Line, f.Rule, f.Message)
}

// DefaultDirs returns the engine-deterministic package directories under
// root: the packages on the deterministic execution path, where run-to-run
// variance is a correctness bug rather than a style concern.
// internal/engine/direct (the pthreads baseline) is deliberately absent —
// it is nondeterministic by design.
func DefaultDirs(root string) []string {
	rel := []string{
		"internal/dvm",
		"internal/dlc",
		"internal/detsync",
		"internal/core",
		"internal/vheap",
		"internal/mempipe",
		"internal/shmem",
		"internal/invariant",
		"internal/trace",
		"internal/opensim",
		"internal/experiments",
	}
	dirs := make([]string, len(rel))
	for i, r := range rel {
		dirs[i] = filepath.Join(root, filepath.FromSlash(r))
	}
	return dirs
}

// LintDirs lints every non-test Go file of each directory and returns the
// unsuppressed findings, sorted by file and line.
func LintDirs(dirs []string) ([]Finding, error) {
	var all []Finding
	for _, dir := range dirs {
		fs, err := lintDir(dir)
		if err != nil {
			return nil, err
		}
		all = append(all, fs...)
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].File != all[j].File {
			return all[i].File < all[j].File
		}
		return all[i].Line < all[j].Line
	})
	return all, nil
}

func lintDir(dir string) ([]Finding, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("detlint: %w", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("detlint: %w", err)
		}
		files = append(files, f)
	}
	return LintFiles(fset, files), nil
}

// LintFiles lints already-parsed files belonging to one package. Exported
// for tests and for callers that hold sources in memory.
func LintFiles(fset *token.FileSet, files []*ast.File) []Finding {
	if len(files) == 0 {
		return nil
	}
	info := typeCheck(fset, files)
	var findings []Finding
	for _, f := range files {
		findings = append(findings, lintFile(fset, f, info)...)
	}
	return findings
}

// typeCheck runs go/types over the files with a stub importer, tolerating
// errors. Locally declared types (including map-typed fields of package
// structs) resolve; anything reaching into another package degrades to an
// invalid type, which the map-range rule then skips.
func typeCheck(fset *token.FileSet, files []*ast.File) *types.Info {
	info := &types.Info{Types: map[ast.Expr]types.TypeAndValue{}}
	conf := types.Config{
		Importer:         stubImporter{},
		Error:            func(error) {}, // best-effort: partial info is enough
		IgnoreFuncBodies: false,
	}
	pkgName := files[0].Name.Name
	_, _ = conf.Check(pkgName, fset, files, info)
	return info
}

// stubImporter satisfies every import with an empty package, so
// type-checking proceeds without reading other packages' sources.
type stubImporter struct{}

func (stubImporter) Import(path string) (*types.Package, error) {
	name := path
	if i := strings.LastIndex(path, "/"); i >= 0 {
		name = path[i+1:]
	}
	p := types.NewPackage(path, name)
	p.MarkComplete()
	return p, nil
}

// lintFile applies the rules to one file.
func lintFile(fset *token.FileSet, f *ast.File, info *types.Info) []Finding {
	sup := collectSuppressions(fset, f)
	if sup.file {
		return nil
	}

	// Resolve the local names of the time and math/rand imports.
	var findings []Finding
	timeNames := map[string]bool{}
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		local := ""
		if imp.Name != nil {
			local = imp.Name.Name
		}
		switch path {
		case "time":
			if local == "" {
				local = "time"
			}
			timeNames[local] = true
		case "math/rand", "math/rand/v2":
			if !sup.allows(fset, imp.Pos()) {
				pos := fset.Position(imp.Pos())
				findings = append(findings, Finding{
					File: pos.Filename, Line: pos.Line, Rule: RuleMathRand,
					Message: fmt.Sprintf("import of %s: nondeterministically seeded", path),
				})
			}
		}
	}
	return append(findings, lintBody(fset, f, info, sup, timeNames)...)
}

func lintBody(fset *token.FileSet, f *ast.File, info *types.Info, sup suppressions, timeNames map[string]bool) []Finding {
	var findings []Finding
	add := func(pos token.Pos, rule Rule, msg string) {
		if sup.allows(fset, pos) {
			return
		}
		p := fset.Position(pos)
		findings = append(findings, Finding{File: p.Filename, Line: p.Line, Rule: rule, Message: msg})
	}

	ast.Inspect(f, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				if id, ok := sel.X.(*ast.Ident); ok && timeNames[id.Name] && id.Obj == nil {
					switch sel.Sel.Name {
					case "Now", "Since", "Until":
						add(x.Pos(), RuleWallClock,
							fmt.Sprintf("%s.%s reads the wall clock; deterministic code must not branch on it", id.Name, sel.Sel.Name))
					}
				}
			}

		case *ast.RangeStmt:
			if t := info.Types[x.X].Type; t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					add(x.Pos(), RuleMapRange,
						"iteration over a map: order is randomized per run")
				}
			}

		case *ast.SelectStmt:
			if len(x.Body.List) >= 2 {
				add(x.Pos(), RuleSelect,
					fmt.Sprintf("select with %d cases: the runtime picks uniformly among ready cases", len(x.Body.List)))
			}
		}
		return true
	})
	return findings
}

// suppressions records where the directive appears in a file.
type suppressions struct {
	file  bool
	lines map[int]bool // lines bearing the directive
	funcs []funcSpan   // functions whose declaration carries the directive
}

type funcSpan struct{ start, end int }

// allows reports whether a finding at pos is suppressed: a directive on its
// line or the line above, or on the enclosing function's declaration.
func (s suppressions) allows(fset *token.FileSet, pos token.Pos) bool {
	line := fset.Position(pos).Line
	if s.lines[line] || s.lines[line-1] {
		return true
	}
	for _, f := range s.funcs {
		if line >= f.start && line <= f.end {
			return true
		}
	}
	return false
}

func collectSuppressions(fset *token.FileSet, f *ast.File) suppressions {
	s := suppressions{lines: map[int]bool{}}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, Directive) {
				continue
			}
			line := fset.Position(c.Pos()).Line
			s.lines[line] = true
			if f.Doc != nil && cg == f.Doc {
				s.file = true
			}
		}
	}
	// A directive in the function doc comment (or on its first line)
	// suppresses the whole body.
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		start := fset.Position(fd.Pos()).Line
		end := fset.Position(fd.End()).Line
		docHit := false
		if fd.Doc != nil {
			for _, c := range fd.Doc.List {
				if strings.HasPrefix(c.Text, Directive) {
					docHit = true
				}
			}
		}
		if docHit || s.lines[start] {
			s.funcs = append(s.funcs, funcSpan{start, end})
		}
	}
	return s
}
