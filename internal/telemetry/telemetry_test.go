package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestNilRecorderIsInert: the disabled recorder is the nil pointer; every
// method must be a safe no-op on it (the invariant/trace nil-check pattern).
func TestNilRecorderIsInert(t *testing.T) {
	var r *Recorder
	r.Count("x", 1)
	r.SetGauge("g", 2)
	r.Observe("h", 3)
	r.Span(0, SpanCommit, 1, 2, 3)
	if r.Enabled() || r.SpansEnabled() {
		t.Fatal("nil recorder claims to be enabled")
	}
	if r.Counter("x") != 0 || r.Gauge("g") != 0 || r.Threads() != 0 {
		t.Fatal("nil recorder returned non-zero state")
	}
	if r.ThreadSpans(0) != nil || r.CounterNames() != nil {
		t.Fatal("nil recorder returned non-nil collections")
	}
	s := r.Snapshot()
	if len(s.Counters) != 0 || len(s.Gauges) != 0 || len(s.Histograms) != 0 {
		t.Fatal("nil recorder snapshot is not empty")
	}
}

func TestCountersAndGauges(t *testing.T) {
	r := New()
	r.Count("a", 2)
	r.Count("a", 3)
	r.Count("b", -1)
	r.SetGauge("g", 1.5)
	r.SetGauge("g", 2.5)
	if got := r.Counter("a"); got != 5 {
		t.Fatalf("counter a = %d, want 5", got)
	}
	if got := r.Counter("b"); got != -1 {
		t.Fatalf("counter b = %d, want -1", got)
	}
	if got := r.Gauge("g"); got != 2.5 {
		t.Fatalf("gauge g = %v, want 2.5", got)
	}
	if names := r.CounterNames(); len(names) != 2 || names[0] != "a" || names[1] != "b" {
		t.Fatalf("counter names = %v, want [a b]", names)
	}
}

// TestCountersConcurrent: counter updates are safe from many goroutines and
// sum exactly.
func TestCountersConcurrent(t *testing.T) {
	r := New()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				r.Count("n", 1)
				r.Observe("h", int64(i))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("n"); got != 8000 {
		t.Fatalf("counter n = %d, want 8000", got)
	}
	if hs := r.Snapshot().Histograms["h"]; hs.N != 8000 {
		t.Fatalf("histogram n = %d, want 8000", hs.N)
	}
}

// TestHistogramBuckets: the fixed power-of-two layout puts each sample in
// the bucket whose lower bound is the largest power of two <= value, with
// non-positive samples in bucket 0.
func TestHistogramBuckets(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{1 << 20, 21}, {1<<62 + 5, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
	if BucketLow(0) != 0 || BucketLow(1) != 1 || BucketLow(4) != 8 {
		t.Fatalf("BucketLow layout moved: %d %d %d", BucketLow(0), BucketLow(1), BucketLow(4))
	}

	r := New()
	for _, v := range []int64{0, 1, 3, 3, 9} {
		r.Observe("h", v)
	}
	hs := r.Snapshot().Histograms["h"]
	if hs.N != 5 || hs.Sum != 16 {
		t.Fatalf("hist n=%d sum=%d, want 5/16", hs.N, hs.Sum)
	}
	want := map[string]int64{"0": 1, "1": 1, "2": 2, "8": 1}
	for k, v := range want {
		if hs.Buckets[k] != v {
			t.Fatalf("bucket %s = %d, want %d (all: %v)", k, hs.Buckets[k], v, hs.Buckets)
		}
	}
	if len(hs.Buckets) != len(want) {
		t.Fatalf("unexpected extra buckets: %v", hs.Buckets)
	}
}

func TestSpans(t *testing.T) {
	r := NewWithSpans(2)
	if !r.SpansEnabled() || r.Threads() != 2 {
		t.Fatal("spans not enabled")
	}
	r.Span(0, SpanTurnWait, 10, 14, 2)
	r.Span(1, SpanCommit, 20, 20, 7)
	r.Span(5, SpanCommit, 0, 0, 0)  // out of range: ignored
	r.Span(-1, SpanCommit, 0, 0, 0) // out of range: ignored
	if got := r.ThreadSpans(0); len(got) != 1 || got[0] != (Span{SpanTurnWait, 10, 14, 2}) {
		t.Fatalf("thread 0 spans = %v", got)
	}
	if got := r.ThreadSpans(1); len(got) != 1 || got[0].Kind != SpanCommit {
		t.Fatalf("thread 1 spans = %v", got)
	}
	if r.ThreadSpans(5) != nil {
		t.Fatal("out-of-range spans not nil")
	}
	// Counter-only recorders ignore spans.
	c := New()
	c.Span(0, SpanCommit, 1, 1, 1)
	if c.SpansEnabled() || c.Threads() != 0 {
		t.Fatal("counter-only recorder has span state")
	}
}

func TestSpanKindStrings(t *testing.T) {
	kinds := map[SpanKind]string{
		SpanTurnWait: "turn-wait", SpanSpec: "speculation",
		SpanCommit: "commit", SpanRevert: "revert", SpanKind(99): "unknown",
	}
	for k, want := range kinds {
		if k.String() != want {
			t.Errorf("kind %d = %q, want %q", k, k.String(), want)
		}
	}
}

// TestChromeTraceDeterministic: identical recorders export byte-identical
// traces, and the trace names tracks and events as documented.
func TestChromeTraceDeterministic(t *testing.T) {
	build := func() *Recorder {
		r := NewWithSpans(2)
		r.Span(0, SpanTurnWait, 0, 4, 1)
		r.Span(0, SpanCommit, 4, 4, 1)
		r.Span(1, SpanSpec, 2, 9, 3)
		r.Span(1, SpanRevert, 9, 9, 17)
		return r
	}
	var a, b bytes.Buffer
	if err := WriteChromeTrace(&a, build(), "unit"); err != nil {
		t.Fatal(err)
	}
	if err := WriteChromeTrace(&b, build(), "unit"); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of identical recorders differ")
	}
	out := a.String()
	for _, want := range []string{
		`"thread 0"`, `"thread 1"`, `"turn-wait"`, `"speculation"`,
		`"commit"`, `"revert"`, `"discarded_words": 17`, `"critical_sections": 3`,
		`"ph": "X"`, `"ph": "i"`, `"displayTimeUnit"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("trace missing %s", want)
		}
	}
	// Negative durations (defensive) clamp to zero.
	r := NewWithSpans(1)
	r.Span(0, SpanTurnWait, 10, 5, 0)
	var c bytes.Buffer
	if err := WriteChromeTrace(&c, r, "unit"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.String(), `"dur": 0`) {
		t.Fatal("negative span duration not clamped to 0")
	}
}
