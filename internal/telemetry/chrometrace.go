// Chrome-trace export: renders a recorder's per-thread span timelines as a
// chrome://tracing / Perfetto JSON trace. Each simulated thread is one
// track; turn-grant waits and speculation runs are duration events, commits
// and reverts instant events. Timestamps are DLC (deterministic logical
// clock) values, not wall time — the trace viewer's microsecond axis reads
// as logical ticks — so the exported bytes are a pure function of the
// deterministic schedule: two runs of a deterministic engine export
// byte-identical traces.

package telemetry

import (
	"encoding/json"
	"io"
	"strconv"
)

// chromeEvent is one entry of the Trace Event Format's traceEvents array.
// Field order is fixed by the struct and map args are key-sorted by
// encoding/json, so the serialization is deterministic. The metadata events
// (process/thread names, whose args are strings) are built as plain maps in
// WriteChromeTrace instead.
type chromeEvent struct {
	Name string           `json:"name"`
	Ph   string           `json:"ph"`
	Pid  int              `json:"pid"`
	Tid  int              `json:"tid"`
	Ts   int64            `json:"ts"`
	Dur  *int64           `json:"dur,omitempty"`
	S    string           `json:"s,omitempty"`
	Args map[string]int64 `json:"args,omitempty"`
}

// argName maps a span kind to the name of its Arg in the trace.
func argName(k SpanKind) string {
	switch k {
	case SpanTurnWait:
		return "retries"
	case SpanSpec:
		return "critical_sections"
	case SpanCommit:
		return "seq"
	case SpanRevert:
		return "discarded_words"
	}
	return "arg"
}

// WriteChromeTrace exports the recorder's span timelines to w in the Chrome
// Trace Event Format (JSON object form). process names the trace (shown as
// the process track's label). The recorder must have been built
// NewWithSpans; a recorder without spans exports an empty trace.
func WriteChromeTrace(w io.Writer, r *Recorder, process string) error {
	events := []json.RawMessage{
		mustRaw(map[string]any{"name": "process_name", "ph": "M", "pid": 1, "args": map[string]string{"name": process}}),
	}
	for tid := 0; tid < r.Threads(); tid++ {
		events = append(events, mustRaw(map[string]any{
			"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
			"args": map[string]string{"name": "thread " + strconv.Itoa(tid)},
		}))
	}
	for tid := 0; tid < r.Threads(); tid++ {
		for _, sp := range r.ThreadSpans(tid) {
			ev := chromeEvent{
				Name: sp.Kind.String(), Pid: 1, Tid: tid, Ts: sp.Begin,
				Args: map[string]int64{argName(sp.Kind): sp.Arg},
			}
			switch sp.Kind {
			case SpanCommit, SpanRevert:
				ev.Ph, ev.S = "i", "t" // thread-scoped instant
			default:
				dur := sp.End - sp.Begin
				if dur < 0 {
					dur = 0
				}
				ev.Ph, ev.Dur = "X", &dur
			}
			events = append(events, mustRaw(ev))
		}
	}
	out := struct {
		TraceEvents     []json.RawMessage `json:"traceEvents"`
		DisplayTimeUnit string            `json:"displayTimeUnit"`
		Metadata        map[string]string `json:"metadata"`
	}{
		TraceEvents:     events,
		DisplayTimeUnit: "ms",
		Metadata:        map[string]string{"clock": "DLC (deterministic logical clock), 1 tick = 1 trace us"},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// mustRaw marshals v, panicking on failure (impossible for the fixed shapes
// above).
func mustRaw(v any) json.RawMessage {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}
