// Package telemetry is the unified metrics registry of the runtime: the one
// place the engines (internal/core), the versioned heap (internal/vheap),
// the memory pipeline (internal/mempipe) and the harness publish their
// measurements into, and the one place run reports, CI perf gates and
// Chrome-trace timelines are built from.
//
// The registry holds three metric kinds:
//
//   - counters: monotone int64 sums ("vheap.words_scanned", "turn.retries");
//   - gauges:   last-write-wins float64 values ("wall_ns");
//   - histograms: int64 samples bucketed into a fixed power-of-two layout,
//     so the bucket boundaries never depend on the data and the serialized
//     output of a deterministic run is itself deterministic.
//
// A *Recorder with spans enabled additionally keeps per-thread span lists —
// turn-grant waits, speculation runs, commits, reverts — stamped in DLC
// (deterministic logical clock) time rather than wall time. DLC stamps make
// the exported timeline a pure function of the execution's deterministic
// schedule: two runs of a deterministic engine export byte-identical traces.
//
// Like internal/invariant and internal/trace, the disabled state is the nil
// *Recorder: every method is nil-safe and publishers guard only with a nil
// pointer compare, so a run without telemetry pays nothing beyond that
// compare at each publication point.
package telemetry

import (
	"math/bits"
	"sort"
	"strconv"
	"sync"
)

// SpanKind names a span category on a thread's DLC timeline.
type SpanKind uint8

const (
	// SpanTurnWait covers a thread's wait for the deterministic turn, from
	// the DLC at which it first requested the turn to the DLC at which a
	// commit-capable turn was granted (backoff re-queues advance the clock
	// in between).
	SpanTurnWait SpanKind = iota + 1
	// SpanSpec covers a speculation run, BEGIN_i to termination.
	SpanSpec
	// SpanCommit marks a heap commit (instant, at the committing turn).
	SpanCommit
	// SpanRevert marks a speculation revert (instant).
	SpanRevert
)

// String returns the exporter's name for the kind.
func (k SpanKind) String() string {
	switch k {
	case SpanTurnWait:
		return "turn-wait"
	case SpanSpec:
		return "speculation"
	case SpanCommit:
		return "commit"
	case SpanRevert:
		return "revert"
	}
	return "unknown"
}

// Span is one event on a thread's timeline. Begin and End are DLC stamps
// (End == Begin for instant events); Arg carries a kind-specific value —
// retry count for turn waits, critical sections for speculation runs, the
// commit sequence for commits, discarded words for reverts.
type Span struct {
	Kind       SpanKind
	Begin, End int64
	Arg        int64
}

// histBuckets is the number of fixed histogram buckets: bucket i counts
// samples whose value has bit length i, i.e. bucket 0 holds v <= 0, bucket i
// holds 2^(i-1) <= v < 2^i. The layout is total and data-independent, which
// is what keeps serialized histograms run-deterministic.
const histBuckets = 64

// Hist is one histogram's live state.
type hist struct {
	counts [histBuckets]int64
	sum    int64
	n      int64
}

// bucketOf returns the fixed bucket index for v.
func bucketOf(v int64) int {
	if v <= 0 {
		return 0
	}
	return bits.Len64(uint64(v))
}

// BucketLow returns the smallest value landing in bucket i of the fixed
// layout (0 for bucket 0).
func BucketLow(i int) int64 {
	if i <= 0 {
		return 0
	}
	return 1 << (i - 1)
}

// Recorder is the metrics registry. The nil *Recorder is the disabled
// recorder: every method is a no-op on it.
//
// Counter, gauge and histogram updates are safe for concurrent use from any
// thread. Span recording is per-thread: Span(tid, ...) may only be called by
// simulated thread tid, which lets each thread append to its own slice
// without locking — the same discipline internal/trace uses.
type Recorder struct {
	mu       sync.Mutex
	counters map[string]int64
	gauges   map[string]float64
	hists    map[string]*hist

	spans [][]Span // per-thread; nil unless built WithSpans
}

// New returns an enabled recorder for counters, gauges and histograms.
func New() *Recorder {
	return &Recorder{
		counters: make(map[string]int64),
		gauges:   make(map[string]float64),
		hists:    make(map[string]*hist),
	}
}

// NewWithSpans returns a recorder that additionally keeps per-thread span
// timelines for threads 0..threads-1 (the Chrome-trace exporter's input).
func NewWithSpans(threads int) *Recorder {
	r := New()
	r.spans = make([][]Span, threads)
	return r
}

// Enabled reports whether the recorder records anything (false for nil).
func (r *Recorder) Enabled() bool { return r != nil }

// SpansEnabled reports whether span timelines are kept.
func (r *Recorder) SpansEnabled() bool { return r != nil && r.spans != nil }

// Count adds delta to the named counter.
func (r *Recorder) Count(name string, delta int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.counters[name] += delta
	r.mu.Unlock()
}

// SetGauge sets the named gauge.
func (r *Recorder) SetGauge(name string, v float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = v
	r.mu.Unlock()
}

// Observe adds one sample to the named histogram.
func (r *Recorder) Observe(name string, v int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	h := r.hists[name]
	if h == nil {
		h = &hist{}
		r.hists[name] = h
	}
	h.counts[bucketOf(v)]++
	h.sum += v
	h.n++
	r.mu.Unlock()
}

// Span appends a span to thread tid's timeline. It must be called by
// simulated thread tid itself. A no-op unless the recorder was built
// WithSpans (and for out-of-range tids, so engines need not re-check).
func (r *Recorder) Span(tid int, kind SpanKind, begin, end, arg int64) {
	if r == nil || r.spans == nil || tid < 0 || tid >= len(r.spans) {
		return
	}
	r.spans[tid] = append(r.spans[tid], Span{Kind: kind, Begin: begin, End: end, Arg: arg})
}

// Counter returns the named counter's current value (0 when absent or nil).
func (r *Recorder) Counter(name string) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counters[name]
}

// Gauge returns the named gauge's current value (0 when absent or nil).
func (r *Recorder) Gauge(name string) float64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// Threads returns the number of span timelines (0 unless WithSpans).
func (r *Recorder) Threads() int {
	if r == nil {
		return 0
	}
	return len(r.spans)
}

// ThreadSpans returns thread tid's recorded spans. Only meaningful after the
// run completes; the returned slice is the recorder's own storage.
func (r *Recorder) ThreadSpans(tid int) []Span {
	if r == nil || r.spans == nil || tid < 0 || tid >= len(r.spans) {
		return nil
	}
	return r.spans[tid]
}

// HistSnapshot is one histogram's serializable state. Buckets maps the
// bucket's lower bound (decimal string, for JSON key stability) to its
// count; only non-empty buckets appear.
type HistSnapshot struct {
	N       int64            `json:"n"`
	Sum     int64            `json:"sum"`
	Buckets map[string]int64 `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of the registry, ready to serialize.
// encoding/json emits map keys sorted, so the encoded form of a snapshot of
// a deterministic run is itself deterministic.
type Snapshot struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Snapshot copies the registry. Nil recorders snapshot to empty maps.
func (r *Recorder) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   map[string]int64{},
		Gauges:     map[string]float64{},
		Histograms: map[string]HistSnapshot{},
	}
	if r == nil {
		return s
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range r.counters {
		s.Counters[k] = v
	}
	for k, v := range r.gauges {
		s.Gauges[k] = v
	}
	for k, h := range r.hists {
		hs := HistSnapshot{N: h.n, Sum: h.sum, Buckets: map[string]int64{}}
		for i, c := range h.counts {
			if c != 0 {
				hs.Buckets[strconv.FormatInt(BucketLow(i), 10)] = c
			}
		}
		s.Histograms[k] = hs
	}
	return s
}

// CounterNames returns the registered counter names, sorted.
func (r *Recorder) CounterNames() []string {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters))
	for k := range r.counters {
		names = append(names, k)
	}
	sort.Strings(names)
	return names
}
