package telemetry

import (
	"bytes"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func sampleReport() *SuiteReport {
	return &SuiteReport{
		Schema: ReportSchema,
		Suite:  "unit",
		Runs: []RunReport{
			{
				Workload: "ht", Engine: "LazyDet", Threads: 4,
				HeapHash: "00000000deadbeef",
				Metrics: map[string]float64{
					"dlc.total":           1000,
					"vheap.words_scanned": 500,
					"spec.success_pct":    90,
					"spec.reverts":        4,
					"ungated.metric":      7,
				},
				Timing: map[string]float64{"wall_ns": 1e6},
				Histograms: map[string]HistSnapshot{
					"vheap.commit_words": {N: 3, Sum: 12, Buckets: map[string]int64{"4": 3}},
				},
			},
			{
				Workload: "ht", Engine: "Consequence", Threads: 4,
				Metrics: map[string]float64{"dlc.total": 2000},
			},
		},
	}
}

// TestReportRoundTrip: encode → decode is lossless and encoding is
// deterministic byte-for-byte.
func TestReportRoundTrip(t *testing.T) {
	rep := sampleReport()
	var a, b bytes.Buffer
	if err := rep.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := rep.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two encodings of the same report differ")
	}

	path := filepath.Join(t.TempDir(), "r.json")
	if err := rep.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Runs) != 2 || got.Runs[0].Key() != "ht/LazyDet/t4" {
		t.Fatalf("round trip lost runs: %+v", got)
	}
	if got.Runs[0].Metrics["dlc.total"] != 1000 {
		t.Fatalf("round trip lost metrics: %v", got.Runs[0].Metrics)
	}
	if got.Runs[0].Histograms["vheap.commit_words"].Buckets["4"] != 3 {
		t.Fatalf("round trip lost histograms: %v", got.Runs[0].Histograms)
	}
}

func TestReadReportRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := ReadReport(bad); err == nil {
		t.Fatal("malformed JSON accepted")
	}
	wrong := filepath.Join(dir, "schema.json")
	os.WriteFile(wrong, []byte(`{"schema": 99, "suite": "x", "runs": []}`), 0o644)
	if _, err := ReadReport(wrong); err == nil {
		t.Fatal("wrong schema accepted")
	}
	if _, err := ReadReport(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing file accepted")
	}
}

// TestCompareSelf: a report gated against itself passes with no changes —
// the acceptance criterion for `-baseline a.json -gate 15` self-comparison.
func TestCompareSelf(t *testing.T) {
	rep := sampleReport()
	c := Compare(rep, rep, 15)
	if !c.Ok() {
		t.Fatalf("self-comparison failed: %+v", c.Regressions)
	}
	if len(c.Changes) != 0 || len(c.TimingNotes) != 0 || len(c.MissingRuns) != 0 || len(c.NewRuns) != 0 {
		t.Fatalf("self-comparison not empty: %+v", c)
	}
	var buf bytes.Buffer
	c.Format(&buf)
	if !strings.Contains(buf.String(), "no deterministic metric changed") {
		t.Fatalf("format output: %q", buf.String())
	}
}

// TestCompareRegressions: inflated cost metrics past the gate fail it;
// movements within the gate, improvements and ungated metrics do not.
func TestCompareRegressions(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	r := &cur.Runs[0]
	r.Metrics["vheap.words_scanned"] = 700 // +40% on a gated, higher-is-worse metric
	r.Metrics["dlc.total"] = 1100          // +10%: inside a 15% gate
	r.Metrics["spec.reverts"] = 2          // improvement
	r.Metrics["ungated.metric"] = 100      // ungated: never fails
	c := Compare(base, cur, 15)
	if c.Ok() {
		t.Fatal("40% regression passed the gate")
	}
	if len(c.Regressions) != 1 || c.Regressions[0].Metric != "vheap.words_scanned" {
		t.Fatalf("regressions = %+v", c.Regressions)
	}
	if math.Abs(c.Regressions[0].Pct-40) > 1e-9 {
		t.Fatalf("pct = %v, want 40", c.Regressions[0].Pct)
	}
	if len(c.Changes) != 3 {
		t.Fatalf("changes = %+v, want dlc.total, spec.reverts, ungated.metric", c.Changes)
	}
	var buf bytes.Buffer
	c.Format(&buf)
	if !strings.Contains(buf.String(), "REGRESSIONS (1)") {
		t.Fatalf("format output: %q", buf.String())
	}

	// A success rate is gated in the other direction.
	cur2 := sampleReport()
	cur2.Runs[0].Metrics["spec.success_pct"] = 50 // -44%: worse
	c2 := Compare(base, cur2, 15)
	if len(c2.Regressions) != 1 || c2.Regressions[0].Metric != "spec.success_pct" {
		t.Fatalf("success-rate drop not gated: %+v", c2)
	}
	// And rising success is an improvement, not a regression.
	cur3 := sampleReport()
	cur3.Runs[0].Metrics["spec.success_pct"] = 99
	if c3 := Compare(base, cur3, 5); !c3.Ok() {
		t.Fatalf("success-rate rise flagged as regression: %+v", c3.Regressions)
	}
}

// TestCompareZeroBaseline: a gated metric appearing from zero is an
// infinite-percent regression (deterministic metrics have no noise floor).
func TestCompareZeroBaseline(t *testing.T) {
	base := sampleReport()
	base.Runs[0].Metrics["spec.reverts"] = 0
	cur := sampleReport()
	cur.Runs[0].Metrics["spec.reverts"] = 1
	c := Compare(base, cur, 25)
	if c.Ok() {
		t.Fatal("0 -> 1 on a gated metric passed")
	}
	if !math.IsInf(c.Regressions[0].Pct, 1) {
		t.Fatalf("pct = %v, want +Inf", c.Regressions[0].Pct)
	}
}

// TestCompareMissingAndNewRuns: losing a baseline run fails the gate; a new
// run is informational.
func TestCompareMissingAndNewRuns(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.Runs = cur.Runs[:1]
	cur.Runs = append(cur.Runs, RunReport{Workload: "ll", Engine: "LazyDet", Threads: 2,
		Metrics: map[string]float64{"dlc.total": 5}})
	c := Compare(base, cur, 15)
	if c.Ok() {
		t.Fatal("missing baseline run passed the gate")
	}
	if len(c.MissingRuns) != 1 || c.MissingRuns[0] != "ht/Consequence/t4" {
		t.Fatalf("missing = %v", c.MissingRuns)
	}
	if len(c.NewRuns) != 1 || c.NewRuns[0] != "ll/LazyDet/t2" {
		t.Fatalf("new = %v", c.NewRuns)
	}
}

// TestCompareTimingNeverGates: even a huge wall-time increase is a note,
// not a regression.
func TestCompareTimingNeverGates(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.Runs[0].Timing["wall_ns"] = 1e7 // 10x slower
	c := Compare(base, cur, 15)
	if !c.Ok() {
		t.Fatalf("timing movement failed the gate: %+v", c.Regressions)
	}
	if len(c.TimingNotes) != 1 || c.TimingNotes[0].Metric != "wall_ns" {
		t.Fatalf("timing notes = %+v", c.TimingNotes)
	}
	// Small timing jitter is suppressed entirely.
	cur.Runs[0].Timing["wall_ns"] = 1.05e6
	if c := Compare(base, cur, 15); len(c.TimingNotes) != 0 {
		t.Fatalf("5%% timing jitter reported: %+v", c.TimingNotes)
	}
}

// TestGateDisabled: gatePct <= 0 reports changes but never fails.
func TestGateDisabled(t *testing.T) {
	base := sampleReport()
	cur := sampleReport()
	cur.Runs[0].Metrics["vheap.words_scanned"] = 5000
	c := Compare(base, cur, 0)
	if !c.Ok() || len(c.Changes) != 1 {
		t.Fatalf("disabled gate: %+v", c)
	}
}

func TestGatedMetric(t *testing.T) {
	if g, hw := GatedMetric("dlc.total"); !g || !hw {
		t.Fatal("dlc.total should be gated higher-is-worse")
	}
	if g, hw := GatedMetric("spec.success_pct"); !g || hw {
		t.Fatal("spec.success_pct should be gated lower-is-worse")
	}
	if g, _ := GatedMetric("nope"); g {
		t.Fatal("unknown metric gated")
	}
	// The open-loop simulation's latency metrics are cost-like: higher is
	// worse, and they participate in the gate.
	for _, m := range []string{"sim.latency_p50", "sim.latency_p95", "sim.latency_p99",
		"sim.wait_p95", "sim.qdepth_max", "sim.makespan_dlc"} {
		if g, hw := GatedMetric(m); !g || !hw {
			t.Fatalf("%s should be gated higher-is-worse", m)
		}
	}
}

// FilterPrefix keeps only the matching workload slice — the sim-smoke job
// gates a grid run against the sim/* rows of the full baseline without
// reporting the microbenchmark rows as missing.
func TestFilterPrefix(t *testing.T) {
	s := sampleReport()
	s.Runs = append(s.Runs, RunReport{Workload: "sim/c4/g48/w3/r0", Engine: "LazyDet", Threads: 4,
		Metrics: map[string]float64{"sim.latency_p99": 500}})
	sim := s.FilterPrefix("sim/")
	if len(sim.Runs) != 1 || sim.Runs[0].Workload != "sim/c4/g48/w3/r0" {
		t.Fatalf("FilterPrefix kept %v", sim.Runs)
	}
	if sim.Schema != s.Schema || sim.Suite != s.Suite {
		t.Fatal("FilterPrefix dropped header fields")
	}
	if got := s.FilterPrefix("zzz/"); len(got.Runs) != 0 {
		t.Fatalf("non-matching prefix kept %d runs", len(got.Runs))
	}
	c := Compare(sim, sim, 25)
	if !c.Ok() || len(c.MissingRuns) != 0 {
		t.Fatal("self-compare of the filtered slice should pass")
	}
}

// DropPrefix is FilterPrefix's complement: the sim gate strips the report
// suite's sim/hints-* policy-pin rows (which no grid run produces) from the
// baseline so they are not reported as missing.
func TestDropPrefix(t *testing.T) {
	s := sampleReport()
	s.Runs = append(s.Runs,
		RunReport{Workload: "sim/c4/g48/w3/r0", Engine: "LazyDet", Threads: 4,
			Metrics: map[string]float64{"sim.latency_p99": 500}},
		RunReport{Workload: "sim/hints-on", Engine: "LazyDet", Threads: 3,
			Metrics: map[string]float64{"spec.commits": 7}})
	sim := s.FilterPrefix("sim/").DropPrefix("sim/hints-")
	if len(sim.Runs) != 1 || sim.Runs[0].Workload != "sim/c4/g48/w3/r0" {
		t.Fatalf("FilterPrefix+DropPrefix kept %v", sim.Runs)
	}
	if sim.Schema != s.Schema || sim.Suite != s.Suite {
		t.Fatal("DropPrefix dropped header fields")
	}
	if got := s.DropPrefix(""); len(got.Runs) != 0 {
		t.Fatalf("empty prefix matches everything, kept %d runs", len(got.Runs))
	}
}
