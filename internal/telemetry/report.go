// Run reports: the structured JSON account of one or more runs that
// lazydet-bench and lazydet-run emit (-report), and the comparison logic
// behind the CI perf gate (-baseline/-gate).
//
// A report separates metrics by reproducibility class:
//
//   - Metrics are deterministic: counts and ratios in DLC/commit space that
//     two runs of a deterministic engine on the same spec must reproduce
//     exactly. Only these are gated — a regression in them is a behavioral
//     change, never machine noise — which is what lets a checked-in
//     baseline gate CI runs on different hardware.
//   - Timing is machine-dependent: wall/CPU time, utilization, blocked
//     time, revert-cost nanosecond percentiles. Compared for information
//     only, never gated.

package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
)

// ReportSchema versions the report file format.
const ReportSchema = 1

// RunReport is the account of one (workload, engine, threads) run.
type RunReport struct {
	Workload string `json:"workload"`
	Engine   string `json:"engine"`
	Threads  int    `json:"threads"`
	// HeapHash fingerprints the final shared memory (hex). Deterministic
	// for deterministic engines; informational.
	HeapHash string `json:"heap_hash,omitempty"`
	// TraceSig fingerprints the synchronization order (hex).
	TraceSig string `json:"trace_sig,omitempty"`
	// Metrics are the deterministic, gateable measurements.
	Metrics map[string]float64 `json:"metrics"`
	// Timing is machine-dependent and never gated.
	Timing map[string]float64 `json:"timing,omitempty"`
	// Histograms are deterministic fixed-layout distributions.
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// Key identifies the run for baseline matching.
func (r *RunReport) Key() string {
	return fmt.Sprintf("%s/%s/t%d", r.Workload, r.Engine, r.Threads)
}

// SuiteReport is a set of runs written as one report file.
type SuiteReport struct {
	Schema int         `json:"schema"`
	Suite  string      `json:"suite"`
	Runs   []RunReport `json:"runs"`
}

// Encode writes the report as deterministic, indented JSON: struct fields in
// declaration order, map keys sorted (encoding/json's map behavior), runs in
// the order recorded.
func (s *SuiteReport) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteFile writes the report to path.
func (s *SuiteReport) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// FilterPrefix returns a copy of the suite containing only runs whose
// workload name starts with prefix. The sim-smoke CI job uses it to gate a
// grid run against the sim/* slice of the full baseline without tripping
// MissingRuns on the microbenchmark rows the grid never executes.
func (s *SuiteReport) FilterPrefix(prefix string) *SuiteReport {
	out := &SuiteReport{Schema: s.Schema, Suite: s.Suite}
	for _, r := range s.Runs {
		if len(r.Workload) >= len(prefix) && r.Workload[:len(prefix)] == prefix {
			out.Runs = append(out.Runs, r)
		}
	}
	return out
}

// DropPrefix returns a copy of the suite without the runs whose workload
// name starts with prefix — the complement of FilterPrefix. The sim-smoke
// gate uses it to strip the report suite's sim/hints-* policy-pin rows,
// which no grid run produces, from the baseline before MissingRuns checks.
func (s *SuiteReport) DropPrefix(prefix string) *SuiteReport {
	out := &SuiteReport{Schema: s.Schema, Suite: s.Suite}
	for _, r := range s.Runs {
		if len(r.Workload) < len(prefix) || r.Workload[:len(prefix)] != prefix {
			out.Runs = append(out.Runs, r)
		}
	}
	return out
}

// ReadReport loads a report file.
func ReadReport(path string) (*SuiteReport, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s SuiteReport
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("telemetry: parsing report %s: %w", path, err)
	}
	if s.Schema != ReportSchema {
		return nil, fmt.Errorf("telemetry: report %s has schema %d, want %d", path, s.Schema, ReportSchema)
	}
	return &s, nil
}

// gatedMetrics lists the deterministic metrics the perf gate enforces, with
// their regression direction: true means higher values are worse (cost-like
// counters), false means lower values are worse (success rates). Metrics
// not listed here are compared but never fail the gate.
var gatedMetrics = map[string]bool{
	"dlc.total":             true,
	"turn.waits":            true,
	"turn.retries":          true,
	"sync.events":           true,
	"vheap.commits":         true,
	"vheap.pages_committed": true,
	"vheap.words_committed": true,
	"vheap.words_scanned":   true,
	"mempipe.publishes":     true,
	// Elided (deferred) publications and consecutive same-thread grants are
	// pure functions of the deterministic schedule: elision decisions read
	// only turn-mutated per-lock history, and chain hits only the grant
	// sequence. Both are savings-like, so lower values are worse.
	"commit.elided":       false,
	"dlc.chain_hits":      false,
	"spec.reverts":        true,
	"spec.reverted_words": true,
	"spec.success_pct":    false,
	// Open-loop simulation latency metrics (internal/opensim): DLC-stamped
	// percentiles and queue statistics are functions of the deterministic
	// schedule alone, so a movement is a behavioral change in arbitration
	// or commit cost, never machine noise.
	"sim.latency_p50":  true,
	"sim.latency_p95":  true,
	"sim.latency_p99":  true,
	"sim.wait_p95":     true,
	"sim.qdepth_max":   true,
	"sim.makespan_dlc": true,
}

// GatedMetric reports whether the named metric participates in the gate,
// and whether higher values count as a regression.
func GatedMetric(name string) (gated, higherWorse bool) {
	hw, ok := gatedMetrics[name]
	return ok, hw
}

// Delta is one metric's change between baseline and current.
type Delta struct {
	Run    string // run key
	Metric string
	Old    float64
	New    float64
	Pct    float64 // percent change relative to Old (Inf when Old == 0)
}

func (d Delta) String() string {
	return fmt.Sprintf("%-28s %-24s %14.6g -> %-14.6g (%+.1f%%)", d.Run, d.Metric, d.Old, d.New, d.Pct)
}

// Comparison is the diff of two suite reports.
type Comparison struct {
	// Regressions are gated metrics past the gate threshold: the gate fails.
	Regressions []Delta
	// Changes are deterministic metrics that moved without tripping the
	// gate (including improvements and non-gated metrics).
	Changes []Delta
	// TimingNotes are machine-dependent metric movements, informational.
	TimingNotes []Delta
	// MissingRuns are baseline run keys absent from the current report —
	// lost coverage, reported as a regression of its own.
	MissingRuns []string
	// NewRuns are current run keys absent from the baseline.
	NewRuns []string
}

// Ok reports whether the gate passes.
func (c *Comparison) Ok() bool {
	return len(c.Regressions) == 0 && len(c.MissingRuns) == 0
}

// Format writes a human-readable account of the comparison.
func (c *Comparison) Format(w io.Writer) {
	if len(c.Regressions) > 0 {
		fmt.Fprintf(w, "REGRESSIONS (%d):\n", len(c.Regressions))
		for _, d := range c.Regressions {
			fmt.Fprintf(w, "  %s\n", d)
		}
	}
	if len(c.MissingRuns) > 0 {
		fmt.Fprintf(w, "missing runs (in baseline, not in report): %v\n", c.MissingRuns)
	}
	if len(c.NewRuns) > 0 {
		fmt.Fprintf(w, "new runs (not in baseline): %v\n", c.NewRuns)
	}
	if len(c.Changes) > 0 {
		fmt.Fprintf(w, "metric changes within gate (%d):\n", len(c.Changes))
		for _, d := range c.Changes {
			fmt.Fprintf(w, "  %s\n", d)
		}
	}
	if len(c.TimingNotes) > 0 {
		fmt.Fprintf(w, "timing (informational, not gated):\n")
		for _, d := range c.TimingNotes {
			fmt.Fprintf(w, "  %s\n", d)
		}
	}
	if c.Ok() && len(c.Changes) == 0 {
		fmt.Fprintln(w, "no deterministic metric changed")
	}
}

// pctChange returns the relative change in percent. A zero baseline with a
// nonzero current value is +Inf — deterministic metrics have no noise floor,
// so appearing from zero is a real change.
func pctChange(old, nv float64) float64 {
	if old == nv {
		return 0
	}
	if old == 0 {
		return math.Inf(sign(nv))
	}
	return 100 * (nv - old) / math.Abs(old)
}

func sign(v float64) int {
	if v < 0 {
		return -1
	}
	return 1
}

// timingNoteFloorPct suppresses timing chatter below this relative change.
const timingNoteFloorPct = 10

// Compare diffs current against baseline. gatePct is the regression
// threshold in percent for gated metrics; a gatePct <= 0 disables failing
// (everything lands in Changes). Runs are matched by (workload, engine,
// threads); baseline runs missing from current are reported in MissingRuns.
func Compare(baseline, current *SuiteReport, gatePct float64) *Comparison {
	c := &Comparison{}
	cur := make(map[string]*RunReport, len(current.Runs))
	for i := range current.Runs {
		cur[current.Runs[i].Key()] = &current.Runs[i]
	}
	seen := make(map[string]bool, len(baseline.Runs))
	for i := range baseline.Runs {
		b := &baseline.Runs[i]
		seen[b.Key()] = true
		n, ok := cur[b.Key()]
		if !ok {
			c.MissingRuns = append(c.MissingRuns, b.Key())
			continue
		}
		compareRun(c, b, n, gatePct)
	}
	for _, r := range current.Runs {
		if !seen[r.Key()] {
			c.NewRuns = append(c.NewRuns, r.Key())
		}
	}
	sort.Strings(c.MissingRuns)
	sort.Strings(c.NewRuns)
	return c
}

// compareRun diffs one matched run pair into c.
func compareRun(c *Comparison, b, n *RunReport, gatePct float64) {
	for _, name := range sortedKeys(b.Metrics) {
		old := b.Metrics[name]
		nv, ok := n.Metrics[name]
		if !ok {
			continue // metric dropped; schema drift, not a perf signal
		}
		if old == nv {
			continue
		}
		d := Delta{Run: b.Key(), Metric: name, Old: old, New: nv, Pct: pctChange(old, nv)}
		gated, higherWorse := GatedMetric(name)
		worse := d.Pct > 0 == higherWorse // movement in the bad direction
		if gated && gatePct > 0 && worse && math.Abs(d.Pct) > gatePct {
			c.Regressions = append(c.Regressions, d)
		} else {
			c.Changes = append(c.Changes, d)
		}
	}
	for _, name := range sortedKeys(b.Timing) {
		old := b.Timing[name]
		nv, ok := n.Timing[name]
		if !ok || old == nv {
			continue
		}
		d := Delta{Run: b.Key(), Metric: name, Old: old, New: nv, Pct: pctChange(old, nv)}
		if math.Abs(d.Pct) >= timingNoteFloorPct {
			c.TimingNotes = append(c.TimingNotes, d)
		}
	}
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
