package dvm

import "sync/atomic"

// burnSink defeats dead-code elimination of Burn's loop.
var burnSink atomic.Int64

// Burn consumes roughly n units of CPU time. It models the kernel-side work
// of a simulated system call (e.g. ferret's mmap/munmap under locks, §5.4).
func Burn(n int) {
	var acc int64 = 1
	for i := 0; i < n; i++ {
		acc = acc*6364136223846793005 + 1442695040888963407
	}
	burnSink.Store(acc)
}
