package dvm

import "fmt"

// Validate statically checks a program: jump targets must stay inside the
// code (or point exactly one past the end, a fall-through exit), every
// instruction must carry the closures its opcode requires, register indices
// must be allocated, and costs must be positive. The harness validates
// every program before running it, so builder mistakes fail fast instead of
// crashing an engine goroutine mid-run.
func (p *Program) Validate() error {
	n := len(p.Code)
	for pc := range p.Code {
		in := &p.Code[pc]
		fail := func(format string, args ...any) error {
			return fmt.Errorf("dvm: program %q, instruction %d (op %d): %s",
				p.Name, pc, in.Op, fmt.Sprintf(format, args...))
		}
		if in.Cost <= 0 {
			return fail("non-positive cost %d", in.Cost)
		}
		switch in.Op {
		case OpDo:
			if in.Do == nil {
				return fail("missing Do closure")
			}
		case OpLoad:
			if in.Addr == nil {
				return fail("missing address closure")
			}
			if in.Dst < 0 || in.Dst >= p.NumRegs {
				return fail("destination register %d out of range [0,%d)", in.Dst, p.NumRegs)
			}
		case OpStore:
			if in.Addr == nil || in.Val == nil {
				return fail("missing address or value closure")
			}
		case OpJump:
			if in.Target < 0 || in.Target > n {
				return fail("jump target %d out of range [0,%d]", in.Target, n)
			}
		case OpBranchUnless:
			if in.Cond == nil {
				return fail("missing condition closure")
			}
			if in.Target < 0 || in.Target > n {
				return fail("branch target %d out of range [0,%d]", in.Target, n)
			}
		case OpLock, OpUnlock, OpRLock, OpRUnlock, OpCondSignal, OpCondBroadcast, OpBarrier, OpSpawn, OpJoin:
			if in.Addr == nil {
				return fail("missing object closure")
			}
		case OpCondWait:
			if in.Addr == nil || in.Addr2 == nil {
				return fail("missing condition or mutex closure")
			}
		case OpSyscall:
			if in.Sys == nil {
				return fail("missing syscall payload")
			}
			if in.Sys.Work < 0 {
				return fail("negative syscall work %d", in.Sys.Work)
			}
		case OpAtomic:
			a := in.Atom
			if a == nil {
				return fail("missing atomic payload")
			}
			if a.Addr == nil {
				return fail("missing atomic address closure")
			}
			if int(a.Dst) < 0 || int(a.Dst) >= p.NumRegs {
				return fail("atomic destination register %d out of range [0,%d)", a.Dst, p.NumRegs)
			}
			switch a.Kind {
			case AtomicAdd:
				if a.Delta == nil {
					return fail("AtomicAdd missing delta")
				}
			case AtomicCAS:
				if a.Old == nil || a.New == nil {
					return fail("AtomicCAS missing operands")
				}
			case AtomicExchange:
				if a.New == nil {
					return fail("AtomicExchange missing operand")
				}
			default:
				return fail("unknown atomic kind %d", a.Kind)
			}
		case OpHalt:
		default:
			return fail("unknown opcode")
		}
	}
	return nil
}
