package dvm

import "fmt"

// Validate statically checks a program: every instruction must carry the
// closures its opcode requires, register indices must be allocated, costs
// must be positive, and the control-flow graph must be well-formed — every
// instruction reachable from entry, and every path terminated by an explicit
// OpHalt rather than running off the end of the code (Builder.Build appends
// the final OpHalt automatically, so builder-produced programs satisfy this
// by construction). The harness validates every program before running it,
// so builder mistakes fail fast instead of crashing an engine goroutine
// mid-run.
func (p *Program) Validate() error {
	n := len(p.Code)
	for pc := range p.Code {
		in := &p.Code[pc]
		fail := func(format string, args ...any) error {
			return fmt.Errorf("dvm: program %q, instruction %d (op %d): %s",
				p.Name, pc, in.Op, fmt.Sprintf(format, args...))
		}
		if in.Cost <= 0 {
			return fail("non-positive cost %d", in.Cost)
		}
		switch in.Op {
		case OpDo:
			if in.Do == nil {
				return fail("missing Do closure")
			}
		case OpLoad:
			if in.Addr == nil {
				return fail("missing address closure")
			}
			if in.Dst < 0 || in.Dst >= p.NumRegs {
				return fail("destination register %d out of range [0,%d)", in.Dst, p.NumRegs)
			}
		case OpStore:
			if in.Addr == nil || in.Val == nil {
				return fail("missing address or value closure")
			}
		case OpJump:
			if in.Target < 0 || in.Target > n {
				return fail("jump target %d out of range [0,%d]", in.Target, n)
			}
		case OpBranchUnless:
			if in.Cond == nil {
				return fail("missing condition closure")
			}
			if in.Target < 0 || in.Target > n {
				return fail("branch target %d out of range [0,%d]", in.Target, n)
			}
		case OpLock, OpUnlock, OpRLock, OpRUnlock, OpCondSignal, OpCondBroadcast, OpBarrier, OpSpawn, OpJoin:
			if in.Addr == nil {
				return fail("missing object closure")
			}
		case OpCondWait:
			if in.Addr == nil || in.Addr2 == nil {
				return fail("missing condition or mutex closure")
			}
		case OpSyscall:
			if in.Sys == nil {
				return fail("missing syscall payload")
			}
			if in.Sys.Work < 0 {
				return fail("negative syscall work %d", in.Sys.Work)
			}
		case OpAtomic:
			a := in.Atom
			if a == nil {
				return fail("missing atomic payload")
			}
			if a.Addr == nil {
				return fail("missing atomic address closure")
			}
			if int(a.Dst) < 0 || int(a.Dst) >= p.NumRegs {
				return fail("atomic destination register %d out of range [0,%d)", a.Dst, p.NumRegs)
			}
			switch a.Kind {
			case AtomicAdd:
				if a.Delta == nil {
					return fail("AtomicAdd missing delta")
				}
			case AtomicCAS:
				if a.Old == nil || a.New == nil {
					return fail("AtomicCAS missing operands")
				}
			case AtomicExchange:
				if a.New == nil {
					return fail("AtomicExchange missing operand")
				}
			default:
				return fail("unknown atomic kind %d", a.Kind)
			}
		case OpHalt:
		default:
			return fail("unknown opcode")
		}
	}
	if err := p.validateFlow(); err != nil {
		return err
	}
	// Every control transfer must land on a fusion-block entry point (see
	// blockLeaders and Compile): the threaded-code backend re-enters the
	// compiled stream through the entry map, both on ordinary jumps and
	// when a speculation revert restores a snapshot PC. Targets are leaders
	// by construction today; checking it here pins the contract so the
	// block-formation rules cannot drift away from what Validate admits.
	leaders := p.blockLeaders()
	for pc := range p.Code {
		in := &p.Code[pc]
		if (in.Op == OpJump || in.Op == OpBranchUnless) && !leaders[in.Target] {
			return fmt.Errorf("dvm: program %q, instruction %d (op %d): target %d is not a fusion-block entry point",
				p.Name, pc, in.Op, in.Target)
		}
	}
	return nil
}

// blockLeaders computes the fusion-block entry points of the threaded-code
// backend (see Compile): instruction 0, every jump and branch target, every
// engine operation, and every instruction following an engine operation,
// jump, branch, or halt. A pc outside the leader set can only be reached by
// falling through from its predecessor, which is what lets Compile fuse
// straight-line runs into superinstructions without breaking control
// transfers — including the PCs that speculation reverts restore, which are
// always engine-operation pcs and therefore always leaders.
func (p *Program) blockLeaders() []bool {
	n := len(p.Code)
	leader := make([]bool, n+1)
	if n == 0 {
		return leader
	}
	leader[0] = true
	for pc := range p.Code {
		in := &p.Code[pc]
		switch in.Op {
		case OpJump, OpBranchUnless:
			if in.Target >= 0 && in.Target <= n {
				leader[in.Target] = true
			}
			leader[pc+1] = true
		case OpHalt:
			leader[pc+1] = true
		case OpDo, OpLoad, OpStore:
		default: // engine operation: its own block
			leader[pc] = true
			leader[pc+1] = true
		}
	}
	return leader
}

// validateFlow checks the control-flow graph: every instruction must be
// reachable from entry, and no reachable path may leave the code without
// executing OpHalt — neither by falling through past the last instruction
// nor through a jump or branch targeting one past the end.
func (p *Program) validateFlow() error {
	n := len(p.Code)
	if n == 0 {
		return nil
	}
	reached := make([]bool, n)
	stack := []int{0}
	reached[0] = true
	for len(stack) > 0 {
		pc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range p.successors(pc) {
			if s == n {
				in := &p.Code[pc]
				if in.Op == OpJump || in.Op == OpBranchUnless {
					return fmt.Errorf("dvm: program %q, instruction %d (op %d): target %d is one past the end — path exits without OpHalt",
						p.Name, pc, in.Op, in.Target)
				}
				return fmt.Errorf("dvm: program %q, instruction %d (op %d): control falls off the end of the program without OpHalt",
					p.Name, pc, in.Op)
			}
			if !reached[s] {
				reached[s] = true
				stack = append(stack, s)
			}
		}
	}
	for pc, r := range reached {
		if !r {
			return fmt.Errorf("dvm: program %q, instruction %d (op %d): unreachable",
				p.Name, pc, p.Code[pc].Op)
		}
	}
	return nil
}

// successors returns the control-flow successors of instruction pc; the
// pseudo-node len(Code) represents leaving the program without OpHalt.
// OpCondWait, OpJoin and the rest block or have effects but always continue
// to pc+1.
func (p *Program) successors(pc int) []int {
	in := &p.Code[pc]
	switch in.Op {
	case OpHalt:
		return nil
	case OpJump:
		return []int{in.Target}
	case OpBranchUnless:
		if in.Target == pc+1 {
			return []int{pc + 1}
		}
		return []int{pc + 1, in.Target}
	default:
		return []int{pc + 1}
	}
}
