package dvm

import (
	"strings"
	"testing"
)

func TestValidateAcceptsBuilderOutput(t *testing.T) {
	b := NewBuilder("ok")
	i, v := b.Reg(), b.Reg()
	base := b.Scratch(2)
	b.ForN(i, 10, func() {
		b.Lock(Const(0))
		b.Load(v, Const(1))
		b.Store(Const(1), FromReg(v))
		b.Unlock(Const(0))
		b.If(func(th *Thread) bool { return th.R(i) > 3 }, func() {
			b.Do(func(th *Thread) { th.Scratch[base]++ })
		})
	})
	b.RLock(Const(0))
	b.RUnlock(Const(0))
	b.AtomicAdd(v, Const(2), Const(1))
	b.AtomicCAS(v, Const(2), Const(0), Const(5))
	b.AtomicExchange(v, Const(2), Const(9))
	b.CondWait(Const(0), Const(0))
	b.CondSignal(Const(0))
	b.CondBroadcast(Const(0))
	b.Barrier(Const(0))
	b.Syscall(&Syscall{Name: "x", Work: 1})
	b.Halt()
	if err := b.Build().Validate(); err != nil {
		t.Fatalf("builder-produced program rejected: %v", err)
	}
}

func TestValidateRejectsBrokenPrograms(t *testing.T) {
	cases := []struct {
		name string
		prog *Program
		want string
	}{
		{
			"jump-out-of-range",
			&Program{Name: "j", Code: []Instr{{Op: OpJump, Cost: 1, Target: 99}}},
			"out of range",
		},
		{
			"missing-do",
			&Program{Name: "d", Code: []Instr{{Op: OpDo, Cost: 1}}},
			"missing Do",
		},
		{
			"load-register-out-of-range",
			&Program{Name: "l", NumRegs: 1, Code: []Instr{{Op: OpLoad, Cost: 1, Dst: 5, Addr: Const(0).Eval}}},
			"out of range",
		},
		{
			"zero-cost",
			&Program{Name: "c", Code: []Instr{{Op: OpHalt}}},
			"non-positive cost",
		},
		{
			"branch-missing-cond",
			&Program{Name: "b", Code: []Instr{{Op: OpBranchUnless, Cost: 1, Target: 0}}},
			"missing condition",
		},
		{
			"condwait-missing-mutex",
			&Program{Name: "w", Code: []Instr{{Op: OpCondWait, Cost: 1, Addr: Const(0).Eval}}},
			"missing condition or mutex",
		},
		{
			"syscall-missing-payload",
			&Program{Name: "s", Code: []Instr{{Op: OpSyscall, Cost: 1}}},
			"missing syscall",
		},
		{
			"atomic-missing-delta",
			&Program{Name: "a", NumRegs: 1, Code: []Instr{{Op: OpAtomic, Cost: 1, Atom: &Atomic{Kind: AtomicAdd, Addr: Const(0).Eval}}}},
			"missing delta",
		},
		{
			"unreachable-instruction",
			&Program{Name: "u", Code: []Instr{
				{Op: OpJump, Cost: 1, Target: 2},
				{Op: OpDo, Cost: 1, Do: func(*Thread) {}},
				{Op: OpHalt, Cost: 1},
			}},
			"unreachable",
		},
		{
			"falls-off-end",
			&Program{Name: "f", Code: []Instr{{Op: OpDo, Cost: 1, Do: func(*Thread) {}}}},
			"falls off the end",
		},
		{
			"jump-one-past-end",
			&Program{Name: "je", Code: []Instr{{Op: OpJump, Cost: 1, Target: 1}}},
			"one past the end",
		},
		{
			"branch-one-past-end",
			&Program{Name: "be", Code: []Instr{
				{Op: OpBranchUnless, Cost: 1, Target: 2, Cond: func(*Thread) bool { return true }},
				{Op: OpHalt, Cost: 1},
			}},
			"one past the end",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.prog.Validate()
			if err == nil {
				t.Fatal("broken program accepted")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestBuildAppendsImplicitHalt(t *testing.T) {
	// A program that does not end in Halt gets one appended by Build.
	b := NewBuilder("implicit")
	b.Do(func(*Thread) {})
	p := b.Build()
	if p.Code[len(p.Code)-1].Op != OpHalt {
		t.Fatal("Build did not append an implicit OpHalt")
	}
	if err := p.Validate(); err != nil {
		t.Fatalf("implicit-halt program rejected: %v", err)
	}

	// A final If whose body halts leaves the patched branch target one past
	// the end; Build must still append a Halt for it to land on.
	b2 := NewBuilder("branch-end")
	b2.If(func(*Thread) bool { return true }, func() { b2.Halt() })
	p2 := b2.Build()
	if err := p2.Validate(); err != nil {
		t.Fatalf("branch-to-end program rejected: %v", err)
	}
}
