package dvm

import (
	"strings"
	"testing"
)

func TestValidateAcceptsBuilderOutput(t *testing.T) {
	b := NewBuilder("ok")
	i, v := b.Reg(), b.Reg()
	base := b.Scratch(2)
	b.ForN(i, 10, func() {
		b.Lock(Const(0))
		b.Load(v, Const(1))
		b.Store(Const(1), FromReg(v))
		b.Unlock(Const(0))
		b.If(func(th *Thread) bool { return th.R(i) > 3 }, func() {
			b.Do(func(th *Thread) { th.Scratch[base]++ })
		})
	})
	b.RLock(Const(0))
	b.RUnlock(Const(0))
	b.AtomicAdd(v, Const(2), Const(1))
	b.AtomicCAS(v, Const(2), Const(0), Const(5))
	b.AtomicExchange(v, Const(2), Const(9))
	b.CondWait(Const(0), Const(0))
	b.CondSignal(Const(0))
	b.CondBroadcast(Const(0))
	b.Barrier(Const(0))
	b.Syscall(&Syscall{Name: "x", Work: 1})
	b.Halt()
	if err := b.Build().Validate(); err != nil {
		t.Fatalf("builder-produced program rejected: %v", err)
	}
}

func TestValidateRejectsBrokenPrograms(t *testing.T) {
	cases := []struct {
		name string
		prog *Program
		want string
	}{
		{
			"jump-out-of-range",
			&Program{Name: "j", Code: []Instr{{Op: OpJump, Cost: 1, Target: 99}}},
			"out of range",
		},
		{
			"missing-do",
			&Program{Name: "d", Code: []Instr{{Op: OpDo, Cost: 1}}},
			"missing Do",
		},
		{
			"load-register-out-of-range",
			&Program{Name: "l", NumRegs: 1, Code: []Instr{{Op: OpLoad, Cost: 1, Dst: 5, Addr: Const(0)}}},
			"out of range",
		},
		{
			"zero-cost",
			&Program{Name: "c", Code: []Instr{{Op: OpHalt}}},
			"non-positive cost",
		},
		{
			"branch-missing-cond",
			&Program{Name: "b", Code: []Instr{{Op: OpBranchUnless, Cost: 1, Target: 0}}},
			"missing condition",
		},
		{
			"condwait-missing-mutex",
			&Program{Name: "w", Code: []Instr{{Op: OpCondWait, Cost: 1, Addr: Const(0)}}},
			"missing condition or mutex",
		},
		{
			"syscall-missing-payload",
			&Program{Name: "s", Code: []Instr{{Op: OpSyscall, Cost: 1}}},
			"missing syscall",
		},
		{
			"atomic-missing-delta",
			&Program{Name: "a", NumRegs: 1, Code: []Instr{{Op: OpAtomic, Cost: 1, Atom: &Atomic{Kind: AtomicAdd, Addr: Const(0)}}}},
			"missing delta",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := c.prog.Validate()
			if err == nil {
				t.Fatal("broken program accepted")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not mention %q", err, c.want)
			}
		})
	}
}
