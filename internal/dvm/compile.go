// Threaded-code compilation: the lowering pass that turns a validated
// Program into the compiled Exec backend.
//
// The interpreter (Thread.runInterp) pays, per instruction, a bounds check,
// a PC increment, a switch dispatch, and the pend/steps tick-batching
// bookkeeping. This pass pays those costs once per *block* instead: the
// program is cut into fusion blocks (straight-line runs between engine
// operations, jump targets and branches), each instruction is lowered to a
// closure specialized on the builder's static operand metadata (SVal:
// constant addresses are resolved at lower time), and a peephole fuser
// collapses hot adjacent sequences — load-op-store, load-op, op-store,
// op-op, and a trailing load feeding a branch — into single
// superinstructions, so one indirect call executes several instructions
// against the MemWindow fast path.
//
// # DLC exactness
//
// The deterministic schedule is arbitrated on published clock values, so
// the compiled backend must make the engine observe *exactly* the Tick
// calls the interpreter makes — same count, same values, same positions in
// the instruction stream — or dlc.total, dlc.tick_flushes and the schedule
// itself would diverge from the interpreter oracle. The interpreter flushes
// its thread-local cost batch (a) unconditionally before every engine
// operation and (b) whenever the batch reaches dlc.TickWindow retired local
// instructions. The compiled backend replicates both exactly:
//
//   - every block stores the prefix sums of its instruction costs, and
//     blocks are capped at dlc.TickWindow local instructions, so a block
//     can cross at most one window boundary;
//   - charging a block with `steps` instructions already pending finds the
//     crossing point j = TickWindow - steps inside the block's prefix sums,
//     ticks pend + prefix[j] — the exact batch the interpreter would have
//     flushed at that instruction — and carries prefix[r] - prefix[j];
//   - engine operations flush the pending batch first, then charge their
//     own cost, exactly as the interpreter does.
//
// Fused blocks therefore still charge one batched tick per window, never
// one per op, while every published intermediate clock value stays
// bit-identical to per-instruction interpretation.
//
// # Revert re-entry
//
// Speculation reverts restore the PC of a lock acquisition (Snapshot
// rewinds to the instruction being executed), and every engine operation is
// its own block, so a restored PC is always a block leader: run re-enters
// the compiled stream through entry[PC] at the block head. Validate pins
// the matching constraint on jump targets (every target is a fusion-block
// entry point), so no control transfer — forward, backward, or rewound —
// can land mid-block. Snapshot/MatchesSnapshot are unchanged: the backend
// sets t.PC to pc+1 before invoking an engine hook, exactly the state the
// interpreter would be in, so snapshots taken inside hooks are identical.
// Between engine operations t.PC is stale (it holds the previous engine
// op's successor, or the resume PC); this is unobservable because
// instruction closures do not read t.PC, snapshots are only taken inside
// engine hooks, and every halt path writes the exact final PC.
package dvm

import (
	"fmt"

	"lazydet/internal/dlc"
)

// CompileStats describes one program's lowering outcome.
type CompileStats struct {
	// Blocks is the number of fusion blocks (including engine-op blocks).
	Blocks int
	// Instructions is the program's instruction count.
	Instructions int
	// Superinstrs counts fused closures covering more than one
	// instruction (including load-branch fusions into block terminators).
	Superinstrs int
	// FusedBlocks counts blocks containing at least one superinstruction.
	FusedBlocks int
}

// microKind discriminates the pre-decoded superinstruction records of a
// block body. Each kind names a fused instruction pattern and how much of
// its addressing was resolved at lower time: the K variants carry constant
// addresses folded from the builder's SVal metadata, so executing them
// costs no operand closure call at all.
type microKind uint8

const (
	mDo microKind = iota
	mLoad
	mLoadK // constant address
	mStore
	mStoreK // constant address
	mLoadDo
	mLoadKDo
	mDoStore
	mDoStoreK
	mDoDo
	mLoadDoStore
	mLoadKDoStore
	mLoadDoStoreK
	mLoadKDoStoreK
)

// micro is one pre-decoded superinstruction of a block body, covering n
// consecutive instructions. The operand closures and constants are resolved
// at lower time; run-time execution is one switch dispatch per micro, with
// the MemWindow fast path invoked directly.
type micro struct {
	kind microKind
	n    uint8
	dst  int                 // load destination register
	ka   int64               // folded constant load address
	ks   int64               // folded constant store address
	addr func(*Thread) int64 // dynamic load address
	sadr func(*Thread) int64 // dynamic store address
	val  func(*Thread) int64 // store value
	do   func(*Thread)       // first compute closure
	do2  func(*Thread)       // second compute closure (mDoDo)
}

// termKind is a block's terminator.
type termKind uint8

const (
	// termFall continues to block next (a leader boundary or the
	// TickWindow block-size cap).
	termFall termKind = iota
	// termJump transfers to block target (OpJump).
	termJump
	// termBranch transfers to next when cond holds, else to target
	// (OpBranchUnless).
	termBranch
	// termHalt halts the thread (OpHalt).
	termHalt
	// termEngine is a single engine operation forming its own block.
	termEngine
)

// cblock is one fusion block's hot half: a straight-line run of local
// instructions (body) plus a terminator. The struct is kept to one cache
// line — every field the no-crossing fast path reads, nothing else; the
// rest lives in the parallel ccold array (window crossings, telemetry,
// halts and engine operations all pay a cold lookup, the dominant
// per-block dispatch does not).
type cblock struct {
	term termKind
	// bare marks a single-instruction branch block (a loop head the
	// builder's While/For loops jump back to, or a bare If head).
	// Predecessors evaluate a bare block's condition inline instead of
	// paying a full block dispatch. The block stays in the block list for
	// direct entry. A branch whose body emptied into a fused trailing
	// load retires two instructions and is never bare.
	bare  bool
	steps int32 // retired instructions incl. a local terminator
	next  int32 // fall-through successor block
	// target is the jump/branch destination block.
	target int32
	// cost is the summed DLC cost of all steps: the fast-path charge when
	// the block does not cross a tick-window boundary.
	cost int64
	cond func(t *Thread) bool // termBranch (may include a fused load)
	body []micro
}

// ccold is one block's cold half, index-parallel to Compiled.blocks.
type ccold struct {
	startPC int
	// nbody is the instruction count the body covers; steps additionally
	// counts a local terminator (jump/branch/halt), which retires with the
	// block. A branch-fused trailing load is counted in steps, not nbody.
	nbody int
	// prefix[i] is the summed DLC cost of the block's first i
	// instructions (len steps+1), in program order.
	prefix []int64
	// ops holds the block's opcodes in program order (len steps), for the
	// per-opcode retired counters.
	ops []Opcode

	// termEngine:
	engine  func(t *Thread, eng Engine)
	engPC   int
	engCost int64
	engOp   Opcode
}

// Compiled is a program lowered to threaded code. It implements Exec, holds
// only immutable per-program data, and is safe for concurrent use by every
// thread running the program.
type Compiled struct {
	prog   *Program
	blocks []cblock
	// cold holds the blocks' cold halves, index-parallel to blocks.
	cold []ccold
	// entry maps an instruction pc to the index of the block starting
	// there, or -1 mid-block. Control transfers — including speculation
	// reverts restoring a snapshot PC — always land on a block entry.
	entry []int32
	stats CompileStats
}

// Stats returns the lowering statistics.
func (c *Compiled) Stats() CompileStats { return c.stats }

// Compile lowers a program to the threaded-code backend. The program is
// validated first; Compile never alters it.
func Compile(p *Program) (*Compiled, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("dvm: compile: %w", err)
	}
	code := p.Code
	n := len(code)
	leader := p.blockLeaders()

	c := &Compiled{prog: p, entry: make([]int32, n+1)}
	for i := range c.entry {
		c.entry[i] = -1
	}
	c.stats.Instructions = n

	// Pass 1: cut blocks and lower bodies; successor block indices are
	// recorded as pcs and resolved in pass 2 (targets may be forward).
	type pending struct{ nextPC, targetPC int }
	var succs []pending
	for start := 0; start < n; {
		bix := int32(len(c.blocks))
		c.entry[start] = bix
		if isEngineOp(code[start].Op) {
			in := &code[start]
			c.blocks = append(c.blocks, cblock{term: termEngine})
			c.cold = append(c.cold, ccold{
				startPC: start,
				engine:  lowerEngineOp(in),
				engPC:   start,
				engCost: in.Cost,
				engOp:   in.Op,
			})
			succs = append(succs, pending{nextPC: start + 1, targetPC: -1})
			start++
			continue
		}
		// Straight-line run: scan to the terminator or the next leader,
		// capped at dlc.TickWindow local instructions so a block crosses
		// at most one tick-window boundary (see charge).
		pc, locals := start, 0
		term := termFall
		for {
			if pc >= n {
				return nil, fmt.Errorf("dvm: compile: program %q falls off the end at pc %d", p.Name, pc)
			}
			if locals == dlc.TickWindow || (pc > start && leader[pc]) {
				break
			}
			switch code[pc].Op {
			case OpJump:
				term = termJump
			case OpBranchUnless:
				term = termBranch
			case OpHalt:
				term = termHalt
			default:
				pc++
				locals++
				continue
			}
			break
		}
		b := cblock{term: term}
		cd := ccold{startPC: start}
		steps := locals
		if term != termFall {
			steps++ // the jump/branch/halt retires with the block
		}
		b.steps = int32(steps)
		cd.prefix = make([]int64, steps+1)
		cd.ops = make([]Opcode, steps)
		for i := 0; i < steps; i++ {
			cd.prefix[i+1] = cd.prefix[i] + code[start+i].Cost
			cd.ops[i] = code[start+i].Op
		}
		b.cost = cd.prefix[steps]
		b.body, cd.nbody = fuseBody(code, start, start+locals, &c.stats)
		sp := pending{nextPC: -1, targetPC: -1}
		switch term {
		case termFall:
			sp.nextPC = pc
		case termJump:
			sp.targetPC = code[pc].Target
		case termBranch:
			b.cond = code[pc].Cond
			sp.nextPC = pc + 1
			sp.targetPC = code[pc].Target
			// Load-branch fusion: a trailing single-instruction load
			// feeds straight into the branch condition.
			if locals > 0 && code[start+locals-1].Op == OpLoad && b.body[len(b.body)-1].n == 1 {
				b.cond = fuseLoadBranch(&code[start+locals-1], b.cond)
				b.body = b.body[:len(b.body)-1]
				cd.nbody--
				c.stats.Superinstrs++
			}
		}
		if len(b.body) < cd.nbody { // any multi-instruction micro
			c.stats.FusedBlocks++
		} else if term == termBranch && cd.nbody < locals {
			c.stats.FusedBlocks++ // fused only the load-branch pair
		}
		c.blocks = append(c.blocks, b)
		c.cold = append(c.cold, cd)
		succs = append(succs, sp)
		start = pc
		if term != termFall {
			start++ // consume the terminator
		}
	}

	// Pass 2: resolve successor pcs to block indices.
	resolve := func(pc int) (int32, error) {
		if pc < 0 {
			return -1, nil
		}
		if pc >= n || c.entry[pc] < 0 {
			return -1, fmt.Errorf("dvm: compile: program %q: control transfer target %d is not a block entry", p.Name, pc)
		}
		return c.entry[pc], nil
	}
	for i := range c.blocks {
		var err error
		if c.blocks[i].next, err = resolve(succs[i].nextPC); err != nil {
			return nil, err
		}
		if c.blocks[i].target, err = resolve(succs[i].targetPC); err != nil {
			return nil, err
		}
	}
	// Pass 3: mark bare branch heads. Any control transfer reaching a
	// single-branch block (loop heads, bare If heads) evaluates its
	// condition inline in run() instead of dispatching the block, saving
	// a dispatch per loop iteration and per taken If. steps must be
	// exactly 1: a branch whose body emptied into a fused trailing load
	// retires two instructions and takes the general charge path.
	for i := range c.blocks {
		b := &c.blocks[i]
		b.bare = b.term == termBranch && len(b.body) == 0 && b.steps == 1
	}
	c.stats.Blocks = len(c.blocks)
	return c, nil
}

// fuseBody lowers the local instructions code[start:end) into micros,
// fusing hot adjacent patterns into superinstructions. It returns the body
// and the instruction count it covers.
func fuseBody(code []Instr, start, end int, st *CompileStats) ([]micro, int) {
	var body []micro
	for i := start; i < end; {
		in := &code[i]
		if in.Op == OpLoad && i+3 <= end && code[i+1].Op == OpDo && code[i+2].Op == OpStore {
			body = append(body, microLoadDoStore(in, &code[i+1], &code[i+2]))
			st.Superinstrs++
			i += 3
			continue
		}
		if in.Op == OpLoad && i+2 <= end && code[i+1].Op == OpDo {
			body = append(body, microLoadDo(in, &code[i+1]))
			st.Superinstrs++
			i += 2
			continue
		}
		if in.Op == OpDo && i+2 <= end && code[i+1].Op == OpStore {
			body = append(body, microDoStore(in, &code[i+1]))
			st.Superinstrs++
			i += 2
			continue
		}
		if in.Op == OpDo && i+2 <= end && code[i+1].Op == OpDo {
			body = append(body, microDoDo(in, &code[i+1]))
			st.Superinstrs++
			i += 2
			continue
		}
		switch in.Op {
		case OpDo:
			body = append(body, microDo(in))
		case OpLoad:
			body = append(body, microLoad(in))
		case OpStore:
			body = append(body, microStore(in))
		default:
			panic(fmt.Sprintf("dvm: compile: opcode %v in a local body", in.Op))
		}
		i++
	}
	return body, end - start
}

// isEngineOp reports whether the opcode delegates to an Engine hook (and so
// forms its own block and flushes the tick batch).
func isEngineOp(op Opcode) bool {
	switch op {
	case OpDo, OpLoad, OpStore, OpJump, OpBranchUnless, OpHalt:
		return false
	}
	return true
}

// operand folds a builder constant (SVal.Known, emitted by dvm.Const) into
// a direct closure; dynamic operands keep their original evaluator.
func operand(f func(*Thread) int64, s SVal) func(*Thread) int64 {
	if s.Known {
		k := s.K
		return func(*Thread) int64 { return k }
	}
	return f
}

func microDo(in *Instr) micro {
	return micro{kind: mDo, n: 1, do: in.Do}
}

func microLoad(in *Instr) micro {
	if in.SAddr.Known {
		return micro{kind: mLoadK, n: 1, dst: in.Dst, ka: in.SAddr.K}
	}
	return micro{kind: mLoad, n: 1, dst: in.Dst, addr: in.Addr}
}

func microStore(in *Instr) micro {
	if in.SAddr.Known {
		return micro{kind: mStoreK, n: 1, ks: in.SAddr.K, val: in.Val}
	}
	return micro{kind: mStore, n: 1, sadr: in.Addr, val: in.Val}
}

// microLoadDo fuses load + compute: one dispatch, two instructions.
func microLoadDo(l, d *Instr) micro {
	m := micro{n: 2, dst: l.Dst, do: d.Do}
	if l.SAddr.Known {
		m.kind, m.ka = mLoadKDo, l.SAddr.K
	} else {
		m.kind, m.addr = mLoadDo, l.Addr
	}
	return m
}

// microDoStore fuses compute + store; a halt inside the compute retires
// only the compute, exactly as interpretation would.
func microDoStore(d, s *Instr) micro {
	m := micro{n: 2, do: d.Do, val: s.Val}
	if s.SAddr.Known {
		m.kind, m.ks = mDoStoreK, s.SAddr.K
	} else {
		m.kind, m.sadr = mDoStore, s.Addr
	}
	return m
}

// microDoDo fuses two compute closures.
func microDoDo(d1, d2 *Instr) micro {
	return micro{kind: mDoDo, n: 2, do: d1.Do, do2: d2.Do}
}

// microLoadDoStore fuses the full read-modify-write shape, with each of the
// two addresses independently foldable to a constant.
func microLoadDoStore(l, d, s *Instr) micro {
	m := micro{n: 3, dst: l.Dst, do: d.Do, val: s.Val}
	switch {
	case l.SAddr.Known && s.SAddr.Known:
		m.kind, m.ka, m.ks = mLoadKDoStoreK, l.SAddr.K, s.SAddr.K
	case l.SAddr.Known:
		m.kind, m.ka, m.sadr = mLoadKDoStore, l.SAddr.K, s.Addr
	case s.SAddr.Known:
		m.kind, m.addr, m.ks = mLoadDoStoreK, l.Addr, s.SAddr.K
	default:
		m.kind, m.addr, m.sadr = mLoadDoStore, l.Addr, s.Addr
	}
	return m
}

// fuseLoadBranch folds a trailing load into the branch condition: the load
// executes, then the condition reads the loaded register — the same
// observable order as interpreting the two instructions.
func fuseLoadBranch(l *Instr, cond func(*Thread) bool) func(*Thread) bool {
	dst := l.Dst
	if l.SAddr.Known {
		k := l.SAddr.K
		return func(t *Thread) bool {
			t.Regs[dst] = t.Mem.Load(k)
			return cond(t)
		}
	}
	addr := l.Addr
	return func(t *Thread) bool {
		t.Regs[dst] = t.Mem.Load(addr(t))
		return cond(t)
	}
}

// lowerEngineOp lowers one engine operation to a closure over the engine
// hook, with constant operands folded. Operand evaluation order matches the
// interpreter's argument order exactly.
func lowerEngineOp(in *Instr) func(*Thread, Engine) {
	switch in.Op {
	case OpLock:
		a := operand(in.Addr, in.SAddr)
		return func(t *Thread, eng Engine) { eng.Lock(t, a(t)) }
	case OpUnlock:
		a := operand(in.Addr, in.SAddr)
		return func(t *Thread, eng Engine) { eng.Unlock(t, a(t)) }
	case OpRLock:
		a := operand(in.Addr, in.SAddr)
		return func(t *Thread, eng Engine) { eng.RLock(t, a(t)) }
	case OpRUnlock:
		a := operand(in.Addr, in.SAddr)
		return func(t *Thread, eng Engine) { eng.RUnlock(t, a(t)) }
	case OpCondWait:
		cv := operand(in.Addr, in.SAddr)
		l := operand(in.Addr2, in.SAddr2)
		return func(t *Thread, eng Engine) { eng.CondWait(t, cv(t), l(t)) }
	case OpCondSignal:
		a := operand(in.Addr, in.SAddr)
		return func(t *Thread, eng Engine) { eng.CondSignal(t, a(t)) }
	case OpCondBroadcast:
		a := operand(in.Addr, in.SAddr)
		return func(t *Thread, eng Engine) { eng.CondBroadcast(t, a(t)) }
	case OpBarrier:
		a := operand(in.Addr, in.SAddr)
		return func(t *Thread, eng Engine) { eng.BarrierWait(t, a(t)) }
	case OpSyscall:
		s := in.Sys
		return func(t *Thread, eng Engine) { eng.Syscall(t, s) }
	case OpAtomic:
		a := in.Atom
		return func(t *Thread, eng Engine) { t.Regs[a.Dst] = eng.Atomic(t, a) }
	case OpSpawn:
		a := operand(in.Addr, in.SAddr)
		return func(t *Thread, eng Engine) { eng.Spawn(t, int(a(t))) }
	case OpJoin:
		a := operand(in.Addr, in.SAddr)
		return func(t *Thread, eng Engine) { eng.Join(t, int(a(t))) }
	}
	panic(fmt.Sprintf("dvm: compile: %v is not an engine op", in.Op))
}

// charge retires r local instructions of a block whose cost prefix sums are
// prefix, given pend/steps accumulated since the last flush, replicating
// the interpreter's flush points exactly: if the window fills inside the
// block, the tick carries the batch up to and including the instruction
// that filled it — the same value the interpreter would have flushed there
// — and the remainder is carried forward. Block bodies are capped at
// dlc.TickWindow instructions, so at most one flush per call.
func charge(eng Engine, t *Thread, pend int64, steps int, prefix []int64, r int) (int64, int) {
	if r == 0 {
		return pend, steps
	}
	if steps+r >= dlc.TickWindow {
		j := dlc.TickWindow - steps
		eng.Tick(t, pend+prefix[j])
		return prefix[r] - prefix[j], steps + r - dlc.TickWindow
	}
	return pend + prefix[r], steps + r
}

func countRetired(counts []int64, ops []Opcode) {
	for _, op := range ops {
		counts[op]++
	}
}

// run executes the compiled program on thread t: the Exec implementation.
// The control protocol mirrors runInterp exactly — see the package comment
// of this file for the DLC-exactness and revert-re-entry arguments.
func (c *Compiled) run(t *Thread) {
	eng := t.eng
	var pend int64 // local-instruction cost accumulated since the last flush
	steps := 0     // local instructions accumulated since the last flush
	if t.PC < 0 || t.PC >= len(c.entry) || c.entry[t.PC] < 0 {
		panic(fmt.Sprintf("dvm: compiled %q: resume PC %d is not a block entry", c.prog.Name, t.PC))
	}
	bix := c.entry[t.PC]
loop:
	for bix >= 0 {
		b := &c.blocks[bix]
		if b.term == termEngine {
			// Publish the exact clock before the engine observes or
			// orders anything, then charge the operation's own cost.
			cd := &c.cold[bix]
			if pend != 0 {
				eng.Tick(t, pend)
			}
			pend, steps = 0, 0
			if t.retired != nil {
				t.retired[cd.engOp]++
			}
			next := cd.engPC + 1
			t.PC = next // the state runInterp presents to engine hooks
			cd.engine(t, eng)
			eng.Tick(t, cd.engCost)
			if t.halted {
				break loop
			}
			if t.PC != next {
				// The hook rewound the thread (speculation revert):
				// re-enter at the restored block head. Reverts restore
				// a lock acquisition's PC, and engine ops are single-
				// instruction blocks, so the PC is a block entry.
				bix = c.entry[t.PC]
				continue
			}
			bix = b.next
			continue
		}
		r := 0
		for i := range b.body {
			m := &b.body[i]
			switch m.kind {
			case mDo:
				m.do(t)
				r++
			case mLoad:
				t.Regs[m.dst] = t.Mem.Load(m.addr(t))
				r++
			case mLoadK:
				t.Regs[m.dst] = t.Mem.Load(m.ka)
				r++
			case mStore:
				t.Mem.Store(m.sadr(t), m.val(t))
				r++
			case mStoreK:
				t.Mem.Store(m.ks, m.val(t))
				r++
			case mLoadDo:
				t.Regs[m.dst] = t.Mem.Load(m.addr(t))
				m.do(t)
				r += 2
			case mLoadKDo:
				t.Regs[m.dst] = t.Mem.Load(m.ka)
				m.do(t)
				r += 2
			case mDoStore:
				m.do(t)
				if t.halted {
					r++
					break
				}
				t.Mem.Store(m.sadr(t), m.val(t))
				r += 2
			case mDoStoreK:
				m.do(t)
				if t.halted {
					r++
					break
				}
				t.Mem.Store(m.ks, m.val(t))
				r += 2
			case mDoDo:
				m.do(t)
				if t.halted {
					r++
					break
				}
				m.do2(t)
				r += 2
			case mLoadDoStore:
				t.Regs[m.dst] = t.Mem.Load(m.addr(t))
				m.do(t)
				if t.halted {
					r += 2
					break
				}
				t.Mem.Store(m.sadr(t), m.val(t))
				r += 3
			case mLoadKDoStore:
				t.Regs[m.dst] = t.Mem.Load(m.ka)
				m.do(t)
				if t.halted {
					r += 2
					break
				}
				t.Mem.Store(m.sadr(t), m.val(t))
				r += 3
			case mLoadDoStoreK:
				t.Regs[m.dst] = t.Mem.Load(m.addr(t))
				m.do(t)
				if t.halted {
					r += 2
					break
				}
				t.Mem.Store(m.ks, m.val(t))
				r += 3
			case mLoadKDoStoreK:
				t.Regs[m.dst] = t.Mem.Load(m.ka)
				m.do(t)
				if t.halted {
					r += 2
					break
				}
				t.Mem.Store(m.ks, m.val(t))
				r += 3
			}
			if t.halted {
				// A Do closure halted the thread: retire exactly the
				// executed prefix, as the interpreter would.
				cd := &c.cold[bix]
				if t.retired != nil {
					countRetired(t.retired, cd.ops[:r])
				}
				pend, steps = charge(eng, t, pend, steps, cd.prefix, r)
				t.PC = cd.startPC + r
				break loop
			}
		}
		// Terminator: pick the successor first (the branch condition may
		// execute a fused trailing load), then retire the whole block —
		// the inlined fast path of charge.
		var nbix int32
		switch b.term {
		case termFall:
			nbix = b.next
		case termJump:
			nbix = b.target
		case termBranch:
			if b.cond(t) {
				nbix = b.next
			} else {
				nbix = b.target
			}
		default: // termHalt
			t.halted = true
			t.PC = c.cold[bix].startPC + int(b.steps)
			nbix = -1
		}
		if t.retired != nil {
			countRetired(t.retired, c.cold[bix].ops)
		}
		if steps+int(b.steps) < dlc.TickWindow {
			pend += b.cost
			steps += int(b.steps)
		} else {
			j := dlc.TickWindow - steps
			prefix := c.cold[bix].prefix
			eng.Tick(t, pend+prefix[j])
			pend = b.cost - prefix[j]
			steps += int(b.steps) - dlc.TickWindow
		}
		// Threaded branch heads: while the successor is a body-less
		// branch block, evaluate its condition inline instead of paying
		// a full block dispatch. Each head is a single branch
		// instruction, so the crossing case flushes the whole batch and
		// carries nothing. A cycle of bare heads is an infinite loop in
		// the program itself; the inline loop still ticks through it
		// exactly as the interpreter would.
		for nbix >= 0 {
			hb := &c.blocks[nbix]
			if !hb.bare {
				break
			}
			hix := nbix
			if hb.cond(t) {
				nbix = hb.next
			} else {
				nbix = hb.target
			}
			if t.retired != nil {
				countRetired(t.retired, c.cold[hix].ops)
			}
			if steps+1 < dlc.TickWindow {
				pend += hb.cost
				steps++
			} else {
				eng.Tick(t, pend+hb.cost)
				pend, steps = 0, 0
			}
		}
		if nbix < 0 {
			break loop
		}
		bix = nbix
	}
	// Publish the tail batch before ThreadExit takes its final turn —
	// the same single exit protocol as runInterp.
	if pend != 0 {
		eng.Tick(t, pend)
	}
}
