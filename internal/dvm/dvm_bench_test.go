package dvm

import "testing"

// dispatchPrograms are the shapes BenchmarkDispatch measures: a pure
// compute loop (straight dispatch), a fused load-modify-store loop, and a
// branch-dense loop of one-instruction blocks.
func dispatchPrograms() map[string]*Program {
	spin := NewBuilder("spin")
	i := spin.Reg()
	spin.ForN(i, 1_000_000, func() {
		spin.Do(func(t *Thread) {})
	})

	ls := NewBuilder("loadstore")
	i2 := ls.Reg()
	r := ls.Reg()
	ls.ForN(i2, 1_000_000, func() {
		ls.Load(r, Const(8))
		ls.Do(func(t *Thread) { t.SetR(r, t.R(r)+1) })
		ls.Store(Const(8), FromReg(r))
	})

	br := NewBuilder("branchy")
	i3 := br.Reg()
	acc := br.Reg()
	br.Set(acc, 0)
	br.ForN(i3, 1_000_000, func() {
		br.IfElse(func(t *Thread) bool { return t.R(i3)&1 == 0 },
			func() { br.Do(func(t *Thread) { t.SetR(acc, t.R(acc)+2) }) },
			func() { br.Do(func(t *Thread) { t.SetR(acc, t.R(acc)-1) }) })
	})

	return map[string]*Program{"spin": spin.Build(), "loadstore": ls.Build(), "branchy": br.Build()}
}

// BenchmarkDispatch measures raw dispatch throughput per program shape, for
// the interpreter and the threaded-code backend.
func BenchmarkDispatch(b *testing.B) {
	e := newNullEngineB()
	for name, p := range dispatchPrograms() {
		compiled, err := Compile(p)
		if err != nil {
			b.Fatal(err)
		}
		for _, bk := range []struct {
			name string
			x    Exec
		}{{"interp", Interp()}, {"compiled", compiled}} {
			b.Run(name+"/"+bk.name, func(b *testing.B) {
				b.ReportAllocs()
				for n := 0; n < b.N; n++ {
					t := &Thread{ID: 0, Regs: make([]int64, p.NumRegs), Mem: e, prog: p, eng: e}
					bk.x.run(t)
				}
			})
		}
	}
}

// BenchmarkSnapshot measures the speculation checkpoint cost for a typical
// register-file size.
func BenchmarkSnapshot(b *testing.B) {
	t := &Thread{ID: 0, PC: 5, Regs: make([]int64, 16), Scratch: make([]int64, 64)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := t.Snapshot()
		t.Restore(s)
	}
}

// benchEngine is a no-op engine (and no-op MemWindow) for interpreter
// benchmarks.
type benchEngine struct{}

func newNullEngineB() *benchEngine                       { return &benchEngine{} }
func (e *benchEngine) Name() string                      { return "bench" }
func (e *benchEngine) Deterministic() bool               { return false }
func (e *benchEngine) ThreadStart(t *Thread)             { t.Mem = e }
func (e *benchEngine) ThreadExit(*Thread) bool           { return true }
func (e *benchEngine) Tick(*Thread, int64)               {}
func (e *benchEngine) Load(int64) int64                  { return 0 }
func (e *benchEngine) Store(int64, int64)                {}
func (e *benchEngine) Lock(*Thread, int64)               {}
func (e *benchEngine) Unlock(*Thread, int64)             {}
func (e *benchEngine) RLock(*Thread, int64)              {}
func (e *benchEngine) RUnlock(*Thread, int64)            {}
func (e *benchEngine) CondWait(*Thread, int64, int64)    {}
func (e *benchEngine) CondSignal(*Thread, int64)         {}
func (e *benchEngine) CondBroadcast(*Thread, int64)      {}
func (e *benchEngine) BarrierWait(*Thread, int64)        {}
func (e *benchEngine) Syscall(*Thread, *Syscall)         {}
func (e *benchEngine) Atomic(t *Thread, a *Atomic) int64 { return 0 }
func (e *benchEngine) Spawn(*Thread, int)                {}
func (e *benchEngine) Join(*Thread, int)                 {}
