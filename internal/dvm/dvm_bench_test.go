package dvm

import "testing"

// BenchmarkDispatch measures raw interpreter throughput on a compute loop.
func BenchmarkDispatch(b *testing.B) {
	bld := NewBuilder("spin")
	i := bld.Reg()
	bld.ForN(i, 1_000_000, func() {
		bld.Do(func(t *Thread) {})
	})
	p := bld.Build()
	e := newNullEngineB()
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		t := &Thread{ID: 0, Regs: make([]int64, p.NumRegs), Mem: e, prog: p, eng: e}
		t.run()
	}
}

// BenchmarkSnapshot measures the speculation checkpoint cost for a typical
// register-file size.
func BenchmarkSnapshot(b *testing.B) {
	t := &Thread{ID: 0, PC: 5, Regs: make([]int64, 16), Scratch: make([]int64, 64)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := t.Snapshot()
		t.Restore(s)
	}
}

// benchEngine is a no-op engine (and no-op MemWindow) for interpreter
// benchmarks.
type benchEngine struct{}

func newNullEngineB() *benchEngine                       { return &benchEngine{} }
func (e *benchEngine) Name() string                      { return "bench" }
func (e *benchEngine) Deterministic() bool               { return false }
func (e *benchEngine) ThreadStart(t *Thread)             { t.Mem = e }
func (e *benchEngine) ThreadExit(*Thread) bool           { return true }
func (e *benchEngine) Tick(*Thread, int64)               {}
func (e *benchEngine) Load(int64) int64                  { return 0 }
func (e *benchEngine) Store(int64, int64)                {}
func (e *benchEngine) Lock(*Thread, int64)               {}
func (e *benchEngine) Unlock(*Thread, int64)             {}
func (e *benchEngine) RLock(*Thread, int64)              {}
func (e *benchEngine) RUnlock(*Thread, int64)            {}
func (e *benchEngine) CondWait(*Thread, int64, int64)    {}
func (e *benchEngine) CondSignal(*Thread, int64)         {}
func (e *benchEngine) CondBroadcast(*Thread, int64)      {}
func (e *benchEngine) BarrierWait(*Thread, int64)        {}
func (e *benchEngine) Syscall(*Thread, *Syscall)         {}
func (e *benchEngine) Atomic(t *Thread, a *Atomic) int64 { return 0 }
func (e *benchEngine) Spawn(*Thread, int)                {}
func (e *benchEngine) Join(*Thread, int)                 {}
