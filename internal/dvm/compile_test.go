package dvm

import (
	"fmt"
	"reflect"
	"testing"
)

// traceEngine records every engine-observable event of a single-threaded
// run — tick values, loads, stores, synchronization — so interpreter and
// compiled executions can be compared event-for-event. It is the
// differential-oracle harness at the VM layer: if the two backends present
// different streams here, they would diverge under a deterministic engine.
type traceEngine struct {
	mem    []int64
	events []string

	// onLock, when set, runs before each Lock event is recorded (for the
	// revert-simulation tests).
	onLock func(t *Thread, l int64)
}

func newTraceEngine(words int) *traceEngine {
	return &traceEngine{mem: make([]int64, words)}
}

func (e *traceEngine) ev(format string, args ...any) {
	e.events = append(e.events, fmt.Sprintf(format, args...))
}

func (e *traceEngine) Name() string            { return "trace" }
func (e *traceEngine) Deterministic() bool     { return true }
func (e *traceEngine) ThreadStart(t *Thread)   { t.Mem = e }
func (e *traceEngine) ThreadExit(*Thread) bool { return true }
func (e *traceEngine) Tick(t *Thread, cost int64) {
	e.ev("tick:%d", cost)
}
func (e *traceEngine) Load(a int64) int64 {
	v := e.mem[a]
	e.ev("load:%d=%d", a, v)
	return v
}
func (e *traceEngine) Store(a, v int64) {
	e.mem[a] = v
	e.ev("store:%d=%d", a, v)
}
func (e *traceEngine) Lock(t *Thread, l int64) {
	if e.onLock != nil {
		e.onLock(t, l)
	}
	e.ev("lock:%d", l)
}
func (e *traceEngine) Unlock(t *Thread, l int64)  { e.ev("unlock:%d", l) }
func (e *traceEngine) RLock(t *Thread, l int64)   { e.ev("rlock:%d", l) }
func (e *traceEngine) RUnlock(t *Thread, l int64) { e.ev("runlock:%d", l) }
func (e *traceEngine) CondWait(t *Thread, cv, l int64) {
	e.ev("wait:%d,%d", cv, l)
}
func (e *traceEngine) CondSignal(t *Thread, cv int64)    { e.ev("signal:%d", cv) }
func (e *traceEngine) CondBroadcast(t *Thread, cv int64) { e.ev("broadcast:%d", cv) }
func (e *traceEngine) BarrierWait(t *Thread, b int64)    { e.ev("barrier:%d", b) }
func (e *traceEngine) Syscall(t *Thread, s *Syscall) {
	e.ev("syscall:%d", s.Work)
	if s.Effect != nil {
		s.Effect(t)
	}
}
func (e *traceEngine) Spawn(t *Thread, target int) { e.ev("spawn:%d", target) }
func (e *traceEngine) Join(t *Thread, target int)  { e.ev("join:%d", target) }
func (e *traceEngine) Atomic(t *Thread, a *Atomic) int64 {
	addr := a.Addr(t)
	store, result := a.Apply(t, e.mem[addr])
	e.mem[addr] = store
	e.ev("atomic:%d=%d", addr, store)
	return result
}

// runBackend executes p on a fresh traceEngine under the given backend and
// returns the engine, the thread, and the recorded event stream.
func runBackend(t *testing.T, p *Program, words int, x Exec, hook func(*traceEngine)) (*traceEngine, *Thread) {
	t.Helper()
	e := newTraceEngine(words)
	if hook != nil {
		hook(e)
	}
	th := &Thread{ID: 0, Regs: make([]int64, p.NumRegs), Scratch: make([]int64, p.Scratch), prog: p, eng: e}
	e.ThreadStart(th)
	th.EnableRetiredCounts()
	x.run(th)
	return e, th
}

// assertBackendsAgree runs p under the interpreter and the compiled backend
// and requires identical event streams (every tick value at every position,
// every memory and sync operation in order), identical final memory,
// identical per-opcode retired counts, and identical final PC/halted state.
func assertBackendsAgree(t *testing.T, p *Program, words int, hook func(*traceEngine)) {
	t.Helper()
	c, err := Compile(p)
	if err != nil {
		t.Fatalf("compile %q: %v", p.Name, err)
	}
	ie, it := runBackend(t, p, words, Interp(), hook)
	ce, ct := runBackend(t, p, words, c, hook)
	if !reflect.DeepEqual(ie.events, ce.events) {
		max := len(ie.events)
		if len(ce.events) > max {
			max = len(ce.events)
		}
		for i := 0; i < max; i++ {
			var a, b string
			if i < len(ie.events) {
				a = ie.events[i]
			}
			if i < len(ce.events) {
				b = ce.events[i]
			}
			if a != b {
				t.Fatalf("%q: event %d diverges: interp %q, compiled %q", p.Name, i, a, b)
			}
		}
		t.Fatalf("%q: event streams diverge in length: interp %d, compiled %d", p.Name, len(ie.events), len(ce.events))
	}
	if !reflect.DeepEqual(ie.mem, ce.mem) {
		t.Fatalf("%q: final memory diverges:\ninterp   %v\ncompiled %v", p.Name, ie.mem, ce.mem)
	}
	if !reflect.DeepEqual(it.RetiredCounts(), ct.RetiredCounts()) {
		t.Fatalf("%q: retired counts diverge:\ninterp   %v\ncompiled %v", p.Name, it.RetiredCounts(), ct.RetiredCounts())
	}
	if it.PC != ct.PC || it.halted != ct.halted {
		t.Fatalf("%q: final state diverges: interp PC=%d halted=%v, compiled PC=%d halted=%v",
			p.Name, it.PC, it.halted, ct.PC, ct.halted)
	}
}

// TestCompiledMatchesInterpStraightLine covers the fusion patterns on
// straight-line code: load-do-store (all four constant/dynamic address
// combinations), load-do, do-store, do-do, and singles.
func TestCompiledMatchesInterpStraightLine(t *testing.T) {
	b := NewBuilder("straight")
	r := b.Reg()
	x := b.Reg()
	// Constant-address RMW: mLoadKDoStoreK.
	b.Load(r, Const(0))
	b.Do(func(t *Thread) { t.SetR(r, t.R(r)+7) })
	b.Store(Const(0), FromReg(r))
	// Dynamic-address RMW: mLoadDoStore.
	b.Set(x, 3)
	b.Load(r, Dyn(func(t *Thread) int64 { return t.R(x) }))
	b.Do(func(t *Thread) { t.SetR(r, t.R(r)*2) })
	b.Store(Dyn(func(t *Thread) int64 { return t.R(x) }), FromReg(r))
	// load-do and do-store pairs, and a lone store.
	b.Load(r, Const(1))
	b.Do(func(t *Thread) { t.SetR(r, t.R(r)+1) })
	b.Do(func(t *Thread) { t.SetR(x, t.R(x)+t.R(r)) })
	b.Store(Const(2), FromReg(x))
	b.Store(Const(4), Const(99))
	assertBackendsAgree(t, b.Build(), 8, func(e *traceEngine) {
		e.mem[0] = 5
		e.mem[3] = 11
	})
}

// TestCompiledMatchesInterpWindowCrossing runs straight-line and looped
// code long enough to cross many dlc.TickWindow boundaries, with uneven
// per-instruction costs, so batched charging must flush at exactly the
// interpreter's instructions with exactly its batch values.
func TestCompiledMatchesInterpWindowCrossing(t *testing.T) {
	b := NewBuilder("window")
	r := b.Reg()
	for i := 0; i < 150; i++ {
		cost := int64(1 + i%7)
		b.DoCost(cost, func(t *Thread) { t.AddR(r, 1) })
	}
	b.Store(Const(0), FromReg(r))
	assertBackendsAgree(t, b.Build(), 4, nil)

	b2 := NewBuilder("window-loop")
	i := b2.Reg()
	sum := b2.Reg()
	b2.ForN(i, 500, func() {
		b2.DoCost(3, func(t *Thread) { t.AddR(sum, t.R(i)) })
	})
	b2.Store(Const(0), FromReg(sum))
	assertBackendsAgree(t, b2.Build(), 4, nil)
}

// TestCompiledMatchesInterpBranches covers If, IfElse, While and nested
// loops — every control-transfer shape the builder emits, including the
// load-branch fusion on While conditions reading a just-loaded register.
func TestCompiledMatchesInterpBranches(t *testing.T) {
	b := NewBuilder("branches")
	i := b.Reg()
	v := b.Reg()
	b.ForN(i, 40, func() {
		b.Load(v, Const(1))
		b.If(func(t *Thread) bool { return t.R(i)%3 == 0 }, func() {
			b.Do(func(t *Thread) { t.AddR(v, 10) })
		})
		b.IfElse(func(t *Thread) bool { return t.R(i)%2 == 0 },
			func() { b.Store(Const(1), FromReg(v)) },
			func() { b.Store(Const(2), FromReg(v)) })
	})
	assertBackendsAgree(t, b.Build(), 4, nil)

	// While with a loaded condition register: the trailing load fuses
	// into the branch condition.
	b2 := NewBuilder("load-branch")
	n := b2.Reg()
	b2.Store(Const(0), Const(6))
	b2.Load(n, Const(0))
	b2.While(func(t *Thread) bool { return t.R(n) > 0 }, func() {
		b2.Store(Const(0), Dyn(func(t *Thread) int64 { return t.R(n) - 1 }))
		b2.Load(n, Const(0))
	})
	assertBackendsAgree(t, b2.Build(), 4, nil)
}

// TestCompiledMatchesInterpEngineOps covers synchronization, atomics and
// syscalls: engine ops are single-instruction blocks that flush the tick
// batch first, so every published clock at a sync point must match.
func TestCompiledMatchesInterpEngineOps(t *testing.T) {
	b := NewBuilder("engine-ops")
	r := b.Reg()
	b.Lock(Const(0))
	b.Load(r, Const(0))
	b.Do(func(t *Thread) { t.SetR(r, t.R(r)+1) })
	b.Store(Const(0), FromReg(r))
	b.Unlock(Const(0))
	b.RLock(Const(1))
	b.Load(r, Const(1))
	b.RUnlock(Const(1))
	b.AtomicAdd(r, Const(2), Const(5))
	b.Syscall(&Syscall{Work: 17})
	b.CondSignal(Const(0))
	b.Barrier(Const(0))
	assertBackendsAgree(t, b.Build(), 8, nil)
}

// TestCompiledMatchesInterpEarlyHalt halts the thread from a Do closure in
// the middle of a fused do-store superinstruction: the store must not
// execute, the retired counts must cover exactly the executed prefix, and
// the final PC must be the halting instruction's successor.
func TestCompiledMatchesInterpEarlyHalt(t *testing.T) {
	b := NewBuilder("early-halt")
	r := b.Reg()
	b.Load(r, Const(0))
	b.Do(func(t *Thread) { t.Halt() }) // halts mid-fused-block
	b.Store(Const(1), Const(42))       // must never execute
	b.Store(Const(2), Const(43))
	assertBackendsAgree(t, b.Build(), 4, nil)

	// Halt mid do-do pair.
	b2 := NewBuilder("early-halt-dodo")
	x := b2.Reg()
	b2.Do(func(t *Thread) { t.SetR(x, 1); t.Halt() })
	b2.Do(func(t *Thread) { t.SetR(x, 2) })
	b2.Store(Const(0), FromReg(x))
	assertBackendsAgree(t, b2.Build(), 4, nil)
}

// TestCompiledRevertReentry simulates a speculation revert: the engine's
// Lock hook snapshots the thread at the first acquisition and restores that
// snapshot at a later one, exactly as the core engine reverts a failed
// speculative run. The compiled backend must re-enter at the restored PC (a
// block leader) and re-execute the fused region identically — the event
// streams of both backends, including the duplicated re-executed events,
// must match bit-for-bit.
func TestCompiledRevertReentry(t *testing.T) {
	b := NewBuilder("revert")
	r := b.Reg()
	b.Lock(Const(0)) // snapshot here; revert restores this PC
	b.Load(r, Const(0))
	b.Do(func(t *Thread) { t.SetR(r, t.R(r)+1) })
	b.Store(Const(0), FromReg(r))
	b.Lock(Const(1)) // the revert fires here, once
	b.Do(func(t *Thread) { t.AddR(r, 100) })
	b.Unlock(Const(1))
	b.Unlock(Const(0))
	b.Store(Const(1), FromReg(r))

	hook := func(e *traceEngine) {
		var snap *Snapshot
		reverted := false
		e.onLock = func(t *Thread, l int64) {
			if l == 0 && snap == nil {
				snap = t.Snapshot()
				return
			}
			if l == 1 && !reverted {
				reverted = true
				e.ev("revert")
				t.Restore(snap)
			}
		}
	}
	assertBackendsAgree(t, b.Build(), 4, hook)
}

// TestCompiledRevertMidWindow forces the revert while the re-executed
// region crosses tick-window boundaries, so re-charged batches must
// replay exactly.
func TestCompiledRevertMidWindow(t *testing.T) {
	b := NewBuilder("revert-window")
	i := b.Reg()
	sum := b.Reg()
	b.Lock(Const(0))
	b.ForN(i, 100, func() {
		b.DoCost(2, func(t *Thread) { t.AddR(sum, 1) })
	})
	b.Lock(Const(1))
	b.Unlock(Const(1))
	b.Unlock(Const(0))
	b.Store(Const(0), FromReg(sum))

	hook := func(e *traceEngine) {
		var snap *Snapshot
		reverted := false
		e.onLock = func(t *Thread, l int64) {
			if l == 0 && snap == nil {
				snap = t.Snapshot()
				return
			}
			if l == 1 && !reverted {
				reverted = true
				e.ev("revert")
				t.Restore(snap)
			}
		}
	}
	assertBackendsAgree(t, b.Build(), 4, hook)
}

// TestOffEndExitMatchesHaltExit is the regression test for the tail-flush
// exit protocol: a hand-built (unvalidated) program whose PC runs off the
// end of the code must flush its tail batch and set halted exactly like an
// explicit OpHalt exit does.
func TestOffEndExitMatchesHaltExit(t *testing.T) {
	mk := func(halt bool) *Program {
		code := []Instr{
			{Op: OpDo, Cost: 3, Do: func(t *Thread) {}},
			{Op: OpDo, Cost: 4, Do: func(t *Thread) {}},
		}
		if halt {
			code = append(code, Instr{Op: OpHalt, Cost: 1})
		}
		return &Program{Name: "tail", Code: code, NumRegs: 1}
	}

	run := func(p *Program) (*traceEngine, *Thread) {
		e := newTraceEngine(1)
		th := &Thread{ID: 0, Regs: make([]int64, p.NumRegs), prog: p, eng: e}
		e.ThreadStart(th)
		th.runInterp()
		return e, th
	}

	offEng, offTh := run(mk(false))
	haltEng, haltTh := run(mk(true))
	if !offTh.halted {
		t.Fatalf("off-the-end exit left halted unset")
	}
	if !haltTh.halted {
		t.Fatalf("OpHalt exit left halted unset")
	}
	// Both exits must publish the full accumulated cost; the halt variant
	// additionally retires the halt instruction itself.
	wantOff := []string{"tick:7"}
	wantHalt := []string{"tick:8"}
	if !reflect.DeepEqual(offEng.events, wantOff) {
		t.Fatalf("off-the-end exit events = %v, want %v", offEng.events, wantOff)
	}
	if !reflect.DeepEqual(haltEng.events, wantHalt) {
		t.Fatalf("OpHalt exit events = %v, want %v", haltEng.events, wantHalt)
	}

	// The compiled backend refuses off-the-end programs outright: Compile
	// validates, and validation requires explicit halts.
	if _, err := Compile(mk(false)); err == nil {
		t.Fatalf("Compile accepted a program that falls off the end")
	}
}

// TestCompileStats sanity-checks the lowering statistics on a fusion-heavy
// program.
func TestCompileStats(t *testing.T) {
	b := NewBuilder("stats")
	r := b.Reg()
	b.Load(r, Const(0))
	b.Do(func(t *Thread) { t.AddR(r, 1) })
	b.Store(Const(0), FromReg(r))
	b.Lock(Const(0))
	b.Unlock(Const(0))
	p := b.Build()
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Instructions != len(p.Code) {
		t.Errorf("Instructions = %d, want %d", st.Instructions, len(p.Code))
	}
	if st.Superinstrs == 0 {
		t.Errorf("Superinstrs = 0, want the load-do-store fusion counted")
	}
	if st.FusedBlocks == 0 {
		t.Errorf("FusedBlocks = 0, want at least one")
	}
	if st.Blocks < 3 {
		t.Errorf("Blocks = %d, want at least body + lock + unlock", st.Blocks)
	}
}

// TestValidateRejectsMidBlockTarget pins the Validate contract the
// compiled backend relies on: control transfers must land on fusion-block
// entry points.
func TestValidateRejectsMidBlockTarget(t *testing.T) {
	// Hand-built: branch into the middle of a straight-line run.
	p := &Program{
		Name: "midblock",
		Code: []Instr{
			{Op: OpBranchUnless, Cost: 1, Cond: func(*Thread) bool { return false }, Target: 2},
			{Op: OpDo, Cost: 1, Do: func(t *Thread) {}},
			{Op: OpDo, Cost: 1, Do: func(t *Thread) {}},
			{Op: OpHalt, Cost: 1},
		},
		NumRegs: 1,
	}
	// Target 2 is a branch target, which makes it a leader by construction —
	// so this program is actually valid. The invalid shape needs a pc
	// reachable both by fallthrough and not registered as a leader, which
	// blockLeaders makes impossible: every jump target IS a leader. The
	// test therefore asserts the positive contract instead: validation
	// passes and compilation places a block entry at the target.
	if err := p.Validate(); err != nil {
		t.Fatalf("valid program rejected: %v", err)
	}
	c, err := Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	if c.entry[2] < 0 {
		t.Fatalf("jump target 2 is not a block entry")
	}
}
