package dvm

import "fmt"

// Reg names a register allocated by a Builder.
type Reg int

// R reads register r. It is the closure-side accessor matching Builder regs.
func (t *Thread) R(r Reg) int64 { return t.Regs[r] }

// SetR writes register r.
func (t *Thread) SetR(r Reg, v int64) { t.Regs[r] = v }

// AddR adds delta to register r and returns the new value.
func (t *Thread) AddR(r Reg, delta int64) int64 {
	t.Regs[r] += delta
	return t.Regs[r]
}

// Builder assembles a Program from structured control flow. All emit
// methods append instructions; loops and conditionals take body callbacks
// that emit into the same builder, with jump targets patched on completion.
//
// Builders are single-use: call Build exactly once.
type Builder struct {
	name    string
	code    []Instr
	numRegs int
	scratch int
	built   bool
}

// NewBuilder starts a program named name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name}
}

// Reg allocates a fresh register.
func (b *Builder) Reg() Reg {
	r := Reg(b.numRegs)
	b.numRegs++
	return r
}

// Regs allocates n fresh registers.
func (b *Builder) Regs(n int) []Reg {
	rs := make([]Reg, n)
	for i := range rs {
		rs[i] = b.Reg()
	}
	return rs
}

// Scratch reserves thread-private scratch memory of at least n words and
// returns the base offset of the reserved block.
func (b *Builder) Scratch(n int) int64 {
	base := int64(b.scratch)
	b.scratch += n
	return base
}

// emit appends an instruction and returns its index.
func (b *Builder) emit(in Instr) int {
	if in.Cost == 0 {
		in.Cost = 1
	}
	b.code = append(b.code, in)
	return len(b.code) - 1
}

// Do emits a compute instruction with DLC cost 1.
func (b *Builder) Do(f func(t *Thread)) {
	b.emit(Instr{Op: OpDo, Do: f})
}

// DoCost emits a compute instruction with an explicit DLC cost, for bodies
// that model more than one unit of work.
func (b *Builder) DoCost(cost int64, f func(t *Thread)) {
	b.emit(Instr{Op: OpDo, Cost: cost, Do: f})
}

// Set emits an instruction storing a constant into a register.
func (b *Builder) Set(r Reg, v int64) {
	b.Do(func(t *Thread) { t.SetR(r, v) })
}

// Load emits a shared-heap read into dst.
func (b *Builder) Load(dst Reg, addr func(t *Thread) int64) {
	b.emit(Instr{Op: OpLoad, Dst: int(dst), Addr: addr})
}

// Store emits a shared-heap write.
func (b *Builder) Store(addr func(t *Thread) int64, val func(t *Thread) int64) {
	b.emit(Instr{Op: OpStore, Addr: addr, Val: val})
}

// Lock emits a lock acquisition.
func (b *Builder) Lock(l func(t *Thread) int64) {
	b.emit(Instr{Op: OpLock, Addr: l})
}

// Unlock emits a lock release.
func (b *Builder) Unlock(l func(t *Thread) int64) {
	b.emit(Instr{Op: OpUnlock, Addr: l})
}

// RLock emits a shared (reader) lock acquisition.
func (b *Builder) RLock(l func(t *Thread) int64) {
	b.emit(Instr{Op: OpRLock, Addr: l})
}

// RUnlock emits a shared lock release.
func (b *Builder) RUnlock(l func(t *Thread) int64) {
	b.emit(Instr{Op: OpRUnlock, Addr: l})
}

// CondWait emits a condition-variable wait: release l, wait on cv,
// reacquire l.
func (b *Builder) CondWait(cv, l func(t *Thread) int64) {
	b.emit(Instr{Op: OpCondWait, Addr: cv, Addr2: l})
}

// CondSignal emits a condition-variable signal.
func (b *Builder) CondSignal(cv func(t *Thread) int64) {
	b.emit(Instr{Op: OpCondSignal, Addr: cv})
}

// CondBroadcast emits a condition-variable broadcast.
func (b *Builder) CondBroadcast(cv func(t *Thread) int64) {
	b.emit(Instr{Op: OpCondBroadcast, Addr: cv})
}

// Barrier emits a barrier wait.
func (b *Builder) Barrier(id func(t *Thread) int64) {
	b.emit(Instr{Op: OpBarrier, Addr: id})
}

// Syscall emits an irrevocable external operation.
func (b *Builder) Syscall(s *Syscall) {
	b.emit(Instr{Op: OpSyscall, Sys: s})
}

// Spawn emits a thread creation: the suspended thread named by target
// starts running (pthread_create).
func (b *Builder) Spawn(target func(t *Thread) int64) {
	b.emit(Instr{Op: OpSpawn, Addr: target})
}

// Join emits a wait for the named thread's exit (pthread_join).
func (b *Builder) Join(target func(t *Thread) int64) {
	b.emit(Instr{Op: OpJoin, Addr: target})
}

// Halt emits an explicit thread termination.
func (b *Builder) Halt() {
	b.emit(Instr{Op: OpHalt})
}

// AtomicAdd emits an atomic fetch-add; the new value lands in dst.
func (b *Builder) AtomicAdd(dst Reg, addr, delta func(t *Thread) int64) {
	b.emit(Instr{Op: OpAtomic, Atom: &Atomic{Kind: AtomicAdd, Addr: addr, Delta: delta, Dst: dst}})
}

// AtomicCAS emits an atomic compare-and-swap; dst receives 1 on success.
func (b *Builder) AtomicCAS(dst Reg, addr, old, new func(t *Thread) int64) {
	b.emit(Instr{Op: OpAtomic, Atom: &Atomic{Kind: AtomicCAS, Addr: addr, Old: old, New: new, Dst: dst}})
}

// AtomicExchange emits an atomic swap; dst receives the previous value.
func (b *Builder) AtomicExchange(dst Reg, addr, new func(t *Thread) int64) {
	b.emit(Instr{Op: OpAtomic, Atom: &Atomic{Kind: AtomicExchange, Addr: addr, New: new, Dst: dst}})
}

// While emits a pre-tested loop: while cond(t) { body }.
func (b *Builder) While(cond func(t *Thread) bool, body func()) {
	start := b.emit(Instr{Op: OpBranchUnless, Cond: cond})
	body()
	b.emit(Instr{Op: OpJump, Target: start})
	b.code[start].Target = len(b.code)
}

// For emits: for r = from; r < to(t); r++ { body }. The bound is
// re-evaluated each iteration.
func (b *Builder) For(r Reg, from int64, to func(t *Thread) int64, body func()) {
	b.Set(r, from)
	b.While(func(t *Thread) bool { return t.R(r) < to(t) }, func() {
		body()
		b.Do(func(t *Thread) { t.AddR(r, 1) })
	})
}

// ForN emits a loop of exactly n iterations with r counting 0..n-1.
func (b *Builder) ForN(r Reg, n int64, body func()) {
	b.For(r, 0, func(*Thread) int64 { return n }, body)
}

// If emits: if cond(t) { then }.
func (b *Builder) If(cond func(t *Thread) bool, then func()) {
	br := b.emit(Instr{Op: OpBranchUnless, Cond: cond})
	then()
	b.code[br].Target = len(b.code)
}

// IfElse emits: if cond(t) { then } else { els }.
func (b *Builder) IfElse(cond func(t *Thread) bool, then, els func()) {
	br := b.emit(Instr{Op: OpBranchUnless, Cond: cond})
	then()
	j := b.emit(Instr{Op: OpJump})
	b.code[br].Target = len(b.code)
	els()
	b.code[j].Target = len(b.code)
}

// Build finalizes the program.
func (b *Builder) Build() *Program {
	if b.built {
		panic(fmt.Sprintf("dvm: program %q built twice", b.name))
	}
	b.built = true
	return &Program{
		Name:    b.name,
		Code:    b.code,
		NumRegs: b.numRegs,
		Scratch: b.scratch,
	}
}

// Const returns an address/value closure for a compile-time constant.
func Const(v int64) func(t *Thread) int64 {
	return func(*Thread) int64 { return v }
}

// FromReg returns an address/value closure reading register r.
func FromReg(r Reg) func(t *Thread) int64 {
	return func(t *Thread) int64 { return t.R(r) }
}
