package dvm

import "fmt"

// Reg names a register allocated by a Builder.
type Reg int

// R reads register r. It is the closure-side accessor matching Builder regs.
func (t *Thread) R(r Reg) int64 { return t.Regs[r] }

// SetR writes register r.
func (t *Thread) SetR(r Reg, v int64) { t.Regs[r] = v }

// AddR adds delta to register r and returns the new value.
func (t *Thread) AddR(r Reg, delta int64) int64 {
	t.Regs[r] += delta
	return t.Regs[r]
}

// Val is one operand of an emitted instruction: the closure the interpreter
// evaluates at run time, plus whatever the builder knows about it statically
// (a compile-time constant, an address-class tag). Construct one with Const,
// FromReg or Dyn; the static half feeds internal/progcheck and never
// influences execution.
type Val struct {
	fn    func(t *Thread) int64
	known bool
	k     int64
	class string
}

// Const returns the operand for a compile-time constant. The constant is
// recorded statically, so the analyzer sees through it.
func Const(v int64) Val {
	return Val{fn: func(*Thread) int64 { return v }, known: true, k: v}
}

// FromReg returns the operand reading register r. Its value is dynamic, so
// the analyzer treats it as unknown unless tagged with InClass.
func FromReg(r Reg) Val {
	return Val{fn: func(t *Thread) int64 { return t.R(r) }}
}

// Dyn wraps an arbitrary closure as an operand. The analyzer treats it as
// unknown (the sound fallback) unless tagged with InClass.
func Dyn(f func(t *Thread) int64) Val {
	return Val{fn: f}
}

// InClass tags the operand with an address-class name: a declaration that
// every value it produces stays inside the named abstract region, and that
// operands of different classes never alias. internal/progcheck uses class
// tags to find conflicting accesses whose static locksets are disjoint; a
// wrong class declaration yields wrong reports, so tag only what is true by
// construction.
func (v Val) InClass(name string) Val {
	v.class = name
	return v
}

// Eval evaluates the operand on thread t, exactly as the interpreter would.
func (v Val) Eval(t *Thread) int64 { return v.fn(t) }

// Static returns the operand's static abstraction.
func (v Val) Static() SVal { return SVal{Known: v.known, K: v.k, Class: v.class} }

// Builder assembles a Program from structured control flow. All emit
// methods append instructions; loops and conditionals take body callbacks
// that emit into the same builder, with jump targets patched on completion.
//
// Builders are single-use: call Build exactly once.
type Builder struct {
	name    string
	code    []Instr
	numRegs int
	scratch int
	built   bool
}

// NewBuilder starts a program named name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name}
}

// Reg allocates a fresh register.
func (b *Builder) Reg() Reg {
	r := Reg(b.numRegs)
	b.numRegs++
	return r
}

// Regs allocates n fresh registers.
func (b *Builder) Regs(n int) []Reg {
	rs := make([]Reg, n)
	for i := range rs {
		rs[i] = b.Reg()
	}
	return rs
}

// Scratch reserves thread-private scratch memory of at least n words and
// returns the base offset of the reserved block.
func (b *Builder) Scratch(n int) int64 {
	base := int64(b.scratch)
	b.scratch += n
	return base
}

// emit appends an instruction and returns its index.
func (b *Builder) emit(in Instr) int {
	if in.Cost == 0 {
		in.Cost = 1
	}
	b.code = append(b.code, in)
	return len(b.code) - 1
}

// Do emits a compute instruction with DLC cost 1.
func (b *Builder) Do(f func(t *Thread)) {
	b.emit(Instr{Op: OpDo, Do: f})
}

// DoCost emits a compute instruction with an explicit DLC cost, for bodies
// that model more than one unit of work.
func (b *Builder) DoCost(cost int64, f func(t *Thread)) {
	b.emit(Instr{Op: OpDo, Cost: cost, Do: f})
}

// Set emits an instruction storing a constant into a register.
func (b *Builder) Set(r Reg, v int64) {
	b.Do(func(t *Thread) { t.SetR(r, v) })
}

// Load emits a shared-heap read into dst.
func (b *Builder) Load(dst Reg, addr Val) {
	b.emit(Instr{Op: OpLoad, Dst: int(dst), Addr: addr.fn, SAddr: addr.Static()})
}

// Store emits a shared-heap write.
func (b *Builder) Store(addr Val, val Val) {
	b.emit(Instr{Op: OpStore, Addr: addr.fn, Val: val.fn, SAddr: addr.Static(), SValue: val.Static()})
}

// Lock emits a lock acquisition.
func (b *Builder) Lock(l Val) {
	b.emit(Instr{Op: OpLock, Addr: l.fn, SAddr: l.Static()})
}

// Unlock emits a lock release.
func (b *Builder) Unlock(l Val) {
	b.emit(Instr{Op: OpUnlock, Addr: l.fn, SAddr: l.Static()})
}

// RLock emits a shared (reader) lock acquisition.
func (b *Builder) RLock(l Val) {
	b.emit(Instr{Op: OpRLock, Addr: l.fn, SAddr: l.Static()})
}

// RUnlock emits a shared lock release.
func (b *Builder) RUnlock(l Val) {
	b.emit(Instr{Op: OpRUnlock, Addr: l.fn, SAddr: l.Static()})
}

// CondWait emits a condition-variable wait: release l, wait on cv,
// reacquire l.
func (b *Builder) CondWait(cv, l Val) {
	b.emit(Instr{Op: OpCondWait, Addr: cv.fn, Addr2: l.fn, SAddr: cv.Static(), SAddr2: l.Static()})
}

// CondSignal emits a condition-variable signal.
func (b *Builder) CondSignal(cv Val) {
	b.emit(Instr{Op: OpCondSignal, Addr: cv.fn, SAddr: cv.Static()})
}

// CondBroadcast emits a condition-variable broadcast.
func (b *Builder) CondBroadcast(cv Val) {
	b.emit(Instr{Op: OpCondBroadcast, Addr: cv.fn, SAddr: cv.Static()})
}

// Barrier emits a barrier wait.
func (b *Builder) Barrier(id Val) {
	b.emit(Instr{Op: OpBarrier, Addr: id.fn, SAddr: id.Static()})
}

// Syscall emits an irrevocable external operation.
func (b *Builder) Syscall(s *Syscall) {
	b.emit(Instr{Op: OpSyscall, Sys: s})
}

// Spawn emits a thread creation: the suspended thread named by target
// starts running (pthread_create).
func (b *Builder) Spawn(target Val) {
	b.emit(Instr{Op: OpSpawn, Addr: target.fn, SAddr: target.Static()})
}

// Join emits a wait for the named thread's exit (pthread_join).
func (b *Builder) Join(target Val) {
	b.emit(Instr{Op: OpJoin, Addr: target.fn, SAddr: target.Static()})
}

// Halt emits an explicit thread termination.
func (b *Builder) Halt() {
	b.emit(Instr{Op: OpHalt})
}

// AtomicAdd emits an atomic fetch-add; the new value lands in dst.
func (b *Builder) AtomicAdd(dst Reg, addr, delta Val) {
	b.emit(Instr{Op: OpAtomic, SAddr: addr.Static(),
		Atom: &Atomic{Kind: AtomicAdd, Addr: addr.fn, Delta: delta.fn, Dst: dst}})
}

// AtomicCAS emits an atomic compare-and-swap; dst receives 1 on success.
func (b *Builder) AtomicCAS(dst Reg, addr, old, new Val) {
	b.emit(Instr{Op: OpAtomic, SAddr: addr.Static(),
		Atom: &Atomic{Kind: AtomicCAS, Addr: addr.fn, Old: old.fn, New: new.fn, Dst: dst}})
}

// AtomicExchange emits an atomic swap; dst receives the previous value.
func (b *Builder) AtomicExchange(dst Reg, addr, new Val) {
	b.emit(Instr{Op: OpAtomic, SAddr: addr.Static(),
		Atom: &Atomic{Kind: AtomicExchange, Addr: addr.fn, New: new.fn, Dst: dst}})
}

// While emits a pre-tested loop: while cond(t) { body }.
func (b *Builder) While(cond func(t *Thread) bool, body func()) {
	start := b.emit(Instr{Op: OpBranchUnless, Cond: cond})
	body()
	b.emit(Instr{Op: OpJump, Target: start})
	b.code[start].Target = len(b.code)
}

// For emits: for r = from; r < to(t); r++ { body }. The bound is
// re-evaluated each iteration.
func (b *Builder) For(r Reg, from int64, to Val, body func()) {
	b.Set(r, from)
	b.While(func(t *Thread) bool { return t.R(r) < to.fn(t) }, func() {
		body()
		b.Do(func(t *Thread) { t.AddR(r, 1) })
	})
}

// ForN emits a loop of exactly n iterations with r counting 0..n-1.
func (b *Builder) ForN(r Reg, n int64, body func()) {
	b.For(r, 0, Const(n), body)
}

// If emits: if cond(t) { then }.
func (b *Builder) If(cond func(t *Thread) bool, then func()) {
	br := b.emit(Instr{Op: OpBranchUnless, Cond: cond})
	then()
	b.code[br].Target = len(b.code)
}

// IfElse emits: if cond(t) { then } else { els }.
func (b *Builder) IfElse(cond func(t *Thread) bool, then, els func()) {
	br := b.emit(Instr{Op: OpBranchUnless, Cond: cond})
	then()
	j := b.emit(Instr{Op: OpJump})
	b.code[br].Target = len(b.code)
	els()
	b.code[j].Target = len(b.code)
}

// Build finalizes the program. Every builder program halts explicitly: if
// the emitted code could fall off the end — the last instruction is not an
// OpHalt, or a patched branch targets one past the end — Build appends a
// final OpHalt, so Validate's termination check holds by construction.
func (b *Builder) Build() *Program {
	if b.built {
		panic(fmt.Sprintf("dvm: program %q built twice", b.name))
	}
	b.built = true
	n := len(b.code)
	needHalt := n == 0 || b.code[n-1].Op != OpHalt
	if !needHalt {
		for pc := range b.code {
			in := &b.code[pc]
			if (in.Op == OpJump || in.Op == OpBranchUnless) && in.Target == n {
				needHalt = true
				break
			}
		}
	}
	if needHalt {
		b.emit(Instr{Op: OpHalt})
	}
	return &Program{
		Name:    b.name,
		Code:    b.code,
		NumRegs: b.numRegs,
		Scratch: b.scratch,
	}
}
