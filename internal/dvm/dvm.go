// Package dvm implements the deterministic thread virtual machine that
// stands in for pthreads in this reproduction.
//
// The original LazyDet interposes on pthreads programs, counts retired
// instructions for its deterministic logical clock, and rolls back failed
// speculation by restoring saved stack and register contents. Goroutines
// expose none of that: stacks cannot be snapshotted and instruction counts
// cannot be observed. The substitution (see DESIGN.md §1) is a small virtual
// machine:
//
//   - A workload is a Program per thread: a flat array of instructions with
//     explicit jumps, produced by the structured Builder in builder.go.
//   - Each simulated thread runs its program on a dedicated goroutine, so
//     execution is genuinely concurrent.
//   - Thread-local state is explicit — a register file, a private scratch
//     array, and a deterministic PRNG — so a snapshot is a plain copy and
//     rollback is a plain restore, with the program counter playing the role
//     of the saved instruction pointer.
//   - The deterministic logical clock is the weighted count of retired
//     instructions: exactly the paper's DLC, made exact.
//
// The VM itself is engine-agnostic: every memory access goes through the
// per-thread MemWindow the engine installs at thread start, every
// synchronization operation is delegated to an Engine, and the five engines
// evaluated in the paper (pthreads, Consequence, TotalOrder-Weak,
// TotalOrder-Weak-Nondet, LazyDet) are interchangeable behind those
// interfaces.
package dvm

import (
	"fmt"
	"sync"

	"lazydet/internal/dlc"
)

// Opcode identifies an instruction kind.
type Opcode uint8

const (
	// OpDo runs an arbitrary compute closure over thread-local state.
	OpDo Opcode = iota
	// OpLoad reads a heap word into a register via the engine.
	OpLoad
	// OpStore writes a heap word via the engine.
	OpStore
	// OpJump unconditionally transfers control.
	OpJump
	// OpBranchUnless transfers control when its condition is false.
	OpBranchUnless
	// OpLock acquires a lock via the engine; the speculation engine may
	// begin, extend, or terminate a speculative run here.
	OpLock
	// OpUnlock releases a lock via the engine.
	OpUnlock
	// OpRLock acquires a lock in shared (reader) mode.
	OpRLock
	// OpRUnlock releases a reader-mode acquisition.
	OpRUnlock
	// OpCondWait waits on a condition variable, releasing the given lock.
	OpCondWait
	// OpCondSignal wakes one waiter of a condition variable.
	OpCondSignal
	// OpCondBroadcast wakes all waiters of a condition variable.
	OpCondBroadcast
	// OpBarrier waits at a barrier.
	OpBarrier
	// OpSyscall performs an irrevocable external operation.
	OpSyscall
	// OpAtomic performs an atomic read-modify-write on a heap word.
	OpAtomic
	// OpSpawn starts a suspended thread (pthread_create).
	OpSpawn
	// OpJoin blocks until a thread exits (pthread_join).
	OpJoin
	// OpHalt terminates the thread.
	OpHalt

	// numOpcodes sizes per-opcode tables (retired-instruction counters,
	// lowering dispatch).
	numOpcodes = int(OpHalt) + 1
)

// opcodeNames are the short names used in telemetry keys and diagnostics.
var opcodeNames = [numOpcodes]string{
	OpDo: "do", OpLoad: "load", OpStore: "store", OpJump: "jump",
	OpBranchUnless: "branch_unless", OpLock: "lock", OpUnlock: "unlock",
	OpRLock: "rlock", OpRUnlock: "runlock", OpCondWait: "cond_wait",
	OpCondSignal: "cond_signal", OpCondBroadcast: "cond_broadcast",
	OpBarrier: "barrier", OpSyscall: "syscall", OpAtomic: "atomic",
	OpSpawn: "spawn", OpJoin: "join", OpHalt: "halt",
}

// String returns the opcode's short name (used in telemetry counter keys
// like "dvm.retired.lock").
func (o Opcode) String() string {
	if int(o) < len(opcodeNames) {
		return opcodeNames[o]
	}
	return fmt.Sprintf("op%d", int(o))
}

// NumOpcodes returns the number of defined opcodes; RetiredCounts slices
// have this length, indexed by Opcode.
func NumOpcodes() int { return numOpcodes }

// AtomicKind selects the read-modify-write operation of OpAtomic.
type AtomicKind uint8

const (
	// AtomicAdd atomically adds Delta and yields the new value.
	AtomicAdd AtomicKind = iota
	// AtomicCAS compares against Old and swaps in New on match,
	// yielding 1 on success and 0 on failure.
	AtomicCAS
	// AtomicExchange swaps in New and yields the previous value.
	AtomicExchange
)

// Atomic describes one OpAtomic instruction. The address and operands are
// evaluated on the executing thread; the result lands in register Dst.
type Atomic struct {
	Kind  AtomicKind
	Addr  func(t *Thread) int64
	Delta func(t *Thread) int64 // AtomicAdd
	Old   func(t *Thread) int64 // AtomicCAS
	New   func(t *Thread) int64 // AtomicCAS / AtomicExchange
	Dst   Reg
}

// Apply computes the read-modify-write against the given current value,
// returning the stored value and the result for Dst. It is shared by every
// engine, so atomic semantics cannot diverge between them.
func (a *Atomic) Apply(t *Thread, cur int64) (store, result int64) {
	switch a.Kind {
	case AtomicAdd:
		nv := cur + a.Delta(t)
		return nv, nv
	case AtomicCAS:
		if cur == a.Old(t) {
			return a.New(t), 1
		}
		return cur, 0
	case AtomicExchange:
		return a.New(t), cur
	default:
		panic(fmt.Sprintf("dvm: unknown atomic kind %d", a.Kind))
	}
}

// Syscall describes an irrevocable external operation: Work units of
// simulated kernel time plus an optional effect executed exactly once.
type Syscall struct {
	// Name labels the syscall in traces (e.g. "mmap").
	Name string
	// Work is the simulated cost in busy-loop units.
	Work int
	// Effect, if non-nil, runs exactly once when the syscall executes.
	// It must not touch engine-mediated state.
	Effect func(t *Thread)
}

// SVal is the static abstraction of one operand closure: what the builder
// knew about the operand at emit time. The closures of Instr are opaque at
// analysis time, so the builder records the knowledge it does have — a
// compile-time constant (dvm.Const) or an address-class tag — and the static
// analyzer (internal/progcheck) treats everything else as unknown, its sound
// fallback. SVal never influences execution.
type SVal struct {
	// Known reports that the operand is the compile-time constant K.
	Known bool
	// K is the constant value when Known.
	K int64
	// Class optionally names the address class (abstract memory region)
	// the operand draws from, for static race candidate detection. Two
	// accesses may alias iff they share a class or a known constant.
	Class string
}

// Instr is a single VM instruction. Instruction closures must be
// deterministic functions of thread-local state and engine-mediated loads;
// they run concurrently across threads and must not share mutable Go state.
type Instr struct {
	Op     Opcode
	Cost   int64                 // DLC weight; defaults to 1 via the builder
	Do     func(t *Thread)       // OpDo body
	Cond   func(t *Thread) bool  // OpBranchUnless condition
	Target int                   // OpJump / OpBranchUnless destination
	Addr   func(t *Thread) int64 // address for load/store/lock/unlock/cond/barrier
	Addr2  func(t *Thread) int64 // second address (the mutex of OpCondWait)
	Val    func(t *Thread) int64 // OpStore value
	Dst    int                   // OpLoad destination register
	Sys    *Syscall              // OpSyscall payload
	Atom   *Atomic               // OpAtomic payload

	// SAddr and SAddr2 carry the builder's static knowledge of Addr and
	// Addr2 (internal/progcheck input); the zero value means unknown.
	SAddr  SVal
	SAddr2 SVal
	// SValue carries the builder's static knowledge of Val, the stored
	// value of OpStore. The footprint analysis uses it to recognize
	// commuting constant stores (two sections writing the same constant
	// to the same address are order-independent). Zero value means
	// unknown; never influences execution.
	SValue SVal
}

// Program is an immutable instruction sequence plus the register and scratch
// file sizes its threads need.
type Program struct {
	Name    string
	Code    []Instr
	NumRegs int
	Scratch int
	// StartSuspended threads do not run until another thread spawns them
	// (the pthread_create model). Every suspended thread must be spawned
	// exactly once, or the run deadlocks (deterministically).
	StartSuspended bool
}

// MemWindow is a thread's window onto shared memory: the VM's load and
// store instructions dispatch straight to it, with no per-access engine
// hook in between. The engine installs it in ThreadStart (Thread.Mem) and
// drives its publication lifecycle — commit, refresh, revert — from the
// synchronization hooks; the window itself only needs to answer reads and
// accept writes. internal/mempipe provides the implementations.
type MemWindow interface {
	// Load reads a shared-heap word through the window.
	Load(addr int64) int64
	// Store writes a shared-heap word through the window.
	Store(addr, val int64)
}

// Engine mediates every synchronization operation; plain memory accesses go
// through the Thread.Mem window the engine installs at thread start.
// Hooks run on the calling thread's goroutine. A hook may block (waiting for
// the deterministic turn) and, in the speculation engine, may restore the
// thread's snapshot — the interpreter simply continues from whatever PC the
// hook leaves behind.
type Engine interface {
	// Name returns the engine's short name for reports.
	Name() string
	// Deterministic reports whether two runs must produce identical
	// sync-order traces and heaps.
	Deterministic() bool
	// ThreadStart runs before the thread's first instruction. The engine
	// must set t.Mem here.
	ThreadStart(t *Thread)
	// ThreadExit runs after the thread halts; engines commit outstanding
	// speculation and leave turn arbitration here. It returns false if it
	// rewound the thread (a speculation revert at exit), in which case the
	// interpreter resumes execution and will call ThreadExit again.
	ThreadExit(t *Thread) bool
	// Tick charges cost to the thread's logical clock.
	Tick(t *Thread, cost int64)
	// Lock acquires lock l exclusively.
	Lock(t *Thread, l int64)
	// Unlock releases an exclusive acquisition of l.
	Unlock(t *Thread, l int64)
	// RLock acquires lock l in shared (reader) mode.
	RLock(t *Thread, l int64)
	// RUnlock releases a shared acquisition of l.
	RUnlock(t *Thread, l int64)
	// CondWait atomically releases lock l and waits on condition cv,
	// reacquiring l before returning.
	CondWait(t *Thread, cv, l int64)
	// CondSignal wakes at most one waiter of cv.
	CondSignal(t *Thread, cv int64)
	// CondBroadcast wakes all waiters of cv.
	CondBroadcast(t *Thread, cv int64)
	// BarrierWait blocks until all participants of barrier b arrive.
	BarrierWait(t *Thread, b int64)
	// Syscall performs an irrevocable external operation.
	Syscall(t *Thread, s *Syscall)
	// Atomic performs an atomic read-modify-write, returning the value
	// for the destination register.
	Atomic(t *Thread, a *Atomic) int64
	// Spawn starts the suspended thread target (pthread_create).
	Spawn(t *Thread, target int)
	// Join blocks until thread target exits (pthread_join).
	Join(t *Thread, target int)
}

// Thread is one simulated thread's complete mutable state.
type Thread struct {
	// ID is the thread's index, 0..N-1. It is stable across the run and
	// used for deterministic tie-breaking.
	ID int
	// PC is the index of the next instruction to execute.
	PC int
	// Regs is the register file.
	Regs []int64
	// Scratch is thread-private memory (never shared, never isolated).
	Scratch []int64
	// Mem is the thread's window onto shared memory, installed by the
	// engine in ThreadStart. OpLoad and OpStore dispatch to it directly.
	Mem MemWindow
	// Clock, when installed by the engine in ThreadStart, reads this
	// thread's deterministic logical clock (DLC). Operand closures use it
	// to stamp values in logical time — the basis of internal/opensim's
	// schedule-stable latency measurements. The published clock advances
	// at tick-batch flush points, which both backends place identically,
	// so a stamp read mid-stream is the same value under the interpreter
	// and the threaded-code backend. Nil on engines without a logical
	// clock (pthreads); programs that stamp must check.
	Clock func() int64

	rng    uint64 // deterministic per-thread PRNG state; part of snapshots
	halted bool

	// retired, when non-nil, counts executed instructions per opcode —
	// including re-executions after speculation reverts, so the counts are
	// the exact per-opcode decomposition of the retired-instruction stream
	// that feeds the DLC. Engines enable it (EnableRetiredCounts) when
	// telemetry is recording; nil keeps the dispatch loop branch-free of
	// counter updates beyond one nil compare.
	retired []int64

	prog *Program
	eng  Engine
	grp  *Group

	// EngineData carries per-thread engine state (views, speculation
	// logs). It is opaque to the VM.
	EngineData any
}

// Group is the run-wide thread registry, giving engines access to start
// and completion signals for spawn/join.
type Group struct {
	start []chan struct{}
	done  []chan struct{}
}

// StartThread releases suspended thread target. Spawning a thread twice,
// or spawning one that was not marked StartSuspended, is a loud error.
func (g *Group) StartThread(target int) {
	//lazydet:nondeterministic non-blocking closed-check on a close-once channel; both cases are mutually exclusive by channel state
	select {
	case <-g.start[target]:
		panic(fmt.Sprintf("dvm: thread %d spawned twice or not marked StartSuspended", target))
	default:
		close(g.start[target])
	}
}

// Done returns a channel closed when thread target has fully exited.
func (g *Group) Done(target int) <-chan struct{} { return g.done[target] }

// Group returns the thread's run group.
func (t *Thread) Group() *Group { return t.grp }

// Prog returns the program the thread runs.
func (t *Thread) Prog() *Program { return t.prog }

// Halt stops the thread after the current instruction.
func (t *Thread) Halt() { t.halted = true }

// EnableRetiredCounts turns on per-opcode retired-instruction counting for
// the thread. Call it from Engine.ThreadStart (before the first
// instruction); the counts are deterministic because the instruction stream
// is.
func (t *Thread) EnableRetiredCounts() {
	if t.retired == nil {
		t.retired = make([]int64, numOpcodes)
	}
}

// RetiredCounts returns the per-opcode executed-instruction counts (indexed
// by Opcode), or nil when counting was not enabled.
func (t *Thread) RetiredCounts() []int64 { return t.retired }

// Rand returns the next value of the thread's deterministic PRNG
// (xorshift64*). The state is part of snapshots, so replayed code re-draws
// identical values.
func (t *Thread) Rand() uint64 {
	x := t.rng
	x ^= x >> 12
	x ^= x << 25
	x ^= x >> 27
	t.rng = x
	return x * 0x2545F4914F6CDD1D
}

// RandN returns a deterministic pseudo-random value in [0, n).
func (t *Thread) RandN(n int64) int64 {
	if n <= 0 {
		panic("dvm: RandN with non-positive bound")
	}
	return int64(t.Rand() % uint64(n))
}

// Snapshot is a copy of all thread-local state needed to restart execution
// from a speculation begin point: the VM analogue of the paper's saved stack
// and register contents.
type Snapshot struct {
	PC      int
	Regs    []int64
	Scratch []int64
	RNG     uint64
}

// Snapshot captures the thread state with the PC rewound to the instruction
// currently executing (speculation always begins at a lock acquisition; on
// restore the acquisition re-executes, this time non-speculatively).
func (t *Thread) Snapshot() *Snapshot { return t.SnapshotInto(nil) }

// SnapshotInto captures the thread state into s, reusing its register and
// scratch buffers; a nil s allocates a fresh snapshot. The returned snapshot
// is s (or the fresh one). The speculation engine keeps one snapshot per
// thread and recycles it across runs, so steady-state BEGINs allocate
// nothing.
func (t *Thread) SnapshotInto(s *Snapshot) *Snapshot {
	if s == nil {
		s = new(Snapshot)
	}
	s.PC = t.PC - 1
	s.RNG = t.rng
	if cap(s.Regs) < len(t.Regs) {
		s.Regs = make([]int64, len(t.Regs))
	} else {
		s.Regs = s.Regs[:len(t.Regs)]
	}
	copy(s.Regs, t.Regs)
	if len(t.Scratch) == 0 {
		s.Scratch = s.Scratch[:0]
	} else if cap(s.Scratch) < len(t.Scratch) {
		s.Scratch = make([]int64, len(t.Scratch))
	} else {
		s.Scratch = s.Scratch[:len(t.Scratch)]
	}
	copy(s.Scratch, t.Scratch)
	return s
}

// Restore rewinds the thread to a snapshot. The heap view is reverted
// separately by the engine. Restore clears any halt, since snapshots are
// always taken before the thread could have halted.
func (t *Thread) Restore(s *Snapshot) {
	t.PC = s.PC
	copy(t.Regs, s.Regs)
	copy(t.Scratch, s.Scratch)
	t.rng = s.RNG
	t.halted = false
}

// MatchesSnapshot verifies that the thread's restartable state — PC,
// registers, scratch and PRNG — equals the snapshot, returning a description
// of the first mismatch or nil. The invariant checker uses it to prove that
// a speculation revert restored the thread exactly to its BEGIN state.
func (t *Thread) MatchesSnapshot(s *Snapshot) error {
	if t.PC != s.PC {
		return fmt.Errorf("dvm: PC %d differs from snapshot PC %d", t.PC, s.PC)
	}
	if t.rng != s.RNG {
		return fmt.Errorf("dvm: PRNG state %#x differs from snapshot %#x", t.rng, s.RNG)
	}
	for i, r := range s.Regs {
		if t.Regs[i] != r {
			return fmt.Errorf("dvm: register %d = %d differs from snapshot %d", i, t.Regs[i], r)
		}
	}
	for i, w := range s.Scratch {
		if t.Scratch[i] != w {
			return fmt.Errorf("dvm: scratch word %d = %d differs from snapshot %d", i, t.Scratch[i], w)
		}
	}
	return nil
}

// Exec is one execution backend for validated programs: the interpreter
// (Interp) or the threaded-code backend (Compile). Implementations must be
// safe for concurrent use by multiple threads running the same program —
// they hold only immutable per-program data, never per-thread state. The
// interface is sealed: an execution backend participates in the VM's tick
// batching and revert protocol, whose invariants (see Compile) outside
// packages cannot uphold.
type Exec interface {
	// run executes the thread's program until it halts. It must be
	// resumable: after an engine revert at thread exit, run is called
	// again with the PC the engine restored.
	run(t *Thread)
}

// interp is the switch-dispatch Exec backend: Thread.runInterp.
type interp struct{}

func (interp) run(t *Thread) { t.runInterp() }

// Interp returns the interpreter backend — the differential oracle the
// compiled backend is checked against.
func Interp() Exec { return interp{} }

// runInterp interprets the thread's program to completion.
//
// Retired-instruction cost is not ticked into the engine per instruction:
// local instructions accumulate their cost thread-locally and flush every
// dlc.TickWindow instructions, while engine (synchronization) operations
// flush the pending batch first — so the thread's published clock is exact
// at every synchronization point and the deterministic schedule is
// bit-identical to per-instruction ticking (see dlc.TickWindow) — and then
// charge their own cost immediately, exactly as before. A speculation
// revert can only happen inside an engine operation, where the pending
// batch is always zero, so rewinding the PC never double-charges or loses
// accumulated cost.
//
// The loop has exactly one exit protocol: the thread halts (OpHalt, a Do
// closure calling Halt, or the PC running off the end of the code — the
// latter possible only for hand-built unvalidated programs, and treated as
// an implicit halt), and then the tail batch flushes. Both exit paths are
// deliberately identical: ThreadExit must always observe a published clock
// and t.halted set, whichever way the program ended.
func (t *Thread) runInterp() {
	code := t.prog.Code
	eng := t.eng
	var pend int64 // local-instruction cost accumulated since the last flush
	steps := 0     // local instructions accumulated since the last flush
	for !t.halted {
		if t.PC >= len(code) {
			t.halted = true // off-the-end exit halts exactly like OpHalt
			break
		}
		in := &code[t.PC]
		t.PC++
		if t.retired != nil {
			t.retired[in.Op]++
		}
		switch in.Op {
		case OpDo:
			in.Do(t)
		case OpLoad:
			t.Regs[in.Dst] = t.Mem.Load(in.Addr(t))
		case OpStore:
			t.Mem.Store(in.Addr(t), in.Val(t))
		case OpJump:
			t.PC = in.Target
		case OpBranchUnless:
			if !in.Cond(t) {
				t.PC = in.Target
			}
		case OpHalt:
			t.halted = true
		default:
			// Engine operation: publish the exact clock before the engine
			// observes or orders anything, then charge the operation's own
			// cost as per-instruction ticking did.
			if pend != 0 {
				eng.Tick(t, pend)
			}
			pend, steps = 0, 0
			switch in.Op {
			case OpLock:
				eng.Lock(t, in.Addr(t))
			case OpUnlock:
				eng.Unlock(t, in.Addr(t))
			case OpRLock:
				eng.RLock(t, in.Addr(t))
			case OpRUnlock:
				eng.RUnlock(t, in.Addr(t))
			case OpCondWait:
				eng.CondWait(t, in.Addr(t), in.Addr2(t))
			case OpCondSignal:
				eng.CondSignal(t, in.Addr(t))
			case OpCondBroadcast:
				eng.CondBroadcast(t, in.Addr(t))
			case OpBarrier:
				eng.BarrierWait(t, in.Addr(t))
			case OpSyscall:
				eng.Syscall(t, in.Sys)
			case OpAtomic:
				t.Regs[in.Atom.Dst] = eng.Atomic(t, in.Atom)
			case OpSpawn:
				eng.Spawn(t, int(in.Addr(t)))
			case OpJoin:
				eng.Join(t, int(in.Addr(t)))
			default:
				panic(fmt.Sprintf("dvm: unknown opcode %d", in.Op))
			}
			eng.Tick(t, in.Cost)
			continue
		}
		pend += in.Cost
		steps++
		if steps >= dlc.TickWindow {
			eng.Tick(t, pend)
			pend, steps = 0, 0
		}
	}
	// Publish the tail batch before ThreadExit takes its final turn.
	if pend != 0 {
		eng.Tick(t, pend)
	}
}

// RunOption configures Run.
type RunOption func(*runConfig)

type runConfig struct {
	execs   []Exec
	compile bool
}

// WithExecs supplies one pre-built execution backend per thread (index i
// runs thread i). Nil entries fall back to the interpreter. The harness
// uses this to pass pre-compiled programs so it can time and deduplicate
// compilation itself.
func WithExecs(execs []Exec) RunOption {
	return func(c *runConfig) { c.execs = execs }
}

// WithCompiledPrograms makes Run lower every program to the threaded-code
// backend (Compile), deduplicating identical *Program values. The programs
// must be valid (Program.Validate); a compile failure panics, since it can
// only mean an unvalidated program reached Run.
func WithCompiledPrograms() RunOption {
	return func(c *runConfig) { c.compile = true }
}

// Run executes one program per thread under the given engine and blocks
// until every thread exits. Thread i runs progs[i] with ID i. Threads whose
// program is marked StartSuspended wait (registered with the engine, so
// they do not block deterministic turn arbitration) until spawned.
func Run(eng Engine, progs []*Program, opts ...RunOption) {
	var cfg runConfig
	for _, o := range opts {
		o(&cfg)
	}
	execs := cfg.execs
	if cfg.compile && execs == nil {
		execs = make([]Exec, len(progs))
		cache := make(map[*Program]*Compiled, 1)
		for i, p := range progs {
			c := cache[p]
			if c == nil {
				var err error
				if c, err = Compile(p); err != nil {
					panic(fmt.Sprintf("dvm: WithCompiledPrograms on invalid program: %v", err))
				}
				cache[p] = c
			}
			execs[i] = c
		}
	}
	grp := &Group{
		start: make([]chan struct{}, len(progs)),
		done:  make([]chan struct{}, len(progs)),
	}
	threads := make([]*Thread, len(progs))
	for i, p := range progs {
		grp.start[i] = make(chan struct{})
		grp.done[i] = make(chan struct{})
		threads[i] = &Thread{
			ID:      i,
			Regs:    make([]int64, p.NumRegs),
			Scratch: make([]int64, p.Scratch),
			rng:     uint64(i)*0x9E3779B97F4A7C15 + 0x853C49E6748FEA9B,
			prog:    p,
			eng:     eng,
			grp:     grp,
		}
		if !p.StartSuspended {
			close(grp.start[i])
		}
	}
	var wg sync.WaitGroup
	wg.Add(len(threads))
	for i, t := range threads {
		x := Exec(interp{})
		if execs != nil && execs[i] != nil {
			x = execs[i]
		}
		go func(t *Thread, x Exec) {
			defer wg.Done()
			defer close(t.grp.done[t.ID])
			t.eng.ThreadStart(t)
			<-t.grp.start[t.ID]
			if t.prog.StartSuspended {
				// The spawner published its memory before releasing
				// us; let the engine refresh this thread's state (the
				// acquire half of pthread_create's happens-before).
				if r, ok := t.eng.(interface{ ThreadResume(*Thread) }); ok {
					r.ThreadResume(t)
				}
			}
			for {
				x.run(t)
				if t.eng.ThreadExit(t) {
					return
				}
			}
		}(t, x)
	}
	wg.Wait()
}
