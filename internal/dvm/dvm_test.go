package dvm

import (
	"sync"
	"testing"
	"testing/quick"
)

// nullEngine executes programs over a plain shared array with a global
// mutex per lock — just enough engine to unit-test the VM itself.
type nullEngine struct {
	mem   []int64
	memMu sync.Mutex
	locks []sync.Mutex
	ticks map[int]int64
	tickM sync.Mutex
}

func newNullEngine(words, locks int) *nullEngine {
	return &nullEngine{mem: make([]int64, words), locks: make([]sync.Mutex, locks), ticks: map[int]int64{}}
}

func (e *nullEngine) Name() string            { return "null" }
func (e *nullEngine) Deterministic() bool     { return false }
func (e *nullEngine) ThreadStart(t *Thread)   { t.Mem = e } // the engine is its own MemWindow
func (e *nullEngine) ThreadExit(*Thread) bool { return true }
func (e *nullEngine) Tick(t *Thread, cost int64) {
	e.tickM.Lock()
	e.ticks[t.ID] += cost
	e.tickM.Unlock()
}
func (e *nullEngine) Load(a int64) int64 {
	e.memMu.Lock()
	defer e.memMu.Unlock()
	return e.mem[a]
}
func (e *nullEngine) Store(a, v int64) {
	e.memMu.Lock()
	e.mem[a] = v
	e.memMu.Unlock()
}
func (e *nullEngine) Lock(_ *Thread, l int64)        { e.locks[l].Lock() }
func (e *nullEngine) Unlock(_ *Thread, l int64)      { e.locks[l].Unlock() }
func (e *nullEngine) RLock(_ *Thread, l int64)       { e.locks[l].Lock() }
func (e *nullEngine) RUnlock(_ *Thread, l int64)     { e.locks[l].Unlock() }
func (e *nullEngine) CondWait(*Thread, int64, int64) {}
func (e *nullEngine) CondSignal(*Thread, int64)      {}
func (e *nullEngine) CondBroadcast(*Thread, int64)   {}
func (e *nullEngine) BarrierWait(*Thread, int64)     {}
func (e *nullEngine) Syscall(t *Thread, s *Syscall) {
	if s.Effect != nil {
		s.Effect(t)
	}
}
func (e *nullEngine) Spawn(t *Thread, target int) { t.Group().StartThread(target) }
func (e *nullEngine) Join(t *Thread, target int)  { <-t.Group().Done(target) }
func (e *nullEngine) Atomic(t *Thread, a *Atomic) int64 {
	e.memMu.Lock()
	defer e.memMu.Unlock()
	addr := a.Addr(t)
	store, result := a.Apply(t, e.mem[addr])
	e.mem[addr] = store
	return result
}

func TestBuilderSequentialCompute(t *testing.T) {
	b := NewBuilder("seq")
	x := b.Reg()
	b.Set(x, 5)
	b.Do(func(th *Thread) { th.SetR(x, th.R(x)*3) })
	b.Store(Const(0), FromReg(x))
	p := b.Build()

	e := newNullEngine(8, 1)
	Run(e, []*Program{p})
	if got := e.mem[0]; got != 15 {
		t.Fatalf("mem[0] = %d, want 15", got)
	}
}

func TestBuilderForLoop(t *testing.T) {
	b := NewBuilder("loop")
	i := b.Reg()
	sum := b.Reg()
	b.ForN(i, 10, func() {
		b.Do(func(th *Thread) { th.AddR(sum, th.R(i)) })
	})
	b.Store(Const(0), FromReg(sum))
	p := b.Build()
	e := newNullEngine(1, 1)
	Run(e, []*Program{p})
	if got := e.mem[0]; got != 45 {
		t.Fatalf("sum = %d, want 45", got)
	}
}

func TestBuilderWhileAndIf(t *testing.T) {
	b := NewBuilder("collatz")
	n := b.Reg()
	steps := b.Reg()
	b.Set(n, 27)
	b.While(func(th *Thread) bool { return th.R(n) != 1 }, func() {
		b.IfElse(func(th *Thread) bool { return th.R(n)%2 == 0 },
			func() { b.Do(func(th *Thread) { th.SetR(n, th.R(n)/2) }) },
			func() { b.Do(func(th *Thread) { th.SetR(n, 3*th.R(n)+1) }) },
		)
		b.Do(func(th *Thread) { th.AddR(steps, 1) })
	})
	b.Store(Const(0), FromReg(steps))
	p := b.Build()
	e := newNullEngine(1, 1)
	Run(e, []*Program{p})
	if got := e.mem[0]; got != 111 {
		t.Fatalf("collatz(27) steps = %d, want 111", got)
	}
}

func TestBuilderNestedLoops(t *testing.T) {
	b := NewBuilder("nested")
	i, j, c := b.Reg(), b.Reg(), b.Reg()
	b.ForN(i, 7, func() {
		b.ForN(j, 11, func() {
			b.Do(func(th *Thread) { th.AddR(c, 1) })
		})
	})
	b.Store(Const(0), FromReg(c))
	e := newNullEngine(1, 1)
	Run(e, []*Program{b.Build()})
	if got := e.mem[0]; got != 77 {
		t.Fatalf("count = %d, want 77", got)
	}
}

func TestHaltStopsProgram(t *testing.T) {
	b := NewBuilder("halt")
	b.Store(Const(0), Const(1))
	b.Halt()
	b.Store(Const(0), Const(2))
	e := newNullEngine(1, 1)
	Run(e, []*Program{b.Build()})
	if got := e.mem[0]; got != 1 {
		t.Fatalf("mem[0] = %d, want 1 (Halt must stop the thread)", got)
	}
}

func TestScratchIsThreadPrivate(t *testing.T) {
	b := NewBuilder("scratch")
	base := b.Scratch(4)
	b.Do(func(th *Thread) { th.Scratch[base] = int64(th.ID) + 100 })
	b.Store(Dyn(func(th *Thread) int64 { return int64(th.ID) }), Dyn(func(th *Thread) int64 { return th.Scratch[base] }))
	p := b.Build()
	e := newNullEngine(4, 1)
	Run(e, []*Program{p, p, p})
	for id := int64(0); id < 3; id++ {
		if got := e.mem[id]; got != id+100 {
			t.Fatalf("mem[%d] = %d, want %d", id, got, id+100)
		}
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	th := &Thread{ID: 1, PC: 10, Regs: []int64{1, 2, 3}, Scratch: []int64{7}, rng: 99}
	th.PC++ // emulate the interpreter's post-fetch increment
	s := th.Snapshot()
	if s.PC != 10 {
		t.Fatalf("snapshot PC = %d, want 10 (rewound to the executing instruction)", s.PC)
	}
	th.Regs[0] = 100
	th.Scratch[0] = 200
	th.rng = 1
	th.PC = 42
	th.halted = true
	th.Restore(s)
	if th.PC != 10 || th.Regs[0] != 1 || th.Scratch[0] != 7 || th.rng != 99 {
		t.Fatalf("restore did not round-trip: %+v", th)
	}
	if th.halted {
		t.Fatal("restore must clear halt")
	}
}

func TestRandDeterministicPerThread(t *testing.T) {
	a := &Thread{ID: 3, rng: 12345}
	b := &Thread{ID: 3, rng: 12345}
	for i := 0; i < 100; i++ {
		if a.Rand() != b.Rand() {
			t.Fatal("identical PRNG states diverged")
		}
	}
	if a.RandN(10) < 0 || a.RandN(10) >= 10 {
		t.Fatal("RandN out of range")
	}
}

func TestRandSurvivesSnapshot(t *testing.T) {
	th := &Thread{ID: 0, rng: 777, Regs: []int64{}, PC: 1}
	s := th.Snapshot()
	first := th.Rand()
	th.Restore(s)
	if again := th.Rand(); again != first {
		t.Fatalf("PRNG not restored: %d vs %d", first, again)
	}
}

func TestTickCostsCharged(t *testing.T) {
	b := NewBuilder("costs")
	b.DoCost(5, func(*Thread) {})
	b.Do(func(*Thread) {})
	e := newNullEngine(1, 1)
	Run(e, []*Program{b.Build()})
	// 5 + 1 for the two Do instructions, + 1 for the implicit OpHalt that
	// Build appends.
	if got := e.ticks[0]; got != 7 {
		t.Fatalf("ticks = %d, want 7", got)
	}
}

func TestMultiThreadLocking(t *testing.T) {
	// Classic lost-update check: with a lock, N threads × K increments
	// must all survive even on the null engine.
	const n, k = 4, 200
	b := NewBuilder("inc")
	i := b.Reg()
	v := b.Reg()
	b.ForN(i, k, func() {
		b.Lock(Const(0))
		b.Load(v, Const(0))
		b.Store(Const(0), Dyn(func(th *Thread) int64 { return th.R(v) + 1 }))
		b.Unlock(Const(0))
	})
	p := b.Build()
	progs := make([]*Program, n)
	for j := range progs {
		progs[j] = p
	}
	e := newNullEngine(1, 1)
	Run(e, progs)
	if got := e.mem[0]; got != n*k {
		t.Fatalf("counter = %d, want %d", got, n*k)
	}
}

// TestQuickLoopIterations property: ForN(i, n) runs its body exactly n
// times for arbitrary small n.
func TestQuickLoopIterations(t *testing.T) {
	f := func(n uint8) bool {
		b := NewBuilder("q")
		i, c := b.Reg(), b.Reg()
		b.ForN(i, int64(n), func() {
			b.Do(func(th *Thread) { th.AddR(c, 1) })
		})
		b.Store(Const(0), FromReg(c))
		e := newNullEngine(1, 1)
		Run(e, []*Program{b.Build()})
		return e.mem[0] == int64(n)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBuildTwicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("second Build must panic")
		}
	}()
	b := NewBuilder("x")
	b.Build()
	b.Build()
}
