// Package direct implements the nondeterministic pthreads baseline: plain
// mutexes, condition variables and barriers over non-isolated shared memory.
// Every result in the paper's evaluation is normalized to this engine's
// runtime on the same program.
package direct

import (
	"sync"
	"time"

	"lazydet/internal/dvm"
	"lazydet/internal/mempipe"
	"lazydet/internal/shmem"
	"lazydet/internal/stats"
)

// Engine is the pthreads-equivalent runtime.
type Engine struct {
	mem      *shmem.Mem // kept for hardware atomics
	pipe     mempipe.Pipeline
	locks    []sync.RWMutex
	conds    []cond
	barriers []barrier

	// Counter, if non-nil, records per-lock acquisitions (Table 1).
	Counter *stats.LockCounter
	// Times, if non-nil, records per-thread blocked time (Figure 10).
	Times *stats.Times
}

type cond struct {
	mu      sync.Mutex
	waiters []chan struct{}
}

type barrier struct {
	mu      sync.Mutex
	parties int
	arrived int
	waiters []chan struct{}
}

// New creates a pthreads-style engine over mem with the given numbers of
// synchronization objects. Barriers span all nthreads threads.
func New(mem *shmem.Mem, nthreads, nlocks, nconds, nbarriers int) *Engine {
	e := &Engine{
		mem:      mem,
		pipe:     mempipe.NewFlat(mem),
		locks:    make([]sync.RWMutex, nlocks),
		conds:    make([]cond, nconds),
		barriers: make([]barrier, nbarriers),
	}
	for i := range e.barriers {
		e.barriers[i].parties = nthreads
	}
	return e
}

// Name implements dvm.Engine.
func (e *Engine) Name() string { return "pthreads" }

// Deterministic implements dvm.Engine: the baseline makes no determinism
// guarantee.
func (e *Engine) Deterministic() bool { return false }

// ThreadStart implements dvm.Engine: install the thread's flat memory
// window. The baseline shares the same pipeline layer as the deterministic
// engines; its windows just write straight through.
func (e *Engine) ThreadStart(t *dvm.Thread) { t.Mem = e.pipe.NewThread(t.ID) }

// ThreadExit implements dvm.Engine.
func (e *Engine) ThreadExit(*dvm.Thread) bool { return true }

// Tick implements dvm.Engine; the baseline keeps no logical clock.
func (e *Engine) Tick(*dvm.Thread, int64) {}

// Lock implements dvm.Engine.
func (e *Engine) Lock(t *dvm.Thread, l int64) {
	if e.Times == nil {
		e.locks[l].Lock()
	} else {
		start := time.Now()
		e.locks[l].Lock()
		e.Times.AddBlocked(t.ID, time.Since(start).Nanoseconds())
	}
	e.Counter.Inc(l)
}

// Unlock implements dvm.Engine.
func (e *Engine) Unlock(_ *dvm.Thread, l int64) { e.locks[l].Unlock() }

// RLock implements dvm.Engine.
func (e *Engine) RLock(t *dvm.Thread, l int64) {
	if e.Times == nil {
		e.locks[l].RLock()
	} else {
		start := time.Now()
		e.locks[l].RLock()
		e.Times.AddBlocked(t.ID, time.Since(start).Nanoseconds())
	}
	e.Counter.Inc(l)
}

// RUnlock implements dvm.Engine.
func (e *Engine) RUnlock(_ *dvm.Thread, l int64) { e.locks[l].RUnlock() }

// CondWait implements dvm.Engine: release l, wait on cv, reacquire l.
func (e *Engine) CondWait(t *dvm.Thread, cv, l int64) {
	c := &e.conds[cv]
	ch := make(chan struct{})
	c.mu.Lock()
	c.waiters = append(c.waiters, ch)
	c.mu.Unlock()
	e.locks[l].Unlock()
	start := time.Now()
	<-ch
	if e.Times != nil {
		e.Times.AddBlocked(t.ID, time.Since(start).Nanoseconds())
	}
	e.Lock(t, l)
}

// CondSignal implements dvm.Engine.
func (e *Engine) CondSignal(_ *dvm.Thread, cv int64) {
	c := &e.conds[cv]
	c.mu.Lock()
	if len(c.waiters) > 0 {
		close(c.waiters[0])
		c.waiters = c.waiters[1:]
	}
	c.mu.Unlock()
}

// CondBroadcast implements dvm.Engine.
func (e *Engine) CondBroadcast(_ *dvm.Thread, cv int64) {
	c := &e.conds[cv]
	c.mu.Lock()
	for _, ch := range c.waiters {
		close(ch)
	}
	c.waiters = nil
	c.mu.Unlock()
}

// BarrierWait implements dvm.Engine.
func (e *Engine) BarrierWait(t *dvm.Thread, bid int64) {
	b := &e.barriers[bid]
	b.mu.Lock()
	b.arrived++
	if b.arrived == b.parties {
		for _, ch := range b.waiters {
			close(ch)
		}
		b.waiters = nil
		b.arrived = 0
		b.mu.Unlock()
		return
	}
	ch := make(chan struct{})
	b.waiters = append(b.waiters, ch)
	b.mu.Unlock()
	start := time.Now()
	<-ch
	if e.Times != nil {
		e.Times.AddBlocked(t.ID, time.Since(start).Nanoseconds())
	}
}

// Syscall implements dvm.Engine: perform the simulated kernel work and the
// effect immediately.
func (e *Engine) Syscall(t *dvm.Thread, s *dvm.Syscall) {
	dvm.Burn(s.Work)
	if s.Effect != nil {
		s.Effect(t)
	}
}

// Spawn implements dvm.Engine.
func (e *Engine) Spawn(t *dvm.Thread, target int) {
	t.Group().StartThread(target)
}

// Join implements dvm.Engine.
func (e *Engine) Join(t *dvm.Thread, target int) {
	if e.Times == nil {
		<-t.Group().Done(target)
		return
	}
	start := time.Now()
	<-t.Group().Done(target)
	e.Times.AddBlocked(t.ID, time.Since(start).Nanoseconds())
}

// Atomic implements dvm.Engine with hardware atomics.
func (e *Engine) Atomic(t *dvm.Thread, a *dvm.Atomic) int64 {
	addr := a.Addr(t)
	switch a.Kind {
	case dvm.AtomicAdd:
		return e.mem.Add(addr, a.Delta(t))
	case dvm.AtomicCAS:
		if e.mem.CAS(addr, a.Old(t), a.New(t)) {
			return 1
		}
		return 0
	case dvm.AtomicExchange:
		return e.mem.Swap(addr, a.New(t))
	default:
		panic("direct: unknown atomic kind")
	}
}
