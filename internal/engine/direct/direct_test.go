package direct

import (
	"fmt"
	"testing"

	"lazydet/internal/dvm"
	"lazydet/internal/shmem"
	"lazydet/internal/stats"
)

func run(t *testing.T, e *Engine, progs []*dvm.Program) {
	t.Helper()
	dvm.Run(e, progs)
}

func TestMutualExclusion(t *testing.T) {
	mem := shmem.New(8)
	e := New(mem, 4, 1, 0, 0)
	b := dvm.NewBuilder("inc")
	i, v := b.Reg(), b.Reg()
	b.ForN(i, 500, func() {
		b.Lock(dvm.Const(0))
		b.Load(v, dvm.Const(0))
		b.Store(dvm.Const(0), dvm.Dyn(func(th *dvm.Thread) int64 { return th.R(v) + 1 }))
		b.Unlock(dvm.Const(0))
	})
	p := b.Build()
	run(t, e, []*dvm.Program{p, p, p, p})
	if got := mem.Load(0); got != 2000 {
		t.Fatalf("counter = %d, want 2000", got)
	}
}

func TestCondVarHandshake(t *testing.T) {
	mem := shmem.New(8)
	e := New(mem, 2, 1, 1, 0)

	waiter := dvm.NewBuilder("waiter")
	fv := waiter.Reg()
	waiter.Lock(dvm.Const(0))
	waiter.Load(fv, dvm.Const(0))
	waiter.While(func(th *dvm.Thread) bool { return th.R(fv) == 0 }, func() {
		waiter.CondWait(dvm.Const(0), dvm.Const(0))
		waiter.Load(fv, dvm.Const(0))
	})
	waiter.Store(dvm.Const(1), dvm.Const(99))
	waiter.Unlock(dvm.Const(0))

	signaler := dvm.NewBuilder("signaler")
	signaler.Lock(dvm.Const(0))
	signaler.Store(dvm.Const(0), dvm.Const(1))
	signaler.CondSignal(dvm.Const(0))
	signaler.Unlock(dvm.Const(0))

	run(t, e, []*dvm.Program{waiter.Build(), signaler.Build()})
	if got := mem.Load(1); got != 99 {
		t.Fatalf("handshake result = %d, want 99", got)
	}
}

func TestCondBroadcastWakesAll(t *testing.T) {
	mem := shmem.New(16)
	const waiters = 3
	e := New(mem, waiters+1, 1, 1, 0)
	progs := make([]*dvm.Program, waiters+1)
	for tid := 0; tid < waiters; tid++ {
		b := dvm.NewBuilder(fmt.Sprintf("w%d", tid))
		fv := b.Reg()
		b.Lock(dvm.Const(0))
		b.Load(fv, dvm.Const(0))
		b.While(func(th *dvm.Thread) bool { return th.R(fv) == 0 }, func() {
			b.CondWait(dvm.Const(0), dvm.Const(0))
			b.Load(fv, dvm.Const(0))
		})
		b.Unlock(dvm.Const(0))
		b.Store(dvm.Dyn(func(th *dvm.Thread) int64 { return 1 + int64(th.ID) }), dvm.Const(1))
		progs[tid] = b.Build()
	}
	b := dvm.NewBuilder("bcast")
	i := b.Reg()
	b.ForN(i, 1000, func() { b.Do(func(*dvm.Thread) {}) }) // let waiters park
	b.Lock(dvm.Const(0))
	b.Store(dvm.Const(0), dvm.Const(1))
	b.CondBroadcast(dvm.Const(0))
	b.Unlock(dvm.Const(0))
	progs[waiters] = b.Build()

	run(t, e, progs)
	for tid := int64(0); tid < waiters; tid++ {
		if mem.Load(1+tid) != 1 {
			t.Fatalf("waiter %d not woken", tid)
		}
	}
}

func TestBarrierRendezvous(t *testing.T) {
	mem := shmem.New(16)
	const n = 4
	e := New(mem, n, 0, 0, 1)
	progs := make([]*dvm.Program, n)
	for tid := 0; tid < n; tid++ {
		b := dvm.NewBuilder("b")
		v, sum := b.Reg(), b.Reg()
		b.Store(dvm.Dyn(func(th *dvm.Thread) int64 { return int64(th.ID) }), dvm.Const(1))
		b.Barrier(dvm.Const(0))
		for o := int64(0); o < n; o++ {
			b.Load(v, dvm.Const(o))
			b.Do(func(th *dvm.Thread) { th.AddR(sum, th.R(v)) })
		}
		b.Store(dvm.Dyn(func(th *dvm.Thread) int64 { return 8 + int64(th.ID) }), dvm.FromReg(sum))
		progs[tid] = b.Build()
	}
	run(t, e, progs)
	for tid := int64(0); tid < n; tid++ {
		if got := mem.Load(8 + tid); got != n {
			t.Fatalf("thread %d saw %d pre-barrier writes, want %d", tid, got, n)
		}
	}
}

func TestBarrierReusableAcrossPhases(t *testing.T) {
	mem := shmem.New(8)
	const n = 3
	e := New(mem, n, 1, 0, 1)
	progs := make([]*dvm.Program, n)
	for tid := 0; tid < n; tid++ {
		b := dvm.NewBuilder("b")
		i, v := b.Reg(), b.Reg()
		b.ForN(i, 5, func() {
			b.Lock(dvm.Const(0))
			b.Load(v, dvm.Const(0))
			b.Store(dvm.Const(0), dvm.Dyn(func(th *dvm.Thread) int64 { return th.R(v) + 1 }))
			b.Unlock(dvm.Const(0))
			b.Barrier(dvm.Const(0))
		})
		progs[tid] = b.Build()
	}
	run(t, e, progs)
	if got := mem.Load(0); got != 15 {
		t.Fatalf("counter = %d, want 15", got)
	}
}

func TestLockCounting(t *testing.T) {
	mem := shmem.New(8)
	e := New(mem, 2, 3, 0, 0)
	e.Counter = stats.NewLockCounter(3)
	b := dvm.NewBuilder("p")
	i := b.Reg()
	b.ForN(i, 9, func() {
		l := dvm.Dyn(func(th *dvm.Thread) int64 { return th.R(i) % 3 })
		b.Lock(l)
		b.Unlock(l)
	})
	p := b.Build()
	run(t, e, []*dvm.Program{p, p})
	s := e.Counter.Summarize()
	if s.Acquisitions != 18 || s.Variables != 3 {
		t.Fatalf("summary = %+v, want 18 acquisitions over 3 locks", s)
	}
}

func TestSyscallEffect(t *testing.T) {
	mem := shmem.New(8)
	e := New(mem, 1, 1, 0, 0)
	n := 0
	b := dvm.NewBuilder("p")
	b.Syscall(&dvm.Syscall{Name: "x", Work: 5, Effect: func(*dvm.Thread) { n++ }})
	run(t, e, []*dvm.Program{b.Build()})
	if n != 1 {
		t.Fatalf("effect ran %d times", n)
	}
}

func TestAtomics(t *testing.T) {
	mem := shmem.New(8)
	e := New(mem, 4, 1, 0, 0)
	b := dvm.NewBuilder("p")
	i, r := b.Reg(), b.Reg()
	b.ForN(i, 1000, func() {
		b.AtomicAdd(r, dvm.Const(0), dvm.Const(1))
	})
	p := b.Build()
	run(t, e, []*dvm.Program{p, p, p, p})
	if got := mem.Load(0); got != 4000 {
		t.Fatalf("atomic counter = %d, want 4000", got)
	}
}

func TestSpawnJoin(t *testing.T) {
	mem := shmem.New(16)
	e := New(mem, 3, 1, 0, 0)

	main := dvm.NewBuilder("main")
	v, sum := main.Reg(), main.Reg()
	main.Store(dvm.Const(0), dvm.Const(5))
	main.Spawn(dvm.Const(1))
	main.Spawn(dvm.Const(2))
	main.Join(dvm.Const(1))
	main.Join(dvm.Const(2))
	for w := int64(1); w <= 2; w++ {
		main.Load(v, dvm.Const(w))
		main.Do(func(th *dvm.Thread) { th.AddR(sum, th.R(v)) })
	}
	main.Store(dvm.Const(3), dvm.FromReg(sum))

	progs := []*dvm.Program{main.Build()}
	for w := 1; w <= 2; w++ {
		b := dvm.NewBuilder("worker")
		x := b.Reg()
		b.Load(x, dvm.Const(0))
		b.Store(dvm.Dyn(func(th *dvm.Thread) int64 { return int64(th.ID) }), dvm.Dyn(func(th *dvm.Thread) int64 { return th.R(x) * int64(th.ID) }))
		p := b.Build()
		p.StartSuspended = true
		progs = append(progs, p)
	}
	run(t, e, progs)
	if got := mem.Load(3); got != 5*1+5*2 {
		t.Fatalf("join sum = %d, want 15", got)
	}
}
