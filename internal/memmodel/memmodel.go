// Package memmodel is an executable model of the three memory-consistency
// models the paper compares in §4: TSO (Consequence's model), DLRC (RFDet's
// Deterministic Lazy Release Consistency) and the paper's DDRF
// (Deterministic Data-Race-Free). It enumerates the final outcomes a litmus
// program may produce under each model, which is how the claims of
// Figures 4, 5 and 6 are checked mechanically:
//
//   - Figure 4 (store buffering with per-thread locks): TSO forbids the
//     both-loads-zero outcome, DDRF allows it, DLRC requires it.
//   - Figure 5 (cross-lock visibility): DLRC forbids the racy load
//     returning the store's value; DDRF allows either value.
//   - Figure 6: the outcome sets nest — TSO ⊆ DDRF and DLRC ⊆ DDRF, while
//     TSO and DLRC are incomparable.
package memmodel

import (
	"fmt"
	"sort"
	"strings"
)

// OpKind is a litmus operation kind.
type OpKind int

const (
	// OpAcquire acquires a lock (a full fence under TSO).
	OpAcquire OpKind = iota
	// OpRelease releases a lock (a full fence under TSO).
	OpRelease
	// OpStore writes a value to a shared location.
	OpStore
	// OpLoad reads a shared location into a named register.
	OpLoad
)

// Op is one litmus operation.
type Op struct {
	Kind OpKind
	Lock int    // OpAcquire / OpRelease
	Addr int    // OpStore / OpLoad
	Val  int    // OpStore
	Reg  string // OpLoad destination
}

// Acquire returns an acquire op.
func Acquire(lock int) Op { return Op{Kind: OpAcquire, Lock: lock} }

// Release returns a release op.
func Release(lock int) Op { return Op{Kind: OpRelease, Lock: lock} }

// Store returns a store op.
func Store(addr, val int) Op { return Op{Kind: OpStore, Addr: addr, Val: val} }

// Load returns a load op into register reg.
func Load(reg string, addr int) Op { return Op{Kind: OpLoad, Reg: reg, Addr: addr} }

// Program is a multi-threaded litmus test. Memory locations start at zero.
type Program struct {
	Name    string
	Threads [][]Op
}

// Outcome is a final register assignment, canonicalized as
// "r1=0 r2=1" with registers sorted by name.
type Outcome string

func canon(regs map[string]int) Outcome {
	keys := make([]string, 0, len(regs))
	for k := range regs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, len(keys))
	for i, k := range keys {
		parts[i] = fmt.Sprintf("%s=%d", k, regs[k])
	}
	return Outcome(strings.Join(parts, " "))
}

// OutcomeSet is a set of outcomes.
type OutcomeSet map[Outcome]struct{}

// Has reports whether the set contains the outcome.
func (s OutcomeSet) Has(o Outcome) bool {
	_, ok := s[o]
	return ok
}

// SubsetOf reports whether every outcome of s is in t.
func (s OutcomeSet) SubsetOf(t OutcomeSet) bool {
	for o := range s {
		if !t.Has(o) {
			return false
		}
	}
	return true
}

// Sorted returns the outcomes in lexical order.
func (s OutcomeSet) Sorted() []Outcome {
	out := make([]Outcome, 0, len(s))
	for o := range s {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// String renders the set compactly.
func (s OutcomeSet) String() string {
	strs := make([]string, 0, len(s))
	for _, o := range s.Sorted() {
		strs = append(strs, "{"+string(o)+"}")
	}
	return strings.Join(strs, " ")
}

// event is an op instance identified by (thread, index).
type event struct {
	tid, idx int
	op       Op
}

// events flattens the program into per-thread event lists.
func events(p *Program) [][]event {
	out := make([][]event, len(p.Threads))
	for t, ops := range p.Threads {
		for i, op := range ops {
			out[t] = append(out[t], event{tid: t, idx: i, op: op})
		}
	}
	return out
}
