package memmodel

// This file builds happens-before relations for the deterministic models.
// A "synchronization order" is one valid total order of the program's
// acquire/release events (acquires only take free locks). For each such
// order, happens-before is program order ∪ {release(l) → later acquire(l)}
// closed transitively; DLRC and DDRF outcomes are derived from it.

// syncOrders enumerates every valid total order of synchronization events,
// as lists of (thread, index) pairs.
func syncOrders(p *Program) [][]event {
	evs := events(p)
	// Per-thread queues of sync events.
	var queues [][]event
	for _, tevs := range evs {
		var q []event
		for _, e := range tevs {
			if e.op.Kind == OpAcquire || e.op.Kind == OpRelease {
				q = append(q, e)
			}
		}
		queues = append(queues, q)
	}
	var out [][]event
	var rec func(pos []int, held map[int]int, prefix []event)
	rec = func(pos []int, held map[int]int, prefix []event) {
		done := true
		for t := range queues {
			if pos[t] < len(queues[t]) {
				done = false
				e := queues[t][pos[t]]
				switch e.op.Kind {
				case OpAcquire:
					if _, ok := held[e.op.Lock]; ok {
						continue // held (even by self: no reentrancy)
					}
					held[e.op.Lock] = e.tid
					pos[t]++
					rec(pos, held, append(prefix, e))
					pos[t]--
					delete(held, e.op.Lock)
				case OpRelease:
					owner := held[e.op.Lock]
					delete(held, e.op.Lock)
					pos[t]++
					rec(pos, held, append(prefix, e))
					pos[t]--
					held[e.op.Lock] = owner
				}
			}
		}
		if done {
			out = append(out, append([]event(nil), prefix...))
		}
	}
	rec(make([]int, len(queues)), map[int]int{}, nil)
	return out
}

// hbRelation is happens-before over all events, indexed by a dense event id.
type hbRelation struct {
	ids map[[2]int]int // (tid, idx) -> id
	n   int
	hb  [][]bool // hb[a][b]: a happens-before b
	evs []event  // by id
}

// buildHB computes happens-before for one synchronization order.
func buildHB(p *Program, order []event) *hbRelation {
	evs := events(p)
	r := &hbRelation{ids: map[[2]int]int{}}
	for _, tevs := range evs {
		for _, e := range tevs {
			r.ids[[2]int{e.tid, e.idx}] = r.n
			r.evs = append(r.evs, e)
			r.n++
		}
	}
	r.hb = make([][]bool, r.n)
	for i := range r.hb {
		r.hb[i] = make([]bool, r.n)
	}
	// Program order.
	for _, tevs := range evs {
		for i := 1; i < len(tevs); i++ {
			a := r.ids[[2]int{tevs[i-1].tid, tevs[i-1].idx}]
			b := r.ids[[2]int{tevs[i].tid, tevs[i].idx}]
			r.hb[a][b] = true
		}
	}
	// Synchronization order: release(l) → every later acquire(l).
	for i, rel := range order {
		if rel.op.Kind != OpRelease {
			continue
		}
		for j := i + 1; j < len(order); j++ {
			acq := order[j]
			if acq.op.Kind == OpAcquire && acq.op.Lock == rel.op.Lock {
				a := r.ids[[2]int{rel.tid, rel.idx}]
				b := r.ids[[2]int{acq.tid, acq.idx}]
				r.hb[a][b] = true
			}
		}
	}
	// Transitive closure (Floyd-Warshall on booleans).
	for k := 0; k < r.n; k++ {
		for i := 0; i < r.n; i++ {
			if !r.hb[i][k] {
				continue
			}
			for j := 0; j < r.n; j++ {
				if r.hb[k][j] {
					r.hb[i][j] = true
				}
			}
		}
	}
	return r
}

// happensBefore reports whether event a happens-before event b.
func (r *hbRelation) happensBefore(a, b event) bool {
	return r.hb[r.ids[[2]int{a.tid, a.idx}]][r.ids[[2]int{b.tid, b.idx}]]
}

// mandated returns the happens-before-latest stores to the load's address:
// the values the DRF discipline requires the load to be able to see. Empty
// means only the initial value is mandated.
func (r *hbRelation) mandated(load event) []event {
	var cands []event
	for _, e := range r.evs {
		if e.op.Kind == OpStore && e.op.Addr == load.op.Addr && r.happensBefore(e, load) {
			cands = append(cands, e)
		}
	}
	// Drop stores dominated by a later hb store.
	var maximal []event
	for _, s := range cands {
		dominated := false
		for _, s2 := range cands {
			if (s2.tid != s.tid || s2.idx != s.idx) && r.happensBefore(s, s2) {
				dominated = true
				break
			}
		}
		if !dominated {
			maximal = append(maximal, s)
		}
	}
	return maximal
}

// loads returns the program's load events.
func loads(p *Program) []event {
	var out []event
	for _, tevs := range events(p) {
		for _, e := range tevs {
			if e.op.Kind == OpLoad {
				out = append(out, e)
			}
		}
	}
	return out
}

// DLRC enumerates outcomes under RFDet's Deterministic Lazy Release
// Consistency: a load sees a store if and only if a happens-before edge
// runs from the store to the load (paper §4.1). Without such an edge the
// store must remain invisible, so each load returns the hb-latest store's
// value, or the initial value when none exists.
func DLRC(p *Program) OutcomeSet {
	out := OutcomeSet{}
	for _, order := range syncOrders(p) {
		r := buildHB(p, order)
		// Each load has a set of hb-maximal mandated stores; racy
		// hb-incomparable stores make the value ambiguous, so fan out.
		assign := map[string][]int{}
		for _, l := range loads(p) {
			m := r.mandated(l)
			if len(m) == 0 {
				assign[l.op.Reg] = []int{0}
				continue
			}
			vals := make([]int, len(m))
			for i, s := range m {
				vals[i] = s.op.Val
			}
			assign[l.op.Reg] = vals
		}
		expand(assign, func(regs map[string]int) {
			out[canon(regs)] = struct{}{}
		})
	}
	return out
}

// DDRF enumerates outcomes under the paper's Deterministic Data-Race-Free
// model (§4.1): visibility is required along happens-before edges and
// additionally permitted — via the deterministic visibility order — for any
// store not ordered after the load and not overwritten by a mandated store.
// Since the visibility order may be induced by arbitrary deterministic
// program events, the allowed set closes over every such choice.
func DDRF(p *Program) OutcomeSet {
	out := OutcomeSet{}
	allStores := func(addr int) []event {
		var ss []event
		for _, tevs := range events(p) {
			for _, e := range tevs {
				if e.op.Kind == OpStore && e.op.Addr == addr {
					ss = append(ss, e)
				}
			}
		}
		return ss
	}
	for _, order := range syncOrders(p) {
		r := buildHB(p, order)
		assign := map[string][]int{}
		for _, l := range loads(p) {
			mand := r.mandated(l)
			vals := map[int]struct{}{}
			for _, s := range mand {
				vals[s.op.Val] = struct{}{}
			}
			if len(mand) == 0 {
				vals[0] = struct{}{} // initial value permitted
			}
			for _, s := range allStores(l.op.Addr) {
				if r.happensBefore(l, s) {
					continue // the future is never visible
				}
				// A store hb-older than a mandated store has been
				// overwritten along the required chain.
				overwritten := false
				for _, m := range mand {
					if r.happensBefore(s, m) {
						overwritten = true
						break
					}
				}
				if !overwritten {
					vals[s.op.Val] = struct{}{}
				}
			}
			list := make([]int, 0, len(vals))
			for v := range vals {
				list = append(list, v)
			}
			assign[l.op.Reg] = list
		}
		expand(assign, func(regs map[string]int) {
			out[canon(regs)] = struct{}{}
		})
	}
	return out
}

// expand enumerates the cartesian product of per-register value choices.
func expand(assign map[string][]int, emit func(map[string]int)) {
	regs := make([]string, 0, len(assign))
	for r := range assign {
		regs = append(regs, r)
	}
	cur := map[string]int{}
	var rec func(i int)
	rec = func(i int) {
		if i == len(regs) {
			emit(cur)
			return
		}
		for _, v := range assign[regs[i]] {
			cur[regs[i]] = v
			rec(i + 1)
		}
	}
	rec(0)
}
