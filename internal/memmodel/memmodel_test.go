package memmodel

import "testing"

// TestFigure4 checks the paper's Figure 4 claims: the both-zero outcome is
// impossible under TSO, possible under DDRF, and mandatory under DLRC.
func TestFigure4(t *testing.T) {
	p := Figure4()
	tso := TSO(p)
	dlrc := DLRC(p)
	ddrf := DDRF(p)
	t.Logf("TSO:  %v", tso)
	t.Logf("DLRC: %v", dlrc)
	t.Logf("DDRF: %v", ddrf)

	if tso.Has(BothZero) {
		t.Error("TSO must forbid r1=0 r2=0 (locks are full fences)")
	}
	if !ddrf.Has(BothZero) {
		t.Error("DDRF must allow r1=0 r2=0")
	}
	if !dlrc.Has(BothZero) || len(dlrc) != 1 {
		t.Errorf("DLRC must REQUIRE r1=0 r2=0, got %v", dlrc)
	}
}

// TestFigure5 checks the paper's Figure 5: under DLRC the racy load can
// never return 1; under DDRF it can return 0 or 1.
func TestFigure5(t *testing.T) {
	p := Figure5()
	dlrc := DLRC(p)
	ddrf := DDRF(p)
	t.Logf("DLRC: %v", dlrc)
	t.Logf("DDRF: %v", ddrf)

	if dlrc.Has("r1=1") {
		t.Error("DLRC must forbid r1=1 (no happens-before edge ever exists)")
	}
	if !ddrf.Has("r1=0") || !ddrf.Has("r1=1") {
		t.Errorf("DDRF must allow both r1=0 and r1=1, got %v", ddrf)
	}
}

// TestFigure6 checks the relative-strength diagram: TSO ⊆ DDRF and
// DLRC ⊆ DDRF on the paper's litmus tests, while TSO and DLRC are
// incomparable (each allows an outcome of Figure 4 the other forbids).
func TestFigure6(t *testing.T) {
	for _, p := range []*Program{Figure4(), Figure5(), MessagePassing()} {
		tso := TSO(p)
		dlrc := DLRC(p)
		ddrf := DDRF(p)
		if !tso.SubsetOf(ddrf) {
			t.Errorf("%s: TSO ⊄ DDRF: TSO %v, DDRF %v", p.Name, tso, ddrf)
		}
		if !dlrc.SubsetOf(ddrf) {
			t.Errorf("%s: DLRC ⊄ DDRF: DLRC %v, DDRF %v", p.Name, dlrc, ddrf)
		}
	}
	p := Figure4()
	tso := TSO(p)
	dlrc := DLRC(p)
	if tso.SubsetOf(dlrc) || dlrc.SubsetOf(tso) {
		t.Errorf("TSO and DLRC must be incomparable on Figure 4: TSO %v, DLRC %v", tso, dlrc)
	}
}

// TestSCSubsetOfTSO sanity-checks the enumerators: sequential consistency
// is stronger than TSO on every litmus test.
func TestSCSubsetOfTSO(t *testing.T) {
	for _, p := range []*Program{Figure4(), Figure5(), MessagePassing(), StoreBufferNoLocks()} {
		sc := SC(p)
		tso := TSO(p)
		if !sc.SubsetOf(tso) {
			t.Errorf("%s: SC ⊄ TSO: SC %v, TSO %v", p.Name, sc, tso)
		}
	}
}

// TestStoreBufferWithoutLocks: without synchronization, TSO allows the
// both-zero outcome the fences forbade in Figure 4 (the paper notes this
// in §4).
func TestStoreBufferWithoutLocks(t *testing.T) {
	p := StoreBufferNoLocks()
	tso := TSO(p)
	if !tso.Has(BothZero) {
		t.Errorf("TSO without fences must allow r1=0 r2=0, got %v", tso)
	}
	sc := SC(p)
	if sc.Has(BothZero) {
		t.Errorf("SC must forbid r1=0 r2=0 even without locks, got %v", sc)
	}
}

// TestMessagePassingHandoff: when the receiver sees the flag set, every
// model must deliver the data (the flag's critical section is ordered
// after the sender's, creating a happens-before chain to the data load).
func TestMessagePassingHandoff(t *testing.T) {
	p := MessagePassing()
	for name, set := range map[string]OutcomeSet{"TSO": TSO(p), "DLRC": DLRC(p), "DDRF": DDRF(p)} {
		if set.Has("data=0 flag=1") {
			t.Errorf("%s: flag observed but data lost: %v", name, set)
		}
		if !set.Has("data=42 flag=1") {
			t.Errorf("%s: successful handoff missing: %v", name, set)
		}
	}
}
