package memmodel

// The paper's litmus tests.

// Figure4 is the store-buffer variant with per-thread locks: under TSO the
// fences forbid both loads returning zero; under DDRF both-zero is allowed
// (no happens-before edges connect the threads); under DLRC both loads
// must return zero.
func Figure4() *Program {
	const x, y = 0, 1
	const A, B = 0, 1
	return &Program{
		Name: "figure-4 store buffering with locks",
		Threads: [][]Op{
			{
				Acquire(A), Store(x, 1), Release(A),
				Acquire(A), Load("r1", y), Release(A),
			},
			{
				Acquire(B), Store(y, 1), Release(B),
				Acquire(B), Load("r2", x), Release(B),
			},
		},
	}
}

// Figure5 is the cross-lock visibility test: thread 1 stores x under lock
// A; thread 2 loads x under lock B. DLRC's biconditional forbids the load
// from ever returning 1; DDRF allows 0 or 1 (deterministic visibility-order
// edges may or may not arise).
func Figure5() *Program {
	const x = 0
	const A, B = 0, 1
	return &Program{
		Name: "figure-5 cross-lock visibility",
		Threads: [][]Op{
			{Acquire(A), Store(x, 1), Release(A)},
			{Acquire(B), Load("r1", x), Release(B)},
		},
	}
}

// MessagePassing is the classic same-lock handoff: with matching
// synchronization, every model must allow the receiver to see the data when
// it sees the flag's critical section ordered after the sender's.
func MessagePassing() *Program {
	const data = 0
	const L = 0
	return &Program{
		Name: "message passing via one lock",
		Threads: [][]Op{
			{Store(data, 42), Acquire(L), Store(1, 1), Release(L)},
			{Acquire(L), Load("flag", 1), Release(L), Load("data", data)},
		},
	}
}

// BothZero is the Figure 4 outcome of interest.
const BothZero = Outcome("r1=0 r2=0")

// StoreBufferNoLocks is the classic store-buffer litmus without any
// synchronization: TSO allows both-zero, SC forbids it.
func StoreBufferNoLocks() *Program {
	const x, y = 0, 1
	return &Program{
		Name: "store buffering, no locks",
		Threads: [][]Op{
			{Store(x, 1), Load("r1", y)},
			{Store(y, 1), Load("r2", x)},
		},
	}
}
