package memmodel

import "fmt"

// TSO enumerates the outcomes allowed under Total Store Order, the
// consistency model Consequence provides (paper §4): each thread owns a
// FIFO store buffer; loads hit the own buffer first (store forwarding);
// lock acquires and releases act as full memory fences, so the buffer
// drains before a synchronization operation executes; stores drain to
// memory in order at arbitrary points.
func TSO(p *Program) OutcomeSet {
	evs := events(p)
	out := OutcomeSet{}

	type bufEntry struct{ addr, val int }
	type state struct {
		pc    []int
		bufs  [][]bufEntry
		mem   map[int]int
		locks map[int]bool
		regs  map[string]int
	}

	var explore func(s *state)
	seen := map[string]struct{}{}

	key := func(s *state) string {
		return fmt.Sprintf("%v|%v|%v|%v|%v", s.pc, s.bufs, s.mem, s.locks, s.regs)
	}

	clone := func(s *state) *state {
		ns := &state{
			pc:    append([]int(nil), s.pc...),
			bufs:  make([][]bufEntry, len(s.bufs)),
			mem:   make(map[int]int, len(s.mem)),
			locks: make(map[int]bool, len(s.locks)),
			regs:  make(map[string]int, len(s.regs)),
		}
		for i, b := range s.bufs {
			ns.bufs[i] = append([]bufEntry(nil), b...)
		}
		for k, v := range s.mem {
			ns.mem[k] = v
		}
		for k, v := range s.locks {
			ns.locks[k] = v
		}
		for k, v := range s.regs {
			ns.regs[k] = v
		}
		return ns
	}

	explore = func(s *state) {
		k := key(s)
		if _, ok := seen[k]; ok {
			return
		}
		seen[k] = struct{}{}

		done := true
		for t := range evs {
			if s.pc[t] < len(evs[t]) || len(s.bufs[t]) > 0 {
				done = false
			}
		}
		if done {
			out[canon(s.regs)] = struct{}{}
			return
		}

		for t := range evs {
			// Drain one buffered store to memory.
			if len(s.bufs[t]) > 0 {
				ns := clone(s)
				e := ns.bufs[t][0]
				ns.bufs[t] = ns.bufs[t][1:]
				ns.mem[e.addr] = e.val
				explore(ns)
			}
			if s.pc[t] >= len(evs[t]) {
				continue
			}
			op := evs[t][s.pc[t]].op
			switch op.Kind {
			case OpStore:
				ns := clone(s)
				ns.bufs[t] = append(ns.bufs[t], bufEntry{op.Addr, op.Val})
				ns.pc[t]++
				explore(ns)
			case OpLoad:
				ns := clone(s)
				v, hit := 0, false
				for i := len(ns.bufs[t]) - 1; i >= 0; i-- {
					if ns.bufs[t][i].addr == op.Addr {
						v, hit = ns.bufs[t][i].val, true
						break
					}
				}
				if !hit {
					v = ns.mem[op.Addr]
				}
				ns.regs[op.Reg] = v
				ns.pc[t]++
				explore(ns)
			case OpAcquire:
				// Full fence: the buffer must be empty, the lock free.
				if len(s.bufs[t]) == 0 && !s.locks[op.Lock] {
					ns := clone(s)
					ns.locks[op.Lock] = true
					ns.pc[t]++
					explore(ns)
				}
			case OpRelease:
				if len(s.bufs[t]) == 0 {
					ns := clone(s)
					ns.locks[op.Lock] = false
					ns.pc[t]++
					explore(ns)
				}
			}
		}
	}

	init := &state{
		pc:    make([]int, len(evs)),
		bufs:  make([][]bufEntry, len(evs)),
		mem:   map[int]int{},
		locks: map[int]bool{},
		regs:  map[string]int{},
	}
	explore(init)
	return out
}

// SC enumerates sequentially consistent outcomes (no store buffers): a
// reference point for tests, since SC ⊆ TSO.
func SC(p *Program) OutcomeSet {
	evs := events(p)
	out := OutcomeSet{}
	type state struct {
		pc    []int
		mem   map[int]int
		locks map[int]bool
		regs  map[string]int
	}
	var explore func(s *state)
	explore = func(s *state) {
		done := true
		for t := range evs {
			if s.pc[t] < len(evs[t]) {
				done = false
			}
		}
		if done {
			out[canon(s.regs)] = struct{}{}
			return
		}
		for t := range evs {
			if s.pc[t] >= len(evs[t]) {
				continue
			}
			op := evs[t][s.pc[t]].op
			if op.Kind == OpAcquire && s.locks[op.Lock] {
				continue
			}
			ns := &state{
				pc:    append([]int(nil), s.pc...),
				mem:   map[int]int{},
				locks: map[int]bool{},
				regs:  map[string]int{},
			}
			for k, v := range s.mem {
				ns.mem[k] = v
			}
			for k, v := range s.locks {
				ns.locks[k] = v
			}
			for k, v := range s.regs {
				ns.regs[k] = v
			}
			switch op.Kind {
			case OpStore:
				ns.mem[op.Addr] = op.Val
			case OpLoad:
				ns.regs[op.Reg] = ns.mem[op.Addr]
			case OpAcquire:
				ns.locks[op.Lock] = true
			case OpRelease:
				ns.locks[op.Lock] = false
			}
			ns.pc[t]++
			explore(ns)
		}
	}
	explore(&state{pc: make([]int, len(evs)), mem: map[int]int{}, locks: map[int]bool{}, regs: map[string]int{}})
	return out
}
