package memmodel

import (
	"testing"
	"testing/quick"
)

// randomProgram builds a small two-thread litmus program from a seed: each
// thread gets up to 4 operations over 2 locations and 2 locks, with
// balanced acquire/release pairs.
func randomProgram(seed uint64) *Program {
	r := seed
	next := func(n uint64) uint64 {
		r = r*6364136223846793005 + 1442695040888963407
		return (r >> 33) % n
	}
	reg := 0
	var threads [][]Op
	for t := 0; t < 2; t++ {
		var ops []Op
		nops := int(next(3)) + 1
		for i := 0; i < nops; i++ {
			switch next(3) {
			case 0:
				ops = append(ops, Store(int(next(2)), int(next(2))+1))
			case 1:
				reg++
				ops = append(ops, Load(regName(reg), int(next(2))))
			case 2:
				l := int(next(2))
				body := Op{}
				switch next(2) {
				case 0:
					body = Store(int(next(2)), int(next(2))+1)
				case 1:
					reg++
					body = Load(regName(reg), int(next(2)))
				}
				ops = append(ops, Acquire(l), body, Release(l))
			}
		}
		threads = append(threads, ops)
	}
	return &Program{Name: "random", Threads: threads}
}

func regName(i int) string {
	return string(rune('a'+i%26)) + string(rune('0'+i/26))
}

// TestQuickModelRelations: on random litmus programs, SC ⊆ TSO and
// DLRC ⊆ DDRF always hold, and every model produces at least one outcome.
func TestQuickModelRelations(t *testing.T) {
	f := func(seed uint64) bool {
		p := randomProgram(seed)
		sc := SC(p)
		tso := TSO(p)
		dlrc := DLRC(p)
		ddrf := DDRF(p)
		if len(sc) == 0 || len(tso) == 0 || len(dlrc) == 0 || len(ddrf) == 0 {
			t.Logf("seed %x: empty outcome set", seed)
			return false
		}
		if !sc.SubsetOf(tso) {
			t.Logf("seed %x: SC ⊄ TSO\nSC:  %v\nTSO: %v\nprog: %+v", seed, sc, tso, p.Threads)
			return false
		}
		if !dlrc.SubsetOf(ddrf) {
			t.Logf("seed %x: DLRC ⊄ DDRF\nDLRC: %v\nDDRF: %v\nprog: %+v", seed, dlrc, ddrf, p.Threads)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickProperlySynchronizedAgree: when every access is inside a
// critical section of ONE shared lock, the program is race-free and
// sequentially consistent — all four models must produce identical outcome
// sets.
func TestQuickProperlySynchronizedAgree(t *testing.T) {
	mk := func(seed uint64) *Program {
		r := seed
		next := func(n uint64) uint64 {
			r = r*6364136223846793005 + 1442695040888963407
			return (r >> 33) % n
		}
		reg := 0
		var threads [][]Op
		for t := 0; t < 2; t++ {
			var ops []Op
			nops := int(next(3)) + 1
			for i := 0; i < nops; i++ {
				var body Op
				if next(2) == 0 {
					body = Store(int(next(2)), int(next(2))+1)
				} else {
					reg++
					body = Load(regName(reg), int(next(2)))
				}
				ops = append(ops, Acquire(0), body, Release(0))
			}
			threads = append(threads, ops)
		}
		return &Program{Name: "drf", Threads: threads}
	}
	f := func(seed uint64) bool {
		p := mk(seed)
		sc := SC(p)
		for name, set := range map[string]OutcomeSet{"TSO": TSO(p), "DLRC": DLRC(p), "DDRF": DDRF(p)} {
			if !sc.SubsetOf(set) || !set.SubsetOf(sc) {
				t.Logf("seed %x: %s differs from SC on a race-free program\nSC: %v\n%s: %v\nprog: %+v",
					seed, name, sc, name, set, p.Threads)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestCoherenceUnderOneLock: writes to one location inside one lock's
// critical sections are totally ordered; the final outcome set matches SC
// under every model (a coherence-style check).
func TestCoherenceUnderOneLock(t *testing.T) {
	p := &Program{
		Name: "coherence",
		Threads: [][]Op{
			{Acquire(0), Store(0, 1), Release(0), Acquire(0), Load("r1", 0), Release(0)},
			{Acquire(0), Store(0, 2), Release(0), Acquire(0), Load("r2", 0), Release(0)},
		},
	}
	sc := SC(p)
	for name, set := range map[string]OutcomeSet{"TSO": TSO(p), "DLRC": DLRC(p), "DDRF": DDRF(p)} {
		if !sc.SubsetOf(set) || !set.SubsetOf(sc) {
			t.Errorf("%s disagrees with SC on the coherence test:\nSC: %v\n%s: %v", name, sc, name, set)
		}
	}
	// A thread can never read a value older than its own last write.
	for _, bad := range []Outcome{} {
		if sc.Has(bad) {
			t.Errorf("SC allows %v", bad)
		}
	}
}
