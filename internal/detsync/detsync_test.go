package detsync

import (
	"testing"
	"testing/quick"
)

func TestNewTableAllocation(t *testing.T) {
	tbl := NewTable(4, 10, 2, 1, true)
	if len(tbl.Locks) != 10 || len(tbl.Conds) != 2 || len(tbl.Barriers) != 1 {
		t.Fatalf("table sizes wrong: %d locks %d conds %d barriers",
			len(tbl.Locks), len(tbl.Conds), len(tbl.Barriers))
	}
	for i := range tbl.Locks {
		if len(tbl.Locks[i].SpecHist) != 4 || len(tbl.Locks[i].SpecAttempts) != 4 {
			t.Fatalf("lock %d speculation metadata not per-thread", i)
		}
		for tid := 0; tid < 4; tid++ {
			if tbl.Locks[i].SpecHist[tid] != ^uint64(0) {
				t.Fatalf("history must start all-success (optimistic)")
			}
		}
	}
}

func TestNewTableWithoutSpecMeta(t *testing.T) {
	tbl := NewTable(2, 3, 0, 0, false)
	for i := range tbl.Locks {
		if tbl.Locks[i].SpecHist != nil {
			t.Fatal("speculation metadata allocated although disabled")
		}
	}
}

func TestWakeHandshake(t *testing.T) {
	tbl := NewTable(2, 0, 0, 0, false)
	done := make(chan struct{})
	go func() {
		tbl.WaitWake(1)
		close(done)
	}()
	tbl.Wake(1)
	<-done

	// Wake before WaitWake must not be lost (buffered handoff).
	tbl.Wake(0)
	tbl.WaitWake(0)
}

func TestSuccessRatePermille(t *testing.T) {
	cases := []struct {
		hist uint64
		want int
	}{
		{^uint64(0), 1000},
		{0, 0},
		{1<<32 - 1, 500},
	}
	for _, c := range cases {
		if got := SuccessRatePermille(c.hist); got != c.want {
			t.Errorf("SuccessRatePermille(%x) = %d, want %d", c.hist, got, c.want)
		}
	}
}

func TestPushOutcome(t *testing.T) {
	h := uint64(0)
	h = PushOutcome(h, true)
	if h != 1 {
		t.Fatalf("push success: %x", h)
	}
	h = PushOutcome(h, false)
	if h != 2 {
		t.Fatalf("push failure: %x", h)
	}
	h = PushOutcome(h, true)
	if h != 5 {
		t.Fatalf("push success: %x", h)
	}
}

// TestQuickHistoryConvergence: pushing k consecutive failures onto a full
// history lowers the rate monotonically, and 64 failures zero it.
func TestQuickHistoryConvergence(t *testing.T) {
	f := func(k uint8) bool {
		h := ^uint64(0)
		prev := 1000
		for i := 0; i < int(k%65); i++ {
			h = PushOutcome(h, false)
			rate := SuccessRatePermille(h)
			if rate > prev {
				return false
			}
			prev = rate
		}
		if int(k%65) == 64 && SuccessRatePermille(h) != 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestThresholdCrossing documents the adaptation speed: with the paper's
// 85 % threshold, ten failures in the 64-bit window disable speculation.
func TestThresholdCrossing(t *testing.T) {
	h := ^uint64(0)
	n := 0
	for SuccessRatePermille(h) >= 850 {
		h = PushOutcome(h, false)
		n++
	}
	if n != 10 {
		t.Fatalf("failures to cross the 85%% threshold = %d, want 10", n)
	}
}
