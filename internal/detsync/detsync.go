// Package detsync holds the deterministic synchronization objects shared by
// the eager (Consequence-style) and lazy (LazyDet) engines: the lock table
// with its G_l last-acquisition map and per-(lock, thread) speculation
// metadata, deterministic condition variables, and barriers.
//
// All mutable fields are read and written only while the mutating thread
// holds the deterministic turn (see internal/dlc), except each thread's own
// speculation-metadata slots, which only that thread touches. Consecutive
// turn holders synchronize through the arbiter's mutex, so plain fields are
// safe and every state transition is deterministic.
package detsync

import "math/bits"

// Lock is the per-lock state and metadata. The paper allocates this "when
// the lock is initialized" (§3.2); here the whole table is sized up front.
type Lock struct {
	// Owner is tid+1 while held non-speculatively in exclusive mode,
	// 0 when free.
	Owner int32
	// Readers counts non-speculative shared-mode holders. Mutated only
	// at turns, like Owner.
	Readers int32
	// ReleaseDLC is the logical time of the most recent release. A
	// deterministic acquire at logical time T succeeds only if the lock
	// is free and ReleaseDLC <= T; otherwise the release lies in the
	// acquirer's logical future and the acquire deterministically fails.
	ReleaseDLC int64
	// LastAcquireDLC is G_l: the DLC of the most recent acquisition,
	// updated at every non-speculative acquisition and at every
	// successful speculative commit (paper §3.2). Conflict detection
	// compares it against a run's BEGIN value.
	LastAcquireDLC int64
	// LastCommitSeq is the heap commit sequence after the most recent
	// commit by a thread that had acquired this lock. A speculation run
	// whose heap base predates it may have missed critical-section
	// writes guarded by the lock and must be reverted.
	LastCommitSeq int64
	// Acquires counts total acquisitions (Table 1 statistics).
	Acquires int64
	// SpecHist is the per-thread 64-bit success history: bit i of
	// SpecHist[tid] records whether one of thread tid's last 64
	// speculation runs involving this lock committed (paper §3.4). The
	// metadata is per-thread so speculation decisions stay deterministic
	// (paper footnote 3).
	SpecHist []uint64
	// SpecAttempts counts, per thread, speculation decisions made while
	// below the success threshold, to implement retry-every-N probing.
	SpecAttempts []uint32
	// ConflictReverts counts speculation reverts attributed to this lock:
	// validation runs whose first failing check was one of this lock's
	// conflict checks. Reverts caused by atomic-location validation are
	// not attributed to any lock. Mutated only at turns, so the count is
	// a deterministic function of the schedule.
	ConflictReverts int64
	// ElideHist is the 64-bit publication-elision survival history of this
	// lock, shared across threads: bit i records whether a deferred (or, for
	// a virtual probe, hypothetically deferred) publication at one of the
	// last 64 eager releases survived until the owner's next release without
	// any other publication advancing the heap — the condition under which a
	// real stage would have merged there. Unlike SpecHist it is not
	// per-thread — a miss means the interval was crossed by a foreign
	// publication, which predicts misses for every owner. Mutated only at
	// turns (outcomes resolve at the owner's next publication point, which
	// is a turn), so decisions stay deterministic. Starts zero: elision is
	// earned through cost-free virtual probes, never paid for up front.
	ElideHist uint64
}

// Cond is a deterministic condition variable: a FIFO queue of parked
// threads. Enqueue and dequeue happen at turns, so the order is
// deterministic.
type Cond struct {
	Waiters []int
}

// Barrier is a deterministic barrier over all threads of the run.
type Barrier struct {
	Waiting []int
	// ReleaseSeq is the heap sequence at the releasing arrival's turn;
	// woken threads re-base their views on exactly this sequence.
	ReleaseSeq int64
}

// Table bundles the synchronization objects of one run.
type Table struct {
	NThreads int
	Locks    []Lock
	Conds    []Cond
	Barriers []Barrier
	// Atomics maps an atomically accessed heap address to the heap
	// commit sequence of its most recent committed update — the
	// location-level analogue of each lock's LastCommitSeq, used by the
	// speculative-atomics extension (paper §7). Mutated only at turns.
	Atomics map[int64]int64
	// SpawnSeq records, per thread, the heap sequence published at the
	// turn that spawned it; the thread re-bases its view there on resume.
	SpawnSeq []int64
	wake     []chan struct{}
}

// NewTable allocates nlocks locks, nconds condition variables and nbarriers
// barriers for nthreads threads. If specMeta is true, per-(lock, thread)
// speculation metadata is allocated with all-success histories, so
// speculation starts optimistically enabled.
func NewTable(nthreads, nlocks, nconds, nbarriers int, specMeta bool) *Table {
	t := &Table{
		NThreads: nthreads,
		Locks:    make([]Lock, nlocks),
		Conds:    make([]Cond, nconds),
		Barriers: make([]Barrier, nbarriers),
		Atomics:  make(map[int64]int64),
		SpawnSeq: make([]int64, nthreads),
		wake:     make([]chan struct{}, nthreads),
	}
	for i := range t.wake {
		t.wake[i] = make(chan struct{}, 1)
	}
	if specMeta {
		// Two flat backing arrays instead of two slices per lock: workloads
		// with thousands of locks (hash-table buckets) would otherwise pay
		// 2·nlocks allocations here on every run.
		hist := make([]uint64, nlocks*nthreads)
		for i := range hist {
			hist[i] = ^uint64(0)
		}
		attempts := make([]uint32, nlocks*nthreads)
		for i := range t.Locks {
			t.Locks[i].SpecHist = hist[i*nthreads : (i+1)*nthreads : (i+1)*nthreads]
			t.Locks[i].SpecAttempts = attempts[i*nthreads : (i+1)*nthreads : (i+1)*nthreads]
		}
	}
	return t
}

// Wake unblocks thread tid (which must be blocked, or about to block, in
// WaitWake). Called by a turn holder after Unpark.
func (t *Table) Wake(tid int) { t.wake[tid] <- struct{}{} }

// WaitWake blocks the calling thread until another thread wakes it.
func (t *Table) WaitWake(tid int) { <-t.wake[tid] }

// SuccessRatePermille returns the success rate of history word h in
// thousandths (popcount * 1000 / 64).
func SuccessRatePermille(h uint64) int {
	return bits.OnesCount64(h) * 1000 / 64
}

// RecentRatePermille is the success rate over only the newest w outcomes of
// history word h (PushOutcome shifts in at bit 0, so the low bits are the
// most recent). A short window reacts in w pushes instead of 64 — the
// difference between a policy that engages mid-phase and one that engages
// after the phase is over.
func RecentRatePermille(h uint64, w int) int {
	return bits.OnesCount64(h&(1<<w-1)) * 1000 / w
}

// PushOutcome shifts outcome (1 = success) into history word h.
func PushOutcome(h uint64, success bool) uint64 {
	h <<= 1
	if success {
		h |= 1
	}
	return h
}
