package trace

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNilRecorderIsSafe(t *testing.T) {
	var r *Recorder
	r.Sync(0, OpAcquire, 1, 2)
	r.Commit(0, 1, 2)
	if r.Signature() != 0 || r.Events() != 0 {
		t.Fatal("nil recorder must report zero")
	}
}

func TestSignatureOrderIndependentAcrossThreads(t *testing.T) {
	// The same per-thread event sequences recorded in different
	// wall-clock interleavings must produce identical signatures.
	mk := func(order []int) uint64 {
		r := New(2)
		seq := [][3]int64{{int64(OpAcquire), 5, 10}, {int64(OpRelease), 5, 12}}
		idx := []int{0, 0}
		for _, tid := range order {
			e := seq[idx[tid]]
			r.Sync(tid, Op(e[0]), e[1], e[2])
			idx[tid]++
		}
		return r.Signature()
	}
	a := mk([]int{0, 0, 1, 1})
	b := mk([]int{0, 1, 0, 1})
	c := mk([]int{1, 1, 0, 0})
	if a != b || b != c {
		t.Fatalf("signatures differ across interleavings: %x %x %x", a, b, c)
	}
}

func TestSignatureSensitiveToPerThreadOrder(t *testing.T) {
	r1 := New(1)
	r1.Sync(0, OpAcquire, 1, 1)
	r1.Sync(0, OpAcquire, 2, 2)
	r2 := New(1)
	r2.Sync(0, OpAcquire, 2, 2)
	r2.Sync(0, OpAcquire, 1, 1)
	if r1.Signature() == r2.Signature() {
		t.Fatal("signature must depend on per-thread event order")
	}
}

func TestSignatureSensitiveToThreadIdentity(t *testing.T) {
	r1 := New(2)
	r1.Sync(0, OpAcquire, 1, 1)
	r2 := New(2)
	r2.Sync(1, OpAcquire, 1, 1)
	if r1.Signature() == r2.Signature() {
		t.Fatal("signature must bind events to their thread")
	}
}

func TestCommitChainOrderSensitive(t *testing.T) {
	r1 := New(2)
	r1.Commit(0, 1, 1)
	r1.Commit(1, 2, 2)
	r2 := New(2)
	r2.Commit(1, 2, 2)
	r2.Commit(0, 1, 1)
	if r1.Signature() == r2.Signature() {
		t.Fatal("commit chain must be order-sensitive (commits are totally ordered)")
	}
}

func TestEventsCount(t *testing.T) {
	r := New(3)
	var wg sync.WaitGroup
	for tid := 0; tid < 3; tid++ {
		wg.Add(1)
		go func(tid int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				r.Sync(tid, OpAcquire, int64(i), int64(i))
			}
		}(tid)
	}
	wg.Wait()
	if got := r.Events(); got != 300 {
		t.Fatalf("events = %d, want 300", got)
	}
}

// TestQuickSignatureDeterministic: identical event streams always produce
// identical signatures.
func TestQuickSignatureDeterministic(t *testing.T) {
	f := func(events []uint32) bool {
		mk := func() uint64 {
			r := New(4)
			for _, e := range events {
				r.Sync(int(e%4), Op(e%10+1), int64(e>>8), int64(e>>16))
			}
			return r.Signature()
		}
		return mk() == mk()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestLoggingAndDiff: logged runs diff correctly — identical runs yield no
// divergences, and a mutated stream pinpoints the first difference.
func TestLoggingAndDiff(t *testing.T) {
	mk := func(alter bool) *Recorder {
		r := NewLogging(2)
		r.Sync(0, OpAcquire, 1, 10)
		r.Sync(0, OpRelease, 1, 12)
		obj := int64(2)
		if alter {
			obj = 3
		}
		r.Sync(1, OpAcquire, obj, 11)
		return r
	}
	if divs := DiffLogs(mk(false), mk(false)); len(divs) != 0 {
		t.Fatalf("identical runs reported divergent: %v", divs)
	}
	divs := DiffLogs(mk(false), mk(true))
	if len(divs) != 1 || divs[0].Tid != 1 || divs[0].Index != 0 {
		t.Fatalf("unexpected divergences: %v", divs)
	}
	if divs[0].A.Obj != 2 || divs[0].B.Obj != 3 {
		t.Fatalf("divergence events wrong: %v", divs[0])
	}
}

// TestDiffLengthMismatch: a truncated stream diverges at the end marker.
func TestDiffLengthMismatch(t *testing.T) {
	a := NewLogging(1)
	a.Sync(0, OpAcquire, 1, 1)
	a.Sync(0, OpRelease, 1, 2)
	b := NewLogging(1)
	b.Sync(0, OpAcquire, 1, 1)
	divs := DiffLogs(a, b)
	if len(divs) != 1 || divs[0].Index != 1 || divs[0].B != nil || divs[0].A == nil {
		t.Fatalf("unexpected divergences: %+v", divs)
	}
	if divs[0].String() == "" {
		t.Fatal("divergence must render")
	}
}
