package trace

import "fmt"

// Event is one fully recorded synchronization event, used by the
// determinism-debugging tools (signatures alone prove divergence; logs
// locate it).
type Event struct {
	Kind Op
	Obj  int64
	DLC  int64
}

// String renders the event compactly.
func (e Event) String() string {
	names := map[Op]string{
		OpAcquire: "acquire", OpRelease: "release",
		OpCondWait: "cond-wait", OpCondWake: "cond-wake",
		OpCondSignal: "cond-signal", OpCondBroadcast: "cond-broadcast",
		OpBarrier: "barrier", OpSyscall: "syscall",
		OpSpecCommit: "spec-commit", OpSpecRevert: "spec-revert",
		OpAtomic: "atomic", OpRAcquire: "racquire", OpRRelease: "rrelease",
		OpSpawn: "spawn", OpJoin: "join",
	}
	n := names[e.Kind]
	if n == "" {
		n = fmt.Sprintf("op%d", e.Kind)
	}
	return fmt.Sprintf("%s(%d)@%d", n, e.Obj, e.DLC)
}

// NewLogging returns a recorder that additionally keeps the full per-thread
// event streams. Each thread appends only to its own stream, so logging
// adds no synchronization.
func NewLogging(n int) *Recorder {
	r := New(n)
	r.logs = make([][]Event, n)
	return r
}

// ThreadLog returns thread tid's event stream (nil unless logging).
func (r *Recorder) ThreadLog(tid int) []Event {
	if r == nil || r.logs == nil {
		return nil
	}
	return r.logs[tid]
}

// Divergence describes the first difference between two runs' logs.
type Divergence struct {
	Tid   int
	Index int
	A, B  *Event // nil if that run's stream ended first
}

// String renders the divergence for humans.
func (d *Divergence) String() string {
	fmtEv := func(e *Event) string {
		if e == nil {
			return "<end of stream>"
		}
		return e.String()
	}
	return fmt.Sprintf("thread %d, event %d: run A %s, run B %s",
		d.Tid, d.Index, fmtEv(d.A), fmtEv(d.B))
}

// DiffLogs compares two logged runs and returns the first divergence in
// each thread's stream, or nil if the runs are identical. Deterministic
// engines must always return nil for same-input runs.
func DiffLogs(a, b *Recorder) []*Divergence {
	var out []*Divergence
	for tid := range a.logs {
		la, lb := a.logs[tid], b.logs[tid]
		n := len(la)
		if len(lb) < n {
			n = len(lb)
		}
		found := false
		for i := 0; i < n; i++ {
			if la[i] != lb[i] {
				out = append(out, &Divergence{Tid: tid, Index: i, A: &la[i], B: &lb[i]})
				found = true
				break
			}
		}
		if !found && len(la) != len(lb) {
			d := &Divergence{Tid: tid, Index: n}
			if n < len(la) {
				d.A = &la[n]
			}
			if n < len(lb) {
				d.B = &lb[n]
			}
			out = append(out, d)
		}
	}
	return out
}
