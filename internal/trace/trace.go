// Package trace records synchronization order so that determinism can be
// validated: two runs of a deterministic engine on the same program must
// produce identical trace signatures and heap hashes.
//
// The signature combines
//
//   - one FNV-1a chain per thread over that thread's own synchronization
//     events (operation, object, logical time) — per-thread order is total
//     and deterministic, and combining per-thread chains commutatively keeps
//     the signature independent of wall-clock interleaving; and
//   - a global chain over commit events, which are totally ordered by the
//     deterministic turn.
package trace

// Op identifies a traced event kind.
type Op uint8

// Event kinds recorded in thread chains.
const (
	OpAcquire Op = iota + 1
	OpRelease
	OpCondWait
	OpCondWake
	OpCondSignal
	OpCondBroadcast
	OpBarrier
	OpSyscall
	OpSpecCommit
	OpSpecRevert
	OpAtomic
	OpRAcquire
	OpRRelease
	OpSpawn
	OpJoin
)

const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func mix(h uint64, vals ...uint64) uint64 {
	for _, v := range vals {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= fnvPrime
			v >>= 8
		}
	}
	return h
}

// Recorder accumulates the signature. A nil *Recorder is valid and records
// nothing, so engines can be run untraced at full speed.
type Recorder struct {
	threads []uint64
	commits uint64
	nsync   []int64
	logs    [][]Event // full per-thread streams when logging (see log.go)
}

// New returns a recorder for n threads.
func New(n int) *Recorder {
	r := &Recorder{threads: make([]uint64, n), commits: fnvOffset, nsync: make([]int64, n)}
	for i := range r.threads {
		r.threads[i] = fnvOffset
	}
	return r
}

// Sync records a synchronization event in thread tid's chain. Safe to call
// concurrently from distinct threads.
func (r *Recorder) Sync(tid int, op Op, obj, dlc int64) {
	if r == nil {
		return
	}
	r.threads[tid] = mix(r.threads[tid], uint64(op), uint64(obj), uint64(dlc))
	r.nsync[tid]++
	if r.logs != nil {
		r.logs[tid] = append(r.logs[tid], Event{Kind: op, Obj: obj, DLC: dlc})
	}
}

// Commit records a heap commit in the global chain. Callers must hold the
// deterministic turn, which totally orders commits.
func (r *Recorder) Commit(tid int, dlc, seq int64) {
	if r == nil {
		return
	}
	r.commits = mix(r.commits, uint64(tid), uint64(dlc), uint64(seq))
}

// Signature returns the combined trace signature. Only meaningful after the
// run completes.
func (r *Recorder) Signature() uint64 {
	if r == nil {
		return 0
	}
	sig := r.commits
	for i, h := range r.threads {
		// Per-thread chains are bound to their thread ID and folded in
		// with XOR, which is order-independent across threads.
		sig ^= mix(h, uint64(i))
	}
	return sig
}

// Events returns the total number of synchronization events recorded.
func (r *Recorder) Events() int64 {
	if r == nil {
		return 0
	}
	var n int64
	for _, v := range r.nsync {
		n += v
	}
	return n
}
