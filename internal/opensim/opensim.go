// Package opensim is a deterministic open-loop request simulation layered
// on the harness: the "heavy traffic" lens on lazy determinism. A seeded,
// per-source partitioned RNG generates a Poisson-like arrival process in
// DLC time; each arrival instantiates a request program — drawn from a
// weighted workload mix with tunable contention and read-rate knobs — onto
// a bounded pool of simulated worker threads, queueing when all workers are
// busy.
//
// Because the arrival process is open-loop (arrivals do not wait for
// completions), queueing delay caused by arbitration and commit cost shows
// up in the latency tail rather than being absorbed by a closed feedback
// loop — the measurement ISSUE 8 and the real-time determinism literature
// call for.
//
// Every request is stamped admit/start/finish in DLC, read through the
// thread's logical clock and written to the shared versioned heap (so
// speculative executions that revert discard their stamps, and exactly one
// committed stamp survives — a Go-side array would race under LazyDet).
// Latency percentiles, queue depth and throughput are therefore functions
// of the deterministic schedule alone: bit-identical across hosts, Go
// versions and backends, and gateable in CI. Wall-clock twins stay in the
// report's Timing half, following internal/telemetry's split.
package opensim

import (
	"errors"
	"fmt"

	"lazydet/internal/harness"
	"lazydet/internal/stats"
	"lazydet/internal/telemetry"
)

// Named configuration errors.
var (
	// ErrEngine rejects engines without a deterministic logical clock:
	// DLC-stamped latency is meaningless under pthreads and not
	// reproducible under TotalOrder-Weak-Nondet.
	ErrEngine = errors.New("opensim: engine has no deterministic logical clock (need Consequence, TotalOrder-Weak or LazyDet)")
	// ErrWorkers rejects an empty worker pool.
	ErrWorkers = errors.New("opensim: worker pool must have at least one thread")
	// ErrRequests rejects an empty arrival schedule.
	ErrRequests = errors.New("opensim: request count must be at least one")
	// ErrMix rejects a workload mix whose weights sum to zero.
	ErrMix = errors.New("opensim: workload mix weights must sum to a positive value")
)

// MixEntry is one request class in the weighted workload mix.
type MixEntry struct {
	// Name labels the class in per-request output.
	Name string `json:"name"`
	// Weight is the class's share of arrivals (relative to the sum).
	Weight int `json:"weight"`
	// Ops is the number of account operations per request.
	Ops int `json:"ops"`
	// ReadPct is the percentage of those operations that are reads
	// (shared-lock account lookups); the rest are locked read-modify-
	// write updates.
	ReadPct int `json:"read_pct"`
}

// DefaultMix is a lookup-heavy service mix: cheap reads, medium updates,
// and an occasional long scan that holds reader locks across many keys.
func DefaultMix() []MixEntry {
	return []MixEntry{
		{Name: "lookup", Weight: 6, Ops: 2, ReadPct: 100},
		{Name: "update", Weight: 3, Ops: 4, ReadPct: 25},
		{Name: "scan", Weight: 1, Ops: 12, ReadPct: 100},
	}
}

// Config describes one simulation cell.
type Config struct {
	// Engine must be a deterministic engine (Consequence, TotalOrder-Weak
	// or LazyDet).
	Engine harness.EngineKind
	// Workers is the simulated worker-pool size; the VM runs Workers+1
	// threads (thread 0 is the arrival generator).
	Workers int
	// Requests is the total number of arrivals.
	Requests int
	// MeanGap is the mean inter-arrival gap in DLC units; offered load is
	// its reciprocal. Gaps are exponential-like (von Neumann sampling),
	// making the arrival process Poisson-like in DLC time.
	MeanGap int64
	// Seed drives every random stream (arrivals, mix, keys, read/write).
	Seed uint64

	// Keys is the account key space; Stripes the number of lock stripes
	// over it. HotPct percent of key draws are redirected into the first
	// HotKeys keys — the contention knob.
	Keys    int
	Stripes int
	HotPct  int
	HotKeys int

	// OpCost is the DLC compute cost modeled per account operation;
	// PollCost is the DLC cost an idle worker burns between queue polls.
	OpCost   int64
	PollCost int64

	// Mix is the weighted request mix; nil means DefaultMix.
	Mix []MixEntry

	// Compiled selects the threaded-code backend. Stamps and metrics must
	// be bit-identical to the interpreter (flush points coincide).
	Compiled bool
	// Trace enables sync-order trace recording (cross-checks).
	Trace bool
	// SpecHints seeds LazyDet's speculation policy with the progcheck
	// footprint verdicts (the queue lock classifies Conflicting, so the
	// hinted run skips its warm-up reverts). The hinted schedule is a
	// different — still deterministic — schedule, so DLC stamps and the
	// latency percentiles may shift; Validate's protocol invariants and
	// the account checksum hold either way. No effect on other engines.
	SpecHints bool
}

// withDefaults fills zero-valued knobs.
func (c Config) withDefaults() Config {
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.Requests == 0 {
		c.Requests = 256
	}
	if c.MeanGap == 0 {
		c.MeanGap = 128
	}
	if c.Keys == 0 {
		c.Keys = 256
	}
	if c.Stripes == 0 {
		c.Stripes = 8
	}
	if c.HotKeys == 0 {
		c.HotKeys = 4
	}
	if c.OpCost == 0 {
		c.OpCost = 16
	}
	if c.PollCost == 0 {
		c.PollCost = 24
	}
	if c.Mix == nil {
		c.Mix = DefaultMix()
	}
	return c
}

// validate checks the filled config.
func (c Config) validate() error {
	if !c.Engine.Deterministic() {
		return fmt.Errorf("%w: got %s", ErrEngine, c.Engine)
	}
	if c.Workers < 1 {
		return ErrWorkers
	}
	if c.Requests < 1 {
		return ErrRequests
	}
	weight := 0
	for _, m := range c.Mix {
		weight += m.Weight
	}
	if weight <= 0 {
		return ErrMix
	}
	return nil
}

// Request is one served request's deterministic account.
type Request struct {
	// ID is the arrival index (also the admission order).
	ID int
	// Mix indexes Config.Mix.
	Mix int
	// Admit, Start and Finish are DLC stamps: admission to the queue,
	// dequeue by a worker, and completion.
	Admit, Start, Finish int64
	// Depth is the queue depth at admission, including this request.
	Depth int64
}

// Latency is the end-to-end DLC latency (queueing plus service).
func (r Request) Latency() int64 { return r.Finish - r.Admit }

// Wait is the queueing delay before a worker picked the request up.
func (r Request) Wait() int64 { return r.Start - r.Admit }

// Result is one simulation run's outcome.
type Result struct {
	// Harness is the underlying run (trace signature, heap hash,
	// telemetry, wall time).
	Harness *harness.Result
	// Requests holds every request's stamps in arrival order.
	Requests []Request

	// Deterministic latency metrics, in DLC units.
	LatP50, LatP95, LatP99 int64
	WaitP95                int64
	QDepthMax              int64
	QDepthMean             float64
	// MakespanDLC spans first admission to last completion.
	MakespanDLC int64
	// ThroughputKDLC is completed requests per 1000 DLC of makespan.
	ThroughputKDLC float64
}

// Run executes one simulation cell and returns its deterministic account.
func Run(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	p := buildPlan(cfg)
	var collected []Request
	w := buildWorkload(cfg, p, &collected)
	opt := harness.Options{
		Engine:      cfg.Engine,
		Threads:     cfg.Workers + 1,
		Telemetry:   true,
		Trace:       cfg.Trace,
		CollectSpec: cfg.Engine == harness.LazyDet,
		Compiled:    cfg.Compiled,
		SpecHints:   cfg.SpecHints,
	}
	hres, err := harness.Run(w, opt)
	if err != nil {
		return nil, err
	}
	res := &Result{Harness: hres, Requests: collected}
	res.summarize()
	res.publish(hres.Telemetry)
	return res, nil
}

// summarize computes the deterministic metrics from the stamps.
func (r *Result) summarize() {
	n := len(r.Requests)
	lats := make([]int64, n)
	waits := make([]int64, n)
	minAdmit, maxFinish := int64(0), int64(0)
	var depthSum int64
	for i, q := range r.Requests {
		lats[i] = q.Latency()
		waits[i] = q.Wait()
		if i == 0 || q.Admit < minAdmit {
			minAdmit = q.Admit
		}
		if q.Finish > maxFinish {
			maxFinish = q.Finish
		}
		if q.Depth > r.QDepthMax {
			r.QDepthMax = q.Depth
		}
		depthSum += q.Depth
	}
	ps := stats.DLCPercentiles(lats, 50, 95, 99)
	r.LatP50, r.LatP95, r.LatP99 = ps[0], ps[1], ps[2]
	r.WaitP95 = stats.DLCPercentiles(waits, 95)[0]
	r.QDepthMean = float64(depthSum) / float64(n)
	r.MakespanDLC = maxFinish - minAdmit
	if r.MakespanDLC > 0 {
		r.ThroughputKDLC = float64(n) * 1000 / float64(r.MakespanDLC)
	}
}

// publish lands the summary in the run's telemetry registry: the gauges
// become deterministic report Metrics (the sim.* rows the perf gate
// enforces), the latency histogram a deterministic report distribution.
func (r *Result) publish(tel *telemetry.Recorder) {
	if tel == nil {
		return
	}
	tel.Count("sim.requests", int64(len(r.Requests)))
	for _, q := range r.Requests {
		tel.Observe("sim.latency_dlc", q.Latency())
	}
	tel.SetGauge("sim.latency_p50", float64(r.LatP50))
	tel.SetGauge("sim.latency_p95", float64(r.LatP95))
	tel.SetGauge("sim.latency_p99", float64(r.LatP99))
	tel.SetGauge("sim.wait_p95", float64(r.WaitP95))
	tel.SetGauge("sim.qdepth_max", float64(r.QDepthMax))
	tel.SetGauge("sim.qdepth_mean", r.QDepthMean)
	tel.SetGauge("sim.makespan_dlc", float64(r.MakespanDLC))
	tel.SetGauge("sim.throughput_kdlc", r.ThroughputKDLC)
}
