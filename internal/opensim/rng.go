// Seeded, per-source partitioned randomness for the open-loop simulation.
//
// Every random decision the simulation makes — arrival gaps, workload-mix
// draws, key choices, read/write coin flips — comes from its own named
// stream, derived from (seed, source name). Partitioning by source keeps the
// streams independent of consumption order: adding a draw to one source
// never perturbs another, so grid cells stay comparable across config
// changes (the inference-sim determinism recipe from SNIPPETS.md).
//
// All sampling is integer-only — splitmix64 states, 64-bit uniform
// comparisons — so every draw is bit-identical on every host and Go
// version. No floating point enters the arrival process.
package opensim

// stream is one named splitmix64 sequence.
type stream struct {
	state uint64
}

// fnv64 hashes a source name (FNV-1a), salting the seed per stream.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// newStream derives the named stream from the run seed. The salt is mixed
// through one splitmix64 step so adjacent seeds do not yield adjacent
// states.
func newStream(seed uint64, source string) *stream {
	s := &stream{state: seed ^ fnv64(source)}
	s.next()
	return s
}

// next returns the next 64-bit draw (splitmix64).
func (s *stream) next() uint64 {
	s.state += 0x9E3779B97F4A7C15
	z := s.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// intn returns a uniform draw in [0, n). n must be positive. The modulo
// bias at n ≪ 2^64 is negligible for simulation purposes and keeps the
// draw a single deterministic operation.
func (s *stream) intn(n int64) int64 {
	return int64(s.next() % uint64(n))
}

// expGap samples round(mean · Exp(1)) with von Neumann's comparison method:
// repeatedly draw a maximal strictly-decreasing run of uniforms U1 > U2 >
// ... > Uk; if the run length is odd, accept X = rejectedRounds + U1,
// otherwise reject the round. Only uniform draws and comparisons are used,
// so the sample is exact integer arithmetic — the arrival process is
// Poisson-like yet bit-stable across hosts. The fractional part scales mean
// by the top 32 bits of U1 in fixed point. Gaps are floored at 1: two
// requests never share an admission instant.
func (s *stream) expGap(mean int64) int64 {
	if mean <= 0 {
		return 1
	}
	for rounds := int64(0); ; rounds++ {
		u1 := s.next()
		prev := u1
		runLen := 1
		for {
			u := s.next()
			if u >= prev {
				break
			}
			prev = u
			runLen++
		}
		if runLen%2 == 1 {
			frac := int64((uint64(mean) * (u1 >> 32)) >> 32)
			g := rounds*mean + frac
			if g < 1 {
				g = 1
			}
			return g
		}
	}
}
