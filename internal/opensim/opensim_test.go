package opensim

import (
	"errors"
	"reflect"
	"testing"

	"lazydet/internal/harness"
)

func testConfig(e harness.EngineKind) Config {
	return Config{
		Engine:   e,
		Workers:  3,
		Requests: 200,
		MeanGap:  96,
		Seed:     42,
		Keys:     64,
		Stripes:  4,
		HotPct:   30,
		HotKeys:  2,
		Trace:    true,
	}
}

// Two runs of the same cell must agree on every stamp, the trace signature,
// the final heap, and every derived metric — the determinism claim the CI
// byte-diff rests on.
func TestRunTwiceIdentical(t *testing.T) {
	for _, e := range []harness.EngineKind{harness.Consequence, harness.TotalOrderWeak, harness.LazyDet} {
		cfg := testConfig(e)
		r1, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s run 1: %v", e, err)
		}
		r2, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s run 2: %v", e, err)
		}
		if !reflect.DeepEqual(r1.Requests, r2.Requests) {
			t.Errorf("%s: request stamps differ between runs", e)
		}
		if r1.Harness.TraceSig != r2.Harness.TraceSig {
			t.Errorf("%s: trace signatures differ: %x vs %x", e, r1.Harness.TraceSig, r2.Harness.TraceSig)
		}
		if r1.Harness.HeapHash != r2.Harness.HeapHash {
			t.Errorf("%s: heap hashes differ", e)
		}
		if r1.LatP99 != r2.LatP99 || r1.MakespanDLC != r2.MakespanDLC {
			t.Errorf("%s: derived metrics differ", e)
		}
	}
}

// The threaded-code backend must reproduce the interpreter's stamps and
// schedule exactly: both backends place DLC flush points identically, so a
// clock read mid-stream sees the same published value.
func TestBackendEquivalence(t *testing.T) {
	for _, e := range []harness.EngineKind{harness.Consequence, harness.LazyDet} {
		cfg := testConfig(e)
		ri, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s interp: %v", e, err)
		}
		cfg.Compiled = true
		rc, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s compiled: %v", e, err)
		}
		if !reflect.DeepEqual(ri.Requests, rc.Requests) {
			t.Errorf("%s: stamps differ between interpreter and compiled backends", e)
		}
		if ri.Harness.TraceSig != rc.Harness.TraceSig {
			t.Errorf("%s: trace signatures differ across backends", e)
		}
	}
}

// Different seeds must yield different schedules (the RNG partitioning is
// actually seeded), while metrics remain internally consistent.
func TestSeedSensitivity(t *testing.T) {
	cfg := testConfig(harness.Consequence)
	r1, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 43
	r2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(r1.Requests, r2.Requests) {
		t.Error("different seeds produced identical request schedules")
	}
}

// Latency percentiles are ordered, the queue depth is sane, and a heavier
// offered load (smaller mean gap) cannot lower the latency tail — sanity of
// the queueing model on fixed seeds.
func TestMetricsSanity(t *testing.T) {
	cfg := testConfig(harness.Consequence)
	light, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if light.LatP50 > light.LatP95 || light.LatP95 > light.LatP99 {
		t.Errorf("percentiles out of order: p50=%d p95=%d p99=%d", light.LatP50, light.LatP95, light.LatP99)
	}
	if light.QDepthMax < 1 || light.ThroughputKDLC <= 0 {
		t.Errorf("degenerate metrics: qdepth=%d throughput=%f", light.QDepthMax, light.ThroughputKDLC)
	}
	cfg.MeanGap = 8 // saturating load
	heavy, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if heavy.LatP99 < light.LatP99 {
		t.Errorf("saturating load lowered tail latency: %d < %d", heavy.LatP99, light.LatP99)
	}
	if heavy.QDepthMax < light.QDepthMax {
		t.Errorf("saturating load lowered max queue depth: %d < %d", heavy.QDepthMax, light.QDepthMax)
	}
}

// Engines without a deterministic logical clock are rejected by name.
func TestRejectsNonDeterministicEngines(t *testing.T) {
	for _, e := range []harness.EngineKind{harness.Pthreads, harness.TotalOrderWeakNondet} {
		_, err := Run(testConfig(e))
		if !errors.Is(err, ErrEngine) {
			t.Errorf("%s: got %v, want ErrEngine", e, err)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	cfg := testConfig(harness.Consequence)
	cfg.Workers = -1
	if _, err := Run(cfg); !errors.Is(err, ErrWorkers) {
		t.Errorf("negative workers: got %v, want ErrWorkers", err)
	}
	cfg = testConfig(harness.Consequence)
	cfg.Requests = -1
	if _, err := Run(cfg); !errors.Is(err, ErrRequests) {
		t.Errorf("negative requests: got %v, want ErrRequests", err)
	}
	cfg = testConfig(harness.Consequence)
	cfg.Mix = []MixEntry{{Name: "noop", Weight: 0, Ops: 1}}
	if _, err := Run(cfg); !errors.Is(err, ErrMix) {
		t.Errorf("zero-weight mix: got %v, want ErrMix", err)
	}
}

// The von Neumann sampler's empirical mean must track the requested mean
// (it is an exact Exp(1) sampler scaled by mean), and it must be exactly
// reproducible from the seed.
func TestExponentialGapSampler(t *testing.T) {
	const mean, n = 128, 20000
	s := newStream(7, "arrivals")
	var sum int64
	for i := 0; i < n; i++ {
		sum += s.expGap(mean)
	}
	got := float64(sum) / n
	if got < 0.9*mean || got > 1.1*mean {
		t.Errorf("empirical mean %f, want within 10%% of %d", got, mean)
	}
	s2 := newStream(7, "arrivals")
	var sum2 int64
	for i := 0; i < n; i++ {
		sum2 += s2.expGap(mean)
	}
	if sum != sum2 {
		t.Error("same seed produced different gap sequences")
	}
}
