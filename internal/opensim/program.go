// Plan generation and VM program construction for the open-loop simulation.
//
// Everything random is decided in Go before the run and frozen into
// immutable plan arrays: arrival gaps, each request's mix class, and each
// operation's key and read/write kind. The VM programs only index those
// arrays, so the work a request performs is a function of (seed, config)
// alone — identical across engines, thread interleavings and backends.
// What the engines *do* determine is the schedule: who pops which request
// when, and therefore every DLC stamp.
package opensim

import (
	"fmt"

	"lazydet/internal/dvm"
	"lazydet/internal/harness"
)

// burnStep is the DLC advanced per generator burn-loop iteration (branch +
// costed compute + jump). Arrival gaps are quantized to this grain.
const burnStep = 16

// plan freezes every random decision of one simulation cell.
type plan struct {
	// gapIters[i] is the number of burn-loop iterations (burnStep DLC
	// each) the generator spends before admitting request i.
	gapIters []int64
	// mix[i] is request i's class (index into Config.Mix).
	mix []int32
	// opOff/opKey/opRead flatten the per-request operation lists:
	// request i's operations are indices opOff[i]..opOff[i+1] (exclusive).
	opOff  []int32
	opKey  []int32
	opRead []byte
	// writes counts write operations across the whole plan (the account
	// checksum validated after the run).
	writes int64
}

// buildPlan draws the cell's arrival schedule and request bodies from the
// seed's partitioned streams.
func buildPlan(cfg Config) *plan {
	arrivals := newStream(cfg.Seed, "arrivals")
	mixSel := newStream(cfg.Seed, "mix")
	keySel := newStream(cfg.Seed, "keys")
	rwSel := newStream(cfg.Seed, "readwrite")

	totalWeight := int64(0)
	for _, m := range cfg.Mix {
		totalWeight += int64(m.Weight)
	}

	p := &plan{
		gapIters: make([]int64, cfg.Requests),
		mix:      make([]int32, cfg.Requests),
		opOff:    make([]int32, cfg.Requests+1),
	}
	for i := 0; i < cfg.Requests; i++ {
		gap := arrivals.expGap(cfg.MeanGap)
		iters := (gap + burnStep/2) / burnStep
		if iters < 1 {
			iters = 1
		}
		p.gapIters[i] = iters

		// Weighted mix draw.
		w := mixSel.intn(totalWeight)
		cls := 0
		for w >= int64(cfg.Mix[cls].Weight) {
			w -= int64(cfg.Mix[cls].Weight)
			cls++
		}
		p.mix[i] = int32(cls)

		for op := 0; op < cfg.Mix[cls].Ops; op++ {
			var key int64
			if keySel.intn(100) < int64(cfg.HotPct) {
				key = keySel.intn(int64(cfg.HotKeys))
			} else {
				key = keySel.intn(int64(cfg.Keys))
			}
			read := rwSel.intn(100) < int64(cfg.Mix[cls].ReadPct)
			p.opKey = append(p.opKey, int32(key))
			if read {
				p.opRead = append(p.opRead, 1)
			} else {
				p.opRead = append(p.opRead, 0)
				p.writes++
			}
		}
		p.opOff[i+1] = int32(len(p.opKey))
	}
	return p
}

// layout is the shared-heap map. The queue has one slot per request (a
// single producer admits request i into slot i, so no wraparound), and
// every request owns a stride-4 stamp record. Stamps live in the shared
// heap — not Go-side arrays — because under LazyDet a worker may pop and
// stamp a request speculatively and then revert; versioned-heap stores are
// discarded on revert, so exactly one committed stamp survives.
type layout struct {
	head, tail, done int64 // queue control words
	acc              int64 // account array base, Keys words
	queue            int64 // queue slots, Requests words
	stamp            int64 // stamp records, 4·Requests words
	words            int64
}

// Stamp record fields.
const (
	stampAdmit = 0
	stampDepth = 1
	stampStart = 2
	stampFinish = 3
)

func newLayout(cfg Config) layout {
	l := layout{head: 0, tail: 1, done: 2}
	l.acc = 8 // control words padded out
	l.queue = l.acc + int64(cfg.Keys)
	l.stamp = l.queue + int64(cfg.Requests)
	l.words = l.stamp + 4*int64(cfg.Requests)
	return l
}

// Lock table: lock 0 guards the queue, locks 1..Stripes stripe the
// accounts.
const qlock = 0

// clockVal reads the thread's logical clock as an operand. The engine
// installs Thread.Clock for every deterministic engine; the zero fallback
// keeps a misconfigured run loud in Validate (admit stamps must be ≥ 1)
// instead of panicking mid-run.
func clockVal() dvm.Val {
	return dvm.Dyn(func(t *dvm.Thread) int64 {
		if t.Clock == nil {
			return 0
		}
		return t.Clock()
	})
}

// VetPrograms builds the program set Run would execute for cfg at the given
// total thread count (one generator + threads-1 workers), for static
// analysis without running a cell — cmd/lazydet-vet's opensim target.
func VetPrograms(cfg Config, threads int) []*dvm.Program {
	cfg = cfg.withDefaults()
	var sink []Request
	return buildWorkload(cfg, buildPlan(cfg), &sink).Programs(threads)
}

// buildWorkload assembles the generator and worker programs plus the
// Validate hook that audits the final heap and extracts the stamps into
// *out in arrival order.
func buildWorkload(cfg Config, p *plan, out *[]Request) *harness.Workload {
	l := newLayout(cfg)
	gen := buildGenerator(cfg, p, l)
	worker := buildWorker(cfg, p, l)

	return &harness.Workload{
		Name:      "opensim",
		HeapWords: l.words,
		Locks:     1 + cfg.Stripes,
		Programs: func(threads int) []*dvm.Program {
			progs := make([]*dvm.Program, threads)
			progs[0] = gen
			for i := 1; i < threads; i++ {
				progs[i] = worker
			}
			return progs
		},
		Validate: func(read func(addr int64) int64, threads int) error {
			return extract(cfg, p, l, read, out)
		},
	}
}

// buildGenerator emits thread 0: advance the clock by each arrival gap,
// then admit the request under the queue lock, stamping admission time and
// queue depth.
func buildGenerator(cfg Config, p *plan, l layout) *dvm.Program {
	b := dvm.NewBuilder("opensim-gen")
	i := b.Reg()
	burn := b.Reg()
	h := b.Reg()
	b.ForN(i, int64(cfg.Requests), func() {
		// Burn the inter-arrival gap: each iteration retires burnStep
		// DLC (1 branch + (burnStep-2) costed compute + 1 jump).
		b.Do(func(t *dvm.Thread) { t.SetR(burn, p.gapIters[t.R(i)]) })
		b.While(func(t *dvm.Thread) bool { return t.R(burn) > 0 }, func() {
			b.DoCost(burnStep-2, func(t *dvm.Thread) { t.AddR(burn, -1) })
		})
		b.Lock(dvm.Const(qlock).InClass("locks"))
		b.Load(h, dvm.Const(l.head).InClass("qctl"))
		b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return l.queue + t.R(i) }).InClass("queue"), dvm.FromReg(i))
		b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return l.stamp + 4*t.R(i) + stampAdmit }).InClass("stamps"), clockVal())
		b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return l.stamp + 4*t.R(i) + stampDepth }).InClass("stamps"),
			dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(i) + 1 - t.R(h) }))
		b.Store(dvm.Const(l.tail).InClass("qctl"), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(i) + 1 }))
		b.Unlock(dvm.Const(qlock).InClass("locks"))
	})
	b.Lock(dvm.Const(qlock).InClass("locks"))
	b.Store(dvm.Const(l.done).InClass("qctl"), dvm.Const(1))
	b.Unlock(dvm.Const(qlock).InClass("locks"))
	return b.Build()
}

// buildWorker emits the pool thread: pop under the queue lock, stamp
// start, run the request's precomputed operation list against the striped
// accounts, stamp finish; poll (burning PollCost) while the queue is empty
// and arrivals are still coming; exit once done is set and the queue has
// drained.
func buildWorker(cfg Config, p *plan, l layout) *dvm.Program {
	b := dvm.NewBuilder("opensim-worker")
	exit := b.Reg()
	h := b.Reg()
	tl := b.Reg()
	req := b.Reg()
	d := b.Reg()
	op := b.Reg()
	nops := b.Reg()
	v := b.Reg()

	// keyAt resolves the current operation's key; lockOf its lock stripe.
	keyAt := func(t *dvm.Thread) int64 {
		return int64(p.opKey[p.opOff[t.R(req)]+int32(t.R(op))])
	}
	lockOf := dvm.Dyn(func(t *dvm.Thread) int64 { return 1 + keyAt(t)%int64(cfg.Stripes) }).InClass("stripelocks")
	accOf := dvm.Dyn(func(t *dvm.Thread) int64 { return l.acc + keyAt(t) }).InClass("accounts")
	isRead := func(t *dvm.Thread) bool {
		return p.opRead[p.opOff[t.R(req)]+int32(t.R(op))] != 0
	}

	b.While(func(t *dvm.Thread) bool { return t.R(exit) == 0 }, func() {
		b.Lock(dvm.Const(qlock).InClass("locks"))
		b.Load(h, dvm.Const(l.head).InClass("qctl"))
		b.Load(tl, dvm.Const(l.tail).InClass("qctl"))
		b.IfElse(func(t *dvm.Thread) bool { return t.R(h) < t.R(tl) }, func() {
			b.Load(req, dvm.Dyn(func(t *dvm.Thread) int64 { return l.queue + t.R(h) }).InClass("queue"))
			b.Store(dvm.Const(l.head).InClass("qctl"), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(h) + 1 }))
			b.Unlock(dvm.Const(qlock).InClass("locks"))
			b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return l.stamp + 4*t.R(req) + stampStart }), clockVal())
			b.Do(func(t *dvm.Thread) {
				t.SetR(nops, int64(p.opOff[t.R(req)+1]-p.opOff[t.R(req)]))
			})
			b.For(op, 0, dvm.FromReg(nops), func() {
				b.IfElse(isRead, func() {
					b.RLock(lockOf)
					b.Load(v, accOf)
					b.DoCost(cfg.OpCost, func(t *dvm.Thread) {})
					b.RUnlock(lockOf)
				}, func() {
					b.Lock(lockOf)
					b.Load(v, accOf)
					b.DoCost(cfg.OpCost, func(t *dvm.Thread) {})
					b.Store(accOf, dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(v) + 1 }))
					b.Unlock(lockOf)
				})
			})
			b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return l.stamp + 4*t.R(req) + stampFinish }), clockVal())
		}, func() {
			b.Load(d, dvm.Const(l.done).InClass("qctl"))
			b.Unlock(dvm.Const(qlock).InClass("locks"))
			// done==1 with an empty queue is final: tail is frozen after
			// done, head only grows, so any view showing both has seen
			// the whole drained schedule (stale speculative views
			// included — staleness only under-reports head).
			b.IfElse(func(t *dvm.Thread) bool { return t.R(d) != 0 }, func() {
				b.Do(func(t *dvm.Thread) { t.SetR(exit, 1) })
			}, func() {
				b.DoCost(cfg.PollCost, func(t *dvm.Thread) {})
			})
		})
	})
	return b.Build()
}

// extract audits the final heap and converts the stamp records into
// Requests. Every audit failure here is a determinism or protocol bug, not
// a measurement artifact, so all of them are hard errors.
func extract(cfg Config, p *plan, l layout, read func(addr int64) int64, out *[]Request) error {
	if h, tl, d := read(l.head), read(l.tail), read(l.done); h != int64(cfg.Requests) || tl != int64(cfg.Requests) || d != 1 {
		return fmt.Errorf("opensim: queue not drained: head=%d tail=%d done=%d want %d/%d/1", h, tl, d, cfg.Requests, cfg.Requests)
	}
	var sum int64
	for k := 0; k < cfg.Keys; k++ {
		sum += read(l.acc + int64(k))
	}
	if sum != p.writes {
		return fmt.Errorf("opensim: account checksum %d != planned writes %d", sum, p.writes)
	}
	reqs := make([]Request, cfg.Requests)
	for i := range reqs {
		base := l.stamp + 4*int64(i)
		r := Request{
			ID:     i,
			Mix:    int(p.mix[i]),
			Admit:  read(base + stampAdmit),
			Depth:  read(base + stampDepth),
			Start:  read(base + stampStart),
			Finish: read(base + stampFinish),
		}
		if r.Admit < 1 || r.Start < r.Admit || r.Finish < r.Start || r.Depth < 1 {
			return fmt.Errorf("opensim: request %d has inconsistent stamps admit=%d start=%d finish=%d depth=%d",
				i, r.Admit, r.Start, r.Finish, r.Depth)
		}
		reqs[i] = r
	}
	*out = reqs
	return nil
}
