// Package stats collects the measurements the paper's evaluation reports:
// per-lock acquisition counts (Table 1), speculation statistics (Table 2),
// revert-cost samples (Figure 12), and per-thread wait time, the proxy for
// CPU utilization (Figure 10). It also provides the percentile and
// least-squares helpers used to render those tables and figures.
package stats

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// LockCounter counts acquisitions per lock variable. Used with the pthreads
// engine to reproduce Table 1.
type LockCounter struct {
	counts []atomic.Int64
}

// NewLockCounter returns a counter for nlocks lock variables.
func NewLockCounter(nlocks int) *LockCounter {
	return &LockCounter{counts: make([]atomic.Int64, nlocks)}
}

// Inc records one acquisition of lock l.
func (c *LockCounter) Inc(l int64) {
	if c == nil {
		return
	}
	c.counts[l].Add(1)
}

// Summary aggregates the counter into Table 1's columns: the number of lock
// variables actually used, total acquisitions, and per-variable acquisition
// percentiles.
type Summary struct {
	Variables    int
	Acquisitions int64
	P50, P75     int64
	P95, Max     int64
}

// Summarize computes the Table 1 row for the collected counts. Locks that
// were never acquired are excluded, matching the paper's "# lock variables"
// column, which reflects locks the program actually initialized and used.
func (c *LockCounter) Summarize() Summary {
	var used []int64
	var total int64
	for i := range c.counts {
		if v := c.counts[i].Load(); v > 0 {
			used = append(used, v)
			total += v
		}
	}
	sort.Slice(used, func(i, j int) bool { return used[i] < used[j] })
	s := Summary{Variables: len(used), Acquisitions: total}
	if len(used) > 0 {
		s.P50 = Percentile(used, 50)
		s.P75 = Percentile(used, 75)
		s.P95 = Percentile(used, 95)
		s.Max = used[len(used)-1]
	}
	return s
}

// Percentile returns the p-th percentile of sorted (ascending) values using
// nearest-rank. Empty input yields 0; p is clamped into [0, 100], with NaN
// treated as 0 (float→int conversion of NaN is platform-defined, so it must
// never reach the rank computation).
func Percentile(sorted []int64, p float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	if math.IsNaN(p) || p < 0 {
		p = 0
	} else if p > 100 {
		p = 100
	}
	rank := int(math.Ceil(p/100*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// RevertSample is one revert event: the time the revert took and the size of
// the discarded change set in words (Figure 12's axes).
type RevertSample struct {
	CostNs    int64
	ChangeSet int
}

// Spec accumulates the speculation statistics of Table 2 plus the revert
// samples of Figure 12. Counter fields are atomic because threads record
// events concurrently; revert samples are mutex-protected (reverts are rare
// and already expensive).
type Spec struct {
	TotalAcquires atomic.Int64 // every lock acquisition, speculative or not
	SpecAcquires  atomic.Int64 // acquisitions performed speculatively
	Runs          atomic.Int64 // speculation runs terminated
	Commits       atomic.Int64 // runs that committed
	Reverts       atomic.Int64 // runs that reverted
	CommittedCS   atomic.Int64 // critical sections inside committed runs
	Upgrades      atomic.Int64 // runs upgraded to irrevocable

	mu      sync.Mutex
	reverts []RevertSample
}

// AddRevertSample records one revert's cost and change-set size.
func (s *Spec) AddRevertSample(costNs int64, changeSet int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.reverts = append(s.reverts, RevertSample{CostNs: costNs, ChangeSet: changeSet})
	s.mu.Unlock()
}

// RevertSamples returns a copy of the recorded revert samples.
func (s *Spec) RevertSamples() []RevertSample {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]RevertSample, len(s.reverts))
	copy(out, s.reverts)
	return out
}

// SpecAcquirePct returns the percentage of lock acquisitions performed
// speculatively (Table 2, "% spec. acquisitions").
func (s *Spec) SpecAcquirePct() float64 {
	t := s.TotalAcquires.Load()
	if t == 0 {
		return 0
	}
	return 100 * float64(s.SpecAcquires.Load()) / float64(t)
}

// SuccessPct returns the percentage of speculation runs that committed
// (Table 2, "% spec. success").
func (s *Spec) SuccessPct() float64 {
	r := s.Runs.Load()
	if r == 0 {
		return 0
	}
	return 100 * float64(s.Commits.Load()) / float64(r)
}

// MeanRunCS returns the mean number of critical sections per committed
// speculation run (Table 2, "mean spec. length"), or NaN if none committed.
func (s *Spec) MeanRunCS() float64 {
	c := s.Commits.Load()
	if c == 0 {
		return math.NaN()
	}
	return float64(s.CommittedCS.Load()) / float64(c)
}

// Times tracks per-thread time spent blocked (waiting for the turn, parked
// on condition variables and barriers, or blocked on locks). Busy time =
// wall time − blocked time; aggregate busy fraction across threads is the
// CPU-utilization proxy of Figure 10.
type Times struct {
	blockedNs []atomic.Int64
}

// NewTimes returns a tracker for n threads, or nil if disabled.
func NewTimes(n int) *Times {
	return &Times{blockedNs: make([]atomic.Int64, n)}
}

// AddBlocked charges ns of blocked time to thread tid.
func (t *Times) AddBlocked(tid int, ns int64) {
	if t == nil {
		return
	}
	t.blockedNs[tid].Add(ns)
}

// BlockedNs returns the blocked time charged to thread tid, or 0 when tid is
// out of range or the tracker is disabled.
func (t *Times) BlockedNs(tid int) int64 {
	if t == nil || tid < 0 || tid >= len(t.blockedNs) {
		return 0
	}
	return t.blockedNs[tid].Load()
}

// TotalBlockedNs returns the summed blocked time across threads.
func (t *Times) TotalBlockedNs() int64 {
	if t == nil {
		return 0
	}
	var n int64
	for i := range t.blockedNs {
		n += t.blockedNs[i].Load()
	}
	return n
}

// UtilizationPct returns the busy fraction, in percent, given the run's wall
// time and thread count: 100 × (threads×wall − blocked) / (threads×wall).
// Zero or negative capacity (zero wall time, or no threads) reports 100: no
// time elapsed in which anything could have blocked, and callers derive
// blocked time as 100 − utilization, which must then be 0.
func (t *Times) UtilizationPct(wallNs int64, threads int) float64 {
	total := wallNs * int64(threads)
	if total <= 0 {
		return 100
	}
	busy := total - t.TotalBlockedNs()
	if busy < 0 {
		busy = 0
	}
	return 100 * float64(busy) / float64(total)
}

// LinReg fits y = slope*x + intercept by least squares.
func LinReg(xs, ys []float64) (slope, intercept float64) {
	n := float64(len(xs))
	if n == 0 || len(xs) != len(ys) {
		return math.NaN(), math.NaN()
	}
	var sx, sy, sxx, sxy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, sy / n
	}
	slope = (n*sxy - sx*sy) / den
	intercept = (sy - slope*sx) / n
	return slope, intercept
}

// DLCPercentiles computes nearest-rank percentiles of a set of DLC
// durations in one pass: vs is copied and sorted once, then each requested
// percentile is read with Percentile. Used for the open-loop simulation's
// latency summaries, where the values are exact deterministic counts (not
// histogram buckets), so the percentiles are exact and bit-stable too.
func DLCPercentiles(vs []int64, ps ...float64) []int64 {
	sorted := append([]int64(nil), vs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	out := make([]int64, len(ps))
	for i, p := range ps {
		out[i] = Percentile(sorted, p)
	}
	return out
}

// Mean returns the arithmetic mean of vs, or NaN if empty.
func Mean(vs []float64) float64 {
	if len(vs) == 0 {
		return math.NaN()
	}
	var s float64
	for _, v := range vs {
		s += v
	}
	return s / float64(len(vs))
}

// Stddev returns the sample standard deviation of vs.
func Stddev(vs []float64) float64 {
	if len(vs) < 2 {
		return 0
	}
	m := Mean(vs)
	var s float64
	for _, v := range vs {
		s += (v - m) * (v - m)
	}
	return math.Sqrt(s / float64(len(vs)-1))
}
