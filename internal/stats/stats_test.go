package stats

import (
	"math"
	"sort"
	"sync"
	"testing"
	"testing/quick"
)

func TestLockCounterSummarize(t *testing.T) {
	c := NewLockCounter(5)
	for i := 0; i < 10; i++ {
		c.Inc(0)
	}
	c.Inc(2)
	c.Inc(2)
	c.Inc(4)
	s := c.Summarize()
	if s.Variables != 3 {
		t.Errorf("variables = %d, want 3 (unused locks excluded)", s.Variables)
	}
	if s.Acquisitions != 13 {
		t.Errorf("acquisitions = %d, want 13", s.Acquisitions)
	}
	if s.Max != 10 {
		t.Errorf("max = %d, want 10", s.Max)
	}
	if s.P50 != 2 {
		t.Errorf("p50 = %d, want 2", s.P50)
	}
}

func TestLockCounterNilSafe(t *testing.T) {
	var c *LockCounter
	c.Inc(3) // must not panic
}

func TestPercentileNearestRank(t *testing.T) {
	vals := []int64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	cases := []struct {
		p    float64
		want int64
	}{{50, 5}, {75, 8}, {95, 10}, {100, 10}, {1, 1}}
	for _, c := range cases {
		if got := Percentile(vals, c.p); got != c.want {
			t.Errorf("P%.0f = %d, want %d", c.p, got, c.want)
		}
	}
	if Percentile(nil, 50) != 0 {
		t.Error("empty percentile must be 0")
	}
}

// TestPercentileGuards: out-of-range and NaN percentiles degrade to the
// nearest valid rank instead of indexing with garbage.
func TestPercentileGuards(t *testing.T) {
	vals := []int64{10, 20, 30}
	cases := []struct {
		name string
		p    float64
		want int64
	}{
		{"negative", -50, 10},
		{"zero", 0, 10},
		{"over-100", 250, 30},
		{"nan", math.NaN(), 10},
		{"inf", math.Inf(1), 30},
		{"neg-inf", math.Inf(-1), 10},
	}
	for _, c := range cases {
		if got := Percentile(vals, c.p); got != c.want {
			t.Errorf("%s: Percentile(vals, %v) = %d, want %d", c.name, c.p, got, c.want)
		}
	}
	if got := Percentile([]int64{7}, math.NaN()); got != 7 {
		t.Errorf("single-element NaN percentile = %d, want 7", got)
	}
}

func TestSpecPercentages(t *testing.T) {
	s := &Spec{}
	s.TotalAcquires.Store(200)
	s.SpecAcquires.Store(150)
	s.Runs.Store(40)
	s.Commits.Store(30)
	s.CommittedCS.Store(90)
	if got := s.SpecAcquirePct(); got != 75 {
		t.Errorf("spec acquire pct = %v, want 75", got)
	}
	if got := s.SuccessPct(); got != 75 {
		t.Errorf("success pct = %v, want 75", got)
	}
	if got := s.MeanRunCS(); got != 3 {
		t.Errorf("mean run = %v, want 3", got)
	}
}

func TestSpecZeroSafe(t *testing.T) {
	s := &Spec{}
	if s.SpecAcquirePct() != 0 || s.SuccessPct() != 0 {
		t.Error("zero-state percentages must be 0")
	}
	if !math.IsNaN(s.MeanRunCS()) {
		t.Error("mean run with no commits must be NaN")
	}
}

func TestRevertSamplesConcurrent(t *testing.T) {
	s := &Spec{}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				s.AddRevertSample(int64(i*100+j), j)
			}
		}(i)
	}
	wg.Wait()
	if got := len(s.RevertSamples()); got != 400 {
		t.Fatalf("samples = %d, want 400", got)
	}
}

func TestTimesUtilization(t *testing.T) {
	tm := NewTimes(2)
	tm.AddBlocked(0, 500)
	tm.AddBlocked(1, 500)
	// 2 threads × 1000ns wall = 2000ns capacity, 1000 blocked → 50 %.
	if got := tm.UtilizationPct(1000, 2); got != 50 {
		t.Fatalf("utilization = %v, want 50", got)
	}
	var nilT *Times
	nilT.AddBlocked(0, 1) // nil-safe
	if nilT.TotalBlockedNs() != 0 {
		t.Fatal("nil Times must report 0")
	}
}

// TestUtilizationZeroCapacity: degenerate wall time or thread counts report
// full utilization, so the derived blocked fraction (100 − utilization) is 0
// rather than a spurious 100 %.
func TestUtilizationZeroCapacity(t *testing.T) {
	tm := NewTimes(2)
	tm.AddBlocked(0, 500)
	cases := []struct {
		name    string
		wallNs  int64
		threads int
	}{
		{"zero-wall", 0, 2},
		{"zero-threads", 1000, 0},
		{"negative-wall", -1000, 2},
		{"negative-threads", 1000, -2},
	}
	for _, c := range cases {
		if got := tm.UtilizationPct(c.wallNs, c.threads); got != 100 {
			t.Errorf("%s: utilization = %v, want 100", c.name, got)
		}
	}
	// Blocked time exceeding capacity (timer skew) clamps busy to 0.
	over := NewTimes(1)
	over.AddBlocked(0, 5000)
	if got := over.UtilizationPct(1000, 1); got != 0 {
		t.Errorf("over-blocked utilization = %v, want 0", got)
	}
}

func TestTimesBlockedNs(t *testing.T) {
	tm := NewTimes(2)
	tm.AddBlocked(1, 42)
	if got := tm.BlockedNs(1); got != 42 {
		t.Errorf("BlockedNs(1) = %d, want 42", got)
	}
	if tm.BlockedNs(0) != 0 || tm.BlockedNs(-1) != 0 || tm.BlockedNs(2) != 0 {
		t.Error("out-of-range BlockedNs must be 0")
	}
	var nilT *Times
	if nilT.BlockedNs(0) != 0 {
		t.Error("nil BlockedNs must be 0")
	}
}

func TestLinRegRecoversLine(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3*x + 7
	}
	slope, intercept := LinReg(xs, ys)
	if math.Abs(slope-3) > 1e-9 || math.Abs(intercept-7) > 1e-9 {
		t.Fatalf("fit = (%v, %v), want (3, 7)", slope, intercept)
	}
}

func TestMeanStddev(t *testing.T) {
	vs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(vs); m != 5 {
		t.Fatalf("mean = %v, want 5", m)
	}
	if sd := Stddev(vs); math.Abs(sd-2.138089935299395) > 1e-12 {
		t.Fatalf("stddev = %v", sd)
	}
}

// TestQuickPercentileBounds: percentiles always come from the data and are
// monotone in p.
func TestQuickPercentileBounds(t *testing.T) {
	f := func(raw []int16) bool {
		if len(raw) == 0 {
			return true
		}
		vals := make([]int64, len(raw))
		for i, v := range raw {
			vals[i] = int64(v)
		}
		sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
		prev := vals[0]
		for _, p := range []float64{1, 25, 50, 75, 95, 100} {
			got := Percentile(vals, p)
			if got < vals[0] || got > vals[len(vals)-1] || got < prev {
				return false
			}
			prev = got
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestQuickLinRegResidualOrthogonality: least squares leaves residuals with
// zero mean.
func TestQuickLinRegResidualOrthogonality(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 3 {
			return true
		}
		xs := make([]float64, len(raw))
		ys := make([]float64, len(raw))
		for i, v := range raw {
			xs[i] = float64(i)
			ys[i] = float64(v)
		}
		slope, intercept := LinReg(xs, ys)
		var sum float64
		for i := range xs {
			sum += ys[i] - (slope*xs[i] + intercept)
		}
		return math.Abs(sum) < 1e-6*float64(len(xs))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
