//go:build !unix

package stats

// ProcessCPUNs is unavailable on this platform; utilization reports fall
// back to the blocked-time proxy.
func ProcessCPUNs() int64 { return 0 }
