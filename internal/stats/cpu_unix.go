//go:build unix

package stats

import "syscall"

// ProcessCPUNs returns the process's cumulative user+system CPU time in
// nanoseconds. Deltas across a run, divided by wall time × NumCPU, give the
// machine-level CPU utilization that the paper's Figure 10 reports.
func ProcessCPUNs() int64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return ru.Utime.Nano() + ru.Stime.Nano()
}
