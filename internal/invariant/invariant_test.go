package invariant_test

import (
	"errors"
	"strings"
	"testing"

	"lazydet/internal/core"
	"lazydet/internal/detsync"
	"lazydet/internal/dlc"
	"lazydet/internal/dvm"
	"lazydet/internal/invariant"
	"lazydet/internal/vheap"
)

// rig is a single engine wired for auditing, with violations captured
// instead of panicking.
type rig struct {
	eng        *core.Engine
	arb        *dlc.Arbiter
	tbl        *detsync.Table
	heap       *vheap.Heap
	violations []*invariant.Violation
}

func newAuditRig(threads, locks int, speculation bool) *rig {
	r := &rig{
		arb:  dlc.New(threads),
		tbl:  detsync.NewTable(threads, locks, 1, 1, speculation),
		heap: vheap.New(256),
	}
	r.eng = core.New(
		core.Config{Mode: core.ModeStrong, Speculation: speculation, CheckInvariants: true},
		core.Deps{
			Arb:  r.arb,
			Tbl:  r.tbl,
			Heap: r.heap,
			// Violations are reported by the turn holder; consecutive
			// turn holders synchronize through the arbiter, so the
			// append is safe without extra locking.
			OnViolation: func(v *invariant.Violation) { r.violations = append(r.violations, v) },
		})
	return r
}

// TestMutationSkewedGl: deliberately moving a lock's G_l (LastAcquireDLC)
// backwards between two turns must be caught at the very next turn grant as
// a structured lock-gl-monotone violation naming the lock — not as a distant
// trace-hash mismatch. The program is single-threaded, so the skew mutation
// is not a data race.
func TestMutationSkewedGl(t *testing.T) {
	r := newAuditRig(1, 2, false)
	b := dvm.NewBuilder("skew-gl")
	v := b.Reg()
	b.Lock(dvm.Const(0))
	b.Load(v, dvm.Const(0))
	b.Store(dvm.Const(0), dvm.Dyn(func(th *dvm.Thread) int64 { return th.R(v) + 1 }))
	b.Unlock(dvm.Const(0))
	b.Do(func(*dvm.Thread) { r.tbl.Locks[0].LastAcquireDLC -= 1000 })
	b.Lock(dvm.Const(0)) // the violating turn: audit fires here
	b.Unlock(dvm.Const(0))
	dvm.Run(r.eng, []*dvm.Program{b.Build()})

	if len(r.violations) == 0 {
		t.Fatal("skewed G_l produced no invariant violation")
	}
	got := r.violations[0]
	if got.Rule != "lock-gl-monotone" {
		t.Fatalf("violation rule = %q, want lock-gl-monotone (%v)", got.Rule, got)
	}
	if got.Lock != 0 {
		t.Fatalf("violation names lock %d, want 0 (%v)", got.Lock, got)
	}
	if got.Thread != 0 {
		t.Fatalf("violation names thread %d, want 0 (%v)", got.Thread, got)
	}
	if got.Status != dlc.StatusTurn {
		t.Fatalf("violation observed with status %v, want turn — the breach must be caught at the violating turn (%v)", got.Status, got)
	}
	if !strings.Contains(got.Detail, "moved backwards") {
		t.Fatalf("violation detail %q does not describe the backwards move", got.Detail)
	}
	if !strings.Contains(got.Error(), "lock 0") {
		t.Fatalf("violation error %q does not name the lock", got.Error())
	}
}

// TestMutationOwnerAndReaders: a lock recorded as simultaneously owned
// exclusively and held by readers is caught at the next turn grant.
func TestMutationOwnerAndReaders(t *testing.T) {
	r := newAuditRig(1, 2, false)
	b := dvm.NewBuilder("owner-readers")
	b.Do(func(*dvm.Thread) {
		r.tbl.Locks[0].Owner = 1
		r.tbl.Locks[0].Readers = 2
	})
	b.Lock(dvm.Const(1))
	b.Unlock(dvm.Const(1))
	dvm.Run(r.eng, []*dvm.Program{b.Build()})

	if len(r.violations) == 0 {
		t.Fatal("corrupt owner/readers state produced no invariant violation")
	}
	got := r.violations[0]
	if got.Rule != "lock-owner-readers" || got.Lock != 0 {
		t.Fatalf("first violation = %v, want lock-owner-readers on lock 0", got)
	}
}

// TestMutationCommitSeqAheadOfHeap: a lock whose LastCommitSeq claims a
// commit the heap has never performed is caught.
func TestMutationCommitSeqAheadOfHeap(t *testing.T) {
	r := newAuditRig(1, 2, false)
	b := dvm.NewBuilder("commitseq-future")
	b.Do(func(*dvm.Thread) { r.tbl.Locks[1].LastCommitSeq = 999 })
	b.Lock(dvm.Const(0))
	b.Unlock(dvm.Const(0))
	dvm.Run(r.eng, []*dvm.Program{b.Build()})

	if len(r.violations) == 0 {
		t.Fatal("future LastCommitSeq produced no invariant violation")
	}
	if got := r.violations[0]; got.Rule != "lock-commitseq-future" || got.Lock != 1 {
		t.Fatalf("first violation = %v, want lock-commitseq-future on lock 1", got)
	}
}

// TestCheckerCommitMonotonicity: the checker rejects a commit sequence that
// fails to advance.
func TestCheckerCommitMonotonicity(t *testing.T) {
	arb := dlc.New(1)
	tbl := detsync.NewTable(1, 1, 0, 0, false)
	heap := vheap.New(64)
	var got []*invariant.Violation
	c := invariant.New(arb, tbl, heap, func(v *invariant.Violation) { got = append(got, v) })
	c.AtCommit(0, 1)
	c.AtCommit(0, 2)
	if len(got) != 0 {
		t.Fatalf("advancing commits flagged: %v", got[0])
	}
	c.AtCommit(0, 2)
	if len(got) != 1 || got[0].Rule != "heap-commit-monotone" {
		t.Fatalf("repeated commit sequence not flagged as heap-commit-monotone: %v", got)
	}
}

// TestCleanRunNoViolations: an unmutated multi-threaded speculative run —
// contended locks, commits and reverts — audits clean under both LazyDet and
// Consequence.
func TestCleanRunNoViolations(t *testing.T) {
	for _, speculation := range []bool{false, true} {
		r := newAuditRig(4, 4, speculation)
		progs := make([]*dvm.Program, 4)
		for tid := range progs {
			b := dvm.NewBuilder("clean")
			i, v := b.Reg(), b.Reg()
			b.ForN(i, 60, func() {
				b.Lock(dvm.Const(0))
				b.Load(v, dvm.Const(0))
				b.Store(dvm.Const(0), dvm.Dyn(func(th *dvm.Thread) int64 { return th.R(v) + 1 }))
				b.Unlock(dvm.Const(0))
				b.Lock(dvm.Dyn(func(th *dvm.Thread) int64 { return 1 + th.R(i)%3 }))
				b.Unlock(dvm.Dyn(func(th *dvm.Thread) int64 { return 1 + th.R(i)%3 }))
			})
			progs[tid] = b.Build()
		}
		dvm.Run(r.eng, progs)
		if len(r.violations) != 0 {
			t.Fatalf("speculation=%v: clean run reported %d violations, first: %v",
				speculation, len(r.violations), r.violations[0])
		}
		if got := r.heap.ReadCommitted(0); got != 4*60 {
			t.Fatalf("speculation=%v: cell 0 = %d, want %d", speculation, got, 4*60)
		}
	}
}

// faultyAuditor is a DirtyAuditor stub reporting a fixed bitmap breach.
type faultyAuditor struct{ err error }

func (f faultyAuditor) AuditDirty() error { return f.err }

// TestCheckerAtPublish: a dirty-set audit failure surfaces as a structured
// commit-dirty-tracking violation naming the publishing thread, and a clean
// audit reports nothing.
func TestCheckerAtPublish(t *testing.T) {
	arb := dlc.New(1)
	tbl := detsync.NewTable(1, 1, 0, 0, false)
	heap := vheap.New(64)
	var got []*invariant.Violation
	c := invariant.New(arb, tbl, heap, func(v *invariant.Violation) { got = append(got, v) })
	c.AtPublish(0, faultyAuditor{})
	if len(got) != 0 {
		t.Fatalf("clean dirty audit flagged: %v", got[0])
	}
	c.AtPublish(0, faultyAuditor{err: errors.New("page 3 word 7 differs from its twin but is not marked dirty")})
	if len(got) != 1 {
		t.Fatalf("failed dirty audit reported %d violations, want 1", len(got))
	}
	v := got[0]
	if v.Rule != "commit-dirty-tracking" {
		t.Fatalf("violation rule = %q, want commit-dirty-tracking (%v)", v.Rule, v)
	}
	if v.Thread != 0 {
		t.Fatalf("violation names thread %d, want 0 (%v)", v.Thread, v)
	}
	if !strings.Contains(v.Detail, "not marked dirty") {
		t.Fatalf("violation detail %q does not carry the audit error", v.Detail)
	}
}

// TestEndToEndDirtyAuditClean: with invariants on, a real speculative run
// exercises AtPublish at every publication and stays clean — the store path
// marks exactly what commits merge.
func TestEndToEndDirtyAuditClean(t *testing.T) {
	r := newAuditRig(3, 2, true)
	progs := make([]*dvm.Program, 3)
	for tid := range progs {
		b := dvm.NewBuilder("dirty-audit")
		i, v := b.Reg(), b.Reg()
		b.ForN(i, 40, func() {
			b.Lock(dvm.Const(0))
			b.Load(v, dvm.Const(0))
			b.Store(dvm.Const(0), dvm.Dyn(func(th *dvm.Thread) int64 { return th.R(v) + 1 }))
			// A silent store: marked in the bitmap, equal to the twin.
			b.Store(dvm.Const(1), dvm.Const(0))
			b.Unlock(dvm.Const(0))
		})
		progs[tid] = b.Build()
	}
	dvm.Run(r.eng, progs)
	if len(r.violations) != 0 {
		t.Fatalf("clean run reported %d violations, first: %v", len(r.violations), r.violations[0])
	}
	if got := r.heap.ReadCommitted(0); got != 3*40 {
		t.Fatalf("cell 0 = %d, want %d", got, 3*40)
	}
}

// TestCheckerShardTrimFloor: the checker rejects a shard trim floor that is
// ahead of the commit it is audited at — the shape an over-trim (or a
// corrupted floor) produces — and accepts real trims, whose floors only
// rise with the commits.
func TestCheckerShardTrimFloor(t *testing.T) {
	arb := dlc.New(1)
	tbl := detsync.NewTable(1, 1, 0, 0, false)
	heap := vheap.New(1024)
	var got []*invariant.Violation
	c := invariant.New(arb, tbl, heap, func(v *invariant.Violation) { got = append(got, v) })

	// Real commits with a single live view: every chain trims up to the
	// previous commit, so floors chase the sequence and must audit clean.
	v := heap.NewView()
	for round := 0; round < 6; round++ {
		for pi := int64(0); pi < 4; pi++ {
			v.Store(pi*256, int64(round))
		}
		seq, _ := v.Commit()
		c.AtCommit(0, seq)
	}
	if len(got) != 0 {
		t.Fatalf("clean trims flagged: %v", got[0])
	}

	// A fresh checker told commit 1 just published must reject the trim
	// floors already sitting near commit 6.
	var got2 []*invariant.Violation
	c2 := invariant.New(arb, tbl, heap, func(v *invariant.Violation) { got2 = append(got2, v) })
	c2.AtCommit(0, 1)
	found := false
	for _, v := range got2 {
		if v.Rule == "shard-trim-floor" && strings.Contains(v.Detail, "ahead of commit") {
			found = true
		}
	}
	if !found {
		t.Fatalf("trim floor ahead of the audited commit not flagged as shard-trim-floor: %v", got2)
	}
	v.Close()
}

// TestCleanRunNoViolationsFlatArbiter: the audit layer (including the
// tree-audit hook, which is a no-op on the flat oracle) stays clean when the
// engine runs on the flat-scan arbiter.
func TestCleanRunNoViolationsFlatArbiter(t *testing.T) {
	const threads = 4
	arb := dlc.New(threads, dlc.WithFlatArbiter())
	tbl := detsync.NewTable(threads, 2, 0, 0, true)
	heap := vheap.New(256)
	var violations []*invariant.Violation
	eng := core.New(
		core.Config{Mode: core.ModeStrong, Speculation: true, CheckInvariants: true},
		core.Deps{Arb: arb, Tbl: tbl, Heap: heap,
			OnViolation: func(v *invariant.Violation) { violations = append(violations, v) }},
	)
	progs := make([]*dvm.Program, threads)
	for tid := range progs {
		b := dvm.NewBuilder("flat-arb-audit")
		i, v := b.Reg(), b.Reg()
		b.ForN(i, 30, func() {
			b.Lock(dvm.Const(0))
			b.Load(v, dvm.Const(0))
			b.Store(dvm.Const(0), dvm.Dyn(func(th *dvm.Thread) int64 { return th.R(v) + 1 }))
			b.Unlock(dvm.Const(0))
		})
		progs[tid] = b.Build()
	}
	dvm.Run(eng, progs)
	if len(violations) != 0 {
		t.Fatalf("clean flat-arbiter run reported %d violations, first: %v", len(violations), violations[0])
	}
	if got := heap.ReadCommitted(0); got != threads*30 {
		t.Fatalf("cell 0 = %d, want %d", got, threads*30)
	}
}
