// Package invariant is the runtime audit layer for the deterministic
// engines: a zero-cost-when-off checker that turns the safety invariants the
// other packages document into machine-checked assertions.
//
// The determinism argument of this repository (and of the paper, §3.2–§3.3)
// rests on a handful of structural invariants that the substrates maintain
// but, without this package, never verify:
//
//  1. Turn discipline (internal/dlc): at most one thread holds StatusTurn,
//     and the holder is the (DLC, thread-id) minimum over all threads that
//     are neither parked nor exited. Under the tournament arbiter, the
//     trees themselves are audited: published clocks never lead the true
//     clocks, every internal node is the match of its children, and both
//     roots agree with a direct flat scan — the tree's answer is the scan's
//     answer.
//  2. Versioned-heap integrity (internal/vheap): commit sequences are
//     strictly monotone, page version chains are strictly decreasing in
//     sequence, trimming never cuts a version a live view's base still
//     needs, and — checked at each publication, before the commit consumes
//     the dirty set — the dirty-word bitmaps agree with the twin diffs, so
//     the bitmap commit path publishes exactly what the full scan would.
//     Per shard, the sequence of trim floors never decreases and never
//     passes the newest commit — stale floor caches may trim less, never
//     more.
//  3. Lock-table consistency (internal/detsync): a lock is never held
//     exclusively and shared at the same time, reader counts are
//     non-negative, and the per-lock logical timestamps — ReleaseDLC,
//     G_l (LastAcquireDLC) and LastCommitSeq — only advance. Because the
//     checker runs at every turn grant and those fields are only allowed to
//     mutate at turns, any off-turn or backwards mutation surfaces at the
//     very next turn grant.
//  4. Snapshot round-trip (internal/dvm + internal/core): after a
//     speculation revert, the thread's registers, PC, scratch and PRNG state
//     equal the BEGIN snapshot, and the view's dirty set is exactly the
//     pre-run dirty set — the run's writes are gone and the pre-run writes
//     survived.
//
// A violation is reported as a structured diagnostic (*Violation) naming the
// rule, thread, logical time and lock, at the turn where the corruption is
// first observable — instead of the distant trace-hash mismatch it would
// otherwise decay into. The default reporter panics, because under
// determinism the panic is perfectly repeatable (paper Appendix A).
//
// Checker methods are invoked only by the thread currently holding the
// deterministic turn; consecutive turn holders synchronize through the
// arbiter, so the checker's shadow state needs no locking of its own (the
// same argument detsync makes for the lock table).
package invariant

import (
	"fmt"

	"lazydet/internal/detsync"
	"lazydet/internal/dlc"
	"lazydet/internal/dvm"
	"lazydet/internal/vheap"
)

// Violation is one detected invariant breach: a structured diagnostic
// carrying everything needed to localize the corruption. It implements
// error.
type Violation struct {
	// Rule names the broken invariant, e.g. "turn-minimum",
	// "heap-commit-monotone", "lock-gl-monotone", "revert-snapshot".
	Rule string
	// Thread is the turn-holding thread that observed the breach.
	Thread int
	// DLC is that thread's logical clock at the observation.
	DLC int64
	// Status is the observing thread's arbiter status.
	Status dlc.Status
	// Lock is the offending lock id for lock-table rules, -1 otherwise.
	Lock int64
	// Detail describes the breach in terms of the observed values.
	Detail string
}

// Error implements error.
func (v *Violation) Error() string {
	if v.Lock >= 0 {
		return fmt.Sprintf("invariant %s: thread %d @ DLC %d (status %v), lock %d: %s",
			v.Rule, v.Thread, v.DLC, v.Status, v.Lock, v.Detail)
	}
	return fmt.Sprintf("invariant %s: thread %d @ DLC %d (status %v): %s",
		v.Rule, v.Thread, v.DLC, v.Status, v.Detail)
}

// Checker audits the invariants of one engine's substrates. A nil *Checker
// is valid and checks nothing, so engines can keep unconditional call sites
// cheap; the engines here additionally guard call sites with a nil test to
// keep the default-off cost to a pointer compare.
type Checker struct {
	arb    *dlc.Arbiter
	tbl    *detsync.Table
	heap   *vheap.Heap // nil for the weak (unisolated) engines
	report func(*Violation)

	// lastCommitSeq shadows the newest heap commit sequence the checker
	// has seen, for strict-monotonicity checking.
	lastCommitSeq int64

	// shardFloors shadows each heap shard's last trim floor, for the
	// per-shard floor-monotonicity check. Sized lazily at the first
	// AtCommit (the shard count is a heap construction detail).
	shardFloors []int64

	// Shadow copies of each lock's monotone timestamps, updated at every
	// turn-grant audit. A value that moves backwards between two audits
	// was corrupted (the fields are only allowed to advance, and only at
	// turns).
	releaseDLC []int64
	acquireDLC []int64 // G_l
	commitSeq  []int64
}

// New builds a checker over an engine's substrates. heap may be nil (weak
// engines have no versioned memory). If report is nil, violations panic —
// deterministic engines make the panic repeatable.
func New(arb *dlc.Arbiter, tbl *detsync.Table, heap *vheap.Heap, report func(*Violation)) *Checker {
	if report == nil {
		report = func(v *Violation) { panic(v.Error()) }
	}
	c := &Checker{arb: arb, tbl: tbl, heap: heap, report: report}
	if tbl != nil {
		c.releaseDLC = make([]int64, len(tbl.Locks))
		c.acquireDLC = make([]int64, len(tbl.Locks))
		c.commitSeq = make([]int64, len(tbl.Locks))
	}
	return c
}

// violate reports one breach observed by thread tid.
func (c *Checker) violate(tid int, lock int64, rule, detail string) {
	c.report(&Violation{
		Rule:   rule,
		Thread: tid,
		DLC:    c.arb.DLC(tid),
		Status: c.arb.Status(tid),
		Lock:   lock,
		Detail: detail,
	})
}

// AtTurn audits the turn-discipline and lock-table invariants. The engine
// calls it on thread tid immediately after every turn grant, while the turn
// is held.
func (c *Checker) AtTurn(tid int) {
	if c == nil {
		return
	}
	if err := c.arb.AuditTurn(tid); err != nil {
		c.violate(tid, -1, "turn-minimum", err.Error())
	}
	if err := c.arb.AuditTree(); err != nil {
		c.violate(tid, -1, "arbiter-tree-min", err.Error())
	}
	c.auditLocks(tid)
}

// auditLocks checks cross-field consistency and timestamp monotonicity for
// every lock. O(locks) per turn grant: acceptable for an audit mode that is
// off by default.
//
// The timestamp checks are skipped under a nondeterministic arbiter: there
// the logical clocks never tick (only condvar/barrier unparks assign them),
// so release and acquisition times carry no monotone meaning — which is
// precisely why that mode guarantees nothing. Structural lock-state
// consistency still must hold.
func (c *Checker) auditLocks(tid int) {
	nondet := c.arb.Nondet()
	for l := range c.tbl.Locks {
		st := &c.tbl.Locks[l]
		li := int64(l)
		if st.Owner != 0 && st.Readers != 0 {
			c.violate(tid, li, "lock-owner-readers",
				fmt.Sprintf("held exclusively by thread %d and shared by %d readers at once", st.Owner-1, st.Readers))
		}
		if st.Readers < 0 {
			c.violate(tid, li, "lock-readers-negative",
				fmt.Sprintf("reader count %d", st.Readers))
		}
		if nondet {
			continue
		}
		if st.ReleaseDLC < c.releaseDLC[l] {
			c.violate(tid, li, "lock-release-monotone",
				fmt.Sprintf("ReleaseDLC moved backwards: %d -> %d", c.releaseDLC[l], st.ReleaseDLC))
		}
		if st.LastAcquireDLC < c.acquireDLC[l] {
			c.violate(tid, li, "lock-gl-monotone",
				fmt.Sprintf("G_l (LastAcquireDLC) moved backwards: %d -> %d", c.acquireDLC[l], st.LastAcquireDLC))
		}
		if st.LastCommitSeq < c.commitSeq[l] {
			c.violate(tid, li, "lock-commitseq-monotone",
				fmt.Sprintf("LastCommitSeq moved backwards: %d -> %d", c.commitSeq[l], st.LastCommitSeq))
		}
		if c.heap != nil && st.LastCommitSeq > c.heap.Seq() {
			c.violate(tid, li, "lock-commitseq-future",
				fmt.Sprintf("LastCommitSeq %d is ahead of the heap's newest commit %d", st.LastCommitSeq, c.heap.Seq()))
		}
		c.releaseDLC[l] = st.ReleaseDLC
		c.acquireDLC[l] = st.LastAcquireDLC
		c.commitSeq[l] = st.LastCommitSeq
	}
}

// DirtyAuditor is the slice of a thread's memory window the checker needs
// at a publication: a self-check of the window's dirty-word tracking.
// vheap.View implements it; flat windows report nil (nothing is tracked).
type DirtyAuditor interface {
	// AuditDirty returns a descriptive error if any word differing from
	// its twin is missing from the dirty bitmap (see vheap.View.AuditDirty).
	AuditDirty() error
}

// AtPublish audits the publishing thread's dirty tracking immediately
// before its writes commit: every word the full twin diff would publish
// must be marked in the dirty bitmap, or the bitmap commit path is about to
// drop a write. It must run before the commit (which clears the dirty set),
// on the publishing thread (the dirty set is thread-private and mutated
// off-turn by stores), while that thread holds the turn.
func (c *Checker) AtPublish(tid int, m DirtyAuditor) {
	if c == nil || c.heap == nil {
		return
	}
	if err := m.AuditDirty(); err != nil {
		c.violate(tid, -1, "commit-dirty-tracking", err.Error())
	}
	// Windows backed by the flat per-view page tables additionally expose a
	// structural self-check: the dense dirty/clean tables, generation stamps
	// and pooled frames must be mutually consistent, or a recycled frame is
	// about to leak stale words into a commit.
	if ta, ok := m.(interface{ AuditTables() error }); ok {
		if err := ta.AuditTables(); err != nil {
			c.violate(tid, -1, "view-page-table", err.Error())
		}
	}
}

// DeferredAuditor is the slice of a thread's memory window the checker
// needs at an elision point: a self-check of the window's deferred
// publication. mempipe windows implement it; flat windows report nil.
type DeferredAuditor interface {
	// AuditDeferred returns a descriptive error if the window's retained
	// frames no longer serve the values of its staged publication (see
	// vheap.View.AuditDeferred).
	AuditDeferred() error
}

// AtDeferred audits the deferred-publish invariant: every page of a thread's
// outstanding staged publication must still hold a live frame in its window,
// and every staged word the thread has not rewritten since must carry the
// staged value there — otherwise the window has stopped observing (or a
// speculation revert has corrupted) state the trace already records as
// committed. The engine calls it after staging an elided publication and
// after restoring a revert snapshot, on the owning thread, while it holds
// the turn.
func (c *Checker) AtDeferred(tid int, m DeferredAuditor) {
	if c == nil || c.heap == nil {
		return
	}
	if err := m.AuditDeferred(); err != nil {
		c.violate(tid, -1, "deferred-publish", err.Error())
	}
}

// AtCommit audits the versioned heap after thread tid published commit seq:
// commit sequences must advance strictly, and the page version chains and
// trim floor must be intact. Called while the committing thread holds the
// turn.
func (c *Checker) AtCommit(tid int, seq int64) {
	if c == nil || c.heap == nil {
		return
	}
	if seq <= c.lastCommitSeq {
		c.violate(tid, -1, "heap-commit-monotone",
			fmt.Sprintf("commit sequence %d does not advance past %d", seq, c.lastCommitSeq))
	}
	c.lastCommitSeq = seq
	if err := c.heap.Audit(); err != nil {
		c.violate(tid, -1, "heap-chain", err.Error())
	}
	floors := c.heap.ShardTrimFloors()
	if c.shardFloors == nil {
		c.shardFloors = make([]int64, len(floors))
		for i := range c.shardFloors {
			c.shardFloors[i] = -1 // matches a shard's pre-first-trim floor
		}
	}
	for si, f := range floors {
		if f < c.shardFloors[si] {
			c.violate(tid, -1, "shard-trim-floor",
				fmt.Sprintf("shard %d trim floor moved backwards: %d -> %d", si, c.shardFloors[si], f))
		}
		if f > seq {
			c.violate(tid, -1, "shard-trim-floor",
				fmt.Sprintf("shard %d trim floor %d is ahead of commit %d", si, f, seq))
		}
		c.shardFloors[si] = f
	}
}

// AtRevert audits a speculation revert: the thread must be exactly the BEGIN
// snapshot again, and the view's dirty set must be exactly the pre-run dirty
// set (the run's writes discarded, the pre-run writes preserved). Called by
// the reverting thread while it holds the turn, after the restore.
func (c *Checker) AtRevert(t *dvm.Thread, snap *dvm.Snapshot, dirtyWords, preRunWords int) {
	if c == nil {
		return
	}
	if err := t.MatchesSnapshot(snap); err != nil {
		c.violate(t.ID, -1, "revert-snapshot", err.Error())
	}
	if dirtyWords != preRunWords {
		c.violate(t.ID, -1, "revert-dirty",
			fmt.Sprintf("view holds %d dirty words after revert, want the pre-run dirty set of %d", dirtyWords, preRunWords))
	}
}
