package harness

import (
	"fmt"
	"testing"

	"lazydet/internal/core"
	"lazydet/internal/dvm"
	"lazydet/internal/progcheck"
)

// privateCounterWorkload: every thread increments its own cell under one
// shared lock — correct but needlessly serialized, the pattern the footprint
// pass proves Disjoint (no cross-thread overlap through the lock).
func privateCounterWorkload(iters int64) *Workload {
	return &Workload{
		Name:      "private-counter",
		HeapWords: 64,
		Locks:     1,
		Programs: func(threads int) []*dvm.Program {
			progs := make([]*dvm.Program, threads)
			for tid := 0; tid < threads; tid++ {
				b := dvm.NewBuilder(fmt.Sprintf("private-%d", tid))
				i, v := b.Reg(), b.Reg()
				cell := dvm.Const(int64(tid))
				b.ForN(i, iters, func() {
					b.Lock(dvm.Const(0))
					b.Load(v, cell)
					b.Store(cell, dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(v) + 1 }))
					b.Unlock(dvm.Const(0))
				})
				progs[tid] = b.Build()
			}
			return progs
		},
		Validate: func(read func(int64) int64, threads int) error {
			for tid := 0; tid < threads; tid++ {
				if got := read(int64(tid)); got != iters {
					return fmt.Errorf("cell %d = %d, want %d", tid, got, iters)
				}
			}
			return nil
		},
	}
}

// TestSpecHintsPopulated: Options.SpecHints attaches the verdict table and
// the per-lock revert attribution to the result, and the shared counter's
// lock classifies Conflicting.
func TestSpecHintsPopulated(t *testing.T) {
	res, err := Run(counterWorkload(20), Options{
		Engine: LazyDet, Threads: 4, SpecHints: true, CollectSpec: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Hints == nil {
		t.Fatal("Options.SpecHints set but Result.Hints is nil")
	}
	if got := res.Hints.Verdicts[0]; got != progcheck.VerdictConflicting {
		t.Fatalf("counter lock verdict = %s, want conflicting", got)
	}
	if len(res.LockReverts) != 1 {
		t.Fatalf("LockReverts has %d entries, want 1", len(res.LockReverts))
	}
}

// TestSpecHintsHeapHashEquivalence: hints only change when the engine
// speculates, never what committed state it produces — the hinted run's
// final heap must be bit-identical to the unhinted one, and both must pass
// the workload's semantic Validate (Run checks it internally).
func TestSpecHintsHeapHashEquivalence(t *testing.T) {
	for _, w := range []*Workload{counterWorkload(30), privateCounterWorkload(30)} {
		for _, threads := range []int{2, 4, 8} {
			t.Run(fmt.Sprintf("%s-t%d", w.Name, threads), func(t *testing.T) {
				base := Options{Engine: LazyDet, Threads: threads, CollectSpec: true}
				ref, err := Run(w, base)
				if err != nil {
					t.Fatal(err)
				}
				hinted := base
				hinted.SpecHints = true
				hr, err := Run(w, hinted)
				if err != nil {
					t.Fatal(err)
				}
				if hr.HeapHash != ref.HeapHash {
					t.Fatalf("hinted heap hash %#x != unhinted %#x", hr.HeapHash, ref.HeapHash)
				}
			})
		}
	}
}

// TestDisjointLockZeroReverts: a statically Disjoint lock always speculates
// and its conflict checks are skipped, so it can never be charged a revert —
// the property lazydet-fuzz checks across random programs, pinned here on
// the canonical workload.
func TestDisjointLockZeroReverts(t *testing.T) {
	res, err := Run(privateCounterWorkload(50), Options{
		Engine: LazyDet, Threads: 4, SpecHints: true, CollectSpec: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Hints.Verdicts[0]; got != progcheck.VerdictDisjoint {
		t.Fatalf("private lock verdict = %s, want disjoint — %s", got, res.Hints.Reasons[0])
	}
	if got := res.LockReverts[0]; got != 0 {
		t.Fatalf("disjoint lock charged %d conflict reverts, want 0", got)
	}
}

// TestLowerHints: the dense lowering keeps IDs aligned, defaults missing
// locks to HintNone, and drops out-of-range verdicts.
func TestLowerHints(t *testing.T) {
	h := &progcheck.SpecHints{Verdicts: map[int64]progcheck.SpecVerdict{
		0: progcheck.VerdictDisjoint,
		2: progcheck.VerdictConflicting,
		3: progcheck.VerdictCommutative,
		9: progcheck.VerdictDisjoint, // beyond the lock table: dropped
	}}
	got := lowerHints(h, 4)
	want := []core.SpecHint{core.HintDisjoint, core.HintNone, core.HintConflicting, core.HintCommutative}
	if len(got) != len(want) {
		t.Fatalf("len = %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("hint[%d] = %d, want %d", i, got[i], want[i])
		}
	}
	if lowerHints(nil, 4) != nil {
		t.Fatal("nil hints must lower to nil")
	}
	if lowerHints(&progcheck.SpecHints{}, 4) != nil {
		t.Fatal("empty hints must lower to nil")
	}
}
