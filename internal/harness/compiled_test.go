package harness_test

import (
	"fmt"
	"testing"

	"lazydet/internal/dvm"
	"lazydet/internal/harness"
)

// TestScheduleEquivalenceAcrossBackends is the schedule-equivalence oracle
// for the threaded-code backend: at t=4, 64 and 256, the compiled backend
// and the interpreter must produce bit-identical synchronization traces,
// sync-event counts, final heaps, and gated metrics on both strong engines.
// The deterministic schedule is a function of published clock values alone;
// which dispatch mechanism retires the instructions must be unobservable.
func TestScheduleEquivalenceAcrossBackends(t *testing.T) {
	for _, threads := range []int{4, 64, 256} {
		for _, eng := range []harness.EngineKind{harness.Consequence, harness.LazyDet} {
			base := harness.Options{
				Engine:      eng,
				Threads:     threads,
				Trace:       true,
				Telemetry:   true,
				CollectSpec: eng == harness.LazyDet,
			}
			interp, err := harness.Run(scaleWorkload(threads), base)
			if err != nil {
				t.Fatalf("t=%d %v interpreter: %v", threads, eng, err)
			}
			copt := base
			copt.Compiled = true
			comp, err := harness.Run(scaleWorkload(threads), copt)
			if err != nil {
				t.Fatalf("t=%d %v compiled: %v", threads, eng, err)
			}
			if interp.TraceSig != comp.TraceSig {
				t.Errorf("t=%d %v: trace signature diverges: interp %x, compiled %x",
					threads, eng, interp.TraceSig, comp.TraceSig)
			}
			if interp.SyncEvents != comp.SyncEvents {
				t.Errorf("t=%d %v: sync event counts diverge: interp %d, compiled %d",
					threads, eng, interp.SyncEvents, comp.SyncEvents)
			}
			if interp.HeapHash != comp.HeapHash {
				t.Errorf("t=%d %v: final heap diverges: interp %x, compiled %x",
					threads, eng, interp.HeapHash, comp.HeapHash)
			}
			// Every gated metric — DLC totals, tick-flush counts, commit
			// totals, speculation outcomes, retired opcode mix — must be
			// bit-identical. Compile cost and fusion statistics live in
			// the never-gated Timing half, so the Metrics maps compare
			// clean across backends.
			im := harness.BuildReport(interp).Metrics
			cm := harness.BuildReport(comp).Metrics
			for k, iv := range im {
				if cv, ok := cm[k]; !ok || cv != iv {
					t.Errorf("t=%d %v: metric %q diverges: interp %v, compiled %v (present=%v)",
						threads, eng, k, iv, cv, ok)
				}
			}
			for k := range cm {
				if _, ok := im[k]; !ok {
					t.Errorf("t=%d %v: metric %q present only under the compiled backend", threads, eng, k)
				}
			}
		}
	}
}

// revertWorkload builds a two-thread workload engineered to revert a
// speculative run whose region contains fused superinstructions: thread 1
// speculates across a fused read-modify-write and a loop, and thread 0's
// earlier conventional commit on the shared lock conflicts with it. The
// revert restores the PC of the first speculative lock — a fusion-block
// entry — and the re-execution re-runs the fused blocks.
func revertWorkload() *harness.Workload {
	return &harness.Workload{
		Name:      "revert-fused",
		HeapWords: 64,
		Locks:     2,
		Programs: func(threads int) []*dvm.Program {
			b0 := dvm.NewBuilder("t0")
			b0.Lock(dvm.Const(0))
			b0.Store(dvm.Const(8), dvm.Const(1))
			b0.Unlock(dvm.Const(0))

			b1 := dvm.NewBuilder("t1")
			i := b1.Reg()
			r := b1.Reg()
			b1.Lock(dvm.Const(1)) // begin a speculative run
			b1.ForN(i, 200, func() {
				b1.Do(func(*dvm.Thread) {})
			})
			b1.Lock(dvm.Const(0)) // extend over the contended lock
			// Fused load-do-store inside the speculative region: the
			// revert must rewind and re-execute it exactly once more.
			b1.Load(r, dvm.Const(9))
			b1.Do(func(t *dvm.Thread) { t.SetR(r, t.R(r)+2) })
			b1.Store(dvm.Const(9), dvm.FromReg(r))
			b1.Unlock(dvm.Const(0))
			b1.Unlock(dvm.Const(1))
			return []*dvm.Program{b0.Build(), b1.Build()}
		},
		Validate: func(read func(addr int64) int64, threads int) error {
			if read(8) != 1 || read(9) != 2 {
				return fmt.Errorf("revert-fused final memory (8)=%d (9)=%d, want 1 and 2", read(8), read(9))
			}
			return nil
		},
	}
}

// TestCompiledRevertMidFusedBlock forces a speculation revert whose
// re-executed region contains fused superinstructions, under both backends
// with the invariant audit layer on, and requires identical traces, heaps
// and speculation accounting — the directed revert case of the
// compiled-backend oracle.
func TestCompiledRevertMidFusedBlock(t *testing.T) {
	run := func(compiled bool) *harness.Result {
		t.Helper()
		res, err := harness.Run(revertWorkload(), harness.Options{
			Engine:          harness.LazyDet,
			Threads:         2,
			Trace:           true,
			CollectSpec:     true,
			CheckInvariants: true,
			Compiled:        compiled,
		})
		if err != nil {
			t.Fatalf("compiled=%v: %v", compiled, err)
		}
		return res
	}
	interp := run(false)
	comp := run(true)
	if interp.Spec.Reverts.Load() == 0 {
		t.Fatalf("interpreter run did not revert; the directed conflict no longer fires")
	}
	if comp.Spec.Reverts.Load() == 0 {
		t.Fatalf("compiled run did not revert; the directed conflict no longer fires")
	}
	if interp.TraceSig != comp.TraceSig {
		t.Errorf("trace signature diverges: interp %x, compiled %x", interp.TraceSig, comp.TraceSig)
	}
	if interp.HeapHash != comp.HeapHash {
		t.Errorf("final heap diverges: interp %x, compiled %x", interp.HeapHash, comp.HeapHash)
	}
	if ir, cr := interp.Spec.Reverts.Load(), comp.Spec.Reverts.Load(); ir != cr {
		t.Errorf("revert counts diverge: interp %d, compiled %d", ir, cr)
	}
	if ic, cc := interp.Spec.Commits.Load(), comp.Spec.Commits.Load(); ic != cc {
		t.Errorf("commit counts diverge: interp %d, compiled %d", ic, cc)
	}
}
