package harness_test

import (
	"sync"
	"testing"

	"lazydet/internal/harness"
	"lazydet/internal/invariant"
	"lazydet/internal/randprog"
)

// goldenSeeds is the fixed corpus: run-twice determinism over these seeds is
// a regression gate, so the exact seeds matter — do not reshuffle them
// casually. They were chosen to cover barrier-heavy, condvar-heavy and
// syscall-heavy draws at the default op mix.
var goldenSeeds = []uint64{1, 2, 3, 5, 8, 13, 21, 42}

// TestGoldenCorpusRunTwice: every deterministic engine, over the golden seed
// corpus, reproduces identical trace signatures and final memory across two
// runs — with the invariant audit layer on and reporting zero violations.
func TestGoldenCorpusRunTwice(t *testing.T) {
	if testing.Short() {
		goldenSeeds = goldenSeeds[:3]
	}
	const threads = 4
	cfg := randprog.DefaultConfig(threads)
	cfg.OpsPerThread = 40

	engines := []harness.EngineKind{harness.Consequence, harness.TotalOrderWeak, harness.LazyDet}
	for _, seed := range goldenSeeds {
		w, _, err := randprog.Generate(seed, cfg)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		for _, eng := range engines {
			var mu sync.Mutex
			var violations []*invariant.Violation
			opt := harness.Options{
				Engine:          eng,
				Threads:         threads,
				Trace:           true,
				CheckInvariants: true,
				// Runs of different engines on this workload never overlap,
				// but violations are appended by whichever thread holds the
				// turn, so guard the slice anyway.
				OnViolation: func(v *invariant.Violation) {
					mu.Lock()
					violations = append(violations, v)
					mu.Unlock()
				},
			}
			r1, err := harness.Run(w, opt)
			if err != nil {
				t.Fatalf("seed %d %s run 1: %v", seed, eng, err)
			}
			r2, err := harness.Run(w, opt)
			if err != nil {
				t.Fatalf("seed %d %s run 2: %v", seed, eng, err)
			}
			if r1.TraceSig != r2.TraceSig {
				t.Errorf("seed %d %s: trace signatures differ: %x vs %x", seed, eng, r1.TraceSig, r2.TraceSig)
			}
			if r1.HeapHash != r2.HeapHash {
				t.Errorf("seed %d %s: final memory differs: %x vs %x", seed, eng, r1.HeapHash, r2.HeapHash)
			}
			if len(violations) != 0 {
				t.Errorf("seed %d %s: %d invariant violations, first: %v", seed, eng, len(violations), violations[0])
			}
		}
	}
}
