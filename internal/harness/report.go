// Run-report construction: folds the harness's measurements — the telemetry
// registry plus the legacy stats collectors (speculation, blocked time, the
// sync-order trace) — into one telemetry.RunReport, the unit lazydet-bench
// and lazydet-run serialize and the CI perf gate diffs.
package harness

import (
	"fmt"
	"sort"

	"lazydet/internal/stats"
	"lazydet/internal/telemetry"
)

// absorbStats publishes the per-run stats collectors into the telemetry
// registry after the run, so the registry is the single reporting surface.
// The heap and pipeline publish their counters live (via vheap.WithTelemetry
// and the engine's Deps.Tel); only the collectors the engines still own are
// folded in here.
func absorbStats(tel *telemetry.Recorder, res *Result) {
	if s := res.Spec; s != nil {
		tel.Count("spec.total_acquires", s.TotalAcquires.Load())
		tel.Count("spec.spec_acquires", s.SpecAcquires.Load())
		tel.Count("spec.runs", s.Runs.Load())
		tel.Count("spec.commits", s.Commits.Load())
		tel.Count("spec.reverts", s.Reverts.Load())
		tel.Count("spec.committed_cs", s.CommittedCS.Load())
		tel.Count("spec.upgrades", s.Upgrades.Load())
		tel.SetGauge("spec.acquire_pct", s.SpecAcquirePct())
		tel.SetGauge("spec.success_pct", s.SuccessPct())
	}
	if res.LockReverts != nil {
		// Lock-attributed revert total: a deterministic function of the
		// schedule (ConflictReverts mutates only at turns), so gated. The
		// per-lock breakdown stays on Result.LockReverts for callers; only
		// the sum is a stable metric name across workloads.
		var sum int64
		for _, n := range res.LockReverts {
			sum += n
		}
		tel.Count("spec.conflict_reverts", sum)
	}
	if res.Recorder != nil {
		tel.Count("sync.events", res.SyncEvents)
	}
	if res.LiveVersions > 0 {
		tel.SetGauge("vheap.live_versions", float64(res.LiveVersions))
	}
}

// timingCounters names telemetry counters that carry wall time rather than
// deterministic counts; BuildReport routes them into the never-gated Timing
// section so Metrics stays reproducible across machines.
var timingCounters = map[string]bool{
	"progcheck.analysis_ns":  true,
	"progcheck.lockstate_ns": true,
	"progcheck.deadlock_ns":  true,
	"progcheck.race_ns":      true,
	"progcheck.footprint_ns": true,
	// The frame/page pool hit ratios depend on when the runtime scheduler
	// lets views register against the trim floor — an allocation detail,
	// not deterministic machine state — so they are informational only.
	"vheap.frame_pool_hits":   true,
	"vheap.frame_pool_misses": true,
	"vheap.page_pool_hits":    true,
	"vheap.page_pool_misses":  true,
	// Arbiter wakes and grant work count how often clock advances found a
	// blocked waiter and how many key comparisons elections cost — both a
	// function of which threads the runtime scheduler had blocked at each
	// instant, not of the deterministic schedule.
	"dlc.wakes":      true,
	"dlc.grant_work": true,
	// Fast-path chain grants additionally require the granted thread's
	// arrival to beat every rival's clock publication — a wall-clock race —
	// so they stay informational; dlc.chain_hits (the chance the fast path
	// chases) is deterministic and gated.
	"dlc.chain_fast": true,
	// Threaded-code lowering cost is wall time; the fusion statistics
	// depend only on the compiler's pattern tables, which may change
	// between versions without affecting the deterministic schedule, so
	// all three stay out of the gated metrics.
	"dvm.compile_ns":        true,
	"dvm.fused_blocks":      true,
	"dvm.superinstructions": true,
}

// ElisionVariantMetrics names the metrics that legitimately differ between
// same-owner publication elision and the -eagerpublish oracle: elision's
// whole point is publishing fewer, larger deltas, so everything that counts
// commit or stage volume moves. Everything else — schedules, clocks, sync
// events, speculation outcomes, chain hits — must be bit-identical, which
// lazydet-fuzz's publication oracle and the harness equivalence tests
// enforce via GatedMetricDiffs.
var ElisionVariantMetrics = map[string]bool{
	"vheap.commits":         true,
	"vheap.pages_committed": true,
	"vheap.words_committed": true,
	"vheap.words_scanned":   true,
	"vheap.shard_batches":   true,
	"vheap.stage_publishes": true,
	"vheap.stage_flushes":   true,
	"vheap.live_versions":   true,
	"commit.elided":         true,
}

// GatedMetricDiffs compares two runs' gated metrics, skipping the
// elision-variant set, and describes every mismatch. Both runs must have
// been collected with Options.Telemetry.
func GatedMetricDiffs(a, b *Result) []string {
	ra, rb := BuildReport(a), BuildReport(b)
	names := make([]string, 0, len(ra.Metrics))
	for k := range ra.Metrics {
		names = append(names, k)
	}
	for k := range rb.Metrics {
		if _, dup := ra.Metrics[k]; !dup {
			names = append(names, k)
		}
	}
	sort.Strings(names)
	var diffs []string
	for _, k := range names {
		if gated, _ := telemetry.GatedMetric(k); !gated || ElisionVariantMetrics[k] {
			continue
		}
		va, oka := ra.Metrics[k]
		vb, okb := rb.Metrics[k]
		if oka != okb || va != vb {
			diffs = append(diffs, fmt.Sprintf("%s: %g vs %g", k, va, vb))
		}
	}
	return diffs
}

// BuildReport converts one run's measurements into a report entry.
//
// Deterministic values (every telemetry counter and gauge — DLC totals,
// turn waits, commit word counts, speculation outcomes) land in Metrics,
// which the perf gate may fail on. Machine-dependent values (wall/CPU time,
// utilization, per-thread blocked time, revert-cost nanosecond percentiles)
// land in Timing, which is reported but never gated.
func BuildReport(res *Result) telemetry.RunReport {
	r := telemetry.RunReport{
		Workload: res.Workload,
		Engine:   res.Engine.String(),
		Threads:  res.Threads,
		HeapHash: fmt.Sprintf("%016x", res.HeapHash),
		Metrics:  map[string]float64{},
		Timing:   map[string]float64{},
	}
	if res.TraceSig != 0 {
		r.TraceSig = fmt.Sprintf("%016x", res.TraceSig)
	}
	if t := res.Telemetry; t != nil {
		snap := t.Snapshot()
		for k, v := range snap.Counters {
			if timingCounters[k] {
				r.Timing[k] = float64(v)
				continue
			}
			r.Metrics[k] = float64(v)
		}
		for k, v := range snap.Gauges {
			r.Metrics[k] = v
		}
		if len(snap.Histograms) > 0 {
			r.Histograms = snap.Histograms
		}
	}

	r.Timing["wall_ns"] = float64(res.Wall.Nanoseconds())
	r.Timing["cpu_ns"] = float64(res.CPU.Nanoseconds())
	if res.Allocs > 0 {
		r.Timing["allocs"] = float64(res.Allocs)
	}
	if res.Times != nil {
		r.Timing["utilization_pct"] = res.UtilizationPct
		r.Timing["blocked_pct"] = res.BlockedPct
		r.Timing["blocked_total_ns"] = float64(res.Times.TotalBlockedNs())
		for i := 0; i < res.Threads; i++ {
			r.Timing[fmt.Sprintf("blocked_ns.t%d", i)] = float64(res.Times.BlockedNs(i))
		}
	}
	if res.Spec != nil {
		if samples := res.Spec.RevertSamples(); len(samples) > 0 {
			costs := make([]int64, len(samples))
			for i, s := range samples {
				costs[i] = s.CostNs
			}
			sort.Slice(costs, func(i, j int) bool { return costs[i] < costs[j] })
			for _, p := range []float64{50, 90, 99} {
				r.Timing[fmt.Sprintf("revert_ns.p%d", int(p))] = float64(stats.Percentile(costs, p))
			}
		}
	}
	return r
}
