package harness_test

import (
	"testing"

	"lazydet/internal/harness"
	"lazydet/internal/workloads"
)

// scaleWorkload builds the hash-table microbenchmark sized so the total
// operation count stays constant as threads grow — the Threads-scaling
// shape of the arbiter experiments.
func scaleWorkload(threads int) *harness.Workload {
	cfg := workloads.DefaultHTConfig(workloads.HT)
	cfg.OpsPerThread = 2048 / threads
	if cfg.OpsPerThread < 4 {
		cfg.OpsPerThread = 4
	}
	return workloads.NewHashTable(cfg)
}

// TestScheduleEquivalenceAcrossArbiters is the schedule-equivalence oracle
// for the tournament arbiter: at t=4, 64 and 256, the tournament tree and
// the flat O(n)-scan oracle must produce bit-identical synchronization
// traces, sync-event counts and final heaps on both strong engines. The
// grant order is specified by (DLC, tid) alone; which data structure elects
// the minimum must be unobservable.
func TestScheduleEquivalenceAcrossArbiters(t *testing.T) {
	for _, threads := range []int{4, 64, 256} {
		for _, eng := range []harness.EngineKind{harness.Consequence, harness.LazyDet} {
			w := scaleWorkload(threads)
			base := harness.Options{Engine: eng, Threads: threads, Trace: true}
			tree, err := harness.Run(w, base)
			if err != nil {
				t.Fatalf("t=%d %v tree arbiter: %v", threads, eng, err)
			}
			flatOpt := base
			flatOpt.FlatArbiter = true
			flat, err := harness.Run(scaleWorkload(threads), flatOpt)
			if err != nil {
				t.Fatalf("t=%d %v flat arbiter: %v", threads, eng, err)
			}
			if tree.TraceSig != flat.TraceSig {
				t.Errorf("t=%d %v: trace signature diverges: tree %x, flat %x",
					threads, eng, tree.TraceSig, flat.TraceSig)
			}
			if tree.SyncEvents != flat.SyncEvents {
				t.Errorf("t=%d %v: sync event counts diverge: tree %d, flat %d",
					threads, eng, tree.SyncEvents, flat.SyncEvents)
			}
			if tree.HeapHash != flat.HeapHash {
				t.Errorf("t=%d %v: final heap diverges: tree %x, flat %x",
					threads, eng, tree.HeapHash, flat.HeapHash)
			}
		}
	}
}

// TestScheduleEquivalenceAcrossHeapShards is the schedule-equivalence
// oracle for heap sharding: the default sharded heap and the HeapShards=1
// single-lock oracle must publish bit-identical traces, heaps, and commit
// totals. Sharding only partitions which mutex guards which page chains;
// commit order comes from the turn order either way.
//
// Deliberately unasserted: LiveVersions and the pool-hit stats — per-shard
// pools and floor caches make frame-recycling locality a function of the
// shard layout, deterministic per layout but not across layouts.
func TestScheduleEquivalenceAcrossHeapShards(t *testing.T) {
	for _, threads := range []int{4, 64, 256} {
		for _, eng := range []harness.EngineKind{harness.Consequence, harness.LazyDet} {
			base := harness.Options{Engine: eng, Threads: threads, Trace: true}
			sharded, err := harness.Run(scaleWorkload(threads), base)
			if err != nil {
				t.Fatalf("t=%d %v sharded heap: %v", threads, eng, err)
			}
			oneOpt := base
			oneOpt.HeapShards = 1
			single, err := harness.Run(scaleWorkload(threads), oneOpt)
			if err != nil {
				t.Fatalf("t=%d %v unsharded heap: %v", threads, eng, err)
			}
			if sharded.TraceSig != single.TraceSig {
				t.Errorf("t=%d %v: trace signature diverges: sharded %x, unsharded %x",
					threads, eng, sharded.TraceSig, single.TraceSig)
			}
			if sharded.HeapHash != single.HeapHash {
				t.Errorf("t=%d %v: final heap diverges: sharded %x, unsharded %x",
					threads, eng, sharded.HeapHash, single.HeapHash)
			}
			if sharded.Commits != single.Commits || sharded.PagesCommitted != single.PagesCommitted ||
				sharded.WordsCommitted != single.WordsCommitted {
				t.Errorf("t=%d %v: commit totals diverge: sharded (%d, %d, %d), unsharded (%d, %d, %d)",
					threads, eng, sharded.Commits, sharded.PagesCommitted, sharded.WordsCommitted,
					single.Commits, single.PagesCommitted, single.WordsCommitted)
			}
		}
	}
}

// TestScaleRunWithInvariants runs the t=64 point with the full audit layer
// on: tournament-tree audits at every turn grant and per-shard trim-floor
// audits at every commit, against both arbiters.
func TestScaleRunWithInvariants(t *testing.T) {
	for _, flat := range []bool{false, true} {
		w := scaleWorkload(64)
		_, err := harness.Run(w, harness.Options{
			Engine:          harness.LazyDet,
			Threads:         64,
			FlatArbiter:     flat,
			CheckInvariants: true,
		})
		if err != nil {
			t.Fatalf("flat=%v: %v", flat, err)
		}
	}
}
