package harness_test

import (
	"testing"
	"testing/quick"

	"lazydet/internal/core"
	"lazydet/internal/harness"
	"lazydet/internal/randprog"
)

// TestQuickBitmapCommitMatchesLegacyDiff is the end-to-end differential
// oracle for the dirty-word commit path: random corpus programs run under
// each strong deterministic engine must publish a byte-identical final heap
// and an identical synchronization trace whether commits find modified words
// by walking the dirty bitmaps (default) or by the legacy full-page twin
// scan. Runs bitmap → legacy → bitmap so an order-dependent divergence in
// either path is caught from both sides.
func TestQuickBitmapCommitMatchesLegacyDiff(t *testing.T) {
	const threads = 3
	configs := []struct {
		name string
		opt  harness.Options
	}{
		{"Consequence", harness.Options{Engine: harness.Consequence, Threads: threads, Trace: true}},
		{"LazyDet", harness.Options{Engine: harness.LazyDet, Threads: threads, Trace: true}},
		{"LazyDet-WriteAware", harness.Options{
			Engine: harness.LazyDet, Threads: threads, Trace: true,
			Spec: core.SpecConfig{WriteAware: true},
		}},
	}
	f := func(seed uint64) bool {
		w, _, err := randprog.Generate(seed, randprog.DefaultConfig(threads))
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		for _, c := range configs {
			bitmapOpt := c.opt
			legacyOpt := c.opt
			legacyOpt.LegacyDiffCommit = true
			b1, err := harness.Run(w, bitmapOpt)
			if err != nil {
				t.Logf("seed %x %s bitmap: %v", seed, c.name, err)
				return false
			}
			lg, err := harness.Run(w, legacyOpt)
			if err != nil {
				t.Logf("seed %x %s legacy: %v", seed, c.name, err)
				return false
			}
			b2, err := harness.Run(w, bitmapOpt)
			if err != nil {
				t.Logf("seed %x %s bitmap rerun: %v", seed, c.name, err)
				return false
			}
			if b1.HeapHash != lg.HeapHash || b1.TraceSig != lg.TraceSig ||
				b1.HeapHash != b2.HeapHash || b1.TraceSig != b2.TraceSig {
				t.Logf("seed %x %s: heap %x/%x/%x trace %x/%x/%x (bitmap/legacy/bitmap)",
					seed, c.name, b1.HeapHash, lg.HeapHash, b2.HeapHash,
					b1.TraceSig, lg.TraceSig, b2.TraceSig)
				return false
			}
			// Same committed words found, different amounts of work to find
			// them: the legacy scan must never examine fewer words.
			if b1.WordsCommitted != lg.WordsCommitted {
				t.Logf("seed %x %s: bitmap committed %d words, legacy %d",
					seed, c.name, b1.WordsCommitted, lg.WordsCommitted)
				return false
			}
			if b1.WordsScanned > lg.WordsScanned {
				t.Logf("seed %x %s: bitmap scanned %d words, legacy only %d",
					seed, c.name, b1.WordsScanned, lg.WordsScanned)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickFlatViewsMatchMapViews is the end-to-end differential oracle for
// the flat per-view page tables and their frame/page pools: random corpus
// programs run under each strong deterministic engine must publish a
// byte-identical final heap, an identical synchronization trace, and
// identical commit statistics whether views track pages in the flat
// generation-stamped tables (default) or in the original Go maps
// (MapViews). Runs flat → map → flat so an order-dependent divergence in
// either layout is caught from both sides.
func TestQuickFlatViewsMatchMapViews(t *testing.T) {
	const threads = 3
	configs := []struct {
		name string
		opt  harness.Options
	}{
		{"Consequence", harness.Options{Engine: harness.Consequence, Threads: threads, Trace: true}},
		{"LazyDet", harness.Options{Engine: harness.LazyDet, Threads: threads, Trace: true}},
		{"LazyDet-WriteAware", harness.Options{
			Engine: harness.LazyDet, Threads: threads, Trace: true,
			Spec: core.SpecConfig{WriteAware: true},
		}},
	}
	f := func(seed uint64) bool {
		w, _, err := randprog.Generate(seed, randprog.DefaultConfig(threads))
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		for _, c := range configs {
			flatOpt := c.opt
			mapOpt := c.opt
			mapOpt.MapViews = true
			f1, err := harness.Run(w, flatOpt)
			if err != nil {
				t.Logf("seed %x %s flat: %v", seed, c.name, err)
				return false
			}
			mp, err := harness.Run(w, mapOpt)
			if err != nil {
				t.Logf("seed %x %s map: %v", seed, c.name, err)
				return false
			}
			f2, err := harness.Run(w, flatOpt)
			if err != nil {
				t.Logf("seed %x %s flat rerun: %v", seed, c.name, err)
				return false
			}
			if f1.HeapHash != mp.HeapHash || f1.TraceSig != mp.TraceSig ||
				f1.HeapHash != f2.HeapHash || f1.TraceSig != f2.TraceSig {
				t.Logf("seed %x %s: heap %x/%x/%x trace %x/%x/%x (flat/map/flat)",
					seed, c.name, f1.HeapHash, mp.HeapHash, f2.HeapHash,
					f1.TraceSig, mp.TraceSig, f2.TraceSig)
				return false
			}
			// The view layout may only change how pages are found, never
			// which words commit or how much work finds them.
			if f1.Commits != mp.Commits || f1.PagesCommitted != mp.PagesCommitted ||
				f1.WordsCommitted != mp.WordsCommitted || f1.WordsScanned != mp.WordsScanned {
				t.Logf("seed %x %s: commits %d/%d pages %d/%d words %d/%d scanned %d/%d (flat/map)",
					seed, c.name, f1.Commits, mp.Commits, f1.PagesCommitted, mp.PagesCommitted,
					f1.WordsCommitted, mp.WordsCommitted, f1.WordsScanned, mp.WordsScanned)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}
