package harness

import (
	"fmt"
	"testing"

	"lazydet/internal/core"
	"lazydet/internal/dvm"
)

// counterWorkload: every thread increments a single lock-protected counter
// iters times. The final value checks mutual exclusion under every engine.
func counterWorkload(iters int64) *Workload {
	return &Workload{
		Name:      "counter",
		HeapWords: 64,
		Locks:     1,
		Programs: func(threads int) []*dvm.Program {
			b := dvm.NewBuilder("counter")
			i, v := b.Reg(), b.Reg()
			b.ForN(i, iters, func() {
				b.Lock(dvm.Const(0))
				b.Load(v, dvm.Const(0))
				b.Store(dvm.Const(0), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(v) + 1 }))
				b.Unlock(dvm.Const(0))
			})
			progs := make([]*dvm.Program, threads)
			p := b.Build()
			for t := range progs {
				progs[t] = p
			}
			return progs
		},
		Validate: func(read func(int64) int64, threads int) error {
			want := int64(threads) * iters
			if got := read(0); got != want {
				return fmt.Errorf("counter = %d, want %d", got, want)
			}
			return nil
		},
	}
}

// shardedWorkload: threads increment many per-shard counters under distinct
// locks — the fine-grained pattern lazy determinism targets. Each thread
// walks the shards in a different deterministic order.
func shardedWorkload(shards int, iters int64) *Workload {
	return &Workload{
		Name:      "sharded",
		HeapWords: int64(shards),
		Locks:     shards,
		Programs: func(threads int) []*dvm.Program {
			progs := make([]*dvm.Program, threads)
			for tid := 0; tid < threads; tid++ {
				b := dvm.NewBuilder(fmt.Sprintf("sharded-%d", tid))
				i, v, s := b.Reg(), b.Reg(), b.Reg()
				stride := int64(tid*2 + 1)
				b.ForN(i, iters, func() {
					b.Do(func(t *dvm.Thread) { t.SetR(s, (t.R(i)*stride+int64(t.ID))%int64(shards)) })
					b.Lock(dvm.FromReg(s))
					b.Load(v, dvm.FromReg(s))
					b.Store(dvm.FromReg(s), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(v) + 1 }))
					b.Unlock(dvm.FromReg(s))
				})
				progs[tid] = b.Build()
			}
			return progs
		},
		Validate: func(read func(int64) int64, threads int) error {
			var total int64
			for s := 0; s < shards; s++ {
				total += read(int64(s))
			}
			want := int64(threads) * iters
			if total != want {
				return fmt.Errorf("sum of shards = %d, want %d", total, want)
			}
			return nil
		},
	}
}

// disjointWorkload: thread t owns an exclusive slice of the shards, so
// speculation never conflicts — the best case for lazy determinism.
func disjointWorkload(shards int, iters int64) *Workload {
	return &Workload{
		Name:      "disjoint",
		HeapWords: int64(shards),
		Locks:     shards,
		Programs: func(threads int) []*dvm.Program {
			per := shards / threads
			if per == 0 {
				per = 1
			}
			progs := make([]*dvm.Program, threads)
			for tid := 0; tid < threads; tid++ {
				b := dvm.NewBuilder(fmt.Sprintf("disjoint-%d", tid))
				i, v, s := b.Reg(), b.Reg(), b.Reg()
				base := int64(tid % threads * per)
				b.ForN(i, iters, func() {
					b.Do(func(t *dvm.Thread) { t.SetR(s, base+t.R(i)%int64(per)) })
					b.Lock(dvm.FromReg(s))
					b.Load(v, dvm.FromReg(s))
					b.Store(dvm.FromReg(s), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(v) + 1 }))
					b.Unlock(dvm.FromReg(s))
				})
				progs[tid] = b.Build()
			}
			return progs
		},
		Validate: func(read func(int64) int64, threads int) error {
			var total int64
			for s := 0; s < shards; s++ {
				total += read(int64(s))
			}
			want := int64(threads) * iters
			if total != want {
				return fmt.Errorf("sum of shards = %d, want %d", total, want)
			}
			return nil
		},
	}
}

func TestAllEnginesPreserveMutualExclusion(t *testing.T) {
	w := counterWorkload(300)
	for _, eng := range AllEngines {
		t.Run(eng.String(), func(t *testing.T) {
			if _, err := Run(w, Options{Engine: eng, Threads: 4}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestAllEnginesShardedCorrectness(t *testing.T) {
	w := shardedWorkload(16, 200)
	for _, eng := range AllEngines {
		t.Run(eng.String(), func(t *testing.T) {
			if _, err := Run(w, Options{Engine: eng, Threads: 4}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestDeterministicEnginesReproduce runs each deterministic engine twice and
// requires identical final heaps and identical synchronization-order traces.
func TestDeterministicEnginesReproduce(t *testing.T) {
	for _, w := range []*Workload{counterWorkload(200), shardedWorkload(8, 150)} {
		for _, eng := range []EngineKind{Consequence, TotalOrderWeak, LazyDet} {
			t.Run(w.Name+"/"+eng.String(), func(t *testing.T) {
				opt := Options{Engine: eng, Threads: 4, Trace: true}
				r1, err := Run(w, opt)
				if err != nil {
					t.Fatal(err)
				}
				r2, err := Run(w, opt)
				if err != nil {
					t.Fatal(err)
				}
				if r1.HeapHash != r2.HeapHash {
					t.Errorf("heap hashes differ: %x vs %x", r1.HeapHash, r2.HeapHash)
				}
				if r1.TraceSig != r2.TraceSig {
					t.Errorf("trace signatures differ: %x vs %x", r1.TraceSig, r2.TraceSig)
				}
				if r1.SyncEvents == 0 {
					t.Error("no synchronization events traced")
				}
			})
		}
	}
}

// TestLazyDetSpeculates checks that on a fine-grained workload LazyDet
// actually speculates (the point of the system) and mostly commits.
func TestLazyDetSpeculates(t *testing.T) {
	w := disjointWorkload(64, 300)
	r, err := Run(w, Options{Engine: LazyDet, Threads: 4, CollectSpec: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.Spec.Runs.Load() == 0 {
		t.Fatal("no speculation runs on a fine-grained workload")
	}
	if pct := r.Spec.SpecAcquirePct(); pct < 50 {
		t.Errorf("speculative acquisitions = %.1f%%, want most acquisitions speculative", pct)
	}
	if pct := r.Spec.SuccessPct(); pct < 50 {
		t.Errorf("speculation success = %.1f%%, want mostly successful on disjoint shards", pct)
	}
	t.Logf("spec acq %.1f%%, success %.1f%%, mean run %.1f CS, commits %d reverts %d",
		r.Spec.SpecAcquirePct(), r.Spec.SuccessPct(), r.Spec.MeanRunCS(),
		r.Spec.Commits.Load(), r.Spec.Reverts.Load())
}

// TestLazyDetCoarsens checks that coarsening produces multi-CS runs and the
// NoCoarsening ablation limits runs to one critical section.
func TestLazyDetCoarsens(t *testing.T) {
	w := disjointWorkload(64, 300)
	full, err := Run(w, Options{Engine: LazyDet, Threads: 2, CollectSpec: true})
	if err != nil {
		t.Fatal(err)
	}
	if m := full.Spec.MeanRunCS(); !(m > 1.5) {
		t.Errorf("mean run length = %.2f CS with coarsening, want > 1.5", m)
	}
	nc := core.DefaultSpecConfig()
	nc.Coarsening = false
	one, err := Run(w, Options{Engine: LazyDet, Threads: 2, CollectSpec: true, Spec: nc})
	if err != nil {
		t.Fatal(err)
	}
	if m := one.Spec.MeanRunCS(); m > 1.01 {
		t.Errorf("mean run length = %.2f CS with NoCoarsening, want 1", m)
	}
}

// TestLazyDetHandlesContention: all threads hammer one lock. Adaptive
// speculation must learn to stop speculating, and the result must stay
// correct and deterministic.
func TestLazyDetHandlesContention(t *testing.T) {
	w := counterWorkload(400)
	opt := Options{Engine: LazyDet, Threads: 4, CollectSpec: true, Trace: true}
	r1, err := Run(w, opt)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(w, opt)
	if err != nil {
		t.Fatal(err)
	}
	if r1.HeapHash != r2.HeapHash || r1.TraceSig != r2.TraceSig {
		t.Errorf("contended LazyDet run not deterministic: heap %x/%x trace %x/%x",
			r1.HeapHash, r2.HeapHash, r1.TraceSig, r2.TraceSig)
	}
	t.Logf("contended: spec acq %.1f%%, success %.1f%%, reverts %d",
		r1.Spec.SpecAcquirePct(), r1.Spec.SuccessPct(), r1.Spec.Reverts.Load())
}

// TestStrongIsolationPublishesOnlyAtSync: under Consequence, a write by one
// thread must not be visible to another before a synchronization operation
// publishes it; after the run, all writes are visible.
func TestStrongIsolationEndState(t *testing.T) {
	w := &Workload{
		Name:      "isolation",
		HeapWords: 64,
		Locks:     1,
		Programs: func(threads int) []*dvm.Program {
			progs := make([]*dvm.Program, threads)
			for tid := 0; tid < threads; tid++ {
				b := dvm.NewBuilder("iso")
				b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return int64(t.ID) }), dvm.Const(7))
				b.Lock(dvm.Const(0))
				b.Unlock(dvm.Const(0))
				progs[tid] = b.Build()
			}
			return progs
		},
		Validate: func(read func(int64) int64, threads int) error {
			for i := 0; i < threads; i++ {
				if got := read(int64(i)); got != 7 {
					return fmt.Errorf("slot %d = %d, want 7 (write lost)", i, got)
				}
			}
			return nil
		},
	}
	for _, eng := range []EngineKind{Consequence, LazyDet} {
		if _, err := Run(w, Options{Engine: eng, Threads: 4}); err != nil {
			t.Fatalf("%s: %v", eng, err)
		}
	}
}

// TestUtilizationMeasured smoke-tests the Figure 10 instrumentation.
func TestUtilizationMeasured(t *testing.T) {
	w := counterWorkload(200)
	r, err := Run(w, Options{Engine: Consequence, Threads: 4, MeasureTimes: true})
	if err != nil {
		t.Fatal(err)
	}
	if r.UtilizationPct <= 0 || r.UtilizationPct > 100 {
		t.Fatalf("utilization = %.1f%%, want in (0, 100]", r.UtilizationPct)
	}
}

// TestLockCounting smoke-tests the Table 1 instrumentation.
func TestLockCounting(t *testing.T) {
	w := shardedWorkload(16, 100)
	r, err := Run(w, Options{Engine: Pthreads, Threads: 4, CountLocks: true})
	if err != nil {
		t.Fatal(err)
	}
	s := r.Counter.Summarize()
	if s.Acquisitions != 4*100 {
		t.Fatalf("counted %d acquisitions, want 400", s.Acquisitions)
	}
	if s.Variables == 0 || s.Max == 0 {
		t.Fatalf("bad summary %+v", s)
	}
}
