// Package harness wires workloads to engines and runs experiments: it
// constructs the substrate each engine needs (versioned heap or direct
// shared memory, turn arbiter, synchronization table), loads the workload's
// initial data, runs the programs, and collects the measurements the
// paper's tables and figures report.
package harness

import (
	"fmt"
	"runtime"
	"time"

	"lazydet/internal/core"
	"lazydet/internal/detsync"
	"lazydet/internal/dlc"
	"lazydet/internal/dvm"
	"lazydet/internal/engine/direct"
	"lazydet/internal/invariant"
	"lazydet/internal/progcheck"
	"lazydet/internal/shmem"
	"lazydet/internal/stats"
	"lazydet/internal/telemetry"
	"lazydet/internal/trace"
	"lazydet/internal/vheap"
)

// EngineKind names the five systems of the paper's evaluation.
type EngineKind int

const (
	// Pthreads is the nondeterministic baseline every result is
	// normalized against.
	Pthreads EngineKind = iota
	// Consequence is eager strong determinism (Merrifield et al.,
	// EuroSys'15), the state of the art LazyDet is compared to.
	Consequence
	// TotalOrderWeak is eager weak determinism (Kendo-style): a
	// deterministic total order on synchronization without isolation.
	TotalOrderWeak
	// TotalOrderWeakNondet totally orders synchronization through a
	// global mutex, nondeterministically — the "perfect logical clock"
	// simulation.
	TotalOrderWeakNondet
	// LazyDet is the paper's contribution: strong determinism with
	// speculative order elision.
	LazyDet
)

// AllEngines lists the engines in the order the paper's figures plot them.
var AllEngines = []EngineKind{Pthreads, Consequence, TotalOrderWeak, TotalOrderWeakNondet, LazyDet}

// String returns the evaluation's name for the engine.
func (k EngineKind) String() string {
	switch k {
	case Pthreads:
		return "pthreads"
	case Consequence:
		return "Consequence"
	case TotalOrderWeak:
		return "TotalOrder-Weak"
	case TotalOrderWeakNondet:
		return "TotalOrder-Weak-Nondet"
	case LazyDet:
		return "LazyDet"
	}
	return "unknown"
}

// Deterministic reports whether the engine guarantees deterministic
// execution (for TotalOrderWeak: of data-race-free programs).
func (k EngineKind) Deterministic() bool {
	return k == Consequence || k == TotalOrderWeak || k == LazyDet
}

// Workload describes one benchmark program: its memory and synchronization
// footprint, per-thread programs, initial data, and an optional final
// correctness check.
type Workload struct {
	// Name is the benchmark's name as the paper reports it.
	Name string
	// HeapWords is the shared memory size in 64-bit words.
	HeapWords int64
	// Locks, Conds and Barriers size the synchronization object tables.
	Locks, Conds, Barriers int
	// Programs builds the per-thread programs for a thread count.
	Programs func(threads int) []*dvm.Program
	// Init loads initial shared-memory contents.
	Init func(set func(addr, val int64), threads int)
	// Validate, if non-nil, checks the final shared memory.
	Validate func(read func(addr int64) int64, threads int) error
}

// Options configures one run.
type Options struct {
	Engine  EngineKind
	Threads int
	// Trace enables sync-order trace recording (determinism checks).
	Trace bool
	// LogEvents additionally keeps the full per-thread event streams,
	// for divergence diffing (implies Trace).
	LogEvents bool
	// MeasureTimes enables blocked-time accounting (Figure 10).
	MeasureTimes bool
	// CollectSpec enables speculation statistics (Table 2, Figure 12).
	CollectSpec bool
	// CountLocks enables per-lock acquisition counting on the pthreads
	// engine (Table 1).
	CountLocks bool
	// Spec overrides LazyDet's speculation parameters; zero value means
	// the paper's defaults.
	Spec core.SpecConfig
	// PageWords overrides the versioned heap's page size.
	PageWords int
	// FullVersionChains retains every page version (DLRC-style
	// accounting) instead of trimming to live bases (§4.2 experiment).
	FullVersionChains bool
	// LegacyDiffCommit makes the versioned heap find modified words by a
	// full twin scan of every dirty page, instead of walking the
	// dirty-word bitmaps. The differential oracle for the bitmap commit
	// path: both must publish byte-identical heaps and traces.
	LegacyDiffCommit bool
	// MapViews makes the versioned heap's views track dirty and clean
	// pages in Go maps instead of the flat page-number-indexed tables.
	// The differential oracle for the flat-table fast path: both must
	// publish byte-identical heaps, traces, and commit statistics.
	MapViews bool
	// FlatArbiter makes the deterministic engines arbitrate turns with the
	// original flat O(threads) scans instead of the tournament tree. The
	// differential oracle for the tree arbiter: both must produce
	// bit-identical grant orders, traces, and final heaps.
	FlatArbiter bool
	// HeapShards overrides the versioned heap's shard count (page-range
	// partitions of the commit lock, page pool and trim floor). Zero means
	// the heap's default; 1 collapses to the single-lock layout, the
	// differential oracle for sharding.
	HeapShards int
	// Telemetry enables the unified metrics registry
	// (internal/telemetry): the engine, versioned heap and memory pipeline
	// publish counters and histograms into one recorder, available as
	// Result.Telemetry after the run and convertible to a run report with
	// BuildReport. Off by default; when off the publishers pay one nil
	// compare each.
	Telemetry bool
	// TelemetrySpans additionally records per-thread DLC-stamped span
	// timelines (turn waits, speculation runs, commits, reverts) for the
	// Chrome-trace exporter. Implies Telemetry.
	TelemetrySpans bool
	// CheckInvariants enables the runtime invariant audit layer
	// (internal/invariant) on the deterministic engines: turn-holder
	// uniqueness, heap commit monotonicity and chain integrity,
	// lock-table consistency, and snapshot round-trip exactness are
	// asserted at every turn grant and commit/revert. Off by default;
	// enabling it costs roughly the lock-table size per synchronization
	// operation.
	CheckInvariants bool
	// OnViolation receives structured invariant violations when
	// CheckInvariants is set; nil means a violation panics (repeatably,
	// since the engines are deterministic).
	OnViolation func(*invariant.Violation)
	// Vet runs the internal/progcheck static analyzer over the workload's
	// programs before execution. Error-severity findings (definite lock
	// discipline violations) abort the run; warnings (potential deadlocks,
	// race candidates) are kept on Result.Vet for the caller to surface.
	Vet bool
	// SpecHints runs the progcheck footprint analysis over the workload's
	// programs and seeds LazyDet's speculation policy with the per-lock
	// verdicts: Disjoint locks always speculate and skip their validation
	// checks, Conflicting locks start conventional, everything else is
	// left to runtime adaptation. No effect on the other engines. The
	// unhinted policy is the differential oracle: final heap hashes and
	// Validate outcomes must be identical with this flag flipped
	// (lazydet-fuzz property 9). Reuses Result.Vet's report when Vet is
	// also set.
	SpecHints bool
	// Compiled lowers the workload's programs to the threaded-code backend
	// (internal/dvm Compile): fused superinstructions with specialized
	// operands, replacing the per-instruction interpreter dispatch. The
	// interpreter is the differential oracle: schedules, traces, heaps and
	// gated metrics are bit-identical per seed with this flag flipped.
	Compiled bool
	// EagerPublish forces every critical-section release to commit its
	// writes immediately, disabling same-owner publication elision on the
	// versioned-heap engines. The eager path is the differential oracle
	// for elision: schedules, TraceSig, HeapHash and every gated metric
	// outside the elision-variant set (commit/stage volume counters) must
	// be bit-identical with this flag flipped. No effect on weak engines.
	EagerPublish bool
}

// Result is one run's measurements.
type Result struct {
	Engine   EngineKind
	Workload string
	Threads  int
	Wall     time.Duration
	// CPU is the process CPU time consumed by the run.
	CPU time.Duration
	// HeapHash fingerprints the final shared memory.
	HeapHash uint64
	// TraceSig fingerprints the synchronization order (0 if untraced).
	TraceSig uint64
	// SyncEvents counts traced synchronization events.
	SyncEvents int64
	// Recorder is the trace recorder when tracing was enabled; with
	// LogEvents it carries the full event streams for diffing.
	Recorder *trace.Recorder
	// Commits/PagesCommitted/WordsCommitted are versioned-heap totals
	// (strong engines only).
	Commits, PagesCommitted, WordsCommitted int64
	// WordsScanned counts the words commits examined to find the committed
	// ones (strong engines only): page size × dirty pages under the legacy
	// full diff, dirty-bitmap population under dirty tracking.
	WordsScanned int64
	// LiveVersions counts page versions still reachable after the run
	// (strong engines only).
	LiveVersions int
	// ArbiterWakes/ArbiterGrantWork are the turn arbiter's cost counters
	// (deterministic engines only): targeted waiter wakeups sent, and
	// key-comparison work done electing minimum turns. Scheduling-
	// dependent — informational, not deterministic machine state.
	ArbiterWakes, ArbiterGrantWork int64
	// ArbiterChainHits counts consecutive same-thread turn grants — the
	// grant-chaining opportunity the tournament tree's fast path exploits.
	// A function of the deterministic grant sequence alone.
	ArbiterChainHits int64
	// Spec carries speculation statistics when collected.
	Spec *stats.Spec
	// Times carries per-thread blocked-time accounting when measured.
	Times *stats.Times
	// Telemetry is the run's metrics registry when Options.Telemetry (or
	// TelemetrySpans) was set.
	Telemetry *telemetry.Recorder
	// Counter carries per-lock acquisition counts when collected.
	Counter *stats.LockCounter
	// UtilizationPct is the machine-level CPU utilization of the run
	// (process CPU time / (wall × NumCPU)) when measured — Figure 10's
	// metric.
	UtilizationPct float64
	// BlockedPct is the fraction of total thread-time spent blocked
	// (turn waits, lock waits, parks) when measured.
	BlockedPct float64
	// Vet is the static-analysis report when Options.Vet was set. It is
	// populated even when vet aborts the run, so callers can render the
	// findings.
	Vet *progcheck.Report
	// Hints is the footprint-analysis verdict table when Options.SpecHints
	// was set on a LazyDet run.
	Hints *progcheck.SpecHints
	// LockReverts counts, per lock ID, speculation reverts attributed to
	// that lock's validation checks (LazyDet only; see
	// detsync.Lock.ConflictReverts). Statically Disjoint locks must stay
	// at zero.
	LockReverts []int64
	// Allocs is the process heap-allocation count (runtime mallocs) over
	// the run, measured when any of Telemetry, TelemetrySpans or
	// MeasureTimes is set. Informational only: the Go runtime's
	// allocation behavior is not part of the deterministic machine state.
	Allocs int64
}

// Run executes the workload once under the configured engine.
func Run(w *Workload, opt Options) (*Result, error) {
	if opt.Threads <= 0 {
		return nil, fmt.Errorf("harness: thread count %d", opt.Threads)
	}
	progs := w.Programs(opt.Threads)
	if len(progs) != opt.Threads {
		return nil, fmt.Errorf("harness: workload %s built %d programs for %d threads", w.Name, len(progs), opt.Threads)
	}
	for i, p := range progs {
		if err := p.Validate(); err != nil {
			return nil, fmt.Errorf("harness: workload %s, thread %d: %w", w.Name, i, err)
		}
	}

	res := &Result{Engine: opt.Engine, Workload: w.Name, Threads: opt.Threads}

	var rec *trace.Recorder
	if opt.LogEvents {
		rec = trace.NewLogging(opt.Threads)
	} else if opt.Trace {
		rec = trace.New(opt.Threads)
	}
	var times *stats.Times
	if opt.MeasureTimes {
		times = stats.NewTimes(opt.Threads)
	}
	var spec *stats.Spec
	if opt.CollectSpec {
		spec = &stats.Spec{}
	}
	var tel *telemetry.Recorder
	if opt.TelemetrySpans {
		tel = telemetry.NewWithSpans(opt.Threads)
	} else if opt.Telemetry {
		tel = telemetry.New()
	}

	if opt.Vet {
		vet := progcheck.Check(progs)
		res.Vet = vet
		vet.Publish(tel)
		if n := vet.CountBySeverity(progcheck.SevError); n > 0 {
			return res, fmt.Errorf("harness: workload %s failed static vet with %d error finding(s):\n%s",
				w.Name, n, vet.Human())
		}
	}
	var hints []core.SpecHint
	if opt.SpecHints && opt.Engine == LazyDet {
		rep := res.Vet
		if rep == nil {
			// Vet didn't run: do the analysis here and publish only the
			// hint verdict counters (the full progcheck.* namespace is
			// Options.Vet's contract).
			rep = progcheck.Check(progs)
			rep.Hints.Publish(tel)
		}
		res.Hints = rep.Hints
		hints = lowerHints(rep.Hints, w.Locks)
	}

	// Lower the programs to threaded code when requested — outside the
	// timed section, with the lowering cost reported as machine-dependent
	// timing, never as a metric. Threads sharing a *Program share one
	// compilation.
	var runOpts []dvm.RunOption
	if opt.Compiled {
		execs := make([]dvm.Exec, len(progs))
		cache := make(map[*dvm.Program]*dvm.Compiled, len(progs))
		cstart := time.Now()
		for i, p := range progs {
			cp := cache[p]
			if cp == nil {
				var err error
				if cp, err = dvm.Compile(p); err != nil {
					return nil, fmt.Errorf("harness: workload %s, thread %d: %w", w.Name, i, err)
				}
				cache[p] = cp
			}
			execs[i] = cp
		}
		if tel != nil {
			tel.Count("dvm.compile_ns", time.Since(cstart).Nanoseconds())
			for _, cp := range cache {
				st := cp.Stats()
				tel.Count("dvm.fused_blocks", int64(st.FusedBlocks))
				tel.Count("dvm.superinstructions", int64(st.Superinstrs))
			}
		}
		runOpts = append(runOpts, dvm.WithExecs(execs))
	}

	var eng dvm.Engine
	var readFinal func(int64) int64
	var heap *vheap.Heap
	var tbl *detsync.Table // strong engines only: read back after the run

	switch opt.Engine {
	case Pthreads:
		mem := shmem.New(w.HeapWords)
		if w.Init != nil {
			w.Init(mem.SetInitial, opt.Threads)
		}
		de := direct.New(mem, opt.Threads, w.Locks, w.Conds, w.Barriers)
		de.Times = times
		if opt.CountLocks {
			de.Counter = stats.NewLockCounter(w.Locks)
			res.Counter = de.Counter
		}
		eng = de
		readFinal = mem.ReadCommitted
		defer func() { res.HeapHash = mem.Hash() }()

	case Consequence, LazyDet:
		var hopts []vheap.Option
		if opt.PageWords > 0 {
			hopts = append(hopts, vheap.WithPageWords(opt.PageWords))
		}
		if opt.FullVersionChains {
			hopts = append(hopts, vheap.WithFullVersionChains())
		}
		if opt.LegacyDiffCommit {
			hopts = append(hopts, vheap.WithLegacyDiffCommit())
		}
		if opt.MapViews {
			hopts = append(hopts, vheap.WithMapViews())
		}
		if opt.HeapShards > 0 {
			hopts = append(hopts, vheap.WithShards(opt.HeapShards))
		}
		if tel != nil {
			hopts = append(hopts, vheap.WithTelemetry(tel))
		}
		heap = vheap.New(w.HeapWords, hopts...)
		if w.Init != nil {
			w.Init(heap.SetInitial, opt.Threads)
		}
		cfg := core.Config{
			Mode:            core.ModeStrong,
			Speculation:     opt.Engine == LazyDet,
			Spec:            opt.Spec,
			CheckInvariants: opt.CheckInvariants,
			Hints:           hints,
			EagerPublish:    opt.EagerPublish,
		}
		arb := dlc.New(opt.Threads, arbOpts(opt)...)
		defer publishArbStats(tel, arb, res)
		tbl = detsync.NewTable(opt.Threads, w.Locks, w.Conds, w.Barriers, opt.Engine == LazyDet)
		eng = core.New(cfg, core.Deps{
			Arb:         arb,
			Tbl:         tbl,
			Heap:        heap,
			Rec:         rec,
			Times:       times,
			Spec:        spec,
			Tel:         tel,
			OnViolation: opt.OnViolation,
		})
		readFinal = heap.ReadCommitted
		defer func() {
			res.HeapHash = heap.Hash()
			st := heap.Stats()
			res.Commits, res.PagesCommitted, res.WordsCommitted = st.Commits, st.Pages, st.Words
			res.WordsScanned = st.WordsScanned
			res.LiveVersions = heap.LiveVersions()
		}()

	case TotalOrderWeak, TotalOrderWeakNondet:
		mem := shmem.New(w.HeapWords)
		if w.Init != nil {
			w.Init(mem.SetInitial, opt.Threads)
		}
		mode := core.ModeWeak
		arb := dlc.New(opt.Threads, arbOpts(opt)...)
		if opt.Engine == TotalOrderWeakNondet {
			mode = core.ModeWeakNondet
			arb = dlc.NewNondet(opt.Threads)
		}
		defer publishArbStats(tel, arb, res)
		eng = core.New(core.Config{Mode: mode, CheckInvariants: opt.CheckInvariants}, core.Deps{
			Arb:         arb,
			Tbl:         detsync.NewTable(opt.Threads, w.Locks, w.Conds, w.Barriers, false),
			Mem:         mem,
			Rec:         rec,
			Times:       times,
			Tel:         tel,
			OnViolation: opt.OnViolation,
		})
		readFinal = mem.ReadCommitted
		defer func() { res.HeapHash = mem.Hash() }()

	default:
		return nil, fmt.Errorf("harness: unknown engine %d", opt.Engine)
	}

	// ReadMemStats stops the world, so the allocation count is only taken
	// when the caller already opted into measurement overhead.
	measureAllocs := opt.Telemetry || opt.TelemetrySpans || opt.MeasureTimes
	var mallocsBefore uint64
	if measureAllocs {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		mallocsBefore = ms.Mallocs
	}
	cpuBefore := stats.ProcessCPUNs()
	start := time.Now()
	dvm.Run(eng, progs, runOpts...)
	res.Wall = time.Since(start)
	cpuAfter := stats.ProcessCPUNs()
	res.CPU = time.Duration(cpuAfter - cpuBefore)
	if measureAllocs {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		res.Allocs = int64(ms.Mallocs - mallocsBefore)
	}

	if rec != nil {
		res.TraceSig = rec.Signature()
		res.SyncEvents = rec.Events()
		res.Recorder = rec
	}
	res.Spec = spec
	res.Times = times
	if opt.Engine == LazyDet && tbl != nil {
		res.LockReverts = make([]int64, len(tbl.Locks))
		for i := range tbl.Locks {
			res.LockReverts[i] = tbl.Locks[i].ConflictReverts
		}
	}
	if times != nil {
		capacity := res.Wall.Nanoseconds() * int64(runtime.NumCPU())
		if capacity > 0 {
			res.UtilizationPct = 100 * float64(cpuAfter-cpuBefore) / float64(capacity)
			if res.UtilizationPct > 100 {
				res.UtilizationPct = 100
			}
		}
		res.BlockedPct = 100 - times.UtilizationPct(res.Wall.Nanoseconds(), opt.Threads)
	}
	if tel != nil {
		absorbStats(tel, res)
		res.Telemetry = tel
	}
	if w.Validate != nil {
		if err := w.Validate(readFinal, opt.Threads); err != nil {
			return res, fmt.Errorf("harness: %s under %s: %w", w.Name, opt.Engine, err)
		}
	}
	return res, nil
}

// lowerHints converts the analyzer's verdict table into the engine's dense
// per-lock prior slice. Locks without a verdict (or beyond the workload's
// lock table) stay HintNone.
func lowerHints(h *progcheck.SpecHints, nlocks int) []core.SpecHint {
	if h == nil || len(h.Verdicts) == 0 || nlocks <= 0 {
		return nil
	}
	out := make([]core.SpecHint, nlocks)
	for _, l := range h.Locks() {
		if l < 0 || l >= int64(nlocks) {
			continue
		}
		switch h.Verdicts[l] {
		case progcheck.VerdictDisjoint:
			out[l] = core.HintDisjoint
		case progcheck.VerdictConflicting:
			out[l] = core.HintConflicting
		case progcheck.VerdictCommutative:
			out[l] = core.HintCommutative
		}
	}
	return out
}

// arbOpts maps run options onto deterministic-arbiter construction options.
func arbOpts(opt Options) []dlc.Option {
	if opt.FlatArbiter {
		return []dlc.Option{dlc.WithFlatArbiter()}
	}
	return nil
}

// publishArbStats records the arbiter's cost counters after a run. Wakes,
// grant work and fast-path chain grants depend on which threads happened to
// be blocked when clocks advanced — real goroutine scheduling — so they are
// routed into the never-gated Timing section (see timingCounters); the
// tournament depth is a pure function of the thread count, and chain hits a
// function of the deterministic grant sequence, so both stay gated metrics.
func publishArbStats(tel *telemetry.Recorder, arb *dlc.Arbiter, res *Result) {
	st := arb.Stats()
	res.ArbiterWakes, res.ArbiterGrantWork = st.Wakes, st.GrantWork
	res.ArbiterChainHits = st.ChainHits
	if tel != nil {
		tel.Count("dlc.wakes", st.Wakes)
		tel.Count("dlc.grant_work", st.GrantWork)
		tel.Count("dlc.chain_hits", st.ChainHits)
		tel.Count("dlc.chain_fast", st.ChainFast)
		tel.SetGauge("dlc.arbiter_depth", float64(st.Depth))
	}
}
