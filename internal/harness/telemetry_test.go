package harness_test

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"lazydet/internal/harness"
	"lazydet/internal/telemetry"
	"lazydet/internal/workloads"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// specRun executes the 2-thread hash-table workload under LazyDet with span
// recording on — the configuration the golden trace pins down.
func specRun(t *testing.T) *harness.Result {
	t.Helper()
	w := workloads.NewHashTable(workloads.DefaultHTConfig(workloads.HT))
	res, err := harness.Run(w, harness.Options{
		Engine: harness.LazyDet, Threads: 2, TelemetrySpans: true, CollectSpec: true, Trace: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestChromeTraceGolden: a speculative 2-thread run exports a byte-identical
// Chrome trace across runs, and that trace matches the checked-in golden
// file — the spans are stamped in DLC time, so neither scheduling nor the
// machine may show through. Regenerate with: go test ./internal/harness
// -run TestChromeTraceGolden -update
func TestChromeTraceGolden(t *testing.T) {
	export := func() []byte {
		res := specRun(t)
		var buf bytes.Buffer
		if err := telemetry.WriteChromeTrace(&buf, res.Telemetry, "ht/LazyDet/t2"); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Fatal("two runs of the same spec exported different traces")
	}

	golden := filepath.Join("testdata", "chrometrace_ht_lazydet_t2.json")
	if *updateGolden {
		if err := os.WriteFile(golden, a, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, want) {
		t.Fatalf("trace differs from golden file %s (len %d vs %d); if the span "+
			"layout changed intentionally, regenerate with -update", golden, len(a), len(want))
	}
}

// TestBuildReportDeterministic: deterministic metrics and histograms of two
// identical runs agree exactly; nondeterministic timing lives only in the
// Timing section.
func TestBuildReportDeterministic(t *testing.T) {
	r1 := harness.BuildReport(specRun(t))
	r2 := harness.BuildReport(specRun(t))
	if len(r1.Metrics) == 0 {
		t.Fatal("report has no deterministic metrics")
	}
	for name, v1 := range r1.Metrics {
		if v2, ok := r2.Metrics[name]; !ok || v1 != v2 {
			t.Errorf("metric %s: %v vs %v", name, v1, r2.Metrics[name])
		}
	}
	if len(r1.Metrics) != len(r2.Metrics) {
		t.Errorf("metric sets differ: %d vs %d", len(r1.Metrics), len(r2.Metrics))
	}
	if r1.HeapHash != r2.HeapHash || r1.TraceSig != r2.TraceSig {
		t.Error("fingerprints differ between identical runs")
	}
	for name, h1 := range r1.Histograms {
		h2 := r2.Histograms[name]
		if h1.N != h2.N || h1.Sum != h2.Sum {
			t.Errorf("histogram %s: n/sum %d/%d vs %d/%d", name, h1.N, h1.Sum, h2.N, h2.Sum)
		}
	}
	for _, want := range []string{"dlc.total", "turn.waits", "vheap.commits", "vheap.words_committed", "mempipe.publishes", "spec.runs", "sync.events"} {
		if _, ok := r1.Metrics[want]; !ok {
			t.Errorf("report missing metric %s (have %v)", want, r1.Metrics)
		}
	}
	if _, ok := r1.Timing["wall_ns"]; !ok {
		t.Error("report missing wall_ns timing")
	}
}

// TestTelemetryCountersMatchResult: the registry's heap counters agree with
// the Result fields they absorb, so the two reporting paths cannot drift.
func TestTelemetryCountersMatchResult(t *testing.T) {
	res := specRun(t)
	tel := res.Telemetry
	if tel == nil {
		t.Fatal("telemetry not recorded")
	}
	checks := map[string]int64{
		"vheap.commits":         res.Commits,
		"vheap.pages_committed": res.PagesCommitted,
		"vheap.words_committed": res.WordsCommitted,
		"vheap.words_scanned":   res.WordsScanned,
		"sync.events":           res.SyncEvents,
		"spec.runs":             res.Spec.Runs.Load(),
		"spec.reverts":          res.Spec.Reverts.Load(),
	}
	for name, want := range checks {
		if got := tel.Counter(name); got != want {
			t.Errorf("%s = %d, want %d (Result field)", name, got, want)
		}
	}
	if got, want := tel.Gauge("spec.success_pct"), res.Spec.SuccessPct(); got != want {
		t.Errorf("spec.success_pct = %v, want %v", got, want)
	}
}

// TestTelemetryDisabledByDefault: without the option nothing is recorded and
// no recorder is attached.
func TestTelemetryDisabledByDefault(t *testing.T) {
	w := workloads.NewHashTable(workloads.DefaultHTConfig(workloads.HT))
	res, err := harness.Run(w, harness.Options{Engine: harness.LazyDet, Threads: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Telemetry != nil {
		t.Fatal("telemetry recorded without being enabled")
	}
}
