package harness

import (
	"fmt"
	"testing"

	"lazydet/internal/dvm"
	"lazydet/internal/invariant"
)

// burstWorkload is elision's target shape: each thread owns a lock and a
// word, and alternates a heavy compute phase with a burst of reacquire
// iterations on its own lock. A per-thread DLC stagger larger than a
// burst's total cost keeps the bursts disjoint in logical time, so each
// burst is an uninterrupted run of same-thread turns — the releases chain
// into one deferred publication, and the arbiter grants chain with them.
func burstWorkload(bursts, burstLen int64) *Workload {
	const heavy = 10_000
	return &Workload{
		Name:      "burst",
		HeapWords: 64,
		Locks:     64,
		Programs: func(threads int) []*dvm.Program {
			progs := make([]*dvm.Program, threads)
			for tid := 0; tid < threads; tid++ {
				b := dvm.NewBuilder(fmt.Sprintf("burst-%d", tid))
				i, j, v := b.Reg(), b.Reg(), b.Reg()
				lock := dvm.Const(int64(tid))
				addr := dvm.Const(int64(tid))
				b.DoCost(1+int64(tid)*1000, func(*dvm.Thread) {})
				b.ForN(i, bursts, func() {
					b.DoCost(heavy, func(*dvm.Thread) {})
					b.ForN(j, burstLen, func() {
						b.Lock(lock)
						b.Load(v, addr)
						b.Store(addr, dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(v) + 1 }))
						b.Unlock(lock)
					})
				})
				progs[tid] = b.Build()
			}
			return progs
		},
		Validate: func(read func(int64) int64, threads int) error {
			for tid := 0; tid < threads; tid++ {
				if got, want := read(int64(tid)), bursts*burstLen; got != want {
					return fmt.Errorf("thread %d counter = %d, want %d", tid, got, want)
				}
			}
			return nil
		},
	}
}

// Equivalence and regression tests for same-owner publication elision: the
// -eagerpublish path is the differential oracle, and the two disciplines
// must be indistinguishable in everything but commit/stage volume.

// TestScheduleEquivalenceAcrossPublication is the schedule-equivalence
// oracle for publication elision: at t=4, 64 and 256, the elided and eager
// disciplines must produce bit-identical synchronization traces, sync-event
// counts, final heaps, and gated metrics outside the elision-variant set on
// both strong engines. A staged release reserves exactly the sequence an
// eager commit would use and records the same trace event, so which
// discipline published must be unobservable.
func TestScheduleEquivalenceAcrossPublication(t *testing.T) {
	for _, threads := range []int{4, 64, 256} {
		iters := int64(2048 / threads)
		for _, eng := range []EngineKind{Consequence, LazyDet} {
			base := Options{
				Engine: eng, Threads: threads, Trace: true, Telemetry: true,
				CollectSpec: eng == LazyDet,
			}
			elided, err := Run(shardedWorkload(2*threads, iters), base)
			if err != nil {
				t.Fatalf("t=%d %v elided: %v", threads, eng, err)
			}
			eagerOpt := base
			eagerOpt.EagerPublish = true
			eager, err := Run(shardedWorkload(2*threads, iters), eagerOpt)
			if err != nil {
				t.Fatalf("t=%d %v eager: %v", threads, eng, err)
			}
			if elided.TraceSig != eager.TraceSig {
				t.Errorf("t=%d %v: trace signature diverges: elided %x, eager %x",
					threads, eng, elided.TraceSig, eager.TraceSig)
			}
			if elided.SyncEvents != eager.SyncEvents {
				t.Errorf("t=%d %v: sync event counts diverge: elided %d, eager %d",
					threads, eng, elided.SyncEvents, eager.SyncEvents)
			}
			if elided.HeapHash != eager.HeapHash {
				t.Errorf("t=%d %v: final heap diverges: elided %x, eager %x",
					threads, eng, elided.HeapHash, eager.HeapHash)
			}
			for _, d := range GatedMetricDiffs(elided, eager) {
				t.Errorf("t=%d %v: gated metric differs across publication disciplines: %s",
					threads, eng, d)
			}
		}
	}
}

// TestElisionFiresAndSavesCommits asserts the optimization is not vacuous
// on its target shape — threads repeatedly reacquiring locks whose state no
// peer demands: publications are elided, grant chains form, and the elided
// run physically commits strictly less than the eager oracle while ending
// on the same heap.
func TestElisionFiresAndSavesCommits(t *testing.T) {
	w := func() *Workload { return burstWorkload(10, 20) }
	for _, eng := range []EngineKind{Consequence, LazyDet} {
		base := Options{Engine: eng, Threads: 4, Telemetry: true, CollectSpec: eng == LazyDet}
		elided, err := Run(w(), base)
		if err != nil {
			t.Fatalf("%v elided: %v", eng, err)
		}
		eagerOpt := base
		eagerOpt.EagerPublish = true
		eager, err := Run(w(), eagerOpt)
		if err != nil {
			t.Fatalf("%v eager: %v", eng, err)
		}
		if n := elided.Telemetry.Counter("commit.elided"); n == 0 {
			t.Errorf("%v: no publications elided on a disjoint lock-hot workload", eng)
		}
		if n := eager.Telemetry.Counter("commit.elided"); n != 0 {
			t.Errorf("%v: %d publications elided under -eagerpublish, want 0", eng, n)
		}
		if elided.Commits >= eager.Commits {
			t.Errorf("%v: elided run committed %d times, eager %d — elision saved nothing",
				eng, elided.Commits, eager.Commits)
		}
		if elided.ArbiterChainHits == 0 {
			t.Errorf("%v: no consecutive same-thread grants recorded", eng)
		}
		if elided.ArbiterChainHits != eager.ArbiterChainHits {
			t.Errorf("%v: chain hits diverge across publication disciplines: elided %d, eager %d",
				eng, elided.ArbiterChainHits, eager.ArbiterChainHits)
		}
		if elided.HeapHash != eager.HeapHash {
			t.Errorf("%v: final heap diverges: elided %x, eager %x", eng, elided.HeapHash, eager.HeapHash)
		}
	}
}

// TestSpeculativeRevertPreservesDeferredState is the engine-level
// regression test for the elision/speculation interaction: a contended
// workload makes LazyDet revert speculation runs while threads hold
// deferred (staged but not physically committed) publications. The
// invariant checker's deferred-publish rule audits the retained frames at
// every elided publication, and the final state must match the eager
// oracle exactly.
func TestSpeculativeRevertPreservesDeferredState(t *testing.T) {
	w := func() *Workload { return counterWorkload(400) }
	var violations []*invariant.Violation
	opt := Options{
		Engine: LazyDet, Threads: 4, Trace: true, CollectSpec: true,
		CheckInvariants: true,
		OnViolation:     func(v *invariant.Violation) { violations = append(violations, v) },
	}
	elided, err := Run(w(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if elided.Spec.Reverts.Load() == 0 {
		t.Fatal("contended counter produced no speculation reverts — the regression scenario never occurred")
	}
	for _, v := range violations {
		t.Errorf("invariant violation: %v", v)
	}
	eagerOpt := opt
	eagerOpt.EagerPublish = true
	eager, err := Run(w(), eagerOpt)
	if err != nil {
		t.Fatal(err)
	}
	if elided.TraceSig != eager.TraceSig || elided.HeapHash != eager.HeapHash {
		t.Errorf("reverted-with-deferred-state run diverges from eager oracle: trace %x/%x heap %x/%x",
			elided.TraceSig, eager.TraceSig, elided.HeapHash, eager.HeapHash)
	}
}
