package harness_test

import (
	"testing"
	"testing/quick"

	"lazydet/internal/harness"
	"lazydet/internal/randprog"
)

// TestQuickCrossEngineEquivalence: for random commutative race-free
// programs, all five engines produce exactly the host model's final memory
// (randprog workloads carry the model as their Validate check).
func TestQuickCrossEngineEquivalence(t *testing.T) {
	const threads = 3
	f := func(seed uint64) bool {
		w, _, err := randprog.Generate(seed, randprog.DefaultConfig(threads))
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		for _, eng := range harness.AllEngines {
			if _, err := harness.Run(w, harness.Options{Engine: eng, Threads: threads}); err != nil {
				t.Logf("seed %x engine %v: %v", seed, eng, err)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDeterministicEnginesReproduceRandomPrograms: for random
// programs, deterministic engines produce identical trace signatures across
// repeated runs.
func TestQuickDeterministicEnginesReproduceRandomPrograms(t *testing.T) {
	const threads = 3
	f := func(seed uint64) bool {
		w, _, err := randprog.Generate(seed, randprog.DefaultConfig(threads))
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		for _, eng := range []harness.EngineKind{harness.Consequence, harness.TotalOrderWeak, harness.LazyDet} {
			opt := harness.Options{Engine: eng, Threads: threads, Trace: true}
			r1, err := harness.Run(w, opt)
			if err != nil {
				return false
			}
			r2, err := harness.Run(w, opt)
			if err != nil {
				return false
			}
			if r1.TraceSig != r2.TraceSig || r1.HeapHash != r2.HeapHash {
				t.Logf("seed %x engine %v: trace %x/%x heap %x/%x",
					seed, eng, r1.TraceSig, r2.TraceSig, r1.HeapHash, r2.HeapHash)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickSpeculationAccounting: commits plus reverts always equal runs.
func TestQuickSpeculationAccounting(t *testing.T) {
	const threads = 4
	f := func(seed uint64) bool {
		w, _, err := randprog.Generate(seed, randprog.DefaultConfig(threads))
		if err != nil {
			t.Fatalf("generate: %v", err)
		}
		res, err := harness.Run(w, harness.Options{Engine: harness.LazyDet, Threads: threads, CollectSpec: true})
		if err != nil {
			t.Log(err)
			return false
		}
		runs := res.Spec.Runs.Load()
		if res.Spec.Commits.Load()+res.Spec.Reverts.Load() != runs {
			t.Logf("seed %x: %d commits + %d reverts != %d runs",
				seed, res.Spec.Commits.Load(), res.Spec.Reverts.Load(), runs)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
