package harness

import (
	"strings"
	"testing"

	"lazydet/internal/dvm"
	"lazydet/internal/progcheck"
)

// leakyWorkload builds a program with a definite discipline bug: the lock is
// never released, so the thread halts holding it.
func leakyWorkload() *Workload {
	return &Workload{
		Name:      "leaky",
		HeapWords: 8,
		Locks:     1,
		Programs: func(threads int) []*dvm.Program {
			b := dvm.NewBuilder("leaky")
			b.Lock(dvm.Const(0))
			b.Store(dvm.Const(0), dvm.Const(1))
			progs := make([]*dvm.Program, threads)
			p := b.Build()
			for t := range progs {
				progs[t] = p
			}
			return progs
		},
	}
}

// TestVetPassesCleanWorkload: the pre-run check stays out of the way on
// disciplined programs and leaves the report on the result.
func TestVetPassesCleanWorkload(t *testing.T) {
	res, err := Run(counterWorkload(50), Options{Engine: Pthreads, Threads: 4, Vet: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Vet == nil {
		t.Fatal("Options.Vet set but Result.Vet is nil")
	}
	if len(res.Vet.Findings) != 0 {
		t.Fatalf("clean workload has findings:\n%s", res.Vet.Human())
	}
}

// TestVetAbortsOnErrorFindings: error-severity findings abort the run before
// the engine starts, with the report still attached.
func TestVetAbortsOnErrorFindings(t *testing.T) {
	res, err := Run(leakyWorkload(), Options{Engine: Pthreads, Threads: 2, Vet: true})
	if err == nil {
		t.Fatal("vet accepted a program that exits holding a lock")
	}
	if !strings.Contains(err.Error(), string(progcheck.ClassHeldAtExit)) {
		t.Fatalf("error does not name the finding class: %v", err)
	}
	if res == nil || res.Vet == nil {
		t.Fatal("aborted run must still carry the vet report")
	}
	if res.Wall != 0 {
		t.Fatal("vet must abort before the engine runs")
	}
}

// TestVetPublishesTelemetry: the progcheck.* counters land in the registry
// and the run report, with the wall-time counter routed to Timing.
func TestVetPublishesTelemetry(t *testing.T) {
	res, err := Run(counterWorkload(10), Options{Engine: LazyDet, Threads: 2, Vet: true, Telemetry: true})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Telemetry.Counter("progcheck.programs"); got != 1 {
		t.Fatalf("progcheck.programs = %d, want 1", got)
	}
	rep := BuildReport(res)
	if _, ok := rep.Metrics["progcheck.states"]; !ok {
		t.Fatal("progcheck.states missing from report metrics")
	}
	for _, name := range []string{
		"progcheck.analysis_ns", "progcheck.lockstate_ns", "progcheck.deadlock_ns",
		"progcheck.race_ns", "progcheck.footprint_ns",
	} {
		if _, ok := rep.Metrics[name]; ok {
			t.Fatalf("machine-dependent %s must not land in gated metrics", name)
		}
		if _, ok := rep.Timing[name]; !ok {
			t.Fatalf("%s missing from timing", name)
		}
	}
}
