package core

import (
	"testing"

	"lazydet/internal/detsync"
	"lazydet/internal/dlc"
	"lazydet/internal/dvm"
	"lazydet/internal/shmem"
	"lazydet/internal/stats"
	"lazydet/internal/trace"
	"lazydet/internal/vheap"
)

// rig bundles an engine with its substrates for white-box tests.
type rig struct {
	eng  *Engine
	heap *vheap.Heap
	mem  *shmem.Mem
	tbl  *detsync.Table
	spec *stats.Spec
	rec  *trace.Recorder
}

func newRig(t *testing.T, cfg Config, threads, words, locks, conds, barriers int) *rig {
	t.Helper()
	r := &rig{spec: &stats.Spec{}, rec: trace.New(threads)}
	d := Deps{Spec: r.spec, Rec: r.rec}
	if cfg.Mode == ModeWeakNondet {
		d.Arb = dlc.NewNondet(threads)
	} else {
		d.Arb = dlc.New(threads)
	}
	d.Tbl = detsync.NewTable(threads, locks, conds, barriers, cfg.Speculation)
	r.tbl = d.Tbl
	if cfg.Mode == ModeStrong {
		r.heap = vheap.New(int64(words))
		d.Heap = r.heap
	} else {
		r.mem = shmem.New(int64(words))
		d.Mem = r.mem
	}
	r.eng = New(cfg, d)
	return r
}

func (r *rig) read(addr int64) int64 {
	if r.heap != nil {
		return r.heap.ReadCommitted(addr)
	}
	return r.mem.ReadCommitted(addr)
}

func lazyCfg() Config { return Config{Mode: ModeStrong, Speculation: true} }

// TestSpeculationBeginsAtLock: a single thread acquiring one lock starts a
// run, and thread exit commits it.
func TestSpeculationBeginsAtLock(t *testing.T) {
	r := newRig(t, lazyCfg(), 1, 64, 1, 0, 0)
	b := dvm.NewBuilder("p")
	b.Lock(dvm.Const(0))
	b.Store(dvm.Const(5), dvm.Const(42))
	b.Unlock(dvm.Const(0))
	dvm.Run(r.eng, []*dvm.Program{b.Build()})

	if got := r.read(5); got != 42 {
		t.Fatalf("word 5 = %d, want 42 (exit must commit the run)", got)
	}
	if r.spec.Runs.Load() != 1 || r.spec.Commits.Load() != 1 {
		t.Fatalf("runs=%d commits=%d, want 1/1", r.spec.Runs.Load(), r.spec.Commits.Load())
	}
	if r.spec.SpecAcquires.Load() != 1 {
		t.Fatalf("spec acquires = %d, want 1", r.spec.SpecAcquires.Load())
	}
	if g := r.tbl.Locks[0].LastAcquireDLC; g == 0 {
		t.Fatalf("G_l not updated on commit")
	}
}

// TestDeterministicConflictReverts constructs a guaranteed conflict:
// thread 0 acquires lock 0 conventionally early (its clock is far ahead, so
// it cannot speculate — noSpecNext is forced via a contrived first CS);
// instead we force determinism by giving thread 1 a long compute prefix, so
// thread 0's conventional acquisition of the shared lock always lands
// inside thread 1's speculative run window.
func TestDeterministicConflictReverts(t *testing.T) {
	r := newRig(t, lazyCfg(), 2, 64, 2, 0, 0)

	// Thread 0: immediately speculate on lock 0, commit at exit — but
	// first write through lock 0 so the commit publishes and bumps the
	// lock's commit sequence.
	b0 := dvm.NewBuilder("t0")
	b0.Lock(dvm.Const(0))
	b0.Store(dvm.Const(8), dvm.Const(1))
	b0.Unlock(dvm.Const(0))
	// Exit: commits with a low DLC (short program).

	// Thread 1: long compute prefix (so its run begins before thread 0
	// commits but its own commit turn comes after), then a speculative
	// run touching the same lock.
	b1 := dvm.NewBuilder("t1")
	i := b1.Reg()
	b1.Lock(dvm.Const(1)) // begin a run on an uncontended lock
	b1.ForN(i, 200, func() {
		b1.Do(func(*dvm.Thread) {})
	})
	b1.Lock(dvm.Const(0)) // extend the run over the shared lock
	b1.Store(dvm.Const(9), dvm.Const(2))
	b1.Unlock(dvm.Const(0))
	b1.Unlock(dvm.Const(1))

	dvm.Run(r.eng, []*dvm.Program{b0.Build(), b1.Build()})

	if r.spec.Reverts.Load() == 0 {
		t.Fatalf("expected at least one revert (conflict on lock 0); commits=%d runs=%d",
			r.spec.Commits.Load(), r.spec.Runs.Load())
	}
	// Despite the revert, both writes must survive re-execution.
	if r.read(8) != 1 || r.read(9) != 2 {
		t.Fatalf("final memory (8)=%d (9)=%d, want 1 and 2", r.read(8), r.read(9))
	}
}

// TestRevertRestoresRegistersAndHeap: after a forced conflict, the
// re-executed code must observe pristine registers and heap (no doubled
// increments).
func TestRevertRestoresRegistersAndHeap(t *testing.T) {
	r := newRig(t, lazyCfg(), 2, 64, 2, 0, 0)

	b0 := dvm.NewBuilder("t0")
	b0.Lock(dvm.Const(0))
	b0.Store(dvm.Const(8), dvm.Const(1))
	b0.Unlock(dvm.Const(0))

	b1 := dvm.NewBuilder("t1")
	i, acc, v := b1.Reg(), b1.Reg(), b1.Reg()
	b1.ForN(i, 300, func() { b1.Do(func(*dvm.Thread) {}) })
	// The run: increment a register and a heap word once each.
	b1.Lock(dvm.Const(0))
	b1.Do(func(th *dvm.Thread) { th.AddR(acc, 1) })
	b1.Load(v, dvm.Const(10))
	b1.Store(dvm.Const(10), dvm.Dyn(func(th *dvm.Thread) int64 { return th.R(v) + 1 }))
	b1.Unlock(dvm.Const(0))
	b1.Store(dvm.Const(11), dvm.FromReg(acc)) // publish the register

	dvm.Run(r.eng, []*dvm.Program{b0.Build(), b1.Build()})

	if got := r.read(10); got != 1 {
		t.Errorf("heap counter = %d, want 1 (revert must undo the speculative store)", got)
	}
	if got := r.read(11); got != 1 {
		t.Errorf("register counter = %d, want 1 (revert must restore registers)", got)
	}
}

// TestAdaptiveDisablesSpeculation: with an always-conflicting lock, the
// per-lock history must fall below the threshold and speculative
// acquisitions must become a small fraction (only periodic probes remain).
func TestAdaptiveDisablesSpeculation(t *testing.T) {
	r := newRig(t, lazyCfg(), 4, 64, 1, 0, 0)
	b := dvm.NewBuilder("p")
	i, v := b.Reg(), b.Reg()
	b.ForN(i, 300, func() {
		b.Lock(dvm.Const(0))
		b.Load(v, dvm.Const(0))
		b.Store(dvm.Const(0), dvm.Dyn(func(th *dvm.Thread) int64 { return th.R(v) + 1 }))
		b.Unlock(dvm.Const(0))
	})
	p := b.Build()
	dvm.Run(r.eng, []*dvm.Program{p, p, p, p})

	if got := r.read(0); got != 4*300 {
		t.Fatalf("counter = %d, want 1200", got)
	}
	if pct := r.spec.SpecAcquirePct(); pct > 50 {
		t.Errorf("speculative acquisitions = %.1f%% on a fully contended lock; adaptation failed", pct)
	}
	// At least one thread's history for lock 0 must be below the
	// threshold.
	low := false
	for tid := 0; tid < 4; tid++ {
		if detsync.SuccessRatePermille(r.tbl.Locks[0].SpecHist[tid]) < 850 {
			low = true
		}
	}
	if !low {
		t.Error("no per-thread history dropped below the speculation threshold")
	}
}

// TestIrrevocableUpgrade: a syscall inside a speculative critical section
// upgrades the run; the effect runs exactly once despite speculation.
func TestIrrevocableUpgrade(t *testing.T) {
	r := newRig(t, lazyCfg(), 1, 64, 1, 0, 0)
	count := 0
	b := dvm.NewBuilder("p")
	b.Lock(dvm.Const(0))
	b.Syscall(&dvm.Syscall{Name: "write", Work: 10, Effect: func(*dvm.Thread) { count++ }})
	b.Store(dvm.Const(3), dvm.Const(7))
	b.Unlock(dvm.Const(0))
	dvm.Run(r.eng, []*dvm.Program{b.Build()})

	if count != 1 {
		t.Fatalf("syscall effect ran %d times, want exactly 1", count)
	}
	if r.spec.Upgrades.Load() != 1 {
		t.Fatalf("upgrades = %d, want 1", r.spec.Upgrades.Load())
	}
	if got := r.read(3); got != 7 {
		t.Fatalf("word 3 = %d, want 7 (irrevocable run must commit at first lock-free point)", got)
	}
	if r.eng.irrevocableOwner != -1 {
		t.Fatal("irrevocable ownership not cleared after termination")
	}
}

// TestNoIrrevocableRevertsAndReexecutes: with the upgrade disabled, the
// syscall effect still runs exactly once (the run reverts first, then the
// syscall executes non-speculatively on re-execution).
func TestNoIrrevocableRevertsAndReexecutes(t *testing.T) {
	cfg := lazyCfg()
	cfg.Spec = DefaultSpecConfig()
	cfg.Spec.Irrevocable = false
	r := newRig(t, cfg, 1, 64, 1, 0, 0)
	count := 0
	b := dvm.NewBuilder("p")
	b.Lock(dvm.Const(0))
	b.Syscall(&dvm.Syscall{Name: "write", Work: 10, Effect: func(*dvm.Thread) { count++ }})
	b.Store(dvm.Const(3), dvm.Const(7))
	b.Unlock(dvm.Const(0))
	dvm.Run(r.eng, []*dvm.Program{b.Build()})

	if count != 1 {
		t.Fatalf("syscall effect ran %d times, want exactly 1", count)
	}
	if r.spec.Reverts.Load() != 1 {
		t.Fatalf("reverts = %d, want 1 (NoIrrevocable must revert at the syscall)", r.spec.Reverts.Load())
	}
	if got := r.read(3); got != 7 {
		t.Fatalf("word 3 = %d, want 7", got)
	}
}

// TestSyscallOutsideCriticalSection: at lock depth 0 a speculative run
// simply terminates (commits) before the syscall — no upgrade needed.
func TestSyscallOutsideCriticalSection(t *testing.T) {
	r := newRig(t, lazyCfg(), 1, 64, 1, 0, 0)
	b := dvm.NewBuilder("p")
	b.Lock(dvm.Const(0))
	b.Store(dvm.Const(2), dvm.Const(9))
	b.Unlock(dvm.Const(0))
	b.Syscall(&dvm.Syscall{Name: "write", Work: 10})
	dvm.Run(r.eng, []*dvm.Program{b.Build()})

	if r.spec.Upgrades.Load() != 0 {
		t.Fatalf("upgrades = %d, want 0 (depth-0 syscall should not upgrade)", r.spec.Upgrades.Load())
	}
	if r.spec.Commits.Load() != 1 {
		t.Fatalf("commits = %d, want 1", r.spec.Commits.Load())
	}
	if got := r.read(2); got != 9 {
		t.Fatalf("word 2 = %d, want 9", got)
	}
}

// TestCondWaitTerminatesRun: a speculative run reaching a condition
// variable terminates first (footnote 2); the still-held lock converts to a
// conventionally held one, and the handshake completes correctly.
func TestCondWaitTerminatesRun(t *testing.T) {
	r := newRig(t, lazyCfg(), 2, 64, 1, 1, 0)

	// Thread 0 waits for the flag; thread 1 sets it and signals.
	b0 := dvm.NewBuilder("waiter")
	fv := b0.Reg()
	b0.Lock(dvm.Const(0))
	b0.Load(fv, dvm.Const(0))
	b0.While(func(th *dvm.Thread) bool { return th.R(fv) == 0 }, func() {
		b0.CondWait(dvm.Const(0), dvm.Const(0))
		b0.Load(fv, dvm.Const(0))
	})
	b0.Store(dvm.Const(1), dvm.Const(77)) // post-wakeup write
	b0.Unlock(dvm.Const(0))

	b1 := dvm.NewBuilder("signaler")
	i := b1.Reg()
	b1.ForN(i, 100, func() { b1.Do(func(*dvm.Thread) {}) })
	b1.Lock(dvm.Const(0))
	b1.Store(dvm.Const(0), dvm.Const(1))
	b1.CondSignal(dvm.Const(0))
	b1.Unlock(dvm.Const(0))

	dvm.Run(r.eng, []*dvm.Program{b0.Build(), b1.Build()})

	if got := r.read(1); got != 77 {
		t.Fatalf("word 1 = %d, want 77 (condvar handshake broken)", got)
	}
	if r.tbl.Locks[0].Owner != 0 {
		t.Fatalf("lock 0 still owned by %d after the run", r.tbl.Locks[0].Owner)
	}
}

// TestBarrierTerminatesRun: barriers also terminate speculation, and all
// pre-barrier writes are visible after it under strong isolation.
func TestBarrierTerminatesRun(t *testing.T) {
	r := newRig(t, lazyCfg(), 3, 64, 3, 0, 1)
	progs := make([]*dvm.Program, 3)
	for tid := 0; tid < 3; tid++ {
		tid := tid
		b := dvm.NewBuilder("p")
		v := b.Reg()
		b.Lock(dvm.Const(int64(tid)))
		b.Store(dvm.Const(int64(tid)), dvm.Const(int64(tid)+1))
		b.Unlock(dvm.Const(int64(tid)))
		b.Barrier(dvm.Const(0))
		// Every thread checks every other thread's write.
		sum := b.Reg()
		for o := int64(0); o < 3; o++ {
			b.Load(v, dvm.Const(o))
			b.Do(func(th *dvm.Thread) { th.AddR(sum, th.R(v)) })
		}
		b.Store(dvm.Const(10+int64(tid)), dvm.FromReg(sum))
		progs[tid] = b.Build()
	}
	dvm.Run(r.eng, progs)
	for tid := int64(0); tid < 3; tid++ {
		if got := r.read(10 + tid); got != 6 {
			t.Fatalf("thread %d saw sum %d, want 6 (barrier must publish all writes)", tid, got)
		}
	}
}

// TestCoarseningChainsRuns: consecutive disjoint critical sections coalesce
// into runs up to MaxRunCS and chain into new runs afterwards.
func TestCoarseningChainsRuns(t *testing.T) {
	cfg := lazyCfg()
	cfg.Spec = DefaultSpecConfig()
	cfg.Spec.MaxRunCS = 4
	r := newRig(t, cfg, 1, 64, 8, 0, 0)
	b := dvm.NewBuilder("p")
	i := b.Reg()
	b.ForN(i, 16, func() {
		l := dvm.Dyn(func(th *dvm.Thread) int64 { return th.R(i) % 8 })
		b.Lock(l)
		b.Store(dvm.Dyn(func(th *dvm.Thread) int64 { return th.R(i) % 8 }), dvm.FromReg(i))
		b.Unlock(l)
	})
	dvm.Run(r.eng, []*dvm.Program{b.Build()})

	if runs := r.spec.Runs.Load(); runs != 4 {
		t.Errorf("runs = %d, want 4 (16 CS at 4 CS/run)", runs)
	}
	if m := r.spec.MeanRunCS(); m != 4 {
		t.Errorf("mean run = %.1f CS, want 4", m)
	}
}

// TestProgressAfterRevert: the critical section immediately after a revert
// must execute conventionally (noSpecNext), visible as a conventional
// acquisition following every revert.
func TestProgressAfterRevert(t *testing.T) {
	r := newRig(t, lazyCfg(), 4, 64, 1, 0, 0)
	b := dvm.NewBuilder("p")
	i, v := b.Reg(), b.Reg()
	b.ForN(i, 50, func() {
		b.Lock(dvm.Const(0))
		b.Load(v, dvm.Const(0))
		b.Store(dvm.Const(0), dvm.Dyn(func(th *dvm.Thread) int64 { return th.R(v) + 1 }))
		b.Unlock(dvm.Const(0))
	})
	p := b.Build()
	dvm.Run(r.eng, []*dvm.Program{p, p, p, p})
	if got := r.read(0); got != 200 {
		t.Fatalf("counter = %d, want 200", got)
	}
	conv := r.spec.TotalAcquires.Load() - r.spec.SpecAcquires.Load()
	if r.spec.Reverts.Load() > 0 && conv == 0 {
		t.Error("reverts occurred but no conventional acquisitions followed")
	}
}

// TestWeakModeDeterministicCounter: TotalOrder-Weak preserves mutual
// exclusion and produces the correct value for race-free programs.
func TestWeakModeDeterministicCounter(t *testing.T) {
	r := newRig(t, Config{Mode: ModeWeak}, 4, 16, 1, 0, 0)
	b := dvm.NewBuilder("p")
	i, v := b.Reg(), b.Reg()
	b.ForN(i, 200, func() {
		b.Lock(dvm.Const(0))
		b.Load(v, dvm.Const(0))
		b.Store(dvm.Const(0), dvm.Dyn(func(th *dvm.Thread) int64 { return th.R(v) + 1 }))
		b.Unlock(dvm.Const(0))
	})
	p := b.Build()
	dvm.Run(r.eng, []*dvm.Program{p, p, p, p})
	if got := r.read(0); got != 800 {
		t.Fatalf("counter = %d, want 800", got)
	}
}

// TestWeakNondetMutualExclusion: the nondeterministic engine still provides
// mutual exclusion.
func TestWeakNondetMutualExclusion(t *testing.T) {
	r := newRig(t, Config{Mode: ModeWeakNondet}, 4, 16, 1, 0, 0)
	b := dvm.NewBuilder("p")
	i, v := b.Reg(), b.Reg()
	b.ForN(i, 200, func() {
		b.Lock(dvm.Const(0))
		b.Load(v, dvm.Const(0))
		b.Store(dvm.Const(0), dvm.Dyn(func(th *dvm.Thread) int64 { return th.R(v) + 1 }))
		b.Unlock(dvm.Const(0))
	})
	p := b.Build()
	dvm.Run(r.eng, []*dvm.Program{p, p, p, p})
	if got := r.read(0); got != 800 {
		t.Fatalf("counter = %d, want 800", got)
	}
}

// TestConfigValidation: inconsistent configurations must panic loudly.
func TestConfigValidation(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("spec-without-strong", func() {
		New(Config{Mode: ModeWeak, Speculation: true}, Deps{Arb: dlc.New(1), Mem: shmem.New(8)})
	})
	mustPanic("strong-without-heap", func() {
		New(Config{Mode: ModeStrong}, Deps{Arb: dlc.New(1)})
	})
	mustPanic("nondet-mode-det-arbiter", func() {
		New(Config{Mode: ModeWeakNondet}, Deps{Arb: dlc.New(1), Mem: shmem.New(8)})
	})
}

// TestNoCoarseningOneCSRuns: with coarsening disabled every run is exactly
// one critical section.
func TestNoCoarseningOneCSRuns(t *testing.T) {
	cfg := lazyCfg()
	cfg.Spec = DefaultSpecConfig()
	cfg.Spec.Coarsening = false
	r := newRig(t, cfg, 1, 64, 4, 0, 0)
	b := dvm.NewBuilder("p")
	i := b.Reg()
	b.ForN(i, 12, func() {
		l := dvm.Dyn(func(th *dvm.Thread) int64 { return th.R(i) % 4 })
		b.Lock(l)
		b.Unlock(l)
	})
	dvm.Run(r.eng, []*dvm.Program{b.Build()})
	if m := r.spec.MeanRunCS(); m != 1 {
		t.Errorf("mean run = %.1f CS, want exactly 1", m)
	}
	if runs := r.spec.Runs.Load(); runs != 12 {
		t.Errorf("runs = %d, want 12", runs)
	}
}

// TestNestedLocksFlattened: nested acquisitions extend the same run rather
// than starting new ones.
func TestNestedLocksFlattened(t *testing.T) {
	r := newRig(t, lazyCfg(), 1, 64, 3, 0, 0)
	b := dvm.NewBuilder("p")
	b.Lock(dvm.Const(0))
	b.Lock(dvm.Const(1))
	b.Lock(dvm.Const(2))
	b.Store(dvm.Const(4), dvm.Const(1))
	b.Unlock(dvm.Const(2))
	b.Unlock(dvm.Const(1))
	b.Unlock(dvm.Const(0))
	dvm.Run(r.eng, []*dvm.Program{b.Build()})
	if runs := r.spec.Runs.Load(); runs != 1 {
		t.Errorf("runs = %d, want 1 (nesting flattens)", runs)
	}
	if cs := r.spec.CommittedCS.Load(); cs != 1 {
		t.Errorf("committed CS = %d, want 1 (nested CS count once)", cs)
	}
	if got := r.read(4); got != 1 {
		t.Errorf("word 4 = %d, want 1", got)
	}
}

// TestPerThreadStatsMode: with PerLockStats disabled, lock histories are
// unused and the thread-level history drives decisions.
func TestPerThreadStatsMode(t *testing.T) {
	cfg := lazyCfg()
	cfg.Spec = DefaultSpecConfig()
	cfg.Spec.PerLockStats = false
	r := newRig(t, cfg, 4, 64, 1, 0, 0)
	b := dvm.NewBuilder("p")
	i, v := b.Reg(), b.Reg()
	b.ForN(i, 200, func() {
		b.Lock(dvm.Const(0))
		b.Load(v, dvm.Const(0))
		b.Store(dvm.Const(0), dvm.Dyn(func(th *dvm.Thread) int64 { return th.R(v) + 1 }))
		b.Unlock(dvm.Const(0))
	})
	p := b.Build()
	dvm.Run(r.eng, []*dvm.Program{p, p, p, p})
	if got := r.read(0); got != 800 {
		t.Fatalf("counter = %d, want 800", got)
	}
	// Per-lock histories must remain untouched (all ones).
	for tid := 0; tid < 4; tid++ {
		if r.tbl.Locks[0].SpecHist[tid] != ^uint64(0) {
			t.Errorf("per-lock history written in per-thread mode (tid %d)", tid)
		}
	}
}
