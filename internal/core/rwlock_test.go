package core

import (
	"fmt"
	"testing"

	"lazydet/internal/dvm"
)

// TestRWLockReadersAdmitEachOther: conventional readers may overlap; the
// reader count returns to zero and a subsequent writer proceeds.
func TestRWLockReadersAdmitEachOther(t *testing.T) {
	r := newRig(t, Config{Mode: ModeStrong}, 4, 64, 1, 0, 0)
	b := dvm.NewBuilder("readers")
	i, v, acc := b.Reg(), b.Reg(), b.Reg()
	b.ForN(i, 50, func() {
		b.RLock(dvm.Const(0))
		b.Load(v, dvm.Const(0))
		b.Do(func(th *dvm.Thread) { th.AddR(acc, th.R(v)) })
		b.RUnlock(dvm.Const(0))
	})
	p := b.Build()
	dvm.Run(r.eng, []*dvm.Program{p, p, p, p})
	if got := r.tbl.Locks[0].Readers; got != 0 {
		t.Fatalf("reader count = %d after run, want 0", got)
	}
}

// TestRWLockWriterExcludesReaders: a writer's updates are never torn by
// readers — each reader sees both halves of the invariant consistently.
func TestRWLockWriterExcludesReaders(t *testing.T) {
	for _, cfg := range []Config{{Mode: ModeStrong}, lazyCfg(), {Mode: ModeWeak}} {
		name := cfg.Mode.String()
		if cfg.Speculation {
			name = "lazydet"
		}
		t.Run(name, func(t *testing.T) {
			r := newRig(t, cfg, 4, 64, 1, 0, 0)
			progs := make([]*dvm.Program, 4)
			// Writer: keeps x and y equal, incrementing both under the
			// write lock.
			w := dvm.NewBuilder("writer")
			{
				i, v := w.Reg(), w.Reg()
				w.ForN(i, 80, func() {
					w.Lock(dvm.Const(0))
					w.Load(v, dvm.Const(1))
					w.Store(dvm.Const(1), dvm.Dyn(func(th *dvm.Thread) int64 { return th.R(v) + 1 }))
					w.Load(v, dvm.Const(2))
					w.Store(dvm.Const(2), dvm.Dyn(func(th *dvm.Thread) int64 { return th.R(v) + 1 }))
					w.Unlock(dvm.Const(0))
				})
			}
			progs[0] = w.Build()
			// Readers: under the read lock, x must equal y; a violation
			// is recorded in the reader's private cell.
			for tid := 1; tid < 4; tid++ {
				rd := dvm.NewBuilder(fmt.Sprintf("reader-%d", tid))
				i, x, y := rd.Reg(), rd.Reg(), rd.Reg()
				rd.ForN(i, 80, func() {
					rd.RLock(dvm.Const(0))
					rd.Load(x, dvm.Const(1))
					rd.Load(y, dvm.Const(2))
					rd.If(func(th *dvm.Thread) bool { return th.R(x) != th.R(y) }, func() {
						rd.Store(dvm.Dyn(func(th *dvm.Thread) int64 { return 10 + int64(th.ID) }), dvm.Const(1))
					})
					rd.RUnlock(dvm.Const(0))
				})
				progs[tid] = rd.Build()
			}
			dvm.Run(r.eng, progs)
			if got := r.read(1); got != 80 {
				t.Fatalf("x = %d, want 80", got)
			}
			for tid := int64(1); tid < 4; tid++ {
				if r.read(10+tid) != 0 {
					t.Fatalf("reader %d observed torn writer state", tid)
				}
			}
		})
	}
}

// TestSpeculativeReadersNeverConflict: speculative runs that only
// read-lock a shared lock commit without conflicts, even though they all
// touch the same lock — the dependence-aware benefit of shared mode.
func TestSpeculativeReadersNeverConflict(t *testing.T) {
	r := newRig(t, lazyCfg(), 4, 64, 1, 0, 0)
	b := dvm.NewBuilder("specreaders")
	i, v := b.Reg(), b.Reg()
	b.ForN(i, 150, func() {
		b.RLock(dvm.Const(0))
		b.Load(v, dvm.Const(0))
		b.RUnlock(dvm.Const(0))
	})
	p := b.Build()
	dvm.Run(r.eng, []*dvm.Program{p, p, p, p})
	if rv := r.spec.Reverts.Load(); rv != 0 {
		t.Fatalf("%d reverts among pure readers, want 0", rv)
	}
	if pct := r.spec.SuccessPct(); pct != 100 {
		t.Fatalf("success = %.1f%%, want 100%%", pct)
	}
}

// TestSpeculativeWriterConflictsWithReaderCommit: a speculative writer on a
// lock whose readers commit first must revert, and the final counter is
// exact.
func TestSpeculativeWritersStayCorrect(t *testing.T) {
	r := newRig(t, lazyCfg(), 4, 64, 1, 0, 0)
	b := dvm.NewBuilder("mixed")
	i, v := b.Reg(), b.Reg()
	b.ForN(i, 100, func() {
		b.IfElse(func(th *dvm.Thread) bool { return th.R(i)%4 == 0 },
			func() {
				b.Lock(dvm.Const(0))
				b.Load(v, dvm.Const(0))
				b.Store(dvm.Const(0), dvm.Dyn(func(th *dvm.Thread) int64 { return th.R(v) + 1 }))
				b.Unlock(dvm.Const(0))
			},
			func() {
				b.RLock(dvm.Const(0))
				b.Load(v, dvm.Const(0))
				b.RUnlock(dvm.Const(0))
			},
		)
	})
	p := b.Build()
	dvm.Run(r.eng, []*dvm.Program{p, p, p, p})
	if got := r.read(0); got != 4*25 {
		t.Fatalf("counter = %d, want 100", got)
	}
}

// TestRWLockDeterminism: mixed reader/writer workloads reproduce exactly.
func TestRWLockDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		r := newRig(t, lazyCfg(), 4, 64, 2, 0, 0)
		b := dvm.NewBuilder("rwdet")
		i, v := b.Reg(), b.Reg()
		b.ForN(i, 120, func() {
			l := dvm.Dyn(func(th *dvm.Thread) int64 { return th.R(i) % 2 })
			b.IfElse(func(th *dvm.Thread) bool { return th.RandN(3) == 0 },
				func() {
					b.Lock(l)
					b.Load(v, dvm.Dyn(func(th *dvm.Thread) int64 { return 4 + th.R(i)%2 }))
					b.Store(dvm.Dyn(func(th *dvm.Thread) int64 { return 4 + th.R(i)%2 }), dvm.Dyn(func(th *dvm.Thread) int64 { return th.R(v) + 1 }))
					b.Unlock(l)
				},
				func() {
					b.RLock(l)
					b.Load(v, dvm.Dyn(func(th *dvm.Thread) int64 { return 4 + th.R(i)%2 }))
					b.RUnlock(l)
				},
			)
		})
		p := b.Build()
		dvm.Run(r.eng, []*dvm.Program{p, p, p, p})
		return r.heap.Hash(), r.rec.Signature()
	}
	h1, s1 := run()
	h2, s2 := run()
	if h1 != h2 || s1 != s2 {
		t.Fatalf("rwlock workload not deterministic: heap %x/%x trace %x/%x", h1, h2, s1, s2)
	}
}
