package core

import (
	"testing"

	"lazydet/internal/dvm"
)

// TestIrrevocableBlocksOtherCommits: while one thread holds irrevocable
// status, no other thread may commit; the blocked thread's critical section
// must serialize entirely after the irrevocable run. Observable as the
// final value of a cell both threads touch: the irrevocable run's write
// must not be lost to an interleaved commit.
func TestIrrevocableBlocksOtherCommits(t *testing.T) {
	r := newRig(t, lazyCfg(), 2, 64, 2, 0, 0)

	// Thread 0: speculates into lock 0's critical section, upgrades at a
	// long syscall, then increments the shared cell.
	b0 := dvm.NewBuilder("irrev")
	v0 := b0.Reg()
	b0.Lock(dvm.Const(0))
	b0.Syscall(&dvm.Syscall{Name: "slow", Work: 5000})
	b0.Load(v0, dvm.Const(8))
	b0.Store(dvm.Const(8), dvm.Dyn(func(th *dvm.Thread) int64 { return th.R(v0) + 1 }))
	b0.Unlock(dvm.Const(0))

	// Thread 1: increments the same cell under a DIFFERENT lock, so only
	// the irrevocable commit blocking (not lock exclusion) protects the
	// read-modify-write from interleaving with thread 0's.
	b1 := dvm.NewBuilder("other")
	v1 := b1.Reg()
	b1.Lock(dvm.Const(1))
	b1.Load(v1, dvm.Const(8))
	b1.Store(dvm.Const(8), dvm.Dyn(func(th *dvm.Thread) int64 { return th.R(v1) + 1 }))
	b1.Unlock(dvm.Const(1))

	dvm.Run(r.eng, []*dvm.Program{b0.Build(), b1.Build()})

	// Both increments must survive only if the two critical sections'
	// commits were serialized with visibility; the word-merge otherwise
	// loses one. (Different locks on the same data is a race the paper's
	// DDRF model resolves deterministically; what we check here is that
	// the run completes, commits both, and the irrevocable flag cleared.)
	if got := r.read(8); got != 2 && got != 1 {
		t.Fatalf("cell = %d, want 1 or 2 (deterministic race outcome)", got)
	}
	if r.eng.irrevocableOwner != -1 {
		t.Fatal("irrevocable ownership leaked past the run")
	}
	if r.spec.Upgrades.Load() == 0 {
		t.Fatal("no upgrade occurred; the test exercised nothing")
	}
	// Determinism of the racy outcome: run again, same result.
	r2 := newRig(t, lazyCfg(), 2, 64, 2, 0, 0)
	b0b := dvm.NewBuilder("irrev")
	v0b := b0b.Reg()
	b0b.Lock(dvm.Const(0))
	b0b.Syscall(&dvm.Syscall{Name: "slow", Work: 5000})
	b0b.Load(v0b, dvm.Const(8))
	b0b.Store(dvm.Const(8), dvm.Dyn(func(th *dvm.Thread) int64 { return th.R(v0b) + 1 }))
	b0b.Unlock(dvm.Const(0))
	b1b := dvm.NewBuilder("other")
	v1b := b1b.Reg()
	b1b.Lock(dvm.Const(1))
	b1b.Load(v1b, dvm.Const(8))
	b1b.Store(dvm.Const(8), dvm.Dyn(func(th *dvm.Thread) int64 { return th.R(v1b) + 1 }))
	b1b.Unlock(dvm.Const(1))
	dvm.Run(r2.eng, []*dvm.Program{b0b.Build(), b1b.Build()})
	if r.read(8) != r2.read(8) {
		t.Fatalf("racy outcome not deterministic: %d vs %d", r.read(8), r2.read(8))
	}
}

// TestUnlockNotOwnerPanics: releasing a lock the thread does not hold is a
// loud programming error.
func TestUnlockNotOwnerPanics(t *testing.T) {
	r := newRig(t, Config{Mode: ModeStrong}, 1, 16, 1, 0, 0)
	b := dvm.NewBuilder("bad")
	b.Unlock(dvm.Const(0))
	defer func() {
		if recover() == nil {
			t.Fatal("unlock of unheld lock must panic")
		}
	}()
	// Run on the calling goroutine so the panic is recoverable here.
	eng := r.eng
	p := b.Build()
	th := &dvm.Thread{ID: 0, Regs: make([]int64, p.NumRegs), EngineData: nil}
	eng.ThreadStart(th)
	eng.Unlock(th, 0)
}
