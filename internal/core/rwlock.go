package core

import (
	"fmt"

	"lazydet/internal/dvm"
	"lazydet/internal/trace"
)

// This file implements deterministic reader-writer locks, a library
// extension in the direction the paper's §6.2 sketches (conflict detection
// that understands data dependence): shared-mode critical sections read but
// do not write, so
//
//   - conventional readers admit each other at their turns (a reader count
//     per lock, mutated only at turns, keeps this deterministic);
//   - speculative runs log shared acquisitions as reads: two speculative
//     readers of the same lock never conflict, while writers conflict with
//     both readers and writers — the lock-granularity analogue of
//     dependence-aware transactional conflict detection.

// RLock implements dvm.Engine.
func (e *Engine) RLock(t *dvm.Thread, l int64) {
	ts := e.ts(t)
	if e.cfg.Speculation {
		e.lazyRLock(t, ts, l)
		return
	}
	e.convRLock(t, ts, l)
}

// RUnlock implements dvm.Engine.
func (e *Engine) RUnlock(t *dvm.Thread, l int64) {
	ts := e.ts(t)
	if ts.spec {
		e.specRRelease(t, ts, l)
		return
	}
	e.convRUnlock(t, ts, l)
}

// lazyRLock mirrors lazyLock for shared acquisitions: the same decision
// tree, with the acquisition logged as a read.
func (e *Engine) lazyRLock(t *dvm.Thread, ts *tstate, l int64) {
	if ts.spec {
		if ts.depth > 0 {
			e.specAcquire(t, ts, l, false)
			return
		}
		want := e.shouldSpeculate(ts, t.ID, l)
		if want && ts.runCS < e.cfg.Spec.MaxRunCS {
			e.specAcquire(t, ts, l, false)
			return
		}
		if !e.terminateRun(t, ts) {
			return
		}
		if want && !ts.noSpecNext {
			e.beginRun(t, ts)
			e.specAcquire(t, ts, l, false)
			return
		}
		e.convRLock(t, ts, l)
		return
	}
	if ts.depth == 0 && !ts.noSpecNext && e.shouldSpeculate(ts, t.ID, l) {
		e.beginRun(t, ts)
		e.specAcquire(t, ts, l, false)
		return
	}
	ts.noSpecNext = false
	e.convRLock(t, ts, l)
}

// convRLock takes a shared acquisition at the turn: admitted whenever no
// writer holds the lock. Reader counts change only at turns, so admission
// is deterministic.
func (e *Engine) convRLock(t *dvm.Thread, ts *tstate, l int64) {
	st := &e.tbl.Locks[l]
	backoff := e.cfg.Quantum
	for {
		e.waitCommitTurn(t)
		e.publishRefreshLazy(t, ts)
		my := e.arb.DLC(t.ID)
		if st.Owner == 0 && (e.arb.Nondet() || st.ReleaseDLC <= my) {
			st.Readers++
			st.Acquires++
			ts.depth++
			ts.heldConvRead = append(ts.heldConvRead, l)
			if e.spec != nil {
				e.spec.TotalAcquires.Add(1)
			}
			e.rec.Sync(t.ID, trace.OpRAcquire, l, my)
			e.arb.ReleaseTurn(t.ID, e.cfg.SyncCost)
			return
		}
		e.arb.ReleaseTurn(t.ID, backoff)
		if backoff < maxBackoff {
			backoff *= 2
		}
	}
}

// convRUnlock releases a shared acquisition at the turn. Readers do not
// update the lock's commit sequence or G_l: a read-only critical section
// invalidates no speculation.
func (e *Engine) convRUnlock(t *dvm.Thread, ts *tstate, l int64) {
	e.waitCommitTurn(t)
	e.releasePublish(t, ts, l)
	st := &e.tbl.Locks[l]
	if st.Readers <= 0 {
		panic(fmt.Sprintf("core: thread %d runlocks lock %d with no readers", t.ID, l))
	}
	st.Readers--
	ts.depth--
	dropLast(&ts.heldConvRead, l)
	e.rec.Sync(t.ID, trace.OpRRelease, l, e.arb.DLC(t.ID))
	e.arb.ReleaseTurn(t.ID, e.cfg.SyncCost)
}

// specRRelease records a speculative shared release.
func (e *Engine) specRRelease(t *dvm.Thread, ts *tstate, l int64) {
	dropLast(&ts.heldSpecRead, l)
	ts.depth--
	e.rec.Sync(t.ID, trace.OpRRelease, l, e.arb.DLC(t.ID))
	if ts.irrevocable && ts.depth == 0 {
		e.terminateRun(t, ts)
	}
}

// dropLast removes the most recent occurrence of l from s.
func dropLast(s *[]int64, l int64) {
	for i := len(*s) - 1; i >= 0; i-- {
		if (*s)[i] == l {
			*s = append((*s)[:i], (*s)[i+1:]...)
			return
		}
	}
}
