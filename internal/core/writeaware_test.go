package core

import (
	"testing"

	"lazydet/internal/dvm"
)

// waCfg returns a LazyDet config with write-aware conflict detection.
func waCfg() Config {
	c := lazyCfg()
	c.Spec = DefaultSpecConfig()
	c.Spec.WriteAware = true
	return c
}

// readSharedProg: every thread takes the same lock repeatedly but only
// reads under it; the aggregate it computes goes to a private slot.
func readSharedProg(tid int, iters int64) *dvm.Program {
	b := dvm.NewBuilder("reader")
	i, v, acc := b.Reg(), b.Reg(), b.Reg()
	b.ForN(i, iters, func() {
		b.Lock(dvm.Const(0))
		b.Load(v, dvm.Const(0))
		b.Do(func(t *dvm.Thread) { t.AddR(acc, t.R(v)) })
		b.Unlock(dvm.Const(0))
	})
	b.Store(dvm.Const(int64(tid)+1), dvm.FromReg(acc))
	return b.Build()
}

// TestWriteAwareReadersNeverConflict: with write-aware detection, read-only
// critical sections on one shared lock never revert; the paper's G_l scheme
// reverts constantly on the same program.
func TestWriteAwareReadersNeverConflict(t *testing.T) {
	progs := func() []*dvm.Program {
		ps := make([]*dvm.Program, 4)
		for tid := 0; tid < 4; tid++ {
			ps[tid] = readSharedProg(tid, 150)
		}
		return ps
	}

	wa := newRig(t, waCfg(), 4, 64, 1, 0, 0)
	dvm.Run(wa.eng, progs())
	if r := wa.spec.Reverts.Load(); r != 0 {
		t.Errorf("write-aware: %d reverts on read-only critical sections, want 0", r)
	}
	if pct := wa.spec.SuccessPct(); pct != 100 {
		t.Errorf("write-aware: success %.1f%%, want 100%%", pct)
	}

	def := newRig(t, lazyCfg(), 4, 64, 1, 0, 0)
	dvm.Run(def.eng, progs())
	if def.spec.Reverts.Load() == 0 {
		t.Error("default G_l scheme: expected conflicts on the shared lock (it treats every acquisition as a conflict source)")
	}
}

// TestWriteAwareStillCatchesWriters: writes under the shared lock must
// still conflict and the counter must be exact.
func TestWriteAwareStillCatchesWriters(t *testing.T) {
	r := newRig(t, waCfg(), 4, 64, 1, 0, 0)
	b := dvm.NewBuilder("writer")
	i, v := b.Reg(), b.Reg()
	b.ForN(i, 200, func() {
		b.Lock(dvm.Const(0))
		b.Load(v, dvm.Const(0))
		b.Store(dvm.Const(0), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(v) + 1 }))
		b.Unlock(dvm.Const(0))
	})
	p := b.Build()
	dvm.Run(r.eng, []*dvm.Program{p, p, p, p})
	if got := r.read(0); got != 800 {
		t.Fatalf("counter = %d, want 800 (write-aware mode lost updates)", got)
	}
}

// TestWriteAwareMixedReadersAndWriter: one writer among readers — readers
// must observe a consistent (monotonic) value and the writer's updates must
// all land.
func TestWriteAwareMixedReadersAndWriter(t *testing.T) {
	r := newRig(t, waCfg(), 4, 64, 1, 0, 0)
	writer := dvm.NewBuilder("writer")
	{
		i, v := writer.Reg(), writer.Reg()
		writer.ForN(i, 100, func() {
			writer.Lock(dvm.Const(0))
			writer.Load(v, dvm.Const(0))
			writer.Store(dvm.Const(0), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(v) + 1 }))
			writer.Unlock(dvm.Const(0))
		})
	}
	progs := []*dvm.Program{writer.Build()}
	for tid := 1; tid < 4; tid++ {
		progs = append(progs, readSharedProg(tid, 100))
	}
	dvm.Run(r.eng, progs)
	if got := r.read(0); got != 100 {
		t.Fatalf("counter = %d, want 100", got)
	}
}

// TestWriteAwareDeterminism: the refined detection must stay deterministic.
func TestWriteAwareDeterminism(t *testing.T) {
	run := func() (uint64, uint64) {
		r := newRig(t, waCfg(), 4, 64, 2, 0, 0)
		b := dvm.NewBuilder("mix")
		i, v := b.Reg(), b.Reg()
		b.ForN(i, 120, func() {
			l := dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(i) % 2 })
			b.Lock(l)
			b.Load(v, dvm.Dyn(func(t *dvm.Thread) int64 { return 8 + t.R(i)%2 }))
			b.If(func(t *dvm.Thread) bool { return t.R(i)%3 == 0 }, func() {
				b.Store(dvm.Dyn(func(t *dvm.Thread) int64 { return 8 + t.R(i)%2 }), dvm.Dyn(func(t *dvm.Thread) int64 { return t.R(v) + 1 }))
			})
			b.Unlock(l)
		})
		p := b.Build()
		dvm.Run(r.eng, []*dvm.Program{p, p, p, p})
		return r.heap.Hash(), r.rec.Signature()
	}
	h1, s1 := run()
	h2, s2 := run()
	if h1 != h2 || s1 != s2 {
		t.Fatalf("write-aware mode not deterministic: heap %x/%x trace %x/%x", h1, h2, s1, s2)
	}
}
