package core

import (
	"lazydet/internal/dvm"
	"lazydet/internal/trace"
)

// This file implements deterministic atomic read-modify-write operations —
// the extension the paper's §7 names as the natural next step for LazyDet:
// atomic instructions were incompatible with prior DMT systems (Table 3),
// and determinism-by-total-order would squander the speed developers chose
// atomics for. Two treatments are provided:
//
//   - Eager (all deterministic engines, and LazyDet outside speculation or
//     with SpeculativeAtomics disabled): the atomic is a synchronization
//     operation — wait for the turn, publish, apply, publish again. Totally
//     ordered, hence deterministic.
//   - Speculative (LazyDet with SpecConfig.SpeculativeAtomics): the atomic
//     applies to the thread's isolated view with no coordination, and the
//     accessed location is recorded in the run's atomic log. Conflict
//     detection extends to those locations exactly as it covers locks: the
//     run fails if any logged location was atomically updated by a
//     committed run or eager atomic since the run began — "detecting
//     conflicts only on locations accessed by the atomics" (§7).
//
// Atomic locations are assumed not to be concurrently updated by plain
// stores (the usual discipline for atomics); plain reads of them are safe.

// Atomic implements dvm.Engine.
func (e *Engine) Atomic(t *dvm.Thread, a *dvm.Atomic) int64 {
	ts := e.ts(t)
	if e.cfg.Speculation && ts.spec && !ts.irrevocable {
		if e.cfg.Spec.SpeculativeAtomics {
			return e.specAtomic(t, ts, a)
		}
		// Without the extension an atomic is inter-thread communication:
		// terminate the run (commit if possible, revert otherwise), or —
		// inside a critical section — upgrade to irrevocable, exactly
		// like a system call. The location is logged before the upgrade
		// so its conflict check covers this access.
		if ts.depth > 0 {
			ts.atomTouch(a.Addr(t))
			if !e.enterIrrevocable(t, ts) {
				return t.Regs[a.Dst] // reverted: value is irrelevant
			}
		} else if !e.terminateRun(t, ts) {
			return t.Regs[a.Dst]
		}
	}
	if ts.irrevocable {
		return e.irrevocableAtomic(t, ts, a)
	}
	return e.eagerAtomic(t, ts, a)
}

// irrevocableAtomic applies a read-modify-write inside an irrevocable run.
// Locations already in the atomic log were validated fresh at the upgrade
// (and may carry this run's own updates), so they read through the view;
// a location touched for the first time reads the newest committed value,
// which is stable because no other thread can commit while the run is
// irrevocable — both cases are deterministic.
func (e *Engine) irrevocableAtomic(t *dvm.Thread, ts *tstate, a *dvm.Atomic) int64 {
	addr := a.Addr(t)
	if ts.atomCount[addr] > 0 {
		cur := ts.mem.Load(addr)
		store, result := a.Apply(t, cur)
		ts.mem.Store(addr, store)
		ts.atomTouch(addr)
		e.rec.Sync(t.ID, trace.OpAtomic, addr, e.arb.DLC(t.ID))
		return result
	}
	cur := e.pipe.ReadCommitted(addr)
	store, result := a.Apply(t, cur)
	// The value was computed against state newer than the view's base, so
	// the store must win the commit merge even if it looks silent.
	ts.mem.StoreDirty(addr, store)
	ts.atomTouch(addr)
	e.rec.Sync(t.ID, trace.OpAtomic, addr, e.arb.DLC(t.ID))
	return result
}

// eagerAtomic totally orders the read-modify-write at the turn. The same
// sequence serves both memory pipelines: on flat memory the publish and
// refresh halves are no-ops, leaving exactly the load/apply/store the weak
// engines need.
func (e *Engine) eagerAtomic(t *dvm.Thread, ts *tstate, a *dvm.Atomic) int64 {
	e.waitCommitTurn(t)
	addr := a.Addr(t)
	// The read half needs fresh state but keeps deferred publications
	// outstanding; the store below makes the window unpublished again, so the
	// second publication commits (applying any outstanding stage first) —
	// the atomic's update is immediately cross-thread visible.
	e.publishRefreshLazy(t, ts)
	cur := ts.mem.Load(addr)
	store, result := a.Apply(t, cur)
	ts.mem.Store(addr, store)
	e.publishAndRefresh(t, ts)
	if e.strong() {
		e.tbl.Atomics[addr] = e.pipe.Seq()
	}
	e.rec.Sync(t.ID, trace.OpAtomic, addr, e.arb.DLC(t.ID))
	e.arb.ReleaseTurn(t.ID, e.cfg.SyncCost)
	return result
}

// specAtomic applies the read-modify-write to the isolated view and logs
// the location for commit-time conflict detection.
func (e *Engine) specAtomic(t *dvm.Thread, ts *tstate, a *dvm.Atomic) int64 {
	addr := a.Addr(t)
	cur := ts.mem.Load(addr)
	store, result := a.Apply(t, cur)
	ts.mem.Store(addr, store)
	ts.atomTouch(addr)
	e.rec.Sync(t.ID, trace.OpAtomic, addr, e.arb.DLC(t.ID))
	return result
}

// atomTouch records an atomically accessed location in the run's log.
func (ts *tstate) atomTouch(addr int64) {
	if ts.atomCount == nil {
		ts.atomCount = make(map[int64]int)
	}
	if ts.atomCount[addr] == 0 {
		ts.atomLog = append(ts.atomLog, addr)
	}
	ts.atomCount[addr]++
}

// validateAtomics checks the atomic log against the location table: a
// conflict exists if any logged location was atomically updated by a commit
// the run's heap base does not include.
func (e *Engine) validateAtomics(ts *tstate) bool {
	for _, addr := range ts.atomLog {
		if e.tbl.Atomics[addr] > ts.baseAtBegin {
			return false
		}
	}
	return true
}

// commitAtomicsLocked publishes the run's atomic updates into the location
// table. Caller holds the turn and has committed the heap.
func (e *Engine) commitAtomicsLocked(ts *tstate) {
	if len(ts.atomLog) == 0 {
		return
	}
	seq := e.pipe.Seq()
	for _, addr := range ts.atomLog {
		e.tbl.Atomics[addr] = seq
	}
}
